// Quickstart: run one Hadoop sort job on a 2-rack cluster under ECMP and
// then under Pythia, and compare completion times.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "experiments/scenario.hpp"
#include "util/table.hpp"
#include "viz/gantt.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  // A 2-rack / 10-server testbed with two inter-rack links, oversubscribed
  // 1:10 by asymmetric UDP background traffic (as in the paper's setup).
  exp::ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.background.oversubscription = 10.0;

  const hadoop::JobSpec job =
      workloads::sort_job(util::Bytes{20LL * 1000 * 1000 * 1000}, 10);

  std::printf("Running '%s' (%s input, %zu reducers)...\n\n", job.name.c_str(),
              util::format_bytes(job.input).c_str(), job.num_reducers);

  util::Table table({"scheduler", "completion", "shuffle tail"});
  double ecmp_seconds = 0.0;
  double pythia_seconds = 0.0;
  for (const auto kind :
       {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
    exp::ScenarioConfig run_cfg = cfg;
    run_cfg.scheduler = kind;
    exp::Scenario scenario(run_cfg);
    const hadoop::JobResult result = scenario.run_job(job);
    const double seconds = result.completion_time().seconds();
    if (kind == exp::SchedulerKind::kEcmp) {
      ecmp_seconds = seconds;
    } else {
      pythia_seconds = seconds;
    }
    table.add_row({exp::scheduler_name(kind), util::Table::seconds(seconds),
                   util::Table::seconds(
                       (result.shuffle_phase_end() - result.map_phase_end())
                           .seconds())});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (pythia_seconds > 0.0) {
    std::printf("Pythia speedup over ECMP: %.1f%%\n",
                (ecmp_seconds / pythia_seconds - 1.0) * 100.0);
  }
  return 0;
}
