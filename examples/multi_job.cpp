// Workload mix: a FIFO queue of heterogeneous HiBench-like jobs sharing the
// cluster, with and without Pythia. Shows that predictions from concurrent
// shuffles of different jobs coexist in one collector (per-job reducer
// namespaces) and that the speedup carries over to makespan.
//
//   ./build/examples/multi_job
#include <cstdio>
#include <vector>

#include "experiments/scenario.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;
  using util::Bytes;

  const std::vector<hadoop::JobSpec> mix = {
      workloads::sort_job(Bytes{15LL * 1000 * 1000 * 1000}, 8),
      workloads::wordcount(Bytes{10LL * 1000 * 1000 * 1000}, 6),
      workloads::terasort(Bytes{12LL * 1000 * 1000 * 1000}, 8),
      workloads::pagerank_iteration(Bytes{8LL * 1000 * 1000 * 1000}, 6),
  };

  util::Table table({"scheduler", "makespan", "per-job completions"});
  double makespans[2] = {0.0, 0.0};
  int idx = 0;
  for (const auto kind :
       {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 17;
    cfg.scheduler = kind;
    cfg.background.oversubscription = 10.0;
    exp::Scenario scenario(cfg);

    // Submit the whole mix up front (FIFO across jobs), then run to drain.
    std::vector<hadoop::JobResult> results(mix.size());
    std::size_t done = 0;
    for (std::size_t j = 0; j < mix.size(); ++j) {
      scenario.engine().submit(mix[j], [&results, &done, j](
                                           const hadoop::JobResult& r) {
        results[j] = r;
        ++done;
      });
    }
    scenario.simulation().run();
    if (done != mix.size()) {
      std::fprintf(stderr, "only %zu/%zu jobs completed\n", done, mix.size());
      return 1;
    }

    double makespan = 0.0;
    std::string per_job;
    for (const auto& r : results) {
      makespan = std::max(makespan, r.completed.seconds());
      per_job += r.name + "=" +
                 util::Table::num(r.completion_time().seconds(), 0) + "s ";
    }
    makespans[idx++] = makespan;
    table.add_row({exp::scheduler_name(kind), util::Table::seconds(makespan),
                   per_job});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nmakespan improvement: %.1f%%\n",
              (makespans[0] / makespans[1] - 1.0) * 100.0);
  return 0;
}
