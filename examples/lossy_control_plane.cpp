// Lossy control plane: run the same sort job three times — clean control
// plane, 30 % intent loss, and a dead prediction channel — and watch the
// degradation story play out. With moderate loss Pythia keeps most of its
// speedup (surviving intents still cover the big aggregates); with total
// loss the health watchdog notices the silence and falls the system back to
// plain ECMP, so the run costs exactly the ECMP baseline and never more.
//
//   ./build/examples/lossy_control_plane
#include <cstdio>

#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace {

using namespace pythia;

struct Outcome {
  double seconds = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t rules = 0;
  std::uint64_t fallbacks = 0;
};

Outcome run(double intent_loss) {
  exp::ScenarioConfig cfg;
  cfg.seed = 4;
  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  exp::ControlPlaneFaultProfile profile;
  profile.intent_loss = intent_loss;
  exp::apply_control_plane_faults(cfg, profile);

  exp::Scenario scenario(std::move(cfg));
  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);
  Outcome out;
  out.seconds = scenario.run_job(job).completion_time().seconds();
  const auto& py = *scenario.pythia();
  out.dropped = py.instrumentation().channel().messages_dropped();
  out.rules = scenario.controller().rules_installed();
  out.fallbacks = py.watchdog().fallbacks();
  return out;
}

}  // namespace

int main() {
  using namespace pythia;

  exp::ScenarioConfig ecfg;
  ecfg.seed = 4;
  ecfg.scheduler = exp::SchedulerKind::kEcmp;
  ecfg.background.oversubscription = 10.0;
  const double ecmp = exp::run_completion_seconds(
      ecfg, workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20));
  std::printf("ECMP baseline:            %6.1f s\n\n", ecmp);

  for (const double loss : {0.0, 0.3, 1.0}) {
    const Outcome o = run(loss);
    std::printf("Pythia, %3.0f%% intent loss: %6.1f s  (%+.1f%% vs ECMP; "
                "%llu intents dropped, %llu rules, %llu fallback(s))\n",
                100.0 * loss, o.seconds, 100.0 * (o.seconds / ecmp - 1.0),
                static_cast<unsigned long long>(o.dropped),
                static_cast<unsigned long long>(o.rules),
                static_cast<unsigned long long>(o.fallbacks));
  }

  std::printf(
      "\nThe watchdog's guarantee: when the prediction channel goes dark, "
      "Pythia\nsteps aside and the job pays the ECMP price — never more. "
      "See\ndocs/robustness.md and bench/ablation_control_plane for the "
      "full sweeps.\n");
  return 0;
}
