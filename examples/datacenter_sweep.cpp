// Datacenter sweep: Pythia on a leaf-spine fabric with growing path
// diversity. The paper's testbed has exactly two inter-rack paths; this
// example explores the generalization its Section IV design (k-shortest
// paths + first-fit packing) is built for.
//
//   ./build/examples/datacenter_sweep
#include <cstdio>

#include "experiments/scenario.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  util::Table table({"spines (paths)", "ECMP (s)", "Pythia (s)", "speedup"});
  const auto job =
      workloads::sort_job(util::Bytes{20LL * 1000 * 1000 * 1000}, 12);

  for (const std::size_t spines : {2UL, 4UL, 8UL}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 21;
    cfg.topology_kind = exp::TopologyKind::kLeafSpine;
    cfg.leaf_spine.racks = 2;
    cfg.leaf_spine.servers_per_rack = 5;
    cfg.leaf_spine.spines = spines;
    cfg.controller.k_paths = spines;
    cfg.background.oversubscription = 10.0;
    // Load the first spine heavily, the next moderately, the rest lightly —
    // path diversity means more escape routes for a load-aware scheduler.
    cfg.background.path_intensity = {1.0, 0.5, 0.15};

    double ecmp_s = 0.0;
    double pythia_s = 0.0;
    for (const auto kind :
         {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
      exp::ScenarioConfig run_cfg = cfg;
      run_cfg.scheduler = kind;
      exp::Scenario scenario(run_cfg);
      const double secs =
          scenario.run_job(job).completion_time().seconds();
      (kind == exp::SchedulerKind::kEcmp ? ecmp_s : pythia_s) = secs;
    }
    table.add_row({std::to_string(spines), util::Table::num(ecmp_s, 1),
                   util::Table::num(pythia_s, 1),
                   util::Table::percent(ecmp_s / pythia_s - 1.0)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
