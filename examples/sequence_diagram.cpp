// Reproduces the paper's Fig. 1a view: the sequence diagram of a toy-sized
// sort job (3 map tasks, 2 reducers) on a non-blocking network, with the
// job-skew effect — reducer-0 receives 5x the data of reducer-1 — visible in
// both the diagram and the per-reducer table.
//
//   ./build/examples/sequence_diagram
#include <cstdio>

#include "experiments/scenario.hpp"
#include "viz/gantt.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  exp::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.scheduler = exp::SchedulerKind::kEcmp;
  // Non-blocking 1 Gbps network, as in the paper's motivating example.
  cfg.background.oversubscription = 1.0;
  cfg.two_rack.host_link = util::BitsPerSec{1e9};
  cfg.two_rack.inter_rack_capacity = util::BitsPerSec{1e9};
  // A small cluster so three map slots matter.
  cfg.two_rack.servers_per_rack = 2;
  cfg.cluster.map_slots_per_server = 2;
  cfg.cluster.reduce_slots_per_server = 1;

  exp::Scenario scenario(cfg);
  const hadoop::JobResult result =
      scenario.run_job(workloads::toy_skewed_sort());

  std::printf("%s\n", viz::render_sequence_diagram(result).c_str());
  std::printf("%s\n", viz::render_reducer_summary(result).c_str());
  std::printf("%s\n", viz::render_phase_summary(result).c_str());

  const auto loads = result.reducer_load_profile();
  if (loads.size() == 2 && loads[1] > 0.0) {
    std::printf("reducer-0 received %.1fx the data of reducer-1\n",
                loads[0] / loads[1]);
  }
  return 0;
}
