// Skew study: how reducer key-space skew shapes the shuffle and how much of
// the skew penalty Pythia's size-aware path packing recovers.
//
// The paper motivates Pythia with the job-skew effect ("not uncommon in many
// MapReduce workloads"): when one reducer receives several times more data,
// the flows feeding it deserve proportionally more network capacity. This
// example sweeps the Zipf exponent of the partition skew and reports, per
// setting: the realized reducer skew factor, ECMP and Pythia completion
// times, and the speedup.
//
//   ./build/examples/skew_study
#include <cstdio>

#include "experiments/scenario.hpp"
#include "hadoop/partition.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  exp::ScenarioConfig base;
  base.seed = 11;
  base.background.oversubscription = 10.0;

  util::Table table({"zipf s", "reducer skew (max/mean)", "ECMP (s)",
                     "Pythia (s)", "speedup"});

  for (const double s : {0.0, 0.5, 1.0, 1.5}) {
    hadoop::JobSpec job =
        workloads::sort_job(util::Bytes{20LL * 1000 * 1000 * 1000}, 10, s);

    double ecmp_s = 0.0;
    double pythia_s = 0.0;
    double skew = 1.0;
    for (const auto kind :
         {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
      exp::ScenarioConfig cfg = base;
      cfg.scheduler = kind;
      exp::Scenario scenario(cfg);
      const auto result = scenario.run_job(job);
      const double secs = result.completion_time().seconds();
      if (kind == exp::SchedulerKind::kEcmp) {
        ecmp_s = secs;
        skew = hadoop::skew_factor(result.reducer_load_profile());
      } else {
        pythia_s = secs;
      }
    }
    table.add_row({util::Table::num(s, 1), util::Table::num(skew, 2) + "x",
                   util::Table::num(ecmp_s, 1),
                   util::Table::num(pythia_s, 1),
                   util::Table::percent(ecmp_s / pythia_s - 1.0)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
