// Path-load timelines: watch the two inter-rack cables during a shuffle
// under ECMP vs Pythia — the live version of the paper's Fig. 1b port-load
// snapshot. ECMP splits traffic onto both paths including the nearly-dead
// one; Pythia steers everything onto the healthy cable.
//
//   ./build/examples/path_loads
#include <cstdio>

#include "experiments/scenario.hpp"
#include "net/link_recorder.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  util::Table table({"scheduler", "hot cable mean util", "cold cable mean util",
                     "completion"});
  for (const auto kind :
       {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 3;
    cfg.scheduler = kind;
    cfg.background.oversubscription = 10.0;
    exp::Scenario scenario(cfg);

    const auto& paths = scenario.controller().routing().paths(
        scenario.servers()[0], scenario.servers()[9]);
    const net::LinkId hot = paths[0].links[1];   // carries the heavy CBR
    const net::LinkId cold = paths[1].links[1];
    net::LinkRecorder recorder(scenario.fabric(), {hot, cold},
                               util::Duration::millis(250));

    const auto result = scenario.run_job(
        workloads::sort_job(util::Bytes{30LL * 1000 * 1000 * 1000}, 12));

    table.add_row({exp::scheduler_name(kind),
                   util::Table::percent(recorder.mean_utilization(hot)),
                   util::Table::percent(recorder.mean_utilization(cold)),
                   util::Table::seconds(result.completion_time().seconds())});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nhot cable carries 90%% background; the cold one is where "
              "the shuffle belongs.\n");
  return 0;
}
