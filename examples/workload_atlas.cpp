// Workload atlas: the shuffle-relevant character of every bundled workload —
// flow counts, flow sizes, skew, compute balance. This is the view that
// explains why the paper saw different optimization headroom for Nutch
// (many small flows) versus Sort (fewer large ones).
//
//   ./build/examples/workload_atlas
#include <cstdio>

#include "experiments/scenario.hpp"
#include "hadoop/partition.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;
  using util::Bytes;

  const std::vector<hadoop::JobSpec> specs = {
      workloads::paper_sort(),
      workloads::paper_nutch(),
      workloads::wordcount(Bytes{24LL * 1000 * 1000 * 1000}, 12),
      workloads::terasort(Bytes{24LL * 1000 * 1000 * 1000}, 12),
      workloads::pagerank_iteration(Bytes{24LL * 1000 * 1000 * 1000}, 12),
  };

  util::Table table({"workload", "maps", "shuffle", "fetches",
                     "median fetch", "reducer skew", "shuffle share"});
  for (const auto& spec : specs) {
    exp::ScenarioConfig cfg;
    cfg.seed = 23;
    cfg.scheduler = exp::SchedulerKind::kEcmp;
    exp::Scenario scenario(cfg);
    const auto result = scenario.run_job(spec);

    util::SampleSet fetch_sizes;
    for (const auto& f : result.fetches) {
      fetch_sizes.add(f.payload.as_double());
    }
    util::SimTime first_fetch = util::SimTime::max();
    for (const auto& r : result.reducers) {
      first_fetch = std::min(first_fetch, r.started);
    }
    const double share =
        (result.shuffle_phase_end() - first_fetch).seconds() /
        result.completion_time().seconds();

    table.add_row({
        spec.name,
        std::to_string(result.maps.size()),
        util::format_bytes(result.total_shuffle_bytes()),
        std::to_string(result.fetches.size()),
        util::format_bytes(Bytes{
            static_cast<std::int64_t>(fetch_sizes.median())}),
        util::Table::num(hadoop::skew_factor(result.reducer_load_profile()),
                         2) +
            "x",
        util::Table::percent(share),
    });
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
