// Failure drill: run a sort job under Pythia while an inter-rack cable dies
// and recovers mid-shuffle. Demonstrates the controller's topology-update
// service (paper §IV): the routing graph is rebuilt, rules over the dead
// link are purged, stranded flows are rerouted, and the job completes.
//
//   ./build/examples/failure_drill
#include <cstdio>

#include "experiments/scenario.hpp"
#include "viz/gantt.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;
  using util::Duration;

  exp::ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;

  exp::Scenario scenario(cfg);
  const auto& paths = scenario.controller().routing().paths(
      scenario.servers()[0], scenario.servers()[9]);
  const net::LinkId victim = paths[1].links[1];

  std::printf("t=10s: failing inter-rack cable (link %u), t=30s: restore\n\n",
              victim.value());
  scenario.simulation().after(Duration::seconds_i(10), [&] {
    scenario.controller().handle_link_failure(victim);
    std::printf("  [t=%.1fs] link down; routing graph rebuilt (%zu path(s) "
                "remain for a cross-rack pair)\n",
                scenario.simulation().now().seconds(),
                scenario.controller()
                    .routing()
                    .paths(scenario.servers()[0], scenario.servers()[9])
                    .size());
  });
  scenario.simulation().after(Duration::seconds_i(30), [&] {
    scenario.controller().handle_link_restore(victim);
    std::printf("  [t=%.1fs] link restored\n",
                scenario.simulation().now().seconds());
  });

  const auto job =
      workloads::sort_job(util::Bytes{30LL * 1000 * 1000 * 1000}, 12);
  const auto result = scenario.run_job(job);

  std::printf("\njob completed in %.1f s (%zu maps, %zu reducers, %zu "
              "topology rebuilds)\n",
              result.completion_time().seconds(), result.maps.size(),
              result.reducers.size(),
              static_cast<std::size_t>(
                  scenario.controller().topology_rebuilds()));
  std::printf("\n%s", viz::render_phase_summary(result).c_str());
  return 0;
}
