// Prediction-efficacy trace (the paper's Fig. 5 methodology): run an
// integer sort with both the Pythia instrumentation and a NetFlow probe
// attached, pick one server, and compare its *predicted* cumulative sourced
// shuffle volume against the *measured* on-the-wire curve. Exports both
// curves to CSV for plotting.
//
//   ./build/examples/prediction_trace [output.csv]
#include <cstdio>
#include <string>

#include "experiments/scenario.hpp"
#include "net/netflow.hpp"
#include "util/table.hpp"
#include "viz/timeline_export.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  const std::string csv_path =
      argc > 1 ? argv[1] : "prediction_trace.csv";

  exp::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.background.oversubscription = 5.0;
  cfg.enable_netflow = true;

  exp::Scenario scenario(cfg);
  // A scaled-down integer sort keeps the example quick; the fig5 bench runs
  // the full 60 GB configuration.
  const auto job =
      workloads::sort_job(util::Bytes{12LL * 1000 * 1000 * 1000}, 10);
  scenario.run_job(job);

  const net::NodeId server = scenario.servers().at(4);  // paper uses Server4
  const auto& predicted =
      scenario.pythia()->collector().predicted_curve(server);
  const auto& measured = scenario.netflow()->curve(server);

  viz::export_prediction_csv(predicted, measured, csv_path);
  std::printf("wrote %zu predicted + %zu measured points to %s\n",
              predicted.size(), measured.size(), csv_path.c_str());

  if (!predicted.empty() && !measured.empty()) {
    const double total_predicted = predicted.back().cumulative.as_double();
    const double total_measured = measured.back().cumulative.as_double();
    // Horizontal gap: how much earlier the prediction reaches a volume the
    // wire later reaches (sampled at half the measured total).
    const double probe_volume = total_measured * 0.5;
    const auto t_pred = net::curve_time_to_reach(
        [&] {
          std::vector<net::VolumePoint> v;
          v.reserve(predicted.size());
          for (const auto& p : predicted) {
            v.push_back(net::VolumePoint{p.at, p.cumulative});
          }
          return v;
        }(),
        probe_volume);
    const auto t_meas = net::curve_time_to_reach(measured, probe_volume);
    std::printf("prediction lead at 50%% volume: %.1f s\n",
                (t_meas - t_pred).seconds());
    std::printf("volume over-estimate: %.1f%%\n",
                (total_predicted / total_measured - 1.0) * 100.0);
  }
  return 0;
}
