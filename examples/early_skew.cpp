// Early skew prediction: the prediction middleware as a standalone
// component (paper conclusions: useful "beyond network scheduling, e.g.
// storage or early skew prediction"). Watches a skewed sort job and prints
// how the extrapolated per-reducer volumes converge to the final truth as
// more maps finish.
//
//   ./build/examples/early_skew
#include <cstdio>
#include <vector>

#include "core/skew_predictor.hpp"
#include "experiments/scenario.hpp"
#include "hadoop/partition.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  exp::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.scheduler = exp::SchedulerKind::kEcmp;
  exp::Scenario scenario(cfg);

  hadoop::JobSpec job = workloads::sort_job(
      util::Bytes{30LL * 1000 * 1000 * 1000}, 8, 1.2);

  core::SkewPredictor predictor(0, job.num_maps(), job.num_reducers);
  struct Checkpoint {
    double fraction;
    core::SkewEstimate estimate;
  };
  std::vector<Checkpoint> checkpoints;
  std::vector<double> marks{0.1, 0.25, 0.5, 0.75};

  struct Feeder final : hadoop::EngineObserver {
    core::SkewPredictor* predictor;
    std::vector<Checkpoint>* checkpoints;
    std::vector<double>* marks;
    std::size_t total_maps;
    core::ProtocolOverheadModel overhead;
    void on_map_output_ready(const hadoop::MapOutputNotice& n) override {
      for (std::size_t r = 0; r < n.per_reducer_payload.size(); ++r) {
        core::ShuffleIntent intent;
        intent.job_serial = n.job_serial;
        intent.map_index = n.map_index;
        intent.reduce_index = r;
        intent.predicted_wire_bytes =
            overhead.predict_wire_bytes(n.per_reducer_payload[r]);
        predictor->ingest(intent);
      }
      const double frac = static_cast<double>(predictor->maps_observed()) /
                          static_cast<double>(total_maps);
      if (!marks->empty() && frac >= marks->front()) {
        checkpoints->push_back(Checkpoint{frac, predictor->estimate()});
        marks->erase(marks->begin());
      }
    }
  } feeder;
  feeder.predictor = &predictor;
  feeder.checkpoints = &checkpoints;
  feeder.marks = &marks;
  feeder.total_maps = job.num_maps();
  scenario.engine().add_observer(&feeder);

  const auto result = scenario.run_job(job);
  const auto loads = result.reducer_load_profile();
  const double true_skew = hadoop::skew_factor(loads);
  const auto hottest = static_cast<std::size_t>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());

  util::Table table({"maps observed", "predicted skew", "predicted hottest",
                     "max reducer volume error"});
  for (const auto& cp : checkpoints) {
    double worst_err = 0.0;
    for (std::size_t r = 0; r < loads.size(); ++r) {
      // Compare against wire-volume truth (payload x protocol overhead).
      const double truth = loads[r] * feeder.overhead.factor();
      if (truth > 0.0) {
        worst_err = std::max(
            worst_err,
            std::abs(cp.estimate.predicted_final_bytes[r] - truth) / truth);
      }
    }
    table.add_row({util::Table::percent(cp.fraction, 0),
                   util::Table::num(cp.estimate.skew_factor, 2) + "x",
                   "reducer-" + std::to_string(cp.estimate.hottest_reducer),
                   util::Table::percent(worst_err)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nfinal truth: skew %.2fx, hottest reducer-%zu\n", true_skew,
              hottest);
  return 0;
}
