// simulate — command-line driver for the simulator.
//
// Runs one job on a configurable testbed and prints the result; optionally
// exports the task/fetch timeline as CSV.
//
//   ./build/examples/simulate [options]
//     --workload sort|nutch|wordcount|terasort|pagerank  (default sort)
//     --input-gb N          job input size             (default 60)
//     --reducers N          reducer count              (default 20)
//     --scheduler ecmp|pythia|hedera|flowcomb|oracle|spray (default pythia)
//     --oversub R           1:R background ratio       (default 10)
//     --seed S              RNG seed                   (default 1)
//     --servers-per-rack N  2-rack testbed size        (default 5)
//     --cables N            parallel inter-rack links  (default 2)
//     --weighted            Orchestra-style proportional flow rates
//     --rack-rules          rack-pair wildcard aggregation
//     --speculation         speculative map execution
//     --diagram             print the sequence diagram
//     --csv PATH            export the timeline as CSV
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/scenario.hpp"
#include "viz/gantt.hpp"
#include "viz/timeline_export.hpp"
#include "workloads/hibench.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload W] [--input-gb N] [--reducers N] "
               "[--scheduler S] [--oversub R]\n"
               "          [--seed S] [--servers-per-rack N] [--cables N] "
               "[--weighted] [--rack-rules]\n"
               "          [--speculation] [--diagram] [--csv PATH]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pythia;

  std::string workload = "sort";
  double input_gb = 60.0;
  std::size_t reducers = 20;
  std::string scheduler = "pythia";
  double oversub = 10.0;
  std::uint64_t seed = 1;
  std::size_t servers_per_rack = 5;
  std::size_t cables = 2;
  bool weighted = false;
  bool rack_rules = false;
  bool speculation = false;
  bool diagram = false;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = next();
    } else if (arg == "--input-gb") {
      input_gb = std::atof(next());
    } else if (arg == "--reducers") {
      reducers = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--scheduler") {
      scheduler = next();
    } else if (arg == "--oversub") {
      oversub = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--servers-per-rack") {
      servers_per_rack = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--cables") {
      cables = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--weighted") {
      weighted = true;
    } else if (arg == "--rack-rules") {
      rack_rules = true;
    } else if (arg == "--speculation") {
      speculation = true;
    } else if (arg == "--diagram") {
      diagram = true;
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      usage(argv[0]);
    }
  }

  const util::Bytes input{static_cast<std::int64_t>(input_gb * 1e9)};
  hadoop::JobSpec job;
  if (workload == "sort") {
    job = workloads::sort_job(input, reducers);
  } else if (workload == "nutch") {
    job = workloads::nutch_indexing(
        static_cast<std::size_t>(input.count() / 1600), reducers);
  } else if (workload == "wordcount") {
    job = workloads::wordcount(input, reducers);
  } else if (workload == "terasort") {
    job = workloads::terasort(input, reducers);
  } else if (workload == "pagerank") {
    job = workloads::pagerank_iteration(input, reducers);
  } else {
    usage(argv[0]);
  }

  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.two_rack.servers_per_rack = servers_per_rack;
  cfg.two_rack.inter_rack_links = cables;
  cfg.controller.k_paths = cables;
  cfg.background.oversubscription = oversub;
  cfg.cluster.speculative_execution = speculation;
  cfg.pythia.weighted_flows = weighted;
  if (rack_rules) {
    cfg.pythia.allocator.aggregation = core::Aggregation::kRackPair;
  }
  if (scheduler == "ecmp") {
    cfg.scheduler = exp::SchedulerKind::kEcmp;
  } else if (scheduler == "pythia") {
    cfg.scheduler = exp::SchedulerKind::kPythia;
  } else if (scheduler == "hedera") {
    cfg.scheduler = exp::SchedulerKind::kHedera;
  } else if (scheduler == "flowcomb") {
    cfg.scheduler = exp::SchedulerKind::kFlowCombLike;
  } else if (scheduler == "oracle") {
    cfg.scheduler = exp::SchedulerKind::kStaticOracle;
  } else if (scheduler == "spray") {
    cfg.scheduler = exp::SchedulerKind::kPacketSpray;
  } else {
    usage(argv[0]);
  }

  exp::Scenario scenario(cfg);
  const hadoop::JobResult result = scenario.run_job(job);

  std::printf("%s on %zu servers, %zu inter-rack cable(s), 1:%g background, "
              "%s scheduler\n",
              job.name.c_str(), 2 * servers_per_rack, cables, oversub,
              exp::scheduler_name(cfg.scheduler).c_str());
  std::printf("completion: %.1f s  (maps %zu, reducers %zu, shuffled %s, "
              "remote %s)\n",
              result.completion_time().seconds(), result.maps.size(),
              result.reducers.size(),
              util::format_bytes(result.total_shuffle_bytes()).c_str(),
              util::format_bytes(result.remote_shuffle_bytes()).c_str());
  if (result.map_retries > 0 || result.stragglers > 0) {
    std::printf("faults: %zu retries, %zu stragglers\n", result.map_retries,
                result.stragglers);
  }
  std::printf("\n%s", viz::render_phase_summary(result).c_str());
  if (diagram) {
    std::printf("\n%s", viz::render_sequence_diagram(result).c_str());
  }
  std::printf("\n%s", viz::render_reducer_summary(result).c_str());
  if (!csv_path.empty()) {
    viz::export_timeline_csv(result, csv_path);
    std::printf("\ntimeline written to %s\n", csv_path.c_str());
  }
  return 0;
}
