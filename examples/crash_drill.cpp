// Crash-drill harness for the CI checkpoint job (and for poking the
// crash-tolerant executor by hand).
//
// Runs a small fixed oversubscription sweep through the guarded executor and
// prints its deterministic CSV to stdout; failures go to stderr. CI runs it
// clean, then with PYTHIA_INJECT_RUN_FAULT / PYTHIA_INJECT_RUN_TIMEOUT set,
// and diffs the outputs — injected first-attempt crashes and timeouts must
// recover (retry on the same seed lane) to byte-identical results. With
// --manifest it also exercises sweep resume across process launches.
//
// Exit status: 0 when every run completed, 3 when any run exhausted its
// attempt budget (its typed failure is on stderr).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/crash_handler.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  exp::install_crash_handler();

  exp::GuardedSweepConfig cfg;
  cfg.sweep.seeds = {1, 2};
  cfg.sweep.threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc) {
      cfg.manifest_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-attempts") == 0 && i + 1 < argc) {
      cfg.guard.max_attempts =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      cfg.guard.timeout_seconds = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: crash_drill [--manifest PATH] [--max-attempts N] "
                   "[--timeout SECONDS]\n");
      return 1;
    }
  }

  // Big enough that every run crosses the 1024-event cooperative abort poll
  // (injected timeouts are honored there), small enough to stay fast.
  const auto job =
      workloads::sort_job(util::Bytes{8'000'000'000LL}, 32);
  const std::vector<exp::OversubPoint> points = {{"none", 1.0},
                                                 {"1:10", 10.0}};
  const auto result =
      exp::run_oversubscription_sweep_guarded(cfg, job, points);

  if (result.resumed_runs > 0) {
    std::fprintf(stderr, "resumed %zu run(s) from manifest\n",
                 result.resumed_runs);
  }
  for (const auto& f : result.failures) {
    std::fprintf(stderr,
                 "run %zu failed: point %s arm %s seed %llu — %s after %zu "
                 "attempt(s): %s\n",
                 f.run_index, f.point_label.c_str(), f.arm.c_str(),
                 static_cast<unsigned long long>(f.seed),
                 exp::run_failure_name(f.kind), f.attempts,
                 f.message.c_str());
  }

  // The deterministic artifact: byte-identical for any thread count and
  // across injected-crash/resume recovery.
  std::fputs(exp::speedup_rows_csv(result.rows).c_str(), stdout);
  return result.failures.empty() ? 0 : 3;
}
