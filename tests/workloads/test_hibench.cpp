#include "workloads/hibench.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace pythia::workloads {
namespace {

using util::Bytes;

TEST(Hibench, PaperSortConfiguration) {
  const auto spec = paper_sort();
  EXPECT_EQ(spec.name, "sort");
  EXPECT_EQ(spec.input.count(), 240'000'000'000LL);
  EXPECT_DOUBLE_EQ(spec.map_output_ratio, 1.0);
  EXPECT_EQ(spec.num_reducers, 20u);
  EXPECT_EQ(spec.num_maps(), 938u);  // 240 GB / 256 MB, rounded up
  EXPECT_EQ(spec.expected_shuffle_volume().count(), 240'000'000'000LL);
}

TEST(Hibench, PaperNutchConfiguration) {
  const auto spec = paper_nutch();
  EXPECT_EQ(spec.name, "nutch-indexing");
  EXPECT_EQ(spec.input.count(), 8'000'000'000LL);  // 5M pages x 1600 B
  EXPECT_GT(spec.map_output_ratio, 1.0);           // index expansion
  // Nutch's flows are smaller than Sort's: more maps per input byte.
  const auto sort = paper_sort();
  const double nutch_flow = spec.expected_shuffle_volume().as_double() /
                            static_cast<double>(spec.num_maps()) /
                            static_cast<double>(spec.num_reducers);
  const double sort_flow = sort.expected_shuffle_volume().as_double() /
                           static_cast<double>(sort.num_maps()) /
                           static_cast<double>(sort.num_reducers);
  EXPECT_LT(nutch_flow, sort_flow);
}

TEST(Hibench, IntegerSort60g) {
  const auto spec = integer_sort_60g();
  EXPECT_EQ(spec.input.count(), 60'000'000'000LL);
  EXPECT_DOUBLE_EQ(spec.map_output_ratio, 1.0);
}

TEST(Hibench, WordcountShuffleIsReduced) {
  const auto spec = wordcount(Bytes{10'000'000'000LL}, 8);
  EXPECT_LT(spec.map_output_ratio, 0.5);  // combiners collapse duplicates
  EXPECT_EQ(spec.skew.kind, hadoop::SkewKind::kZipf);
  EXPECT_GE(spec.skew.zipf_s, 1.0);  // natural-language skew
}

TEST(Hibench, TerasortIsBalanced) {
  const auto spec = terasort(Bytes{10'000'000'000LL}, 8);
  EXPECT_EQ(spec.skew.kind, hadoop::SkewKind::kUniform);
  EXPECT_DOUBLE_EQ(spec.map_output_ratio, 1.0);
}

TEST(Hibench, PagerankModeratelySkewed) {
  const auto spec = pagerank_iteration(Bytes{5'000'000'000LL}, 8);
  EXPECT_GT(spec.map_output_ratio, 1.0);
  EXPECT_EQ(spec.skew.kind, hadoop::SkewKind::kZipf);
}

TEST(Hibench, NumMapsRounding) {
  hadoop::JobSpec spec;
  spec.input = Bytes{100};
  spec.block = Bytes{64};
  EXPECT_EQ(spec.num_maps(), 2u);
  spec.num_maps_override = 7;
  EXPECT_EQ(spec.num_maps(), 7u);
  spec.num_maps_override = 0;
  spec.input = Bytes{64};
  EXPECT_EQ(spec.num_maps(), 1u);
}

TEST(Hibench, ToyJobReproducesFig1aSkew) {
  pythia::testing::TestCluster cluster(7);
  const auto result = cluster.run(toy_skewed_sort());
  ASSERT_EQ(result.reducers.size(), 2u);
  const auto loads = result.reducer_load_profile();
  EXPECT_NEAR(loads[0] / loads[1], 5.0, 0.5);
}

TEST(Hibench, AllSpecsRunToCompletionWhenScaledDown) {
  // Every generator must produce a runnable job; scale inputs down so the
  // whole suite stays fast.
  std::vector<hadoop::JobSpec> specs = {
      sort_job(Bytes{2'000'000'000}, 4),
      nutch_indexing(100'000, 4),
      wordcount(Bytes{2'000'000'000}, 4),
      terasort(Bytes{2'000'000'000}, 4),
      pagerank_iteration(Bytes{2'000'000'000}, 4),
      toy_skewed_sort(),
  };
  for (const auto& spec : specs) {
    pythia::testing::TestCluster cluster(11);
    const auto result = cluster.run(spec);
    EXPECT_GT(result.completion_time().seconds(), 0.0) << spec.name;
    EXPECT_EQ(result.maps.size(), spec.num_maps()) << spec.name;
  }
}

}  // namespace
}  // namespace pythia::workloads
