#include "workloads/trace.hpp"

#include <gtest/gtest.h>

#include "experiments/scenario.hpp"

namespace pythia::workloads {
namespace {

TEST(Trace, DeterministicForSeed) {
  const TraceConfig cfg;
  const auto a = generate_trace(cfg, 7);
  const auto b = generate_trace(cfg, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_at, b[i].submit_at);
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
    EXPECT_EQ(a[i].spec.input, b[i].spec.input);
  }
  const auto c = generate_trace(cfg, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].spec.input != c[i].spec.input;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Trace, RespectsConfigBounds) {
  TraceConfig cfg;
  cfg.jobs = 50;
  cfg.min_input = util::Bytes{1'000'000'000};
  cfg.max_input = util::Bytes{10'000'000'000};
  cfg.min_reducers = 3;
  cfg.max_reducers = 9;
  const auto trace = generate_trace(cfg, 11);
  ASSERT_EQ(trace.size(), 50u);
  for (const auto& e : trace) {
    EXPECT_GE(e.spec.input, cfg.min_input);
    EXPECT_LE(e.spec.input, cfg.max_input);
    EXPECT_GE(e.spec.num_reducers, 3u);
    EXPECT_LE(e.spec.num_reducers, 9u);
  }
}

TEST(Trace, ArrivalsAreSortedAndSpread) {
  TraceConfig cfg;
  cfg.jobs = 30;
  const auto trace = generate_trace(cfg, 13);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].submit_at, trace[i - 1].submit_at);
  }
  // Poisson(mean 30 s) over 30 jobs: total span is in the right ballpark.
  const double span = trace.back().submit_at.seconds();
  EXPECT_GT(span, 200.0);
  EXPECT_LT(span, 3000.0);
}

TEST(Trace, MixesJobClasses) {
  TraceConfig cfg;
  cfg.jobs = 40;
  cfg.shuffle_heavy_fraction = 0.5;
  const auto trace = generate_trace(cfg, 17);
  std::size_t sorts = 0;
  std::size_t aggs = 0;
  for (const auto& e : trace) {
    if (e.spec.name.rfind("trace-sort", 0) == 0) ++sorts;
    if (e.spec.name.rfind("trace-agg", 0) == 0) ++aggs;
  }
  EXPECT_EQ(sorts + aggs, 40u);
  EXPECT_GT(sorts, 8u);
  EXPECT_GT(aggs, 8u);
}

TEST(Trace, RunsEndToEnd) {
  TraceConfig cfg;
  cfg.jobs = 5;
  cfg.max_input = util::Bytes{4'000'000'000};
  cfg.mean_interarrival = util::Duration::seconds_i(10);
  const auto trace = generate_trace(cfg, 19);

  exp::ScenarioConfig scenario_cfg;
  scenario_cfg.seed = 19;
  scenario_cfg.scheduler = exp::SchedulerKind::kPythia;
  scenario_cfg.background.oversubscription = 5.0;
  exp::Scenario scenario(scenario_cfg);

  std::size_t done = 0;
  for (const auto& entry : trace) {
    scenario.simulation().at(entry.submit_at, [&scenario, &entry, &done] {
      scenario.engine().submit(entry.spec,
                               [&done](const hadoop::JobResult&) { ++done; });
    });
  }
  scenario.simulation().run();
  EXPECT_EQ(done, trace.size());
}

}  // namespace
}  // namespace pythia::workloads
