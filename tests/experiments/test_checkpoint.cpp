// Checkpoint/restore identity proof: snapshot at T, restore, run to the end
// — the continuation must reproduce the uninterrupted run byte-for-byte
// (event-trace tail, job result, final state image). Restoration itself
// verifies the replayed image against the snapshot (restore_snapshot's
// contract), so `verified` already proves cursor-position identity; the
// assertions here extend that proof to the rest of the run.
#include "experiments/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "experiments/trace.hpp"
#include "net/routing.hpp"
#include "sim/snapshot.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

hadoop::JobSpec test_job() {
  // An 8 GB / 32-reducer sort fires a few thousand events and runs ~18 s of
  // sim time — room for mid-shuffle cuts and the link-failure drill below.
  return workloads::sort_job(util::Bytes{8'000'000'000LL}, 32);
}

/// A lossy control plane keeps retry/backoff and fault-channel delivery
/// state live at almost any checkpoint instant — the states the snapshot
/// audit cares most about (pending flow-mods in flight, armed retries).
ScenarioConfig faulted_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  ControlPlaneFaultProfile profile;
  profile.intent_loss = 0.05;
  profile.intent_jitter = util::Duration::millis(40);
  profile.flow_mod_loss = 0.2;
  profile.install_reject = 0.1;
  apply_control_plane_faults(cfg, profile);
  return cfg;
}

std::uint64_t total_events(const ScenarioConfig& cfg,
                           const hadoop::JobSpec& job) {
  Scenario scenario(cfg);
  (void)scenario.run_job(job);
  return scenario.simulation().queue().events_fired();
}

class CheckpointRestore : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointRestore, ContinuationReproducesUninterruptedRun) {
  const ScenarioConfig cfg = faulted_config(GetParam());
  const auto job = test_job();
  const std::uint64_t events = total_events(cfg, job);
  ASSERT_GT(events, 100u);

  // Three checkpoint instants: ramp-up, mid-shuffle, and the tail where
  // retries/backoffs from the lossy control plane are still draining.
  for (const std::uint64_t cut :
       {events / 4, events / 2, (3 * events) / 4}) {
    // Uninterrupted arm: run to the cut, capture, record the remainder.
    Scenario golden(cfg);
    golden.submit_job(job);
    golden.run_to_event_count(cut);
    const sim::Snapshot snap = capture_snapshot(golden, job, "property-cut");
    EXPECT_EQ(snap.cursor_events, cut);
    EventTraceRecorder golden_tail(golden);
    const hadoop::JobResult golden_result = golden.finish();

    // Restored arm: rebuild from (snapshot, config, job), continue.
    RestoreResult restored = restore_snapshot(snap, cfg, job);
    ASSERT_TRUE(restored.verified)
        << "seed " << GetParam() << " cut " << cut << ": "
        << restored.divergence;
    EventTraceRecorder restored_tail(*restored.scenario);
    const hadoop::JobResult restored_result = restored.scenario->finish();

    // The continuation is byte-identical: same remaining event trace, same
    // result, same final state image.
    EXPECT_EQ(restored_tail.text(), golden_tail.text())
        << "seed " << GetParam() << " cut " << cut;
    EXPECT_EQ(restored_result.completion_time(),
              golden_result.completion_time());
    EXPECT_EQ(restored_result.map_retries, golden_result.map_retries);
    sim::Snapshot golden_end = capture_snapshot(golden, job, "end");
    sim::Snapshot restored_end =
        capture_snapshot(*restored.scenario, job, "end");
    EXPECT_EQ(sim::Snapshot::describe_divergence(golden_end, restored_end),
              "");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointRestore,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// External-event runs restore too: the same prologue (here a link-failure
/// drill scheduled outside the config) must be re-applied on restore, and
/// the verification catches it when it is not.
TEST(CheckpointDrill, MidLinkFailureRestoresWithPrologue) {
  ScenarioConfig cfg = faulted_config(3);
  const auto job = test_job();
  const ScenarioPrologue drill = [](Scenario& s) {
    const auto& paths = s.controller().routing().paths(s.servers().front(),
                                                       s.servers().back());
    const net::LinkId victim = paths[1].links[1];
    s.simulation().after(util::Duration::seconds_i(5), [&s, victim] {
      s.controller().handle_link_failure(victim);
    });
    s.simulation().after(util::Duration::seconds_i(12), [&s, victim] {
      s.controller().handle_link_restore(victim);
    });
  };

  // Capture while the link is down (the job runs ~18 s), with the clock
  // parked between events (run_until) — exercises the advance_now path of
  // the cursor.
  Scenario golden(cfg);
  drill(golden);
  golden.submit_job(job);
  golden.run_until(util::SimTime{8'000'000'000LL});
  ASSERT_FALSE(golden.job_done());
  const sim::Snapshot snap = capture_snapshot(golden, job, "mid-failure");
  EventTraceRecorder golden_tail(golden);
  const hadoop::JobResult golden_result = golden.finish();

  RestoreResult restored = restore_snapshot(snap, cfg, job, drill);
  ASSERT_TRUE(restored.verified) << restored.divergence;
  EventTraceRecorder restored_tail(*restored.scenario);
  const hadoop::JobResult restored_result = restored.scenario->finish();
  EXPECT_EQ(restored_tail.text(), golden_tail.text());
  EXPECT_EQ(restored_result.completion_time(),
            golden_result.completion_time());

  // Dropping the prologue is not silent corruption: the replay diverges and
  // verification says so.
  RestoreResult wrong = restore_snapshot(snap, cfg, job);
  EXPECT_FALSE(wrong.verified);
  EXPECT_FALSE(wrong.divergence.empty());
}

/// The controller's routing graph is built lazily; the snapshot routing
/// section (slot-ordered link chains, forced materialization) must
/// nonetheless byte-match an eagerly built graph on the same topology — the
/// contract that makes lazy construction invisible to checkpoint identity.
TEST(CheckpointIdentity, LazyRoutingSectionMatchesEagerBuild) {
  const ScenarioConfig cfg = faulted_config(5);
  const auto job = test_job();
  Scenario scenario(cfg);
  scenario.submit_job(job);
  scenario.run_to_event_count(400);
  ASSERT_EQ(scenario.controller().routing().build_mode(),
            net::BuildMode::kLazy);
  // A real mid-run capture leaves some pairs unmaterialized.
  const sim::Snapshot snap = capture_snapshot(scenario, job, "lazy-vs-eager");
  const auto* routing = snap.section("routing");
  ASSERT_NE(routing, nullptr);

  const net::RoutingGraph eager(scenario.topology(),
                                cfg.controller.k_paths);
  sim::StateEncoder enc;
  eager.encode_state(enc);
  EXPECT_EQ(routing->bytes, enc.take());
}

TEST(CheckpointIdentity, RestoreRefusesForeignUniverse) {
  const ScenarioConfig cfg = faulted_config(1);
  const auto job = test_job();
  Scenario scenario(cfg);
  scenario.submit_job(job);
  scenario.run_to_event_count(200);
  const sim::Snapshot snap = capture_snapshot(scenario, job);

  ScenarioConfig wrong_seed = cfg;
  wrong_seed.seed = 2;
  EXPECT_THROW((void)restore_snapshot(snap, wrong_seed, job),
               sim::SnapshotError);

  ScenarioConfig wrong_knob = cfg;
  wrong_knob.background.oversubscription = 5.0;
  EXPECT_THROW((void)restore_snapshot(snap, wrong_knob, job),
               sim::SnapshotError);

  auto wrong_job = job;
  wrong_job.num_reducers += 1;
  EXPECT_THROW((void)restore_snapshot(snap, cfg, wrong_job),
               sim::SnapshotError);
}

TEST(CheckpointIdentity, SurvivesDiskRoundTrip) {
  const ScenarioConfig cfg = faulted_config(2);
  const auto job = test_job();
  Scenario scenario(cfg);
  scenario.submit_job(job);
  scenario.run_to_event_count(500);
  const sim::Snapshot snap = capture_snapshot(scenario, job, "disk");

  const std::string path = ::testing::TempDir() + "/checkpoint_rt.pysnap";
  snap.save(path);
  const sim::Snapshot loaded = sim::Snapshot::load(path);
  std::remove(path.c_str());

  RestoreResult restored = restore_snapshot(loaded, cfg, job);
  EXPECT_TRUE(restored.verified) << restored.divergence;
}

}  // namespace
}  // namespace pythia::exp
