#include "experiments/scenario.hpp"

#include <gtest/gtest.h>

#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

using util::Bytes;

hadoop::JobSpec tiny_job() {
  hadoop::JobSpec spec = workloads::sort_job(Bytes{2'000'000'000}, 4);
  return spec;
}

TEST(Scenario, BuildsForEverySchedulerKind) {
  for (const auto kind :
       {SchedulerKind::kEcmp, SchedulerKind::kPythia, SchedulerKind::kHedera,
        SchedulerKind::kFlowCombLike, SchedulerKind::kStaticOracle}) {
    ScenarioConfig cfg;
    cfg.seed = 2;
    cfg.scheduler = kind;
    cfg.background.oversubscription = 5.0;
    Scenario scenario(cfg);
    const auto result = scenario.run_job(tiny_job());
    EXPECT_GT(result.completion_time().seconds(), 0.0)
        << scheduler_name(kind);
    EXPECT_EQ(result.maps.size(), tiny_job().num_maps());
  }
}

TEST(Scenario, SchedulerNames) {
  EXPECT_EQ(scheduler_name(SchedulerKind::kEcmp), "ECMP");
  EXPECT_EQ(scheduler_name(SchedulerKind::kPythia), "Pythia");
  EXPECT_EQ(scheduler_name(SchedulerKind::kHedera), "Hedera");
  EXPECT_EQ(scheduler_name(SchedulerKind::kFlowCombLike), "FlowComb-like");
  EXPECT_EQ(scheduler_name(SchedulerKind::kStaticOracle), "StaticOracle");
}

TEST(Scenario, ComponentAccessorsMatchScheduler) {
  ScenarioConfig cfg;
  cfg.scheduler = SchedulerKind::kPythia;
  Scenario pythia_scn(cfg);
  EXPECT_NE(pythia_scn.pythia(), nullptr);
  EXPECT_EQ(pythia_scn.hedera(), nullptr);
  EXPECT_EQ(pythia_scn.netflow(), nullptr);

  cfg.scheduler = SchedulerKind::kHedera;
  cfg.enable_netflow = true;
  Scenario hedera_scn(cfg);
  EXPECT_EQ(hedera_scn.pythia(), nullptr);
  EXPECT_NE(hedera_scn.hedera(), nullptr);
  EXPECT_NE(hedera_scn.netflow(), nullptr);
}

TEST(Scenario, BackgroundMatchesOversubscription) {
  ScenarioConfig cfg;
  cfg.background.oversubscription = 10.0;
  cfg.background.path_intensity = {1.0, 0.1};
  Scenario scenario(cfg);
  // 2 paths x 2 directions installed.
  EXPECT_EQ(scenario.background().streams.size(), 4u);
  // No background at ratio 1.
  ScenarioConfig clean;
  Scenario clean_scn(clean);
  EXPECT_TRUE(clean_scn.background().streams.empty());
}

TEST(Scenario, StaticOracleInstallsCrossRackRules) {
  ScenarioConfig cfg;
  cfg.scheduler = SchedulerKind::kStaticOracle;
  cfg.background.oversubscription = 10.0;
  Scenario scenario(cfg);
  // 5 servers per rack, both directions: 2 * 5 * 5 = 50 pairs.
  EXPECT_EQ(scenario.controller().rules_installed(), 50u);
}

TEST(Scenario, DeterministicAcrossRebuilds) {
  auto once = [] {
    ScenarioConfig cfg;
    cfg.seed = 77;
    cfg.scheduler = SchedulerKind::kPythia;
    cfg.background.oversubscription = 10.0;
    Scenario scenario(cfg);
    return scenario.run_job(tiny_job()).completion_time().ns();
  };
  EXPECT_EQ(once(), once());
}

TEST(Scenario, SequentialJobsShareTheCluster) {
  ScenarioConfig cfg;
  cfg.scheduler = SchedulerKind::kPythia;
  Scenario scenario(cfg);
  const auto first = scenario.run_job(tiny_job());
  const auto second = scenario.run_job(tiny_job());
  EXPECT_GT(second.submitted, first.completed - util::Duration::seconds_i(1));
  EXPECT_EQ(scenario.engine().jobs_completed(), 2u);
}

TEST(Scenario, LeafSpineTopologyRuns) {
  ScenarioConfig cfg;
  cfg.topology_kind = TopologyKind::kLeafSpine;
  cfg.leaf_spine.spines = 4;
  cfg.controller.k_paths = 4;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 5.0;
  Scenario scenario(cfg);
  const auto result = scenario.run_job(tiny_job());
  EXPECT_GT(result.completion_time().seconds(), 0.0);
}

TEST(Scenario, WeightedFlowsArmRuns) {
  ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.pythia.weighted_flows = true;
  cfg.background.oversubscription = 10.0;
  Scenario scenario(cfg);
  hadoop::JobSpec job =
      workloads::sort_job(Bytes{8'000'000'000LL}, 6, 1.2);
  const auto result = scenario.run_job(job);
  EXPECT_GT(result.completion_time().seconds(), 0.0);
  // ECMP at the same seed must not be faster than the weighted arm here.
  cfg.scheduler = SchedulerKind::kEcmp;
  Scenario baseline(cfg);
  EXPECT_LE(result.completion_time().seconds(),
            baseline.run_job(job).completion_time().seconds() * 1.02);
}

TEST(Scenario, DfsWriteBackThroughConfig) {
  ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.scheduler = SchedulerKind::kPythia;
  Scenario scenario(cfg);
  hadoop::JobSpec job = tiny_job();
  job.dfs_replication = 3;
  const auto result = scenario.run_job(job);
  // The fabric moved more than the shuffle: output replicas crossed it too.
  EXPECT_GT(scenario.fabric().bytes_delivered(),
            result.remote_shuffle_bytes());
}

TEST(Sweep, PaperPointsAndRows) {
  const auto points = paper_oversubscription_points();
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(points.front().label, "none");
  EXPECT_DOUBLE_EQ(points.back().ratio, 20.0);

  SweepConfig sweep;
  sweep.seeds = {1};
  const auto rows = run_oversubscription_sweep(
      sweep, tiny_job(), {{"none", 1.0}, {"1:10", 10.0}});
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.baseline_mean_s, 0.0);
    EXPECT_GT(row.treatment_mean_s, 0.0);
  }
  // Speedup accessor consistency.
  EXPECT_NEAR(rows[0].speedup(),
              rows[0].baseline_mean_s / rows[0].treatment_mean_s - 1.0,
              1e-12);
  const auto table = speedup_table(rows, "ECMP", "Pythia");
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Sweep, SchedulerLadder) {
  ScenarioConfig base;
  base.background.oversubscription = 10.0;
  const auto rows = run_scheduler_ladder(
      base, tiny_job(),
      {SchedulerKind::kEcmp, SchedulerKind::kPythia}, {1, 2});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].scheduler, "ECMP");
  EXPECT_EQ(rows[1].scheduler, "Pythia");
  EXPECT_GT(rows[0].mean_s, 0.0);
}

}  // namespace
}  // namespace pythia::exp
