#include "experiments/metrics.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace pythia::exp {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;

TEST(Metrics, BasicShapesFromRealJob) {
  TestCluster cluster;
  const auto result = cluster.run(small_job(10, 4));
  const ShuffleMetrics m = compute_shuffle_metrics(result);

  EXPECT_EQ(m.queueing_seconds.count(), 40u);
  EXPECT_EQ(m.transfer_seconds.count(), 40u);
  EXPECT_GT(m.goodput_bps.count(), 0u);
  EXPECT_EQ(m.reducer_shuffle_done_seconds.count(), 4u);
  EXPECT_GE(m.reducer_volume_fairness, 0.0);
  EXPECT_LE(m.reducer_volume_fairness, 1.0);
  EXPECT_GE(m.shuffle_spread_seconds, 0.0);
  EXPECT_GT(m.aggregate_shuffle_goodput_bps, 0.0);
  // Queueing and transfer are non-negative everywhere.
  EXPECT_GE(m.queueing_seconds.min(), 0.0);
  EXPECT_GE(m.transfer_seconds.min(), 0.0);
  // Goodput can never exceed the NIC rate.
  EXPECT_LE(m.goodput_bps.max(), 10e9 + 1.0);
}

TEST(Metrics, UniformJobIsFairerThanSkewed) {
  TestCluster a(1);
  hadoop::JobSpec uniform = small_job(12, 6);
  uniform.skew = hadoop::PartitionSkew::uniform();
  const auto mu = compute_shuffle_metrics(a.run(uniform));

  TestCluster b(1);
  hadoop::JobSpec skewed = small_job(12, 6);
  skewed.skew = hadoop::PartitionSkew::zipf(1.5);
  const auto ms = compute_shuffle_metrics(b.run(skewed));

  EXPECT_GT(mu.reducer_volume_fairness, ms.reducer_volume_fairness);
}

TEST(Metrics, EmptyJobIsSafe) {
  hadoop::JobResult empty;
  empty.submitted = util::SimTime::zero();
  empty.completed = util::SimTime::from_seconds(1.0);
  const ShuffleMetrics m = compute_shuffle_metrics(empty);
  EXPECT_EQ(m.queueing_seconds.count(), 0u);
  EXPECT_DOUBLE_EQ(m.shuffle_spread_seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.aggregate_shuffle_goodput_bps, 0.0);
}

}  // namespace
}  // namespace pythia::exp
