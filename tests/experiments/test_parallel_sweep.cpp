// Determinism matrix for the parallel sweep engine — the core contract:
// running the same sweep at 1, 2, and 8 worker threads must produce
// byte-identical SpeedupRow vectors and CSV output.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "experiments/sweep.hpp"
#include "util/random.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

hadoop::JobSpec tiny_job() {
  return workloads::sort_job(util::Bytes{2LL * 1000 * 1000 * 1000}, 4);
}

/// Bit-level double equality (EXPECT_DOUBLE_EQ tolerates 4 ULPs; the
/// determinism contract tolerates zero).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ at the bit level";
}

void expect_rows_identical(const std::vector<SpeedupRow>& a,
                           const std::vector<SpeedupRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_TRUE(bits_equal(a[i].baseline_mean_s, b[i].baseline_mean_s));
    EXPECT_TRUE(bits_equal(a[i].baseline_stddev_s, b[i].baseline_stddev_s));
    EXPECT_TRUE(bits_equal(a[i].treatment_mean_s, b[i].treatment_mean_s));
    EXPECT_TRUE(bits_equal(a[i].treatment_stddev_s, b[i].treatment_stddev_s));
  }
}

TEST(ParallelSweep, ByteIdenticalAcrossThreadCounts) {
  const auto job = tiny_job();
  const std::vector<OversubPoint> points = {{"none", 1.0}, {"1:10", 10.0}};

  std::vector<std::vector<SpeedupRow>> all_rows;
  std::vector<std::string> all_csv;
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    SweepConfig sweep;
    sweep.seeds = {1, 2};
    sweep.threads = threads;
    RunnerCounters counters;
    all_rows.push_back(
        run_oversubscription_sweep(sweep, job, points, &counters));
    all_csv.push_back(speedup_rows_csv(all_rows.back()));
    // 2 points x 2 arms x 2 seeds = 8 runs per sweep.
    EXPECT_EQ(counters.runs_completed, 8u);
    EXPECT_EQ(counters.threads, threads);
    EXPECT_GT(counters.wall_seconds, 0.0);
    EXPECT_GT(counters.busy_seconds, 0.0);
  }

  for (std::size_t i = 1; i < all_rows.size(); ++i) {
    expect_rows_identical(all_rows[0], all_rows[i]);
    EXPECT_EQ(all_csv[0], all_csv[i]) << "CSV diverged at thread count " << i;
  }
  // Sanity: the sweep produced real, positive results.
  for (const auto& row : all_rows[0]) {
    EXPECT_GT(row.baseline_mean_s, 0.0);
    EXPECT_GT(row.treatment_mean_s, 0.0);
  }
}

TEST(ParallelSweep, MatchesSerialReference) {
  // The parallel engine must reproduce the plain serial loop bit-for-bit.
  const auto job = tiny_job();
  const std::vector<OversubPoint> points = {{"1:5", 5.0}};
  SweepConfig sweep;
  sweep.seeds = {3, 4};
  sweep.threads = 8;
  const auto rows = run_oversubscription_sweep(sweep, job, points);

  // Serial reference, written out longhand.
  ScenarioConfig cfg = sweep.base;
  cfg.background.oversubscription = 5.0;
  double base_sum = 0.0;
  double treat_sum = 0.0;
  for (const std::uint64_t seed : sweep.seeds) {
    cfg.seed = seed;
    cfg.scheduler = sweep.baseline;
    base_sum += run_completion_seconds(cfg, job);
    cfg.scheduler = sweep.treatment;
    treat_sum += run_completion_seconds(cfg, job);
  }
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(bits_equal(rows[0].baseline_mean_s, base_sum / 2.0));
  EXPECT_TRUE(bits_equal(rows[0].treatment_mean_s, treat_sum / 2.0));
}

TEST(ParallelSweep, LadderByteIdenticalAcrossThreadCounts) {
  const auto job = tiny_job();
  ScenarioConfig base;
  base.background.oversubscription = 10.0;
  const std::vector<SchedulerKind> ladder = {SchedulerKind::kEcmp,
                                             SchedulerKind::kPythia};

  std::vector<std::vector<LadderRow>> all;
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    all.push_back(run_scheduler_ladder(base, job, ladder, {1, 2}, threads));
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_EQ(all[0].size(), all[i].size());
    for (std::size_t k = 0; k < all[0].size(); ++k) {
      EXPECT_EQ(all[0][k].scheduler, all[i][k].scheduler);
      EXPECT_TRUE(bits_equal(all[0][k].mean_s, all[i][k].mean_s));
      EXPECT_TRUE(bits_equal(all[0][k].stddev_s, all[i][k].stddev_s));
    }
  }
}

TEST(ParallelSweep, RunnerMapGathersInIndexOrder) {
  ParallelRunner runner(4);
  const auto out = runner.map<std::size_t>(
      257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelSweep, RunnerPropagatesExceptions) {
  ParallelRunner runner(2);
  EXPECT_THROW(
      runner.map<int>(8,
                      [](std::size_t i) {
                        if (i == 5) throw std::runtime_error("boom");
                        return static_cast<int>(i);
                      }),
      std::runtime_error);
}

TEST(ParallelSweep, SplitSeedIsLaneStableAndDistinct) {
  // Same (root, lane) -> same seed; different lanes/roots -> different seeds.
  EXPECT_EQ(util::split_seed(42, 7), util::split_seed(42, 7));
  EXPECT_NE(util::split_seed(42, 7), util::split_seed(42, 8));
  EXPECT_NE(util::split_seed(42, 7), util::split_seed(43, 7));
  // Distinct from the component-tag derivation key-space.
  EXPECT_NE(util::split_seed(42, 7), util::derive_seed(42, 7));
}

}  // namespace
}  // namespace pythia::exp
