// Property test: randomized fat-tree topologies with flow churn, executed as
// a multi-run workload under the ParallelRunner (extending the single-run
// test_maxmin_properties). Every run derives its universe from
// util::split_seed and checks, at every flow arrival/departure:
//   - link capacity is never exceeded (elastic rate <= residual capacity),
//   - byte conservation: each completed flow delivered exactly spec.size and
//     the fabric's delivered total equals the sum over completed flows.
// Violations are gathered per run and asserted on the main thread, so the
// test is sanitizer-friendly and failure output names the offending run.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace pythia::exp {
namespace {

using net::Fabric;
using net::FlowId;
using util::BitsPerSec;
using util::Bytes;

constexpr double kEpsBps = 1e-3;

/// Checks every link's elastic load against residual capacity.
void check_capacity(const Fabric& fabric, const net::Topology& topo,
                    util::SimTime at, std::vector<std::string>* violations) {
  for (const auto& link : topo.links()) {
    const double used = fabric.link_elastic_rate(link.id).bps();
    const double residual = fabric.link_residual_capacity(link.id).bps();
    if (used > residual + kEpsBps) {
      violations->push_back("t=" + std::to_string(at.ns()) + " link " +
                            std::to_string(link.id.value()) +
                            " over capacity: " + std::to_string(used) +
                            " > " + std::to_string(residual));
    }
  }
}

struct ChurnOutcome {
  std::vector<std::string> violations;
  std::size_t flows_started = 0;
  std::size_t flows_completed = 0;
  std::int64_t bytes_expected = 0;   // sum of completed flows' spec sizes
  std::int64_t bytes_delivered = 0;  // fabric counter at end
};

/// Observer asserting invariants at every churn point and accounting
/// per-flow delivered bytes.
class ChurnChecker : public net::FabricObserver {
 public:
  ChurnChecker(const net::Topology& topo, ChurnOutcome* out)
      : topo_(&topo), out_(out) {}

  void on_flow_started(const Fabric& fabric, FlowId flow,
                       util::SimTime at) override {
    ++out_->flows_started;
    moved_[flow.value()] = 0;  // FlowIds recycle; reset the accumulator
    check_capacity(fabric, *topo_, at, &out_->violations);
  }

  void on_bytes_moved(const Fabric& /*fabric*/, FlowId flow, Bytes moved,
                      util::SimTime /*from*/, util::SimTime /*to*/) override {
    moved_[flow.value()] += moved.count();
  }

  void on_flow_completed(const Fabric& fabric, FlowId flow,
                         util::SimTime at) override {
    ++out_->flows_completed;
    const std::int64_t size = fabric.flow(flow).spec.size.count();
    out_->bytes_expected += size;
    const std::int64_t observed = moved_[flow.value()];
    if (observed != size) {
      out_->violations.push_back(
          "flow " + std::to_string(flow.value()) + " delivered " +
          std::to_string(observed) + " bytes, spec " + std::to_string(size));
    }
    check_capacity(fabric, *topo_, at, &out_->violations);
  }

 private:
  const net::Topology* topo_;
  ChurnOutcome* out_;
  std::map<std::uint32_t, std::int64_t> moved_;  // keyed by raw flow id
};

/// One randomized churn run: staggered finite flows between random host
/// pairs on a fat-tree, with a CBR brown-out on one core path.
ChurnOutcome run_churn(std::uint64_t seed, std::size_t k, std::size_t flows) {
  net::FatTreeConfig ft;
  ft.k = k;
  const net::Topology topo = net::make_fat_tree(ft);
  const net::RoutingGraph routing(topo, k);

  sim::Simulation sim(seed);
  Fabric fabric(sim, topo);
  ChurnOutcome out;
  ChurnChecker checker(topo, &out);
  fabric.add_observer(&checker);

  util::Xoshiro256 rng(seed);
  const auto hosts = topo.hosts();

  // Background CBR at 40% of one random cross-pod path.
  {
    const net::NodeId a = hosts[rng.below(hosts.size())];
    net::NodeId b = a;
    while (b == a) b = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(a, b);
    fabric.start_cbr(paths[rng.below(paths.size())].links,
                     BitsPerSec{0.4 * 10e9});
  }

  for (std::size_t i = 0; i < flows; ++i) {
    const net::NodeId src = hosts[rng.below(hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    const auto& path = paths[rng.below(paths.size())];
    net::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    // 1–100 MB so flows overlap and drain at different times.
    spec.size = Bytes{static_cast<std::int64_t>(1 + rng.below(100)) * 1000 *
                      1000};
    spec.path = path.links;
    spec.tuple = net::FiveTuple{static_cast<std::uint32_t>(i), 0, 0,
                                static_cast<std::uint16_t>(i), 6};
    // Stagger arrivals across the first 2 simulated seconds.
    const auto start_at = util::Duration{static_cast<std::int64_t>(
        rng.below(2'000'000'000ULL))};
    sim.after(start_at, [&fabric, spec] { fabric.start_flow(spec); });
  }
  sim.run();
  out.bytes_delivered = fabric.bytes_delivered().count();
  return out;
}

TEST(ParallelProperties, FatTreeChurnConservesBytesAndCapacity) {
  struct Case {
    std::size_t k;
    std::size_t flows;
  };
  // k=6 already exercises multi-pod path diversity; k=8's routing
  // precompute alone would dominate the sanitizer-job budget.
  const std::vector<Case> cases = {{4, 40}, {4, 80}, {4, 120},
                                   {6, 60}, {6, 120}};
  constexpr std::uint64_t kRootSeed = 0xC0FFEE;

  ParallelRunner runner(4);
  const auto outcomes = runner.map<ChurnOutcome>(
      cases.size(), [&](std::size_t i) {
        return run_churn(util::split_seed(kRootSeed, i), cases[i].k,
                         cases[i].flows);
      });

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ChurnOutcome& out = outcomes[i];
    SCOPED_TRACE("run " + std::to_string(i) + " (k=" +
                 std::to_string(cases[i].k) + ", flows=" +
                 std::to_string(cases[i].flows) + ")");
    for (const auto& v : out.violations) ADD_FAILURE() << v;
    EXPECT_EQ(out.flows_started, cases[i].flows);
    EXPECT_EQ(out.flows_completed, cases[i].flows);
    // Fabric-level conservation: delivered total == sum of completed specs.
    EXPECT_EQ(out.bytes_delivered, out.bytes_expected);
    EXPECT_GT(out.bytes_delivered, 0);
  }
}

TEST(ParallelProperties, ChurnOutcomesDeterministicAcrossThreadCounts) {
  constexpr std::uint64_t kRootSeed = 0xBEEF;
  auto run_all = [&](std::size_t threads) {
    ParallelRunner runner(threads);
    return runner.map<ChurnOutcome>(3, [&](std::size_t i) {
      return run_churn(util::split_seed(kRootSeed, i), 4, 30 + 10 * i);
    });
  };
  const auto a = run_all(1);
  const auto b = run_all(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes_delivered, b[i].bytes_delivered);
    EXPECT_EQ(a[i].flows_completed, b[i].flows_completed);
    EXPECT_EQ(a[i].violations, b[i].violations);
  }
}

}  // namespace
}  // namespace pythia::exp
