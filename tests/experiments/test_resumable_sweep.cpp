// Crash-tolerant sweep executor: injected crashes/timeouts recover to
// bit-identical results, exhausted attempt budgets become typed failures in
// canonical order, and a manifest-backed sweep resumes — serving completed
// runs bit-exactly — after an interruption. Injection uses the executor's
// env hooks (PYTHIA_INJECT_RUN_FAULT / PYTHIA_INJECT_RUN_TIMEOUT: run
// indices whose FIRST attempt fails), the same hooks the CI crash-drill job
// uses.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

hadoop::JobSpec tiny_job() {
  // Big enough to cross the 1024-event cooperative abort poll (an 8 GB /
  // 32-reducer sort fires a few thousand events), small enough to stay
  // sub-second per run.
  return workloads::sort_job(util::Bytes{8'000'000'000LL}, 32);
}

SweepConfig tiny_sweep(std::size_t threads) {
  SweepConfig sweep;
  sweep.seeds = {1, 2};
  sweep.threads = threads;
  return sweep;
}

const std::vector<OversubPoint> kPoint = {{"1:10", 10.0}};
const std::vector<OversubPoint> kTwoPoints = {{"none", 1.0}, {"1:10", 10.0}};

/// Injection indices are honored at the first cooperative abort poll, which
/// fires every 1024 events — assert the job is big enough to reach it.
void assert_runs_reach_abort_poll() {
  Scenario scenario(tiny_sweep(1).base);
  (void)scenario.run_job(tiny_job());
  ASSERT_GE(scenario.simulation().queue().events_fired(), 1024u);
}

struct EnvGuard {
  ~EnvGuard() {
    ::unsetenv("PYTHIA_INJECT_RUN_FAULT");
    ::unsetenv("PYTHIA_INJECT_RUN_TIMEOUT");
  }
};

TEST(ResumableSweep, CleanGuardedMatchesUnguardedAcrossThreadCounts) {
  const auto job = tiny_job();
  const auto clean = run_oversubscription_sweep(tiny_sweep(1), job, kPoint);
  const std::string clean_csv = speedup_rows_csv(clean);

  for (const std::size_t threads : {1UL, 8UL}) {
    GuardedSweepConfig cfg;
    cfg.sweep = tiny_sweep(threads);
    const auto result = run_oversubscription_sweep_guarded(cfg, job, kPoint);
    EXPECT_TRUE(result.failures.empty());
    EXPECT_EQ(result.resumed_runs, 0u);
    EXPECT_EQ(speedup_rows_csv(result.rows), clean_csv)
        << "guarded sweep diverged at " << threads << " threads";
  }
}

TEST(ResumableSweep, InjectedCrashesAndTimeoutsRecoverBitIdentically) {
  assert_runs_reach_abort_poll();
  const auto job = tiny_job();
  const auto clean = run_oversubscription_sweep(tiny_sweep(1), job, kPoint);

  EnvGuard env;
  ::setenv("PYTHIA_INJECT_RUN_FAULT", "0,3", 1);
  ::setenv("PYTHIA_INJECT_RUN_TIMEOUT", "2", 1);
  GuardedSweepConfig cfg;
  cfg.sweep = tiny_sweep(4);
  // Default guard: 1 retry. Injection kills attempt 1 only, so every run
  // converges on its retry — on the same seed lane, hence bit-identically.
  const auto result = run_oversubscription_sweep_guarded(cfg, job, kPoint);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(speedup_rows_csv(result.rows), speedup_rows_csv(clean));
}

TEST(ResumableSweep, ExhaustedBudgetBecomesTypedFailureInCanonicalOrder) {
  const auto job = tiny_job();

  EnvGuard env;
  ::setenv("PYTHIA_INJECT_RUN_FAULT", "0,5", 1);
  GuardedSweepConfig cfg;
  cfg.sweep = tiny_sweep(4);
  cfg.guard.max_attempts = 1;  // no retry: injected faults become failures
  const auto result =
      run_oversubscription_sweep_guarded(cfg, job, kTwoPoints);

  // Canonical decomposition with 2 seeds: runs_per_point = 4;
  // run 0 = (point "none", baseline arm, seed 1),
  // run 5 = (point "1:10", baseline arm, seed 2).
  ASSERT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.failures[0].run_index, 0u);
  EXPECT_EQ(result.failures[0].point_label, "none");
  EXPECT_EQ(result.failures[0].seed, 1u);
  EXPECT_EQ(result.failures[0].kind, RunFailureKind::kException);
  EXPECT_EQ(result.failures[0].attempts, 1u);
  EXPECT_EQ(result.failures[1].run_index, 5u);
  EXPECT_EQ(result.failures[1].point_label, "1:10");
  EXPECT_EQ(result.failures[1].seed, 2u);

  // Crash isolation: the sweep still completed and aggregated survivors.
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_GT(result.rows[0].treatment_mean_s, 0.0);
  EXPECT_GT(result.rows[1].treatment_mean_s, 0.0);
}

TEST(ResumableSweep, WallClockTimeoutProducesTimeoutKind) {
  assert_runs_reach_abort_poll();
  const auto job = tiny_job();

  GuardedSweepConfig cfg;
  cfg.sweep = tiny_sweep(2);
  cfg.guard.timeout_seconds = 1e-9;  // expires before the first poll
  cfg.guard.max_attempts = 1;
  const auto result = run_oversubscription_sweep_guarded(cfg, job, kPoint);
  ASSERT_EQ(result.failures.size(), 4u);
  for (const auto& failure : result.failures) {
    EXPECT_EQ(failure.kind, RunFailureKind::kTimeout);
    // Crash reporting names the abort point inside the simulation.
    EXPECT_NE(failure.message.find("timed out at sim t="), std::string::npos)
        << failure.message;
  }
}

TEST(ResumableSweep, ManifestResumeCompletesInterruptedSweepBitExactly) {
  const auto job = tiny_job();
  const auto clean = run_oversubscription_sweep(tiny_sweep(1), job, kPoint);
  const std::string manifest =
      ::testing::TempDir() + "/resume_sweep.manifest";
  std::remove(manifest.c_str());

  {
    // "Crashing" first pass: run 2 dies permanently, the rest complete and
    // land in the manifest.
    EnvGuard env;
    ::setenv("PYTHIA_INJECT_RUN_FAULT", "2", 1);
    GuardedSweepConfig cfg;
    cfg.sweep = tiny_sweep(2);
    cfg.guard.max_attempts = 1;
    cfg.manifest_path = manifest;
    const auto first = run_oversubscription_sweep_guarded(cfg, job, kPoint);
    ASSERT_EQ(first.failures.size(), 1u);
    EXPECT_EQ(first.failures[0].run_index, 2u);
    EXPECT_EQ(first.resumed_runs, 0u);
  }

  // Relaunch against the same manifest, faults gone: completed runs are
  // served from disk, the failed one re-executes, and the sweep's output is
  // bit-identical to a never-interrupted sweep.
  GuardedSweepConfig cfg;
  cfg.sweep = tiny_sweep(2);
  cfg.manifest_path = manifest;
  const auto resumed = run_oversubscription_sweep_guarded(cfg, job, kPoint);
  EXPECT_EQ(resumed.resumed_runs, 3u);
  EXPECT_TRUE(resumed.failures.empty());
  EXPECT_EQ(speedup_rows_csv(resumed.rows), speedup_rows_csv(clean));

  // A third launch serves everything from the manifest.
  const auto warm = run_oversubscription_sweep_guarded(cfg, job, kPoint);
  EXPECT_EQ(warm.resumed_runs, 4u);
  EXPECT_EQ(speedup_rows_csv(warm.rows), speedup_rows_csv(clean));
  std::remove(manifest.c_str());
}

TEST(ResumableSweep, ManifestFingerprintMismatchStartsFresh) {
  const auto job = tiny_job();
  const std::string manifest =
      ::testing::TempDir() + "/fingerprint_sweep.manifest";
  std::remove(manifest.c_str());

  GuardedSweepConfig cfg;
  cfg.sweep = tiny_sweep(2);
  cfg.manifest_path = manifest;
  (void)run_oversubscription_sweep_guarded(cfg, job, kPoint);

  // Different universe (extra seed) — the stale manifest must not leak its
  // cached values into it.
  GuardedSweepConfig other = cfg;
  other.sweep.seeds = {1, 3};
  const auto fresh = run_oversubscription_sweep_guarded(other, job, kPoint);
  EXPECT_EQ(fresh.resumed_runs, 0u);
  EXPECT_TRUE(fresh.failures.empty());

  // And the rewritten manifest now serves the new universe.
  const auto warm = run_oversubscription_sweep_guarded(other, job, kPoint);
  EXPECT_EQ(warm.resumed_runs, 4u);
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace pythia::exp
