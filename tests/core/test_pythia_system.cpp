// End-to-end behaviour of the assembled Pythia middleware on a live job.
#include "core/pythia_system.hpp"

#include <gtest/gtest.h>

#include "net/netflow.hpp"
#include "test_fixtures.hpp"

namespace pythia::core {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;
using util::Bytes;

TEST(PythiaSystem, InstrumentationTracksEveryMapAndReducer) {
  TestCluster cluster;
  PythiaSystem pythia(*cluster.sim, *cluster.engine, *cluster.controller);
  cluster.run(small_job(10, 4));
  EXPECT_EQ(pythia.instrumentation().decode_events(), 10u);
  EXPECT_EQ(pythia.instrumentation().intents_emitted(), 10u);
  EXPECT_EQ(pythia.collector().intents_received(), 10u * 4u);
  EXPECT_GT(pythia.instrumentation().control_bytes_sent().count(), 0);
}

TEST(PythiaSystem, EarlyIntentsAreHeldForReducers) {
  // With slow-start at 100% of maps, every intent beats every reducer.
  hadoop::ClusterConfig cfg;
  cfg.reduce_slowstart = 1.0;
  TestCluster cluster(1, {}, cfg);
  PythiaSystem pythia(*cluster.sim, *cluster.engine, *cluster.controller);
  cluster.run(small_job(8, 3));
  // Intents from the last map wave can race the reducer-start notification
  // by a heartbeat; all earlier ones must have been held.
  EXPECT_GE(pythia.collector().intents_held_for_reducer(), 7u * 3u);
  EXPECT_LE(pythia.collector().intents_held_for_reducer(), 8u * 3u);
}

TEST(PythiaSystem, InstallsRulesForCrossRackAggregates) {
  TestCluster cluster;
  PythiaSystem pythia(*cluster.sim, *cluster.engine, *cluster.controller);
  cluster.run(small_job(10, 4));
  EXPECT_GT(pythia.allocator().allocations(), 0u);
  EXPECT_GT(cluster.controller->rules_installed(), 0u);
  EXPECT_GT(cluster.controller->flow_mod_messages(),
            cluster.controller->rules_installed());
}

TEST(PythiaSystem, OutstandingVolumeDrainsToZero) {
  TestCluster cluster;
  PythiaSystem pythia(*cluster.sim, *cluster.engine, *cluster.controller);
  cluster.run(small_job(10, 4));
  // After the job, retired fetches should have cleared nearly all the
  // predicted volume (the overhead model rounds slightly conservatively,
  // leaving at most a tiny residue per pair).
  for (const auto& link : cluster.topo.links()) {
    EXPECT_LT(pythia.allocator().link_outstanding(link.id).as_double(),
              64'000'000.0 * 0.1)
        << "link " << link.id.value();
  }
}

TEST(PythiaSystem, PredictionLeadsTheWire) {
  TestCluster cluster;
  net::NetFlowProbe probe;
  cluster.fabric->add_observer(&probe);
  PythiaSystem pythia(*cluster.sim, *cluster.engine, *cluster.controller);

  hadoop::JobSpec job = small_job(20, 5);
  cluster.run(job);

  // For every server that sourced shuffle traffic, the predicted cumulative
  // curve must never lag the measured one, and the predicted total must
  // over-estimate the wire within the paper's band (3-7%).
  int compared = 0;
  for (net::NodeId server : probe.observed_sources()) {
    const auto& predicted = pythia.collector().predicted_curve(server);
    const auto& measured = probe.curve(server);
    if (predicted.empty() || measured.empty()) continue;
    ++compared;

    std::vector<net::VolumePoint> pred_curve;
    pred_curve.reserve(predicted.size());
    for (const auto& p : predicted) {
      pred_curve.push_back(net::VolumePoint{p.at, p.cumulative});
    }
    // Sample the measured curve: prediction-at-time >= measured-at-time.
    for (const auto& m : measured) {
      const double pred_v = net::curve_value_at(pred_curve, m.at);
      EXPECT_GE(pred_v, m.cumulative.as_double() * 0.999)
          << "server " << server.value() << " at " << m.at.seconds();
    }
    const double over = predicted.back().cumulative.as_double() /
                        measured.back().cumulative.as_double();
    EXPECT_GT(over, 1.0);
    EXPECT_LT(over, 1.10);
  }
  EXPECT_GT(compared, 0);
}

TEST(PythiaSystem, SpeedsUpSkewedShuffleUnderAsymmetricLoad) {
  // The headline effect at test scale: asymmetric background + ECMP
  // misplacement vs. Pythia's predictive packing.
  auto run = [](bool with_pythia) {
    net::TwoRackConfig topo_cfg;
    TestCluster cluster(3, topo_cfg);
    // 1:10 oversubscription on path 0 only (worst case asymmetry).
    const auto hosts = cluster.topo.hosts();
    const auto& paths = cluster.controller->routing().paths(hosts[0], hosts[9]);
    for (const auto* pair : {&paths}) {
      std::vector<net::LinkId> chain{(*pair)[0].links.begin() + 1,
                                     (*pair)[0].links.end() - 1};
      cluster.fabric->start_cbr(chain, util::BitsPerSec{9e9});
    }
    std::unique_ptr<PythiaSystem> pythia;
    if (with_pythia) {
      pythia = std::make_unique<PythiaSystem>(*cluster.sim, *cluster.engine,
                                              *cluster.controller);
    }
    // A network-bound job: large blocks so each fetch is hundreds of MB and
    // fast map/reduce functions so the shuffle dominates the critical path.
    hadoop::JobSpec job = small_job(24, 6);
    job.input = Bytes{24LL * 1'000'000'000};
    job.block = Bytes{1'000'000'000};
    job.map_rate = util::BitsPerSec{8e9};     // 1 GB/s
    job.reduce_rate = util::BitsPerSec{16e9}; // 2 GB/s
    return cluster.run(job).completion_time().seconds();
  };
  const double ecmp = run(false);
  const double pythia = run(true);
  EXPECT_LT(pythia, ecmp);
}

}  // namespace
}  // namespace pythia::core
