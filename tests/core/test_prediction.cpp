#include "core/prediction.hpp"

#include <gtest/gtest.h>

namespace pythia::core {
namespace {

TEST(OverheadModel, FactorIsConservative) {
  const ProtocolOverheadModel model;
  // The instrumentation must over-estimate (never lag the wire): factor > 1,
  // and in the paper's observed 3-7% band for the default parameters.
  EXPECT_GT(model.factor(), 1.03);
  EXPECT_LT(model.factor(), 1.07);
}

TEST(OverheadModel, PredictWireBytesScalesWithPayload) {
  const ProtocolOverheadModel model;
  const auto small = model.predict_wire_bytes(util::Bytes{1000});
  const auto large = model.predict_wire_bytes(util::Bytes{1'000'000});
  EXPECT_GT(small.count(), 1000);
  EXPECT_GT(large.count(), 1'000'000);
  // Relative overhead shrinks as the fixed HTTP framing amortizes.
  const double small_rel = small.as_double() / 1000.0;
  const double large_rel = large.as_double() / 1'000'000.0;
  EXPECT_GT(small_rel, large_rel);
  EXPECT_NEAR(large_rel, model.factor(), 0.001);
}

TEST(OverheadModel, ZeroPayload) {
  const ProtocolOverheadModel model;
  // An empty partition still costs the HTTP exchange.
  EXPECT_GT(model.predict_wire_bytes(util::Bytes::zero()).count(), 0);
}

TEST(OverheadModel, CustomParameters) {
  ProtocolOverheadModel model;
  model.header_bytes_per_segment = 40.0;
  model.assumed_mss = 1460.0;
  EXPECT_NEAR(model.factor(), 1.0 + 40.0 / 1460.0, 1e-12);
}

TEST(IntentMessage, SizeGrowsWithReducerCount) {
  EXPECT_GT(intent_message_bytes(10), intent_message_bytes(1));
  EXPECT_EQ(intent_message_bytes(0).count(), 48);
  EXPECT_EQ(intent_message_bytes(4).count(), 48 + 64);
}

}  // namespace
}  // namespace pythia::core
