// Rack-pair aggregation (paper §IV: forwarding-state conservation) and
// criticality-aware batch ordering.
#include <gtest/gtest.h>

#include "core/pythia_system.hpp"
#include "experiments/sweep.hpp"
#include "test_fixtures.hpp"
#include "workloads/hibench.hpp"

namespace pythia::core {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;
using util::Bytes;

TEST(RackAggregation, ControllerComposesWildcardPaths) {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric(sim, topo);
  sdn::Controller ctl(sim, fabric, topo);
  const auto hosts = topo.hosts();

  const auto& paths = ctl.routing().paths(hosts[0], hosts[9]);
  net::Path chain;
  chain.links.assign(paths[1].links.begin() + 1, paths[1].links.end() - 1);
  ctl.install_rack_path(0, 1, chain);
  sim.run();
  ASSERT_NE(ctl.active_rack_chain(0, 1), nullptr);
  EXPECT_EQ(ctl.active_rack_chain(1, 0), nullptr);  // directional

  // Every rack-0 -> rack-1 host pair resolves through the chain.
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t d = 5; d < 10; ++d) {
      const net::FiveTuple t{1, 2, 50060,
                             static_cast<std::uint16_t>(30000 + s * 10 + d),
                             6};
      const auto& p = ctl.resolve(hosts[s], hosts[d], t);
      EXPECT_TRUE(topo.validate_path(hosts[s], hosts[d], p.links));
      // Middle hops are exactly the installed chain.
      ASSERT_EQ(p.links.size(), chain.links.size() + 2);
      for (std::size_t i = 0; i < chain.links.size(); ++i) {
        EXPECT_EQ(p.links[i + 1], chain.links[i]);
      }
    }
  }
  // Same-rack traffic is untouched by the wildcard.
  const net::FiveTuple t{1, 2, 50060, 30000, 6};
  EXPECT_EQ(ctl.resolve(hosts[0], hosts[1], t).links.size(), 2u);
}

TEST(RackAggregation, HostRuleTakesPrecedenceOverWildcard) {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric(sim, topo);
  sdn::Controller ctl(sim, fabric, topo);
  const auto hosts = topo.hosts();
  const auto& paths = ctl.routing().paths(hosts[0], hosts[9]);

  net::Path chain;
  chain.links.assign(paths[1].links.begin() + 1, paths[1].links.end() - 1);
  ctl.install_rack_path(0, 1, chain);
  ctl.install_path(hosts[0], hosts[9], paths[0]);
  sim.run();

  const net::FiveTuple t{1, 2, 50060, 30000, 6};
  EXPECT_EQ(ctl.resolve(hosts[0], hosts[9], t).links, paths[0].links);
  // Other pairs still use the wildcard.
  EXPECT_EQ(ctl.resolve(hosts[1], hosts[9], t).links[1], chain.links[0]);
}

TEST(RackAggregation, UsesFarFewerRulesThanServerPairs) {
  auto rules_for = [](Aggregation policy) {
    exp::ScenarioConfig cfg;
    cfg.seed = 3;
    cfg.scheduler = exp::SchedulerKind::kPythia;
    cfg.background.oversubscription = 10.0;
    cfg.pythia.allocator.aggregation = policy;
    exp::Scenario scenario(cfg);
    scenario.run_job(
        workloads::sort_job(Bytes{12LL * 1000 * 1000 * 1000}, 8));
    return std::pair{scenario.controller().rules_installed(),
                     scenario.controller().flow_mod_messages()};
  };
  const auto [server_rules, server_mods] = rules_for(Aggregation::kServerPair);
  const auto [rack_rules, rack_mods] = rules_for(Aggregation::kRackPair);
  EXPECT_GT(server_rules, rack_rules * 5);
  EXPECT_GT(server_mods, rack_mods);
  EXPECT_GE(rack_rules, 2u);  // one wildcard per direction, possibly rewaves
}

TEST(RackAggregation, JobStillBeatsEcmp) {
  exp::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.background.oversubscription = 10.0;
  const auto job = workloads::sort_job(Bytes{12LL * 1000 * 1000 * 1000}, 8);

  cfg.scheduler = exp::SchedulerKind::kEcmp;
  const double ecmp = exp::run_completion_seconds(cfg, job);

  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.pythia.allocator.aggregation = Aggregation::kRackPair;
  const double rack = exp::run_completion_seconds(cfg, job);
  EXPECT_LT(rack, ecmp);
}

TEST(Criticality, HotDestinationAllocatedFirst) {
  TestCluster cluster;
  Allocator alloc(*cluster.controller);
  CollectorConfig ccfg;
  ccfg.criticality_aware = true;
  Collector collector(*cluster.sim, alloc, ccfg);
  const auto& hosts = cluster.topo.hosts();

  // dst hosts[9] already has heavy outstanding volume (critical reducer);
  // dst hosts[8] has none. Updates in one batch: the *smaller* one feeding
  // the hot destination must be packed first (gets the emptier path).
  collector.reducer_located(0, 0, hosts[9]);
  collector.reducer_located(0, 1, hosts[8]);
  ShuffleIntent big;
  big.job_serial = 0;
  big.reduce_index = 0;
  big.src_server = hosts[0];
  big.predicted_wire_bytes = Bytes{900'000'000};
  collector.ingest(big);
  cluster.sim->run();  // first batch: establishes hosts[9] as the hot dst
  EXPECT_GT(collector.destination_outstanding(hosts[9]).count(), 0);

  ShuffleIntent to_hot = big;
  to_hot.src_server = hosts[1];
  to_hot.predicted_wire_bytes = Bytes{100'000'000};
  ShuffleIntent to_cold = big;
  to_cold.reduce_index = 1;
  to_cold.src_server = hosts[2];
  to_cold.predicted_wire_bytes = Bytes{500'000'000};
  collector.ingest(to_hot);
  collector.ingest(to_cold);
  cluster.sim->run();

  // Volume-only FFD would allocate to_cold (500 MB) first. Criticality puts
  // to_hot first: its pair must share the path already carrying the hot
  // destination's earlier aggregate... which the drain-time packing then
  // steers AWAY from — so to_hot lands on the opposite inter-rack path of
  // the first 900 MB aggregate, and to_cold (allocated later) balances on
  // the remaining one.
  const auto* hot_rule = cluster.controller->active_rule(hosts[1], hosts[9]);
  const auto* first_rule = cluster.controller->active_rule(hosts[0], hosts[9]);
  ASSERT_NE(hot_rule, nullptr);
  ASSERT_NE(first_rule, nullptr);
  EXPECT_NE(hot_rule->path->links[1], first_rule->path->links[1]);
}

TEST(Criticality, CanBeDisabled) {
  TestCluster cluster;
  Allocator alloc(*cluster.controller);
  CollectorConfig ccfg;
  ccfg.criticality_aware = false;
  Collector collector(*cluster.sim, alloc, ccfg);
  const auto& hosts = cluster.topo.hosts();
  collector.reducer_located(0, 0, hosts[9]);
  ShuffleIntent i;
  i.job_serial = 0;
  i.reduce_index = 0;
  i.src_server = hosts[0];
  i.predicted_wire_bytes = Bytes{1'000'000};
  collector.ingest(i);
  cluster.sim->run();
  EXPECT_EQ(alloc.allocations(), 1u);
}

}  // namespace
}  // namespace pythia::core
