#include "core/skew_predictor.hpp"

#include <gtest/gtest.h>

#include "core/pythia_system.hpp"
#include "test_fixtures.hpp"

namespace pythia::core {
namespace {

using pythia::testing::TestCluster;
using util::Bytes;

ShuffleIntent intent(std::size_t job, std::size_t map, std::size_t reducer,
                     std::int64_t bytes) {
  ShuffleIntent i;
  i.job_serial = job;
  i.map_index = map;
  i.reduce_index = reducer;
  i.predicted_wire_bytes = Bytes{bytes};
  return i;
}

TEST(SkewPredictor, NoDataNoEstimate) {
  SkewPredictor p(0, 10, 4);
  EXPECT_FALSE(p.has_estimate());
  const auto e = p.estimate();
  EXPECT_DOUBLE_EQ(e.skew_factor, 1.0);
  EXPECT_DOUBLE_EQ(e.maps_observed_fraction, 0.0);
}

TEST(SkewPredictor, ExtrapolatesLinearly) {
  SkewPredictor p(0, 10, 2);
  // 2 of 10 maps seen, each sending 300/100 to reducers 0/1.
  for (std::size_t m = 0; m < 2; ++m) {
    p.ingest(intent(0, m, 0, 300));
    p.ingest(intent(0, m, 1, 100));
  }
  EXPECT_EQ(p.maps_observed(), 2u);
  const auto e = p.estimate();
  EXPECT_DOUBLE_EQ(e.predicted_final_bytes[0], 3000.0);
  EXPECT_DOUBLE_EQ(e.predicted_final_bytes[1], 1000.0);
  EXPECT_DOUBLE_EQ(e.skew_factor, 1.5);  // 3000 / mean(2000)
  EXPECT_EQ(e.hottest_reducer, 0u);
  EXPECT_DOUBLE_EQ(e.maps_observed_fraction, 0.2);
}

TEST(SkewPredictor, IgnoresOtherJobsAndBadIndices) {
  SkewPredictor p(7, 10, 2);
  p.ingest(intent(3, 0, 0, 1000));   // wrong job
  p.ingest(intent(7, 0, 99, 1000));  // reducer out of range
  EXPECT_FALSE(p.has_estimate());
}

TEST(SkewPredictor, DuplicateMapIntentsCountOnce) {
  SkewPredictor p(0, 4, 2);
  p.ingest(intent(0, 1, 0, 100));
  p.ingest(intent(0, 1, 1, 100));  // same map, other reducer
  EXPECT_EQ(p.maps_observed(), 1u);
}

TEST(SkewPredictor, EarlyEstimateMatchesFinalSkewOnRealJob) {
  // Attach alongside Pythia: after ~25% of maps, the extrapolated hottest
  // reducer and skew factor must match the job's final reality.
  TestCluster cluster(5);
  hadoop::JobSpec spec = pythia::testing::small_job(40, 5);
  spec.skew = hadoop::PartitionSkew::explicit_weights(
      {5.0, 1.0, 1.0, 1.0, 1.0});
  spec.mapper_output_jitter = 0.05;

  SkewPredictor predictor(0, spec.num_maps(), spec.num_reducers);
  SkewEstimate early;
  bool early_taken = false;

  struct Feeder final : hadoop::EngineObserver {
    SkewPredictor* predictor;
    SkewEstimate* early;
    bool* taken;
    std::size_t quarter;
    ProtocolOverheadModel overhead;
    void on_map_output_ready(const hadoop::MapOutputNotice& n) override {
      for (std::size_t r = 0; r < n.per_reducer_payload.size(); ++r) {
        ShuffleIntent i;
        i.job_serial = n.job_serial;
        i.map_index = n.map_index;
        i.reduce_index = r;
        i.predicted_wire_bytes =
            overhead.predict_wire_bytes(n.per_reducer_payload[r]);
        predictor->ingest(i);
      }
      if (!*taken && predictor->maps_observed() >= quarter) {
        *early = predictor->estimate();
        *taken = true;
      }
    }
  } feeder;
  feeder.predictor = &predictor;
  feeder.early = &early;
  feeder.taken = &early_taken;
  feeder.quarter = spec.num_maps() / 4;
  cluster.engine->add_observer(&feeder);

  const auto result = cluster.run(spec);
  ASSERT_TRUE(early_taken);
  EXPECT_LE(early.maps_observed_fraction, 0.6);  // genuinely early

  // Ground truth from the completed job.
  const auto loads = result.reducer_load_profile();
  const auto hottest = static_cast<std::size_t>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
  EXPECT_EQ(early.hottest_reducer, hottest);
  EXPECT_NEAR(early.skew_factor, hadoop::skew_factor(loads), 0.35);

  // Predicted totals within 15% per reducer (jitter averages out).
  for (std::size_t r = 0; r < loads.size(); ++r) {
    EXPECT_NEAR(early.predicted_final_bytes[r], loads[r] * 1.057,
                loads[r] * 0.15)
        << "reducer " << r;
  }
}

}  // namespace
}  // namespace pythia::core
