// Differential and defensive tests for the cohort intent pipelines:
//
//  * serial vs batched drains are byte-identical (plain and under
//    flow-table pressure, where refusals keep pairs un-coalescable);
//  * the sharded admission layout (1 / 3 / one-per-pod shards) never leaks
//    into behavior, including with bounded pods and job purges in play;
//  * TTL expiry and job-completion purges keep un-installable intents out
//    of the drain entirely;
//  * bounded pods evict only for strictly larger newcomers and refuse the
//    rest, synchronously;
//  * watchdog failure accounting is intent-weighted under batching.
#include "core/collector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/allocator.hpp"
#include "core/watchdog.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "workloads/open_arrival.hpp"

namespace pythia::core {
namespace {

using net::NodeId;
using util::Bytes;
using util::Duration;
using util::SimTime;

/// One full collector→allocator→controller stack; arms under comparison
/// each build their own against a shared topology.
struct Stack {
  sim::Simulation sim;
  net::Fabric fabric;
  sdn::Controller controller;
  Allocator allocator;
  Collector collector;

  Stack(const net::Topology& topo, CollectorConfig ccfg,
        sdn::ControllerConfig ctcfg = {}, std::uint64_t seed = 7)
      : sim(seed),
        fabric(sim, topo),
        controller(sim, fabric, topo, ctcfg),
        allocator(controller),
        collector(sim, allocator, ccfg) {}

  /// The cross-arm identity image: pipeline-invariant collector state plus
  /// the full allocator and controller state.
  [[nodiscard]] std::vector<std::uint8_t> image() {
    sim::StateEncoder enc;
    collector.encode_behavior(enc);
    allocator.encode_state(enc);
    controller.encode_state(enc);
    return enc.bytes();
  }
};

net::Topology fat_tree4() {
  net::FatTreeConfig cfg;
  cfg.k = 4;
  return net::make_fat_tree(cfg);
}

std::vector<workloads::StormEvent> small_storm(const net::Topology& topo) {
  workloads::OpenArrivalConfig cfg;
  cfg.jobs = 10;
  cfg.mean_interarrival = Duration::millis(15);
  return workloads::generate_storm(cfg, topo, /*seed=*/11);
}

std::vector<std::uint8_t> run_storm(
    const net::Topology& topo, const std::vector<workloads::StormEvent>& ev,
    IntentPipeline pipeline, std::size_t shards,
    std::size_t pod_capacity = 0, std::size_t flow_table_capacity = 0) {
  CollectorConfig ccfg;
  ccfg.pipeline = pipeline;
  ccfg.shard_count = shards;
  ccfg.pod_queue_capacity = pod_capacity;
  sdn::ControllerConfig ctcfg;
  ctcfg.flow_table_capacity = flow_table_capacity;
  Stack s(topo, ccfg, ctcfg);
  workloads::schedule_storm(s.sim, s.collector, ev);
  s.sim.run();
  return s.image();
}

TEST(IntentPipeline, SerialAndBatchedArmsByteIdentical) {
  const net::Topology topo = fat_tree4();
  const auto ev = small_storm(topo);
  const auto serial = run_storm(topo, ev, IntentPipeline::kCohortSerial, 1);
  const auto batched = run_storm(topo, ev, IntentPipeline::kCohortBatched, 1);
  EXPECT_EQ(serial, batched);
}

TEST(IntentPipeline, SerialAndBatchedIdenticalUnderTablePressure) {
  // A tiny flow table forces admission refusals and evictions inside the
  // controller; refused pairs never become coalescable, so the batched arm
  // must keep submitting them per-intent to stay identical.
  const net::Topology topo = fat_tree4();
  const auto ev = small_storm(topo);
  const auto serial = run_storm(topo, ev, IntentPipeline::kCohortSerial, 1,
                                /*pod_capacity=*/0, /*table=*/3);
  const auto batched = run_storm(topo, ev, IntentPipeline::kCohortBatched, 1,
                                 /*pod_capacity=*/0, /*table=*/3);
  EXPECT_EQ(serial, batched);
}

TEST(IntentPipeline, ShardCountInvariance) {
  // The shard layout is a physical knob only: 1 shard, 3 shards, and
  // one-per-pod must drain byte-identically — also with bounded pods, so
  // refusal/eviction decisions cannot depend on the layout either.
  const net::Topology topo = fat_tree4();
  const auto ev = small_storm(topo);
  for (const std::size_t cap : {std::size_t{0}, std::size_t{6}}) {
    const auto one =
        run_storm(topo, ev, IntentPipeline::kCohortBatched, 1, cap);
    const auto three =
        run_storm(topo, ev, IntentPipeline::kCohortBatched, 3, cap);
    const auto per_pod =
        run_storm(topo, ev, IntentPipeline::kCohortBatched, 0, cap);
    EXPECT_EQ(one, three) << "pod capacity " << cap;
    EXPECT_EQ(one, per_pod) << "pod capacity " << cap;
  }
}

TEST(IntentPipeline, TtlExpiryMidCohortNotInstallable) {
  // The reducer location arrives exactly at the TTL horizon: the held
  // intent must expire before admission, never reach a shard, and install
  // nothing — in both cohort pipelines.
  const net::Topology topo = fat_tree4();
  const auto hosts = topo.hosts();
  for (const auto pipeline :
       {IntentPipeline::kCohortSerial, IntentPipeline::kCohortBatched}) {
    CollectorConfig ccfg;
    ccfg.pipeline = pipeline;
    ccfg.intent_ttl = Duration::millis(50);
    Stack s(topo, ccfg);

    ShuffleIntent intent;
    intent.job_serial = 0;
    intent.map_index = 0;
    intent.reduce_index = 0;
    intent.src_server = hosts[0];
    intent.predicted_wire_bytes = Bytes{1'000'000};
    s.sim.at(SimTime{0}, [&] { s.collector.ingest(intent); });
    s.sim.at(SimTime{Duration::millis(50).ns()},
             [&] { s.collector.reducer_located(0, 0, hosts[5]); });
    s.sim.run();

    EXPECT_EQ(s.collector.intents_expired(), 1u);
    EXPECT_EQ(s.collector.intents_queued(), 0u);
    EXPECT_EQ(s.allocator.allocations(), 0u);
    EXPECT_EQ(s.controller.rules_installed(), 0u);
  }
}

TEST(IntentPipeline, JobCompletionPurgesQueuedIntentsBeforeDrain) {
  // Intents admitted in the same event cohort as the job's completion are
  // reclaimed before the cohort drains: a dead job installs nothing.
  const net::Topology topo = fat_tree4();
  const auto hosts = topo.hosts();
  CollectorConfig ccfg;
  ccfg.pipeline = IntentPipeline::kCohortBatched;
  Stack s(topo, ccfg);

  s.sim.at(SimTime{0}, [&] { s.collector.reducer_located(0, 0, hosts[5]); });
  for (std::size_t m = 0; m < 3; ++m) {
    ShuffleIntent intent;
    intent.job_serial = 0;
    intent.map_index = m;
    intent.reduce_index = 0;
    intent.src_server = hosts[0];
    intent.predicted_wire_bytes = Bytes{2'000'000};
    s.sim.at(SimTime{0}, [&s, intent] { s.collector.ingest(intent); });
  }
  s.sim.at(SimTime{0}, [&] { s.collector.job_completed(0); });
  s.sim.run();

  EXPECT_EQ(s.collector.intents_purged_on_completion(), 3u);
  EXPECT_EQ(s.collector.intents_queued(), 0u);
  EXPECT_EQ(s.allocator.allocations(), 0u);
}

TEST(IntentPipeline, AdmissionRefusalAndEvictionBounded) {
  // pod_queue_capacity = 2: the third, strictly larger intent evicts the
  // smallest queued one; a later smaller intent is refused synchronously.
  // Only the surviving two intents' volume reaches the allocator.
  const net::Topology topo = fat_tree4();
  const auto hosts = topo.hosts();
  CollectorConfig ccfg;
  ccfg.pipeline = IntentPipeline::kCohortBatched;
  ccfg.pod_queue_capacity = 2;
  Stack s(topo, ccfg);

  auto ingest_at_zero = [&](std::size_t map_index, std::int64_t bytes) {
    ShuffleIntent intent;
    intent.job_serial = 0;
    intent.map_index = map_index;
    intent.reduce_index = 0;
    intent.src_server = hosts[0];
    intent.predicted_wire_bytes = Bytes{bytes};
    s.sim.at(SimTime{0}, [&s, intent] { s.collector.ingest(intent); });
  };
  s.sim.at(SimTime{0}, [&] { s.collector.reducer_located(0, 0, hosts[5]); });
  ingest_at_zero(0, 1'000'000);
  ingest_at_zero(1, 2'000'000);
  ingest_at_zero(2, 3'000'000);  // evicts the 1 MB intent
  ingest_at_zero(3, 500'000);    // refused: pod full, not strictly larger
  s.sim.run();

  EXPECT_EQ(s.collector.admission_evicted(), 1u);
  EXPECT_EQ(s.collector.admission_refused(), 1u);
  EXPECT_EQ(s.collector.intents_queued(), 0u);  // cohort drained
  EXPECT_EQ(s.allocator.pair_outstanding(hosts[0], hosts[5]).count(),
            5'000'000);
}

TEST(IntentPipeline, WatchdogFailureRateIsIntentWeighted) {
  // flow_table_capacity = 1: one large single-intent aggregate takes the
  // table; a three-intent coalesced aggregate (smaller volume, so no
  // eviction) is refused. Intent-weighted accounting must see 3 stranded
  // predictions out of 4 — 0.75 — where per-batch accounting would report
  // 1 failed install out of 2 events (0.5) and miss the fallback bar.
  const net::Topology topo = net::make_two_rack({});
  const auto hosts = topo.hosts();
  sim::Simulation sim(7);
  net::Fabric fabric(sim, topo);
  sdn::ControllerConfig ctcfg;
  ctcfg.flow_table_capacity = 1;
  sdn::Controller controller(sim, fabric, topo, ctcfg);
  Allocator allocator(controller);
  Collector collector(sim, allocator);  // windowed pipeline: batch coalescing
  ControlPlaneWatchdog watchdog(sim, controller, allocator);

  collector.reducer_located(0, 0, hosts[5]);
  collector.reducer_located(0, 1, hosts[6]);
  auto intent = [&](std::size_t reduce_index, std::size_t map_index,
                    std::int64_t bytes) {
    ShuffleIntent i;
    i.job_serial = 0;
    i.map_index = map_index;
    i.reduce_index = reduce_index;
    i.src_server = hosts[0];
    i.predicted_wire_bytes = Bytes{bytes};
    collector.ingest(i);
  };
  intent(0, 0, 10'000'000);  // installs; attempt weight 1
  intent(1, 0, 1'000'000);   // coalesce into one 3-intent aggregate...
  intent(1, 1, 1'000'000);
  intent(1, 2, 1'000'000);  // ...refused by the full table: weight 3
  sim.run();

  EXPECT_EQ(controller.install_attempt_intents(), 1u);
  EXPECT_EQ(controller.table_reject_intents(), 3u);
  EXPECT_DOUBLE_EQ(watchdog.recent_install_failure_rate(), 0.75);
}

}  // namespace
}  // namespace pythia::core
