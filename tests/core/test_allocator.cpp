#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"

namespace pythia::core {
namespace {

using net::NodeId;
using util::BitsPerSec;
using util::Bytes;

struct Fixture {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric{sim, topo};
  sdn::Controller controller{sim, fabric, topo};
  NodeId s0, s1, d0, d1;

  Fixture() {
    const auto hosts = topo.hosts();
    s0 = hosts[0];
    s1 = hosts[1];
    d0 = hosts[9];
    d1 = hosts[8];
  }

  /// CBR on inter-rack path `idx` between s0 and d0.
  void load_path(std::size_t idx, double bps) {
    const auto& paths = controller.routing().paths(s0, d0);
    std::vector<net::LinkId> chain{paths[idx].links.begin() + 1,
                                   paths[idx].links.end() - 1};
    fabric.start_cbr(chain, BitsPerSec{bps});
  }
};

TEST(Allocator, AvoidsBackgroundLoadedPath) {
  Fixture f;
  f.load_path(0, 9.5e9);  // path 0 nearly dead
  Allocator alloc(f.controller);

  alloc.add_predicted_volume(f.s0, f.d0, Bytes{100'000'000});
  f.sim.run();  // let the rule activate
  const auto* rule = f.controller.active_rule(f.s0, f.d0);
  ASSERT_NE(rule, nullptr);
  const auto& paths = f.controller.routing().paths(f.s0, f.d0);
  EXPECT_EQ(rule->path->links, paths[1].links);
  EXPECT_EQ(alloc.allocations(), 1u);
}

TEST(Allocator, PacksSecondAggregateAwayFromFirst) {
  // Clean network: the only differentiation is the allocator's own
  // outstanding-intent bookkeeping. Two equal aggregates between disjoint
  // host pairs must land on different inter-rack paths.
  Fixture f;
  Allocator alloc(f.controller);
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{1'000'000'000});
  alloc.add_predicted_volume(f.s1, f.d1, Bytes{1'000'000'000});
  f.sim.run();

  const auto* r0 = f.controller.active_rule(f.s0, f.d0);
  const auto* r1 = f.controller.active_rule(f.s1, f.d1);
  ASSERT_NE(r0, nullptr);
  ASSERT_NE(r1, nullptr);
  // Compare the inter-rack segment (middle hops differ iff paths differ).
  EXPECT_NE(r0->path->links[1], r1->path->links[1]);
}

TEST(Allocator, LinkOutstandingBookkeeping) {
  Fixture f;
  Allocator alloc(f.controller);
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{500});
  EXPECT_EQ(alloc.pair_outstanding(f.s0, f.d0).count(), 500);

  // Outstanding shows up on every link of the chosen path.
  std::int64_t links_with_volume = 0;
  for (const auto& link : f.topo.links()) {
    if (alloc.link_outstanding(link.id).count() > 0) {
      EXPECT_EQ(alloc.link_outstanding(link.id).count(), 500);
      ++links_with_volume;
    }
  }
  EXPECT_EQ(links_with_volume, 4);  // host->tor->wire->tor->host

  alloc.retire_volume(f.s0, f.d0, Bytes{200});
  EXPECT_EQ(alloc.pair_outstanding(f.s0, f.d0).count(), 300);
  alloc.retire_volume(f.s0, f.d0, Bytes{10'000});  // clamps at zero
  EXPECT_EQ(alloc.pair_outstanding(f.s0, f.d0).count(), 0);
  for (const auto& link : f.topo.links()) {
    EXPECT_EQ(alloc.link_outstanding(link.id).count(), 0);
  }
}

TEST(Allocator, RetireUnknownPairIsNoop) {
  Fixture f;
  Allocator alloc(f.controller);
  alloc.retire_volume(f.s0, f.d0, Bytes{100});  // nothing predicted
  EXPECT_EQ(alloc.pair_outstanding(f.s0, f.d0).count(), 0);
}

TEST(Allocator, DrainedAggregateReallocatesAgainstNewState) {
  Fixture f;
  Allocator alloc(f.controller);
  // First round: clean network, allocator picks some path P.
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{1'000'000});
  f.sim.run();
  const auto first = f.controller.active_rule(f.s0, f.d0)->path;
  alloc.retire_volume(f.s0, f.d0, Bytes{1'000'000});

  // Background then floods P; the drained aggregate's next wave must move.
  const auto& paths = f.controller.routing().paths(f.s0, f.d0);
  const std::size_t loaded =
      first->links == paths[0].links ? 0 : 1;
  f.load_path(loaded, 9.9e9);
  // Advance time so the controller's load snapshot refreshes.
  f.sim.after(util::Duration::seconds_i(2), [] {});
  f.sim.run();

  alloc.add_predicted_volume(f.s0, f.d0, Bytes{1'000'000});
  f.sim.run();
  const auto second = f.controller.active_rule(f.s0, f.d0)->path;
  EXPECT_NE(first->links, second->links);
  EXPECT_GE(alloc.reallocations(), 1u);
}

TEST(Allocator, LoadBlindModeIgnoresBackground) {
  Fixture f;
  f.load_path(0, 9.9e9);
  AllocatorConfig cfg;
  cfg.load_aware = false;
  Allocator alloc(f.controller, cfg);

  // Load-blind packing considers only its own intents; with none yet, both
  // paths score identically and the deterministic first candidate wins —
  // even though path 0 is nearly dead. (This is the FlowComb-like arm.)
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{100'000'000});
  f.sim.run();
  const auto* rule = f.controller.active_rule(f.s0, f.d0);
  ASSERT_NE(rule, nullptr);
  const auto& paths = f.controller.routing().paths(f.s0, f.d0);
  EXPECT_EQ(rule->path->links, paths[0].links);
}

TEST(Allocator, RackModeSameRackPairFallsBackToServerInstall) {
  // Regression: under rack-pair aggregation an intra-rack host→ToR→host path
  // (2 links) used to strip to an empty inter-rack chain and install a bogus
  // (rack, rack) wildcard rule. Same-rack pairs must install at server
  // granularity instead.
  Fixture f;
  AllocatorConfig cfg;
  cfg.aggregation = Aggregation::kRackPair;
  Allocator alloc(f.controller, cfg);

  alloc.add_predicted_volume(f.s0, f.s1, Bytes{1'000'000});  // same rack
  f.sim.run();
  EXPECT_EQ(f.controller.active_rack_chain(0, 0), nullptr);
  const auto* rule = f.controller.active_rule(f.s0, f.s1);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->path->links.size(), 2u);  // host→ToR→host, nothing stripped

  // Cross-rack pairs still aggregate to one rule per rack pair.
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{1'000'000});
  f.sim.run();
  EXPECT_NE(f.controller.active_rack_chain(0, 1), nullptr);
}

TEST(Allocator, DrainTimeMath) {
  Fixture f;
  Allocator alloc(f.controller);
  const auto& paths = f.controller.routing().paths(f.s0, f.d0);
  // Clean path, 10 Gbps bottleneck: 1 GB (8 Gbit) drains in 0.8 s.
  EXPECT_NEAR(alloc.drain_time_seconds(paths[0], Bytes{1'000'000'000}), 0.8,
              1e-9);
  // With 5 Gbps of background the same volume takes 1.6 s.
  f.load_path(0, 5e9);
  f.sim.after(util::Duration::seconds_i(2), [] {});
  f.sim.run();
  EXPECT_NEAR(alloc.drain_time_seconds(paths[0], Bytes{1'000'000'000}), 1.6,
              1e-6);
}

TEST(Allocator, GrowingAggregateKeepsItsPath) {
  Fixture f;
  Allocator alloc(f.controller);
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{1'000'000});
  f.sim.run();
  const auto first = f.controller.active_rule(f.s0, f.d0)->path;
  // More volume while still outstanding: first-fit sticks to the path.
  alloc.add_predicted_volume(f.s0, f.d0, Bytes{2'000'000});
  f.sim.run();
  EXPECT_EQ(f.controller.active_rule(f.s0, f.d0)->path->links, first->links);
  EXPECT_EQ(alloc.pair_outstanding(f.s0, f.d0).count(), 3'000'000);
  EXPECT_EQ(alloc.reallocations(), 0u);
}

}  // namespace
}  // namespace pythia::core
