// Control-plane watchdog: ECMP fallback on degradation, re-engage on
// recovery.
#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "core/watchdog.hpp"
#include "net/topology.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"

namespace pythia::core {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

struct Fixture {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric{sim, topo};
  sdn::Controller controller;
  Allocator allocator{controller};
  net::NodeId src, dst;

  explicit Fixture(sdn::ControllerConfig ccfg = {})
      : controller(sim, fabric, topo, ccfg) {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst = hosts[9];
  }

  WatchdogConfig quick_config() const {
    WatchdogConfig cfg;
    cfg.staleness_threshold = Duration::seconds_i(2);
    cfg.recovery_grace = Duration::seconds_i(1);
    return cfg;
  }
};

TEST(Watchdog, StaysEngagedWhileNotificationsFlow) {
  Fixture f;
  ControlPlaneWatchdog wd(f.sim, f.controller, f.allocator, f.quick_config());

  f.sim.after(Duration::seconds_i(1), [&] {
    wd.note_emission(f.sim.now());
    wd.note_notification(f.sim.now());
  });
  f.sim.after(Duration::seconds_i(10), [&] { wd.evaluate(); });
  f.sim.run();
  EXPECT_TRUE(wd.engaged());
  EXPECT_EQ(wd.fallbacks(), 0u);
}

TEST(Watchdog, UnansweredEmissionTripsFallback) {
  Fixture f;
  ControlPlaneWatchdog wd(f.sim, f.controller, f.allocator, f.quick_config());

  // Give the controller an active rule so the fallback's clear is visible.
  const auto& paths = f.controller.routing().paths(f.src, f.dst);
  f.controller.install_path(f.src, f.dst, paths[0]);

  f.sim.after(Duration::seconds_i(1),
              [&] { wd.note_emission(f.sim.now()); });
  f.sim.after(Duration::seconds_i(10), [&] { wd.evaluate(); });
  f.sim.run();

  EXPECT_FALSE(wd.engaged());
  EXPECT_EQ(wd.fallbacks(), 1u);
  EXPECT_TRUE(wd.notifications_stale());
  EXPECT_TRUE(f.allocator.suspended());
  EXPECT_EQ(f.controller.active_rule(f.src, f.dst), nullptr);
  EXPECT_EQ(f.controller.rules_cleared(), 1u);
}

TEST(Watchdog, NotificationResetsStalenessClock) {
  Fixture f;
  ControlPlaneWatchdog wd(f.sim, f.controller, f.allocator, f.quick_config());

  f.sim.after(Duration::seconds_i(1),
              [&] { wd.note_emission(f.sim.now()); });
  // Notification lands 1.5 s after the emission — under the 2 s threshold.
  f.sim.after(Duration::millis(2500),
              [&] { wd.note_notification(f.sim.now()); });
  f.sim.after(Duration::seconds_i(60), [&] { wd.evaluate(); });
  f.sim.run();
  EXPECT_TRUE(wd.engaged());
  EXPECT_FALSE(wd.notifications_stale());
}

TEST(Watchdog, InstallFailureRateTripsFallback) {
  sdn::ControllerConfig ccfg;
  ccfg.install_reject_probability = 1.0;  // every attempt rejected
  Fixture f(ccfg);
  ControlPlaneWatchdog wd(f.sim, f.controller, f.allocator, f.quick_config());

  wd.evaluate();  // establish the failure-sampling window at t=0
  // Two rules, each burning its full retry ladder: enough attempts to clear
  // the watchdog's min_install_samples bar.
  const net::NodeId src2 = f.topo.hosts()[1];
  f.controller.install_path(f.src, f.dst,
                            f.controller.routing().paths(f.src, f.dst)[0],
                            Bytes{1000});
  f.controller.install_path(src2, f.dst,
                            f.controller.routing().paths(src2, f.dst)[0],
                            Bytes{1000});
  f.sim.run();  // drain the retry/backoff ladders
  ASSERT_GE(f.controller.install_attempts(), 8u);
  ASSERT_EQ(f.controller.installs_abandoned(), 2u);

  wd.evaluate();
  EXPECT_FALSE(wd.engaged());
  EXPECT_GE(wd.recent_install_failure_rate(), 0.99);
}

TEST(Watchdog, ReengagesAfterRecoveryGrace) {
  Fixture f;
  ControlPlaneWatchdog wd(f.sim, f.controller, f.allocator, f.quick_config());

  // Outstanding volume so the resume path has something to reinstall.
  f.allocator.add_predicted_volume(f.src, f.dst, Bytes{5'000'000});

  f.sim.after(Duration::seconds_i(1),
              [&] { wd.note_emission(f.sim.now()); });
  f.sim.after(Duration::seconds_i(10), [&] { wd.evaluate(); });
  // Channel heals: notifications resume.
  f.sim.after(Duration::seconds_i(11),
              [&] { wd.note_notification(f.sim.now()); });
  f.sim.after(Duration::seconds_i(12), [&] { wd.evaluate(); });  // streak start
  f.sim.after(Duration::seconds_i(14), [&] { wd.evaluate(); });  // > grace
  f.sim.run();

  EXPECT_TRUE(wd.engaged());
  EXPECT_EQ(wd.fallbacks(), 1u);
  EXPECT_EQ(wd.reengagements(), 1u);
  EXPECT_FALSE(f.allocator.suspended());
}

TEST(Watchdog, DisabledWatchdogNeverIntervenes) {
  Fixture f;
  WatchdogConfig cfg = f.quick_config();
  cfg.enabled = false;
  ControlPlaneWatchdog wd(f.sim, f.controller, f.allocator, cfg);

  f.sim.after(Duration::seconds_i(1),
              [&] { wd.note_emission(f.sim.now()); });
  f.sim.after(Duration::seconds_i(100), [&] { wd.evaluate(); });
  f.sim.run();
  EXPECT_TRUE(wd.engaged());
  EXPECT_EQ(wd.fallbacks(), 0u);
  EXPECT_FALSE(f.allocator.suspended());
}

TEST(Watchdog, SuspendedAllocatorSuppressesInstallsAndResumeReinstalls) {
  Fixture f;
  f.allocator.suspend();
  f.allocator.add_predicted_volume(f.src, f.dst, Bytes{1'000'000});
  EXPECT_EQ(f.allocator.installs_suppressed(), 1u);
  EXPECT_EQ(f.controller.rules_installed(), 0u);
  EXPECT_GT(f.allocator.pair_outstanding(f.src, f.dst).count(), 0);

  f.allocator.resume();
  f.sim.run();
  EXPECT_EQ(f.controller.rules_installed(), 1u);
  EXPECT_NE(f.controller.active_rule(f.src, f.dst), nullptr);
}

}  // namespace
}  // namespace pythia::core
