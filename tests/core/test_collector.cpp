#include "core/collector.hpp"

#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "net/fabric.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"

namespace pythia::core {
namespace {

using net::NodeId;
using util::Bytes;
using util::Duration;

struct Fixture {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric{sim, topo};
  sdn::Controller controller{sim, fabric, topo};
  Allocator allocator{controller};
  Collector collector{sim, allocator};
  NodeId src, dst_remote, dst_local;

  Fixture() {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst_local = hosts[0];
    dst_remote = hosts[9];
  }

  ShuffleIntent intent(std::size_t reduce_index, std::int64_t bytes) {
    ShuffleIntent i;
    i.job_serial = 0;
    i.map_index = 0;
    i.reduce_index = reduce_index;
    i.src_server = src;
    i.predicted_wire_bytes = Bytes{bytes};
    i.emitted_at = sim.now();
    return i;
  }
};

TEST(Collector, HoldsIntentUntilReducerLocated) {
  Fixture f;
  f.collector.ingest(f.intent(0, 1'000'000));
  EXPECT_EQ(f.collector.intents_received(), 1u);
  EXPECT_EQ(f.collector.intents_held_for_reducer(), 1u);
  f.sim.run();
  // Nothing allocated: destination still unknown.
  EXPECT_EQ(f.allocator.allocations(), 0u);

  f.collector.reducer_located(0, 0, f.dst_remote);
  f.sim.run();
  EXPECT_EQ(f.allocator.allocations(), 1u);
  EXPECT_EQ(f.allocator.pair_outstanding(f.src, f.dst_remote).count(),
            1'000'000);
}

TEST(Collector, KnownReducerAllocatesAfterBatchWindow) {
  Fixture f;
  f.collector.reducer_located(0, 0, f.dst_remote);
  f.collector.ingest(f.intent(0, 2'000'000));
  EXPECT_EQ(f.allocator.allocations(), 0u);  // batched, not yet flushed
  f.sim.run();
  EXPECT_EQ(f.collector.batches_flushed(), 1u);
  EXPECT_EQ(f.allocator.allocations(), 1u);
}

TEST(Collector, LocalDestinationIsDropped) {
  Fixture f;
  f.collector.reducer_located(0, 0, f.dst_local);
  f.collector.ingest(f.intent(0, 5'000'000));
  f.sim.run();
  EXPECT_EQ(f.allocator.allocations(), 0u);
  EXPECT_EQ(f.collector.aggregate_count(), 0u);
  EXPECT_TRUE(f.collector.predicted_curve(f.src).empty());
}

TEST(Collector, BatchAggregatesSamePair) {
  Fixture f;
  f.collector.reducer_located(0, 0, f.dst_remote);
  f.collector.ingest(f.intent(0, 1'000'000));
  f.collector.ingest(f.intent(0, 2'000'000));
  f.collector.ingest(f.intent(0, 3'000'000));
  f.sim.run();
  // One aggregate, one allocation, summed volume.
  EXPECT_EQ(f.allocator.allocations(), 1u);
  EXPECT_EQ(f.allocator.pair_outstanding(f.src, f.dst_remote).count(),
            6'000'000);
  EXPECT_EQ(f.collector.aggregate_count(), 1u);
}

TEST(Collector, PredictedCurveAccumulatesRemoteOnly) {
  Fixture f;
  f.collector.reducer_located(0, 0, f.dst_remote);
  f.collector.reducer_located(0, 1, f.dst_local);
  f.collector.ingest(f.intent(0, 1'000'000));
  f.collector.ingest(f.intent(1, 9'000'000));  // local -> excluded
  f.sim.run();
  const auto& curve = f.collector.predicted_curve(f.src);
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(curve.back().cumulative.count(), 1'000'000);
}

TEST(Collector, FetchCompletionRetiresVolume) {
  Fixture f;
  f.collector.reducer_located(0, 0, f.dst_remote);
  f.collector.ingest(f.intent(0, 10'000'000));
  f.sim.run();
  const auto before = f.allocator.pair_outstanding(f.src, f.dst_remote);
  ASSERT_EQ(before.count(), 10'000'000);

  // A fetch of ~half the payload completes (the collector re-applies the
  // same overhead model used at prediction time).
  f.collector.fetch_completed(f.src, f.dst_remote, Bytes{4'700'000});
  const auto after = f.allocator.pair_outstanding(f.src, f.dst_remote);
  EXPECT_LT(after, before);
  EXPECT_GT(after.count(), 0);

  // Local completions are ignored.
  f.collector.fetch_completed(f.src, f.src, Bytes{4'700'000});
  EXPECT_EQ(f.allocator.pair_outstanding(f.src, f.dst_remote), after);
}

TEST(Collector, HeldIntentsExpireAfterTtl) {
  Fixture f;
  CollectorConfig cfg;
  cfg.intent_ttl = Duration::seconds_i(30);
  Collector collector(f.sim, f.allocator, cfg);

  collector.ingest(f.intent(0, 1'000'000));  // reducer never locates
  EXPECT_EQ(collector.intents_waiting(), 1u);

  // Any collector activity after the TTL triggers the lazy purge.
  f.sim.after(Duration::seconds_i(31), [&] {
    collector.reducer_located(0, 7, f.dst_remote);  // unrelated reducer
  });
  f.sim.run();
  EXPECT_EQ(collector.intents_waiting(), 0u);
  EXPECT_EQ(collector.intents_expired(), 1u);

  // The expired intent is gone for good: locating its reducer later must
  // not resurrect it.
  collector.reducer_located(0, 0, f.dst_remote);
  f.sim.run();
  EXPECT_EQ(f.allocator.allocations(), 0u);
}

TEST(Collector, IntentsSurviveWithinTtl) {
  Fixture f;
  CollectorConfig cfg;
  cfg.intent_ttl = Duration::seconds_i(30);
  Collector collector(f.sim, f.allocator, cfg);
  collector.ingest(f.intent(0, 1'000'000));
  f.sim.after(Duration::seconds_i(29),
              [&] { collector.reducer_located(0, 0, f.dst_remote); });
  f.sim.run();
  EXPECT_EQ(collector.intents_expired(), 0u);
  EXPECT_EQ(f.allocator.allocations(), 1u);
}

TEST(Collector, JobCompletionPurgesResidue) {
  Fixture f;
  // Two jobs hold intents; completing job 0 must only reclaim its own.
  f.collector.ingest(f.intent(0, 1'000'000));
  ShuffleIntent other = f.intent(1, 2'000'000);
  other.job_serial = 3;
  f.collector.ingest(other);
  f.collector.reducer_located(0, 5, f.dst_remote);
  ASSERT_EQ(f.collector.intents_waiting(), 2u);

  f.collector.job_completed(0);
  EXPECT_EQ(f.collector.intents_waiting(), 1u);
  EXPECT_EQ(f.collector.intents_purged_on_completion(), 1u);

  // Job 0's reducer-location table is gone too: a straggler intent for it
  // holds rather than resolving against a stale mapping.
  ShuffleIntent straggler = f.intent(5, 500'000);
  f.collector.ingest(straggler);
  EXPECT_EQ(f.collector.intents_waiting(), 2u);

  f.collector.job_completed(3);
  EXPECT_EQ(f.collector.intents_purged_on_completion(), 2u);
}

TEST(Collector, UnpredictedFetchCountsUnderflow) {
  Fixture f;
  ASSERT_EQ(f.collector.underflow_events(), 0u);
  // A completion with no prior prediction: outstanding would go negative.
  f.collector.fetch_completed(f.src, f.dst_remote, Bytes{4'000'000});
  EXPECT_EQ(f.collector.underflow_events(), 1u);
  EXPECT_EQ(f.collector.destination_outstanding(f.dst_remote).count(), 0);
  // Local completions never touch the books.
  f.collector.fetch_completed(f.src, f.src, Bytes{4'000'000});
  EXPECT_EQ(f.collector.underflow_events(), 1u);
}

TEST(Collector, MultipleJobsKeepReducerNamespacesApart) {
  Fixture f;
  // Job 0 reducer 0 is remote; job 1 reducer 0 is local.
  f.collector.reducer_located(0, 0, f.dst_remote);
  f.collector.reducer_located(1, 0, f.dst_local);

  ShuffleIntent j1 = f.intent(0, 1'000'000);
  j1.job_serial = 1;
  f.collector.ingest(j1);  // must hit the local mapping -> dropped
  f.sim.run();
  EXPECT_EQ(f.allocator.allocations(), 0u);

  f.collector.ingest(f.intent(0, 1'000'000));  // job 0 -> remote
  f.sim.run();
  EXPECT_EQ(f.allocator.allocations(), 1u);
}

}  // namespace
}  // namespace pythia::core
