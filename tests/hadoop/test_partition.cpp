#include "hadoop/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pythia::hadoop {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(ReducerWeights, UniformIsEqual) {
  util::Xoshiro256 rng(1);
  const auto w = reducer_weights(PartitionSkew::uniform(), 8, rng);
  ASSERT_EQ(w.size(), 8u);
  for (double x : w) EXPECT_NEAR(x, 0.125, 1e-12);
}

TEST(ReducerWeights, SumToOneAndPositive) {
  util::Xoshiro256 rng(2);
  for (const auto& skew :
       {PartitionSkew::uniform(), PartitionSkew::zipf(0.8),
        PartitionSkew::explicit_weights({3.0, 1.0, 2.0})}) {
    const std::size_t n = skew.kind == SkewKind::kExplicit ? 3 : 5;
    const auto w = reducer_weights(skew, n, rng);
    EXPECT_NEAR(sum(w), 1.0, 1e-12);
    for (double x : w) EXPECT_GT(x, 0.0);
  }
}

TEST(ReducerWeights, ZipfZeroDegeneratesToUniform) {
  util::Xoshiro256 rng(3);
  const auto w = reducer_weights(PartitionSkew::zipf(0.0), 4, rng);
  for (double x : w) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(ReducerWeights, ZipfSkewGrowsWithExponent) {
  util::Xoshiro256 rng1(4);
  util::Xoshiro256 rng2(4);
  const auto mild = reducer_weights(PartitionSkew::zipf(0.5), 10, rng1);
  const auto heavy = reducer_weights(PartitionSkew::zipf(1.5), 10, rng2);
  EXPECT_LT(skew_factor(mild), skew_factor(heavy));
}

TEST(ReducerWeights, ZipfHotReducerPositionVariesWithSeed) {
  // The shuffle moves the heavy reducer around; across several seeds at
  // least two positions must differ.
  std::vector<std::size_t> hot_positions;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Xoshiro256 rng(seed);
    const auto w = reducer_weights(PartitionSkew::zipf(1.2), 6, rng);
    hot_positions.push_back(static_cast<std::size_t>(
        std::max_element(w.begin(), w.end()) - w.begin()));
  }
  const bool all_same = std::all_of(
      hot_positions.begin(), hot_positions.end(),
      [&](std::size_t p) { return p == hot_positions.front(); });
  EXPECT_FALSE(all_same);
}

TEST(ReducerWeights, ExplicitPreservesRatios) {
  util::Xoshiro256 rng(5);
  const auto w =
      reducer_weights(PartitionSkew::explicit_weights({5.0, 1.0}), 2, rng);
  EXPECT_NEAR(w[0] / w[1], 5.0, 1e-9);
  EXPECT_NEAR(sum(w), 1.0, 1e-12);
}

TEST(MapperPartition, NormalizedAndPositive) {
  util::Xoshiro256 rng(6);
  const std::vector<double> base{0.5, 0.3, 0.2};
  for (int i = 0; i < 100; ++i) {
    const auto w = mapper_partition(base, 0.2, rng);
    EXPECT_NEAR(sum(w), 1.0, 1e-12);
    for (double x : w) EXPECT_GT(x, 0.0);
  }
}

TEST(MapperPartition, ZeroJitterReproducesBase) {
  util::Xoshiro256 rng(7);
  const std::vector<double> base{0.6, 0.4};
  const auto w = mapper_partition(base, 0.0, rng);
  EXPECT_NEAR(w[0], 0.6, 1e-12);
  EXPECT_NEAR(w[1], 0.4, 1e-12);
}

TEST(MapperPartition, JitterAveragesOut) {
  util::Xoshiro256 rng(8);
  const std::vector<double> base{0.7, 0.3};
  double acc0 = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    acc0 += mapper_partition(base, 0.1, rng)[0];
  }
  EXPECT_NEAR(acc0 / kN, 0.7, 0.005);
}

TEST(SkewFactor, Basics) {
  EXPECT_DOUBLE_EQ(skew_factor({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(skew_factor({3.0, 1.0}), 1.5);
  EXPECT_GT(skew_factor({10.0, 1.0, 1.0}), 2.0);
}

}  // namespace
}  // namespace pythia::hadoop
