// HDFS output write-back modelling (off by default; the paper's evaluation
// view omits DFS phases).
#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace pythia::hadoop {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;

TEST(DfsOutput, DisabledByDefault) {
  TestCluster cluster;
  const auto result = cluster.run(small_job(8, 4));
  // Network traffic == remote shuffle payload only.
  EXPECT_EQ(cluster.fabric->bytes_delivered().count(),
            result.remote_shuffle_bytes().count());
}

TEST(DfsOutput, ReplicationAddsNetworkTraffic) {
  TestCluster cluster;
  JobSpec spec = small_job(8, 4);
  spec.dfs_replication = 3;
  spec.output_ratio = 1.0;
  spec.mapper_output_jitter = 0.0;
  const auto result = cluster.run(spec);
  // Each reducer writes (replication - 1) remote copies of its output.
  const auto expected_writes =
      result.total_shuffle_bytes().count() * 2;  // output_ratio 1, 2 remotes
  const auto write_bytes = cluster.fabric->bytes_delivered().count() -
                           result.remote_shuffle_bytes().count();
  EXPECT_NEAR(static_cast<double>(write_bytes),
              static_cast<double>(expected_writes),
              static_cast<double>(expected_writes) * 0.01);
}

TEST(DfsOutput, ExtendsJobCompletion) {
  JobSpec spec = small_job(8, 4);
  spec.reduce_rate = util::BitsPerSec{80e9};  // make writes the tail

  TestCluster without(2);
  const double base = without.run(spec).completion_time().seconds();

  spec.dfs_replication = 3;
  TestCluster with(2);
  const double with_writes = with.run(spec).completion_time().seconds();
  EXPECT_GT(with_writes, base);
}

TEST(DfsOutput, OutputRatioScalesWrites) {
  JobSpec spec = small_job(8, 4);
  spec.dfs_replication = 2;
  spec.mapper_output_jitter = 0.0;

  spec.output_ratio = 0.1;  // aggregation-style contraction
  TestCluster small_out(3);
  const auto r_small = small_out.run(spec);
  const auto small_writes = small_out.fabric->bytes_delivered().count() -
                            r_small.remote_shuffle_bytes().count();

  spec.output_ratio = 1.0;
  TestCluster big_out(3);
  const auto r_big = big_out.run(spec);
  const auto big_writes = big_out.fabric->bytes_delivered().count() -
                          r_big.remote_shuffle_bytes().count();
  EXPECT_NEAR(static_cast<double>(big_writes) / 10.0,
              static_cast<double>(small_writes),
              static_cast<double>(small_writes) * 0.1);
}

TEST(DfsOutput, WritesAreNotShuffleClass) {
  // Pythia must ignore DFS writes (it only predicts shuffle flows); assert
  // the class split on the wire.
  TestCluster cluster;
  struct ClassTally final : net::FabricObserver {
    std::int64_t shuffle = 0;
    std::int64_t other = 0;
    void on_flow_completed(const net::Fabric& fabric, net::FlowId id,
                           util::SimTime) override {
      const auto& f = fabric.flow(id);
      if (f.spec.cls == net::FlowClass::kShuffle) {
        shuffle += f.spec.size.count();
      } else {
        other += f.spec.size.count();
      }
    }
  } tally;
  cluster.fabric->add_observer(&tally);

  JobSpec spec = small_job(8, 4);
  spec.dfs_replication = 2;
  const auto result = cluster.run(spec);
  EXPECT_EQ(tally.shuffle, result.remote_shuffle_bytes().count());
  EXPECT_GT(tally.other, 0);
}

}  // namespace
}  // namespace pythia::hadoop
