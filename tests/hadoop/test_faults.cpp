// Fault injection in the MapReduce engine: stragglers and map retries.
#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace pythia::hadoop {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;

TEST(Faults, NoInjectionByDefault) {
  TestCluster cluster;
  const JobResult result = cluster.run(small_job(10, 4));
  EXPECT_EQ(result.map_retries, 0u);
  EXPECT_EQ(result.stragglers, 0u);
}

TEST(Faults, StragglersAreCountedAndSlowTheJob) {
  hadoop::ClusterConfig faulty;
  faulty.straggler_probability = 0.3;
  faulty.straggler_slowdown = 8.0;
  TestCluster slow(1, {}, faulty);
  TestCluster clean(1);

  const auto spec = small_job(20, 4);
  const JobResult with = slow.run(spec);
  const JobResult without = clean.run(spec);
  EXPECT_GT(with.stragglers, 0u);
  EXPECT_GT(with.completion_time().seconds(),
            without.completion_time().seconds());
  // All spans still recorded; results structurally complete.
  EXPECT_EQ(with.maps.size(), 20u);
  EXPECT_EQ(with.fetches.size(), 20u * 4u);
}

TEST(Faults, FailedAttemptsAreRetriedAndJobCompletes) {
  hadoop::ClusterConfig faulty;
  faulty.map_failure_probability = 0.3;
  TestCluster cluster(2, {}, faulty);
  const JobResult result = cluster.run(small_job(20, 4));
  EXPECT_GT(result.map_retries, 0u);
  // Every map still finished exactly once; conservation intact.
  EXPECT_EQ(result.maps.size(), 20u);
  EXPECT_EQ(result.fetches.size(), 20u * 4u);
  for (const auto& m : result.maps) {
    EXPECT_GT(m.finished, m.started);
  }
}

TEST(Faults, AttemptCapBoundsRetries) {
  hadoop::ClusterConfig faulty;
  faulty.map_failure_probability = 1.0;  // every eligible attempt dies
  faulty.max_task_attempts = 3;
  TestCluster cluster(3, {}, faulty);
  const JobResult result = cluster.run(small_job(5, 2));
  // With p=1, every map burns exactly (max_attempts - 1) failures and then
  // the final attempt is forced through: 5 maps x 2 failed attempts.
  EXPECT_EQ(result.map_retries, 5u * (3u - 1u));
  EXPECT_EQ(result.maps.size(), 5u);
}

TEST(Faults, RetriesDoNotDuplicateShuffleVolume) {
  hadoop::ClusterConfig faulty;
  faulty.map_failure_probability = 0.4;
  TestCluster cluster(4, {}, faulty);

  struct OutputTally final : EngineObserver {
    int notices = 0;
    void on_map_output_ready(const MapOutputNotice&) override { ++notices; }
  } tally;
  cluster.engine->add_observer(&tally);

  const JobResult result = cluster.run(small_job(15, 3));
  // One spill per map task, regardless of how many attempts failed.
  EXPECT_EQ(tally.notices, 15);
  EXPECT_EQ(result.fetches.size(), 15u * 3u);
}

TEST(Speculation, BackupsRescueStragglers) {
  hadoop::ClusterConfig cfg;
  cfg.straggler_probability = 0.15;
  cfg.straggler_slowdown = 10.0;

  // A map-dominated job so the straggler tail is the critical path.
  hadoop::JobSpec spec = small_job(20, 4);
  spec.input = util::Bytes{20LL * 256'000'000};
  spec.block = util::Bytes{256'000'000};
  spec.map_rate = util::BitsPerSec{2e8};    // ~25 MB/s: maps take ~11 s
  spec.reduce_rate = util::BitsPerSec{8e9};  // reduce is cheap

  // Seed chosen so the backup attempts do not straggle themselves (the
  // straggle draw is iid per attempt, as on a real cluster where a backup
  // can land on another slow node).
  TestCluster plain(3, {}, cfg);
  cfg.speculative_execution = true;
  TestCluster speculative(3, {}, cfg);

  const JobResult slow = plain.run(spec);
  const JobResult rescued = speculative.run(spec);
  EXPECT_GT(slow.stragglers, 0u);
  // Speculation cuts the ~110 s straggler tail down to ~2x a normal map.
  EXPECT_LT(rescued.completion_time().seconds(),
            slow.completion_time().seconds() * 0.5);
  EXPECT_EQ(rescued.maps.size(), 20u);
  EXPECT_EQ(rescued.fetches.size(), 20u * 4u);
}

TEST(Speculation, OneSpillPerMapDespiteBackups) {
  hadoop::ClusterConfig cfg;
  cfg.speculative_execution = true;
  cfg.straggler_probability = 0.5;
  cfg.straggler_slowdown = 6.0;
  TestCluster cluster(6, {}, cfg);

  struct OutputTally final : EngineObserver {
    int notices = 0;
    void on_map_output_ready(const MapOutputNotice&) override { ++notices; }
  } tally;
  cluster.engine->add_observer(&tally);

  const JobResult result = cluster.run(small_job(16, 4));
  EXPECT_EQ(tally.notices, 16);  // the losing attempt never spills
  EXPECT_EQ(result.fetches.size(), 16u * 4u);
}

TEST(Speculation, NoBackupsWhenNothingStraggles) {
  hadoop::ClusterConfig with;
  with.speculative_execution = true;
  TestCluster a(7, {}, with);
  TestCluster b(7);
  const auto spec = small_job(12, 3);
  // With no stragglers the nominal-duration check never fires a backup, so
  // both runs are identical.
  EXPECT_EQ(a.run(spec).completion_time().ns(),
            b.run(spec).completion_time().ns());
}

TEST(Speculation, ComposesWithFailures) {
  hadoop::ClusterConfig cfg;
  cfg.speculative_execution = true;
  cfg.straggler_probability = 0.2;
  cfg.straggler_slowdown = 8.0;
  cfg.map_failure_probability = 0.2;
  TestCluster cluster(8, {}, cfg);
  const JobResult result = cluster.run(small_job(24, 4));
  EXPECT_EQ(result.maps.size(), 24u);
  EXPECT_EQ(result.fetches.size(), 24u * 4u);
  for (const auto& m : result.maps) EXPECT_GT(m.finished, m.started);
}

TEST(Faults, DeterministicUnderInjection) {
  auto run = [](std::uint64_t seed) {
    hadoop::ClusterConfig faulty;
    faulty.map_failure_probability = 0.2;
    faulty.straggler_probability = 0.1;
    TestCluster cluster(seed, {}, faulty);
    return cluster.run(small_job(12, 3)).completion_time().ns();
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace pythia::hadoop
