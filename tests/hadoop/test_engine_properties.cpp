// Parameterized invariants of the MapReduce engine across job shapes, skews
// and cluster sizes.
#include <gtest/gtest.h>

#include <map>

#include "test_fixtures.hpp"

namespace pythia::hadoop {
namespace {

using pythia::testing::TestCluster;

struct Params {
  std::uint64_t seed;
  std::size_t maps;
  std::size_t reducers;
  double zipf;
  double ratio;
  std::size_t servers_per_rack;
};

class EngineProperty : public ::testing::TestWithParam<Params> {};

TEST_P(EngineProperty, InvariantsHold) {
  const Params p = GetParam();
  net::TwoRackConfig topo_cfg;
  topo_cfg.servers_per_rack = p.servers_per_rack;
  TestCluster cluster(p.seed, topo_cfg);

  JobSpec spec;
  spec.name = "prop-job";
  spec.input = util::Bytes{static_cast<std::int64_t>(p.maps) * 32'000'000};
  spec.block = util::Bytes{32'000'000};
  spec.num_reducers = p.reducers;
  spec.map_output_ratio = p.ratio;
  spec.skew = PartitionSkew::zipf(p.zipf);

  const JobResult result = cluster.run(spec);

  // I1: task cardinalities.
  ASSERT_EQ(result.maps.size(), p.maps);
  ASSERT_EQ(result.reducers.size(), p.reducers);
  ASSERT_EQ(result.fetches.size(), p.maps * p.reducers);

  // I2: time sanity — no span inverted, completion covers everything.
  for (const auto& m : result.maps) {
    EXPECT_LT(m.started, m.finished);
    EXPECT_LE(m.finished, result.completed);
  }
  for (const auto& r : result.reducers) {
    EXPECT_LE(r.started, r.shuffle_done);
    EXPECT_LT(r.shuffle_done, r.finished);
    EXPECT_LE(r.finished, result.completed);
  }
  for (const auto& f : result.fetches) {
    EXPECT_LE(f.enqueued, f.started);
    EXPECT_LE(f.started, f.completed);
  }

  // I3: shuffle volume ≈ input * ratio (mapper jitter is zero-mean, bounded
  // well inside 30% for these sizes).
  const double expected = spec.input.as_double() * p.ratio;
  EXPECT_NEAR(result.total_shuffle_bytes().as_double(), expected,
              expected * 0.3);

  // I4: per-reducer sums match fetch records.
  std::map<std::size_t, std::int64_t> per_reducer;
  for (const auto& f : result.fetches) {
    per_reducer[f.reduce_index] += f.payload.count();
  }
  for (const auto& r : result.reducers) {
    EXPECT_EQ(per_reducer[r.index], r.shuffled.count());
  }

  // I5: servers come from the cluster.
  const auto hosts = cluster.topo.hosts();
  auto is_server = [&](net::NodeId n) {
    return std::find(hosts.begin(), hosts.end(), n) != hosts.end();
  };
  for (const auto& m : result.maps) EXPECT_TRUE(is_server(m.server));
  for (const auto& r : result.reducers) EXPECT_TRUE(is_server(r.server));

  // I6: network conservation — the fabric delivered exactly the remote
  // payload volume (all flows are shuffle fetches here).
  EXPECT_EQ(cluster.fabric->bytes_delivered().count(),
            result.remote_shuffle_bytes().count());
  EXPECT_EQ(cluster.fabric->flows_completed(),
            static_cast<std::uint64_t>(std::count_if(
                result.fetches.begin(), result.fetches.end(),
                [](const FetchRecord& f) { return f.remote; })));

  // I7: skewed jobs produce skewed reducer loads (monotone sanity check).
  if (p.zipf >= 1.0 && p.reducers >= 4) {
    EXPECT_GT(skew_factor(result.reducer_load_profile()), 1.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineProperty,
    ::testing::Values(Params{1, 1, 1, 0.0, 1.0, 5},
                      Params{2, 4, 2, 0.0, 1.0, 5},
                      Params{3, 20, 8, 0.5, 1.0, 5},
                      Params{4, 40, 4, 1.2, 0.3, 5},
                      Params{5, 12, 12, 1.0, 2.0, 5},
                      Params{6, 30, 6, 0.8, 1.0, 2},
                      Params{7, 64, 10, 0.0, 0.5, 3},
                      Params{8, 9, 3, 1.5, 1.5, 1},
                      Params{9, 100, 16, 0.6, 1.0, 5},
                      Params{10, 2, 7, 0.0, 1.0, 4}),
    [](const auto& info) {
      const Params& p = info.param;
      return "s" + std::to_string(p.seed) + "_m" + std::to_string(p.maps) +
             "_r" + std::to_string(p.reducers) + "_spr" +
             std::to_string(p.servers_per_rack);
    });

}  // namespace
}  // namespace pythia::hadoop
