#include "hadoop/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_fixtures.hpp"

namespace pythia::hadoop {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;
using util::Bytes;
using util::SimTime;

TEST(Engine, SmallJobCompletes) {
  TestCluster cluster;
  const JobResult result = cluster.run(small_job());
  EXPECT_EQ(result.maps.size(), 6u);
  EXPECT_EQ(result.reducers.size(), 4u);
  EXPECT_GT(result.completion_time().seconds(), 0.0);
  EXPECT_EQ(cluster.engine->jobs_completed(), 1u);
}

TEST(Engine, TaskSpansAreOrdered) {
  TestCluster cluster;
  const JobResult result = cluster.run(small_job(12, 5));
  for (const auto& m : result.maps) {
    EXPECT_GE(m.started, result.submitted);
    EXPECT_GT(m.finished, m.started);
  }
  for (const auto& r : result.reducers) {
    EXPECT_GE(r.started, result.submitted);
    EXPECT_GE(r.shuffle_done, r.started);
    EXPECT_GT(r.finished, r.shuffle_done);
    EXPECT_LE(r.finished, result.completed);
  }
}

TEST(Engine, EveryFetchPairAppearsExactlyOnce) {
  TestCluster cluster;
  const std::size_t maps = 8;
  const std::size_t reducers = 3;
  const JobResult result = cluster.run(small_job(maps, reducers));
  EXPECT_EQ(result.fetches.size(), maps * reducers);
  std::map<std::pair<std::size_t, std::size_t>, int> seen;
  for (const auto& f : result.fetches) {
    ++seen[{f.map_index, f.reduce_index}];
  }
  EXPECT_EQ(seen.size(), maps * reducers);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
}

TEST(Engine, ShuffleBytesConservation) {
  // Total fetched payload equals total map output, and per-reducer sums
  // match the reducer records.
  TestCluster cluster;

  struct OutputTally final : EngineObserver {
    std::int64_t total = 0;
    void on_map_output_ready(const MapOutputNotice& n) override {
      for (const auto b : n.per_reducer_payload) total += b.count();
    }
  } tally;
  cluster.engine->add_observer(&tally);

  const JobResult result = cluster.run(small_job(10, 4));
  std::int64_t fetched = 0;
  std::vector<std::int64_t> per_reducer(4, 0);
  for (const auto& f : result.fetches) {
    fetched += f.payload.count();
    per_reducer[f.reduce_index] += f.payload.count();
  }
  EXPECT_EQ(fetched, tally.total);
  for (const auto& r : result.reducers) {
    EXPECT_EQ(r.shuffled.count(), per_reducer[r.index]);
  }
  EXPECT_EQ(result.total_shuffle_bytes().count(), fetched);
}

TEST(Engine, RemoteFetchesCrossRacksLocalOnesDoNot) {
  TestCluster cluster;
  const JobResult result = cluster.run(small_job(10, 4));
  bool saw_remote = false;
  bool saw_local = false;
  for (const auto& f : result.fetches) {
    EXPECT_EQ(f.remote, f.src_server != f.dst_server);
    saw_remote |= f.remote;
    saw_local |= !f.remote;
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_TRUE(saw_local);
  // Remote bytes strictly less than total (some mapper shares a server with
  // some reducer on a 10-server cluster with 10 maps x 4 reducers).
  EXPECT_LT(result.remote_shuffle_bytes(), result.total_shuffle_bytes());
}

TEST(Engine, SlowstartGatesReducerLaunch) {
  hadoop::ClusterConfig cluster_cfg;
  cluster_cfg.reduce_slowstart = 0.5;  // half the maps must finish first
  TestCluster cluster(1, {}, cluster_cfg);
  const JobResult result = cluster.run(small_job(10, 2));

  // Order map finish times; reducers must start after the 5th map finish.
  std::vector<SimTime> finishes;
  for (const auto& m : result.maps) finishes.push_back(m.finished);
  std::sort(finishes.begin(), finishes.end());
  const SimTime gate = finishes[4];
  for (const auto& r : result.reducers) {
    EXPECT_GE(r.started, gate);
  }
}

TEST(Engine, ParallelCopiesBounded) {
  hadoop::ClusterConfig cluster_cfg;
  cluster_cfg.parallel_copies = 2;
  TestCluster cluster(1, {}, cluster_cfg);

  // Track per-reducer concurrent fetch counts via observer events.
  struct ConcurrencyTracker final : EngineObserver {
    std::map<std::size_t, int> inflight;
    std::map<std::size_t, int> peak;
    void on_fetch_started(std::size_t, const FetchRecord& f,
                          net::FlowId) override {
      peak[f.reduce_index] = std::max(peak[f.reduce_index],
                                      ++inflight[f.reduce_index]);
    }
    void on_fetch_completed(std::size_t, const FetchRecord& f) override {
      --inflight[f.reduce_index];
    }
  } tracker;
  cluster.engine->add_observer(&tracker);

  cluster.run(small_job(16, 3));
  for (const auto& [reducer, peak] : tracker.peak) {
    EXPECT_LE(peak, 2) << "reducer " << reducer;
    EXPECT_GE(peak, 1);
  }
}

TEST(Engine, ShuffleBarrierBeforeReduce) {
  TestCluster cluster;
  const JobResult result = cluster.run(small_job(10, 3));
  for (const auto& r : result.reducers) {
    // Every fetch of this reducer completed no later than shuffle_done.
    for (const auto& f : result.fetches) {
      if (f.reduce_index != r.index) continue;
      EXPECT_LE(f.completed, r.shuffle_done);
    }
  }
  // And the last map precedes every reducer's shuffle end.
  for (const auto& r : result.reducers) {
    EXPECT_GE(r.shuffle_done, result.map_phase_end());
  }
}

TEST(Engine, MapSlotsRespected) {
  net::TwoRackConfig topo_cfg;
  topo_cfg.servers_per_rack = 1;  // 2 servers
  hadoop::ClusterConfig cluster_cfg;
  cluster_cfg.map_slots_per_server = 1;  // 2 concurrent maps max
  cluster_cfg.heartbeat_jitter = util::Duration::zero();
  TestCluster cluster(1, topo_cfg, cluster_cfg);
  const JobResult result = cluster.run(small_job(6, 2));

  // Count peak concurrency from spans.
  std::vector<std::pair<SimTime, int>> events;
  for (const auto& m : result.maps) {
    events.emplace_back(m.started, +1);
    events.emplace_back(m.finished, -1);
  }
  std::sort(events.begin(), events.end());
  int cur = 0;
  int peak = 0;
  for (const auto& [t, d] : events) {
    cur += d;
    peak = std::max(peak, cur);
  }
  EXPECT_LE(peak, 2);
}

TEST(Engine, ReducersQueueWhenSlotsAreScarce) {
  net::TwoRackConfig topo_cfg;
  topo_cfg.servers_per_rack = 1;  // 2 servers
  hadoop::ClusterConfig cluster_cfg;
  cluster_cfg.reduce_slots_per_server = 1;  // 2 concurrent reducers max
  TestCluster cluster(1, topo_cfg, cluster_cfg);
  const JobResult result = cluster.run(small_job(6, 5));

  // All five reducers complete, but never more than two run concurrently.
  ASSERT_EQ(result.reducers.size(), 5u);
  std::vector<std::pair<SimTime, int>> events;
  for (const auto& r : result.reducers) {
    events.emplace_back(r.started, +1);
    events.emplace_back(r.finished, -1);
  }
  std::sort(events.begin(), events.end());
  int cur = 0;
  int peak = 0;
  for (const auto& [t, d] : events) {
    cur += d;
    peak = std::max(peak, cur);
  }
  EXPECT_LE(peak, 2);
}

TEST(Engine, CompletionEventPollDelaysFetchAvailability) {
  hadoop::ClusterConfig slow_poll;
  slow_poll.completion_event_poll = util::Duration::seconds_i(10);
  TestCluster cluster(1, {}, slow_poll);
  const JobResult result = cluster.run(small_job(6, 3));

  // Every fetch became available at least 2 s (20% of the window) after its
  // map finished.
  for (const auto& f : result.fetches) {
    const auto& map = result.maps[f.map_index];
    EXPECT_GE((f.enqueued - map.finished).seconds(), 2.0 - 1e-9)
        << "map " << f.map_index << " -> reducer " << f.reduce_index;
  }
}

TEST(Engine, TwoJobsFifoBothComplete) {
  TestCluster cluster;
  JobResult first;
  JobResult second;
  int completed = 0;
  cluster.engine->submit(small_job(6, 2), [&](const JobResult& r) {
    first = r;
    ++completed;
  });
  cluster.engine->submit(small_job(4, 2), [&](const JobResult& r) {
    second = r;
    ++completed;
  });
  cluster.sim->run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(cluster.engine->jobs_completed(), 2u);
  EXPECT_GT(first.completion_time().seconds(), 0.0);
  EXPECT_GT(second.completion_time().seconds(), 0.0);
}

TEST(Engine, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    TestCluster cluster(seed);
    return cluster.run(small_job(10, 4)).completion_time().ns();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seed perturbs jitters
}

TEST(Engine, ObserversSeeLifecycleEvents) {
  TestCluster cluster;
  struct Recorder final : EngineObserver {
    int map_outputs = 0;
    int reducer_starts = 0;
    int fetch_starts = 0;
    int fetch_completes = 0;
    int job_completes = 0;
    void on_map_output_ready(const MapOutputNotice&) override {
      ++map_outputs;
    }
    void on_reducer_started(std::size_t, std::size_t, net::NodeId,
                            SimTime) override {
      ++reducer_starts;
    }
    void on_fetch_started(std::size_t, const FetchRecord&,
                          net::FlowId) override {
      ++fetch_starts;
    }
    void on_fetch_completed(std::size_t, const FetchRecord&) override {
      ++fetch_completes;
    }
    void on_job_completed(std::size_t, const JobResult&) override {
      ++job_completes;
    }
  } rec;
  cluster.engine->add_observer(&rec);
  cluster.run(small_job(5, 3));
  EXPECT_EQ(rec.map_outputs, 5);
  EXPECT_EQ(rec.reducer_starts, 3);
  EXPECT_EQ(rec.fetch_starts, 15);
  EXPECT_EQ(rec.fetch_completes, 15);
  EXPECT_EQ(rec.job_completes, 1);
}

TEST(Engine, MapOutputNoticeMatchesSpec) {
  TestCluster cluster;
  struct Checker final : EngineObserver {
    std::size_t reducers = 0;
    std::int64_t per_map_payload = -1;
    bool ratio_ok = true;
    void on_map_output_ready(const MapOutputNotice& n) override {
      reducers = n.per_reducer_payload.size();
      std::int64_t total = 0;
      for (const auto b : n.per_reducer_payload) total += b.count();
      per_map_payload = total;
    }
  } checker;
  cluster.engine->add_observer(&checker);
  JobSpec spec = small_job(4, 6);
  spec.mapper_output_jitter = 0.0;  // exact: output == input per map
  cluster.run(spec);
  EXPECT_EQ(checker.reducers, 6u);
  EXPECT_NEAR(static_cast<double>(checker.per_map_payload), 64'000'000.0,
              10.0);
}

TEST(Engine, ReducerWeightsAccessor) {
  TestCluster cluster;
  JobSpec spec = small_job(4, 2);
  spec.skew = PartitionSkew::explicit_weights({3.0, 1.0});
  const std::size_t serial = cluster.engine->submit(spec);
  cluster.sim->run();
  const auto& w = cluster.engine->job_reducer_weights(serial);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 0.75, 1e-12);
}

}  // namespace
}  // namespace pythia::hadoop
