// MPTCP-style packet-spray transport (idealized multipath baseline).
#include <gtest/gtest.h>

#include "experiments/sweep.hpp"
#include "test_fixtures.hpp"
#include "workloads/hibench.hpp"

namespace pythia::hadoop {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;
using util::Bytes;

TEST(Spray, StripesEveryRemoteFetchAcrossAllPaths) {
  hadoop::ClusterConfig cfg;
  cfg.multipath_spray = true;
  TestCluster cluster(1, {}, cfg);
  const auto result = cluster.run(small_job(10, 4));

  // Cross-rack pairs have two equal-cost paths (two subflows); same-rack
  // remote pairs have a single path through the shared ToR.
  std::size_t expected_flows = 0;
  for (const auto& f : result.fetches) {
    if (!f.remote) continue;
    const bool cross_rack = cluster.topo.node(f.src_server).rack !=
                            cluster.topo.node(f.dst_server).rack;
    expected_flows += cross_rack ? 2 : 1;
  }
  EXPECT_EQ(cluster.fabric->flows_completed(), expected_flows);
  // Conservation still exact.
  EXPECT_EQ(cluster.fabric->bytes_delivered().count(),
            result.remote_shuffle_bytes().count());
}

TEST(Spray, BalancesTheTwoCables) {
  hadoop::ClusterConfig cfg;
  cfg.multipath_spray = true;
  TestCluster cluster(2, {}, cfg);

  struct PathTally final : net::FabricObserver {
    std::unordered_map<std::uint32_t, std::int64_t> per_second_link;
    void on_flow_completed(const net::Fabric& fabric, net::FlowId id,
                           util::SimTime) override {
      const auto& f = fabric.flow(id);
      if (f.spec.path.size() < 4) return;  // same-rack
      per_second_link[f.spec.path[1].value()] += f.spec.size.count();
    }
  } tally;
  cluster.fabric->add_observer(&tally);

  cluster.run(small_job(20, 4));
  ASSERT_EQ(tally.per_second_link.size(), 2u);  // both cables used
  std::vector<double> volumes;
  for (const auto& [_, v] : tally.per_second_link) {
    volumes.push_back(static_cast<double>(v));
  }
  // Striping is byte-equal per fetch: near-perfect balance.
  EXPECT_NEAR(volumes[0], volumes[1], volumes[0] * 0.01);
}

TEST(Spray, ComparableToEcmpUnderAsymmetry) {
  // Equal striping removes ECMP's hashing variance but still puts half of
  // every fetch on the loaded path — the classic uncoupled-multipath
  // limitation — so under *asymmetric* background it lands near ECMP
  // rather than near Pythia. Assert the regime, not superiority.
  const auto job = workloads::sort_job(Bytes{12'000'000'000LL}, 8);
  exp::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.background.oversubscription = 10.0;

  cfg.scheduler = exp::SchedulerKind::kEcmp;
  const double ecmp = exp::run_completion_seconds(cfg, job);
  cfg.scheduler = exp::SchedulerKind::kPacketSpray;
  const double spray = exp::run_completion_seconds(cfg, job);
  EXPECT_LT(spray, ecmp * 1.15);
  EXPECT_GT(spray, ecmp * 0.5);

  // Under *symmetric* heavy background and a network-bound job, spraying
  // pools both cables' residuals and beats single-path ECMP outright.
  hadoop::JobSpec heavy = job;
  heavy.input = Bytes{24LL * 1'000'000'000};
  heavy.block = Bytes{1'000'000'000};
  heavy.map_rate = util::BitsPerSec{8e9};
  heavy.reduce_rate = util::BitsPerSec{16e9};
  cfg.background.path_intensity = {0.85, 0.85};
  cfg.scheduler = exp::SchedulerKind::kEcmp;
  const double ecmp_sym = exp::run_completion_seconds(cfg, heavy);
  cfg.scheduler = exp::SchedulerKind::kPacketSpray;
  const double spray_sym = exp::run_completion_seconds(cfg, heavy);
  EXPECT_LT(spray_sym, ecmp_sym);
}

TEST(Spray, ZeroPayloadFetchStillCompletes) {
  hadoop::ClusterConfig cfg;
  cfg.multipath_spray = true;
  TestCluster cluster(4, {}, cfg);
  JobSpec spec = small_job(4, 3);
  spec.map_output_ratio = 1e-9;  // partitions round to ~zero bytes
  const auto result = cluster.run(spec);
  EXPECT_EQ(result.fetches.size(), 12u);
}

}  // namespace
}  // namespace pythia::hadoop
