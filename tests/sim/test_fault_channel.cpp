// FaultChannel: deterministic control-plane fault injection.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_channel.hpp"
#include "sim/simulation.hpp"

namespace pythia::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(FaultChannel, TransparentChannelDeliversSynchronously) {
  Simulation sim(1);
  FaultChannel ch(sim, "test.channel");
  ASSERT_TRUE(ch.transparent());

  int delivered = 0;
  ch.send([&] { ++delivered; });
  // No event round-trip: the callback already ran.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(ch.messages_offered(), 1u);
  EXPECT_EQ(ch.messages_delivered(), 1u);
  EXPECT_EQ(ch.messages_dropped(), 0u);
}

TEST(FaultChannel, DropRateIsRespectedAndDeterministic) {
  const auto run_once = [](std::uint64_t seed) {
    Simulation sim(seed);
    FaultChannelConfig cfg;
    cfg.drop_probability = 0.3;
    FaultChannel ch(sim, "test.channel", cfg);
    std::vector<int> delivered;
    for (int i = 0; i < 1000; ++i) {
      ch.send([&delivered, i] { delivered.push_back(i); });
    }
    sim.run();
    return delivered;
  };

  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b) << "same seed must fault identically";

  // ~30% dropped (binomial, 1000 trials: 6 sigma ≈ 87).
  EXPECT_NEAR(static_cast<double>(a.size()), 700.0, 90.0);

  const auto c = run_once(43);
  EXPECT_NE(a, c) << "different seed must fault differently";
}

TEST(FaultChannel, FullLossDeliversNothing) {
  Simulation sim(1);
  FaultChannelConfig cfg;
  cfg.drop_probability = 1.0;
  FaultChannel ch(sim, "test.channel", cfg);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) ch.send([&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.messages_dropped(), 50u);
}

TEST(FaultChannel, DuplicatesDeliverTwice) {
  Simulation sim(1);
  FaultChannelConfig cfg;
  cfg.duplicate_probability = 1.0;
  FaultChannel ch(sim, "test.channel", cfg);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) ch.send([&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 40);
  EXPECT_EQ(ch.messages_duplicated(), 20u);
  EXPECT_EQ(ch.messages_delivered(), 40u);
}

TEST(FaultChannel, BaseDelayPostponesDelivery) {
  Simulation sim(1);
  FaultChannelConfig cfg;
  cfg.base_delay = Duration::millis(5);
  FaultChannel ch(sim, "test.channel", cfg);
  SimTime delivered_at{-1};
  ch.send([&] { delivered_at = sim.now(); });
  EXPECT_EQ(delivered_at.ns(), -1) << "delayed message must not run inline";
  sim.run();
  EXPECT_EQ(delivered_at, SimTime::zero() + Duration::millis(5));
}

TEST(FaultChannel, JitterReordersMessages) {
  Simulation sim(7);
  FaultChannelConfig cfg;
  cfg.base_delay = Duration::millis(1);
  cfg.jitter = Duration::millis(50);
  FaultChannel ch(sim, "test.channel", cfg);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    ch.send([&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "50 ms jitter across simultaneous sends must reorder";
  EXPECT_GT(ch.reorderings(), 0u);
}

TEST(FaultChannel, ExponentialJitterProducesHeavyTail) {
  Simulation sim(3);
  FaultChannelConfig cfg;
  cfg.jitter = Duration::millis(10);
  cfg.jitter_kind = FaultChannelConfig::Jitter::kExponential;
  FaultChannel ch(sim, "test.channel", cfg);
  SimTime last{0};
  for (int i = 0; i < 500; ++i) {
    ch.send([&] { last = std::max(last, sim.now()); });
  }
  sim.run();
  // Mean 10 ms ⇒ max of 500 draws virtually certain to exceed the 10 ms
  // uniform bound.
  EXPECT_GT(last, SimTime::zero() + Duration::millis(10));
}

TEST(FaultChannel, NamedStreamsFaultIndependently) {
  // Drawing from one channel must not perturb another channel's fault
  // pattern (independent named RNG streams).
  const auto pattern = [](bool also_drive_other) {
    Simulation sim(11);
    FaultChannelConfig cfg;
    cfg.drop_probability = 0.5;
    FaultChannel main(sim, "chan.main", cfg);
    FaultChannel other(sim, "chan.other", cfg);
    std::vector<int> delivered;
    for (int i = 0; i < 100; ++i) {
      if (also_drive_other) other.send([] {});
      main.send([&delivered, i] { delivered.push_back(i); });
    }
    sim.run();
    return delivered;
  };
  EXPECT_EQ(pattern(false), pattern(true));
}

}  // namespace
}  // namespace pythia::sim
