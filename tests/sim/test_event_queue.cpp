#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace pythia::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  q.schedule(SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  q.schedule(SimTime::from_seconds(2.0), [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::from_seconds(3.0));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(1.0);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, AdvancesClockOnlyToFiredEvents) {
  EventQueue q;
  q.schedule(SimTime::from_seconds(5.0), [] {});
  EXPECT_EQ(q.now(), SimTime::zero());
  q.run_one();
  EXPECT_EQ(q.now(), SimTime::from_seconds(5.0));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(SimTime::from_seconds(1.0), [&] { ++fired; });
  q.schedule(SimTime::from_seconds(2.0), [&] { ++fired; });
  h.cancel();
  EXPECT_TRUE(h.cancelled());
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.schedule(SimTime::from_seconds(1.0), [] {});
  EXPECT_EQ(q.pending(), 1u);
  h.cancel();
  h.cancel();
  h.cancel();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run_all(), 0u);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto h = q.schedule(SimTime::from_seconds(1.0), [] {});
  q.run_all();
  h.cancel();  // must not corrupt the live counter
  EXPECT_EQ(q.pending(), 0u);
  q.schedule(SimTime::from_seconds(2.0), [] {});
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all(), 1u);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.cancelled());
  h.cancel();  // no crash
}

TEST(EventQueue, ScheduleFromWithinEvent) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(SimTime::from_seconds(1.0), [&] {
    times.push_back(q.now().seconds());
    q.schedule_after(Duration::seconds_i(1),
                     [&] { times.push_back(q.now().seconds()); });
  });
  q.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(EventQueue, RunUntilStopsAndAdvances) {
  EventQueue q;
  int fired = 0;
  q.schedule(SimTime::from_seconds(1.0), [&] { ++fired; });
  q.schedule(SimTime::from_seconds(5.0), [&] { ++fired; });
  EXPECT_EQ(q.run_until(SimTime::from_seconds(3.0)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), SimTime::from_seconds(3.0));
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilWithCancelledHead) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(SimTime::from_seconds(1.0), [&] { ++fired; });
  q.schedule(SimTime::from_seconds(2.0), [&] { ++fired; });
  h.cancel();
  EXPECT_EQ(q.run_until(SimTime::from_seconds(10.0)), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunAllLimit) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::from_seconds(i), [] {});
  }
  EXPECT_EQ(q.run_all(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, CancelChurnBoundsHeap) {
  // The fluid model's recompute loop schedules a completion event and then
  // cancels it moments later, millions of times per run. Lazy cancellation
  // must not let the heap grow without bound: once cancelled entries
  // outnumber live ones the queue compacts. With one live event per
  // iteration the heap must stay within a small constant of the floor.
  EventQueue q;
  EventHandle pending;
  for (int i = 0; i < 100'000; ++i) {
    pending.cancel();
    pending = q.schedule(SimTime::from_seconds(1.0 + 1e-6 * i), [] {});
    EXPECT_LE(q.pending(), 1u);
    ASSERT_LT(q.heap_size(), 200u) << "at iteration " << i;
  }
  // The survivor still fires exactly once, in order, after all that churn.
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CompactionPreservesFiringOrder) {
  // Force several compactions while a mix of live and cancelled events with
  // duplicate timestamps is in flight; survivors must still fire in
  // (time, insertion) order.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 500; ++i) {
    const auto t = SimTime::from_seconds(1.0 + (i % 7));
    q.schedule(t, [&order, i] { order.push_back(i); });
    for (int j = 0; j < 4; ++j) {
      doomed.push_back(q.schedule(t, [] { ADD_FAILURE(); }));
    }
    if (doomed.size() > 300) {
      for (auto& h : doomed) h.cancel();
      doomed.clear();
    }
  }
  for (auto& h : doomed) h.cancel();
  EXPECT_EQ(q.run_all(), 500u);
  // Same timestamp bucket -> FIFO by insertion; across buckets -> by time.
  std::vector<int> expect;
  for (int bucket = 0; bucket < 7; ++bucket) {
    for (int i = bucket; i < 500; i += 7) expect.push_back(i);
  }
  EXPECT_EQ(order, expect);
}

TEST(EventQueue, CountsFired) {
  EventQueue q;
  q.schedule(SimTime::from_seconds(1.0), [] {});
  q.schedule(SimTime::from_seconds(2.0), [] {});
  q.run_all();
  EXPECT_EQ(q.events_fired(), 2u);
}

TEST(Simulation, NamedRngStreamsAreStableAndIndependent) {
  Simulation sim_a(99);
  Simulation sim_b(99);
  // Same seed + same stream name -> identical sequences.
  EXPECT_EQ(sim_a.rng("x")(), sim_b.rng("x")());
  // Different stream names -> different sequences (overwhelmingly likely).
  Simulation sim_c(99);
  EXPECT_NE(sim_c.rng("x")(), sim_c.rng("y")());
}

TEST(Simulation, RunExecutesScheduled) {
  Simulation sim(1);
  int count = 0;
  sim.after(Duration::seconds_i(1), [&] { ++count; });
  sim.at(SimTime::from_seconds(2.0), [&] { ++count; });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), SimTime::from_seconds(2.0));
}

}  // namespace
}  // namespace pythia::sim
