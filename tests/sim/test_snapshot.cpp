// Snapshot format unit tests: codec round-trips, on-disk framing (magic,
// version, checksum), decoder bounds, and divergence reporting. The
// end-to-end capture/restore identity proof lives in
// experiments/test_checkpoint.cpp.
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace pythia::sim {
namespace {

Snapshot make_snapshot() {
  Snapshot snap;
  snap.root_seed = 42;
  snap.config_fingerprint = 0xdeadbeefcafef00dULL;
  snap.cursor_events = 1234;
  snap.cursor_time = util::SimTime{5'000'000'001LL};
  snap.label = "mid-shuffle";
  snap.add_section("sim.queue", {1, 2, 3, 4});
  snap.add_section("fabric", {});
  snap.add_section("fabric.counters", {9, 9});
  snap.add_section("engine", {255, 0, 128});
  return snap;
}

TEST(StateCodec, RoundTripsEveryType) {
  StateEncoder enc;
  enc.put_u8(7);
  enc.put_bool(true);
  enc.put_bool(false);
  enc.put_u32(0xfeedface);
  enc.put_u64(std::numeric_limits<std::uint64_t>::max());
  enc.put_i64(-42);
  enc.put_f64(3.141592653589793);
  enc.put_f64(-0.0);
  enc.put_time(util::SimTime{123456789});
  enc.put_duration(util::Duration{-5});
  enc.put_string("");
  enc.put_string("hello\0world");

  StateDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 7);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_EQ(dec.get_u32(), 0xfeedface);
  EXPECT_EQ(dec.get_u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_EQ(dec.get_f64(), 3.141592653589793);
  const double neg_zero = dec.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, survives
  EXPECT_EQ(dec.get_time(), util::SimTime{123456789});
  EXPECT_EQ(dec.get_duration(), util::Duration{-5});
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_string(), "hello");  // literal truncates at NUL
  EXPECT_TRUE(dec.exhausted());
}

TEST(StateCodec, DecoderThrowsOnUnderrun) {
  StateEncoder enc;
  enc.put_u32(1);
  StateDecoder dec(enc.bytes());
  (void)dec.get_u8();
  EXPECT_THROW((void)dec.get_u32(), SnapshotError);
}

TEST(StateCodec, DecoderThrowsOnTruncatedString) {
  StateEncoder enc;
  enc.put_u32(100);  // claims a 100-byte string with no payload
  StateDecoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_string(), SnapshotError);
}

TEST(Snapshot, SerializeDeserializeRoundTrip) {
  const Snapshot snap = make_snapshot();
  const Snapshot back = Snapshot::deserialize(snap.serialize());
  EXPECT_EQ(back.root_seed, snap.root_seed);
  EXPECT_EQ(back.config_fingerprint, snap.config_fingerprint);
  EXPECT_EQ(back.cursor_events, snap.cursor_events);
  EXPECT_EQ(back.cursor_time, snap.cursor_time);
  EXPECT_EQ(back.label, snap.label);
  ASSERT_EQ(back.sections().size(), snap.sections().size());
  for (std::size_t i = 0; i < back.sections().size(); ++i) {
    EXPECT_EQ(back.sections()[i].name, snap.sections()[i].name);
    EXPECT_EQ(back.sections()[i].bytes, snap.sections()[i].bytes);
  }
  EXPECT_TRUE(Snapshot::describe_divergence(snap, back).empty());
}

TEST(Snapshot, ChecksumCatchesEveryFlippedPayloadByte) {
  const Snapshot snap = make_snapshot();
  const auto bytes = snap.serialize();
  // Flip each byte of the body in turn (skip magic+header framing and the
  // trailing checksum itself — those are caught by the other checks).
  for (std::size_t i = 20; i + 8 < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x01;
    EXPECT_THROW((void)Snapshot::deserialize(corrupt), SnapshotError)
        << "flipped byte " << i;
  }
}

TEST(Snapshot, BadMagicRejected) {
  auto bytes = make_snapshot().serialize();
  bytes[0] = 'X';
  EXPECT_THROW((void)Snapshot::deserialize(bytes), SnapshotError);
}

TEST(Snapshot, UnsupportedVersionRejected) {
  auto bytes = make_snapshot().serialize();
  bytes[8] = 99;  // version u32 starts right after the 8-byte magic
  EXPECT_THROW((void)Snapshot::deserialize(bytes), SnapshotError);
}

TEST(Snapshot, TruncationRejected) {
  auto bytes = make_snapshot().serialize();
  bytes.pop_back();
  EXPECT_THROW((void)Snapshot::deserialize(bytes), SnapshotError);
}

TEST(Snapshot, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.pysnap";
  const Snapshot snap = make_snapshot();
  snap.save(path);
  const Snapshot back = Snapshot::load(path);
  EXPECT_TRUE(Snapshot::describe_divergence(snap, back).empty());
  EXPECT_EQ(back.state_checksum(), snap.state_checksum());
  std::remove(path.c_str());
}

TEST(Snapshot, DescribeDivergenceFindsFirstDifferingByte) {
  const Snapshot a = make_snapshot();
  Snapshot b = make_snapshot();
  auto sections = b.sections();
  Snapshot c;
  c.root_seed = b.root_seed;
  c.config_fingerprint = b.config_fingerprint;
  c.cursor_events = b.cursor_events;
  c.cursor_time = b.cursor_time;
  for (auto s : sections) {
    if (s.name == "engine") s.bytes[1] = 7;
    c.add_section(s.name, s.bytes);
  }
  const std::string diff = Snapshot::describe_divergence(a, c);
  EXPECT_NE(diff.find("engine"), std::string::npos) << diff;
  EXPECT_NE(diff.find("offset 1"), std::string::npos) << diff;
}

TEST(Snapshot, DescribeDivergenceReportsCursorFirst) {
  const Snapshot a = make_snapshot();
  Snapshot b = make_snapshot();
  b.cursor_events += 1;
  const std::string diff = Snapshot::describe_divergence(a, b);
  EXPECT_NE(diff.find("cursor"), std::string::npos) << diff;
}

TEST(Snapshot, ObservabilitySectionsSkippedByBehaviorComparison) {
  EXPECT_TRUE(Snapshot::is_observability_section("fabric.counters"));
  EXPECT_TRUE(Snapshot::is_observability_section("routing.counters"));
  EXPECT_FALSE(Snapshot::is_observability_section("fabric"));
  EXPECT_FALSE(Snapshot::is_observability_section("counters"));

  const Snapshot a = make_snapshot();
  Snapshot b;
  b.root_seed = a.root_seed + 1;           // identity ignored by both
  b.config_fingerprint = 0;                // comparisons (cross-arm use)
  b.cursor_events = a.cursor_events;
  b.cursor_time = a.cursor_time;
  for (auto s : a.sections()) {
    if (s.name == "fabric.counters") s.bytes = {1, 2};  // different work done
    b.add_section(s.name, s.bytes);
  }
  EXPECT_FALSE(Snapshot::describe_divergence(a, b).empty());
  EXPECT_TRUE(Snapshot::describe_behavior_divergence(a, b).empty());
  EXPECT_EQ(a.behavior_checksum(), b.behavior_checksum());
  EXPECT_NE(a.state_checksum(), b.state_checksum());

  Snapshot c;
  c.cursor_events = a.cursor_events;
  c.cursor_time = a.cursor_time;
  for (auto s : a.sections()) {
    if (s.name == "engine") s.bytes[0] = 0;  // behavioral difference
    c.add_section(s.name, s.bytes);
  }
  EXPECT_FALSE(Snapshot::describe_behavior_divergence(a, c).empty());
  EXPECT_NE(a.behavior_checksum(), c.behavior_checksum());
}

}  // namespace
}  // namespace pythia::sim
