// Kitchen-sink integration: every optional feature enabled simultaneously —
// Pythia with criticality + rack wildcards + proportional flow weights,
// speculative execution, straggler and failure injection, HDFS write-back,
// a mid-run link failure with recovery, and a multi-job trace — on one
// shared cluster. Guards against feature-interplay regressions.
#include <gtest/gtest.h>

#include "experiments/metrics.hpp"
#include "experiments/scenario.hpp"
#include "net/netflow.hpp"
#include "workloads/trace.hpp"

namespace pythia::exp {
namespace {

class KitchenSink : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KitchenSink, EverythingOnStillConservesAndCompletes) {
  ScenarioConfig cfg;
  cfg.seed = GetParam();
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  cfg.enable_netflow = true;
  cfg.pythia.weighted_flows = true;
  cfg.pythia.collector.criticality_aware = true;
  cfg.pythia.allocator.aggregation = core::Aggregation::kRackPair;
  cfg.cluster.speculative_execution = true;
  cfg.cluster.straggler_probability = 0.1;
  cfg.cluster.straggler_slowdown = 6.0;
  cfg.cluster.map_failure_probability = 0.1;
  Scenario scenario(cfg);

  // A small trace of heterogeneous jobs with HDFS write-back.
  workloads::TraceConfig trace_cfg;
  trace_cfg.jobs = 4;
  trace_cfg.max_input = util::Bytes{6'000'000'000LL};
  trace_cfg.mean_interarrival = util::Duration::seconds_i(15);
  auto trace = workloads::generate_trace(trace_cfg, cfg.seed);
  for (auto& entry : trace) entry.spec.dfs_replication = 2;

  std::vector<hadoop::JobResult> results(trace.size());
  std::size_t done = 0;
  for (std::size_t j = 0; j < trace.size(); ++j) {
    scenario.simulation().at(trace[j].submit_at, [&, j] {
      scenario.engine().submit(trace[j].spec,
                               [&results, &done, j](
                                   const hadoop::JobResult& r) {
                                 results[j] = r;
                                 ++done;
                               });
    });
  }

  // Kill one inter-rack cable mid-run, restore later.
  const auto& paths = scenario.controller().routing().paths(
      scenario.servers()[0], scenario.servers()[9]);
  const net::LinkId victim = paths[1].links[1];
  scenario.simulation().after(util::Duration::seconds_i(25), [&] {
    scenario.controller().handle_link_failure(victim);
  });
  scenario.simulation().after(util::Duration::seconds_i(60), [&] {
    scenario.controller().handle_link_restore(victim);
  });

  scenario.simulation().run();

  // Every job completed with exact structural accounting.
  ASSERT_EQ(done, trace.size());
  std::int64_t total_shuffle_payload = 0;
  for (std::size_t j = 0; j < results.size(); ++j) {
    const auto& r = results[j];
    EXPECT_EQ(r.maps.size(), trace[j].spec.num_maps()) << r.name;
    EXPECT_EQ(r.reducers.size(), trace[j].spec.num_reducers) << r.name;
    EXPECT_EQ(r.fetches.size(),
              trace[j].spec.num_maps() * trace[j].spec.num_reducers)
        << r.name;
    for (const auto& red : r.reducers) {
      EXPECT_GT(red.finished, red.shuffle_done) << r.name;
    }
    total_shuffle_payload += r.remote_shuffle_bytes().count();
    const auto metrics = compute_shuffle_metrics(r);
    EXPECT_GT(metrics.aggregate_shuffle_goodput_bps, 0.0) << r.name;
  }

  // The network moved at least the shuffle payload (plus HDFS replicas),
  // fully drained, and left no residual rates.
  EXPECT_GT(scenario.fabric().bytes_delivered().count(),
            total_shuffle_payload);
  EXPECT_EQ(scenario.fabric().active_flow_count(), 0u);
  EXPECT_EQ(scenario.simulation().queue().pending(), 0u);
  for (const auto& link : scenario.topology().links()) {
    EXPECT_DOUBLE_EQ(scenario.fabric().link_elastic_rate(link.id).bps(), 0.0);
    EXPECT_TRUE(scenario.fabric().link_up(link.id));
  }

  // NetFlow's shuffle-port accounting matches the fetch records exactly.
  std::int64_t netflow_total = 0;
  for (net::NodeId src : scenario.netflow()->observed_sources()) {
    netflow_total += scenario.netflow()->sourced_bytes(src).count();
  }
  EXPECT_NEAR(static_cast<double>(netflow_total),
              static_cast<double>(total_shuffle_payload),
              static_cast<double>(trace.size()) * 1e5);

  // Control plane saw real activity from every subsystem.
  EXPECT_GT(scenario.controller().rules_installed(), 0u);
  EXPECT_GE(scenario.controller().topology_rebuilds(), 2u);
  EXPECT_GT(scenario.pythia()->collector().intents_received(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KitchenSink, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace pythia::exp
