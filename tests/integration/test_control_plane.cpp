// Lossy control plane, end to end: fault-injected prediction and rule
// channels must degrade Pythia gracefully toward (never below) ECMP.
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

using util::Bytes;
using util::Duration;

constexpr std::int64_t kGB = 1'000'000'000;

ScenarioConfig base_config(SchedulerKind kind, std::uint64_t seed = 11) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.scheduler = kind;
  // Heavy oversubscription: the regime where Pythia's speedup is large and
  // robust across seeds, so losing it to faults is unambiguous in the clock.
  cfg.background.oversubscription = 10.0;
  return cfg;
}

hadoop::JobResult run_sort(ScenarioConfig cfg) {
  Scenario scenario(std::move(cfg));
  return scenario.run_job(workloads::sort_job(Bytes{12 * kGB}, 8));
}

TEST(ControlPlane, ZeroFaultProfileIsByteTransparent) {
  // Applying an all-zero fault profile must not move a single event: the
  // fault layer's zero configuration is indistinguishable from its absence.
  const auto plain = run_sort(base_config(SchedulerKind::kPythia));
  ScenarioConfig faulted = base_config(SchedulerKind::kPythia);
  apply_control_plane_faults(faulted, ControlPlaneFaultProfile{});
  const auto zeroed = run_sort(std::move(faulted));
  EXPECT_EQ(plain.completion_time().ns(), zeroed.completion_time().ns());
}

TEST(ControlPlane, FaultInjectionIsDeterministicUnderSeed) {
  ControlPlaneFaultProfile profile;
  profile.intent_loss = 0.3;
  profile.intent_jitter = Duration::millis(200);
  profile.intent_duplicate = 0.1;
  profile.flow_mod_loss = 0.2;
  profile.install_reject = 0.1;

  const auto run_once = [&] {
    ScenarioConfig cfg = base_config(SchedulerKind::kPythia, 21);
    apply_control_plane_faults(cfg, profile);
    Scenario scenario(std::move(cfg));
    const auto result =
        scenario.run_job(workloads::sort_job(Bytes{12 * kGB}, 8));
    const auto* py = scenario.pythia();
    return std::tuple{result.completion_time().ns(),
                      py->instrumentation().channel().messages_dropped(),
                      scenario.controller().install_retries(),
                      py->watchdog().fallbacks()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ControlPlane, ModerateIntentLossStaysAtOrBelowEcmp) {
  const auto ecmp = run_sort(base_config(SchedulerKind::kEcmp));

  ScenarioConfig cfg = base_config(SchedulerKind::kPythia);
  ControlPlaneFaultProfile profile;
  profile.intent_loss = 0.2;
  apply_control_plane_faults(cfg, profile);
  Scenario scenario(std::move(cfg));
  const auto result =
      scenario.run_job(workloads::sort_job(Bytes{12 * kGB}, 8));

  EXPECT_GT(scenario.pythia()->instrumentation().channel().messages_dropped(),
            0u);
  // 20% prediction loss costs accuracy, never the ECMP floor.
  EXPECT_LE(result.completion_time().seconds(),
            ecmp.completion_time().seconds() * 1.001);
}

TEST(ControlPlane, TotalIntentLossFallsBackToEcmpParity) {
  const auto ecmp = run_sort(base_config(SchedulerKind::kEcmp));

  ScenarioConfig cfg = base_config(SchedulerKind::kPythia);
  ControlPlaneFaultProfile profile;
  profile.intent_loss = 1.0;
  apply_control_plane_faults(cfg, profile);
  Scenario scenario(std::move(cfg));
  const auto result =
      scenario.run_job(workloads::sort_job(Bytes{12 * kGB}, 8));

  // Every prediction lost: the watchdog must have declared the control plane
  // dead and dropped to ECMP...
  EXPECT_GE(scenario.pythia()->watchdog().fallbacks(), 1u);
  EXPECT_FALSE(scenario.pythia()->watchdog().engaged());
  EXPECT_EQ(scenario.controller().rules_installed(), 0u);
  // ...so completion lands within 2% of the ECMP baseline.
  const double ratio = result.completion_time().seconds() /
                       ecmp.completion_time().seconds();
  EXPECT_LE(ratio, 1.02);
  EXPECT_GE(ratio, 0.98);
}

TEST(ControlPlane, InstallFaultsAreRetriedAndJobCompletes) {
  ScenarioConfig cfg = base_config(SchedulerKind::kPythia);
  ControlPlaneFaultProfile profile;
  profile.flow_mod_loss = 0.3;
  profile.install_reject = 0.2;
  apply_control_plane_faults(cfg, profile);
  Scenario scenario(std::move(cfg));
  const auto result =
      scenario.run_job(workloads::sort_job(Bytes{12 * kGB}, 8));

  EXPECT_GT(result.completion_time().seconds(), 0.0);
  EXPECT_GT(scenario.controller().install_retries(), 0u);
  EXPECT_GT(scenario.controller().install_attempts(),
            scenario.controller().rules_installed());
}

TEST(ControlPlane, TinyFlowTablesEvictAndStillComplete) {
  ScenarioConfig cfg = base_config(SchedulerKind::kPythia);
  ControlPlaneFaultProfile profile;
  profile.flow_table_capacity = 2;
  apply_control_plane_faults(cfg, profile);
  Scenario scenario(std::move(cfg));
  const auto result =
      scenario.run_job(workloads::sort_job(Bytes{12 * kGB}, 8));

  EXPECT_GT(result.completion_time().seconds(), 0.0);
  EXPECT_GT(scenario.controller().table_evictions() +
                scenario.controller().table_rejects(),
            0u);
  for (const auto node : scenario.topology().switches()) {
    EXPECT_LE(scenario.controller().table_occupancy(node), 2u);
  }
}

}  // namespace
}  // namespace pythia::exp
