// Golden-trace regression test: the seed scenario's full event trace — flow
// starts/completions, map outputs, reducer starts, fetch lifecycle, rule
// installs, watchdog transitions — serialized and diffed against a
// checked-in golden file. A behavior-preserving refactor (like PR 2's
// incremental rate engine) keeps the trace byte-identical; any engine change
// that shifts an event shows up as a one-line diff here instead of as an
// ad-hoc differential test per subsystem.
//
// Regenerate after an *intentional* behavior change with:
//   PYTHIA_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
// (see docs/testing.md), then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "experiments/scenario.hpp"
#include "experiments/trace.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "util/random.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

constexpr const char* kGoldenRelPath = "/integration/golden/seed_trace.txt";
constexpr const char* kHierGoldenRelPath =
    "/integration/golden/hier_fabric_k8_trace.txt";

std::string golden_path() { return std::string(PYTHIA_TEST_DIR) + kGoldenRelPath; }

/// The pinned seed scenario: quickstart shape (2-rack, 1:10 background,
/// Pythia scheduler) with a small sort so the trace stays reviewable.
std::string record_seed_trace() {
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  Scenario scenario(cfg);
  EventTraceRecorder recorder(scenario);
  scenario.run_job(
      workloads::sort_job(util::Bytes{2LL * 1000 * 1000 * 1000}, 4));
  return recorder.text();
}

/// Shared golden-file protocol: regenerate under PYTHIA_REGEN_GOLDEN=1
/// (skipping the test so the diff gets reviewed), otherwise diff against the
/// checked-in file and pinpoint the first diverging line.
void check_against_golden(const std::string& trace, const std::string& path) {
  ASSERT_FALSE(trace.empty());
  const char* regen = std::getenv("PYTHIA_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0' && std::string(regen) != "0") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << trace;
    GTEST_SKIP() << "golden trace regenerated at " << path
                 << " — review the diff before committing";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path
                            << " — regenerate with PYTHIA_REGEN_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (trace == golden) {
    SUCCEED();
    return;
  }
  // Pinpoint the first diverging line for a readable failure.
  std::istringstream got(trace);
  std::istringstream want(golden);
  std::string got_line;
  std::string want_line;
  std::size_t line_no = 0;
  while (true) {
    const bool has_got = static_cast<bool>(std::getline(got, got_line));
    const bool has_want = static_cast<bool>(std::getline(want, want_line));
    ++line_no;
    if (!has_got && !has_want) break;
    ASSERT_EQ(has_want, has_got) << "trace length diverges at line "
                                 << line_no;
    ASSERT_EQ(want_line, got_line) << "trace diverges at line " << line_no;
  }
  FAIL() << "traces differ but no diverging line found (line endings?)";
}

TEST(GoldenTrace, SeedScenarioMatchesGoldenFile) {
  check_against_golden(record_seed_trace(), golden_path());
}

TEST(GoldenTrace, TraceIsDeterministicAcrossRuns) {
  EXPECT_EQ(record_seed_trace(), record_seed_trace());
}

/// Builds one up/down fat-tree path src→dst without running Yen: host up to
/// its edge, across an aggregation (and, cross-pod, core) switch, back down.
/// Mirrors the construction the scaling bench uses, so the golden scenario
/// exercises the same cross-pod core coupling the bench times.
std::vector<net::LinkId> fat_tree_path(const net::Topology& topo,
                                       net::NodeId src, net::NodeId dst,
                                       util::Xoshiro256& rng) {
  const auto edge_of = [&](net::NodeId host) {
    return topo.link(topo.out_links(host)[0]).dst;
  };
  const auto neighbors = [&](net::NodeId sw, const char* prefix) {
    std::vector<net::NodeId> out;
    for (net::LinkId l : topo.out_links(sw)) {
      const auto& n = topo.node(topo.link(l).dst);
      if (n.kind == net::NodeKind::kSwitch && n.name.starts_with(prefix)) {
        out.push_back(n.id);
      }
    }
    return out;
  };
  const net::NodeId e1 = edge_of(src);
  const net::NodeId e2 = edge_of(dst);
  std::vector<net::LinkId> path{*topo.find_link(src, e1)};
  if (e1 == e2) {
    path.push_back(*topo.find_link(e1, dst));
    return path;
  }
  const auto aggs = neighbors(e1, "agg-");
  const std::size_t pick = rng.below(aggs.size());
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const net::NodeId agg = aggs[(pick + i) % aggs.size()];
    if (const auto down = topo.find_link(agg, e2)) {
      path.push_back(*topo.find_link(e1, agg));
      path.push_back(*down);
      path.push_back(*topo.find_link(e2, dst));
      return path;
    }
  }
  const net::NodeId agg1 = aggs[pick];
  const auto cores = neighbors(agg1, "core-");
  const net::NodeId core = cores[rng.below(cores.size())];
  for (net::LinkId l : topo.out_links(core)) {
    const net::NodeId agg2 = topo.link(l).dst;
    if (agg2 == agg1) continue;
    if (const auto down = topo.find_link(agg2, e2)) {
      path.push_back(*topo.find_link(e1, agg1));
      path.push_back(*topo.find_link(agg1, core));
      path.push_back(l);
      path.push_back(*down);
      path.push_back(*topo.find_link(e2, dst));
      return path;
    }
  }
  ADD_FAILURE() << "no fat-tree path";
  return path;
}

/// The pinned hierarchical-engine scenario: fat-tree k=8, kHierarchical with
/// cohort coalescing, a steady backdrop plus three shuffle waves of
/// simultaneous arrivals. Every start, completion, and the final settled
/// state image go into the trace, so an engine change that moves any event
/// time — or any allocation bit — shows up as an explicit golden diff.
std::string record_hier_fabric_trace() {
  net::FatTreeConfig topo_cfg;
  topo_cfg.k = 8;
  const net::Topology topo = net::make_fat_tree(topo_cfg);
  sim::Simulation sim(1234);
  net::Fabric fabric(sim, topo,
                     net::FabricConfig{
                         .rate_engine = net::RateEngine::kHierarchical,
                         .coalesce_cohorts = true,
                     });
  util::Xoshiro256 rng(1234);
  const auto hosts = topo.hosts();

  std::ostringstream trace;
  trace << "hier_fabric_k8 seed=1234 engine=hierarchical coalesced=1\n";
  auto on_done = [&trace](net::FlowId id, util::SimTime t) {
    trace << "done t=" << t.ns() << " flow=" << id.value() << "\n";
  };
  auto start_one = [&](std::int64_t bytes) {
    const net::NodeId src = hosts[rng.below(hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    net::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = util::Bytes{bytes};
    spec.path = fat_tree_path(topo, src, dst, rng);
    const net::FlowId id = fabric.start_flow(spec, on_done);
    trace << "start t=" << sim.now().ns() << " flow=" << id.value() << " src="
          << src.value() << " dst=" << dst.value() << " bytes=" << bytes
          << "\n";
  };

  // Backdrop: 16 medium flows at t=0 (one cohort), then three waves of 8
  // simultaneous shuffle arrivals 10 ms apart.
  for (int i = 0; i < 16; ++i) {
    start_one(20'000'000 + static_cast<std::int64_t>(rng.below(30'000'000)));
  }
  for (int wave = 1; wave <= 3; ++wave) {
    sim.at(util::SimTime{wave * 10'000'000LL}, [&, wave] {
      for (int i = 0; i < 8; ++i) {
        start_one(5'000'000 +
                  static_cast<std::int64_t>(rng.below(10'000'000)));
      }
    });
  }
  while (sim.queue().run_one()) {
  }

  fabric.flush_coalesced();
  sim::StateEncoder enc;
  fabric.encode_state(enc);
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : enc.bytes()) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  trace << "end t=" << sim.now().ns() << " completed="
        << fabric.flows_completed() << " state_fnv=" << std::hex << h
        << std::dec << "\n";
  return trace.str();
}

TEST(GoldenTrace, HierFabricK8MatchesGoldenFile) {
  check_against_golden(record_hier_fabric_trace(),
                       std::string(PYTHIA_TEST_DIR) + kHierGoldenRelPath);
}

TEST(GoldenTrace, HierFabricTraceIsDeterministicAcrossRuns) {
  EXPECT_EQ(record_hier_fabric_trace(), record_hier_fabric_trace());
}

}  // namespace
}  // namespace pythia::exp
