// Golden-trace regression test: the seed scenario's full event trace — flow
// starts/completions, map outputs, reducer starts, fetch lifecycle, rule
// installs, watchdog transitions — serialized and diffed against a
// checked-in golden file. A behavior-preserving refactor (like PR 2's
// incremental rate engine) keeps the trace byte-identical; any engine change
// that shifts an event shows up as a one-line diff here instead of as an
// ad-hoc differential test per subsystem.
//
// Regenerate after an *intentional* behavior change with:
//   PYTHIA_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
// (see docs/testing.md), then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "experiments/scenario.hpp"
#include "experiments/trace.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

constexpr const char* kGoldenRelPath = "/integration/golden/seed_trace.txt";

std::string golden_path() { return std::string(PYTHIA_TEST_DIR) + kGoldenRelPath; }

/// The pinned seed scenario: quickstart shape (2-rack, 1:10 background,
/// Pythia scheduler) with a small sort so the trace stays reviewable.
std::string record_seed_trace() {
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  Scenario scenario(cfg);
  EventTraceRecorder recorder(scenario);
  scenario.run_job(
      workloads::sort_job(util::Bytes{2LL * 1000 * 1000 * 1000}, 4));
  return recorder.text();
}

TEST(GoldenTrace, SeedScenarioMatchesGoldenFile) {
  const std::string trace = record_seed_trace();
  ASSERT_FALSE(trace.empty());

  const char* regen = std::getenv("PYTHIA_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0' && std::string(regen) != "0") {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path();
    out << trace;
    GTEST_SKIP() << "golden trace regenerated at " << golden_path()
                 << " — review the diff before committing";
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << golden_path()
      << " — regenerate with PYTHIA_REGEN_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (trace == golden) {
    SUCCEED();
    return;
  }
  // Pinpoint the first diverging line for a readable failure.
  std::istringstream got(trace);
  std::istringstream want(golden);
  std::string got_line;
  std::string want_line;
  std::size_t line_no = 0;
  while (true) {
    const bool has_got = static_cast<bool>(std::getline(got, got_line));
    const bool has_want = static_cast<bool>(std::getline(want, want_line));
    ++line_no;
    if (!has_got && !has_want) break;
    ASSERT_EQ(has_want, has_got) << "trace length diverges at line "
                                 << line_no;
    ASSERT_EQ(want_line, got_line) << "trace diverges at line " << line_no;
  }
  FAIL() << "traces differ but no diverging line found (line endings?)";
}

TEST(GoldenTrace, TraceIsDeterministicAcrossRuns) {
  EXPECT_EQ(record_seed_trace(), record_seed_trace());
}

}  // namespace
}  // namespace pythia::exp
