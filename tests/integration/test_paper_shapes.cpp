// Integration tests asserting the *shapes* of the paper's headline results
// at reduced scale (full-scale reproductions live in bench/).
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "net/netflow.hpp"
#include "workloads/hibench.hpp"

namespace pythia::exp {
namespace {

using util::Bytes;

hadoop::JobSpec scaled_sort() {
  return workloads::sort_job(Bytes{12'000'000'000LL}, 8);
}

TEST(PaperShapes, PythiaBeatsEcmpUnderOversubscription) {
  SweepConfig sweep;
  sweep.seeds = {1, 2};
  const auto rows = run_oversubscription_sweep(
      sweep, scaled_sort(), {{"1:5", 5.0}, {"1:20", 20.0}});
  for (const auto& row : rows) {
    EXPECT_GT(row.speedup(), 0.0) << row.label;
  }
}

TEST(PaperShapes, SpeedupGrowsWithOversubscription) {
  // Fig. 3/4: the maximum speedup is at the highest oversubscription ratio.
  SweepConfig sweep;
  sweep.seeds = {1, 2};
  const auto rows = run_oversubscription_sweep(
      sweep, scaled_sort(),
      {{"none", 1.0}, {"1:5", 5.0}, {"1:20", 20.0}});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LT(rows[0].speedup(), rows[2].speedup());
  EXPECT_LT(rows[1].speedup(), rows[2].speedup());
  // Without background there is barely anything to win.
  EXPECT_LT(rows[0].speedup(), 0.15);
}

TEST(PaperShapes, PythiaStaysNearCleanNetworkTime) {
  // Fig. 3's observation: Pythia's completion time barely grows with the
  // ratio (it keeps finding the lightly loaded path).
  SweepConfig sweep;
  sweep.seeds = {1, 2};
  const auto rows = run_oversubscription_sweep(
      sweep, scaled_sort(), {{"none", 1.0}, {"1:20", 20.0}});
  const double clean = rows[0].treatment_mean_s;
  const double loaded = rows[1].treatment_mean_s;
  EXPECT_LT(loaded, clean * 1.35);
  // ECMP, in contrast, degrades substantially.
  EXPECT_GT(rows[1].baseline_mean_s, clean * 1.35);
}

TEST(PaperShapes, SchedulerLadderOrdering) {
  // ECMP is worst; Hedera (reactive, load-aware) sits in between; Pythia and
  // the static oracle are best. We assert the coarse ordering only.
  ScenarioConfig base;
  base.background.oversubscription = 10.0;
  const auto rows = run_scheduler_ladder(
      base, scaled_sort(),
      {SchedulerKind::kEcmp, SchedulerKind::kHedera, SchedulerKind::kPythia},
      {1, 2});
  ASSERT_EQ(rows.size(), 3u);
  const double ecmp = rows[0].mean_s;
  const double hedera = rows[1].mean_s;
  const double pythia = rows[2].mean_s;
  EXPECT_LT(pythia, ecmp);
  EXPECT_LT(hedera, ecmp * 1.02);  // at least roughly no worse than ECMP
  EXPECT_LT(pythia, hedera * 1.02);
}

TEST(PaperShapes, PredictionTimelinessAndAccuracy) {
  // Fig. 5 shape: prediction leads the wire by seconds and over-estimates
  // total volume by a one-digit percentage.
  ScenarioConfig cfg;
  cfg.seed = 4;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 5.0;
  cfg.enable_netflow = true;
  Scenario scenario(cfg);
  scenario.run_job(scaled_sort());

  int leads_measured = 0;
  for (net::NodeId server : scenario.netflow()->observed_sources()) {
    const auto& predicted =
        scenario.pythia()->collector().predicted_curve(server);
    const auto& measured = scenario.netflow()->curve(server);
    if (predicted.empty() || measured.empty()) continue;

    std::vector<net::VolumePoint> pred;
    pred.reserve(predicted.size());
    for (const auto& p : predicted) {
      pred.push_back(net::VolumePoint{p.at, p.cumulative});
    }
    const double half = measured.back().cumulative.as_double() * 0.5;
    const auto t_pred = net::curve_time_to_reach(pred, half);
    const auto t_meas = net::curve_time_to_reach(measured, half);
    ASSERT_NE(t_pred, util::SimTime::max());
    ASSERT_NE(t_meas, util::SimTime::max());
    EXPECT_GT((t_meas - t_pred).seconds(), 1.0) << "server "
                                                << server.value();

    const double over = pred.back().cumulative.as_double() /
                        measured.back().cumulative.as_double();
    EXPECT_GT(over, 1.0);
    EXPECT_LT(over, 1.10);
    ++leads_measured;
  }
  EXPECT_GE(leads_measured, 5);
}

TEST(PaperShapes, ControlOverheadIsModest) {
  // §V-C: the rule-install budget (3-5 ms/flow) is tiny next to the
  // prediction lead; intent traffic is kilobytes, not data-scale.
  ScenarioConfig cfg;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  Scenario scenario(cfg);
  const auto result = scenario.run_job(scaled_sort());

  const auto& pythia = *scenario.pythia();
  const double control_bytes =
      pythia.instrumentation().control_bytes_sent().as_double();
  const double data_bytes = result.total_shuffle_bytes().as_double();
  EXPECT_LT(control_bytes / data_bytes, 1e-4);
  EXPECT_GT(scenario.controller().rules_installed(), 0u);
  // Rules are a per-server-pair quantity, not a per-flow quantity.
  EXPECT_LE(scenario.controller().rules_installed(),
            10u * 9u * 2u);
}

}  // namespace
}  // namespace pythia::exp
