// Property tests for k-shortest-path routing: cross-checked against
// brute-force enumeration of all loop-free paths on randomized graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "net/routing.hpp"
#include "util/random.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;

/// Random connected-ish graph: `hosts` hosts, `switches` switches, each host
/// wired to one switch, plus `extra_edges` random switch-switch cables.
Topology random_topology(util::Xoshiro256& rng, std::size_t hosts,
                         std::size_t switches, std::size_t extra_edges) {
  Topology topo;
  std::vector<NodeId> sw;
  sw.reserve(switches);
  for (std::size_t i = 0; i < switches; ++i) {
    sw.push_back(topo.add_switch("s" + std::to_string(i)));
  }
  // Switch ring so the graph is connected.
  for (std::size_t i = 0; i + 1 < switches; ++i) {
    topo.add_duplex(sw[i], sw[i + 1], BitsPerSec{1e9});
  }
  for (std::size_t i = 0; i < hosts; ++i) {
    const NodeId h = topo.add_host("h" + std::to_string(i),
                                   static_cast<int>(i % 2));
    topo.add_duplex(h, sw[rng.below(switches)], BitsPerSec{1e9});
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    const NodeId a = sw[rng.below(switches)];
    const NodeId b = sw[rng.below(switches)];
    if (a != b) topo.add_duplex(a, b, BitsPerSec{1e9});
  }
  return topo;
}

/// All loop-free (node-simple) link paths from src to dst, by DFS.
std::vector<Path> enumerate_paths(const Topology& topo, NodeId src,
                                  NodeId dst, std::size_t max_hops = 10) {
  std::vector<Path> out;
  std::vector<LinkId> stack;
  std::set<NodeId> visited{src};
  std::function<void(NodeId)> dfs = [&](NodeId at) {
    if (stack.size() > max_hops) return;
    if (at == dst) {
      out.push_back(Path{stack});
      return;
    }
    for (LinkId l : topo.out_links(at)) {
      const NodeId next = topo.link(l).dst;
      if (visited.contains(next)) continue;
      visited.insert(next);
      stack.push_back(l);
      dfs(next);
      stack.pop_back();
      visited.erase(next);
    }
  };
  dfs(src);
  return out;
}

class RoutingVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingVsBruteForce, KShortestMatchesEnumeration) {
  util::Xoshiro256 rng(GetParam());
  const Topology topo = random_topology(rng, 4, 5, 3);
  const auto hosts = topo.hosts();

  for (NodeId src : hosts) {
    for (NodeId dst : hosts) {
      if (src == dst) continue;
      auto all = enumerate_paths(topo, src, dst);
      std::sort(all.begin(), all.end(), [](const Path& a, const Path& b) {
        return a.hops() < b.hops();
      });
      for (const std::size_t k : {1UL, 2UL, 4UL, 16UL}) {
        const auto got = k_shortest_paths(topo, src, dst, k);
        // Cardinality: min(k, #loop-free paths).
        ASSERT_EQ(got.size(), std::min(k, all.size()))
            << src.value() << "->" << dst.value() << " k=" << k;
        std::set<std::vector<LinkId>> seen;
        for (std::size_t i = 0; i < got.size(); ++i) {
          // Valid, loop-free, distinct.
          EXPECT_TRUE(topo.validate_path(src, dst, got[i].links));
          EXPECT_TRUE(seen.insert(got[i].links).second);
          // Appears in the brute-force enumeration.
          EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                                  [&](const Path& p) {
                                    return p.links == got[i].links;
                                  }));
          // Nondecreasing lengths, and the i-th matches the i-th shortest
          // possible length.
          EXPECT_EQ(got[i].hops(), all[i].hops());
          if (i > 0) {
            EXPECT_GE(got[i].hops(), got[i - 1].hops());
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 25));

/// Small-world variant: <= 8 nodes but denser wiring, where Yen's spur
/// bookkeeping (shared banned scratch set, hashed dedup) sees the most
/// duplicate candidates per spur.
class DenseSmallGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DenseSmallGraphs, KShortestMatchesEnumeration) {
  util::Xoshiro256 rng(GetParam());
  // 3 hosts + 5 switches = 8 nodes; ring + 6 chords approaches a clique.
  const Topology topo = random_topology(rng, 3, 5, 6);
  const auto hosts = topo.hosts();

  for (NodeId src : hosts) {
    for (NodeId dst : hosts) {
      if (src == dst) continue;
      auto all = enumerate_paths(topo, src, dst);
      std::sort(all.begin(), all.end(), [](const Path& a, const Path& b) {
        return a.hops() < b.hops();
      });
      for (const std::size_t k : {1UL, 3UL, 8UL, 64UL}) {
        const auto got = k_shortest_paths(topo, src, dst, k);
        ASSERT_EQ(got.size(), std::min(k, all.size()))
            << src.value() << "->" << dst.value() << " k=" << k;
        std::set<std::vector<LinkId>> seen;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(topo.validate_path(src, dst, got[i].links));
          EXPECT_TRUE(seen.insert(got[i].links).second);
          EXPECT_EQ(got[i].hops(), all[i].hops());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseSmallGraphs,
                         ::testing::Range<std::uint64_t>(100, 116));

TEST(RoutingDeterminism, IdenticalAcrossRuns) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Xoshiro256 rng_a(seed);
    util::Xoshiro256 rng_b(seed);
    const Topology ta = random_topology(rng_a, 4, 5, 3);
    const Topology tb = random_topology(rng_b, 4, 5, 3);
    const auto hosts = ta.hosts();
    for (NodeId src : hosts) {
      for (NodeId dst : hosts) {
        if (src == dst) continue;
        const auto pa = k_shortest_paths(ta, src, dst, 8);
        const auto pb = k_shortest_paths(tb, src, dst, 8);
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t i = 0; i < pa.size(); ++i) {
          EXPECT_EQ(pa[i].links, pb[i].links);
        }
      }
    }
  }
}

}  // namespace
}  // namespace pythia::net
