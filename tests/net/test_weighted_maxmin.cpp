// Weighted max-min fairness in the fluid fabric.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::SimTime;

constexpr std::int64_t kGB = 1'000'000'000;

struct Chain {
  Topology topo;
  NodeId h0, h1;
  Path forward;

  explicit Chain(double cap_bps = 8e9) {
    h0 = topo.add_host("h0", 0);
    h1 = topo.add_host("h1", 1);
    const NodeId sw = topo.add_switch("sw");
    topo.add_duplex(h0, sw, BitsPerSec{cap_bps});
    topo.add_duplex(sw, h1, BitsPerSec{cap_bps});
    forward = *shortest_path(topo, h0, h1);
  }

  FlowSpec flow(std::int64_t bytes, double weight, std::uint16_t port) {
    FlowSpec spec;
    spec.src = h0;
    spec.dst = h1;
    spec.size = Bytes{bytes};
    spec.path = forward.links;
    spec.tuple = FiveTuple{1, 2, kShufflePort, port, 6};
    spec.weight = weight;
    return spec;
  }
};

TEST(WeightedMaxMin, RatesProportionalToWeights) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  const FlowId heavy = fabric.start_flow(c.flow(100 * kGB, 3.0, 1));
  const FlowId light = fabric.start_flow(c.flow(100 * kGB, 1.0, 2));
  // 8 Gbps split 3:1.
  EXPECT_NEAR(fabric.flow(heavy).rate.bps(), 6e9, 1.0);
  EXPECT_NEAR(fabric.flow(light).rate.bps(), 2e9, 1.0);
}

TEST(WeightedMaxMin, UnitWeightsAreClassicMaxMin) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  const FlowId a = fabric.start_flow(c.flow(100 * kGB, 1.0, 1));
  const FlowId b = fabric.start_flow(c.flow(100 * kGB, 1.0, 2));
  EXPECT_NEAR(fabric.flow(a).rate.bps(), 4e9, 1.0);
  EXPECT_NEAR(fabric.flow(b).rate.bps(), 4e9, 1.0);
}

TEST(WeightedMaxMin, CompletionTimesScaleWithWeights) {
  // Equal-size flows, 4:1 weights: the heavy one finishes first; after it
  // drains, the light one gets the full link.
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  double heavy_done = 0.0;
  double light_done = 0.0;
  fabric.start_flow(c.flow(4 * kGB, 4.0, 1),
                    [&](FlowId, SimTime at) { heavy_done = at.seconds(); });
  fabric.start_flow(c.flow(4 * kGB, 1.0, 2),
                    [&](FlowId, SimTime at) { light_done = at.seconds(); });
  sim.run();
  // Heavy: 4 GB at 0.8 GB/s = 5 s. Light: 1 GB moved by then (0.2 GB/s),
  // remaining 3 GB at 1 GB/s -> 8 s total.
  EXPECT_NEAR(heavy_done, 5.0, 1e-6);
  EXPECT_NEAR(light_done, 8.0, 1e-6);
}

TEST(WeightedMaxMin, SetWeightMidFlight) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  const FlowId a = fabric.start_flow(c.flow(100 * kGB, 1.0, 1));
  const FlowId b = fabric.start_flow(c.flow(100 * kGB, 1.0, 2));
  EXPECT_NEAR(fabric.flow(a).rate.bps(), 4e9, 1.0);

  fabric.set_flow_weight(a, 7.0);
  EXPECT_NEAR(fabric.flow(a).rate.bps(), 7e9, 1.0);
  EXPECT_NEAR(fabric.flow(b).rate.bps(), 1e9, 1.0);

  // Resetting to equal weights restores the even split.
  fabric.set_flow_weight(a, 1.0);
  EXPECT_NEAR(fabric.flow(a).rate.bps(), 4e9, 1.0);
  EXPECT_NEAR(fabric.flow(b).rate.bps(), 4e9, 1.0);
}

TEST(WeightedMaxMin, WeightsInteractWithCbr) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  fabric.start_cbr(c.forward.links, BitsPerSec{4e9});  // residual 4 Gbps
  const FlowId heavy = fabric.start_flow(c.flow(100 * kGB, 3.0, 1));
  const FlowId light = fabric.start_flow(c.flow(100 * kGB, 1.0, 2));
  EXPECT_NEAR(fabric.flow(heavy).rate.bps(), 3e9, 1.0);
  EXPECT_NEAR(fabric.flow(light).rate.bps(), 1e9, 1.0);
}

TEST(WeightedMaxMin, MultiBottleneckWeighted) {
  // link1 (8 Gbps): A(w=2), B(w=1). link2 (3 Gbps): A(w=2), C(w=1).
  Topology topo;
  const NodeId n0 = topo.add_host("n0", 0);
  const NodeId n1 = topo.add_switch("n1");
  const NodeId n2 = topo.add_switch("n2");
  const NodeId n3 = topo.add_host("n3", 1);
  const LinkId l1 = topo.add_link(n0, n1, BitsPerSec{8e9});
  const LinkId l12 = topo.add_link(n1, n2, BitsPerSec{100e9});
  const LinkId l2 = topo.add_link(n2, n3, BitsPerSec{3e9});
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  auto start = [&](std::vector<LinkId> path, double w, std::uint16_t port) {
    FlowSpec spec;
    spec.src = topo.link(path.front()).src;
    spec.dst = topo.link(path.back()).dst;
    spec.size = Bytes{100 * kGB};
    spec.path = std::move(path);
    spec.tuple = FiveTuple{1, 2, port, port, 6};
    spec.weight = w;
    return fabric.start_flow(spec);
  };
  const FlowId a = start({l1, l12, l2}, 2.0, 1);
  const FlowId b = start({l1, l12}, 1.0, 2);
  const FlowId cfl = start({l2}, 1.0, 3);
  // link2 fair share = 3/(2+1) = 1 Gbps/weight: A=2, C=1 Gbps; then B gets
  // link1's residual 8-2 = 6 Gbps.
  EXPECT_NEAR(fabric.flow(a).rate.bps(), 2e9, 1.0);
  EXPECT_NEAR(fabric.flow(cfl).rate.bps(), 1e9, 1.0);
  EXPECT_NEAR(fabric.flow(b).rate.bps(), 6e9, 1.0);
}

TEST(WeightedMaxMin, ConservationUnchanged) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  for (int i = 0; i < 6; ++i) {
    fabric.start_flow(
        c.flow(kGB, 0.5 + i, static_cast<std::uint16_t>(100 + i)));
  }
  sim.run();
  EXPECT_EQ(fabric.flows_completed(), 6u);
  EXPECT_EQ(fabric.bytes_delivered().count(), 6 * kGB);
}

}  // namespace
}  // namespace pythia::net
