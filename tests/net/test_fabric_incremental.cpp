// Differential validation of the incremental rate engine: every scenario is
// replayed on two fabrics — RateEngine::kIncremental vs kFullRecompute — and
// the observable outcomes (flow completion instants, sampled rates, delivered
// bytes) must match bit-for-bit. Both engines share the progressive-fill
// arithmetic and canonical orderings, so any divergence is a bug in the
// dirty-set component tracking.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "experiments/scenario.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"
#include "workloads/hibench.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::Duration;
using util::SimTime;

/// (sequence number, completion instant) — flow ids are recycled, so the
/// start sequence is the stable identity.
using CompletionLog = std::vector<std::pair<int, std::int64_t>>;

/// Runs a seeded churn scenario — staggered randomized flow starts, a CBR
/// pulse, a link failure/restore, mid-flight reroutes and weight changes —
/// and returns the completion log.
CompletionLog run_churn(RateEngine engine, std::uint64_t seed) {
  LeafSpineConfig cfg;
  cfg.racks = 3;
  cfg.servers_per_rack = 4;
  cfg.spines = 3;
  const Topology topo = make_leaf_spine(cfg);
  const RoutingGraph routing(topo, cfg.spines);

  sim::Simulation sim(seed);
  Fabric fabric(sim, topo, FabricConfig{engine});
  util::Xoshiro256 rng(seed);
  const auto hosts = topo.hosts();

  CompletionLog log;

  // A handful of long-lived flows that survive to the reroute/weight events.
  std::vector<FlowId> pinned;
  for (int i = 0; i < 4; ++i) {
    const NodeId src = hosts[i];
    const NodeId dst = hosts[hosts.size() - 1 - i];
    const auto& paths = routing.paths(src, dst);
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{4'000'000'000};
    spec.path = paths[0].links;
    spec.weight = 1.0 + i;
    const int tag = 1000 + i;
    pinned.push_back(fabric.start_flow(spec, [&log, tag](FlowId, SimTime t) {
      log.emplace_back(tag, t.ns());
    }));
  }

  // Randomized short flows over the first two simulated seconds.
  constexpr int kFlows = 60;
  for (int i = 0; i < kFlows; ++i) {
    const auto at =
        SimTime{static_cast<std::int64_t>(rng.below(2'000'000'000))};
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    const auto path = paths[rng.below(paths.size())].links;
    const auto size =
        static_cast<std::int64_t>(1'000'000 + rng.below(400'000'000));
    const double weight = rng.uniform(0.5, 3.0);
    sim.at(at, [&fabric, &log, i, src, dst, path, size, weight] {
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{size};
      spec.path = path;
      spec.weight = weight;
      fabric.start_flow(spec, [&log, i](FlowId, SimTime t) {
        log.emplace_back(i, t.ns());
      });
    });
  }

  // CBR pulse on a cross-rack path.
  const auto& cbr_paths = routing.paths(hosts[0], hosts[8]);
  sim.at(SimTime::from_seconds(0.3), [&fabric, &cbr_paths] {
    const CbrId id = fabric.start_cbr(cbr_paths[0].links, BitsPerSec{6e9});
    fabric.simulation().at(SimTime::from_seconds(1.2),
                           [&fabric, id] { fabric.stop_cbr(id); });
  });

  // Fail + restore one spine uplink.
  const LinkId victim = cbr_paths[1].links[1];
  sim.at(SimTime::from_seconds(0.5), [&fabric, victim] {
    fabric.fail_link(victim);
  });
  sim.at(SimTime::from_seconds(0.9), [&fabric, victim] {
    fabric.restore_link(victim);
  });

  // Reroute and reweight the pinned flows mid-flight.
  sim.at(SimTime::from_seconds(0.7), [&fabric, &routing, pinned] {
    for (FlowId f : pinned) {
      if (!fabric.flow_active(f)) continue;
      const auto& spec = fabric.flow(f).spec;
      const auto& alts = routing.paths(spec.src, spec.dst);
      fabric.reroute_flow(f, alts[alts.size() - 1].links);
    }
  });
  sim.at(SimTime::from_seconds(1.1), [&fabric, pinned] {
    for (FlowId f : pinned) {
      if (fabric.flow_active(f)) fabric.set_flow_weight(f, 2.5);
    }
  });

  sim.run();
  return log;
}

class IncrementalDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalDifferential, ChurnCompletionsBitIdentical) {
  const std::uint64_t seed = GetParam();
  const CompletionLog incremental = run_churn(RateEngine::kIncremental, seed);
  const CompletionLog full = run_churn(RateEngine::kFullRecompute, seed);
  ASSERT_EQ(incremental.size(), full.size());
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    EXPECT_EQ(incremental[i].first, full[i].first) << "completion order @" << i;
    EXPECT_EQ(incremental[i].second, full[i].second)
        << "completion time of flow " << incremental[i].first;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferential,
                         ::testing::Values(1u, 2u, 7u, 42u, 1234u));

TEST(IncrementalDifferential, RatesBitIdenticalUnderSnapshots) {
  // Freeze both fabrics mid-churn at several instants and compare every
  // active flow's rate bitwise.
  for (const double at_s : {0.4, 0.8, 1.15}) {
    LeafSpineConfig cfg;
    cfg.racks = 2;
    cfg.servers_per_rack = 5;
    cfg.spines = 4;
    const Topology topo = make_leaf_spine(cfg);
    const RoutingGraph routing(topo, cfg.spines);
    auto build = [&](sim::Simulation& sim, Fabric& fabric) {
      util::Xoshiro256 rng(99);
      const auto hosts = topo.hosts();
      for (int i = 0; i < 40; ++i) {
        const NodeId src = hosts[rng.below(hosts.size())];
        NodeId dst = src;
        while (dst == src) dst = hosts[rng.below(hosts.size())];
        const auto& paths = routing.paths(src, dst);
        FlowSpec spec;
        spec.src = src;
        spec.dst = dst;
        spec.size = Bytes{static_cast<std::int64_t>(
            5'000'000 + rng.below(900'000'000))};
        spec.path = paths[rng.below(paths.size())].links;
        spec.weight = rng.uniform(0.5, 4.0);
        sim.at(SimTime{static_cast<std::int64_t>(rng.below(1'000'000'000))},
               [&fabric, spec] { fabric.start_flow(spec); });
      }
      sim.run_until(SimTime::from_seconds(at_s));
    };
    sim::Simulation sim_a;
    Fabric inc(sim_a, topo, FabricConfig{RateEngine::kIncremental});
    build(sim_a, inc);
    sim::Simulation sim_b;
    Fabric full(sim_b, topo, FabricConfig{RateEngine::kFullRecompute});
    build(sim_b, full);

    const auto active_a = inc.active_flows();
    const auto active_b = full.active_flows();
    ASSERT_EQ(active_a.size(), active_b.size());
    for (std::size_t i = 0; i < active_a.size(); ++i) {
      const auto& fa = inc.flow(active_a[i]);
      const auto& fb = full.flow(active_b[i]);
      EXPECT_TRUE(fa.rate == fb.rate)  // bitwise, not approximate
          << "flow " << i << " at t=" << at_s << ": " << fa.rate.bps()
          << " vs " << fb.rate.bps();
      EXPECT_EQ(fa.remaining_bytes, fb.remaining_bytes);
    }
  }
}

TEST(IncrementalDifferential, QuickstartSurfaceIdentical) {
  // The quickstart's scenario shape (two-rack, oversubscribed, sort job)
  // must complete at the exact same instant under both engines.
  auto run = [](RateEngine engine) {
    exp::ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.scheduler = exp::SchedulerKind::kEcmp;
    cfg.background.oversubscription = 10.0;
    cfg.rate_engine = engine;
    exp::Scenario scenario(cfg);
    const auto result =
        scenario.run_job(workloads::sort_job(Bytes{2'000'000'000}, 4));
    return result.completion_time().ns();
  };
  EXPECT_EQ(run(RateEngine::kIncremental), run(RateEngine::kFullRecompute));
}

TEST(IncrementalCounters, DisjointComponentsStayUntouched) {
  // Two flows in different racks share no link; starting the second must not
  // revisit the first one's links.
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 4;
  cfg.spines = 2;
  const Topology topo = make_leaf_spine(cfg);
  sim::Simulation sim;
  Fabric fabric(sim, topo, FabricConfig{RateEngine::kIncremental});
  const auto hosts = topo.hosts();

  auto intra_rack = [&](NodeId a, NodeId b) {
    const NodeId tor = topo.link(topo.out_links(a)[0]).dst;
    return std::vector<LinkId>{*topo.find_link(a, tor),
                               *topo.find_link(tor, b)};
  };
  FlowSpec f1;
  f1.src = hosts[0];
  f1.dst = hosts[1];
  f1.size = Bytes{1'000'000'000};
  f1.path = intra_rack(hosts[0], hosts[1]);
  fabric.start_flow(f1);
  const auto after_first = fabric.counters();

  FlowSpec f2;
  f2.src = hosts[4];  // other rack
  f2.dst = hosts[5];
  f2.size = Bytes{1'000'000'000};
  f2.path = intra_rack(hosts[4], hosts[5]);
  fabric.start_flow(f2);
  const auto after_second = fabric.counters();

  // The second start dirtied exactly its own two links, and the component
  // closure contains exactly one flow.
  EXPECT_EQ(after_second.links_touched - after_first.links_touched, 2u);
  EXPECT_EQ(after_second.flows_touched - after_first.flows_touched, 1u);
  EXPECT_EQ(after_second.full_fills, after_first.full_fills);
}

TEST(IncrementalCounters, CleanRecomputeIsFree) {
  LeafSpineConfig cfg;
  const Topology topo = make_leaf_spine(cfg);
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  const auto hosts = topo.hosts();
  const RoutingGraph routing(topo, 2);
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[6];
  spec.size = Bytes{10'000'000'000};
  spec.path = routing.paths(spec.src, spec.dst)[0].links;
  fabric.start_flow(spec);

  const auto before = fabric.counters();
  fabric.settle_and_recompute();  // probe accounting point, nothing dirty
  const auto after = fabric.counters();
  EXPECT_EQ(after.links_touched, before.links_touched);
  EXPECT_EQ(after.flows_touched, before.flows_touched);
}

}  // namespace
}  // namespace pythia::net
