#include "net/background.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;

struct Fixture {
  Topology topo = make_two_rack({});
  RoutingGraph routing{topo, 2};
  sim::Simulation sim;
  Fabric fabric{sim, topo};
  NodeId rack0_host, rack1_host;

  Fixture() {
    const auto hosts = topo.hosts();
    rack0_host = hosts[0];
    rack1_host = hosts[9];
  }
};

TEST(Background, NoOversubscriptionInstallsNothing) {
  Fixture f;
  BackgroundSpec spec;
  spec.oversubscription = 1.0;
  const auto handle = install_background(f.fabric, f.routing, f.rack0_host,
                                         f.rack1_host, spec);
  EXPECT_TRUE(handle.streams.empty());
  for (const auto& link : f.topo.links()) {
    EXPECT_DOUBLE_EQ(f.fabric.link_cbr_load(link.id).bps(), 0.0);
  }
}

TEST(Background, RatioSetsLoadFraction) {
  Fixture f;
  BackgroundSpec spec;
  spec.oversubscription = 10.0;           // 1:10 -> 90% of capacity
  spec.path_intensity = {1.0, 1.0};       // symmetric for this test
  const auto handle = install_background(f.fabric, f.routing, f.rack0_host,
                                         f.rack1_host, spec);
  // Two paths x two directions.
  ASSERT_EQ(handle.streams.size(), 4u);
  for (const auto rate : handle.rates) {
    EXPECT_NEAR(rate.bps(), 10e9 * 0.9, 1.0);
  }
  // Inter-rack chain links see the load; host access links do not.
  for (const auto& chain : handle.chains) {
    for (LinkId l : chain) {
      EXPECT_GT(f.fabric.link_cbr_load(l).bps(), 0.0);
      EXPECT_EQ(f.topo.node(f.topo.link(l).src).kind, NodeKind::kSwitch);
      EXPECT_EQ(f.topo.node(f.topo.link(l).dst).kind, NodeKind::kSwitch);
    }
  }
  const auto hosts = f.topo.hosts();
  for (NodeId h : hosts) {
    for (LinkId l : f.topo.out_links(h)) {
      EXPECT_DOUBLE_EQ(f.fabric.link_cbr_load(l).bps(), 0.0);
    }
  }
}

TEST(Background, AsymmetricIntensityMatchesFig1b) {
  Fixture f;
  BackgroundSpec spec;
  spec.oversubscription = 20.0;      // base fraction 0.95
  spec.path_intensity = {1.0, 0.1};  // Fig. 1b: ~95% vs ~9.5%
  const auto handle = install_background(f.fabric, f.routing, f.rack0_host,
                                         f.rack1_host, spec);
  ASSERT_EQ(handle.rates.size(), 4u);
  // Per direction: first path heavy, second light.
  EXPECT_NEAR(handle.rates[0].bps(), 10e9 * 0.95, 1.0);
  EXPECT_NEAR(handle.rates[1].bps(), 10e9 * 0.095, 1.0);
  EXPECT_NEAR(handle.rates[2].bps(), 10e9 * 0.95, 1.0);
  EXPECT_NEAR(handle.rates[3].bps(), 10e9 * 0.095, 1.0);
}

TEST(Background, IntensityListShorterThanPaths) {
  TwoRackConfig cfg;
  cfg.inter_rack_links = 4;
  Topology topo = make_two_rack(cfg);
  RoutingGraph routing(topo, 4);
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  const auto hosts = topo.hosts();

  BackgroundSpec spec;
  spec.oversubscription = 2.0;
  spec.path_intensity = {1.0, 0.5};  // paths 2,3 reuse the last entry (0.5)
  const auto handle =
      install_background(fabric, routing, hosts[0], hosts[9], spec);
  ASSERT_EQ(handle.rates.size(), 8u);
  EXPECT_NEAR(handle.rates[0].bps(), 10e9 * 0.5, 1.0);
  EXPECT_NEAR(handle.rates[1].bps(), 10e9 * 0.25, 1.0);
  EXPECT_NEAR(handle.rates[2].bps(), 10e9 * 0.25, 1.0);
  EXPECT_NEAR(handle.rates[3].bps(), 10e9 * 0.25, 1.0);
}

TEST(Background, RemoveRestoresCleanFabric) {
  Fixture f;
  BackgroundSpec spec;
  spec.oversubscription = 5.0;
  const auto handle = install_background(f.fabric, f.routing, f.rack0_host,
                                         f.rack1_host, spec);
  ASSERT_FALSE(handle.streams.empty());
  remove_background(f.fabric, handle);
  for (const auto& link : f.topo.links()) {
    EXPECT_DOUBLE_EQ(f.fabric.link_cbr_load(link.id).bps(), 0.0);
  }
}

TEST(Background, SameRackReferenceHostsAreHarmless) {
  Fixture f;
  BackgroundSpec spec;
  spec.oversubscription = 5.0;
  const auto hosts = f.topo.hosts();
  // Both hosts in rack 0: the inter-rack chain is empty -> nothing installed.
  const auto handle =
      install_background(f.fabric, f.routing, hosts[0], hosts[1], spec);
  EXPECT_TRUE(handle.streams.empty());
}

}  // namespace
}  // namespace pythia::net
