// Three-engine differential validation of the fabric rate engines. Every
// scenario is replayed under kFullRecompute, kIncremental, and kHierarchical
// (eager and cohort-coalesced), and the observable outcomes must match
// bit-for-bit: completion order and instants, every sampled rate's IEEE-754
// bits, and the full encode_state() image at mid-run cuts. The engines share
// the progressive-fill arithmetic by construction, so any divergence is a
// bug in component tracking, the group closure, the arena mirrors, or the
// cohort-flush placement — exactly the machinery this suite exists to catch.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "experiments/checkpoint.hpp"
#include "experiments/scenario.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "util/random.hpp"
#include "workloads/hibench.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::SimTime;

/// One engine configuration under test.
struct Arm {
  RateEngine engine;
  bool coalesce;
  const char* name;
};

constexpr Arm kArms[] = {
    {RateEngine::kFullRecompute, false, "full"},
    {RateEngine::kIncremental, false, "incremental"},
    {RateEngine::kHierarchical, false, "hierarchical"},
    {RateEngine::kHierarchical, true, "hierarchical+coalesce"},
};

/// (start sequence, completion instant); flow ids recycle, the sequence is
/// the stable identity.
using CompletionLog = std::vector<std::pair<int, std::int64_t>>;

struct ChurnResult {
  CompletionLog log;
  /// encode_state() images captured at fixed run_until() cuts. Counters are
  /// deliberately NOT included — they are observability, engines may differ.
  std::vector<std::vector<std::uint8_t>> cuts;
  /// Rate bit-patterns of every active flow at each cut, ascending by id.
  std::vector<std::vector<double>> cut_rates;
};

/// Seeded churn on a k=4 fat-tree: staggered random arrivals with a tunable
/// cross-pod fraction, zero-byte flows, a CBR pulse, fail+restore of both a
/// core link and an intra-pod link, mid-flight reroutes and weight changes.
ChurnResult run_churn(const Arm& arm, std::uint64_t seed,
                      double cross_pod_fraction) {
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);

  sim::Simulation sim(seed);
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = arm.engine,
                             .coalesce_cohorts = arm.coalesce});
  util::Xoshiro256 rng(seed);
  const auto hosts = topo.hosts();
  const auto hosts_per_pod = hosts.size() / cfg.k;

  ChurnResult out;

  // Pinned long-lived cross-pod flows that survive to the reroute events.
  std::vector<FlowId> pinned;
  for (int i = 0; i < 4; ++i) {
    const NodeId src = hosts[i];
    const NodeId dst = hosts[hosts.size() - 1 - i];
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{6'000'000'000};
    spec.path = routing.paths(src, dst)[0].links;
    spec.weight = 1.0 + i;
    const int tag = 1000 + i;
    pinned.push_back(fabric.start_flow(
        spec, [&out, tag](FlowId, SimTime t) {
          out.log.emplace_back(tag, t.ns());
        }));
  }

  // Randomized short flows over two simulated seconds. Destination pod is
  // chosen intra-pod or cross-pod per `cross_pod_fraction`, which steers how
  // often components stay pod-local vs. couple through the core.
  constexpr int kFlows = 90;
  for (int i = 0; i < kFlows; ++i) {
    const auto at =
        SimTime{static_cast<std::int64_t>(rng.below(2'000'000'000))};
    const std::size_t src_idx = rng.below(hosts.size());
    const NodeId src = hosts[src_idx];
    const std::size_t src_pod = src_idx / hosts_per_pod;
    NodeId dst = src;
    while (dst == src) {
      const bool cross = rng.uniform(0.0, 1.0) < cross_pod_fraction;
      std::size_t pod = src_pod;
      if (cross) {
        while (pod == src_pod) pod = rng.below(cfg.k);
      }
      dst = hosts[pod * hosts_per_pod + rng.below(hosts_per_pod)];
    }
    const auto& paths = routing.paths(src, dst);
    const auto path = paths[rng.below(paths.size())].links;
    // Every 9th flow is zero-byte: starts and completes within one instant,
    // exercising slot recycling and the arena stale-row discipline hard.
    const auto size = static_cast<std::int64_t>(
        i % 9 == 8 ? 0 : 1'000'000 + rng.below(300'000'000));
    const double weight = rng.uniform(0.5, 3.0);
    sim.at(at, [&fabric, &out, i, src, dst, path, size, weight] {
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{size};
      spec.path = path;
      spec.weight = weight;
      fabric.start_flow(spec, [&out, i](FlowId, SimTime t) {
        out.log.emplace_back(i, t.ns());
      });
    });
  }

  // CBR pulse on a cross-pod path.
  const auto& cbr_paths = routing.paths(hosts[0], hosts[hosts.size() - 2]);
  sim.at(SimTime::from_seconds(0.3), [&fabric, &cbr_paths] {
    const CbrId id = fabric.start_cbr(cbr_paths[0].links, BitsPerSec{4e9});
    fabric.simulation().at(SimTime::from_seconds(1.2),
                           [&fabric, id] { fabric.stop_cbr(id); });
  });

  // Fail + restore a core-facing link (cross-pod hop of a long path) and an
  // intra-pod link (first hop: host -> edge).
  const auto& long_path = routing.paths(hosts[1], hosts.back())[0].links;
  const LinkId core_victim = long_path[long_path.size() / 2];
  const LinkId pod_victim = long_path.front();
  sim.at(SimTime::from_seconds(0.5),
         [&fabric, core_victim] { fabric.fail_link(core_victim); });
  sim.at(SimTime::from_seconds(0.9),
         [&fabric, core_victim] { fabric.restore_link(core_victim); });
  sim.at(SimTime::from_seconds(0.6),
         [&fabric, pod_victim] { fabric.fail_link(pod_victim); });
  sim.at(SimTime::from_seconds(0.8),
         [&fabric, pod_victim] { fabric.restore_link(pod_victim); });

  // Reroute and reweight the pinned flows mid-flight.
  sim.at(SimTime::from_seconds(0.7), [&fabric, &routing, pinned] {
    for (FlowId f : pinned) {
      if (!fabric.flow_active(f)) continue;
      const auto& spec = fabric.flow(f).spec;
      const auto& alts = routing.paths(spec.src, spec.dst);
      fabric.reroute_flow(f, alts[alts.size() - 1].links);
    }
  });
  sim.at(SimTime::from_seconds(1.1), [&fabric, pinned] {
    for (FlowId f : pinned) {
      if (fabric.flow_active(f)) fabric.set_flow_weight(f, 2.5);
    }
  });

  // Freeze at fixed instants and capture the behavioral state image plus
  // every active rate's bit pattern.
  for (const double cut_s : {0.45, 0.75, 1.3}) {
    sim.run_until(SimTime::from_seconds(cut_s));
    sim::StateEncoder enc;
    fabric.encode_state(enc);
    out.cuts.push_back(enc.bytes());
    std::vector<double> rates;
    for (FlowId f : fabric.active_flows()) {
      rates.push_back(fabric.flow(f).rate.bps());
    }
    out.cut_rates.push_back(std::move(rates));
  }

  sim.run();
  return out;
}

void expect_identical(const ChurnResult& base, const ChurnResult& other,
                      const char* base_name, const char* other_name) {
  SCOPED_TRACE(std::string(base_name) + " vs " + other_name);
  ASSERT_EQ(base.log.size(), other.log.size());
  for (std::size_t i = 0; i < base.log.size(); ++i) {
    EXPECT_EQ(base.log[i].first, other.log[i].first)
        << "completion order @" << i;
    EXPECT_EQ(base.log[i].second, other.log[i].second)
        << "completion time of flow " << base.log[i].first;
  }
  ASSERT_EQ(base.cuts.size(), other.cuts.size());
  for (std::size_t c = 0; c < base.cuts.size(); ++c) {
    EXPECT_EQ(base.cuts[c], other.cuts[c]) << "state image at cut " << c;
    ASSERT_EQ(base.cut_rates[c].size(), other.cut_rates[c].size());
    for (std::size_t i = 0; i < base.cut_rates[c].size(); ++i) {
      EXPECT_EQ(base.cut_rates[c][i], other.cut_rates[c][i])  // bitwise
          << "rate of active flow " << i << " at cut " << c;
    }
  }
}

struct ChurnParam {
  std::uint64_t seed;
  double cross_pod_fraction;
};

class FabricDifferential : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(FabricDifferential, AllEnginesBitIdentical) {
  const auto [seed, cross] = GetParam();
  const ChurnResult base = run_churn(kArms[0], seed, cross);
  ASSERT_FALSE(base.log.empty());
  for (std::size_t a = 1; a < std::size(kArms); ++a) {
    const ChurnResult other = run_churn(kArms[a], seed, cross);
    expect_identical(base, other, kArms[0].name, kArms[a].name);
  }
}

// Pod-local traffic (components never leave a group), core-coupled traffic
// (closure spans pods), and the mixed regime each stress different paths
// through collect_component_hier().
INSTANTIATE_TEST_SUITE_P(
    Seeds, FabricDifferential,
    ::testing::Values(ChurnParam{1, 0.5}, ChurnParam{7, 0.5},
                      ChurnParam{42, 0.5}, ChurnParam{1234, 0.5},
                      ChurnParam{3, 0.0},   // pure intra-pod
                      ChurnParam{3, 1.0},   // pure cross-pod
                      ChurnParam{99, 0.15}, ChurnParam{99, 0.85}));

TEST(FabricDifferential, CoalescingAbsorbsBurstRecomputes) {
  // A burst of same-instant arrivals pays one fill under coalescing; the
  // deferred_recomputes counter proves the batching actually engaged.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  const auto hosts = topo.hosts();

  auto burst = [&](bool coalesce) {
    sim::Simulation sim(5);
    Fabric fabric(sim, topo,
                  FabricConfig{.rate_engine = RateEngine::kHierarchical,
                               .coalesce_cohorts = coalesce});
    for (int i = 0; i < 32; ++i) {
      const NodeId src = hosts[i % hosts.size()];
      const NodeId dst = hosts[(i + 5) % hosts.size()];
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{50'000'000};
      spec.path = routing.paths(src, dst)[0].links;
      sim.at(SimTime::from_seconds(0.1),
             [&fabric, spec] { fabric.start_flow(spec); });
    }
    sim.run();
    return fabric.counters();
  };

  const FabricCounters eager = burst(false);
  const FabricCounters coalesced = burst(true);
  EXPECT_GT(coalesced.deferred_recomputes, 0u);
  EXPECT_GT(coalesced.cohort_flushes, 0u);
  // 32 same-instant arrivals: eager pays >= 32 fills for the burst alone;
  // coalesced folds the burst into one flush.
  EXPECT_LT(coalesced.recomputes + coalesced.cohort_flushes, eager.recomputes);
}

TEST(FabricDifferential, RuntimeCoalescingToggleLandsOnEagerState) {
  // The scaling bench ramps every arm coalesced and then switches the
  // oracle engines to eager mid-run; the toggle must leave the fabric in
  // exactly the state an always-eager run holds at the same instant.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  const auto hosts = topo.hosts();

  auto run = [&](bool toggled) {
    sim::Simulation sim(11);
    Fabric fabric(sim, topo,
                  FabricConfig{.rate_engine = RateEngine::kIncremental,
                               .coalesce_cohorts = toggled});
    for (int i = 0; i < 12; ++i) {
      const NodeId src = hosts[i % hosts.size()];
      const NodeId dst = hosts[(i + 7) % hosts.size()];
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{40'000'000 + i * 1'000'000};
      spec.path = routing.paths(src, dst)[0].links;
      fabric.start_flow(spec);
    }
    if (toggled) fabric.set_cohort_coalescing(false);  // flushes the cohort
    // Post-toggle churn runs eager on both sides.
    FlowSpec late;
    late.src = hosts[2];
    late.dst = hosts[9];
    late.size = Bytes{25'000'000};
    late.path = routing.paths(late.src, late.dst)[0].links;
    fabric.start_flow(late);
    sim.run_until(SimTime::from_seconds(0.05));
    sim::StateEncoder enc;
    fabric.encode_state(enc);
    return enc.bytes();
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(FabricDifferential, MidCohortReadsFlushDeferredWork) {
  // Rate reads inside a cohort must observe post-recompute values even
  // though the boundary flush has not fired yet.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  const auto hosts = topo.hosts();
  sim::Simulation sim(5);
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical,
                             .coalesce_cohorts = true});
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[1];
  spec.size = Bytes{1'000'000'000};
  spec.path = routing.paths(spec.src, spec.dst)[0].links;
  double rate_seen = -1.0;
  double util_seen = -1.0;
  sim.at(SimTime::from_seconds(0.1), [&] {
    const FlowId id = fabric.start_flow(spec);
    // Same event, before any boundary: accessors must flush.
    rate_seen = fabric.flow(id).rate.bps();
    util_seen = fabric.link_utilization(spec.path[0]);
  });
  sim.run_until(SimTime::from_seconds(0.2));
  EXPECT_GT(rate_seen, 0.0);
  EXPECT_GT(util_seen, 0.0);
}

TEST(FabricCheckpoint, HierarchicalScenarioRestoresVerified) {
  // Scenario-level capture/restore with the hierarchical engine and cohort
  // coalescing on: the mid-run cut exercises the capture-flushes-first
  // protocol (a capture between a deferral and its boundary flush must
  // encode post-flush state identically on both sides).
  for (const bool coalesce : {false, true}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 11;
    cfg.scheduler = exp::SchedulerKind::kPythia;
    cfg.background.oversubscription = 10.0;
    cfg.rate_engine = RateEngine::kHierarchical;
    cfg.coalesce_cohorts = coalesce;
    const auto job = workloads::sort_job(Bytes{4'000'000'000LL}, 16);

    exp::Scenario probe(cfg);
    (void)probe.run_job(job);
    const std::uint64_t events = probe.simulation().queue().events_fired();
    ASSERT_GT(events, 100u);

    for (const std::uint64_t cut : {events / 3, (2 * events) / 3}) {
      exp::Scenario golden(cfg);
      golden.submit_job(job);
      golden.run_to_event_count(cut);
      const sim::Snapshot snap =
          exp::capture_snapshot(golden, job, "hier-cut");
      exp::RestoreResult restored = exp::restore_snapshot(snap, cfg, job);
      ASSERT_TRUE(restored.verified)
          << "coalesce=" << coalesce << " cut " << cut << ": "
          << restored.divergence;
      const auto golden_result = golden.finish();
      const auto restored_result = restored.scenario->finish();
      EXPECT_EQ(restored_result.completion_time(),
                golden_result.completion_time());
    }
  }
}

TEST(FabricCheckpoint, ScenarioSurfaceIdenticalAcrossEngines) {
  // The quickstart scenario shape must complete at the same instant under
  // all three engines, with and without coalescing.
  auto run = [](RateEngine engine, bool coalesce) {
    exp::ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.scheduler = exp::SchedulerKind::kEcmp;
    cfg.background.oversubscription = 10.0;
    cfg.rate_engine = engine;
    cfg.coalesce_cohorts = coalesce;
    exp::Scenario scenario(cfg);
    return scenario.run_job(workloads::sort_job(Bytes{2'000'000'000}, 4))
        .completion_time()
        .ns();
  };
  const std::int64_t base = run(RateEngine::kFullRecompute, false);
  EXPECT_EQ(base, run(RateEngine::kIncremental, false));
  EXPECT_EQ(base, run(RateEngine::kHierarchical, false));
  EXPECT_EQ(base, run(RateEngine::kHierarchical, true));
  EXPECT_EQ(base, run(RateEngine::kIncremental, true));
}

}  // namespace
}  // namespace pythia::net
