#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pythia::net {
namespace {

using util::BitsPerSec;

Topology diamond() {
  // a -> {x, y} -> b : two 2-hop paths.
  Topology topo;
  const NodeId a = topo.add_host("a", 0);
  const NodeId b = topo.add_host("b", 1);
  const NodeId x = topo.add_switch("x");
  const NodeId y = topo.add_switch("y");
  topo.add_duplex(a, x, BitsPerSec{1e9});
  topo.add_duplex(a, y, BitsPerSec{1e9});
  topo.add_duplex(x, b, BitsPerSec{1e9});
  topo.add_duplex(y, b, BitsPerSec{1e9});
  return topo;
}

TEST(ShortestPath, TrivialAndSelf) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto self = shortest_path(topo, hosts[0], hosts[0]);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->links.empty());

  const auto p = shortest_path(topo, hosts[0], hosts[1]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
  EXPECT_TRUE(topo.validate_path(hosts[0], hosts[1], p->links));
}

TEST(ShortestPath, RespectsBannedLinks) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto first = shortest_path(topo, hosts[0], hosts[1]);
  ASSERT_TRUE(first.has_value());
  const auto second = shortest_path(topo, hosts[0], hosts[1],
                                    {first->links.front()});
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->links, second->links);
  // Banning both first hops disconnects the pair.
  const auto none = shortest_path(
      topo, hosts[0], hosts[1],
      {first->links.front(), second->links.front()});
  EXPECT_FALSE(none.has_value());
}

TEST(ShortestPath, RespectsBannedNodes) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto switches = topo.switches();
  const auto p = shortest_path(topo, hosts[0], hosts[1], {},
                               {switches[0], switches[1]});
  EXPECT_FALSE(p.has_value());
}

TEST(ShortestPath, DeterministicTieBreak) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto a = shortest_path(topo, hosts[0], hosts[1]);
  const auto b = shortest_path(topo, hosts[0], hosts[1]);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->links, b->links);
}

TEST(KShortest, FindsBothDiamondPaths) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[1], 4);
  ASSERT_EQ(paths.size(), 2u);  // only two loop-free paths exist
  EXPECT_EQ(paths[0].hops(), 2u);
  EXPECT_EQ(paths[1].hops(), 2u);
  EXPECT_NE(paths[0].links, paths[1].links);
  for (const auto& p : paths) {
    EXPECT_TRUE(topo.validate_path(hosts[0], hosts[1], p.links));
  }
}

TEST(KShortest, TwoRackParallelCables) {
  TwoRackConfig cfg;
  cfg.inter_rack_links = 3;
  const Topology topo = make_two_rack(cfg);
  const auto hosts = topo.hosts();
  const NodeId src = hosts[0];
  const NodeId dst = hosts[9];
  const auto paths = k_shortest_paths(topo, src, dst, 8);
  // Three parallel cables -> exactly three 4-hop inter-rack paths.
  ASSERT_EQ(paths.size(), 3u);
  std::set<std::vector<LinkId>> unique;
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 4u);
    EXPECT_TRUE(topo.validate_path(src, dst, p.links));
    unique.insert(p.links);
  }
  EXPECT_EQ(unique.size(), 3u);
}

TEST(KShortest, SameRackSinglePath) {
  const Topology topo = make_two_rack({});
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[1], 4);
  ASSERT_EQ(paths.size(), 1u);  // via the shared ToR only
  EXPECT_EQ(paths[0].hops(), 2u);
}

TEST(KShortest, NondecreasingLengths) {
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 4;
  const Topology topo = make_leaf_spine(cfg);
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[3], 16);
  ASSERT_GE(paths.size(), 4u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].hops(), paths[i - 1].hops());
  }
}

TEST(KShortest, KZeroAndDisconnected) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  EXPECT_TRUE(k_shortest_paths(topo, hosts[0], hosts[1], 0).empty());

  Topology island;
  const NodeId a = island.add_host("a", 0);
  const NodeId b = island.add_host("b", 1);
  EXPECT_TRUE(k_shortest_paths(island, a, b, 3).empty());
}

TEST(RoutingGraph, PrecomputesAllHostPairs) {
  const Topology topo = make_two_rack({});
  const RoutingGraph rg(topo, 2);
  const auto hosts = topo.hosts();
  for (NodeId a : hosts) {
    for (NodeId b : hosts) {
      if (a == b) continue;
      const auto& paths = rg.paths(a, b);
      ASSERT_FALSE(paths.empty()) << a.value() << "->" << b.value();
      const bool cross_rack = topo.node(a).rack != topo.node(b).rack;
      EXPECT_EQ(paths.size(), cross_rack ? 2u : 1u);
    }
  }
  EXPECT_EQ(rg.k(), 2u);
}

TEST(RoutingGraph, RebuildAfterTopologyChange) {
  TwoRackConfig cfg;
  const Topology before = make_two_rack(cfg);
  RoutingGraph rg(before, 4);
  const auto hosts = before.hosts();
  EXPECT_EQ(rg.paths(hosts[0], hosts[9]).size(), 2u);

  cfg.inter_rack_links = 4;
  const Topology after = make_two_rack(cfg);
  rg.rebuild(after);
  EXPECT_EQ(rg.paths(hosts[0], hosts[9]).size(), 4u);
}

}  // namespace
}  // namespace pythia::net
