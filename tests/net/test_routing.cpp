#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pythia::net {
namespace {

using util::BitsPerSec;

Topology diamond() {
  // a -> {x, y} -> b : two 2-hop paths.
  Topology topo;
  const NodeId a = topo.add_host("a", 0);
  const NodeId b = topo.add_host("b", 1);
  const NodeId x = topo.add_switch("x");
  const NodeId y = topo.add_switch("y");
  topo.add_duplex(a, x, BitsPerSec{1e9});
  topo.add_duplex(a, y, BitsPerSec{1e9});
  topo.add_duplex(x, b, BitsPerSec{1e9});
  topo.add_duplex(y, b, BitsPerSec{1e9});
  return topo;
}

TEST(ShortestPath, TrivialAndSelf) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto self = shortest_path(topo, hosts[0], hosts[0]);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->links.empty());

  const auto p = shortest_path(topo, hosts[0], hosts[1]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
  EXPECT_TRUE(topo.validate_path(hosts[0], hosts[1], p->links));
}

TEST(ShortestPath, RespectsBannedLinks) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto first = shortest_path(topo, hosts[0], hosts[1]);
  ASSERT_TRUE(first.has_value());
  const auto second = shortest_path(topo, hosts[0], hosts[1],
                                    {first->links.front()});
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->links, second->links);
  // Banning both first hops disconnects the pair.
  const auto none = shortest_path(
      topo, hosts[0], hosts[1],
      {first->links.front(), second->links.front()});
  EXPECT_FALSE(none.has_value());
}

TEST(ShortestPath, RespectsBannedNodes) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto switches = topo.switches();
  const auto p = shortest_path(topo, hosts[0], hosts[1], {},
                               {switches[0], switches[1]});
  EXPECT_FALSE(p.has_value());
}

TEST(ShortestPath, DeterministicTieBreak) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto a = shortest_path(topo, hosts[0], hosts[1]);
  const auto b = shortest_path(topo, hosts[0], hosts[1]);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->links, b->links);
}

TEST(KShortest, FindsBothDiamondPaths) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[1], 4);
  ASSERT_EQ(paths.size(), 2u);  // only two loop-free paths exist
  EXPECT_EQ(paths[0].hops(), 2u);
  EXPECT_EQ(paths[1].hops(), 2u);
  EXPECT_NE(paths[0].links, paths[1].links);
  for (const auto& p : paths) {
    EXPECT_TRUE(topo.validate_path(hosts[0], hosts[1], p.links));
  }
}

TEST(KShortest, TwoRackParallelCables) {
  TwoRackConfig cfg;
  cfg.inter_rack_links = 3;
  const Topology topo = make_two_rack(cfg);
  const auto hosts = topo.hosts();
  const NodeId src = hosts[0];
  const NodeId dst = hosts[9];
  const auto paths = k_shortest_paths(topo, src, dst, 8);
  // Three parallel cables -> exactly three 4-hop inter-rack paths.
  ASSERT_EQ(paths.size(), 3u);
  std::set<std::vector<LinkId>> unique;
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 4u);
    EXPECT_TRUE(topo.validate_path(src, dst, p.links));
    unique.insert(p.links);
  }
  EXPECT_EQ(unique.size(), 3u);
}

TEST(KShortest, SameRackSinglePath) {
  const Topology topo = make_two_rack({});
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[1], 4);
  ASSERT_EQ(paths.size(), 1u);  // via the shared ToR only
  EXPECT_EQ(paths[0].hops(), 2u);
}

TEST(KShortest, NondecreasingLengths) {
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 4;
  const Topology topo = make_leaf_spine(cfg);
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[3], 16);
  ASSERT_GE(paths.size(), 4u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].hops(), paths[i - 1].hops());
  }
}

TEST(KShortest, KZeroAndDisconnected) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  EXPECT_TRUE(k_shortest_paths(topo, hosts[0], hosts[1], 0).empty());

  Topology island;
  const NodeId a = island.add_host("a", 0);
  const NodeId b = island.add_host("b", 1);
  EXPECT_TRUE(k_shortest_paths(island, a, b, 3).empty());
}

TEST(RoutingGraph, PrecomputesAllHostPairs) {
  const Topology topo = make_two_rack({});
  const RoutingGraph rg(topo, 2);
  const auto hosts = topo.hosts();
  for (NodeId a : hosts) {
    for (NodeId b : hosts) {
      if (a == b) continue;
      const auto& paths = rg.paths(a, b);
      ASSERT_FALSE(paths.empty()) << a.value() << "->" << b.value();
      const bool cross_rack = topo.node(a).rack != topo.node(b).rack;
      EXPECT_EQ(paths.size(), cross_rack ? 2u : 1u);
    }
  }
  EXPECT_EQ(rg.k(), 2u);
}

TEST(PathPool, InternDeduplicatesAndKeepsReferencesStable) {
  const Topology topo = diamond();
  const auto hosts = topo.hosts();
  const auto paths = k_shortest_paths(topo, hosts[0], hosts[1], 4);
  ASSERT_EQ(paths.size(), 2u);

  PathPool pool;
  const PathId a = pool.intern(paths[0]);
  const PathId b = pool.intern(paths[1]);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  // Interning the same link sequence again returns the same id.
  EXPECT_EQ(pool.intern(paths[0]), a);
  EXPECT_EQ(pool.intern(paths[1]), b);
  EXPECT_EQ(pool.size(), 2u);

  // References stay valid as the pool grows (deque storage).
  const Path* first = &pool.path(a);
  for (int i = 0; i < 1000; ++i) {
    Path p;
    p.links.push_back(LinkId{static_cast<std::uint32_t>(i + 100)});
    pool.intern(std::move(p));
  }
  EXPECT_EQ(first, &pool.path(a));
  EXPECT_EQ(pool.path(a).links, paths[0].links);
}

TEST(RoutingGraph, HasPathsAndHostPairQueries) {
  const Topology topo = make_two_rack({});
  const RoutingGraph rg(topo, 2);
  const auto hosts = topo.hosts();
  const auto switches = topo.switches();

  EXPECT_TRUE(rg.is_host_pair(hosts[0], hosts[9]));
  EXPECT_TRUE(rg.has_paths(hosts[0], hosts[9]));
  // Switches are not hosts: no precomputed entry exists.
  EXPECT_FALSE(rg.is_host_pair(hosts[0], switches[0]));
  EXPECT_FALSE(rg.has_paths(hosts[0], switches[0]));
  EXPECT_FALSE(rg.is_host_pair(switches[0], switches[1]));
  // The diagonal is a valid host pair with no paths computed for it.
  EXPECT_TRUE(rg.is_host_pair(hosts[0], hosts[0]));
  EXPECT_FALSE(rg.has_paths(hosts[0], hosts[0]));
}

TEST(RoutingGraph, PathsOnUnknownPairDiesInDebug) {
  const Topology topo = make_two_rack({});
  const RoutingGraph rg(topo, 2);
  const auto hosts = topo.hosts();
  const auto switches = topo.switches();
#ifndef NDEBUG
  EXPECT_DEATH((void)rg.paths(hosts[0], switches[0]), "must be hosts");
#else
  EXPECT_TRUE(rg.paths(hosts[0], switches[0]).empty());
#endif
}

TEST(RoutingGraph, IncrementalMatchesFullOnBanAndRestore) {
  TwoRackConfig cfg;
  cfg.inter_rack_links = 3;
  const Topology topo = make_two_rack(cfg);
  RoutingGraph inc(topo, 4);
  RoutingGraph full(topo, 4);
  const auto hosts = topo.hosts();

  // Ban one inter-rack cable, then a second, then restore both.
  const LinkId victim = inc.paths(hosts[0], hosts[9])[0].links[1];
  const LinkId second = inc.paths(hosts[0], hosts[9])[1].links[1];
  const std::vector<std::unordered_set<LinkId>> steps = {
      {victim}, {victim, second}, {second}, {}};
  for (const auto& banned : steps) {
    inc.rebuild(topo, banned, RebuildMode::kIncremental);
    full.rebuild(topo, banned, RebuildMode::kFull);
    for (NodeId a : hosts) {
      for (NodeId b : hosts) {
        if (a == b) continue;
        const auto pi = inc.paths(a, b);
        const auto pf = full.paths(a, b);
        ASSERT_EQ(pi.size(), pf.size());
        for (std::size_t i = 0; i < pi.size(); ++i) {
          EXPECT_EQ(pi[i].links, pf[i].links);
        }
      }
    }
  }
  // The incremental graph actually took the fast path and reused work.
  EXPECT_EQ(inc.counters().incremental_rebuilds, steps.size());
  EXPECT_EQ(full.counters().incremental_rebuilds, 0u);
  EXPECT_GT(inc.counters().pairs_reused, 0u);
}

TEST(RoutingGraph, IncrementalNoopRebuildRecomputesNothing) {
  const Topology topo = make_two_rack({});
  RoutingGraph rg(topo, 2);
  const auto before = rg.counters();
  rg.rebuild(topo);  // same topology, same (empty) ban set
  const auto after = rg.counters();
  // A no-op delta early-returns: no recomputation, no rebuild-counter bump,
  // no reuse credit — only the dedicated noop counter moves.
  EXPECT_EQ(after.pairs_recomputed, before.pairs_recomputed);
  EXPECT_EQ(after.incremental_rebuilds, before.incremental_rebuilds);
  EXPECT_EQ(after.pairs_reused, before.pairs_reused);
  EXPECT_EQ(after.noop_rebuilds, before.noop_rebuilds + 1);
}

TEST(RoutingGraph, PairsUsingReverseIndex) {
  const Topology topo = make_two_rack({});
  const RoutingGraph rg(topo, 2);
  const auto hosts = topo.hosts();
  // Links are directional: a rack0->rack1 cable is in the candidate set of
  // every rack0->rack1 pair (both cables, since k=2 enumerates both), while
  // host 0's outbound access link is touched only by pairs sourced there.
  const LinkId cable = rg.paths(hosts[0], hosts[9])[0].links[1];
  const LinkId access = rg.paths(hosts[0], hosts[9])[0].links[0];
  EXPECT_EQ(rg.pairs_using(cable), 25u);  // 5 x 5 rack0 -> rack1 pairs
  EXPECT_EQ(rg.pairs_using(access), 9u);  // host0 -> each other host
}

TEST(RoutingGraph, RebuildAfterTopologyChange) {
  TwoRackConfig cfg;
  const Topology before = make_two_rack(cfg);
  RoutingGraph rg(before, 4);
  const auto hosts = before.hosts();
  EXPECT_EQ(rg.paths(hosts[0], hosts[9]).size(), 2u);

  cfg.inter_rack_links = 4;
  const Topology after = make_two_rack(cfg);
  rg.rebuild(after);
  EXPECT_EQ(rg.paths(hosts[0], hosts[9]).size(), 4u);
}

}  // namespace
}  // namespace pythia::net
