// Differential proof for BuildMode::kLazy and the parallel eager build:
// whatever mix of paths() queries, link fail/restore churn, and snapshot
// encoding a run performs, a lazy graph must be observably identical to an
// eager twin — same candidate tables, same encode_state bytes — and a
// parallel cold build must be *byte*-identical to a serial one, PathId
// values included (interning order is part of the determinism contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/snapshot.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace pythia::net {
namespace {

std::vector<std::uint8_t> encoded_state(const RoutingGraph& rg) {
  sim::StateEncoder enc;
  rg.encode_state(enc);
  return enc.take();
}

void expect_tables_identical(const Topology& topo, const RoutingGraph& a,
                             const RoutingGraph& b, const char* what) {
  for (NodeId s : topo.hosts()) {
    for (NodeId d : topo.hosts()) {
      if (s == d) continue;
      const auto pa = a.paths(s, d);
      const auto pb = b.paths(s, d);
      ASSERT_EQ(pa.size(), pb.size())
          << what << ": pair " << s.value() << "->" << d.value();
      for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i].links, pb[i].links)
            << what << ": pair " << s.value() << "->" << d.value() << " path "
            << i;
      }
    }
  }
}

Topology small_fat_tree() {
  FatTreeConfig cfg;
  cfg.k = 4;
  return make_fat_tree(cfg);
}

TEST(LazyRouting, ConstructionDoesNoYenWork) {
  const Topology topo = small_fat_tree();
  const RoutingGraph rg(topo, 4, BuildMode::kLazy);
  EXPECT_EQ(rg.pairs_materialized(), 0u);
  EXPECT_EQ(rg.counters().pairs_recomputed, 0u);
  EXPECT_EQ(rg.counters().full_rebuilds, 1u);
  EXPECT_EQ(rg.build_mode(), BuildMode::kLazy);
}

TEST(LazyRouting, FirstQueryMaterializesAndMatchesEager) {
  const Topology topo = small_fat_tree();
  const RoutingGraph eager(topo, 4);
  const RoutingGraph lazy(topo, 4, BuildMode::kLazy);
  const auto hosts = topo.hosts();

  // Query in deliberately scrambled order: results must not depend on it.
  std::vector<std::pair<NodeId, NodeId>> order;
  for (NodeId s : hosts) {
    for (NodeId d : hosts) {
      if (s != d) order.emplace_back(s, d);
    }
  }
  util::Xoshiro256 rng(7);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::size_t seen = 0;
  for (const auto& [s, d] : order) {
    const auto pl = lazy.paths(s, d);
    const auto pe = eager.paths(s, d);
    ASSERT_EQ(pl.size(), pe.size());
    for (std::size_t i = 0; i < pl.size(); ++i) {
      ASSERT_EQ(pl[i].links, pe[i].links);
    }
    ++seen;
    EXPECT_EQ(lazy.pairs_materialized(), seen);
  }
  EXPECT_EQ(lazy.counters().lazy_materializations, order.size());
  EXPECT_EQ(eager.pairs_materialized(), order.size());
}

TEST(LazyRouting, HasPathsMaterializesOnDemand) {
  const Topology topo = make_two_rack({});
  const RoutingGraph lazy(topo, 2, BuildMode::kLazy);
  const auto hosts = topo.hosts();
  EXPECT_EQ(lazy.pairs_materialized(), 0u);
  EXPECT_TRUE(lazy.has_paths(hosts[0], hosts[9]));
  EXPECT_EQ(lazy.pairs_materialized(), 1u);
}

TEST(LazyRouting, EncodeStateIdenticalAcrossModesAndCoverage) {
  const Topology topo = small_fat_tree();
  const auto hosts = topo.hosts();
  const RoutingGraph eager(topo, 4);

  // Untouched, partially queried, and fully materialized lazy graphs must
  // all encode the same bytes as the eager build (encode_state forces
  // materialization in slot order).
  const RoutingGraph untouched(topo, 4, BuildMode::kLazy);
  RoutingGraph partial(topo, 4, BuildMode::kLazy);
  (void)partial.paths(hosts[3], hosts[11]);
  (void)partial.paths(hosts[8], hosts[1]);
  RoutingGraph complete(topo, 4, BuildMode::kLazy);
  complete.materialize_all();

  const auto reference = encoded_state(eager);
  EXPECT_EQ(encoded_state(untouched), reference);
  EXPECT_EQ(encoded_state(partial), reference);
  EXPECT_EQ(encoded_state(complete), reference);
  // Encoding materialized everything as a side effect.
  EXPECT_EQ(untouched.pairs_materialized(), eager.pairs_materialized());
}

TEST(LazyRouting, RebuildInvalidatesInsteadOfRecomputing) {
  const Topology topo = small_fat_tree();
  RoutingGraph lazy(topo, 4, BuildMode::kLazy);
  RoutingGraph eager(topo, 4);
  const auto hosts = topo.hosts();

  // Materialize one cross-pod pair, then fail a link on its first path.
  const auto before = lazy.paths(hosts.front(), hosts.back());
  ASSERT_FALSE(before.empty());
  const LinkId victim = before[0].links[1];
  std::unordered_set<LinkId> banned{victim};

  const auto recomputed_before = lazy.counters().pairs_recomputed;
  lazy.rebuild(topo, banned);
  eager.rebuild(topo, banned);
  // The rebuild itself did no Yen work on the lazy graph — it only dropped
  // the affected pair.
  EXPECT_EQ(lazy.counters().pairs_recomputed, recomputed_before);
  EXPECT_GE(lazy.counters().pairs_invalidated, 1u);
  EXPECT_EQ(lazy.pairs_materialized(), 0u);

  expect_tables_identical(topo, lazy, eager, "after failure");
}

/// The satellite-3 pin: a rebuild with an unchanged banned set (any mode)
/// touches nothing but the noop counter.
TEST(LazyRouting, NoopRebuildBumpsOnlyNoopCounter) {
  const Topology topo = make_two_rack({});
  for (const BuildMode mode : {BuildMode::kEager, BuildMode::kLazy}) {
    RoutingGraph rg(topo, 2, mode);
    (void)rg.paths(topo.hosts()[0], topo.hosts()[9]);
    const RoutingCounters before = rg.counters();
    rg.rebuild(topo);  // same topology, same (empty) banned set, incremental
    rg.rebuild(topo, {}, RebuildMode::kFull);  // ... and in full mode
    const RoutingCounters after = rg.counters();
    EXPECT_EQ(after.noop_rebuilds, before.noop_rebuilds + 2);
    EXPECT_EQ(after.full_rebuilds, before.full_rebuilds);
    EXPECT_EQ(after.incremental_rebuilds, before.incremental_rebuilds);
    EXPECT_EQ(after.pairs_recomputed, before.pairs_recomputed);
    EXPECT_EQ(after.pairs_reused, before.pairs_reused);
    EXPECT_EQ(after.pairs_invalidated, before.pairs_invalidated);
  }
}

/// Randomized interleavings of queries, churn, and snapshot capture: the
/// lazy graph must stay observably identical to an eager twin through any
/// such trajectory — tables, encode_state bytes, has_paths answers.
class LazyChurnInterleaving : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LazyChurnInterleaving, LazyMatchesEagerUnderRandomOps) {
  const Topology topo = small_fat_tree();
  const auto hosts = topo.hosts();
  RoutingGraph lazy(topo, 4, BuildMode::kLazy);
  RoutingGraph eager(topo, 4);
  util::Xoshiro256 rng(GetParam());

  std::vector<LinkId> cables;
  for (const auto& link : topo.links()) {
    if (topo.node(link.src).kind == NodeKind::kSwitch &&
        topo.node(link.dst).kind == NodeKind::kSwitch) {
      cables.push_back(link.id);
    }
  }
  std::unordered_set<LinkId> banned;

  for (int step = 0; step < 60; ++step) {
    switch (rng.below(4)) {
      case 0: {  // toggle a cable (duplex, like the controller does)
        const LinkId l = cables[rng.below(cables.size())];
        const auto peer =
            topo.find_link(topo.link(l).dst, topo.link(l).src);
        if (banned.contains(l)) {
          banned.erase(l);
          if (peer) banned.erase(*peer);
        } else {
          banned.insert(l);
          if (peer) banned.insert(*peer);
        }
        lazy.rebuild(topo, banned);
        eager.rebuild(topo, banned);
        break;
      }
      case 1: {  // snapshot capture must agree byte-for-byte
        ASSERT_EQ(encoded_state(lazy), encoded_state(eager)) << "step "
                                                             << step;
        break;
      }
      default: {  // query a random pair
        const NodeId s = hosts[rng.below(hosts.size())];
        NodeId d = s;
        while (d == s) d = hosts[rng.below(hosts.size())];
        ASSERT_EQ(lazy.has_paths(s, d), eager.has_paths(s, d));
        const auto pl = lazy.paths(s, d);
        const auto pe = eager.paths(s, d);
        ASSERT_EQ(pl.size(), pe.size()) << "step " << step;
        for (std::size_t i = 0; i < pl.size(); ++i) {
          ASSERT_EQ(pl[i].links, pe[i].links) << "step " << step;
        }
        break;
      }
    }
  }
  expect_tables_identical(topo, lazy, eager, "final");
  EXPECT_EQ(encoded_state(lazy), encoded_state(eager));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyChurnInterleaving,
                         ::testing::Values(1, 17, 404, 90210));

/// The parallel cold build must match a serial one bit-for-bit, including
/// the PathId values behind the table (interning order is the contract —
/// snapshot images embed behavior, and id-order divergence would betray a
/// scheduling dependence).
TEST(ParallelRouting, ColdBuildMatchesSerialIncludingPathIds) {
  const Topology topo = small_fat_tree();
  const RoutingGraph serial(topo, 4);
  util::ThreadPool pool(4);
  const RoutingGraph parallel(topo, 4, BuildMode::kEager, &pool);

  EXPECT_EQ(parallel.pool().size(), serial.pool().size());
  EXPECT_EQ(parallel.pairs_materialized(), serial.pairs_materialized());
  for (NodeId s : topo.hosts()) {
    for (NodeId d : topo.hosts()) {
      if (s == d) continue;
      const auto ps = serial.paths(s, d);
      const auto pp = parallel.paths(s, d);
      ASSERT_EQ(ps.size(), pp.size());
      for (std::size_t i = 0; i < ps.size(); ++i) {
        ASSERT_EQ(ps.id(i).value(), pp.id(i).value())
            << "pair " << s.value() << "->" << d.value() << " path " << i;
        ASSERT_EQ(ps[i].links, pp[i].links);
      }
    }
  }
  EXPECT_EQ(encoded_state(parallel), encoded_state(serial));
}

TEST(ParallelRouting, MaterializeAllFinishesALazyGraph) {
  const Topology topo = small_fat_tree();
  const auto hosts = topo.hosts();
  const RoutingGraph serial(topo, 4);
  RoutingGraph lazy(topo, 4, BuildMode::kLazy);
  // Partially materialize in an arbitrary order first: materialize_all must
  // only fill the gaps (slot order), never disturb what is already there.
  (void)lazy.paths(hosts[5], hosts[2]);
  (void)lazy.paths(hosts[0], hosts[15]);
  util::ThreadPool pool(4);
  lazy.materialize_all(&pool);
  EXPECT_EQ(lazy.pairs_materialized(), serial.pairs_materialized());
  expect_tables_identical(topo, lazy, serial, "materialize_all");
  EXPECT_EQ(encoded_state(lazy), encoded_state(serial));
}

TEST(PathPoolGeneration, ClearBumpsGeneration) {
  PathPool pool;
  const std::uint32_t g0 = pool.generation();
  (void)pool.intern(Path{{LinkId{1}, LinkId{2}}});
  pool.clear();
  EXPECT_EQ(pool.generation(), g0 + 1);
}

#ifndef NDEBUG
TEST(PathPoolGenerationDeathTest, StaleIdAssertsAfterTopologySwitch) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Topology before = make_two_rack({});
  TwoRackConfig bigger;
  bigger.servers_per_rack = 6;
  const Topology after = make_two_rack(bigger);

  RoutingGraph rg(before, 2);
  const auto hosts = before.hosts();
  const PathId stale = rg.paths(hosts[0], hosts[9]).id(0);
  rg.rebuild(after);  // topology switch: pool cleared, `stale` now dangles
  EXPECT_DEATH((void)rg.path(stale), "stale PathId");
}
#endif

}  // namespace
}  // namespace pythia::net
