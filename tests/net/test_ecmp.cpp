#include "net/ecmp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pythia::net {
namespace {

TEST(EcmpHash, DeterministicAndTupleSensitive) {
  const FiveTuple t{0x0a000001, 0x0a010002, 50060, 31000, 6};
  EXPECT_EQ(EcmpSelector::hash_tuple(t), EcmpSelector::hash_tuple(t));

  FiveTuple t2 = t;
  t2.dst_port = 31001;
  EXPECT_NE(EcmpSelector::hash_tuple(t), EcmpSelector::hash_tuple(t2));

  FiveTuple t3 = t;
  t3.proto = 17;
  EXPECT_NE(EcmpSelector::hash_tuple(t), EcmpSelector::hash_tuple(t3));

  FiveTuple t4 = t;
  t4.src_ip ^= 1;
  EXPECT_NE(EcmpSelector::hash_tuple(t), EcmpSelector::hash_tuple(t4));
}

TEST(EcmpHash, IndexInBounds) {
  for (std::uint16_t port = 0; port < 2000; ++port) {
    const FiveTuple t{1, 2, 50060, port, 6};
    for (const std::size_t n : {1UL, 2UL, 3UL, 7UL}) {
      EXPECT_LT(EcmpSelector::select_index(t, n), n);
    }
  }
}

TEST(EcmpHash, RoughlyBalancedOverEphemeralPorts) {
  // ECMP's whole premise: hashing spreads flows ~evenly over paths.
  constexpr std::size_t kPaths = 2;
  constexpr int kFlows = 20'000;
  std::vector<int> counts(kPaths, 0);
  for (int i = 0; i < kFlows; ++i) {
    const FiveTuple t{0x0a000001, 0x0a010002, 50060,
                      static_cast<std::uint16_t>(30000 + i % 30000), 6};
    ++counts[EcmpSelector::select_index(t, kPaths)];
  }
  const double frac = static_cast<double>(counts[0]) / kFlows;
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(EcmpSelector, SelectsFromRoutingGraph) {
  const Topology topo = make_two_rack({});
  const RoutingGraph routing(topo, 2);
  const EcmpSelector ecmp(routing);
  const auto hosts = topo.hosts();
  const NodeId src = hosts[0];
  const NodeId dst = hosts[9];

  bool saw[2] = {false, false};
  const auto& candidates = routing.paths(src, dst);
  ASSERT_EQ(candidates.size(), 2u);
  for (int i = 0; i < 200; ++i) {
    const FiveTuple t{topo.address_of(src), topo.address_of(dst), 50060,
                      static_cast<std::uint16_t>(30000 + i), 6};
    const Path& p = ecmp.select(src, dst, t);
    EXPECT_TRUE(topo.validate_path(src, dst, p.links));
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (p.links == candidates[k].links) saw[k] = true;
    }
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);  // both inter-rack cables get used
}

TEST(EcmpSelector, StablePathForAFlow) {
  // All packets of one flow hash identically: same tuple -> same path.
  const Topology topo = make_two_rack({});
  const RoutingGraph routing(topo, 2);
  const EcmpSelector ecmp(routing);
  const auto hosts = topo.hosts();
  const FiveTuple t{topo.address_of(hosts[0]), topo.address_of(hosts[9]),
                    50060, 31234, 6};
  const Path& a = ecmp.select(hosts[0], hosts[9], t);
  const Path& b = ecmp.select(hosts[0], hosts[9], t);
  EXPECT_EQ(a.links, b.links);
}

}  // namespace
}  // namespace pythia::net
