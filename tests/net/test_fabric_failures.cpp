// Link-failure behaviour of the fluid fabric and failure-aware routing.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::Duration;
using util::SimTime;

constexpr std::int64_t kGB = 1'000'000'000;

struct TwoPathFixture {
  Topology topo = make_two_rack({});
  RoutingGraph routing{topo, 2};
  sim::Simulation sim;
  Fabric fabric{sim, topo};
  NodeId src, dst;
  const Path* path0;
  const Path* path1;

  TwoPathFixture() {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst = hosts[9];
    path0 = &routing.paths(src, dst)[0];
    path1 = &routing.paths(src, dst)[1];
  }

  FlowId start(const Path& p, std::int64_t bytes, double* done = nullptr) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{bytes};
    spec.path = p.links;
    spec.tuple = FiveTuple{1, 2, kShufflePort, 31000, 6};
    spec.cls = FlowClass::kShuffle;
    return fabric.start_flow(spec, [done](FlowId, SimTime at) {
      if (done != nullptr) *done = at.seconds();
    });
  }
};

TEST(FabricFailure, FailedLinkStarvesFlows) {
  TwoPathFixture f;
  const FlowId flow = f.start(*f.path0, 10 * kGB);
  EXPECT_GT(f.fabric.flow(flow).rate.bps(), 0.0);

  const LinkId inter = f.path0->links[1];
  f.fabric.fail_link(inter);
  EXPECT_FALSE(f.fabric.link_up(inter));
  EXPECT_DOUBLE_EQ(f.fabric.flow(flow).rate.bps(), 0.0);
  EXPECT_DOUBLE_EQ(f.fabric.link_residual_capacity(inter).bps(), 0.0);
  // Flows on the other path are untouched.
  const FlowId other = f.start(*f.path1, 10 * kGB);
  EXPECT_GT(f.fabric.flow(other).rate.bps(), 0.0);
}

TEST(FabricFailure, RestoreResumesTransfer) {
  TwoPathFixture f;
  double done = -1.0;
  f.start(*f.path0, 10 * kGB, &done);  // 10 GB at 10 Gbps = 8 s
  const LinkId inter = f.path0->links[1];

  f.sim.after(Duration::seconds_i(2), [&] { f.fabric.fail_link(inter); });
  f.sim.after(Duration::seconds_i(5), [&] { f.fabric.restore_link(inter); });
  f.sim.run();
  // 2 s of transfer + 3 s stalled + remaining 7.5 GB at 1.25 GB/s = 6 s.
  EXPECT_NEAR(done, 11.0, 1e-6);
}

TEST(FabricFailure, FailIsIdempotent) {
  TwoPathFixture f;
  const LinkId inter = f.path0->links[1];
  f.fabric.fail_link(inter);
  f.fabric.fail_link(inter);
  f.fabric.restore_link(inter);
  f.fabric.restore_link(inter);
  EXPECT_TRUE(f.fabric.link_up(inter));
}

TEST(FabricFailure, FlowsCrossingReportsOnlyUsers) {
  TwoPathFixture f;
  const FlowId on0 = f.start(*f.path0, 10 * kGB);
  const FlowId on1 = f.start(*f.path1, 10 * kGB);
  const LinkId inter0 = f.path0->links[1];
  const auto crossing = f.fabric.flows_crossing(inter0);
  ASSERT_EQ(crossing.size(), 1u);
  EXPECT_EQ(crossing[0], on0);
  (void)on1;
}

TEST(RoutingBanned, KShortestExcludesBannedLinks) {
  TwoPathFixture f;
  const LinkId inter0 = f.path0->links[1];
  const auto paths =
      k_shortest_paths(f.topo, f.src, f.dst, 4, {inter0});
  ASSERT_EQ(paths.size(), 1u);  // only the second cable survives
  EXPECT_EQ(paths[0].links, f.path1->links);
}

TEST(RoutingBanned, RebuildWithBannedShrinksPathSets) {
  TwoPathFixture f;
  const LinkId inter0 = f.path0->links[1];
  f.routing.rebuild(f.topo, {inter0});
  EXPECT_EQ(f.routing.paths(f.src, f.dst).size(), 1u);
  // Same-rack pairs are unaffected.
  const auto hosts = f.topo.hosts();
  EXPECT_EQ(f.routing.paths(hosts[0], hosts[1]).size(), 1u);
  // Rebuild without bans restores both paths.
  f.routing.rebuild(f.topo);
  EXPECT_EQ(f.routing.paths(f.src, f.dst).size(), 2u);
}

}  // namespace
}  // namespace pythia::net
