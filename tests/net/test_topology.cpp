#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace pythia::net {
namespace {

using util::BitsPerSec;

TEST(Topology, AddNodesAndLinks) {
  Topology topo;
  const NodeId h0 = topo.add_host("h0", 0);
  const NodeId s0 = topo.add_switch("s0");
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.node(h0).kind, NodeKind::kHost);
  EXPECT_EQ(topo.node(s0).kind, NodeKind::kSwitch);
  EXPECT_EQ(topo.node(h0).rack, 0);
  EXPECT_EQ(topo.node(s0).rack, -1);

  const LinkId l = topo.add_link(h0, s0, BitsPerSec{1e9});
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(l).src, h0);
  EXPECT_EQ(topo.link(l).dst, s0);
  EXPECT_DOUBLE_EQ(topo.link(l).capacity.bps(), 1e9);
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.add_host("a", 0);
  const NodeId b = topo.add_switch("b");
  topo.add_duplex(a, b, BitsPerSec{1e9});
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_TRUE(topo.find_link(a, b).has_value());
  EXPECT_TRUE(topo.find_link(b, a).has_value());
  EXPECT_FALSE(topo.find_link(a, a).has_value());
}

TEST(Topology, HostsAndSwitchesPartition) {
  const Topology topo = make_two_rack({});
  EXPECT_EQ(topo.hosts().size(), 10u);
  // 2 ToRs + 2 wire switches for the two inter-rack cables.
  EXPECT_EQ(topo.switches().size(), 4u);
}

TEST(Topology, TwoRackShape) {
  TwoRackConfig cfg;
  cfg.servers_per_rack = 3;
  cfg.inter_rack_links = 4;
  const Topology topo = make_two_rack(cfg);
  EXPECT_EQ(topo.hosts().size(), 6u);
  EXPECT_EQ(topo.switches().size(), 2u + 4u);
  // Each host: 2 links; each wire: 4 links; plus ToR sides == total degree.
  // 6 hosts*2 + 4 wires*(2 up + 2 down) = 12 + 16 = 28 directed links.
  EXPECT_EQ(topo.link_count(), 28u);
  // Rack assignment: first 3 hosts rack 0, next 3 rack 1.
  const auto hosts = topo.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(topo.node(hosts[i]).rack, i < 3 ? 0 : 1);
  }
}

TEST(Topology, LeafSpineShape) {
  LeafSpineConfig cfg;
  cfg.racks = 3;
  cfg.servers_per_rack = 2;
  cfg.spines = 4;
  const Topology topo = make_leaf_spine(cfg);
  EXPECT_EQ(topo.hosts().size(), 6u);
  EXPECT_EQ(topo.switches().size(), 3u + 4u);
  // Links: 6 hosts*2 + 3 tors*4 spines*2 = 12 + 24 = 36.
  EXPECT_EQ(topo.link_count(), 36u);
}

TEST(Topology, ValidatePath) {
  const Topology topo = make_two_rack({});
  const auto hosts = topo.hosts();
  const NodeId src = hosts[0];
  const NodeId dst = hosts[7];  // other rack
  // Build a valid path by hand: host->tor0->wire0->tor1->host.
  const auto out = topo.out_links(src);
  ASSERT_EQ(out.size(), 1u);
  const NodeId tor0 = topo.link(out[0]).dst;
  // Find a wire hop.
  std::vector<LinkId> path{out[0]};
  for (LinkId l : topo.out_links(tor0)) {
    const NodeId mid = topo.link(l).dst;
    if (topo.node(mid).kind != NodeKind::kSwitch) continue;
    if (topo.node(mid).rack != -1) continue;  // want a wire switch
    for (LinkId l2 : topo.out_links(mid)) {
      const NodeId tor1 = topo.link(l2).dst;
      if (auto last = topo.find_link(tor1, dst)) {
        path.push_back(l);
        path.push_back(l2);
        path.push_back(*last);
        break;
      }
    }
    if (path.size() == 4) break;
  }
  ASSERT_EQ(path.size(), 4u);
  EXPECT_TRUE(topo.validate_path(src, dst, path));
  EXPECT_FALSE(topo.validate_path(dst, src, path));  // wrong direction
  std::vector<LinkId> broken{path[0], path[2]};      // gap in the chain
  EXPECT_FALSE(topo.validate_path(src, dst, broken));
  EXPECT_TRUE(topo.validate_path(src, src, {}));     // empty loop-path
  EXPECT_FALSE(topo.validate_path(src, dst, {}));
}

TEST(Topology, FatTreeCanonicalShape) {
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  // k=4: 4 pods × (2 edge + 2 agg) + 4 cores = 20 switches, 16 hosts.
  EXPECT_EQ(topo.hosts().size(), 16u);
  EXPECT_EQ(topo.switches().size(), 20u);
  // Directed links: 16 host + 16 edge-agg + 16 agg-core duplex pairs.
  EXPECT_EQ(topo.link_count(), 2u * (16u + 16u + 16u));
  // Racks are pod·(k/2)+edge, contiguous over hosts.
  const auto hosts = topo.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(topo.node(hosts[i]).rack, static_cast<int>(i / 2));
  }
}

TEST(Topology, FatTreeK8Shape) {
  FatTreeConfig cfg;
  cfg.k = 8;
  cfg.hosts_per_edge = 2;  // thinner than canonical k/2 = 4
  const Topology topo = make_fat_tree(cfg);
  // 8 pods × (4 edge + 4 agg) + 16 cores = 80 switches.
  EXPECT_EQ(topo.switches().size(), 80u);
  EXPECT_EQ(topo.hosts().size(), 8u * 4u * 2u);
  // 64 host + 8 pods×16 edge-agg + 8 pods×16 agg-core duplex pairs.
  EXPECT_EQ(topo.link_count(), 2u * (64u + 128u + 128u));
}

TEST(Topology, FatTreeUpDownPathValidates) {
  const Topology topo = make_fat_tree({});
  const auto hosts = topo.hosts();
  const NodeId src = hosts.front();
  const NodeId dst = hosts.back();  // different pod
  // Walk up host→edge→agg→core, then down the same agg index in dst's pod.
  const LinkId up0 = topo.out_links(src)[0];
  const NodeId edge = topo.link(up0).dst;
  NodeId agg;
  LinkId up1{};
  for (LinkId l : topo.out_links(edge)) {
    const Node& n = topo.node(topo.link(l).dst);
    if (n.kind == NodeKind::kSwitch && n.rack == -1) {
      up1 = l;
      agg = topo.link(l).dst;
      break;
    }
  }
  NodeId core;
  LinkId up2{};
  for (LinkId l : topo.out_links(agg)) {
    const Node& n = topo.node(topo.link(l).dst);
    if (n.kind == NodeKind::kSwitch && n.name.starts_with("core-")) {
      up2 = l;
      core = topo.link(l).dst;
      break;
    }
  }
  ASSERT_TRUE(up1.valid());
  ASSERT_TRUE(up2.valid());
  // From the core, find the agg in dst's pod, then the dst edge, then dst.
  const NodeId dst_edge = topo.link(topo.out_links(dst)[0]).dst;
  std::vector<LinkId> path;
  for (LinkId l : topo.out_links(core)) {
    const NodeId agg2 = topo.link(l).dst;
    const auto down_edge = topo.find_link(agg2, dst_edge);
    if (!down_edge) continue;
    const auto last = topo.find_link(dst_edge, dst);
    ASSERT_TRUE(last.has_value());
    path = {up0, up1, up2, l, *down_edge, *last};
    break;
  }
  ASSERT_EQ(path.size(), 6u);
  EXPECT_TRUE(topo.validate_path(src, dst, path));
}

TEST(Topology, FatTreeHostsUnderEdge) {
  const Topology topo = make_fat_tree({});
  const auto hosts = topo.hosts();
  const NodeId edge = topo.link(topo.out_links(hosts[0])[0]).dst;
  const auto under = hosts_under(topo, edge);
  ASSERT_EQ(under.size(), 2u);  // canonical k=4: k/2 hosts per edge
  EXPECT_EQ(under[0], hosts[0]);
  EXPECT_EQ(under[1], hosts[1]);
}

TEST(Topology, AddressEncodesRack) {
  const Topology topo = make_two_rack({});
  const auto hosts = topo.hosts();
  const std::uint32_t a0 = topo.address_of(hosts[0]);
  const std::uint32_t a5 = topo.address_of(hosts[5]);
  EXPECT_EQ(a0 >> 24, 10u);
  EXPECT_EQ((a0 >> 16) & 0xff, 0u);
  EXPECT_EQ((a5 >> 16) & 0xff, 1u);
  EXPECT_NE(a0, topo.address_of(hosts[1]));
}

TEST(Topology, OutLinksDeterministicOrder) {
  const Topology a = make_two_rack({});
  const Topology b = make_two_rack({});
  for (std::size_t n = 0; n < a.node_count(); ++n) {
    const NodeId id{static_cast<std::uint32_t>(n)};
    EXPECT_EQ(a.out_links(id), b.out_links(id));
  }
}

}  // namespace
}  // namespace pythia::net
