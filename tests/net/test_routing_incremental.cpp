// Differential test for the incremental routing rebuild: drive randomized
// link failure/restore sequences and require the incrementally-maintained
// table to be byte-identical, pair by pair, to a twin graph rebuilt from
// scratch after every step. This is the proof obligation behind
// RebuildMode::kIncremental — any divergence here means the reverse index
// missed a pair whose Yen computation a banned/restored link can touch.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/random.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;

/// Compares every host pair of `inc` and `full` by materialized link
/// sequences (ids are pool-local and need not match across graphs).
void expect_tables_identical(const Topology& topo, const RoutingGraph& inc,
                             const RoutingGraph& full, int step) {
  const auto hosts = topo.hosts();
  for (NodeId a : hosts) {
    for (NodeId b : hosts) {
      if (a == b) continue;
      const auto pi = inc.paths(a, b);
      const auto pf = full.paths(a, b);
      ASSERT_EQ(pi.size(), pf.size())
          << "pair " << a.value() << "->" << b.value() << " step " << step;
      for (std::size_t i = 0; i < pi.size(); ++i) {
        ASSERT_EQ(pi[i].links, pf[i].links)
            << "pair " << a.value() << "->" << b.value() << " path " << i
            << " step " << step;
      }
    }
  }
}

/// Runs `steps` random fail/restore events against both rebuild modes plus
/// two lazy graphs (one queried in full each step, one only sparsely).
/// Links fail in duplex pairs (a physical cable takes both directions),
/// which is also what the controller does on handle_link_failure.
void run_churn(const Topology& topo, std::size_t k, std::uint64_t seed,
               int steps) {
  RoutingGraph inc(topo, k);
  RoutingGraph full(topo, k);
  // `lazy` is fully compared (and therefore fully materialized) every step;
  // `sparse` only ever sees a handful of random queries per step, so its
  // invalidate-on-rebuild path stays partially materialized throughout.
  RoutingGraph lazy(topo, k, BuildMode::kLazy);
  RoutingGraph sparse(topo, k, BuildMode::kLazy);
  util::Xoshiro256 rng(seed);

  // Only switch-switch cables fail: losing a host's single access link just
  // disconnects it, which is legal but uninteresting churn.
  std::vector<LinkId> cables;
  for (const auto& link : topo.links()) {
    if (topo.node(link.src).kind == NodeKind::kSwitch &&
        topo.node(link.dst).kind == NodeKind::kSwitch) {
      cables.push_back(link.id);
    }
  }
  ASSERT_FALSE(cables.empty());

  std::unordered_set<LinkId> banned;
  for (int step = 0; step < steps; ++step) {
    const LinkId l = cables[rng.below(cables.size())];
    const auto peer = topo.find_link(topo.link(l).dst, topo.link(l).src);
    if (banned.contains(l)) {
      banned.erase(l);
      if (peer) banned.erase(*peer);
    } else {
      banned.insert(l);
      if (peer) banned.insert(*peer);
    }
    inc.rebuild(topo, banned, RebuildMode::kIncremental);
    full.rebuild(topo, banned, RebuildMode::kFull);
    lazy.rebuild(topo, banned, RebuildMode::kIncremental);
    sparse.rebuild(topo, banned, RebuildMode::kIncremental);
    expect_tables_identical(topo, inc, full, step);
    expect_tables_identical(topo, lazy, full, step);
    const auto hosts = topo.hosts();
    for (int q = 0; q < 4; ++q) {
      const NodeId a = hosts[rng.below(hosts.size())];
      NodeId b = a;
      while (b == a) b = hosts[rng.below(hosts.size())];
      const auto ps = sparse.paths(a, b);
      const auto pf = full.paths(a, b);
      ASSERT_EQ(ps.size(), pf.size()) << "sparse step " << step;
      for (std::size_t i = 0; i < ps.size(); ++i) {
        ASSERT_EQ(ps[i].links, pf[i].links) << "sparse step " << step;
      }
    }
  }
  EXPECT_EQ(inc.counters().incremental_rebuilds,
            static_cast<std::uint64_t>(steps));
  // The point of the exercise: the incremental graph skipped real work.
  EXPECT_GT(inc.counters().pairs_reused, 0u);
  EXPECT_LT(inc.counters().pairs_recomputed,
            full.counters().pairs_recomputed);
  // And the sparse lazy graph never paid for pairs nobody asked about.
  EXPECT_LT(sparse.pairs_materialized(), lazy.pairs_materialized());
  // Final sweep: the sparse graph, fully queried now, agrees everywhere.
  expect_tables_identical(topo, sparse, full, steps);
}

class FatTreeChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FatTreeChurn, IncrementalMatchesFullRebuild) {
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  run_churn(topo, 4, GetParam(), 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FatTreeChurn,
                         ::testing::Values(1, 7, 42, 1234, 99999));

class LeafSpineChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeafSpineChurn, IncrementalMatchesFullRebuild) {
  LeafSpineConfig cfg;
  cfg.racks = 4;
  cfg.servers_per_rack = 3;
  cfg.spines = 3;
  const Topology topo = make_leaf_spine(cfg);
  run_churn(topo, 8, GetParam(), 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafSpineChurn,
                         ::testing::Values(3, 17, 2026));

TEST(FatTreeChurnDeep, ManyStepsOneSeed) {
  // One long trajectory: repeated fail/restore cycles exercise the restore
  // lower-bound pruning (stale long candidates, starved pairs) repeatedly.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  run_churn(topo, 4, 0xC0FFEE, 40);
}

}  // namespace
}  // namespace pythia::net
