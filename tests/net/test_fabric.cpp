#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::Duration;
using util::SimTime;

constexpr std::int64_t kGB = 1'000'000'000;

/// host0 -- sw -- host1, all links `cap`.
struct Chain {
  Topology topo;
  NodeId h0, h1, sw;
  Path forward;

  explicit Chain(double cap_bps = 8e9) {
    h0 = topo.add_host("h0", 0);
    h1 = topo.add_host("h1", 1);
    sw = topo.add_switch("sw");
    topo.add_duplex(h0, sw, BitsPerSec{cap_bps});
    topo.add_duplex(sw, h1, BitsPerSec{cap_bps});
    forward = *shortest_path(topo, h0, h1);
  }
};

FlowSpec make_flow(const Chain& c, std::int64_t bytes,
                   std::uint16_t dst_port = 1000) {
  FlowSpec spec;
  spec.src = c.h0;
  spec.dst = c.h1;
  spec.size = Bytes{bytes};
  spec.path = c.forward.links;
  spec.tuple = FiveTuple{1, 2, kShufflePort, dst_port, 6};
  spec.cls = FlowClass::kShuffle;
  return spec;
}

TEST(Fabric, SingleFlowAnalyticCompletion) {
  Chain c;  // 8 Gbps end to end
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  SimTime done;
  fabric.start_flow(make_flow(c, kGB),
                    [&](FlowId, SimTime at) { done = at; });
  sim.run();
  // 1 GB at 8 Gbps (1 GB/s) == 1 s.
  EXPECT_NEAR(done.seconds(), 1.0, 1e-6);
  EXPECT_EQ(fabric.flows_completed(), 1u);
  EXPECT_EQ(fabric.bytes_delivered().count(), kGB);
}

TEST(Fabric, TwoEqualFlowsShareFairly) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    fabric.start_flow(make_flow(c, kGB, static_cast<std::uint16_t>(i)),
                      [&](FlowId, SimTime at) { done.push_back(at.seconds()); });
  }
  // While both are active each gets half.
  for (FlowId id : fabric.active_flows()) {
    EXPECT_NEAR(fabric.flow(id).rate.bps(), 4e9, 1.0);
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(Fabric, ShortFlowReleasesBandwidth) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  double long_done = 0.0;
  double short_done = 0.0;
  fabric.start_flow(make_flow(c, kGB, 1),
                    [&](FlowId, SimTime at) { long_done = at.seconds(); });
  fabric.start_flow(make_flow(c, kGB / 2, 2),
                    [&](FlowId, SimTime at) { short_done = at.seconds(); });
  sim.run();
  // Shared 0.5 GB/s each until the 0.5 GB flow drains at t=1; the 1 GB flow
  // then finishes its remaining 0.5 GB at full 1 GB/s: t=1.5.
  EXPECT_NEAR(short_done, 1.0, 1e-6);
  EXPECT_NEAR(long_done, 1.5, 1e-6);
}

TEST(Fabric, MaxMinAcrossTwoBottlenecks) {
  // link1 (8 Gbps): flows A and B; link2 (4 Gbps): flows A and C.
  Topology topo;
  const NodeId n0 = topo.add_host("n0", 0);
  const NodeId n1 = topo.add_switch("n1");
  const NodeId n2 = topo.add_switch("n2");
  const NodeId n3 = topo.add_host("n3", 1);
  const LinkId l1 = topo.add_link(n0, n1, BitsPerSec{8e9});
  const LinkId l12 = topo.add_link(n1, n2, BitsPerSec{100e9});
  const LinkId l2 = topo.add_link(n2, n3, BitsPerSec{4e9});

  sim::Simulation sim;
  Fabric fabric(sim, topo);
  auto start = [&](std::vector<LinkId> path, std::uint16_t port) {
    FlowSpec spec;
    spec.src = topo.link(path.front()).src;
    spec.dst = topo.link(path.back()).dst;
    spec.size = Bytes{100 * kGB};  // long-lived
    spec.path = std::move(path);
    spec.tuple = FiveTuple{1, 2, port, port, 6};
    return fabric.start_flow(spec);
  };
  const FlowId a = start({l1, l12, l2}, 1);
  const FlowId b = start({l1, l12}, 2);  // ends at n2: model as switch sink
  const FlowId cfl = start({l2}, 3);

  // Water-filling: bottleneck link2 share = 4/2 = 2 Gbps fixes A and C;
  // then B alone gets link1's residual 8 - 2 = 6 Gbps.
  EXPECT_NEAR(fabric.flow(a).rate.bps(), 2e9, 1.0);
  EXPECT_NEAR(fabric.flow(cfl).rate.bps(), 2e9, 1.0);
  EXPECT_NEAR(fabric.flow(b).rate.bps(), 6e9, 1.0);

  EXPECT_NEAR(fabric.link_elastic_rate(l1).bps(), 8e9, 1.0);
  EXPECT_NEAR(fabric.link_elastic_rate(l2).bps(), 4e9, 1.0);
  EXPECT_NEAR(fabric.link_utilization(l1), 1.0, 1e-9);
}

TEST(Fabric, CbrReducesElasticShare) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  fabric.start_cbr(c.forward.links, BitsPerSec{6e9});
  double done = 0.0;
  fabric.start_flow(make_flow(c, kGB),
                    [&](FlowId, SimTime at) { done = at.seconds(); });
  // Elastic flow gets 8 - 6 = 2 Gbps -> 0.25 GB/s -> 4 s for 1 GB.
  sim.run();
  EXPECT_NEAR(done, 4.0, 1e-6);
  EXPECT_NEAR(fabric.link_cbr_load(c.forward.links[0]).bps(), 6e9, 1.0);
  EXPECT_NEAR(fabric.link_residual_capacity(c.forward.links[0]).bps(), 2e9,
              1.0);
}

TEST(Fabric, CbrOverloadStarvesUntilReleased) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  const CbrId cbr = fabric.start_cbr(c.forward.links, BitsPerSec{9e9});
  double done = -1.0;
  const FlowId f = fabric.start_flow(
      make_flow(c, kGB), [&](FlowId, SimTime at) { done = at.seconds(); });
  EXPECT_DOUBLE_EQ(fabric.flow(f).rate.bps(), 0.0);
  EXPECT_DOUBLE_EQ(fabric.link_residual_capacity(c.forward.links[0]).bps(),
                   0.0);

  // Release the UDP blast at t=2s; flow then finishes 1 GB at 1 GB/s.
  sim.after(Duration::seconds_i(2), [&] { fabric.stop_cbr(cbr); });
  sim.run();
  EXPECT_NEAR(done, 3.0, 1e-6);
}

TEST(Fabric, UtilizationClampedUnderCbrOverload) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  fabric.start_cbr(c.forward.links, BitsPerSec{20e9});
  EXPECT_DOUBLE_EQ(fabric.link_utilization(c.forward.links[0]), 1.0);
}

TEST(Fabric, RerouteMovesTraffic) {
  // Diamond with a slow and a fast branch.
  Topology topo;
  const NodeId a = topo.add_host("a", 0);
  const NodeId b = topo.add_host("b", 1);
  const NodeId x = topo.add_switch("x");
  const NodeId y = topo.add_switch("y");
  const LinkId ax = topo.add_link(a, x, BitsPerSec{1e9});
  const LinkId xb = topo.add_link(x, b, BitsPerSec{1e9});
  const LinkId ay = topo.add_link(a, y, BitsPerSec{8e9});
  const LinkId yb = topo.add_link(y, b, BitsPerSec{8e9});

  sim::Simulation sim;
  Fabric fabric(sim, topo);
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = Bytes{kGB};
  spec.path = {ax, xb};
  spec.tuple = FiveTuple{1, 2, 3, 4, 6};
  double done = 0.0;
  const FlowId f = fabric.start_flow(
      spec, [&](FlowId, SimTime at) { done = at.seconds(); });

  // After 2 s on the 1 Gbps branch (0.25 GB moved), hop to the 8 Gbps one.
  sim.after(Duration::seconds_i(2), [&] { fabric.reroute_flow(f, {ay, yb}); });
  sim.run();
  // Remaining 0.75 GB at 1 GB/s -> completes at 2.75 s.
  EXPECT_NEAR(done, 2.75, 1e-6);
  EXPECT_DOUBLE_EQ(fabric.link_elastic_rate(ax).bps(), 0.0);
}

TEST(Fabric, ZeroByteFlowCompletesAsync) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  bool done = false;
  fabric.start_flow(make_flow(c, 0), [&](FlowId, SimTime) { done = true; });
  EXPECT_FALSE(done);  // async, via the queue
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(fabric.flows_completed(), 1u);
}

class CountingObserver final : public FabricObserver {
 public:
  std::int64_t moved = 0;
  int started = 0;
  int completed = 0;
  void on_flow_started(const Fabric&, FlowId, SimTime) override { ++started; }
  void on_bytes_moved(const Fabric&, FlowId, Bytes b, SimTime,
                      SimTime) override {
    moved += b.count();
  }
  void on_flow_completed(const Fabric&, FlowId, SimTime) override {
    ++completed;
  }
};

TEST(Fabric, ObserverSeesConservedBytes) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  CountingObserver obs;
  fabric.add_observer(&obs);
  fabric.start_flow(make_flow(c, kGB, 1));
  fabric.start_flow(make_flow(c, kGB / 4, 2));
  sim.run();
  EXPECT_EQ(obs.started, 2);
  EXPECT_EQ(obs.completed, 2);
  // Settle-granular accounting must conserve volume (rounding < 1 KB).
  EXPECT_NEAR(static_cast<double>(obs.moved),
              static_cast<double>(kGB + kGB / 4), 1e3);
}

TEST(Fabric, FlowStateAccessors) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  const FlowId f = fabric.start_flow(make_flow(c, kGB));
  EXPECT_TRUE(fabric.flow_active(f));
  EXPECT_EQ(fabric.active_flow_count(), 1u);
  EXPECT_EQ(fabric.flow(f).spec.size.count(), kGB);
  sim.run();
  EXPECT_FALSE(fabric.flow_active(f));
  EXPECT_TRUE(fabric.flow(f).completed);
  EXPECT_EQ(fabric.active_flow_count(), 0u);
  EXPECT_NEAR(fabric.flow(f).completed_at.seconds(), 1.0, 1e-6);
}

TEST(Fabric, CompletionCallbackCanStartNewFlow) {
  Chain c;
  sim::Simulation sim;
  Fabric fabric(sim, c.topo);
  double second_done = 0.0;
  fabric.start_flow(make_flow(c, kGB, 1), [&](FlowId, SimTime) {
    fabric.start_flow(make_flow(c, kGB, 2), [&](FlowId, SimTime at) {
      second_done = at.seconds();
    });
  });
  sim.run();
  EXPECT_NEAR(second_done, 2.0, 1e-6);
  EXPECT_EQ(fabric.flows_completed(), 2u);
}

}  // namespace
}  // namespace pythia::net
