// Property-based validation of the fluid max-min allocator: on randomized
// leaf-spine topologies with randomized flow sets and CBR background, the
// computed rates must satisfy the defining properties of a max-min fair
// allocation.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;

struct Params {
  std::uint64_t seed;
  std::size_t spines;
  std::size_t flows;
  double cbr_fraction;  // of one uplink's capacity
  bool weighted = false;  // draw per-flow weights in [0.5, 4]
};

class MaxMinProperty : public ::testing::TestWithParam<Params> {};

TEST_P(MaxMinProperty, AllocationIsMaxMinFair) {
  const Params p = GetParam();
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 3;
  cfg.spines = p.spines;
  cfg.host_link = BitsPerSec{10e9};
  cfg.uplink = BitsPerSec{10e9};
  const Topology topo = make_leaf_spine(cfg);
  const RoutingGraph routing(topo, p.spines);

  sim::Simulation sim(p.seed);
  Fabric fabric(sim, topo);
  util::Xoshiro256 rng(p.seed);

  const auto hosts = topo.hosts();
  // Optional CBR on a random cross-rack path.
  if (p.cbr_fraction > 0.0) {
    const auto& paths = routing.paths(hosts[0], hosts[4]);
    ASSERT_FALSE(paths.empty());
    fabric.start_cbr(paths[0].links, BitsPerSec{10e9 * p.cbr_fraction});
  }

  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < p.flows; ++i) {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    ASSERT_FALSE(paths.empty());
    const auto& path = paths[rng.below(paths.size())];
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{static_cast<std::int64_t>(1e12)};  // long-lived
    spec.path = path.links;
    spec.tuple = FiveTuple{static_cast<std::uint32_t>(i), 0, 0,
                           static_cast<std::uint16_t>(i), 6};
    spec.weight = p.weighted ? rng.uniform(0.5, 4.0) : 1.0;
    flows.push_back(fabric.start_flow(spec));
  }

  // Property 1: every rate is nonnegative.
  for (FlowId f : flows) {
    EXPECT_GE(fabric.flow(f).rate.bps(), 0.0);
  }

  // Property 2: no link carries more elastic traffic than its residual
  // capacity (capacity minus CBR, floored at zero).
  constexpr double kEps = 1e-3;  // absolute bps tolerance
  for (const auto& link : topo.links()) {
    const double residual = fabric.link_residual_capacity(link.id).bps();
    EXPECT_LE(fabric.link_elastic_rate(link.id).bps(), residual + kEps)
        << "link " << link.id.value();
  }

  // Property 3 (weighted max-min): every flow has a bottleneck link — a
  // link on its path that is saturated and on which no other flow has a
  // strictly larger *weight-normalized* rate. (Weight 1 everywhere makes
  // this the standard max-min characterization.)
  for (FlowId f : flows) {
    const auto& flow = fabric.flow(f);
    bool has_bottleneck = false;
    for (LinkId l : flow.spec.path) {
      const double residual = fabric.link_residual_capacity(l).bps();
      const double used = fabric.link_elastic_rate(l).bps();
      const bool saturated = used >= residual - 1.0;  // 1 bps slack
      if (!saturated) continue;
      bool is_max_on_link = true;
      const double norm = flow.rate.bps() / flow.spec.weight;
      for (FlowId g : flows) {
        if (g == f) continue;
        const auto& other = fabric.flow(g);
        const bool crosses = std::find(other.spec.path.begin(),
                                       other.spec.path.end(),
                                       l) != other.spec.path.end();
        if (crosses &&
            other.rate.bps() / other.spec.weight > norm + kEps) {
          is_max_on_link = false;
          break;
        }
      }
      if (is_max_on_link) {
        has_bottleneck = true;
        break;
      }
    }
    // Starved flows (zero residual somewhere on the path) trivially satisfy
    // max-min; otherwise a bottleneck must exist.
    if (flow.rate.bps() > kEps) {
      EXPECT_TRUE(has_bottleneck) << "flow " << f.value();
    }
  }

  // Property 4: determinism — rebuilding the identical scenario yields
  // identical rates.
  sim::Simulation sim2(p.seed);
  Fabric fabric2(sim2, topo);
  util::Xoshiro256 rng2(p.seed);
  if (p.cbr_fraction > 0.0) {
    const auto& paths = routing.paths(hosts[0], hosts[4]);
    fabric2.start_cbr(paths[0].links, BitsPerSec{10e9 * p.cbr_fraction});
  }
  std::vector<FlowId> flows2;
  for (std::size_t i = 0; i < p.flows; ++i) {
    const NodeId src = hosts[rng2.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng2.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    const auto& path = paths[rng2.below(paths.size())];
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{static_cast<std::int64_t>(1e12)};
    spec.path = path.links;
    spec.tuple = FiveTuple{static_cast<std::uint32_t>(i), 0, 0,
                           static_cast<std::uint16_t>(i), 6};
    spec.weight = p.weighted ? rng2.uniform(0.5, 4.0) : 1.0;
    flows2.push_back(fabric2.start_flow(spec));
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(fabric.flow(flows[i]).rate.bps(),
                     fabric2.flow(flows2[i]).rate.bps());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxMinProperty,
    ::testing::Values(
        Params{1, 2, 4, 0.0}, Params{2, 2, 12, 0.0}, Params{3, 2, 12, 0.6},
        Params{4, 3, 20, 0.0}, Params{5, 3, 20, 0.9}, Params{6, 4, 40, 0.5},
        Params{7, 2, 1, 0.95}, Params{8, 4, 64, 0.0}, Params{9, 4, 64, 0.8},
        Params{10, 2, 30, 0.3}, Params{11, 2, 20, 0.0, true},
        Params{12, 3, 40, 0.6, true}, Params{13, 4, 64, 0.5, true}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_spines" +
             std::to_string(info.param.spines) + "_flows" +
             std::to_string(info.param.flows) + "_cbr" +
             std::to_string(static_cast<int>(info.param.cbr_fraction * 100)) +
             (info.param.weighted ? "_weighted" : "");
    });

}  // namespace
}  // namespace pythia::net
