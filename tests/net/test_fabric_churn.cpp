// Churn property test: under randomized flow arrivals, CBR toggles, link
// failures/restores and reroutes, the fluid fabric must conserve bytes and
// deliver every flow once the network quiesces.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::Duration;
using util::SimTime;

struct ChurnParams {
  std::uint64_t seed;
  std::size_t flows;
  bool with_cbr;
  bool with_failures;
};

class FabricChurn : public ::testing::TestWithParam<ChurnParams> {};

class ByteLedger final : public FabricObserver {
 public:
  std::int64_t moved = 0;
  std::uint64_t completed = 0;
  void on_bytes_moved(const Fabric&, FlowId, Bytes b, SimTime,
                      SimTime) override {
    moved += b.count();
  }
  void on_flow_completed(const Fabric&, FlowId, SimTime) override {
    ++completed;
  }
};

TEST_P(FabricChurn, ConservesBytesAndDrains) {
  const ChurnParams p = GetParam();
  const Topology topo = make_two_rack({});
  const RoutingGraph routing(topo, 2);
  sim::Simulation sim(p.seed);
  Fabric fabric(sim, topo);
  ByteLedger ledger;
  fabric.add_observer(&ledger);
  util::Xoshiro256 rng(p.seed);
  const auto hosts = topo.hosts();

  // Random flow arrivals over the first 10 simulated seconds.
  std::int64_t total_bytes = 0;
  for (std::size_t i = 0; i < p.flows; ++i) {
    const auto at = SimTime::from_seconds(rng.uniform(0.0, 10.0));
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto bytes =
        static_cast<std::int64_t>(rng.uniform(1e6, 2e9));
    total_bytes += bytes;
    const auto path_choice = rng.below(4);
    sim.at(at, [&fabric, &routing, src, dst, bytes, path_choice, i] {
      const auto& paths = routing.paths(src, dst);
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{bytes};
      spec.path = paths[path_choice % paths.size()].links;
      spec.tuple = FiveTuple{static_cast<std::uint32_t>(i), 1, kShufflePort,
                             static_cast<std::uint16_t>(i), 6};
      spec.cls = FlowClass::kShuffle;
      fabric.start_flow(spec);
    });
  }

  // CBR bursts that come and go.
  if (p.with_cbr) {
    const auto& paths = routing.paths(hosts[0], hosts[9]);
    std::vector<LinkId> chain{paths[0].links.begin() + 1,
                              paths[0].links.end() - 1};
    sim.at(SimTime::from_seconds(1.0), [&fabric, chain] {
      const CbrId id = fabric.start_cbr(chain, BitsPerSec{9e9});
      fabric.simulation().after(Duration::seconds_i(6),
                                [&fabric, id] { fabric.stop_cbr(id); });
    });
  }

  // A mid-run inter-rack failure with recovery; stranded flows hop paths.
  if (p.with_failures) {
    const auto& paths = routing.paths(hosts[0], hosts[9]);
    const LinkId victim = paths[1].links[1];
    sim.at(SimTime::from_seconds(3.0), [&fabric, &routing, victim, &hosts] {
      fabric.fail_link(victim);
      for (FlowId f : fabric.flows_crossing(victim)) {
        const auto& flow = fabric.flow(f);
        const auto& alts = routing.paths(flow.spec.src, flow.spec.dst);
        fabric.reroute_flow(f, alts[0].links);
      }
      (void)hosts;
    });
    sim.at(SimTime::from_seconds(7.0),
           [&fabric, victim] { fabric.restore_link(victim); });
  }

  sim.run();

  // Everything delivered, exactly once, with conserved volume.
  EXPECT_EQ(fabric.flows_completed(), p.flows);
  EXPECT_EQ(ledger.completed, p.flows);
  EXPECT_EQ(fabric.active_flow_count(), 0u);
  EXPECT_EQ(fabric.bytes_delivered().count(), total_bytes);
  // Settle-granular observer accounting: within 1 byte per settle interval.
  EXPECT_NEAR(static_cast<double>(ledger.moved),
              static_cast<double>(total_bytes), 1e5);
  // No residual rates.
  for (const auto& link : topo.links()) {
    EXPECT_DOUBLE_EQ(fabric.link_elastic_rate(link.id).bps(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FabricChurn,
    ::testing::Values(ChurnParams{1, 10, false, false},
                      ChurnParams{2, 50, true, false},
                      ChurnParams{3, 50, false, true},
                      ChurnParams{4, 120, true, true},
                      ChurnParams{5, 250, true, true},
                      ChurnParams{6, 30, true, true}),
    [](const auto& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_f" +
             std::to_string(p.flows) + (p.with_cbr ? "_cbr" : "") +
             (p.with_failures ? "_fail" : "");
    });

}  // namespace
}  // namespace pythia::net
