// Regression tests for the fabric accounting bugs: settle() byte-rounding
// drift, zero-byte flows skipping on_flow_started, link_utilization on
// failed/zero-capacity links, and a randomized byte-conservation property
// (Σ observer bytes == Σ completed spec.size).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::Duration;
using util::SimTime;

/// Accumulates per-flow observer bytes and start/complete pairing.
class AccountingProbe : public FabricObserver {
 public:
  void on_flow_started(const Fabric&, FlowId, SimTime) override { ++starts_; }
  void on_bytes_moved(const Fabric&, FlowId, Bytes moved, SimTime,
                      SimTime) override {
    total_moved_ += moved.count();
  }
  void on_flow_completed(const Fabric& fabric, FlowId flow,
                         SimTime) override {
    ++completions_;
    completed_size_ += fabric.flow(flow).spec.size.count();
  }

  std::uint64_t starts_ = 0;
  std::uint64_t completions_ = 0;
  std::int64_t total_moved_ = 0;
  std::int64_t completed_size_ = 0;
};

TEST(FabricAccounting, SettleResidueSumsExactly) {
  // Regression: settle() used to round each interval's bytes independently
  // (int64(moved + 0.5)), so many short settle intervals drifted the
  // cumulative observer total away from spec.size. A size chosen to produce
  // a recurring fractional rate across many forced settles must still sum
  // exactly.
  const Topology topo = make_two_rack({});
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  AccountingProbe probe;
  fabric.add_observer(&probe);

  const auto hosts = topo.hosts();
  const RoutingGraph routing(topo, 2);
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[5];
  spec.size = Bytes{1'000'000'007};  // prime: never divides evenly
  spec.path = routing.paths(spec.src, spec.dst)[0].links;
  fabric.start_flow(spec);

  // Force hundreds of settle points at awkward intervals.
  for (int i = 1; i <= 700; ++i) {
    sim.at(SimTime{i * 1'000'003LL}, [&fabric] {
      fabric.settle_and_recompute();
    });
  }
  sim.run();

  EXPECT_EQ(probe.completions_, 1u);
  EXPECT_EQ(probe.total_moved_, spec.size.count());  // exact, no tolerance
}

TEST(FabricAccounting, ZeroByteFlowFiresStartBeforeCompletion) {
  // Regression: zero-byte flows used to fire on_flow_completed without ever
  // firing on_flow_started, breaking observers that key state on the start.
  class PairingProbe : public FabricObserver {
   public:
    void on_flow_started(const Fabric&, FlowId f, SimTime) override {
      started_.push_back(f);
    }
    void on_flow_completed(const Fabric&, FlowId f, SimTime) override {
      // The start must already have been seen for this id.
      bool seen = false;
      for (FlowId s : started_) seen = seen || s == f;
      EXPECT_TRUE(seen) << "completion without start for flow " << f.value();
      ++completions_;
    }
    std::vector<FlowId> started_;
    int completions_ = 0;
  };

  const Topology topo = make_two_rack({});
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  PairingProbe probe;
  fabric.add_observer(&probe);

  const auto hosts = topo.hosts();
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[0];
  spec.size = Bytes::zero();
  bool callback_ran = false;
  fabric.start_flow(spec, [&](FlowId, SimTime) { callback_ran = true; });
  EXPECT_EQ(probe.started_.size(), 1u);   // start fires synchronously
  EXPECT_EQ(probe.completions_, 0);       // completion stays deferred
  sim.run();
  EXPECT_EQ(probe.completions_, 1);
  EXPECT_TRUE(callback_ran);
}

TEST(FabricAccounting, FailedLinkReportsZeroUtilization) {
  // Regression: link_utilization ignored link_up_, so a failed link kept
  // reporting its stale pre-failure utilization.
  const Topology topo = make_two_rack({});
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  const auto hosts = topo.hosts();
  const RoutingGraph routing(topo, 2);
  const auto& path = routing.paths(hosts[0], hosts[5])[0];
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[5];
  spec.size = Bytes{50'000'000'000};
  spec.path = path.links;
  fabric.start_flow(spec);

  const LinkId mid = path.links[1];
  EXPECT_GT(fabric.link_utilization(mid), 0.9);  // saturated by the flow
  fabric.fail_link(mid);
  EXPECT_EQ(fabric.link_utilization(mid), 0.0);
  fabric.restore_link(mid);
  EXPECT_GT(fabric.link_utilization(mid), 0.9);  // flow resumes
}

TEST(FabricAccounting, ByteConservationAcrossRandomizedChurn) {
  // Property: over a randomized seeded run with staggered finite flows,
  // the sum of bytes reported to observers equals the sum of completed flow
  // sizes exactly, and matches the fabric's own delivered counter.
  for (const std::uint64_t seed : {3u, 17u, 99u, 2026u}) {
    LeafSpineConfig cfg;
    cfg.racks = 2;
    cfg.servers_per_rack = 4;
    cfg.spines = 2;
    const Topology topo = make_leaf_spine(cfg);
    const RoutingGraph routing(topo, cfg.spines);
    sim::Simulation sim(seed);
    Fabric fabric(sim, topo);
    AccountingProbe probe;
    fabric.add_observer(&probe);
    util::Xoshiro256 rng(seed);
    const auto hosts = topo.hosts();

    constexpr int kFlows = 50;
    for (int i = 0; i < kFlows; ++i) {
      const NodeId src = hosts[rng.below(hosts.size())];
      NodeId dst = src;
      while (dst == src) dst = hosts[rng.below(hosts.size())];
      const auto& paths = routing.paths(src, dst);
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{static_cast<std::int64_t>(1 + rng.below(300'000'000))};
      spec.path = paths[rng.below(paths.size())].links;
      spec.weight = rng.uniform(0.5, 3.0);
      sim.at(SimTime{static_cast<std::int64_t>(rng.below(1'500'000'000))},
             [&fabric, spec] { fabric.start_flow(spec); });
    }
    sim.run();

    EXPECT_EQ(probe.starts_, static_cast<std::uint64_t>(kFlows));
    EXPECT_EQ(probe.completions_, static_cast<std::uint64_t>(kFlows));
    EXPECT_EQ(probe.total_moved_, probe.completed_size_) << "seed " << seed;
    EXPECT_EQ(fabric.bytes_delivered().count(), probe.completed_size_);
  }
}

TEST(FabricAccounting, SlotRecyclingBoundsStorage) {
  // Sequential flows reuse the same slot instead of growing flows_ forever.
  const Topology topo = make_two_rack({});
  sim::Simulation sim;
  Fabric fabric(sim, topo);
  const auto hosts = topo.hosts();
  const RoutingGraph routing(topo, 2);
  const auto path = routing.paths(hosts[0], hosts[5])[0].links;

  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec;
    spec.src = hosts[0];
    spec.dst = hosts[5];
    spec.size = Bytes{1'000'000};
    spec.path = path;
    slots.push_back(fabric.start_flow(spec).value());
    sim.run();  // drain to completion before the next start
  }
  EXPECT_EQ(fabric.flows_completed(), 20u);
  // All 20 sequential flows occupied one recycled slot.
  for (std::uint32_t s : slots) EXPECT_EQ(s, slots[0]);
}

}  // namespace
}  // namespace pythia::net
