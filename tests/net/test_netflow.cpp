#include "net/netflow.hpp"

#include <gtest/gtest.h>

#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::SimTime;

constexpr std::int64_t kGB = 1'000'000'000;

struct Fixture {
  Topology topo;
  NodeId h0, h1;
  Path forward;
  sim::Simulation sim;
  std::unique_ptr<Fabric> fabric;
  NetFlowProbe probe;

  Fixture() {
    h0 = topo.add_host("h0", 0);
    h1 = topo.add_host("h1", 1);
    const NodeId sw = topo.add_switch("sw");
    topo.add_duplex(h0, sw, BitsPerSec{8e9});
    topo.add_duplex(sw, h1, BitsPerSec{8e9});
    forward = *shortest_path(topo, h0, h1);
    fabric = std::make_unique<Fabric>(sim, topo);
    fabric->add_observer(&probe);
  }

  FlowId start(std::int64_t bytes, std::uint16_t src_port) {
    FlowSpec spec;
    spec.src = h0;
    spec.dst = h1;
    spec.size = Bytes{bytes};
    spec.path = forward.links;
    spec.tuple = FiveTuple{1, 2, src_port, 30000, 6};
    spec.cls = FlowClass::kShuffle;
    return fabric->start_flow(spec);
  }
};

TEST(NetFlow, AccountsShufflePortTraffic) {
  Fixture f;
  f.start(kGB, kShufflePort);
  f.sim.run();
  EXPECT_NEAR(f.probe.sourced_bytes(f.h0).as_double(), kGB, 1e3);
  EXPECT_EQ(f.probe.flows_observed(), 1u);
  EXPECT_EQ(f.probe.observed_sources().size(), 1u);
}

TEST(NetFlow, FiltersOtherPorts) {
  Fixture f;
  f.start(kGB, 1234);  // not the shuffle port
  f.sim.run();
  EXPECT_EQ(f.probe.sourced_bytes(f.h0).count(), 0);
  EXPECT_EQ(f.probe.flows_observed(), 0u);
  EXPECT_TRUE(f.probe.curve(f.h0).empty());
}

TEST(NetFlow, ZeroFilterSeesEverything) {
  Fixture f;
  NetFlowProbe all(0);
  f.fabric->add_observer(&all);
  f.start(kGB / 2, 1234);
  f.sim.run();
  EXPECT_NEAR(all.sourced_bytes(f.h0).as_double(), kGB / 2, 1e3);
}

TEST(NetFlow, CurveIsMonotone) {
  Fixture f;
  f.start(kGB, kShufflePort);
  f.start(kGB / 2, kShufflePort);
  f.sim.run();
  const auto& curve = f.probe.curve(f.h0);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].at, curve[i - 1].at);
    EXPECT_GE(curve[i].cumulative, curve[i - 1].cumulative);
  }
  EXPECT_NEAR(curve.back().cumulative.as_double(), 1.5 * kGB, 1e3);
}

TEST(NetFlow, CurveValueInterpolates) {
  std::vector<VolumePoint> curve{
      {SimTime::from_seconds(1.0), Bytes{100}},
      {SimTime::from_seconds(3.0), Bytes{300}},
  };
  EXPECT_DOUBLE_EQ(curve_value_at(curve, SimTime::from_seconds(0.5)), 0.0);
  EXPECT_DOUBLE_EQ(curve_value_at(curve, SimTime::from_seconds(1.0)), 100.0);
  EXPECT_DOUBLE_EQ(curve_value_at(curve, SimTime::from_seconds(2.0)), 200.0);
  EXPECT_DOUBLE_EQ(curve_value_at(curve, SimTime::from_seconds(9.0)), 300.0);
  EXPECT_DOUBLE_EQ(curve_value_at({}, SimTime::from_seconds(1.0)), 0.0);
}

TEST(NetFlow, TimeToReach) {
  std::vector<VolumePoint> curve{
      {SimTime::from_seconds(1.0), Bytes{100}},
      {SimTime::from_seconds(3.0), Bytes{300}},
  };
  EXPECT_EQ(curve_time_to_reach(curve, 0.0), SimTime::zero());
  EXPECT_NEAR(curve_time_to_reach(curve, 100.0).seconds(), 1.0, 1e-9);
  EXPECT_NEAR(curve_time_to_reach(curve, 200.0).seconds(), 2.0, 1e-9);
  EXPECT_EQ(curve_time_to_reach(curve, 500.0), SimTime::max());
}

TEST(NetFlow, PerSourceSeparation) {
  Fixture f;
  // Add a reverse-direction flow: h1 sources it.
  FlowSpec spec;
  spec.src = f.h1;
  spec.dst = f.h0;
  spec.size = Bytes{kGB / 4};
  Path back = *shortest_path(f.topo, f.h1, f.h0);
  spec.path = back.links;
  spec.tuple = FiveTuple{2, 1, kShufflePort, 30001, 6};
  f.fabric->start_flow(spec);
  f.start(kGB, kShufflePort);
  f.sim.run();
  EXPECT_NEAR(f.probe.sourced_bytes(f.h0).as_double(), kGB, 1e3);
  EXPECT_NEAR(f.probe.sourced_bytes(f.h1).as_double(), kGB / 4, 1e3);
  EXPECT_EQ(f.probe.observed_sources().size(), 2u);
}

}  // namespace
}  // namespace pythia::net
