// Property and invariant suite for the hierarchical rate engine's arena
// machinery: weighted max-min certificates on fat-tree topologies, exact
// observer byte conservation, arena-mirror consistency (the SoA copies must
// track Flow::spec at every instant), and the stale-slot discipline that
// turns use-after-recycle path reads into deterministic debug aborts —
// mirroring PathId's generation-stamp guard in the routing layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::SimTime;

struct Params {
  std::uint64_t seed;
  std::size_t flows;
  double cbr_fraction;
  bool weighted = false;
  bool coalesce = false;
};

class HierMaxMinProperty : public ::testing::TestWithParam<Params> {};

TEST_P(HierMaxMinProperty, AllocationIsMaxMinFair) {
  const Params p = GetParam();
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);

  sim::Simulation sim(p.seed);
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical,
                             .coalesce_cohorts = p.coalesce});
  util::Xoshiro256 rng(p.seed);
  const auto hosts = topo.hosts();

  if (p.cbr_fraction > 0.0) {
    const auto& paths = routing.paths(hosts[0], hosts[hosts.size() - 1]);
    ASSERT_FALSE(paths.empty());
    fabric.start_cbr(paths[0].links,
                     BitsPerSec{cfg.host_link.bps() * p.cbr_fraction});
  }

  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < p.flows; ++i) {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    ASSERT_FALSE(paths.empty());
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{static_cast<std::int64_t>(1e12)};  // long-lived
    spec.path = paths[rng.below(paths.size())].links;
    spec.weight = p.weighted ? rng.uniform(0.5, 4.0) : 1.0;
    flows.push_back(fabric.start_flow(spec));
  }

  constexpr double kEps = 1e-3;  // absolute bps tolerance

  // Capacity bound: no link carries more elastic traffic than its residual.
  for (const auto& link : topo.links()) {
    EXPECT_LE(fabric.link_elastic_rate(link.id).bps(),
              fabric.link_residual_capacity(link.id).bps() + kEps)
        << "link " << link.id.value();
  }

  // Weighted max-min certificate: every flow with a nonzero rate has a
  // saturated link on its path where its weight-normalized rate is maximal.
  for (FlowId f : flows) {
    const auto& flow = fabric.flow(f);
    if (flow.rate.bps() <= kEps) continue;
    bool has_bottleneck = false;
    const double norm = flow.rate.bps() / flow.spec.weight;
    for (LinkId l : fabric.flow_path(f)) {
      const double residual = fabric.link_residual_capacity(l).bps();
      if (fabric.link_elastic_rate(l).bps() < residual - 1.0) continue;
      bool is_max = true;
      for (FlowId g : fabric.flows_crossing(l)) {
        if (g == f) continue;
        const auto& other = fabric.flow(g);
        if (other.rate.bps() / other.spec.weight > norm + kEps) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f.value();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierMaxMinProperty,
    ::testing::Values(Params{1, 8, 0.0}, Params{2, 40, 0.0},
                      Params{3, 40, 0.6}, Params{4, 96, 0.0},
                      Params{5, 96, 0.8, true}, Params{6, 64, 0.5, true},
                      Params{7, 64, 0.0, false, true},
                      Params{8, 96, 0.5, true, true}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_flows" +
             std::to_string(info.param.flows) +
             (info.param.weighted ? "_weighted" : "") +
             (info.param.coalesce ? "_coalesced" : "");
    });

/// Accumulates on_bytes_moved per flow and checks the exact-conservation
/// contract: cumulative observer bytes equal spec.size at completion.
class ByteLedger : public FabricObserver {
 public:
  void on_bytes_moved(const Fabric&, FlowId flow, Bytes moved, SimTime,
                      SimTime) override {
    moved_[flow.value()] += moved.count();
  }
  void on_flow_completed(const Fabric& fabric, FlowId flow,
                         SimTime) override {
    // Slot totals reset on recycle: record the finished ledger entry now.
    completed_.emplace_back(fabric.flow(flow).spec.size.count(),
                            moved_[flow.value()]);
    moved_[flow.value()] = 0;
  }

  /// (spec size, observed total) per completed flow.
  std::vector<std::pair<std::int64_t, std::int64_t>> completed_;

 private:
  std::map<std::uint32_t, std::int64_t> moved_;
};

TEST(HierByteConservation, ObserverTotalsEqualSpecSizeExactly) {
  // Churny mix (uneven sizes, a zero-byte flow, fractional-rate divisions)
  // under the hierarchical engine with coalescing: every completed flow's
  // observer byte total must equal its spec size exactly — integer
  // equality, no tolerance — which proves the settle/report residue
  // carrying survives arena completion handling.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  sim::Simulation sim(21);
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical,
                             .coalesce_cohorts = true});
  ByteLedger ledger;
  fabric.add_observer(&ledger);
  util::Xoshiro256 rng(21);
  const auto hosts = topo.hosts();

  constexpr int kFlows = 48;
  for (int i = 0; i < kFlows; ++i) {
    const auto at = SimTime{static_cast<std::int64_t>(rng.below(500'000'000))};
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    const auto path = paths[rng.below(paths.size())].links;
    const auto size = static_cast<std::int64_t>(
        i % 7 == 6 ? 0 : 999'983 + rng.below(50'000'000));  // prime-ish odd sizes
    sim.at(at, [&fabric, src, dst, path, size] {
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{size};
      spec.path = path;
      fabric.start_flow(spec);
    });
  }
  sim.run();

  ASSERT_EQ(ledger.completed_.size(), static_cast<std::size_t>(kFlows));
  for (const auto& [spec_size, observed] : ledger.completed_) {
    EXPECT_EQ(observed, spec_size);  // exact, to the byte
  }
}

TEST(HierArenaMirrors, PathViewTracksSpecThroughChurn) {
  // At every probe instant, flow_path() (arena row) must equal
  // Flow::spec.path (authoritative copy) element-for-element for every
  // active flow — including right after reroutes, which rewrite the row.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  sim::Simulation sim(31);
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical});
  util::Xoshiro256 rng(31);
  const auto hosts = topo.hosts();

  std::vector<FlowId> started;
  for (int i = 0; i < 40; ++i) {
    const auto at = SimTime{static_cast<std::int64_t>(rng.below(800'000'000))};
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    const auto path = paths[rng.below(paths.size())].links;
    const auto size =
        static_cast<std::int64_t>(5'000'000 + rng.below(200'000'000));
    sim.at(at, [&fabric, &started, src, dst, path, size] {
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{size};
      spec.path = path;
      started.push_back(fabric.start_flow(spec));
    });
  }
  // Mid-run reroutes rewrite arena rows (often into different size buckets).
  sim.at(SimTime::from_seconds(0.5), [&] {
    for (FlowId f : started) {
      if (!fabric.flow_active(f)) continue;
      const auto& spec = fabric.flow(f).spec;
      const auto& alts = routing.paths(spec.src, spec.dst);
      fabric.reroute_flow(f, alts[alts.size() - 1].links);
    }
  });

  for (const double at_s : {0.3, 0.55, 0.9, 1.5}) {
    sim.run_until(SimTime::from_seconds(at_s));
    for (FlowId f : fabric.active_flows()) {
      const auto view = fabric.flow_path(f);
      const auto& spec_path = fabric.flow(f).spec.path;
      ASSERT_EQ(view.size(), spec_path.size()) << "flow " << f.value();
      for (std::size_t i = 0; i < view.size(); ++i) {
        EXPECT_EQ(view[i], spec_path[i])
            << "flow " << f.value() << " hop " << i;
      }
    }
  }
  sim.run();
}

TEST(HierArenaMirrors, GroupClosureTouchesNoMoreThanComponentPlusGroups) {
  // Pod-locality payoff, asserted via counters: an intra-pod flow start on
  // an otherwise busy fat-tree must not touch flows confined to other pods.
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  sim::Simulation sim;
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical});
  const auto hosts = topo.hosts();
  const auto hosts_per_pod = hosts.size() / cfg.k;

  // Fill pods 1..3 with intra-pod flows.
  for (std::size_t pod = 1; pod < cfg.k; ++pod) {
    for (int i = 0; i < 6; ++i) {
      const NodeId src = hosts[pod * hosts_per_pod + (i % hosts_per_pod)];
      const NodeId dst =
          hosts[pod * hosts_per_pod + ((i + 1) % hosts_per_pod)];
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = Bytes{10'000'000'000};
      spec.path = routing.paths(src, dst)[0].links;
      fabric.start_flow(spec);
    }
  }
  const auto before = fabric.counters();

  // One intra-pod flow in pod 0: its component is pod-0-local.
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[1];
  spec.size = Bytes{10'000'000'000};
  spec.path = routing.paths(spec.src, spec.dst)[0].links;
  fabric.start_flow(spec);
  const auto after = fabric.counters();

  // 18 flows live in pods 1..3; the pod-0 fill must touch only the new flow.
  EXPECT_EQ(after.flows_touched - before.flows_touched, 1u);
  EXPECT_EQ(after.full_fills, before.full_fills);
}

#ifndef NDEBUG
TEST(HierStaleSlotDeathTest, RecycledPathRowAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  sim::Simulation sim;
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical});
  const auto hosts = topo.hosts();
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[1];
  spec.size = Bytes{1'000'000};
  spec.path = routing.paths(spec.src, spec.dst)[0].links;
  const FlowId id = fabric.start_flow(spec);
  sim.run();  // flow completes; its arena path row is freed
  ASSERT_FALSE(fabric.flow_active(id));
  EXPECT_DEATH((void)fabric.flow_path(id), "stale FlowId");
}
#else
TEST(HierStaleSlot, RecycledPathRowReadsEmptyInRelease) {
  FatTreeConfig cfg;
  cfg.k = 4;
  const Topology topo = make_fat_tree(cfg);
  const RoutingGraph routing(topo, 4);
  sim::Simulation sim;
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = RateEngine::kHierarchical});
  const auto hosts = topo.hosts();
  FlowSpec spec;
  spec.src = hosts[0];
  spec.dst = hosts[1];
  spec.size = Bytes{1'000'000};
  spec.path = routing.paths(spec.src, spec.dst)[0].links;
  const FlowId id = fabric.start_flow(spec);
  sim.run();
  ASSERT_FALSE(fabric.flow_active(id));
  EXPECT_TRUE(fabric.flow_path(id).empty());
}
#endif

}  // namespace
}  // namespace pythia::net
