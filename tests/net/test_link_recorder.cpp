#include "net/link_recorder.hpp"

#include <gtest/gtest.h>

#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace pythia::net {
namespace {

using util::BitsPerSec;
using util::Bytes;
using util::Duration;

constexpr std::int64_t kGB = 1'000'000'000;

struct Fixture {
  Topology topo = make_two_rack({});
  RoutingGraph routing{topo, 2};
  sim::Simulation sim;
  Fabric fabric{sim, topo};
  NodeId src, dst;
  LinkId inter0, inter1;

  Fixture() {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst = hosts[9];
    inter0 = routing.paths(src, dst)[0].links[1];
    inter1 = routing.paths(src, dst)[1].links[1];
  }

  void start(std::size_t path_idx, std::int64_t bytes) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{bytes};
    spec.path = routing.paths(src, dst)[path_idx].links;
    spec.tuple = FiveTuple{1, 2, kShufflePort, 31000, 6};
    spec.cls = FlowClass::kShuffle;
    fabric.start_flow(spec);
  }
};

TEST(LinkRecorder, SamplesWhileTrafficIsLive) {
  Fixture f;
  LinkRecorder recorder(f.fabric, {f.inter0, f.inter1},
                        Duration::millis(100));
  f.start(0, 10 * kGB);  // 8 s at 10 Gbps
  f.sim.run();
  const auto& s0 = recorder.series(f.inter0);
  // ~80 samples over the 8 s transfer.
  EXPECT_GT(s0.size(), 60u);
  EXPECT_LT(s0.size(), 100u);
  for (std::size_t i = 1; i < s0.size(); ++i) {
    EXPECT_GT(s0[i].at, s0[i - 1].at);
  }
  // Fully utilized while the flow ran.
  EXPECT_NEAR(recorder.peak_utilization(f.inter0), 1.0, 1e-9);
  EXPECT_GT(recorder.mean_utilization(f.inter0), 0.9);
  // The other path stayed idle.
  EXPECT_DOUBLE_EQ(recorder.peak_utilization(f.inter1), 0.0);
}

TEST(LinkRecorder, DoesNotKeepSimulationAlive) {
  Fixture f;
  LinkRecorder recorder(f.fabric, {f.inter0}, Duration::millis(50));
  f.start(0, kGB);
  f.sim.run();  // must drain; a perpetual sampler would hang here
  EXPECT_EQ(f.sim.queue().pending(), 0u);
  EXPECT_FALSE(recorder.series(f.inter0).empty());
}

TEST(LinkRecorder, SeparatesCbrFromElastic) {
  Fixture f;
  LinkRecorder recorder(f.fabric, {f.inter0}, Duration::millis(100));
  std::vector<LinkId> chain{f.routing.paths(f.src, f.dst)[0].links.begin() + 1,
                            f.routing.paths(f.src, f.dst)[0].links.end() - 1};
  f.fabric.start_cbr(chain, BitsPerSec{4e9});
  f.start(0, 3 * kGB);  // gets the residual 6 Gbps
  f.sim.run();
  const auto& s = recorder.series(f.inter0);
  ASSERT_FALSE(s.empty());
  EXPECT_NEAR(s.front().cbr.bps(), 4e9, 1.0);
  EXPECT_NEAR(s.front().elastic.bps(), 6e9, 1.0);
  EXPECT_NEAR(s.front().utilization, 1.0, 1e-9);
}

TEST(LinkRecorder, UnknownLinkYieldsEmptySeries) {
  Fixture f;
  LinkRecorder recorder(f.fabric, {f.inter0});
  EXPECT_TRUE(recorder.series(f.inter1).empty());
  EXPECT_DOUBLE_EQ(recorder.mean_utilization(f.inter1), 0.0);
}

}  // namespace
}  // namespace pythia::net
