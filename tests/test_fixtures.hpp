// Shared test fixtures: a fully wired small cluster (topology + fabric +
// controller + engine) used across hadoop/core/integration tests.
#pragma once

#include <memory>

#include "hadoop/engine.hpp"
#include "net/background.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"

namespace pythia::testing {

struct TestCluster {
  net::Topology topo;
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<net::Fabric> fabric;
  std::unique_ptr<sdn::Controller> controller;
  std::unique_ptr<hadoop::MapReduceEngine> engine;

  explicit TestCluster(std::uint64_t seed = 1,
                       net::TwoRackConfig topo_cfg = {},
                       hadoop::ClusterConfig cluster_cfg = {},
                       sdn::ControllerConfig controller_cfg = {}) {
    topo = net::make_two_rack(topo_cfg);
    sim = std::make_unique<sim::Simulation>(seed);
    fabric = std::make_unique<net::Fabric>(*sim, topo);
    controller = std::make_unique<sdn::Controller>(*sim, *fabric, topo,
                                                   controller_cfg);
    cluster_cfg.servers = topo.hosts();
    engine = std::make_unique<hadoop::MapReduceEngine>(*sim, *fabric,
                                                       *controller,
                                                       cluster_cfg);
  }

  hadoop::JobResult run(const hadoop::JobSpec& spec) {
    hadoop::JobResult result;
    bool done = false;
    engine->submit(spec, [&](const hadoop::JobResult& r) {
      result = r;
      done = true;
    });
    sim->run();
    if (!done) throw std::runtime_error("job did not complete");
    return result;
  }
};

/// A small, fast job spec for engine tests.
inline hadoop::JobSpec small_job(std::size_t maps = 6,
                                 std::size_t reducers = 4) {
  hadoop::JobSpec spec;
  spec.name = "test-job";
  spec.input = util::Bytes{static_cast<std::int64_t>(maps) * 64'000'000};
  spec.block = util::Bytes{64'000'000};
  spec.num_reducers = reducers;
  spec.map_output_ratio = 1.0;
  return spec;
}

}  // namespace pythia::testing
