#include "sdn/hedera_app.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace pythia::sdn {
namespace {

using net::FiveTuple;
using net::FlowClass;
using net::FlowSpec;
using net::NodeId;
using util::BitsPerSec;
using util::Bytes;
using util::Duration;
using util::SimTime;

struct Fixture {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric{sim, topo};
  Controller controller;
  NodeId src, dst;

  explicit Fixture(ControllerConfig cfg = {})
      : controller(sim, fabric, topo, cfg) {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst = hosts[9];
  }

  net::FlowId start_shuffle(const net::Path& path, std::int64_t bytes,
                            std::uint16_t port) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{bytes};
    spec.path = path.links;
    spec.tuple = FiveTuple{1, 2, 50060, port, 6};
    spec.cls = FlowClass::kShuffle;
    return fabric.start_flow(spec);
  }
};

TEST(Hedera, ReroutesElephantOffLoadedPath) {
  Fixture f;
  HederaConfig cfg;
  cfg.poll_period = Duration::seconds_i(1);
  HederaApp hedera(f.controller, cfg);

  const auto& paths = f.controller.routing().paths(f.src, f.dst);
  ASSERT_EQ(paths.size(), 2u);
  // Load path 0 with 9.5 Gbps of background.
  std::vector<net::LinkId> chain{paths[0].links.begin() + 1,
                                 paths[0].links.end() - 1};
  f.fabric.start_cbr(chain, BitsPerSec{9.5e9});

  // A big shuffle flow unluckily lands (ECMP-style) on the loaded path.
  const net::FlowId flow =
      f.start_shuffle(paths[0], 50'000'000'000LL, 31000);
  EXPECT_NEAR(f.fabric.flow(flow).rate.bps(), 0.5e9, 1e3);

  // Give Hedera a couple of scheduling rounds.
  f.sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_GE(hedera.scheduling_rounds(), 1u);
  EXPECT_GE(hedera.elephants_rerouted(), 1u);
  EXPECT_EQ(f.fabric.flow(flow).spec.path, paths[1].links);
  // On the clean path the flow now runs at full NIC rate.
  EXPECT_NEAR(f.fabric.flow(flow).rate.bps(), 10e9, 1e3);
}

TEST(Hedera, IgnoresNonShuffleTraffic) {
  Fixture f;
  HederaConfig cfg;
  cfg.poll_period = Duration::seconds_i(1);
  HederaApp hedera(f.controller, cfg);

  const auto& paths = f.controller.routing().paths(f.src, f.dst);
  FlowSpec spec;
  spec.src = f.src;
  spec.dst = f.dst;
  spec.size = Bytes{50'000'000'000LL};
  spec.path = paths[0].links;
  spec.tuple = FiveTuple{1, 2, 9999, 31000, 6};
  spec.cls = FlowClass::kOther;  // not shuffle
  f.fabric.start_flow(spec);

  f.sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_EQ(hedera.scheduling_rounds(), 0u);  // never armed
  EXPECT_EQ(hedera.elephants_rerouted(), 0u);
}

TEST(Hedera, QuiescesAfterTrafficEnds) {
  Fixture f;
  HederaConfig cfg;
  cfg.poll_period = Duration::seconds_i(1);
  HederaApp hedera(f.controller, cfg);

  const auto& paths = f.controller.routing().paths(f.src, f.dst);
  f.start_shuffle(paths[1], 1'000'000'000LL, 31000);  // ~0.8 s at 10 Gbps

  // The simulation must drain (no perpetual polling) once flows are gone.
  f.sim.run();
  EXPECT_EQ(f.fabric.active_flow_count(), 0u);
  EXPECT_GE(hedera.scheduling_rounds(), 1u);
  const auto rounds = hedera.scheduling_rounds();
  // Nothing further scheduled.
  EXPECT_EQ(f.sim.queue().pending(), 0u);
  EXPECT_EQ(hedera.scheduling_rounds(), rounds);
}

TEST(Hedera, MiceAreLeftOnTheirPath) {
  Fixture f;
  HederaConfig cfg;
  cfg.poll_period = Duration::millis(100);
  cfg.elephant_fraction = 0.10;
  HederaApp hedera(f.controller, cfg);

  const auto& paths = f.controller.routing().paths(f.src, f.dst);
  // Many concurrent small flows on path 0 share 10 Gbps -> each ~0.6 Gbps,
  // under the 1 Gbps elephant threshold... use 16 flows (0.625 Gbps each).
  std::vector<net::FlowId> flows;
  for (int i = 0; i < 16; ++i) {
    flows.push_back(f.start_shuffle(paths[0], 40'000'000'000LL,
                                    static_cast<std::uint16_t>(31000 + i)));
  }
  f.sim.run_until(SimTime::from_seconds(0.35));
  // No starvation, each flow healthy but below threshold -> no reroutes.
  EXPECT_EQ(hedera.elephants_rerouted(), 0u);
  for (net::FlowId id : flows) {
    EXPECT_EQ(f.fabric.flow(id).spec.path, paths[0].links);
  }
}

}  // namespace
}  // namespace pythia::sdn
