// Controller topology-update service: link failure and recovery (paper §IV
// claims fault tolerance through routing-graph updates on failure events).
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"
#include "workloads/hibench.hpp"

namespace pythia::sdn {
namespace {

using net::FiveTuple;
using net::FlowClass;
using net::FlowSpec;
using net::LinkId;
using net::NodeId;
using util::Bytes;
using util::Duration;
using util::SimTime;

constexpr std::int64_t kGB = 1'000'000'000;

struct Fixture {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric{sim, topo};
  Controller controller{sim, fabric, topo};
  NodeId src, dst;

  Fixture() {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst = hosts[9];
  }
};

TEST(Failover, RoutingGraphDropsFailedPath) {
  Fixture f;
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  ASSERT_EQ(paths.size(), 2u);
  const LinkId inter0 = paths[0].links[1];

  f.controller.handle_link_failure(inter0);
  EXPECT_EQ(f.controller.routing().paths(f.src, f.dst).size(), 1u);
  EXPECT_EQ(f.controller.topology_rebuilds(), 1u);
  EXPECT_EQ(f.controller.failed_links().size(), 2u);  // both directions

  f.controller.handle_link_restore(inter0);
  EXPECT_EQ(f.controller.routing().paths(f.src, f.dst).size(), 2u);
  EXPECT_TRUE(f.controller.failed_links().empty());
}

TEST(Failover, RulesOnFailedPathArePurged) {
  Fixture f;
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  f.controller.install_path(f.src, f.dst, paths[0]);
  f.sim.run();
  ASSERT_NE(f.controller.active_rule(f.src, f.dst), nullptr);

  f.controller.handle_link_failure(paths[0].links[1]);
  EXPECT_EQ(f.controller.active_rule(f.src, f.dst), nullptr);
  // Resolution falls back to ECMP over the surviving path.
  const FiveTuple t{1, 2, 50060, 31000, 6};
  const auto& resolved = f.controller.resolve(f.src, f.dst, t);
  EXPECT_EQ(resolved.links, paths[1].links);
}

TEST(Failover, StrandedFlowsAreReroutedAndComplete) {
  Fixture f;
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  FlowSpec spec;
  spec.src = f.src;
  spec.dst = f.dst;
  spec.size = Bytes{10 * kGB};
  spec.path = paths[0].links;
  spec.tuple = FiveTuple{1, 2, 50060, 31000, 6};
  spec.cls = FlowClass::kShuffle;
  double done = -1.0;
  const net::FlowId flow = f.fabric.start_flow(
      spec, [&](net::FlowId, SimTime at) { done = at.seconds(); });

  f.sim.after(Duration::seconds_i(2), [&] {
    f.controller.handle_link_failure(paths[0].links[1]);
  });
  f.sim.run();
  EXPECT_EQ(f.fabric.flow(flow).spec.path, paths[1].links);
  // 2 s on path 0 (2.5 GB), remaining 7.5 GB on path 1 at 1.25 GB/s.
  EXPECT_NEAR(done, 8.0, 1e-6);
}

TEST(Failover, RulesSurviveUnrelatedFailure) {
  Fixture f;
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  f.controller.install_path(f.src, f.dst, paths[1]);
  f.sim.run();
  f.controller.handle_link_failure(paths[0].links[1]);
  EXPECT_NE(f.controller.active_rule(f.src, f.dst), nullptr);
}

TEST(Failover, SwitchFailureKillsAllItsPaths) {
  Fixture f;
  // Fail one of the two "wire" switches carrying an inter-rack cable.
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  const net::NodeId wire = f.topo.link(paths[0].links[1]).dst;
  ASSERT_EQ(f.topo.node(wire).kind, net::NodeKind::kSwitch);

  f.controller.handle_switch_failure(wire);
  EXPECT_EQ(f.controller.routing().paths(f.src, f.dst).size(), 1u);
  // All four adjacent directed links are down.
  EXPECT_EQ(f.controller.failed_links().size(), 4u);
  for (net::LinkId l : f.controller.failed_links()) {
    EXPECT_FALSE(f.fabric.link_up(l));
  }

  f.controller.handle_switch_restore(wire);
  EXPECT_TRUE(f.controller.failed_links().empty());
  EXPECT_EQ(f.controller.routing().paths(f.src, f.dst).size(), 2u);
}

TEST(Failover, InstallOverFailedLinkIsRefused) {
  Fixture f;
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  f.controller.handle_link_failure(paths[0].links[1]);
  // A stale scheduler asks for the dead path: the controller must refuse.
  f.controller.install_path(f.src, f.dst, paths[0]);
  f.sim.run();
  EXPECT_EQ(f.controller.active_rule(f.src, f.dst), nullptr);
  EXPECT_EQ(f.controller.rules_installed(), 0u);
}

TEST(Failover, SwitchDeathPurgesRulesThroughIt) {
  Fixture f;
  const auto paths = f.controller.routing().paths(f.src, f.dst).materialize();
  // One rule over each inter-rack wire switch; killing one switch must purge
  // exactly the rule whose path traverses it.
  const net::NodeId host2 = f.topo.hosts()[1];
  f.controller.install_path(f.src, f.dst, paths[0], Bytes{1000});
  f.controller.install_path(host2, f.dst, f.controller.routing()
                                              .paths(host2, f.dst)[1],
                            Bytes{1000});
  f.sim.run();
  ASSERT_NE(f.controller.active_rule(f.src, f.dst), nullptr);
  ASSERT_NE(f.controller.active_rule(host2, f.dst), nullptr);

  const net::NodeId wire = f.topo.link(paths[0].links[1]).dst;
  ASSERT_EQ(f.topo.node(wire).kind, net::NodeKind::kSwitch);
  f.controller.handle_switch_failure(wire);

  EXPECT_EQ(f.controller.active_rule(f.src, f.dst), nullptr);
  EXPECT_NE(f.controller.active_rule(host2, f.dst), nullptr);
  // The dead switch's flow-table entries are released with the rule.
  EXPECT_EQ(f.controller.table_occupancy(wire), 0u);
  // Resolution for the purged pair falls back to ECMP on the survivor.
  const FiveTuple t{1, 2, 50060, 31000, 6};
  EXPECT_EQ(f.controller.resolve(f.src, f.dst, t).links, paths[1].links);
}

TEST(Failover, JobCompletesAcrossSwitchDeath) {
  for (const auto kind :
       {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 6;
    cfg.scheduler = kind;
    exp::Scenario scenario(cfg);

    // Kill a wire switch mid-shuffle; restore it 40 s later.
    const auto& paths = scenario.controller().routing().paths(
        scenario.servers()[0], scenario.servers()[9]);
    const net::NodeId wire =
        scenario.topology().link(paths[1].links[1]).dst;
    scenario.simulation().after(Duration::seconds_i(20), [&] {
      scenario.controller().handle_switch_failure(wire);
    });
    scenario.simulation().after(Duration::seconds_i(60), [&] {
      scenario.controller().handle_switch_restore(wire);
    });

    const auto job = workloads::sort_job(Bytes{12LL * 1000 * 1000 * 1000}, 8);
    const auto result = scenario.run_job(job);
    EXPECT_GT(result.completion_time().seconds(), 0.0)
        << exp::scheduler_name(kind);
    EXPECT_EQ(result.reducers.size(), job.num_reducers)
        << exp::scheduler_name(kind);
    EXPECT_GE(scenario.controller().topology_rebuilds(), 2u)
        << exp::scheduler_name(kind);
  }
}

class FailoverJob : public ::testing::TestWithParam<exp::SchedulerKind> {};

TEST_P(FailoverJob, JobCompletesAcrossMidShuffleLinkFailure) {
  exp::ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.scheduler = GetParam();
  cfg.background.oversubscription = 5.0;
  exp::Scenario scenario(cfg);

  // Fail one inter-rack cable 20 s in (mid-job), restore at 60 s.
  const auto& paths = scenario.controller().routing().paths(
      scenario.servers()[0], scenario.servers()[9]);
  const LinkId victim = paths[1].links[1];
  scenario.simulation().after(Duration::seconds_i(20), [&] {
    scenario.controller().handle_link_failure(victim);
  });
  scenario.simulation().after(Duration::seconds_i(60), [&] {
    scenario.controller().handle_link_restore(victim);
  });

  const auto job =
      workloads::sort_job(Bytes{12LL * 1000 * 1000 * 1000}, 8);
  const auto result = scenario.run_job(job);
  EXPECT_GT(result.completion_time().seconds(), 0.0);
  EXPECT_EQ(result.maps.size(), job.num_maps());
  EXPECT_GE(scenario.controller().topology_rebuilds(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, FailoverJob,
    ::testing::Values(exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia,
                      exp::SchedulerKind::kHedera,
                      exp::SchedulerKind::kStaticOracle),
    [](const auto& info) { return exp::scheduler_name(info.param); });

}  // namespace
}  // namespace pythia::sdn
