#include "sdn/controller.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace pythia::sdn {
namespace {

using net::FiveTuple;
using net::FlowClass;
using net::FlowSpec;
using net::NodeId;
using net::Path;
using util::BitsPerSec;
using util::Bytes;
using util::Duration;

struct Fixture {
  net::Topology topo = net::make_two_rack({});
  sim::Simulation sim;
  net::Fabric fabric{sim, topo};
  NodeId src, dst;

  Fixture() {
    const auto hosts = topo.hosts();
    src = hosts[0];
    dst = hosts[9];
  }

  Controller make_controller(ControllerConfig cfg = {}) {
    return Controller(sim, fabric, topo, cfg);
  }
};

TEST(Controller, ResolveFallsBackToEcmp) {
  Fixture f;
  auto ctl = f.make_controller();
  const FiveTuple t{1, 2, 50060, 31000, 6};
  const Path& p = ctl.resolve(f.src, f.dst, t);
  EXPECT_TRUE(f.topo.validate_path(f.src, f.dst, p.links));
  EXPECT_EQ(ctl.rules_installed(), 0u);
}

TEST(Controller, RuleInstallHasLatency) {
  Fixture f;
  ControllerConfig cfg;
  cfg.rule_install_latency = Duration::millis(4);
  auto ctl = f.make_controller(cfg);
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  ASSERT_EQ(paths.size(), 2u);

  ctl.install_path(f.src, f.dst, paths[1]);
  EXPECT_EQ(ctl.rules_installed(), 1u);
  // Not yet active: install latency has not elapsed.
  EXPECT_EQ(ctl.active_rule(f.src, f.dst), nullptr);

  f.sim.run_until(util::SimTime::from_seconds(0.003));
  EXPECT_EQ(ctl.active_rule(f.src, f.dst), nullptr);
  f.sim.run_until(util::SimTime::from_seconds(0.005));
  const PathRule* rule = ctl.active_rule(f.src, f.dst);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->path->links, paths[1].links);

  // Resolve now returns the rule's path regardless of the hash.
  for (std::uint16_t port = 0; port < 32; ++port) {
    const FiveTuple t{1, 2, 50060, port, 6};
    EXPECT_EQ(ctl.resolve(f.src, f.dst, t).links, paths[1].links);
  }
}

TEST(Controller, RuleIsDirectional) {
  Fixture f;
  auto ctl = f.make_controller();
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  ctl.install_path(f.src, f.dst, paths[0]);
  f.sim.run();
  EXPECT_NE(ctl.active_rule(f.src, f.dst), nullptr);
  EXPECT_EQ(ctl.active_rule(f.dst, f.src), nullptr);
}

TEST(Controller, RemoveRuleRevertsToEcmp) {
  Fixture f;
  auto ctl = f.make_controller();
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  ctl.install_path(f.src, f.dst, paths[1]);
  f.sim.run();
  ASSERT_NE(ctl.active_rule(f.src, f.dst), nullptr);
  ctl.remove_rule(f.src, f.dst);
  EXPECT_EQ(ctl.active_rule(f.src, f.dst), nullptr);
}

TEST(Controller, ReinstallSupersedesPending) {
  Fixture f;
  auto ctl = f.make_controller();
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  ctl.install_path(f.src, f.dst, paths[0]);
  ctl.install_path(f.src, f.dst, paths[1]);  // supersedes before activation
  f.sim.run();
  const PathRule* rule = ctl.active_rule(f.src, f.dst);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->path->links, paths[1].links);
  EXPECT_EQ(ctl.rules_installed(), 2u);
}

TEST(Controller, FlowModsCountSwitchHops) {
  Fixture f;
  auto ctl = f.make_controller();
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  // Inter-rack path: host->tor0->wire->tor1->host = 3 switch-sourced links.
  ctl.install_path(f.src, f.dst, paths[0]);
  EXPECT_EQ(ctl.flow_mod_messages(), 3u);
}

TEST(Controller, RuleActivationReroutesActiveFlows) {
  Fixture f;
  ControllerConfig cfg;
  cfg.rule_install_latency = Duration::millis(4);
  auto ctl = f.make_controller(cfg);
  const auto& paths = ctl.routing().paths(f.src, f.dst);

  // Start a shuffle flow on path 0, then install a rule for path 1.
  FlowSpec spec;
  spec.src = f.src;
  spec.dst = f.dst;
  spec.size = Bytes{100'000'000'000LL};
  spec.path = paths[0].links;
  spec.tuple = FiveTuple{1, 2, 50060, 31000, 6};
  spec.cls = FlowClass::kShuffle;
  const net::FlowId flow = f.fabric.start_flow(spec);

  ctl.install_path(f.src, f.dst, paths[1]);
  f.sim.run_until(util::SimTime::from_seconds(0.01));
  EXPECT_EQ(f.fabric.flow(flow).spec.path, paths[1].links);
}

TEST(Controller, RerouteOnInstallCanBeDisabled) {
  Fixture f;
  ControllerConfig cfg;
  cfg.reroute_active_flows_on_install = false;
  auto ctl = f.make_controller(cfg);
  const auto& paths = ctl.routing().paths(f.src, f.dst);

  FlowSpec spec;
  spec.src = f.src;
  spec.dst = f.dst;
  spec.size = Bytes{100'000'000'000LL};
  spec.path = paths[0].links;
  spec.tuple = FiveTuple{1, 2, 50060, 31000, 6};
  spec.cls = FlowClass::kShuffle;
  const net::FlowId flow = f.fabric.start_flow(spec);

  ctl.install_path(f.src, f.dst, paths[1]);
  f.sim.run_until(util::SimTime::from_seconds(0.01));
  EXPECT_EQ(f.fabric.flow(flow).spec.path, paths[0].links);
}

TEST(Controller, SnapshotSeparatesBackgroundFromShuffle) {
  Fixture f;
  auto ctl = f.make_controller();
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  const net::LinkId inter = paths[0].links[1];  // tor0 -> wire link

  // 4 Gbps of CBR background plus a shuffle flow on the same path.
  std::vector<net::LinkId> chain{paths[0].links.begin() + 1,
                                 paths[0].links.end() - 1};
  f.fabric.start_cbr(chain, BitsPerSec{4e9});
  FlowSpec spec;
  spec.src = f.src;
  spec.dst = f.dst;
  spec.size = Bytes{100'000'000'000LL};
  spec.path = paths[0].links;
  spec.tuple = FiveTuple{1, 2, 50060, 31000, 6};
  spec.cls = FlowClass::kShuffle;
  f.fabric.start_flow(spec);

  // Shuffle flow gets the residual 6 Gbps.
  EXPECT_NEAR(ctl.snapshot_load(inter).bps(), 10e9, 1e3);
  EXPECT_NEAR(ctl.snapshot_background_load(inter).bps(), 4e9, 1e3);
  EXPECT_NEAR(ctl.snapshot_utilization(inter), 1.0, 1e-6);
}

TEST(Controller, SnapshotIsSampleAndHold) {
  Fixture f;
  ControllerConfig cfg;
  cfg.link_stats_period = Duration::seconds_i(1);
  auto ctl = f.make_controller(cfg);
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  const net::LinkId inter = paths[0].links[1];

  // First query: snapshot of an idle network.
  EXPECT_DOUBLE_EQ(ctl.snapshot_load(inter).bps(), 0.0);

  // Load appears, but within the stats period the snapshot stays stale.
  std::vector<net::LinkId> chain{paths[0].links.begin() + 1,
                                 paths[0].links.end() - 1};
  f.fabric.start_cbr(chain, BitsPerSec{5e9});
  EXPECT_DOUBLE_EQ(ctl.snapshot_load(inter).bps(), 0.0);

  // After the period elapses, a query refreshes the snapshot.
  f.sim.run_until(util::SimTime::from_seconds(1.5));
  EXPECT_NEAR(ctl.snapshot_load(inter).bps(), 5e9, 1e3);
  EXPECT_GE(ctl.stats_refreshes(), 2u);
}

TEST(Controller, PathAvailableIsBottleneck) {
  Fixture f;
  auto ctl = f.make_controller();
  const auto& paths = ctl.routing().paths(f.src, f.dst);
  std::vector<net::LinkId> chain{paths[0].links.begin() + 1,
                                 paths[0].links.end() - 1};
  f.fabric.start_cbr(chain, BitsPerSec{9e9});
  EXPECT_NEAR(ctl.snapshot_path_available(paths[0]).bps(), 1e9, 1e3);
  EXPECT_NEAR(ctl.snapshot_path_available(paths[1]).bps(), 10e9, 1e3);
}

}  // namespace
}  // namespace pythia::sdn
