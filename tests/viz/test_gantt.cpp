#include "viz/gantt.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "test_fixtures.hpp"
#include "viz/timeline_export.hpp"
#include "workloads/hibench.hpp"

namespace pythia::viz {
namespace {

using pythia::testing::TestCluster;
using pythia::testing::small_job;

hadoop::JobResult run_toy() {
  TestCluster cluster(7);
  return cluster.run(workloads::toy_skewed_sort());
}

TEST(Gantt, SequenceDiagramContainsAllPhases) {
  const auto result = run_toy();
  const std::string out = render_sequence_diagram(result);
  EXPECT_NE(out.find('='), std::string::npos);  // map spans
  EXPECT_NE(out.find('~'), std::string::npos);  // shuffle spans
  EXPECT_NE(out.find('#'), std::string::npos);  // reduce spans
  EXPECT_NE(out.find("map-0000"), std::string::npos);
  EXPECT_NE(out.find("red-0001"), std::string::npos);
  EXPECT_NE(out.find(result.name), std::string::npos);
}

TEST(Gantt, ElidesExcessMapRows) {
  TestCluster cluster;
  const auto result = cluster.run(small_job(30, 2));
  GanttOptions opts;
  opts.max_map_rows = 5;
  const std::string out = render_sequence_diagram(result, opts);
  EXPECT_NE(out.find("25 more map tasks elided"), std::string::npos);
  EXPECT_EQ(out.find("map-0005"), std::string::npos);
}

TEST(Gantt, RowsRespectWidth) {
  const auto result = run_toy();
  GanttOptions opts;
  opts.width = 40;
  const std::string out = render_sequence_diagram(result, opts);
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find('|') == std::string::npos) continue;
    // "xxx-NNNN |<width chars>|" -> 8 label + " |" + width + "|"
    EXPECT_EQ(line.size(), 8 + 2 + opts.width + 1) << line;
  }
}

TEST(Gantt, ReducerSummaryShowsSkew) {
  const auto result = run_toy();
  const std::string out = render_reducer_summary(result);
  EXPECT_NE(out.find("reducer"), std::string::npos);
  EXPECT_NE(out.find("1.67x"), std::string::npos);  // 5:1 skew -> 5/3 vs mean
  EXPECT_NE(out.find("0.33x"), std::string::npos);
}

TEST(Gantt, PhaseSummaryHasThreePhases) {
  const auto result = run_toy();
  const std::string out = render_phase_summary(result);
  EXPECT_NE(out.find("map"), std::string::npos);
  EXPECT_NE(out.find("shuffle (tail)"), std::string::npos);
  EXPECT_NE(out.find("reduce (tail)"), std::string::npos);
}

TEST(TimelineExport, CsvHasAllRows) {
  const auto result = run_toy();
  const std::string path = ::testing::TempDir() + "/pythia_timeline.csv";
  export_timeline_csv(result, path);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  std::size_t fetch_rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    if (line.rfind("fetch", 0) == 0) ++fetch_rows;
  }
  // header + 3 maps + 2*2 reducer rows + 6 fetches.
  EXPECT_EQ(rows, 1u + 3u + 4u + 6u);
  EXPECT_EQ(fetch_rows, 6u);
  std::remove(path.c_str());
}

TEST(TimelineExport, PredictionCsv) {
  const std::string path = ::testing::TempDir() + "/pythia_pred.csv";
  std::vector<core::PredictionPoint> predicted{
      {util::SimTime::from_seconds(1.0), util::Bytes{100}}};
  std::vector<net::VolumePoint> measured{
      {util::SimTime::from_seconds(2.0), util::Bytes{90}},
      {util::SimTime::from_seconds(3.0), util::Bytes{100}}};
  export_prediction_csv(predicted, measured, path);
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("predicted"), std::string::npos);
  EXPECT_NE(all.find("measured"), std::string::npos);
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 4);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pythia::viz
