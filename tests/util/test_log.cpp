#include "util/log.hpp"

#include <gtest/gtest.h>

namespace pythia::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The suite runs with an untouched default unless a test changed it.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (const auto level : {LogLevel::kTrace, LogLevel::kDebug,
                           LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, StreamMacroOnlyEvaluatesWhenEnabled) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  PYTHIA_LOG(kDebug, "test") << "value " << expensive();
  EXPECT_EQ(evaluations, 0);  // below threshold: argument untouched

  set_log_level(LogLevel::kTrace);
  PYTHIA_LOG(kDebug, "test") << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, LevelOrderingIsMonotone) {
  EXPECT_LT(LogLevel::kTrace, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
}

}  // namespace
}  // namespace pythia::util
