#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace pythia::util {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.to_string();
  // Header and both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // All lines have equal width (alignment invariant).
  std::istringstream in(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line: " << line;
  }
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::percent(0.4567), "45.7%");
  EXPECT_EQ(Table::percent(0.031, 0), "3%");
  EXPECT_EQ(Table::seconds(12.345), "12.3 s");
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
  const std::string path = testing::TempDir() + "/pythia_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row({"1", "x,y"});
    csv.write_row({"2", "z"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,\"x,y\"");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "2,z");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace pythia::util
