#include "util/time.hpp"

#include <gtest/gtest.h>

namespace pythia::util {
namespace {

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::millis(5).ns(), 5'000'000);
  EXPECT_EQ(Duration::micros(7).ns(), 7'000);
  EXPECT_EQ(Duration::seconds_i(2).ns(), 2'000'000'000LL);
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000LL);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(Duration, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(Duration::millis(250).seconds(), 0.25);
  EXPECT_EQ(Duration::from_seconds(0.25).ns(), 250'000'000);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(100);
  const Duration b = Duration::millis(40);
  EXPECT_EQ((a + b).ns(), Duration::millis(140).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(60).ns());
  EXPECT_EQ((a * 3).ns(), Duration::millis(300).ns());
  EXPECT_LT(b, a);
}

TEST(SimTime, ArithmeticWithDuration) {
  const SimTime t = SimTime::from_seconds(10.0);
  EXPECT_EQ((t + Duration::seconds_i(5)).seconds(), 15.0);
  EXPECT_EQ((t - Duration::seconds_i(4)).seconds(), 6.0);
  EXPECT_EQ((t - SimTime::from_seconds(4.0)).seconds(), 6.0);
  EXPECT_LT(SimTime::zero(), t);
}

TEST(TransferTime, Analytic) {
  // 1 GB at 8 Gbps == 1 second.
  EXPECT_EQ(transfer_time(Bytes{1'000'000'000}, BitsPerSec{8e9}).ns(),
            1'000'000'000);
  // 1 MB at 8 Mbps == 1 second.
  EXPECT_EQ(transfer_time(1_MB, BitsPerSec{8e6}).ns(), 1'000'000'000);
}

TEST(TransferTime, ZeroRateIsInfinite) {
  EXPECT_EQ(transfer_time(1_MB, BitsPerSec::zero()), Duration::max());
  EXPECT_EQ(transfer_time(1_MB, BitsPerSec{-5.0}), Duration::max());
}

TEST(TransferTime, HugeSpanSaturates) {
  EXPECT_EQ(transfer_time(Bytes::max(), BitsPerSec{1.0}), Duration::max());
}

TEST(BytesIn, Analytic) {
  EXPECT_EQ(bytes_in(Duration::seconds_i(2), BitsPerSec{8e6}).count(),
            2'000'000);
  EXPECT_EQ(bytes_in(Duration::zero(), BitsPerSec{8e9}).count(), 0);
}

TEST(FormatDuration, Ranges) {
  EXPECT_EQ(format_duration(Duration::from_seconds(12.5)), "12.500 s");
  EXPECT_EQ(format_duration(Duration::millis(8)), "8.000 ms");
  EXPECT_EQ(format_duration(Duration::micros(15)), "15.000 us");
  EXPECT_EQ(format_duration(Duration::max()), "inf");
}

}  // namespace
}  // namespace pythia::util
