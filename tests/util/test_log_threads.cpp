// Thread-safety test for util::log — run under TSan to prove the logger's
// atomic level + mutexed sink hold up when parallel sweep workers log
// concurrently while another thread flips the level.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/log.hpp"

namespace pythia::util {
namespace {

TEST(LogThreads, ConcurrentEmissionAndLevelChanges) {
  const LogLevel original = log_level();
  // Everything below Error is discarded, so the test stays silent while the
  // full emit path (level load, stream build, sink lock) still executes.
  set_log_level(LogLevel::kError);

  std::vector<std::thread> threads;
  threads.reserve(9);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        PYTHIA_LOG(kDebug, "worker") << "thread " << t << " iteration " << i;
        if (i % 100 == 0) {
          log_line(LogLevel::kTrace, "worker", "discarded below threshold");
        }
      }
    });
  }
  // One thread toggling the level while the workers log.
  threads.emplace_back([] {
    for (int i = 0; i < 200; ++i) {
      set_log_level(i % 2 == 0 ? LogLevel::kError : LogLevel::kWarn);
    }
    set_log_level(LogLevel::kError);
  });
  for (auto& th : threads) th.join();

  set_log_level(original);
  SUCCEED();
}

}  // namespace
}  // namespace pythia::util
