// ThreadPool unit tests; also the TSan target exercising the work queue.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/thread_pool.hpp"

namespace pythia::util {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(ThreadPool, WaitIdlePublishesTaskWrites) {
  // Plain (non-atomic) writes must be visible after wait_idle — the
  // happens-before edge ParallelRunner's result gathering relies on.
  ThreadPool pool(3);
  std::vector<int> results(64, 0);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      pool.submit([&results, i, round] {
        results[i] = static_cast<int>(i) + round;
      });
    }
    pool.wait_idle();
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i], static_cast<int>(i) + round);
    }
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, BusySecondsAccumulate) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> spin{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&spin] {
      for (int j = 0; j < 100000; ++j) spin.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_GT(pool.busy_seconds(), 0.0);
}

}  // namespace
}  // namespace pythia::util
