#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pythia::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90.0), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
}

TEST(SampleSet, AddAfterPercentileQuery) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);  // re-sorts after mutation
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(25.0);   // clamps to bin 9
  h.add(5.0, 3); // weighted, bin 5
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 3u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, RenderSkipsEmptyBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(3.5);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  // Two non-empty bins -> exactly two lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(JainFairness, PerfectAndSkewed) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 1.0, 1.0, 1.0}), 1.0);
  // One user hogging: J = n^2*x^2 / (n * n*x^2)? -> 1/n for a single nonzero.
  EXPECT_NEAR(jain_fairness({4.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(CoeffOfVariation, Basics) {
  EXPECT_DOUBLE_EQ(coeff_of_variation({5.0, 5.0, 5.0}), 0.0);
  EXPECT_GT(coeff_of_variation({1.0, 10.0}), 0.5);
  EXPECT_DOUBLE_EQ(coeff_of_variation({}), 0.0);
}

}  // namespace
}  // namespace pythia::util
