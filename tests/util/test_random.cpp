#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pythia::util {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro, BelowBoundsAndCoverage) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every residue appears
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro, ExponentialMean) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Xoshiro, GaussianMoments) {
  Xoshiro256 rng(19);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gaussian(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < z.n(); ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfMonotonicallyDecreasing) {
  ZipfSampler z(50, 1.2);
  for (std::size_t i = 1; i < z.n(); ++i) {
    EXPECT_GE(z.pmf(i - 1), z.pmf(i));
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t i = 0; i < z.n(); ++i) {
    EXPECT_NEAR(z.pmf(i), 0.1, 1e-12);
  }
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfSampler z(20, 1.0);
  Xoshiro256 rng(23);
  std::vector<int> counts(20, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const std::size_t r = z.sample(rng);
    ASSERT_LT(r, 20u);
    ++counts[r];
  }
  for (std::size_t i = 0; i < 20; ++i) {
    const double expected = z.pmf(i) * kN;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected) + 5.0)
        << "rank " << i;
  }
}

TEST(DeriveSeed, StableAndDistinct) {
  EXPECT_EQ(derive_seed(1, 10), derive_seed(1, 10));
  EXPECT_NE(derive_seed(1, 10), derive_seed(1, 11));
  EXPECT_NE(derive_seed(1, 10), derive_seed(2, 10));
}

TEST(HashBytes, StableAndSensitive) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_EQ(hash_bytes(a, 5), hash_bytes(a, 5));
  EXPECT_NE(hash_bytes(a, 5), hash_bytes(b, 5));
  EXPECT_NE(hash_bytes(a, 4), hash_bytes(a, 5));
}

TEST(HashU64s, OrderSensitive) {
  EXPECT_NE(hash_u64s({1, 2}), hash_u64s({2, 1}));
  EXPECT_EQ(hash_u64s({1, 2, 3}), hash_u64s({1, 2, 3}));
}

}  // namespace
}  // namespace pythia::util
