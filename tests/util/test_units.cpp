#include "util/units.hpp"

#include <gtest/gtest.h>

namespace pythia::util {
namespace {

TEST(Bytes, LiteralsAndCount) {
  EXPECT_EQ((5_B).count(), 5);
  EXPECT_EQ((3_KB).count(), 3000);
  EXPECT_EQ((2_MB).count(), 2'000'000);
  EXPECT_EQ((7_GB).count(), 7'000'000'000LL);
}

TEST(Bytes, Arithmetic) {
  Bytes a{100};
  Bytes b{40};
  EXPECT_EQ((a + b).count(), 140);
  EXPECT_EQ((a - b).count(), 60);
  EXPECT_EQ((a * 3).count(), 300);
  EXPECT_EQ((3 * a).count(), 300);
  a += b;
  EXPECT_EQ(a.count(), 140);
  a -= Bytes{40};
  EXPECT_EQ(a.count(), 100);
}

TEST(Bytes, Ordering) {
  EXPECT_LT(Bytes{1}, Bytes{2});
  EXPECT_EQ(Bytes{5}, Bytes{5});
  EXPECT_GT(Bytes{9}, Bytes{2});
  EXPECT_LE(Bytes::zero(), Bytes{0});
}

TEST(Bytes, ScaledRoundsToNearest) {
  EXPECT_EQ(Bytes{100}.scaled(0.5).count(), 50);
  EXPECT_EQ(Bytes{3}.scaled(0.5).count(), 2);   // 1.5 + 0.5 -> 2
  EXPECT_EQ(Bytes{100}.scaled(1.057).count(), 106);
  EXPECT_EQ(Bytes{1'000'000}.scaled(0.0).count(), 0);
}

TEST(Bytes, AsDoubleMatchesCount) {
  EXPECT_DOUBLE_EQ(Bytes{123456789}.as_double(), 123456789.0);
}

TEST(BitsPerSec, LiteralsAndConversion) {
  EXPECT_DOUBLE_EQ((10_Gbps).bps(), 10e9);
  EXPECT_DOUBLE_EQ((100_Mbps).bps(), 1e8);
  EXPECT_DOUBLE_EQ((8_Gbps).bytes_per_sec(), 1e9);
}

TEST(BitsPerSec, Arithmetic) {
  BitsPerSec r{1000.0};
  EXPECT_DOUBLE_EQ((r + BitsPerSec{500.0}).bps(), 1500.0);
  EXPECT_DOUBLE_EQ((r - BitsPerSec{400.0}).bps(), 600.0);
  EXPECT_DOUBLE_EQ((r * 2.0).bps(), 2000.0);
  EXPECT_DOUBLE_EQ((2.0 * r).bps(), 2000.0);
  EXPECT_DOUBLE_EQ((r / 4.0).bps(), 250.0);
  r += BitsPerSec{1.0};
  EXPECT_DOUBLE_EQ(r.bps(), 1001.0);
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(format_bytes(Bytes{512}), "512 B");
  EXPECT_EQ(format_bytes(2_KB), "2.00 KB");
  EXPECT_EQ(format_bytes(Bytes{1'500'000}), "1.50 MB");
  EXPECT_EQ(format_bytes(240_GB), "240.00 GB");
  EXPECT_EQ(format_bytes(Bytes{3'000'000'000'000LL}), "3.00 TB");
}

TEST(Formatting, Rate) {
  EXPECT_EQ(format_rate(10_Gbps), "10.00 Gbps");
  EXPECT_EQ(format_rate(BitsPerSec{2.5e6}), "2.50 Mbps");
  EXPECT_EQ(format_rate(BitsPerSec{900.0}), "900.00 bps");
  EXPECT_EQ(format_rate(BitsPerSec{42e3}), "42.00 Kbps");
}

}  // namespace
}  // namespace pythia::util
