// Semantic state-coverage analysis for pythia-lint (rules R6-R8).
//
// The token rules in analyzer.cpp catch nondeterminism *patterns*; this layer
// proves a structural property of the checkpoint subsystem: every piece of
// logical state is covered by the snapshot/fingerprint contract. It is a
// two-pass design over the already-lexed token streams:
//
//   Pass 1 (parse_semantics) parses class/struct definitions in the snapshot
//   scope into per-type member tables — name, declared-type identifiers,
//   static/mutable flags, declaration site — reusing the lexer's tokens. It
//   also indexes the bodies of every encode_*/decode_*/serialize/deserialize
//   function (plus the configured fingerprint functions): the identifiers
//   they reference and the ordered sequence of StateEncoder::put_* /
//   StateDecoder::get_* calls they make.
//
//   Pass 2 runs the rules over the model:
//     R6 snapshot-skip     — every non-static data member of a type that
//                            defines encode_state must be referenced in that
//                            type's encode_state/encode_behavior/
//                            encode_counters bodies, or carry an annotated
//                            allow(snapshot-skip).
//     R7 stream-symmetry   — the ordered put_* kind sequence of an encode
//                            body must match the get_* kinds of its paired
//                            decode body (encode_X <-> decode_X,
//                            serialize <-> deserialize), width-normalized,
//                            catching order/width drift that corrupts every
//                            later field.
//     R8 fingerprint-skip  — every member of a config struct reachable from
//                            the configured root types must appear in the
//                            configured fingerprint-function bodies, or
//                            carry an annotated allow(fingerprint-skip).
//
// Like the token rules, everything here is a one-sided heuristic: coverage
// is "the member's identifier appears in the relevant body", which
// over-approximates real serialization (a mention in a comment-adjacent
// expression counts) but can never rot silently — deleting the encode line
// for a member turns the tree red until the member is re-encoded or the skip
// is justified in writing.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "config.hpp"
#include "lexer.hpp"

namespace pythia::lint {

/// One parsed non-function class member.
struct MemberDecl {
  std::string name;
  std::string file;
  int line = 0;
  int col = 0;
  bool is_static = false;   // static or constexpr: not instance state
  bool is_mutable = false;
  /// Identifier tokens of the declared type (before the declarator name);
  /// drives config-struct reachability for R8.
  std::vector<std::string> type_idents;
};

/// Member table for one class/struct (keyed by unqualified name; same-named
/// types merge, which is the usual one-sided trade: a false merge can only
/// widen coverage checks, never hide a member).
struct TypeTable {
  std::string name;
  std::string file;  // file of the first definition seen
  int line = 0;
  std::vector<MemberDecl> members;
};

/// One put_*/get_* call inside an indexed function body.
struct StreamCall {
  std::string kind;  // width-normalized: "8", "32", "64", "str"
  bool is_put = false;
  int line = 0;
  int col = 0;
};

/// An indexed function definition (encode/decode/serialize/fingerprint).
struct FunctionBody {
  std::string owner;  // unqualified class name; empty for free functions
  std::string name;
  std::string file;
  int line = 0;  // line of the function name token in the definition
  int col = 0;
  std::set<std::string> idents;     // every identifier referenced in the body
  std::vector<StreamCall> calls;    // ordered stream codec calls
};

struct SemanticModel {
  std::map<std::string, TypeTable> types;
  std::vector<FunctionBody> functions;
};

/// Pass 1 for one file: parses type definitions and indexes interesting
/// function bodies from `code` (the comment/preproc-stripped token stream).
/// `extra_functions` are additionally indexed by exact name (the configured
/// fingerprint functions). Never fails; unparseable constructs are skipped.
void parse_semantics(const std::string& path, const std::vector<Token>& code,
                     const std::set<std::string>& extra_functions,
                     SemanticModel& model);

/// R6: snapshot field coverage.
void check_snapshot_coverage(const SemanticModel& model,
                             std::vector<Finding>& out);

/// R7: encode/decode stream symmetry.
void check_stream_symmetry(const SemanticModel& model,
                           std::vector<Finding>& out);

/// R8: fingerprint coverage over config structs reachable from `cfg`'s
/// fingerprint roots. Inert when no root type or fingerprint function is
/// present in the model (so snippet-sized analyses don't mass-fire).
void check_fingerprint_coverage(const SemanticModel& model, const Config& cfg,
                                std::vector<Finding>& out);

}  // namespace pythia::lint
