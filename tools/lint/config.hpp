// Configuration for pythia-lint.
//
// Loaded from a checked-in TOML-subset file (tools/lint/pythia_lint.toml).
// The parser supports exactly what the config needs — `[section]` headers,
// `key = "string"`, `key = ["a", "b"]`, `key = true|false`, and `#` comments
// — so the tool carries no third-party dependency.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pythia::lint {

struct Config {
  // Directories (relative to the repo root) walked for sources to analyze.
  std::vector<std::string> scan_roots = {"src", "bench", "examples"};

  // Path prefixes (relative, '/'-separated) forming the deterministic scope:
  // R1 (unordered-iter) and R3 (pointer-order) fire only here, and R2
  // (wall-clock) has no allowlist escape here short of an annotation.
  std::vector<std::string> deterministic_scopes;

  // Path prefixes where wall-clock / RNG primitives are permitted without
  // annotation (timing infrastructure, benches).
  std::vector<std::string> wall_clock_allow;

  // Directories walked for headers by --emit-header-tus (R4).
  std::vector<std::string> header_roots = {"src"};

  // Path prefixes forming the snapshot scope: the semantic passes (R6
  // snapshot-skip, R7 stream-symmetry, R8 fingerprint-skip) parse member
  // tables and encode/decode bodies only here. Empty disables them.
  std::vector<std::string> snapshot_scopes;

  // Root type names for R8 reachability (e.g. ScenarioConfig): every member
  // of every config struct transitively reachable from these must enter the
  // fingerprint computation.
  std::vector<std::string> fingerprint_roots;

  // Function names whose bodies constitute "the fingerprint computation"
  // for R8 (e.g. scenario_fingerprint, encode_scenario_config).
  std::vector<std::string> fingerprint_functions;

  // Path prefixes excluded from scanning entirely (generated code, vendored
  // sources).
  std::vector<std::string> skip_paths;
};

/// Parses the TOML-subset text. Returns std::nullopt and fills `error` on a
/// malformed line (the message includes the 1-based line number).
[[nodiscard]] std::optional<Config> parse_config(const std::string& text,
                                                 std::string& error);

/// True if `path` (repo-relative, '/'-separated) falls under any prefix in
/// `prefixes`. A prefix matches whole path components: "src/net" matches
/// "src/net/fabric.cpp" but not "src/netflow.cpp". Prefixes may also name a
/// file stem exactly ("src/util/thread_pool" matches thread_pool.cpp/.hpp).
[[nodiscard]] bool path_in(const std::string& path,
                           const std::vector<std::string>& prefixes);

}  // namespace pythia::lint
