// Rule engine for pythia-lint.
//
// The analyzer enforces the bit-identical simulation contract statically:
//
//   R1 unordered-iter   — no range-for / .begin() traversal of
//                         std::unordered_map / std::unordered_set (or
//                         aliases, or functions returning references to
//                         them) inside deterministic scopes.
//   R2 wall-clock       — no std::rand/srand, std::random_device, time(),
//                         or std:: chrono clocks outside the configured
//                         timing allowlist.
//   R3 pointer-order    — no ordered containers keyed on raw pointers and
//                         no comparator-less sort of pointer vectors
//                         inside deterministic scopes (address order varies
//                         run to run under ASLR).
//   R5 suppressions     — every `// pythia-lint: allow(<rule>) <why>`
//                         annotation must name a known rule, carry a
//                         justification, and suppress at least one finding
//                         (otherwise it is reported as stale).
//   R6 snapshot-skip    — every non-static data member of a type defining
//                         encode_state must be referenced in its encode
//                         bodies (see semantics.hpp).
//   R7 stream-symmetry  — paired encode/decode bodies must move the same
//                         ordered sequence of stream widths.
//   R8 fingerprint-skip — every config-struct member reachable from the
//                         configured fingerprint roots must enter the
//                         fingerprint computation.
//
// R4 (header self-containment) is not a token rule; it is implemented by
// --emit-header-tus in main.cpp plus the check_headers CMake target.
// R6-R8 are semantic passes over parsed member tables and indexed
// encode/decode/fingerprint bodies (semantics.{hpp,cpp}); they run on files
// inside the configured snapshot scope. Their annotations accept an optional
// `group` modifier — `// pythia-lint: allow(<rule>, group) <why>` — that
// covers the contiguous declaration block below it (until the first blank
// line), so a run of scratch members needs one justification, not one per
// line.
//
// Analysis is a whole-program token pass: container/alias/function names are
// collected across every scanned file first (so a member declared in a
// header is recognized when iterated in its .cpp), then rules run per file.
// Everything is heuristic — no semantic analysis — but each heuristic is
// deliberately one-sided: false positives are cheap (annotate with a
// justification), while the patterns that matter (the ones that have
// actually introduced nondeterminism) are all caught.
#pragma once

#include <string>
#include <vector>

#include "config.hpp"

namespace pythia::lint {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::string text;
};

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;        // e.g. "unordered-iter"
  std::string message;
  std::string suggestion;  // printed under --fix-suggestions
};

inline constexpr const char* kRuleUnorderedIter = "unordered-iter";
inline constexpr const char* kRuleWallClock = "wall-clock";
inline constexpr const char* kRulePointerOrder = "pointer-order";
inline constexpr const char* kRuleBadSuppression = "bad-suppression";
inline constexpr const char* kRuleStaleSuppression = "stale-suppression";
inline constexpr const char* kRuleSnapshotSkip = "snapshot-skip";
inline constexpr const char* kRuleStreamSymmetry = "stream-symmetry";
inline constexpr const char* kRuleFingerprintSkip = "fingerprint-skip";

/// Runs all token rules over `files`. Findings are sorted by
/// (file, line, col, rule) so output is deterministic.
[[nodiscard]] std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                                           const Config& cfg);

/// Formats one finding clang-style: `file:line:col: rule: message`.
[[nodiscard]] std::string format_finding(const Finding& f,
                                         bool fix_suggestions);

}  // namespace pythia::lint
