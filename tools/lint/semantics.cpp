#include "semantics.hpp"

#include <algorithm>

namespace pythia::lint {

namespace {

[[nodiscard]] const Token* tok_at(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() ? &t[i] : nullptr;
}

[[nodiscard]] bool is_ident(const Token* t, const char* text) {
  return t != nullptr && t->kind == TokKind::kIdentifier && t->text == text;
}

[[nodiscard]] bool is_punct(const Token* t, const char* text) {
  return t != nullptr && t->kind == TokKind::kPunct && t->text == text;
}

// Skips a balanced run starting at t[i] == open. Returns the index one past
// the matching close (or t.size() on imbalance — malformed input degrades to
// "rest of file skipped", never a crash).
[[nodiscard]] std::size_t skip_balanced(const std::vector<Token>& t,
                                        std::size_t i, const char* open,
                                        const char* close) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(&t[i], open)) ++depth;
    if (is_punct(&t[i], close) && --depth == 0) return i + 1;
  }
  return t.size();
}

// Conservative template-argument skip for declaration contexts: t[i] == '<'.
// Returns the index one past the matching '>' only if it closes before a
// ';', '{' or '}' at paren depth 0 (otherwise the '<' was a comparison and
// the caller should treat it as an ordinary operator: returns i + 1).
[[nodiscard]] std::size_t try_skip_template(const std::vector<Token>& t,
                                            std::size_t i) {
  int angle = 0;
  int paren = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const Token& tk = t[j];
    if (tk.kind != TokKind::kPunct) continue;
    if (tk.text == "(" || tk.text == "[") ++paren;
    if (tk.text == ")" || tk.text == "]") --paren;
    if (paren != 0) continue;
    if (tk.text == ";" || tk.text == "{" || tk.text == "}") return i + 1;
    if (tk.text == "<") ++angle;
    if (tk.text == ">" && --angle == 0) return j + 1;
    if (tk.text == ">>" && (angle -= 2) <= 0) return j + 1;
  }
  return i + 1;
}

// Normalizes a put_*/get_* suffix to the wire width it moves. bool rides u8;
// i64/f64/time/duration all ride u64. Unknown suffixes return "".
[[nodiscard]] std::string stream_width(const std::string& suffix) {
  if (suffix == "u8" || suffix == "bool") return "8";
  if (suffix == "u32") return "32";
  if (suffix == "u64" || suffix == "i64" || suffix == "f64" ||
      suffix == "time" || suffix == "duration") {
    return "64";
  }
  if (suffix == "string") return "str";
  return "";
}

[[nodiscard]] bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Function names whose bodies feed the semantic model.
[[nodiscard]] bool is_codec_function(const std::string& name) {
  return starts_with(name, "encode_") || starts_with(name, "decode_") ||
         name == "serialize" || name == "deserialize";
}

class Parser {
 public:
  Parser(const std::string& path, const std::vector<Token>& code,
         const std::set<std::string>& extra_functions, SemanticModel& model)
      : path_(path), t_(code), extra_(extra_functions), model_(model) {}

  void run() { scan_region(0, t_.size(), /*in_class=*/false, ""); }

 private:
  // Collects body identifiers and stream calls for an interesting function.
  // `i` points at the opening '{'; returns the index one past the body.
  std::size_t index_function_body(std::size_t i, const std::string& owner,
                                  const Token& name_tok) {
    FunctionBody fb;
    fb.owner = owner;
    fb.name = name_tok.text;
    fb.file = path_;
    fb.line = name_tok.line;
    fb.col = name_tok.col;
    const std::size_t end = skip_balanced(t_, i, "{", "}");
    for (std::size_t j = i; j < end && j < t_.size(); ++j) {
      if (t_[j].kind != TokKind::kIdentifier) continue;
      fb.idents.insert(t_[j].text);
      const std::string& id = t_[j].text;
      const bool put = starts_with(id, "put_");
      const bool get = starts_with(id, "get_");
      if ((put || get) && is_punct(tok_at(t_, j + 1), "(")) {
        const std::string width = stream_width(id.substr(4));
        if (!width.empty()) {
          fb.calls.push_back(StreamCall{width, put, t_[j].line, t_[j].col});
        }
      }
    }
    model_.functions.push_back(std::move(fb));
    return end;
  }

  // From t_[i] (one past a ')' of a function declarator), scans the
  // const/noexcept/override/trailing-return tail. Returns the index of the
  // opening '{' of a definition, or the index of the terminating ';'/'='
  // for a plain declaration, or t_.size().
  [[nodiscard]] std::size_t find_function_body(std::size_t i) const {
    for (; i < t_.size(); ++i) {
      const Token& tk = t_[i];
      if (is_punct(&tk, "{")) return i;
      if (is_punct(&tk, ";") || is_punct(&tk, "=")) return i;
      if (is_punct(&tk, "(")) {  // noexcept(...)
        i = skip_balanced(t_, i, "(", ")") - 1;
        continue;
      }
      if (is_punct(&tk, "<")) {
        i = try_skip_template(t_, i) - 1;
        continue;
      }
      // const, noexcept, override, final, ->, type tokens of a trailing
      // return, :: — all fine to walk over.
    }
    return t_.size();
  }

  [[nodiscard]] bool is_interesting_function(const std::string& name) const {
    return is_codec_function(name) || extra_.count(name) > 0;
  }

  TypeTable& type_entry(const Token& name_tok) {
    TypeTable& tt = model_.types[name_tok.text];
    if (tt.name.empty()) {
      tt.name = name_tok.text;
      tt.file = path_;
      tt.line = name_tok.line;
    }
    return tt;
  }

  // t_[i] is the class/struct/union keyword. Parses the definition if one
  // follows (braced body); returns the index one past it, or past the ';'
  // of a forward declaration. `members_of` receives the name of the defined
  // type so a trailing declarator (`struct X {...} x_;`) can be attributed.
  std::size_t parse_class(std::size_t i, std::string* defined_name) {
    std::size_t j = i + 1;
    while (is_punct(tok_at(t_, j), "[")) j = skip_balanced(t_, j, "[", "]");
    const Token* name = tok_at(t_, j);
    const bool named = name != nullptr && name->kind == TokKind::kIdentifier;
    if (named) ++j;
    // Walk to the body '{' or a ';' (forward declaration / member of
    // elaborated type). Base-clause commas/colons and template args are
    // skipped structurally.
    while (j < t_.size()) {
      const Token& tk = t_[j];
      if (is_punct(&tk, "{")) break;
      if (is_punct(&tk, ";") || is_punct(&tk, ")") || is_punct(&tk, ">") ||
          is_punct(&tk, ",") || is_punct(&tk, "=")) {
        // `struct X;`, or an elaborated type in a parameter/template/member
        // position (`const struct X& p`): no definition here.
        return j;
      }
      if (is_punct(&tk, "<")) {
        j = try_skip_template(t_, j);
        continue;
      }
      if (is_punct(&tk, "(")) {
        j = skip_balanced(t_, j, "(", ")");
        continue;
      }
      ++j;
    }
    if (j >= t_.size()) return t_.size();
    const std::size_t body_end = skip_balanced(t_, j, "{", "}");
    if (named) {
      if (defined_name != nullptr) *defined_name = name->text;
      type_entry(*name);
      scan_region(j + 1, body_end - 1, /*in_class=*/true, name->text);
    }
    return body_end;
  }

  // Walks [begin, end). At file scope (in_class == false) it looks for type
  // definitions and out-of-line interesting function definitions; inside a
  // class body it additionally records data members of `owner`.
  void scan_region(std::size_t begin, std::size_t end, bool in_class,
                   const std::string& owner) {
    std::size_t i = begin;
    while (i < end && i < t_.size()) {
      const Token& tk = t_[i];

      if (is_punct(&tk, ";")) {
        ++i;
        continue;
      }
      if (in_class &&
          (is_ident(&tk, "public") || is_ident(&tk, "private") ||
           is_ident(&tk, "protected")) &&
          is_punct(tok_at(t_, i + 1), ":")) {
        i += 2;
        continue;
      }
      if (is_ident(&tk, "enum")) {
        // enum [class] X [: T] { ... } ;  — nothing inside is a data member.
        while (i < end && !is_punct(&t_[i], "{") && !is_punct(&t_[i], ";")) {
          ++i;
        }
        if (i < end && is_punct(&t_[i], "{")) {
          i = skip_balanced(t_, i, "{", "}");
        }
        continue;
      }
      if (is_ident(&tk, "using") || is_ident(&tk, "typedef") ||
          is_ident(&tk, "friend") || is_ident(&tk, "static_assert")) {
        while (i < end && !is_punct(&t_[i], ";")) {
          if (is_punct(&t_[i], "{")) {
            i = skip_balanced(t_, i, "{", "}");
            continue;
          }
          ++i;
        }
        continue;
      }
      if (is_ident(&tk, "template")) {
        ++i;
        if (is_punct(tok_at(t_, i), "<")) i = try_skip_template(t_, i);
        continue;
      }
      if (is_ident(&tk, "namespace") || is_ident(&tk, "extern")) {
        // namespace N { ... } / extern "C" { ... }: recurse transparently.
        while (i < end && !is_punct(&t_[i], "{") && !is_punct(&t_[i], ";")) {
          ++i;
        }
        if (i < end && is_punct(&t_[i], "{")) {
          const std::size_t body_end = skip_balanced(t_, i, "{", "}");
          scan_region(i + 1, body_end - 1, in_class, owner);
          i = body_end;
        }
        continue;
      }
      if (is_ident(&tk, "class") || is_ident(&tk, "struct") ||
          is_ident(&tk, "union")) {
        std::string defined;
        std::size_t after = parse_class(i, &defined);
        // `struct X { ... } x_;` — the declarator names a member/variable.
        if (in_class && !defined.empty()) {
          while (after < end && t_[after].kind == TokKind::kIdentifier) {
            record_member(owner, t_[after], {defined}, false, false);
            ++after;
            if (is_punct(tok_at(t_, after), ",")) ++after;
          }
        }
        while (after < end && !is_punct(&t_[after], ";")) ++after;
        i = after < end ? after + 1 : after;
        continue;
      }

      // A generic statement: either a member/variable declaration or a
      // function declaration/definition.
      const std::size_t next = parse_statement(i, end, in_class, owner);
      // Guarantee progress: a stray '}' (or any bookkeeping mismatch in
      // malformed input) must never stall the scan.
      i = next > i ? next : i + 1;
    }
  }

  void record_member(const std::string& owner, const Token& name_tok,
                     std::vector<std::string> type_idents, bool is_static,
                     bool is_mutable) {
    if (owner.empty()) return;
    TypeTable& tt = model_.types[owner];
    if (tt.name.empty()) {
      tt.name = owner;
      tt.file = path_;
      tt.line = name_tok.line;
    }
    MemberDecl m;
    m.name = name_tok.text;
    m.file = path_;
    m.line = name_tok.line;
    m.col = name_tok.col;
    m.is_static = is_static;
    m.is_mutable = is_mutable;
    m.type_idents = std::move(type_idents);
    // Re-parses of the same header (multiple TUs in one run never happen —
    // each file is lexed once — but the same type can be opened twice via
    // ifdef branches); keep the first sighting of a name.
    for (const MemberDecl& existing : tt.members) {
      if (existing.name == m.name) return;
    }
    tt.members.push_back(std::move(m));
  }

  // Parses one declaration-or-definition statement starting at t_[i].
  // Returns the index one past it.
  std::size_t parse_statement(std::size_t i, std::size_t end, bool in_class,
                              const std::string& owner) {
    bool is_static = false;
    bool is_mutable = false;
    // Leading specifiers.
    while (i < end) {
      const Token& tk = t_[i];
      if (is_ident(&tk, "static") || is_ident(&tk, "constexpr") ||
          is_ident(&tk, "constinit")) {
        is_static = true;
        ++i;
        continue;
      }
      if (is_ident(&tk, "mutable")) {
        is_mutable = true;
        ++i;
        continue;
      }
      if (is_ident(&tk, "inline") || is_ident(&tk, "virtual") ||
          is_ident(&tk, "explicit") || is_ident(&tk, "thread_local")) {
        ++i;
        continue;
      }
      if (is_punct(&tk, "[") && is_punct(tok_at(t_, i + 1), "[")) {
        i = skip_balanced(t_, i, "[", "]");  // [[nodiscard]] etc.
        continue;
      }
      break;
    }

    // Identifiers stream through `pending`: the newest one is always the
    // declarator-name candidate; every identifier it displaces was part of
    // the declared type (drives R8 reachability).
    std::vector<std::string> type_idents;
    const Token* pending = nullptr;  // candidate declarator name
    bool seen_paren = false;         // a top-level '(': function-ish

    auto flush_member = [&](const Token* name_tok) {
      if (name_tok == nullptr || seen_paren || !in_class) return;
      if (name_tok->text == "operator") return;  // operator= and friends
      record_member(owner, *name_tok, type_idents, is_static, is_mutable);
    };

    auto shift_ident = [&](const Token& tk) {
      if (pending != nullptr) type_idents.push_back(pending->text);
      pending = &tk;
    };

    while (i < end) {
      const Token& tk = t_[i];
      if (tk.kind == TokKind::kIdentifier) {
        shift_ident(tk);
        if (is_punct(tok_at(t_, i + 1), "<")) {
          // Type template: keep the argument list's identifiers as type
          // identifiers too (std::vector<SubConfig> reaches SubConfig).
          const std::size_t past = try_skip_template(t_, i + 1);
          for (std::size_t j = i + 2; past > i + 2 && j < past - 1; ++j) {
            if (t_[j].kind == TokKind::kIdentifier) {
              type_idents.push_back(t_[j].text);
            }
          }
          i = past;
          continue;
        }
        ++i;
        continue;
      }
      if (tk.kind != TokKind::kPunct) {
        ++i;
        continue;
      }
      if (tk.text == ";") {
        // `int x;` — the last identifier is the declarator.
        if (!seen_paren && pending != nullptr && !type_idents.empty()) {
          flush_member(pending);
        }
        return i + 1;
      }
      if (tk.text == "(") {
        if (pending != nullptr && !seen_paren) {
          seen_paren = true;
          const Token* fn_name = pending;
          i = skip_balanced(t_, i, "(", ")");
          const std::size_t at = find_function_body(i);
          if (at < t_.size() && is_punct(&t_[at], "{")) {
            std::string fowner = owner;
            // Out-of-line definition: Type::name(...)
            if (!in_class) {
              fowner.clear();
              const std::size_t ni = static_cast<std::size_t>(fn_name - &t_[0]);
              if (ni >= 2 && is_punct(&t_[ni - 1], "::") &&
                  t_[ni - 2].kind == TokKind::kIdentifier) {
                fowner = t_[ni - 2].text;
              }
            }
            if (is_interesting_function(fn_name->text)) {
              return index_function_body(at, fowner, *fn_name);
            }
            return skip_balanced(t_, at, "{", "}");
          }
          if (at < t_.size() && is_punct(&t_[at], "=")) {
            // = 0 / = default / = delete; runs to the ';'.
            i = at;
            continue;
          }
          if (at < t_.size() && is_punct(&t_[at], ";")) return at + 1;
          return t_.size();
        }
        // Parenthesized initializer or operator call in an initializer.
        i = skip_balanced(t_, i, "(", ")");
        continue;
      }
      if (tk.text == "{") {
        if (!seen_paren && pending != nullptr) {
          // Brace initializer: `util::SimTime t_{-1};`
          flush_member(pending);
          i = skip_balanced(t_, i, "{", "}");
          pending = nullptr;
          continue;
        }
        // Stray block (static initializer lambdas, etc.): skip it.
        i = skip_balanced(t_, i, "{", "}");
        continue;
      }
      if (tk.text == "=") {
        if (pending != nullptr && !seen_paren) flush_member(pending);
        // Skip the initializer to the ',' or ';' at depth 0.
        ++i;
        int depth = 0;
        while (i < end) {
          const Token& it = t_[i];
          if (it.kind == TokKind::kPunct) {
            if (it.text == "(" || it.text == "{" || it.text == "[") ++depth;
            if (it.text == ")" || it.text == "}" || it.text == "]") --depth;
            if (depth == 0 && it.text == ";") return i + 1;
            if (depth == 0 && it.text == ",") break;
          }
          ++i;
        }
        pending = nullptr;
        ++i;
        continue;
      }
      if (tk.text == ",") {
        if (pending != nullptr && !seen_paren) flush_member(pending);
        pending = nullptr;
        ++i;
        continue;
      }
      if (tk.text == "[") {
        if (is_punct(tok_at(t_, i + 1), "[")) {
          i = skip_balanced(t_, i, "[", "]");  // attribute
          continue;
        }
        // Array declarator: `int a[4];` — the name precedes the bracket.
        if (pending != nullptr && !seen_paren) {
          flush_member(pending);
          pending = nullptr;
        }
        i = skip_balanced(t_, i, "[", "]");
        continue;
      }
      if (tk.text == "}") {
        // Region bookkeeping error (malformed input): stop the statement.
        return i;
      }
      ++i;  // *, &, ::, <, >, ... — structure-neutral here
    }
    return end;
  }

  const std::string& path_;
  const std::vector<Token>& t_;
  const std::set<std::string>& extra_;
  SemanticModel& model_;
};

// The encode bodies whose identifier references count as R6 coverage.
[[nodiscard]] bool counts_for_snapshot_coverage(const std::string& name) {
  return name == "encode_state" || name == "encode_behavior" ||
         name == "encode_counters";
}

[[nodiscard]] std::string decode_counterpart(const std::string& name) {
  if (name == "deserialize") return "serialize";
  if (starts_with(name, "decode_")) return "encode_" + name.substr(7);
  return "";
}

}  // namespace

void parse_semantics(const std::string& path, const std::vector<Token>& code,
                     const std::set<std::string>& extra_functions,
                     SemanticModel& model) {
  Parser(path, code, extra_functions, model).run();
}

void check_snapshot_coverage(const SemanticModel& model,
                             std::vector<Finding>& out) {
  for (const auto& [type_name, tt] : model.types) {
    std::set<std::string> covered;
    bool has_encode_state = false;
    for (const FunctionBody& fb : model.functions) {
      if (fb.owner != type_name || !counts_for_snapshot_coverage(fb.name)) {
        continue;
      }
      if (fb.name == "encode_state") has_encode_state = true;
      covered.insert(fb.idents.begin(), fb.idents.end());
    }
    if (!has_encode_state) continue;

    for (const MemberDecl& m : tt.members) {
      if (m.is_static || covered.count(m.name) > 0) continue;
      out.push_back(Finding{
          m.file, m.line, m.col, kRuleSnapshotSkip,
          "data member '" + m.name + "' of '" + type_name +
              "' is never referenced in its encode_state/encode_behavior/"
              "encode_counters body; a restore would silently lose it",
          "serialize the member in " + type_name +
              "::encode_state (bump Snapshot::kFormatVersion if the layout "
              "changes), or — if it is a derived cache, scratch arena, or "
              "wiring — annotate the declaration: // pythia-lint: "
              "allow(snapshot-skip) <why restore rebuilds it>"});
    }
  }
}

void check_stream_symmetry(const SemanticModel& model,
                           std::vector<Finding>& out) {
  for (const FunctionBody& dec : model.functions) {
    const std::string counterpart = decode_counterpart(dec.name);
    if (counterpart.empty()) continue;
    const FunctionBody* enc = nullptr;
    for (const FunctionBody& fb : model.functions) {
      if (fb.name == counterpart && fb.owner == dec.owner) {
        enc = &fb;
        break;
      }
    }
    if (enc == nullptr) continue;

    std::vector<const StreamCall*> puts;
    for (const StreamCall& c : enc->calls) {
      if (c.is_put) puts.push_back(&c);
    }
    std::vector<const StreamCall*> gets;
    for (const StreamCall& c : dec.calls) {
      if (!c.is_put) gets.push_back(&c);
    }
    if (puts.empty() && gets.empty()) continue;

    const std::size_t n = std::min(puts.size(), gets.size());
    std::size_t k = 0;
    while (k < n && puts[k]->kind == gets[k]->kind) ++k;
    if (k == puts.size() && k == gets.size()) continue;

    const std::string where = (dec.owner.empty() ? "" : dec.owner + "::");
    std::string msg;
    if (k < n) {
      msg = "decode stream of " + where + dec.name + " reads a " +
            gets[k]->kind + "-bit value at position " + std::to_string(k + 1) +
            " where " + where + counterpart + " writes " + puts[k]->kind +
            (puts[k]->kind == "str" ? "" : "-bit") +
            "; every later field decodes corrupt";
    } else {
      msg = "decode stream of " + where + dec.name + " reads " +
            std::to_string(gets.size()) + " values but " + where +
            counterpart + " writes " + std::to_string(puts.size()) +
            "; the streams drift apart at position " + std::to_string(k + 1);
    }
    out.push_back(Finding{
        dec.file, dec.line, dec.col, kRuleStreamSymmetry, msg,
        "make the get_* sequence mirror the put_* sequence (width and "
        "order); if the asymmetry is deliberate framing, annotate the "
        "definition: // pythia-lint: allow(stream-symmetry) <why>"});
  }
}

void check_fingerprint_coverage(const SemanticModel& model, const Config& cfg,
                                std::vector<Finding>& out) {
  if (cfg.fingerprint_roots.empty() || cfg.fingerprint_functions.empty()) {
    return;
  }
  std::set<std::string> fns(cfg.fingerprint_functions.begin(),
                            cfg.fingerprint_functions.end());
  std::set<std::string> covered;
  bool any_fn = false;
  for (const FunctionBody& fb : model.functions) {
    if (fns.count(fb.name) == 0) continue;
    any_fn = true;
    covered.insert(fb.idents.begin(), fb.idents.end());
  }
  if (!any_fn) return;  // snippet-sized run without the fingerprint code

  // Reachability over declared-type identifiers, starting from the roots.
  std::set<std::string> reachable;
  std::vector<std::string> frontier;
  for (const std::string& r : cfg.fingerprint_roots) {
    if (model.types.count(r) > 0 && reachable.insert(r).second) {
      frontier.push_back(r);
    }
  }
  while (!frontier.empty()) {
    const std::string name = frontier.back();
    frontier.pop_back();
    const TypeTable& tt = model.types.at(name);
    for (const MemberDecl& m : tt.members) {
      for (const std::string& ti : m.type_idents) {
        if (model.types.count(ti) > 0 && reachable.insert(ti).second) {
          frontier.push_back(ti);
        }
      }
    }
  }

  for (const std::string& name : reachable) {
    const TypeTable& tt = model.types.at(name);
    for (const MemberDecl& m : tt.members) {
      if (m.is_static || covered.count(m.name) > 0) continue;
      out.push_back(Finding{
          m.file, m.line, m.col, kRuleFingerprintSkip,
          "config member '" + m.name + "' of '" + name +
              "' (reachable from a fingerprint root) never enters the "
              "scenario fingerprint; two runs differing only in it would "
              "share a fingerprint and cross-restore silently",
          "encode the member in the fingerprint computation "
          "(src/experiments/checkpoint.cpp), or — if it is derived from "
          "fingerprinted state — annotate the declaration: // pythia-lint: "
          "allow(fingerprint-skip) <why it cannot diverge independently>"});
    }
  }
}

}  // namespace pythia::lint
