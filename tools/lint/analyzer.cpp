#include "analyzer.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "semantics.hpp"

namespace pythia::lint {

namespace {

struct LexedFile {
  const SourceFile* src = nullptr;
  std::vector<Token> all;   // full stream, comments and preproc included
  std::vector<Token> code;  // comments/preproc stripped: what rules match on
};

// A parsed `pythia-lint: allow(<rule>[, group]) <justification>` annotation.
// A plain annotation suppresses findings on one line; a `group` annotation
// suppresses findings of its rule on every line of the contiguous
// declaration block below it (until the first blank line).
struct Annotation {
  std::string file;
  int line = 0;           // line of the comment itself
  int col = 0;
  std::string rule;
  std::string justification;
  int applies_begin = 0;  // first line whose findings this suppresses
  int applies_end = 0;    // last line (inclusive)
  bool group = false;
  bool valid = false;     // parsed and names a known rule with justification
  bool used = false;
};

[[nodiscard]] bool is_known_rule(const std::string& r) {
  return r == kRuleUnorderedIter || r == kRuleWallClock ||
         r == kRulePointerOrder || r == kRuleSnapshotSkip ||
         r == kRuleStreamSymmetry || r == kRuleFingerprintSkip;
}

[[nodiscard]] const Token* tok_at(const std::vector<Token>& toks,
                                  std::size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

[[nodiscard]] bool is_ident(const Token* t, const char* text) {
  return t != nullptr && t->kind == TokKind::kIdentifier && t->text == text;
}

[[nodiscard]] bool is_punct(const Token* t, const char* text) {
  return t != nullptr && t->kind == TokKind::kPunct && t->text == text;
}

// Skips a balanced template argument list starting at toks[i] == '<'.
// Returns the index one past the closing '>' (or toks.size() on imbalance).
// Parentheses inside arguments are honored; '<'/'>' only count at paren
// depth 0, which is correct for type positions (no comparison operators
// appear directly after `unordered_map`).
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& toks,
                                             std::size_t i) {
  int angle = 0;
  int paren = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++paren;
    if (t.text == ")") --paren;
    if (paren != 0) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">") {
      --angle;
      if (angle == 0) return i + 1;
    }
  }
  return toks.size();
}

// Name tables built across the whole scanned file set.
struct NameTables {
  std::set<std::string> unordered_types;   // unordered_map/set + aliases
  std::set<std::string> unordered_vars;    // variables/members/params
  std::set<std::string> unordered_funcs;   // functions returning (refs to) them
  std::set<std::string> pointer_vec_vars;  // std::vector<T*> variables
};

// Pass A: `using X = ...unordered...;` / `typedef ...unordered... X;`.
void collect_aliases(const LexedFile& lf, NameTables& names) {
  const auto& t = lf.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(tok_at(t, i), "using") && t.size() > i + 2 &&
        t[i + 1].kind == TokKind::kIdentifier && is_punct(tok_at(t, i + 2), "=")) {
      for (std::size_t j = i + 3; j < t.size() && !is_punct(&t[j], ";"); ++j) {
        if (t[j].kind == TokKind::kIdentifier &&
            names.unordered_types.count(t[j].text) > 0) {
          names.unordered_types.insert(t[i + 1].text);
          break;
        }
      }
    }
    if (is_ident(tok_at(t, i), "typedef")) {
      std::size_t semi = i;
      bool unordered = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].kind == TokKind::kIdentifier &&
            names.unordered_types.count(t[j].text) > 0) {
          unordered = true;
        }
        if (is_punct(&t[j], ";")) {
          semi = j;
          break;
        }
      }
      if (unordered && semi > i + 1 &&
          t[semi - 1].kind == TokKind::kIdentifier) {
        names.unordered_types.insert(t[semi - 1].text);
      }
    }
  }
}

// Pass B: declarations `<Type><targs>[&*const] name ...`. A following '('
// marks a function returning the container; a declarator terminator marks a
// variable/member/parameter.
void collect_names(const LexedFile& lf, NameTables& names) {
  const auto& t = lf.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const bool unordered = names.unordered_types.count(t[i].text) > 0;
    const bool is_vector = t[i].text == "vector";
    if (!unordered && !is_vector) continue;
    if (i > 0 && (is_punct(&t[i - 1], ".") || is_punct(&t[i - 1], "->"))) {
      continue;  // member access that merely *looks* like a type name
    }

    std::size_t j = i + 1;
    bool ptr_element = false;
    if (is_punct(tok_at(t, j), "<")) {
      const std::size_t end = skip_template_args(t, j);
      // vector<T*>: element type's last token before '>' is '*'.
      if (is_vector && end >= 2 && end <= t.size() &&
          is_punct(&t[end - 2], "*")) {
        ptr_element = true;
      }
      j = end;
    } else if (is_vector) {
      continue;  // bare `vector` identifier without args: not a declaration
    }
    if (is_vector && !ptr_element) continue;

    while (is_punct(tok_at(t, j), "&") || is_punct(tok_at(t, j), "*") ||
           is_ident(tok_at(t, j), "const")) {
      ++j;
    }
    const Token* name = tok_at(t, j);
    if (name == nullptr || name->kind != TokKind::kIdentifier) continue;
    const Token* after = tok_at(t, j + 1);
    if (after == nullptr) continue;
    if (is_punct(after, "(")) {
      if (unordered) names.unordered_funcs.insert(name->text);
    } else if (after->kind == TokKind::kPunct &&
               (after->text == ";" || after->text == "=" ||
                after->text == "{" || after->text == "," ||
                after->text == ")" || after->text == "[")) {
      if (unordered) names.unordered_vars.insert(name->text);
      if (ptr_element) names.pointer_vec_vars.insert(name->text);
    }
  }
}

// R1a: range-for whose range expression mentions an unordered container.
void check_range_for(const LexedFile& lf, const NameTables& names,
                     std::vector<Finding>& out) {
  const auto& t = lf.code;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(&t[i], "for") || !is_punct(&t[i + 1], "(")) continue;
    int depth = 1;
    int ternary = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const Token& tk = t[j];
      if (tk.kind != TokKind::kPunct) continue;
      if (tk.text == "(") ++depth;
      if (tk.text == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (tk.text == "?") ++ternary;
      if (tk.text == ":" && depth == 1) {
        if (ternary > 0) {
          --ternary;
        } else if (colon == 0) {
          colon = j;
        }
      }
    }
    if (colon == 0 || close == 0) continue;  // classic for / macro soup
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind != TokKind::kIdentifier) continue;
      const std::string& id = t[j].text;
      const bool var = names.unordered_vars.count(id) > 0;
      const bool func = names.unordered_funcs.count(id) > 0 &&
                        is_punct(tok_at(t, j + 1), "(");
      const bool type = names.unordered_types.count(id) > 0;
      if (!var && !func && !type) continue;
      out.push_back(Finding{
          lf.src->path, t[i].line, t[i].col, kRuleUnorderedIter,
          "range-for over unordered container '" + id +
              "' in a deterministic scope; hash-table iteration order is "
              "unspecified and may differ across libc++/libstdc++ or after "
              "rehash",
          "copy the keys into a std::vector and std::sort them (or iterate "
          "a parallel sorted index); if every iteration outcome is provably "
          "order-insensitive, annotate the statement: // pythia-lint: "
          "allow(unordered-iter) <why>"});
      break;  // one finding per range-for
    }
  }
}

// R1b: explicit iterator traversal `X.begin()` / `X.cbegin()`.
void check_iterator_loops(const LexedFile& lf, const NameTables& names,
                          std::vector<Finding>& out) {
  const auto& t = lf.code;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        names.unordered_vars.count(t[i].text) == 0) {
      continue;
    }
    if (!is_punct(&t[i + 1], ".") && !is_punct(&t[i + 1], "->")) continue;
    if (!is_ident(&t[i + 2], "begin") && !is_ident(&t[i + 2], "cbegin")) {
      continue;
    }
    if (!is_punct(&t[i + 3], "(")) continue;
    out.push_back(Finding{
        lf.src->path, t[i].line, t[i].col, kRuleUnorderedIter,
        "iterator traversal of unordered container '" + t[i].text +
            "' in a deterministic scope; hash-table iteration order is "
            "unspecified",
        "traverse a sorted snapshot of the keys instead, or annotate: "
        "// pythia-lint: allow(unordered-iter) <why>"});
  }
}

// R2: wall-clock reads and ambient RNG.
void check_wall_clock(const LexedFile& lf, std::vector<Finding>& out) {
  const auto& t = lf.code;
  auto prev_is_member_or_scope = [&](std::size_t i) {
    if (i == 0) return false;
    const Token& p = t[i - 1];
    if (is_punct(&p, ".") || is_punct(&p, "->")) return true;
    if (is_punct(&p, "::")) {
      // std::time / std::rand are exactly what we hunt; any other
      // qualification (sim::time, Foo::rand) is someone else's symbol.
      return !(i >= 2 && is_ident(&t[i - 2], "std"));
    }
    return false;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& id = t[i].text;

    if (id == "steady_clock" || id == "system_clock" ||
        id == "high_resolution_clock" || id == "random_device") {
      out.push_back(Finding{
          lf.src->path, t[i].line, t[i].col, kRuleWallClock,
          "'" + id +
              "' in deterministic code; wall-clock/entropy reads make runs "
              "irreproducible",
          "derive randomness from util::random seed lanes and time from the "
          "simulation clock; timing for *counters only* may be annotated: "
          "// pythia-lint: allow(wall-clock) <why>"});
      continue;
    }
    if ((id == "rand" || id == "srand" || id == "time") &&
        is_punct(tok_at(t, i + 1), "(")) {
      if (prev_is_member_or_scope(i)) continue;
      // `SimTime time() const` and `double time(...)` are declarations: the
      // preceding token is the return type. Keywords that legitimately
      // precede a call keep the finding alive.
      if (i > 0 && t[i - 1].kind == TokKind::kIdentifier &&
          t[i - 1].text != "return" && t[i - 1].text != "else" &&
          t[i - 1].text != "do" && t[i - 1].text != "case") {
        continue;
      }
      out.push_back(Finding{
          lf.src->path, t[i].line, t[i].col, kRuleWallClock,
          "call to '" + id +
              "()' in deterministic code; ambient RNG/wall-clock state is "
              "not replayable",
          id == "time"
              ? "use the simulation clock (util::SimTime) instead"
              : "draw from a seeded util::random stream instead"});
    }
  }
}

// R3a: std::map/set/multimap/multiset keyed on a raw pointer type.
void check_pointer_keys(const LexedFile& lf, std::vector<Finding>& out) {
  const auto& t = lf.code;
  for (std::size_t i = 2; i < t.size(); ++i) {
    const std::string& id = t[i].text;
    if (t[i].kind != TokKind::kIdentifier ||
        (id != "map" && id != "set" && id != "multimap" &&
         id != "multiset")) {
      continue;
    }
    if (!is_punct(&t[i - 1], "::") || !is_ident(&t[i - 2], "std")) continue;
    if (!is_punct(tok_at(t, i + 1), "<")) continue;
    // First template argument: up to the first ',' or the closing '>' at
    // angle depth 1.
    int angle = 0;
    std::size_t last = 0;
    bool done = false;
    for (std::size_t j = i + 1; j < t.size() && !done; ++j) {
      const Token& tk = t[j];
      if (tk.kind == TokKind::kPunct) {
        if (tk.text == "<") {
          ++angle;
          continue;
        }
        if (tk.text == ">" && --angle == 0) done = true;
        if (tk.text == "," && angle == 1) done = true;
      }
      if (!done) last = j;
    }
    if (last != 0 && is_punct(&t[last], "*")) {
      out.push_back(Finding{
          lf.src->path, t[i].line, t[i].col, kRulePointerOrder,
          "ordered container keyed on a raw pointer; address order changes "
          "with ASLR and allocation history, so traversal order is not "
          "reproducible",
          "key on a stable id (FlowId/LinkId/slot index) instead, or "
          "annotate: // pythia-lint: allow(pointer-order) <why>"});
    }
  }
}

// R3b: comparator-less std::sort/stable_sort over a vector of pointers.
void check_pointer_sort(const LexedFile& lf, const NameTables& names,
                        std::vector<Finding>& out) {
  const auto& t = lf.code;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        (t[i].text != "sort" && t[i].text != "stable_sort")) {
      continue;
    }
    if (!is_punct(&t[i + 1], "(")) continue;
    int depth = 1;
    int commas = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const Token& tk = t[j];
      if (tk.kind != TokKind::kPunct) continue;
      if (tk.text == "(" || tk.text == "{" || tk.text == "[") ++depth;
      if (tk.text == ")" || tk.text == "}" || tk.text == "]") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (tk.text == "," && depth == 1) ++commas;
    }
    if (close == 0 || commas != 1) continue;  // comparator present (or weird)
    const Token* first = tok_at(t, i + 2);
    if (first == nullptr || first->kind != TokKind::kIdentifier ||
        names.pointer_vec_vars.count(first->text) == 0) {
      continue;
    }
    out.push_back(Finding{
        lf.src->path, t[i].line, t[i].col, kRulePointerOrder,
        "std::" + t[i].text + " of pointer vector '" + first->text +
            "' without a comparator sorts by raw address, which varies "
            "run to run",
        "pass a comparator over stable ids, or annotate: "
        "// pythia-lint: allow(pointer-order) <why>"});
  }
}

// Extracts `pythia-lint: allow(<rule>) <why>` annotations from comments and
// reports parse problems (unknown rule, missing justification) immediately.
std::vector<Annotation> collect_annotations(const LexedFile& lf,
                                            std::vector<Finding>& out) {
  std::vector<Annotation> anns;
  const auto& all = lf.all;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].kind != TokKind::kComment) continue;
    const std::string& text = all[i].text;
    const std::size_t tag = text.find("pythia-lint:");
    if (tag == std::string::npos) continue;

    Annotation a;
    a.file = lf.src->path;
    a.line = all[i].line;
    a.col = all[i].col;

    std::size_t p = text.find("allow(", tag);
    if (p == std::string::npos) {
      out.push_back(Finding{
          a.file, a.line, a.col, kRuleBadSuppression,
          "malformed pythia-lint annotation; expected 'pythia-lint: "
          "allow(<rule>) <justification>'",
          "fix the annotation grammar or delete the comment"});
      continue;
    }
    p += 6;
    const std::size_t q = text.find(')', p);
    if (q == std::string::npos) {
      out.push_back(Finding{a.file, a.line, a.col, kRuleBadSuppression,
                            "unterminated allow(...) in pythia-lint "
                            "annotation",
                            "close the parenthesis"});
      continue;
    }
    a.rule = text.substr(p, q - p);
    // Optional modifier: allow(<rule>, group).
    const std::size_t comma = a.rule.find(',');
    if (comma != std::string::npos) {
      std::string mod = a.rule.substr(comma + 1);
      a.rule = a.rule.substr(0, comma);
      while (!mod.empty() && (mod.front() == ' ' || mod.front() == '\t')) {
        mod.erase(mod.begin());
      }
      while (!a.rule.empty() &&
             (a.rule.back() == ' ' || a.rule.back() == '\t')) {
        a.rule.pop_back();
      }
      if (mod == "group") {
        a.group = true;
      } else {
        out.push_back(Finding{
            a.file, a.line, a.col, kRuleBadSuppression,
            "unknown annotation modifier '" + mod + "'",
            "the only modifier is 'group': // pythia-lint: allow(" + a.rule +
                ", group) <why>"});
        continue;
      }
    }
    std::string just = text.substr(q + 1);
    if (just.size() >= 2 && just.substr(just.size() - 2) == "*/") {
      just = just.substr(0, just.size() - 2);
    }
    while (!just.empty() && (just.front() == ' ' || just.front() == '\t')) {
      just.erase(just.begin());
    }
    while (!just.empty() && (just.back() == ' ' || just.back() == '\t')) {
      just.pop_back();
    }
    a.justification = just;

    if (!is_known_rule(a.rule)) {
      out.push_back(Finding{
          a.file, a.line, a.col, kRuleBadSuppression,
          "annotation names unknown rule '" + a.rule + "'",
          "known rules: unordered-iter, wall-clock, pointer-order, "
          "snapshot-skip, stream-symmetry, fingerprint-skip"});
      continue;
    }
    if (a.justification.empty()) {
      out.push_back(Finding{
          a.file, a.line, a.col, kRuleBadSuppression,
          "allow(" + a.rule + ") annotation is missing its justification",
          "say *why* the suppressed pattern is deterministic, e.g. "
          "// pythia-lint: allow(" + a.rule + ") result is sorted below"});
      continue;
    }

    // A standalone comment (first token on its line) applies to the next
    // line that carries code; a trailing comment applies to its own line.
    bool standalone = true;
    for (const Token& other : all) {
      if (other.line == a.line && &other != &all[i] &&
          other.col < all[i].col) {
        standalone = false;
        break;
      }
    }
    a.applies_begin = a.line;
    if (standalone) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        if (all[j].kind == TokKind::kComment) continue;
        a.applies_begin = all[j].line;
        break;
      }
    }
    a.applies_end = a.applies_begin;
    if (a.group) {
      // A group annotation covers the contiguous declaration block below it:
      // every line from the first covered line down to (but excluding) the
      // first blank line of the raw source.
      const std::string& text = lf.src->text;
      int lineno = 1;
      bool blank = true;
      int last_nonblank = a.applies_begin;
      for (std::size_t c = 0; c <= text.size(); ++c) {
        const bool eol = c == text.size() || text[c] == '\n';
        if (eol) {
          if (lineno >= a.applies_begin) {
            if (blank) break;
            last_nonblank = lineno;
          }
          ++lineno;
          blank = true;
          continue;
        }
        if (text[c] != ' ' && text[c] != '\t' && text[c] != '\r') {
          blank = false;
        }
      }
      a.applies_end = last_nonblank;
    }
    a.valid = true;
    anns.push_back(a);
  }
  return anns;
}

}  // namespace

std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             const Config& cfg) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& f : files) {
    LexedFile lf;
    lf.src = &f;
    lf.all = lex(f.text);
    for (const Token& t : lf.all) {
      if (t.kind != TokKind::kComment && t.kind != TokKind::kPreproc) {
        lf.code.push_back(t);
      }
    }
    lexed.push_back(std::move(lf));
  }

  NameTables names;
  names.unordered_types = {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"};
  // Two rounds so an alias-of-alias (or an alias defined in a file lexed
  // after its use site) still lands in the table.
  for (int round = 0; round < 2; ++round) {
    for (const LexedFile& lf : lexed) collect_aliases(lf, names);
  }
  for (const LexedFile& lf : lexed) collect_names(lf, names);

  std::vector<Finding> findings;
  std::vector<Annotation> anns;
  for (const LexedFile& lf : lexed) {
    const std::string& path = lf.src->path;
    const bool deterministic = path_in(path, cfg.deterministic_scopes);
    const bool clock_allowed = path_in(path, cfg.wall_clock_allow);

    if (deterministic) {
      check_range_for(lf, names, findings);
      check_iterator_loops(lf, names, findings);
      check_pointer_keys(lf, findings);
      check_pointer_sort(lf, names, findings);
    }
    if (!clock_allowed) {
      check_wall_clock(lf, findings);
    }

    std::vector<Annotation> file_anns = collect_annotations(lf, findings);
    anns.insert(anns.end(), file_anns.begin(), file_anns.end());
  }

  // Semantic passes (R6-R8). The model spans every file in the snapshot
  // scope at once: member tables usually live in headers while the encode
  // bodies that cover them live in the matching .cpp.
  if (!cfg.snapshot_scopes.empty()) {
    SemanticModel model;
    std::set<std::string> extra(cfg.fingerprint_functions.begin(),
                                cfg.fingerprint_functions.end());
    for (const LexedFile& lf : lexed) {
      if (!path_in(lf.src->path, cfg.snapshot_scopes)) continue;
      parse_semantics(lf.src->path, lf.code, extra, model);
    }
    check_snapshot_coverage(model, findings);
    check_stream_symmetry(model, findings);
    check_fingerprint_coverage(model, cfg, findings);
  }

  // Apply suppressions globally (semantic findings anchor in headers whose
  // annotations were collected in the same pass), then report stale ones.
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (Annotation& a : anns) {
      if (a.valid && a.rule == f.rule && a.file == f.file &&
          f.line >= a.applies_begin && f.line <= a.applies_end) {
        a.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  for (const Annotation& a : anns) {
    if (a.valid && !a.used) {
      kept.push_back(Finding{
          a.file, a.line, a.col, kRuleStaleSuppression,
          "allow(" + a.rule +
              ") annotation suppresses nothing; the pattern it excused is "
              "gone (or the annotation sits on the wrong line)",
          "delete the annotation, or move it onto the flagged statement"});
    }
  }
  findings = std::move(kept);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return findings;
}

std::string format_finding(const Finding& f, bool fix_suggestions) {
  std::string out = f.file + ":" + std::to_string(f.line) + ":" +
                    std::to_string(f.col) + ": " + f.rule + ": " + f.message;
  if (fix_suggestions && !f.suggestion.empty()) {
    out += "\n  suggestion: " + f.suggestion;
  }
  if (fix_suggestions && is_known_rule(f.rule)) {
    // The exact line to paste above the flagged declaration/statement once
    // the skip is genuinely justified.
    out += "\n  annotation: // pythia-lint: allow(" + f.rule +
           ") <why this is safe>";
  }
  return out;
}

}  // namespace pythia::lint
