// Fixture-driven unit tests for pythia-lint: for every rule a positive, a
// negative, a suppressed, and a stale-suppression case, plus lexer and
// config coverage. These tests call the analyzer in-process on snippet
// "files"; the end-to-end binary behaviour (exit codes over the real tree
// and over the violation fixtures) is exercised by the lint_* ctest entries
// registered in tools/lint/CMakeLists.txt.
#include "analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "config.hpp"
#include "lexer.hpp"

namespace pythia::lint {
namespace {

Config test_config() {
  Config cfg;
  cfg.deterministic_scopes = {"src"};
  cfg.wall_clock_allow = {"allowed"};
  return cfg;
}

std::vector<Finding> run(const std::vector<SourceFile>& files) {
  return analyze(files, test_config());
}

std::vector<Finding> run_one(const std::string& path,
                             const std::string& text) {
  return run({SourceFile{path, text}});
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- lexer ---

TEST(Lexer, SkipsCommentsStringsAndPreprocessor) {
  const auto fs = run_one("src/a.cpp",
                          "// steady_clock in a comment\n"
                          "/* random_device in a block\n   comment */\n"
                          "const char* s = \"steady_clock\";\n"
                          "#include <chrono>  // steady_clock\n"
                          "const char* r = R\"(system_clock)\";\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
}

TEST(Lexer, RawStringDoesNotSwallowFollowingCode) {
  const auto fs = run_one("src/a.cpp",
                          "const char* r = R\"x(text \" )\" more)x\";\n"
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 1);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("ab cd\n  ef\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[2].text, "ef");
  EXPECT_EQ(toks[2].line, 2);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, PreprocessorContinuationIsOneToken) {
  const auto toks = lex("#define X \\\n  steady_clock\nint y;\n");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kPreproc);
  EXPECT_EQ(toks[1].text, "int");
}

// --------------------------------------------------------------- config ---

TEST(ConfigParse, RoundTrips) {
  std::string err;
  const auto cfg = parse_config(
      "# comment\n[scopes]\nscan = [\"src\"]\n"
      "deterministic = [\"src/sim\", \"src/net\"]\nskip = []\n"
      "[rule.wall-clock]\nallow = [\"bench\"]\n"
      "[headers]\nroots = [\"src\"]\n",
      err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->deterministic_scopes.size(), 2u);
  EXPECT_EQ(cfg->wall_clock_allow.size(), 1u);
}

TEST(ConfigParse, MultiLineArraysAndTrailingCommas) {
  std::string err;
  const auto cfg = parse_config(
      "[scopes]\n"
      "deterministic = [\n"
      "  \"src/sim\",  # the event loop\n"
      "  \"src/net\",\n"
      "]\n",
      err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->deterministic_scopes.size(), 2u);
  EXPECT_EQ(cfg->deterministic_scopes[1], "src/net");
}

TEST(ConfigParse, RejectsUnknownKeyWithLineNumber) {
  std::string err;
  EXPECT_FALSE(parse_config("[scopes]\nbogus = [\"x\"]\n", err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(ConfigPathIn, MatchesComponentBoundariesOnly) {
  EXPECT_TRUE(path_in("src/net/fabric.cpp", {"src/net"}));
  EXPECT_FALSE(path_in("src/netflow.cpp", {"src/net"}));
  EXPECT_TRUE(path_in("src/util/thread_pool.cpp", {"src/util/thread_pool"}));
  EXPECT_FALSE(path_in("src/util/thread_pool_extra.cpp",
                       {"src/util/thread_pool"}));
}

// ------------------------------------------------- R1: unordered-iter ----

TEST(R1UnorderedIter, FlagsRangeForOverLocal) {
  const auto fs = run_one("src/a.cpp",
                          "void f() {\n"
                          "  std::unordered_map<int, int> m;\n"
                          "  for (const auto& [k, v] : m) { (void)k; }\n"
                          "}\n");
  ASSERT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(R1UnorderedIter, ResolvesMemberDeclaredInHeader) {
  const auto fs = run({
      SourceFile{"src/b.hpp",
                 "struct S { std::unordered_map<int, long> agg_; };\n"},
      SourceFile{"src/b.cpp", "void S_touch(S& s) {\n"
                              "  for (auto& [k, v] : s.agg_) v = 0;\n"
                              "}\n"},
  });
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, ResolvesTypeAlias) {
  const auto fs = run_one("src/a.cpp",
                          "using RuleMap = std::unordered_map<int, int>;\n"
                          "RuleMap rules_;\n"
                          "void f() { for (auto& r : rules_) (void)r; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, FlagsAccessorReturningUnorderedRef) {
  const auto fs = run_one(
      "src/a.cpp",
      "const std::unordered_set<int>& failed_links() ;\n"
      "void f() { for (int l : failed_links()) (void)l; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, FlagsIteratorBeginLoop) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> rules_;\n"
      "void f() {\n"
      "  for (auto it = rules_.begin(); it != rules_.end(); ++it) {}\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, IgnoresVectorAndOrderedMap) {
  const auto fs = run_one("src/a.cpp",
                          "std::vector<int> v;\n"
                          "std::map<int, int> m;\n"
                          "void f() {\n"
                          "  for (int x : v) (void)x;\n"
                          "  for (auto& [k, y] : m) (void)k;\n"
                          "  for (auto it = m.begin(); it != m.end(); ++it) "
                          "{}\n"
                          "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
}

TEST(R1UnorderedIter, OutsideDeterministicScopeIsClean) {
  const auto fs = run_one("tools/x.cpp",
                          "std::unordered_map<int, int> m;\n"
                          "void f() { for (auto& kv : m) (void)kv; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
}

TEST(R1UnorderedIter, TrailingAnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> m;\n"
      "void f() {\n"
      "  for (auto& [k, v] : m) v = 0;  "
      "// pythia-lint: allow(unordered-iter) per-entry write, no order\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

TEST(R1UnorderedIter, PrecedingLineAnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> m;\n"
      "void f() {\n"
      "  // pythia-lint: allow(unordered-iter) keys sorted after collect\n"
      "  for (auto& [k, v] : m) v = 0;\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

// ----------------------------------------------------- R2: wall-clock ----

TEST(R2WallClock, FlagsClockAndEntropyPrimitives) {
  const auto fs = run_one(
      "src/a.cpp",
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::system_clock::now();\n"
      "auto c = std::chrono::high_resolution_clock::now();\n"
      "std::random_device rd;\n"
      "int d = std::rand();\n"
      "long e = time(nullptr);\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 6);
}

TEST(R2WallClock, AllowlistedPathIsClean) {
  const auto fs = run_one("allowed/pool.cpp",
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
}

TEST(R2WallClock, MethodAndDeclarationNamedTimeAreClean) {
  const auto fs = run_one("src/a.cpp",
                          "struct Sim { double time() const; };\n"
                          "double g(const Sim& s) { return s.time(); }\n"
                          "SimTime time() ;\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
}

TEST(R2WallClock, ReturnTimeCallIsFlagged) {
  const auto fs =
      run_one("src/a.cpp", "long f() { return time(nullptr); }\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 1);
}

TEST(R2WallClock, AnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "// pythia-lint: allow(wall-clock) feeds counters only, not results\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

// -------------------------------------------------- R3: pointer-order ----

TEST(R3PointerOrder, FlagsPointerKeyedOrderedContainers) {
  const auto fs = run_one("src/a.cpp",
                          "std::map<Flow*, int> by_flow;\n"
                          "std::set<const Node*> nodes;\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 2);
}

TEST(R3PointerOrder, PointerValueIsFine) {
  const auto fs = run_one("src/a.cpp",
                          "std::map<int, Flow*> by_id;\n"
                          "std::set<long> ids;\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 0);
}

TEST(R3PointerOrder, FlagsComparatorLessSortOfPointerVector) {
  const auto fs = run_one("src/a.cpp",
                          "std::vector<Flow*> live;\n"
                          "void f() { std::sort(live.begin(), live.end()); "
                          "}\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 1);
}

TEST(R3PointerOrder, SortWithComparatorIsFine) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::vector<Flow*> live;\n"
      "void f() {\n"
      "  std::sort(live.begin(), live.end(),\n"
      "            [](const Flow* a, const Flow* b) { return a->id < b->id; "
      "});\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 0);
}

TEST(R3PointerOrder, AnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::vector<Flow*> live;\n"
      "// pythia-lint: allow(pointer-order) pointers are arena-ordered\n"
      "void g() { std::sort(live.begin(), live.end()); }\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 0);
}

// ------------------------------------------------- R5: suppressions ------

TEST(R5Suppressions, UnknownRuleIsReported) {
  const auto fs = run_one(
      "src/a.cpp", "// pythia-lint: allow(made-up-rule) because reasons\n");
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

TEST(R5Suppressions, MissingJustificationIsReported) {
  const auto fs =
      run_one("src/a.cpp", "// pythia-lint: allow(unordered-iter)\n");
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

TEST(R5Suppressions, MalformedAnnotationIsReported) {
  const auto fs = run_one("src/a.cpp", "// pythia-lint: disable everything\n");
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

TEST(R5Suppressions, StaleAnnotationIsReported) {
  const auto fs = run_one(
      "src/a.cpp",
      "// pythia-lint: allow(unordered-iter) there used to be a loop here\n"
      "int x = 0;\n");
  ASSERT_EQ(count_rule(fs, kRuleStaleSuppression), 1);
  EXPECT_EQ(fs[0].line, 1);
}

TEST(R5Suppressions, WrongRuleAnnotationIsStaleAndFindingSurvives) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> m;\n"
      "// pythia-lint: allow(wall-clock) wrong rule for this statement\n"
      "void f() { for (auto& kv : m) (void)kv; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 1);
}

// ------------------------------------------- R6: snapshot coverage -------

Config snapshot_config() {
  Config cfg = test_config();
  cfg.snapshot_scopes = {"src"};
  return cfg;
}

std::vector<Finding> run_snap(const std::vector<SourceFile>& files) {
  return analyze(files, snapshot_config());
}

TEST(R6SnapshotCoverage, FlagsMemberMissingFromEncodeBody) {
  const auto fs = run_snap({
      SourceFile{"src/s.hpp",
                 "struct Enc;\n"
                 "class Counter {\n"
                 " public:\n"
                 "  void encode_state(Enc& e) const;\n"
                 " private:\n"
                 "  unsigned long long hits_ = 0;\n"
                 "  unsigned long long misses_ = 0;\n"
                 "};\n"},
      SourceFile{"src/s.cpp",
                 "void Counter::encode_state(Enc& e) const {\n"
                 "  e.put_u64(hits_);\n"
                 "}\n"},
  });
  ASSERT_EQ(count_rule(fs, kRuleSnapshotSkip), 1);
  EXPECT_EQ(fs[0].file, "src/s.hpp");
  EXPECT_EQ(fs[0].line, 7);
  EXPECT_NE(fs[0].message.find("misses_"), std::string::npos);
}

TEST(R6SnapshotCoverage, FullyEncodedTypeIsClean) {
  const auto fs = run_snap({
      SourceFile{"src/s.hpp",
                 "struct Enc;\n"
                 "class Counter {\n"
                 "  void encode_state(Enc& e) const;\n"
                 "  unsigned long long hits_ = 0;\n"
                 "  unsigned long long misses_ = 0;\n"
                 "};\n"},
      SourceFile{"src/s.cpp",
                 "void Counter::encode_state(Enc& e) const {\n"
                 "  e.put_u64(hits_);\n"
                 "  e.put_u64(misses_);\n"
                 "}\n"},
  });
  EXPECT_EQ(count_rule(fs, kRuleSnapshotSkip), 0);
}

TEST(R6SnapshotCoverage, EncodeBehaviorCountsAsCoverage) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "struct Enc;\n"
      "class Counter {\n"
      "  void encode_state(Enc& e) const { e.put_u64(hits_); }\n"
      "  void encode_behavior(Enc& e) const { e.put_u64(misses_); }\n"
      "  unsigned long long hits_ = 0;\n"
      "  unsigned long long misses_ = 0;\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleSnapshotSkip), 0);
}

TEST(R6SnapshotCoverage, StaticMembersAndTypesWithoutEncodeAreExempt) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "struct Enc;\n"
      "class Covered {\n"
      "  void encode_state(Enc& e) const { e.put_u64(x_); }\n"
      "  unsigned long long x_ = 0;\n"
      "  static constexpr int kTableSize = 64;\n"
      "};\n"
      "class NoSnapshotContract {\n"
      "  int anything_ = 0;\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleSnapshotSkip), 0);
}

TEST(R6SnapshotCoverage, DisabledWithoutSnapshotScope) {
  const auto fs = run_one(  // test_config(): snapshot_scopes is empty
      "src/s.hpp",
      "struct Enc;\n"
      "class Counter {\n"
      "  void encode_state(Enc& e) const { (void)e; }\n"
      "  unsigned long long never_encoded_ = 0;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, kRuleSnapshotSkip), 0);
}

TEST(R6SnapshotCoverage, TrailingAnnotationSuppresses) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "struct Enc;\n"
      "class Counter {\n"
      "  void encode_state(Enc& e) const { (void)e; }\n"
      "  int* arena_ = nullptr;  "
      "// pythia-lint: allow(snapshot-skip) rebuilt by restore replay\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleSnapshotSkip), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

TEST(R6SnapshotCoverage, StaleSnapshotSkipIsReported) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "struct Enc;\n"
      "class Counter {\n"
      "  void encode_state(Enc& e) const { e.put_u64(hits_); }\n"
      "  // pythia-lint: allow(snapshot-skip) it is actually encoded\n"
      "  unsigned long long hits_ = 0;\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleSnapshotSkip), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 1);
}

TEST(R6SnapshotCoverage, GroupAnnotationCoversBlockUntilBlankLine) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "struct Enc;\n"
      "class Counter {\n"
      "  void encode_state(Enc& e) const { (void)e; }\n"
      "\n"
      "  // pythia-lint: allow(snapshot-skip, group) scratch, rebuilt on use\n"
      "  int scratch_a_ = 0;\n"
      "  int scratch_b_ = 0;\n"
      "\n"
      "  unsigned long long real_state_ = 0;\n"
      "};\n"}});
  ASSERT_EQ(count_rule(fs, kRuleSnapshotSkip), 1);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
  const auto it = std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
    return f.rule == kRuleSnapshotSkip;
  });
  EXPECT_NE(it->message.find("real_state_"), std::string::npos);
}

TEST(R6SnapshotCoverage, UnusedGroupAnnotationIsStale) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "struct Enc;\n"
      "class Counter {\n"
      "  void encode_state(Enc& e) const { e.put_u64(x_); }\n"
      "\n"
      "  // pythia-lint: allow(snapshot-skip, group) nothing is skipped\n"
      "  unsigned long long x_ = 0;\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 1);
}

TEST(R6SnapshotCoverage, UnknownModifierIsBadSuppression) {
  const auto fs = run_snap({SourceFile{
      "src/s.hpp",
      "// pythia-lint: allow(snapshot-skip, file) no such modifier\n"
      "int x = 0;\n"}});
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

// ------------------------------------------- R7: stream symmetry ---------

TEST(R7StreamSymmetry, FlagsWidthMismatch) {
  const auto fs = run_snap({SourceFile{
      "src/c.cpp",
      "struct Enc;\n"
      "struct Dec;\n"
      "struct Pair {\n"
      "  void encode_hdr(Enc& e) const;\n"
      "  void decode_hdr(Dec& d);\n"
      "  unsigned a_ = 0;\n"
      "  unsigned long long b_ = 0;\n"
      "};\n"
      "void Pair::encode_hdr(Enc& e) const {\n"
      "  e.put_u32(a_);\n"
      "  e.put_u64(b_);\n"
      "}\n"
      "void Pair::decode_hdr(Dec& d) {\n"
      "  a_ = d.get_u64();\n"
      "  b_ = d.get_u64();\n"
      "}\n"}});
  ASSERT_EQ(count_rule(fs, kRuleStreamSymmetry), 1);
  EXPECT_EQ(fs[0].line, 13);  // anchored at the decode definition
  EXPECT_NE(fs[0].message.find("position 1"), std::string::npos);
}

TEST(R7StreamSymmetry, FlagsLengthMismatch) {
  const auto fs = run_snap({SourceFile{
      "src/c.cpp",
      "struct Enc;\n"
      "struct Dec;\n"
      "struct Pair {\n"
      "  void encode_hdr(Enc& e) const { e.put_u32(a_); e.put_u64(b_); }\n"
      "  void decode_hdr(Dec& d) { a_ = d.get_u32(); }\n"
      "  unsigned a_ = 0;\n"
      "  unsigned long long b_ = 0;\n"
      "};\n"}});
  ASSERT_EQ(count_rule(fs, kRuleStreamSymmetry), 1);
  EXPECT_NE(fs[0].message.find("reads 1 values but"), std::string::npos);
}

TEST(R7StreamSymmetry, MatchingStreamsAreClean) {
  const auto fs = run_snap({SourceFile{
      "src/c.cpp",
      "struct Enc;\n"
      "struct Dec;\n"
      "struct Pair {\n"
      "  void encode_hdr(Enc& e) const {\n"
      "    e.put_u32(a_);\n"
      "    e.put_bool(flag_);\n"
      "    e.put_time(when_);\n"
      "    e.put_string(name_);\n"
      "  }\n"
      "  void decode_hdr(Dec& d) {\n"
      "    a_ = d.get_u32();\n"
      "    flag_ = d.get_bool();\n"
      "    when_ = d.get_time();\n"
      "    name_ = d.get_string();\n"
      "  }\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleStreamSymmetry), 0);
}

TEST(R7StreamSymmetry, WidthEquivalentKindsMatch) {
  // bool rides u8; time/duration/i64/f64 all ride u64 — pairing by wire
  // width, not by spelling.
  const auto fs = run_snap({SourceFile{
      "src/c.cpp",
      "struct Enc;\n"
      "struct Dec;\n"
      "struct Pair {\n"
      "  void encode_hdr(Enc& e) const { e.put_time(t_); e.put_bool(b_); }\n"
      "  void decode_hdr(Dec& d) { t_ = d.get_u64(); b_ = d.get_u8(); }\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleStreamSymmetry), 0);
}

TEST(R7StreamSymmetry, UnpairedEncodeIsClean) {
  const auto fs = run_snap({SourceFile{
      "src/c.cpp",
      "struct Enc;\n"
      "struct Solo {\n"
      "  void encode_state(Enc& e) const { e.put_u64(x_); }\n"
      "  unsigned long long x_ = 0;\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleStreamSymmetry), 0);
}

TEST(R7StreamSymmetry, AnnotationOnDecodeDefinitionSuppresses) {
  const auto fs = run_snap({SourceFile{
      "src/c.cpp",
      "struct Enc;\n"
      "struct Dec;\n"
      "struct Pair {\n"
      "  void encode_hdr(Enc& e) const { e.put_u32(a_); }\n"
      "  // pythia-lint: allow(stream-symmetry) framing reads the magic "
      "bytewise\n"
      "  void decode_hdr(Dec& d) { a_ = d.get_u8(); }\n"
      "};\n"}});
  EXPECT_EQ(count_rule(fs, kRuleStreamSymmetry), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

// ------------------------------------------- R8: fingerprint coverage ----

Config fingerprint_config() {
  Config cfg = snapshot_config();
  cfg.fingerprint_roots = {"RootCfg"};
  cfg.fingerprint_functions = {"fp"};
  return cfg;
}

TEST(R8FingerprintCoverage, FlagsReachableUnfingerprintedMember) {
  const auto fs = analyze(
      {SourceFile{"src/f.cpp",
                  "struct SubCfg {\n"
                  "  int depth = 0;\n"
                  "  int untracked = 0;\n"
                  "};\n"
                  "struct RootCfg {\n"
                  "  int seed = 0;\n"
                  "  SubCfg sub;\n"
                  "};\n"
                  "unsigned fp(const RootCfg& c) {\n"
                  "  return c.seed + c.sub.depth;\n"
                  "}\n"}},
      fingerprint_config());
  ASSERT_EQ(count_rule(fs, kRuleFingerprintSkip), 1);
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("untracked"), std::string::npos);
}

TEST(R8FingerprintCoverage, FullyFingerprintedTreeIsClean) {
  const auto fs = analyze(
      {SourceFile{"src/f.cpp",
                  "struct SubCfg { int depth = 0; };\n"
                  "struct RootCfg { int seed = 0; SubCfg sub; };\n"
                  "unsigned fp(const RootCfg& c) {\n"
                  "  return c.seed + c.sub.depth;\n"
                  "}\n"}},
      fingerprint_config());
  EXPECT_EQ(count_rule(fs, kRuleFingerprintSkip), 0);
}

TEST(R8FingerprintCoverage, UnreachableTypeIsNotChecked) {
  const auto fs = analyze(
      {SourceFile{"src/f.cpp",
                  "struct Unrelated { int whatever = 0; };\n"
                  "struct RootCfg { int seed = 0; };\n"
                  "unsigned fp(const RootCfg& c) { return c.seed; }\n"}},
      fingerprint_config());
  EXPECT_EQ(count_rule(fs, kRuleFingerprintSkip), 0);
}

TEST(R8FingerprintCoverage, InertWithoutFingerprintFunctionInModel) {
  const auto fs = analyze(
      {SourceFile{"src/f.cpp",
                  "struct RootCfg { int seed = 0; };\n"}},
      fingerprint_config());
  EXPECT_EQ(count_rule(fs, kRuleFingerprintSkip), 0);
}

TEST(R8FingerprintCoverage, ReachesThroughTemplateArguments) {
  const auto fs = analyze(
      {SourceFile{"src/f.cpp",
                  "struct SubCfg { int hidden = 0; };\n"
                  "struct RootCfg {\n"
                  "  int seed = 0;\n"
                  "  std::vector<SubCfg> subs;\n"
                  "};\n"
                  "unsigned fp(const RootCfg& c) {\n"
                  "  return c.seed + c.subs.size();\n"
                  "}\n"}},
      fingerprint_config());
  ASSERT_EQ(count_rule(fs, kRuleFingerprintSkip), 1);
  EXPECT_NE(fs[0].message.find("hidden"), std::string::npos);
}

TEST(R8FingerprintCoverage, AnnotationSuppresses) {
  const auto fs = analyze(
      {SourceFile{"src/f.cpp",
                  "struct RootCfg {\n"
                  "  int seed = 0;\n"
                  "  int derived = 0;  "
                  "// pythia-lint: allow(fingerprint-skip) filled from seed\n"
                  "};\n"
                  "unsigned fp(const RootCfg& c) { return c.seed; }\n"}},
      fingerprint_config());
  EXPECT_EQ(count_rule(fs, kRuleFingerprintSkip), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

TEST(ConfigParse, SnapshotAndFingerprintKeysRoundTrip) {
  std::string err;
  const auto cfg = parse_config(
      "[scopes]\nsnapshot = [\"src/sim\", \"src/core\"]\n"
      "[rule.fingerprint]\nroots = [\"ScenarioConfig\"]\n"
      "functions = [\"scenario_fingerprint\", \"encode_scenario_config\"]\n",
      err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->snapshot_scopes.size(), 2u);
  EXPECT_EQ(cfg->fingerprint_roots.size(), 1u);
  EXPECT_EQ(cfg->fingerprint_functions.size(), 2u);
}

// ------------------------------------------------------ output format ----

TEST(Output, ClangStyleAndDeterministicOrder) {
  const auto fs = run({
      SourceFile{"src/b.cpp", "int a = std::rand();\n"},
      SourceFile{"src/a.cpp",
                 "int a = std::rand();\nint b = std::rand();\n"},
  });
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "src/a.cpp");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].file, "src/b.cpp");
  const std::string line = format_finding(fs[0], false);
  EXPECT_EQ(line.rfind("src/a.cpp:1:", 0), 0u);
  EXPECT_NE(line.find(" wall-clock: "), std::string::npos);
  const std::string with_fix = format_finding(fs[0], true);
  EXPECT_NE(with_fix.find("suggestion:"), std::string::npos);
  // --fix-suggestions also prints the exact annotation line to paste.
  EXPECT_NE(with_fix.find("annotation: // pythia-lint: allow(wall-clock)"),
            std::string::npos);
}

}  // namespace
}  // namespace pythia::lint
