// Fixture-driven unit tests for pythia-lint: for every rule a positive, a
// negative, a suppressed, and a stale-suppression case, plus lexer and
// config coverage. These tests call the analyzer in-process on snippet
// "files"; the end-to-end binary behaviour (exit codes over the real tree
// and over the violation fixtures) is exercised by the lint_* ctest entries
// registered in tools/lint/CMakeLists.txt.
#include "analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "config.hpp"
#include "lexer.hpp"

namespace pythia::lint {
namespace {

Config test_config() {
  Config cfg;
  cfg.deterministic_scopes = {"src"};
  cfg.wall_clock_allow = {"allowed"};
  return cfg;
}

std::vector<Finding> run(const std::vector<SourceFile>& files) {
  return analyze(files, test_config());
}

std::vector<Finding> run_one(const std::string& path,
                             const std::string& text) {
  return run({SourceFile{path, text}});
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- lexer ---

TEST(Lexer, SkipsCommentsStringsAndPreprocessor) {
  const auto fs = run_one("src/a.cpp",
                          "// steady_clock in a comment\n"
                          "/* random_device in a block\n   comment */\n"
                          "const char* s = \"steady_clock\";\n"
                          "#include <chrono>  // steady_clock\n"
                          "const char* r = R\"(system_clock)\";\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
}

TEST(Lexer, RawStringDoesNotSwallowFollowingCode) {
  const auto fs = run_one("src/a.cpp",
                          "const char* r = R\"x(text \" )\" more)x\";\n"
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 1);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("ab cd\n  ef\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[2].text, "ef");
  EXPECT_EQ(toks[2].line, 2);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, PreprocessorContinuationIsOneToken) {
  const auto toks = lex("#define X \\\n  steady_clock\nint y;\n");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kPreproc);
  EXPECT_EQ(toks[1].text, "int");
}

// --------------------------------------------------------------- config ---

TEST(ConfigParse, RoundTrips) {
  std::string err;
  const auto cfg = parse_config(
      "# comment\n[scopes]\nscan = [\"src\"]\n"
      "deterministic = [\"src/sim\", \"src/net\"]\nskip = []\n"
      "[rule.wall-clock]\nallow = [\"bench\"]\n"
      "[headers]\nroots = [\"src\"]\n",
      err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->deterministic_scopes.size(), 2u);
  EXPECT_EQ(cfg->wall_clock_allow.size(), 1u);
}

TEST(ConfigParse, MultiLineArraysAndTrailingCommas) {
  std::string err;
  const auto cfg = parse_config(
      "[scopes]\n"
      "deterministic = [\n"
      "  \"src/sim\",  # the event loop\n"
      "  \"src/net\",\n"
      "]\n",
      err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->deterministic_scopes.size(), 2u);
  EXPECT_EQ(cfg->deterministic_scopes[1], "src/net");
}

TEST(ConfigParse, RejectsUnknownKeyWithLineNumber) {
  std::string err;
  EXPECT_FALSE(parse_config("[scopes]\nbogus = [\"x\"]\n", err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(ConfigPathIn, MatchesComponentBoundariesOnly) {
  EXPECT_TRUE(path_in("src/net/fabric.cpp", {"src/net"}));
  EXPECT_FALSE(path_in("src/netflow.cpp", {"src/net"}));
  EXPECT_TRUE(path_in("src/util/thread_pool.cpp", {"src/util/thread_pool"}));
  EXPECT_FALSE(path_in("src/util/thread_pool_extra.cpp",
                       {"src/util/thread_pool"}));
}

// ------------------------------------------------- R1: unordered-iter ----

TEST(R1UnorderedIter, FlagsRangeForOverLocal) {
  const auto fs = run_one("src/a.cpp",
                          "void f() {\n"
                          "  std::unordered_map<int, int> m;\n"
                          "  for (const auto& [k, v] : m) { (void)k; }\n"
                          "}\n");
  ASSERT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(R1UnorderedIter, ResolvesMemberDeclaredInHeader) {
  const auto fs = run({
      SourceFile{"src/b.hpp",
                 "struct S { std::unordered_map<int, long> agg_; };\n"},
      SourceFile{"src/b.cpp", "void S_touch(S& s) {\n"
                              "  for (auto& [k, v] : s.agg_) v = 0;\n"
                              "}\n"},
  });
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, ResolvesTypeAlias) {
  const auto fs = run_one("src/a.cpp",
                          "using RuleMap = std::unordered_map<int, int>;\n"
                          "RuleMap rules_;\n"
                          "void f() { for (auto& r : rules_) (void)r; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, FlagsAccessorReturningUnorderedRef) {
  const auto fs = run_one(
      "src/a.cpp",
      "const std::unordered_set<int>& failed_links() ;\n"
      "void f() { for (int l : failed_links()) (void)l; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, FlagsIteratorBeginLoop) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> rules_;\n"
      "void f() {\n"
      "  for (auto it = rules_.begin(); it != rules_.end(); ++it) {}\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
}

TEST(R1UnorderedIter, IgnoresVectorAndOrderedMap) {
  const auto fs = run_one("src/a.cpp",
                          "std::vector<int> v;\n"
                          "std::map<int, int> m;\n"
                          "void f() {\n"
                          "  for (int x : v) (void)x;\n"
                          "  for (auto& [k, y] : m) (void)k;\n"
                          "  for (auto it = m.begin(); it != m.end(); ++it) "
                          "{}\n"
                          "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
}

TEST(R1UnorderedIter, OutsideDeterministicScopeIsClean) {
  const auto fs = run_one("tools/x.cpp",
                          "std::unordered_map<int, int> m;\n"
                          "void f() { for (auto& kv : m) (void)kv; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
}

TEST(R1UnorderedIter, TrailingAnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> m;\n"
      "void f() {\n"
      "  for (auto& [k, v] : m) v = 0;  "
      "// pythia-lint: allow(unordered-iter) per-entry write, no order\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

TEST(R1UnorderedIter, PrecedingLineAnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> m;\n"
      "void f() {\n"
      "  // pythia-lint: allow(unordered-iter) keys sorted after collect\n"
      "  for (auto& [k, v] : m) v = 0;\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

// ----------------------------------------------------- R2: wall-clock ----

TEST(R2WallClock, FlagsClockAndEntropyPrimitives) {
  const auto fs = run_one(
      "src/a.cpp",
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::system_clock::now();\n"
      "auto c = std::chrono::high_resolution_clock::now();\n"
      "std::random_device rd;\n"
      "int d = std::rand();\n"
      "long e = time(nullptr);\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 6);
}

TEST(R2WallClock, AllowlistedPathIsClean) {
  const auto fs = run_one("allowed/pool.cpp",
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
}

TEST(R2WallClock, MethodAndDeclarationNamedTimeAreClean) {
  const auto fs = run_one("src/a.cpp",
                          "struct Sim { double time() const; };\n"
                          "double g(const Sim& s) { return s.time(); }\n"
                          "SimTime time() ;\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
}

TEST(R2WallClock, ReturnTimeCallIsFlagged) {
  const auto fs =
      run_one("src/a.cpp", "long f() { return time(nullptr); }\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 1);
}

TEST(R2WallClock, AnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "// pythia-lint: allow(wall-clock) feeds counters only, not results\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(fs, kRuleWallClock), 0);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 0);
}

// -------------------------------------------------- R3: pointer-order ----

TEST(R3PointerOrder, FlagsPointerKeyedOrderedContainers) {
  const auto fs = run_one("src/a.cpp",
                          "std::map<Flow*, int> by_flow;\n"
                          "std::set<const Node*> nodes;\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 2);
}

TEST(R3PointerOrder, PointerValueIsFine) {
  const auto fs = run_one("src/a.cpp",
                          "std::map<int, Flow*> by_id;\n"
                          "std::set<long> ids;\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 0);
}

TEST(R3PointerOrder, FlagsComparatorLessSortOfPointerVector) {
  const auto fs = run_one("src/a.cpp",
                          "std::vector<Flow*> live;\n"
                          "void f() { std::sort(live.begin(), live.end()); "
                          "}\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 1);
}

TEST(R3PointerOrder, SortWithComparatorIsFine) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::vector<Flow*> live;\n"
      "void f() {\n"
      "  std::sort(live.begin(), live.end(),\n"
      "            [](const Flow* a, const Flow* b) { return a->id < b->id; "
      "});\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 0);
}

TEST(R3PointerOrder, AnnotationSuppresses) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::vector<Flow*> live;\n"
      "// pythia-lint: allow(pointer-order) pointers are arena-ordered\n"
      "void g() { std::sort(live.begin(), live.end()); }\n");
  EXPECT_EQ(count_rule(fs, kRulePointerOrder), 0);
}

// ------------------------------------------------- R5: suppressions ------

TEST(R5Suppressions, UnknownRuleIsReported) {
  const auto fs = run_one(
      "src/a.cpp", "// pythia-lint: allow(made-up-rule) because reasons\n");
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

TEST(R5Suppressions, MissingJustificationIsReported) {
  const auto fs =
      run_one("src/a.cpp", "// pythia-lint: allow(unordered-iter)\n");
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

TEST(R5Suppressions, MalformedAnnotationIsReported) {
  const auto fs = run_one("src/a.cpp", "// pythia-lint: disable everything\n");
  EXPECT_EQ(count_rule(fs, kRuleBadSuppression), 1);
}

TEST(R5Suppressions, StaleAnnotationIsReported) {
  const auto fs = run_one(
      "src/a.cpp",
      "// pythia-lint: allow(unordered-iter) there used to be a loop here\n"
      "int x = 0;\n");
  ASSERT_EQ(count_rule(fs, kRuleStaleSuppression), 1);
  EXPECT_EQ(fs[0].line, 1);
}

TEST(R5Suppressions, WrongRuleAnnotationIsStaleAndFindingSurvives) {
  const auto fs = run_one(
      "src/a.cpp",
      "std::unordered_map<int, int> m;\n"
      "// pythia-lint: allow(wall-clock) wrong rule for this statement\n"
      "void f() { for (auto& kv : m) (void)kv; }\n");
  EXPECT_EQ(count_rule(fs, kRuleUnorderedIter), 1);
  EXPECT_EQ(count_rule(fs, kRuleStaleSuppression), 1);
}

// ------------------------------------------------------ output format ----

TEST(Output, ClangStyleAndDeterministicOrder) {
  const auto fs = run({
      SourceFile{"src/b.cpp", "int a = std::rand();\n"},
      SourceFile{"src/a.cpp",
                 "int a = std::rand();\nint b = std::rand();\n"},
  });
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "src/a.cpp");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].file, "src/b.cpp");
  const std::string line = format_finding(fs[0], false);
  EXPECT_EQ(line.rfind("src/a.cpp:1:", 0), 0u);
  EXPECT_NE(line.find(" wall-clock: "), std::string::npos);
  const std::string with_fix = format_finding(fs[0], true);
  EXPECT_NE(with_fix.find("suggestion:"), std::string::npos);
}

}  // namespace
}  // namespace pythia::lint
