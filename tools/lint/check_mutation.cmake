# Mutation test for R6 (snapshot-skip).
#
# Proves the lint gate actually guards the snapshot contract: copy a real
# snapshotted class (ControlPlaneWatchdog) into a scratch tree, verify the
# unmodified copy lints clean, then delete one encode_state line and assert
# pythia-lint exits non-zero. If a future refactor quietly weakens R6, this
# test — not a divergence hours into a sweep — goes red.
#
# Invoked by ctest as:
#   cmake -DLINT_BIN=<pythia-lint> -DSRC_ROOT=<repo> -DWORK_DIR=<scratch>
#         -P check_mutation.cmake

foreach(var LINT_BIN SRC_ROOT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_mutation.cmake: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/src/core")
configure_file("${SRC_ROOT}/src/core/watchdog.hpp"
               "${WORK_DIR}/src/core/watchdog.hpp" COPYONLY)
configure_file("${SRC_ROOT}/src/core/watchdog.cpp"
               "${WORK_DIR}/src/core/watchdog.cpp" COPYONLY)
file(WRITE "${WORK_DIR}/pythia_lint.toml" "
[scopes]
scan = [\"src\"]
deterministic = [\"src\"]
snapshot = [\"src\"]
")

# Step 1: the pristine copy must be clean — otherwise the mutation below
# would prove nothing.
execute_process(
  COMMAND "${LINT_BIN}"
    --config "${WORK_DIR}/pythia_lint.toml" --root "${WORK_DIR}"
  RESULT_VARIABLE clean_rc
  OUTPUT_VARIABLE clean_out
  ERROR_VARIABLE clean_err)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR
    "pristine watchdog copy should lint clean but exited ${clean_rc}:\n"
    "${clean_out}${clean_err}")
endif()

# Step 2: delete the encode line for fallbacks_ and expect a red run.
set(mutation "enc.put_u64(fallbacks_);")
file(READ "${WORK_DIR}/src/core/watchdog.cpp" body)
string(FIND "${body}" "${mutation}" at)
if(at EQUAL -1)
  message(FATAL_ERROR
    "mutation target '${mutation}' not found in watchdog.cpp; "
    "update check_mutation.cmake alongside the encode body")
endif()
string(REPLACE "${mutation}" "" body "${body}")
file(WRITE "${WORK_DIR}/src/core/watchdog.cpp" "${body}")

execute_process(
  COMMAND "${LINT_BIN}"
    --config "${WORK_DIR}/pythia_lint.toml" --root "${WORK_DIR}"
  RESULT_VARIABLE mutated_rc
  OUTPUT_VARIABLE mutated_out
  ERROR_VARIABLE mutated_err)
if(mutated_rc EQUAL 0)
  message(FATAL_ERROR
    "deleted '${mutation}' but pythia-lint still exited 0 — R6 snapshot "
    "coverage is not guarding the encode body")
endif()
string(FIND "${mutated_out}" "snapshot-skip" has_rule)
if(has_rule EQUAL -1)
  message(FATAL_ERROR
    "mutated run failed but not with a snapshot-skip diagnostic:\n"
    "${mutated_out}${mutated_err}")
endif()

message(STATUS
  "mutation detected: deleting '${mutation}' produced a snapshot-skip "
  "finding (exit ${mutated_rc})")
