#include "lexer.hpp"

#include <cctype>

namespace pythia::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Cursor over the source that tracks line/column as it advances.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// True if `c` ends a raw-string prefix like R, u8R, LR, uR, UR at `start`.
// `start` points at the first char of the candidate prefix; on success,
// returns the prefix length (including the R) so the caller can verify the
// following character is '"'.
[[nodiscard]] std::size_t raw_prefix_len(std::string_view src,
                                         std::size_t start) {
  for (const std::string_view p :
       {"R\"", "u8R\"", "uR\"", "UR\"", "LR\""}) {
    if (src.substr(start, p.size()) == p) return p.size() - 1;
  }
  return 0;
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  Cursor cur(src);
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto push = [&](TokKind kind, std::size_t from, int line, int col) {
    out.push_back(Token{kind, std::string(cur.slice(from)), line, col});
  };

  while (!cur.done()) {
    const char c = cur.peek();

    if (c == '\n') {
      cur.advance();
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }

    const std::size_t from = cur.pos();
    const int line = cur.line();
    const int col = cur.col();

    // Preprocessor directive: '#' first on its line; swallow continuations.
    if (c == '#' && at_line_start) {
      while (!cur.done()) {
        const char d = cur.advance();
        if (d == '\\' && cur.peek() == '\n') {
          cur.advance();  // continuation: keep consuming the next line
        } else if (cur.peek() == '\n') {
          break;
        }
      }
      push(TokKind::kPreproc, from, line, col);
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      push(TokKind::kComment, from, line, col);
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) {
        cur.advance();
      }
      if (!cur.done()) {
        cur.advance();
        cur.advance();
      }
      push(TokKind::kComment, from, line, col);
      continue;
    }

    // Raw string literals, possibly prefixed (u8R"tag(...)tag").
    if (is_ident_start(c) || c == 'R') {
      const std::size_t plen = raw_prefix_len(src, cur.pos());
      if (plen > 0) {
        for (std::size_t i = 0; i < plen + 1; ++i) cur.advance();  // R...R"
        std::string delim;
        while (!cur.done() && cur.peek() != '(') delim += cur.advance();
        if (!cur.done()) cur.advance();  // '('
        const std::string closer = ")" + delim + "\"";
        while (!cur.done()) {
          if (cur.peek() == ')' &&
              src.substr(cur.pos(), closer.size()) == closer) {
            for (std::size_t i = 0; i < closer.size(); ++i) cur.advance();
            break;
          }
          cur.advance();
        }
        push(TokKind::kString, from, line, col);
        continue;
      }
    }

    // Ordinary string / char literals with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      cur.advance();
      while (!cur.done() && cur.peek() != quote && cur.peek() != '\n') {
        if (cur.peek() == '\\') cur.advance();
        if (!cur.done()) cur.advance();
      }
      if (!cur.done() && cur.peek() == quote) cur.advance();
      push(quote == '"' ? TokKind::kString : TokKind::kCharLit, from, line,
           col);
      continue;
    }

    // Identifiers (string prefixes that are not raw fall out as identifiers
    // followed by a String token, which is fine for our rules).
    if (is_ident_start(c)) {
      while (!cur.done() && is_ident_char(cur.peek())) cur.advance();
      push(TokKind::kIdentifier, from, line, col);
      continue;
    }

    // Numbers (loose: digits, digit separators, hex/exponent tails). A
    // leading '.' as in `.5` is handled by the Punct fallthrough; good
    // enough for rule matching, which never inspects numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (!cur.done() &&
             (is_ident_char(cur.peek()) || cur.peek() == '\'' ||
              cur.peek() == '.' ||
              ((cur.peek() == '+' || cur.peek() == '-') &&
               (src[cur.pos() - 1] == 'e' || src[cur.pos() - 1] == 'E' ||
                src[cur.pos() - 1] == 'p' || src[cur.pos() - 1] == 'P')))) {
        cur.advance();
      }
      push(TokKind::kNumber, from, line, col);
      continue;
    }

    // Multi-char punctuators the analyzer cares about; everything else is a
    // single character.
    if (c == ':' && cur.peek(1) == ':') {
      cur.advance();
      cur.advance();
      push(TokKind::kPunct, from, line, col);
      continue;
    }
    if (c == '-' && cur.peek(1) == '>') {
      cur.advance();
      cur.advance();
      push(TokKind::kPunct, from, line, col);
      continue;
    }
    cur.advance();
    push(TokKind::kPunct, from, line, col);
  }
  return out;
}

}  // namespace pythia::lint
