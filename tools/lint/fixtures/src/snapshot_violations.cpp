// Deliberately broken snapshot/fingerprint code: one injected violation per
// semantic rule (R6/R7/R8) plus a stale snapshot-skip annotation. This file
// is never compiled — it exists so the lint_fixture_violations ctest can
// assert that pythia-lint exits non-zero when the snapshot contract is
// broken. Keep each violation on its own line; tests grep for the rule
// names in the diagnostics.

struct StateEncoder;
struct StateDecoder;

// R6: encode_state forgets a data member.
class LossyBuffer {
 public:
  void encode_state(StateEncoder& enc) const;

 private:
  // R5: stale snapshot-skip — accepted_ IS encoded, nothing is suppressed.
  // pythia-lint: allow(snapshot-skip) pretend this member is a cache
  unsigned long long accepted_ = 0;
  unsigned long long dropped_ = 0;  // never encoded: R6 fires here
};

void LossyBuffer::encode_state(StateEncoder& enc) const {
  (void)enc;  // put_u64(accepted_) elided; only the reference matters
  static_cast<void>(accepted_);
}

// R7: decode stream disagrees with its encode counterpart on width.
class WireCodec {
 public:
  void encode_header(StateEncoder& enc) const;
  void decode_header(StateDecoder& dec);

 private:
  unsigned magic_ = 0;
  unsigned long long seq_ = 0;
};

void WireCodec::encode_header(StateEncoder& enc) const {
  enc.put_u32(magic_);
  enc.put_u64(seq_);
}

void WireCodec::decode_header(StateDecoder& dec) {
  magic_ = dec.get_u64();  // written as u32: every later field corrupts
  seq_ = dec.get_u64();
}

// R8: a config member reachable from the fixture fingerprint root never
// enters the fingerprint computation.
struct FixtureTuning {
  double gain = 1.0;
  double untracked_knob = 0.0;  // not fingerprinted: R8 fires here
};

struct FixtureConfig {
  unsigned seed = 0;
  FixtureTuning tuning;
};

unsigned long long fixture_fingerprint(const FixtureConfig& cfg) {
  unsigned long long h = cfg.seed;
  h = h * 31 + static_cast<unsigned long long>(cfg.tuning.gain * 1000.0);
  return h;
}
