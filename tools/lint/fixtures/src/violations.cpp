// Deliberately nondeterministic code: one injected violation per pythia-lint
// rule. This file is never compiled — it exists so the
// lint_fixture_violations ctest can assert that pythia-lint exits non-zero
// when the contract is broken. Keep each violation on its own line; the test
// greps for the rule names in the diagnostics.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <vector>

struct Flow {
  int id = 0;
};

// R1: range-for over a hash table.
std::unordered_map<int, int> table_;
int sum_table() {
  int sum = 0;
  for (const auto& [key, value] : table_) sum += value;
  return sum;
}

// R1: explicit iterator traversal.
int first_key() {
  const auto it = table_.begin();
  return it == table_.end() ? -1 : it->first;
}

// R2: wall-clock read.
long long stamp_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// R2: ambient RNG and C time.
int noise() { return std::rand(); }
long when() { return time(nullptr); }

// R3: ordered container keyed on raw pointer values.
std::map<Flow*, int> priority_by_flow;

// R3: address-ordered sort.
std::vector<Flow*> live_flows;
void order_flows() { std::sort(live_flows.begin(), live_flows.end()); }

// R5: stale suppression — there is no unordered iteration on the next line.
// pythia-lint: allow(unordered-iter) the loop this excused was deleted
int nothing_suppressed = 0;

// R5: unknown rule name.
// pythia-lint: allow(flux-capacitor) not a real rule
int unknown_rule = 0;

// R5: missing justification.
// pythia-lint: allow(wall-clock)
int no_justification = 0;
