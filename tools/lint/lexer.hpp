// Minimal C++ lexer for pythia-lint.
//
// Produces a flat token stream with source positions. Unlike a grep-based
// checker, the lexer understands the lexical grammar well enough that rule
// matching never fires inside comments, string literals (including raw
// strings), character literals, or preprocessor directives:
//
//   - line (`//`) and block (`/* */`) comments become Comment tokens (kept,
//     because suppression annotations live in comments);
//   - `"..."` / `'...'` with escape sequences become String/CharLit tokens;
//   - raw strings `R"delim(...)delim"` (with u8/u/U/L prefixes) are scanned
//     to their matching delimiter, however many lines they span;
//   - preprocessor directives (a `#` first on its line, plus backslash
//     continuations) collapse into a single Preproc token;
//   - `::` and `->` are emitted as single multi-char punctuators so rule
//     patterns can distinguish qualification and member access cheaply.
//
// Everything else is Identifier / Number / Punct. The lexer never fails: on
// malformed input (unterminated literal, stray byte) it degrades to
// single-character Punct tokens so the analyzer still sees the rest of the
// file.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pythia::lint {

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,   // ordinary or raw string literal (text excludes quotes' content)
  kCharLit,  // character literal
  kPunct,    // operators and punctuation; `::` and `->` are single tokens
  kComment,  // full comment text including the `//` or `/* */` markers
  kPreproc,  // whole preprocessor logical line including continuations
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column of the token's first character
};

/// Tokenizes `src`. Whitespace is skipped; all other input is covered by
/// exactly one token. Never throws.
[[nodiscard]] std::vector<Token> lex(std::string_view src);

}  // namespace pythia::lint
