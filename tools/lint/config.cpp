#include "config.hpp"

#include <cctype>
#include <sstream>

namespace pythia::lint {

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Strips a trailing # comment that is not inside a quoted string.
[[nodiscard]] std::string strip_comment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

// Parses `"a"` → a. Returns false on anything unquoted.
[[nodiscard]] bool parse_string(const std::string& v, std::string& out) {
  const std::string t = trim(v);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') return false;
  out = t.substr(1, t.size() - 2);
  return true;
}

// Parses `["a", "b"]` → {a, b}. Empty arrays allowed.
[[nodiscard]] bool parse_array(const std::string& v,
                               std::vector<std::string>& out) {
  const std::string t = trim(v);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') return false;
  out.clear();
  const std::string body = trim(t.substr(1, t.size() - 2));
  if (body.empty()) return true;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.size();
    bool in_string = false;
    for (std::size_t i = pos; i < body.size(); ++i) {
      if (body[i] == '"') in_string = !in_string;
      if (body[i] == ',' && !in_string) {
        comma = i;
        break;
      }
    }
    std::string item;
    if (!parse_string(body.substr(pos, comma - pos), item)) return false;
    out.push_back(item);
    pos = comma + 1;
  }
  return true;
}

}  // namespace

std::optional<Config> parse_config(const std::string& text,
                                   std::string& error) {
  Config cfg;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        error = "line " + std::to_string(lineno) + ": unterminated section";
        return std::nullopt;
      }
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected key = value";
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    // Multi-line arrays: keep consuming lines until the bracket closes.
    while (!value.empty() && value.front() == '[' && value.back() != ']') {
      std::string more;
      if (!std::getline(in, more)) {
        error = "line " + std::to_string(lineno) + ": unterminated array";
        return std::nullopt;
      }
      ++lineno;
      value += " " + trim(strip_comment(more));
    }
    const std::string qualified = section.empty() ? key : section + "." + key;

    std::vector<std::string>* target = nullptr;
    if (qualified == "scopes.scan") {
      target = &cfg.scan_roots;
    } else if (qualified == "scopes.deterministic") {
      target = &cfg.deterministic_scopes;
    } else if (qualified == "scopes.skip") {
      target = &cfg.skip_paths;
    } else if (qualified == "scopes.snapshot") {
      target = &cfg.snapshot_scopes;
    } else if (qualified == "rule.wall-clock.allow") {
      target = &cfg.wall_clock_allow;
    } else if (qualified == "rule.fingerprint.roots") {
      target = &cfg.fingerprint_roots;
    } else if (qualified == "rule.fingerprint.functions") {
      target = &cfg.fingerprint_functions;
    } else if (qualified == "headers.roots") {
      target = &cfg.header_roots;
    } else {
      error = "line " + std::to_string(lineno) + ": unknown key '" +
              qualified + "'";
      return std::nullopt;
    }
    if (!parse_array(value, *target)) {
      error = "line " + std::to_string(lineno) + ": expected [\"...\"] for '" +
              qualified + "'";
      return std::nullopt;
    }
  }
  return cfg;
}

bool path_in(const std::string& path,
             const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (p.empty() || path.size() < p.size()) continue;
    if (path.compare(0, p.size(), p) != 0) continue;
    if (path.size() == p.size()) return true;
    const char next = path[p.size()];
    // Component boundary ("src/net" + '/') or file stem ("...thread_pool"
    // + '.'): both count; "src/net" must not match "src/netflow.cpp".
    if (next == '/' || next == '.') return true;
  }
  return false;
}

}  // namespace pythia::lint
