// bisect_divergence — event-level divergence bisection between two
// simulation arms that are supposed to be behaviorally identical.
//
// The determinism contract (docs/determinism.md) promises that certain arm
// pairs — most importantly the incremental vs. full-recompute fabric rate
// engines — produce bit-identical behavior. When that promise breaks, the
// symptom (a diverged golden trace or final metric) is far downstream of the
// cause. This tool localizes the break to the exact first event:
//
//  1. run both arms to completion with an EventTraceRecorder and report the
//     first differing trace line (coarse, human-readable context);
//  2. binary-search the event count: fresh-replay each arm to N events,
//     capture a snapshot (experiments/checkpoint.hpp), and compare
//     *behavioral* checksums — observability sections ("fabric.counters",
//     "routing.counters") are excluded, since contracted-identical arms
//     legitimately do different amounts of work;
//  3. report the first event count at which the images diverge, plus the
//     section-level byte diff at that point.
//
// Every probe is a fresh deterministic replay, so the search is exact: the
// reported event is the true first divergence, not a sampling artifact.
//
// `--smoke` runs the self-test pair used by CI: engines must be identical,
// and a deliberately perturbed arm must be caught by the bisection.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/checkpoint.hpp"
#include "experiments/scenario.hpp"
#include "experiments/trace.hpp"
#include "sim/snapshot.hpp"
#include "workloads/hibench.hpp"

namespace {

using pythia::exp::Scenario;
using pythia::exp::ScenarioConfig;
using pythia::exp::SchedulerKind;

struct Arm {
  std::string name;
  ScenarioConfig cfg;
};

struct Options {
  std::uint64_t seed = 1;
  double oversub = 10.0;
  long long input_mb = 2000;
  std::size_t reducers = 4;
  std::string arm_a_engine = "incremental";
  std::string arm_b_engine = "full";
  std::string arm_b_scheduler;  // empty = same as arm A (pythia)
  std::uint64_t arm_b_seed = 0;  // 0 = same as arm A
  bool smoke = false;
};

pythia::net::RateEngine parse_engine(const std::string& name) {
  if (name == "incremental") return pythia::net::RateEngine::kIncremental;
  if (name == "full") return pythia::net::RateEngine::kFullRecompute;
  std::fprintf(stderr, "unknown rate engine '%s' (incremental|full)\n",
               name.c_str());
  std::exit(1);
}

SchedulerKind parse_scheduler(const std::string& name) {
  if (name == "ecmp") return SchedulerKind::kEcmp;
  if (name == "pythia") return SchedulerKind::kPythia;
  if (name == "hedera") return SchedulerKind::kHedera;
  if (name == "flowcomb") return SchedulerKind::kFlowCombLike;
  std::fprintf(stderr,
               "unknown scheduler '%s' (ecmp|pythia|hedera|flowcomb)\n",
               name.c_str());
  std::exit(1);
}

ScenarioConfig base_config(std::uint64_t seed, double oversub) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.scheduler = SchedulerKind::kPythia;
  cfg.background.oversubscription = oversub;
  return cfg;
}

struct FullRun {
  std::vector<std::string> trace;
  std::uint64_t events = 0;
  double completion_s = 0.0;
};

FullRun run_full(const Arm& arm, const pythia::hadoop::JobSpec& job) {
  Scenario scenario(arm.cfg);
  pythia::exp::EventTraceRecorder recorder(scenario);
  FullRun out;
  out.completion_s = scenario.run_job(job).completion_time().seconds();
  out.trace = recorder.lines();
  out.events = scenario.simulation().queue().events_fired();
  return out;
}

/// Fresh deterministic replay of one arm to an absolute event cursor,
/// returning its state image.
pythia::sim::Snapshot capture_at(const Arm& arm,
                                 const pythia::hadoop::JobSpec& job,
                                 std::uint64_t events) {
  Scenario scenario(arm.cfg);
  scenario.submit_job(job);
  scenario.run_to_event_count(events);
  return pythia::exp::capture_snapshot(scenario, job, arm.name);
}

struct BisectReport {
  bool diverged = false;
  std::uint64_t first_event = 0;
  std::string divergence;  // section-level diff at first_event
  std::size_t probes = 0;
};

BisectReport bisect(const Arm& a, const Arm& b,
                    const pythia::hadoop::JobSpec& job,
                    std::uint64_t max_events) {
  BisectReport report;
  auto differs = [&](std::uint64_t n) {
    ++report.probes;
    return capture_at(a, job, n).behavior_checksum() !=
           capture_at(b, job, n).behavior_checksum();
  };
  if (!differs(max_events)) return report;
  report.diverged = true;
  if (differs(0)) {
    report.first_event = 0;
  } else {
    // Invariant: identical at lo, divergent at hi.
    std::uint64_t lo = 0;
    std::uint64_t hi = max_events;
    while (hi - lo > 1) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (differs(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
      std::printf("  bisect: [%llu, %llu]\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    }
    report.first_event = hi;
  }
  report.divergence = pythia::sim::Snapshot::describe_behavior_divergence(
      capture_at(a, job, report.first_event),
      capture_at(b, job, report.first_event));
  return report;
}

/// Compares two arms end to end; prints the findings. Returns true when the
/// arms are behaviorally identical.
bool compare_arms(const Arm& a, const Arm& b,
                  const pythia::hadoop::JobSpec& job) {
  std::printf("arm A: %s\narm B: %s\n", a.name.c_str(), b.name.c_str());

  const FullRun full_a = run_full(a, job);
  const FullRun full_b = run_full(b, job);
  std::printf("full runs: A fired %llu events (%.3f s sim), "
              "B fired %llu events (%.3f s sim)\n",
              static_cast<unsigned long long>(full_a.events),
              full_a.completion_s,
              static_cast<unsigned long long>(full_b.events),
              full_b.completion_s);

  // Coarse signal first: the golden-trace line where the runs part ways.
  const std::size_t lines =
      std::min(full_a.trace.size(), full_b.trace.size());
  std::size_t first_line = lines;
  for (std::size_t i = 0; i < lines; ++i) {
    if (full_a.trace[i] != full_b.trace[i]) {
      first_line = i;
      break;
    }
  }
  if (first_line < lines) {
    std::printf("trace: first differing line #%zu\n  A: %s\n  B: %s\n",
                first_line + 1, full_a.trace[first_line].c_str(),
                full_b.trace[first_line].c_str());
  } else if (full_a.trace.size() != full_b.trace.size()) {
    std::printf("trace: common prefix identical, lengths differ "
                "(%zu vs %zu lines)\n",
                full_a.trace.size(), full_b.trace.size());
  } else {
    std::printf("trace: %zu lines, byte-identical\n", full_a.trace.size());
  }

  // Exact signal: binary search on the event cursor.
  const std::uint64_t max_events = std::min(full_a.events, full_b.events);
  const BisectReport report = bisect(a, b, job, max_events);
  if (!report.diverged) {
    if (full_a.events != full_b.events) {
      std::printf("bisect: identical through event %llu, but totals differ "
                  "— divergence is in the drained tail\n",
                  static_cast<unsigned long long>(max_events));
      return false;
    }
    std::printf("bisect: behavior identical through event %llu "
                "(%zu probes) — arms agree\n",
                static_cast<unsigned long long>(max_events), report.probes);
    return true;
  }
  if (report.first_event == 0) {
    std::printf("bisect: arms diverge in their initial state "
                "(before any event fires)\n");
  } else {
    std::printf("bisect: first divergent event: %llu "
                "(identical at %llu; %zu probes)\n",
                static_cast<unsigned long long>(report.first_event),
                static_cast<unsigned long long>(report.first_event - 1),
                report.probes);
  }
  std::printf("  divergence: %s\n", report.divergence.c_str());
  return false;
}

int run_smoke() {
  // Small job so the O(log N) fresh replays stay fast.
  const auto job =
      pythia::workloads::sort_job(pythia::util::Bytes{200LL * 1000 * 1000}, 2);

  std::printf("--- smoke 1: contracted-identical engines must agree ---\n");
  Arm a{"engine=incremental scheduler=pythia seed=1", base_config(1, 10.0)};
  Arm b{"engine=full scheduler=pythia seed=1", base_config(1, 10.0)};
  b.cfg.rate_engine = pythia::net::RateEngine::kFullRecompute;
  const bool engines_agree = compare_arms(a, b, job);
  if (!engines_agree) {
    std::printf("SMOKE FAIL: rate engines diverged\n");
    return 1;
  }

  std::printf("--- smoke 2: bisection must localize a real divergence ---\n");
  Arm c{"engine=incremental scheduler=pythia seed=1", base_config(1, 10.0)};
  Arm d{"engine=incremental scheduler=flowcomb seed=1", base_config(1, 10.0)};
  d.cfg.scheduler = SchedulerKind::kFlowCombLike;
  const bool perturbed_agree = compare_arms(c, d, job);
  if (perturbed_agree) {
    std::printf("SMOKE FAIL: bisection missed an injected divergence\n");
    return 1;
  }

  std::printf("SMOKE PASS\n");
  return 0;
}

void usage() {
  std::printf(
      "bisect_divergence: localize the first divergent event between two\n"
      "simulation arms that should be behaviorally identical.\n\n"
      "  --seed N            root seed for both arms (default 1)\n"
      "  --oversub R         background oversubscription ratio (default 10)\n"
      "  --input-mb M        sort job input size in MB (default 2000)\n"
      "  --reducers K        sort job reducer count (default 4)\n"
      "  --arm-a-engine E    rate engine for arm A: incremental|full\n"
      "  --arm-b-engine E    rate engine for arm B (default full)\n"
      "  --arm-b-scheduler S perturb arm B's scheduler "
      "(ecmp|pythia|hedera|flowcomb)\n"
      "  --arm-b-seed N      perturb arm B's seed\n"
      "  --smoke             run the CI self-test pair and exit\n\n"
      "exit status: 0 arms agree, 2 divergence found and localized,\n"
      "1 usage/self-test failure\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (flag == "--seed") {
      opt.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--oversub") {
      opt.oversub = std::strtod(value().c_str(), nullptr);
    } else if (flag == "--input-mb") {
      opt.input_mb = std::strtoll(value().c_str(), nullptr, 10);
    } else if (flag == "--reducers") {
      opt.reducers = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--arm-a-engine") {
      opt.arm_a_engine = value();
    } else if (flag == "--arm-b-engine") {
      opt.arm_b_engine = value();
    } else if (flag == "--arm-b-scheduler") {
      opt.arm_b_scheduler = value();
    } else if (flag == "--arm-b-seed") {
      opt.arm_b_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--smoke") {
      opt.smoke = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      return 1;
    }
  }

  if (opt.smoke) return run_smoke();

  const auto job = pythia::workloads::sort_job(
      pythia::util::Bytes{opt.input_mb * 1000 * 1000}, opt.reducers);

  Arm a{"engine=" + opt.arm_a_engine + " scheduler=pythia seed=" +
            std::to_string(opt.seed),
        base_config(opt.seed, opt.oversub)};
  a.cfg.rate_engine = parse_engine(opt.arm_a_engine);

  const std::uint64_t seed_b = opt.arm_b_seed != 0 ? opt.arm_b_seed : opt.seed;
  const std::string sched_b =
      opt.arm_b_scheduler.empty() ? "pythia" : opt.arm_b_scheduler;
  Arm b{"engine=" + opt.arm_b_engine + " scheduler=" + sched_b + " seed=" +
            std::to_string(seed_b),
        base_config(seed_b, opt.oversub)};
  b.cfg.rate_engine = parse_engine(opt.arm_b_engine);
  if (!opt.arm_b_scheduler.empty()) {
    b.cfg.scheduler = parse_scheduler(opt.arm_b_scheduler);
  }

  return compare_arms(a, b, job) ? 0 : 2;
}
