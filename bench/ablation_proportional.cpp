// Ablation A7 — proportional capacity for skewed reducers.
//
// Section II of the paper: "if reducer-0 receives five times more data then
// ... the flows terminated at reducer-0 should get five times more network
// capacity". Path placement alone cannot create that ratio on a shared
// link; weighted max-min sharing (Orchestra-style rate control driven by
// Pythia's predicted per-reducer volumes) can. This bench compares, under
// rising skew: ECMP, Pythia (placement only), and Pythia + proportional
// flow weights — reporting completion time and the spread between the
// first and last reducer's shuffle completion (the barrier the skewed
// reducer stretches).
#include <cstdio>

#include "experiments/scenario.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

namespace {

struct Outcome {
  double completion_s = 0.0;
  double shuffle_spread_s = 0.0;  // last minus first reducer shuffle_done
};

Outcome run(pythia::exp::ScenarioConfig cfg,
            const pythia::hadoop::JobSpec& job) {
  pythia::exp::Scenario scenario(cfg);
  const auto result = scenario.run_job(job);
  auto first = pythia::util::SimTime::max();
  auto last = pythia::util::SimTime::zero();
  for (const auto& r : result.reducers) {
    first = std::min(first, r.shuffle_done);
    last = std::max(last, r.shuffle_done);
  }
  return Outcome{result.completion_time().seconds(),
                 (last - first).seconds()};
}

}  // namespace

int main() {
  using namespace pythia;

  std::printf("=== Ablation A7: proportional capacity for skewed reducers "
              "===\n(60 GB sort, 1:10 over-subscription)\n\n");

  util::Table table({"zipf s", "scheduler", "completion (s)",
                     "shuffle spread (s)"});
  for (const double skew : {0.5, 1.0, 1.5}) {
    const auto job = workloads::sort_job(
        util::Bytes{60LL * 1000 * 1000 * 1000}, 20, skew);
    for (int arm = 0; arm < 3; ++arm) {
      exp::ScenarioConfig cfg;
      cfg.seed = 12;
      cfg.background.oversubscription = 10.0;
      std::string name;
      switch (arm) {
        case 0:
          cfg.scheduler = exp::SchedulerKind::kEcmp;
          name = "ECMP";
          break;
        case 1:
          cfg.scheduler = exp::SchedulerKind::kPythia;
          name = "Pythia (placement)";
          break;
        default:
          cfg.scheduler = exp::SchedulerKind::kPythia;
          cfg.pythia.weighted_flows = true;
          name = "Pythia + proportional rates";
          break;
      }
      const Outcome o = run(cfg, job);
      table.add_row({util::Table::num(skew, 1), name,
                     util::Table::num(o.completion_s, 1),
                     util::Table::num(o.shuffle_spread_s, 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected shape: placement-only Pythia already compresses the "
      "reducer shuffle spread vs ECMP;\nproportional rates add a further "
      "win where shared links are the contention point (mild skew).\nAt "
      "extreme skew the hot reducer's own NIC is the bottleneck — no "
      "weighting can widen a NIC —\nso the arms converge, which is itself "
      "the interesting boundary of the paper's 5x intuition.\n");
  return 0;
}
