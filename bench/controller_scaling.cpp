// Controller fast-path scaling sweep: prediction-to-install latency under
// open-arrival multi-tenant intent storms, serial reference vs the sharded,
// batched cohort pipeline. Writes BENCH_controller.json (intents/sec,
// median/p99 per-intent latency, drain wall time, amortization factor, and
// an all_identical verdict CI gates on) across a 1x -> 10x arrival-rate
// sweep. `--smoke` runs a reduced sweep for CI.
//
// Protocol per rate point: one storm (workloads::generate_storm, fixed seed)
// is replayed verbatim into three independently built stacks —
//
//   serial        kCohortSerial,  1 shard   (the per-intent reference)
//   batched_1     kCohortBatched, 1 shard   (coalescing + batch install)
//   batched_pods  kCohortBatched, auto shards (one per fat-tree pod)
//
// Per-intent latency is wall time from the cohort drain's start to the
// allocator submission covering that intent (CohortDrainObserver); the
// batched arms charge every intent of a coalesced run the run's single
// submission time, which is exactly the amortization being measured. The
// rate sweep scales jobs up and mean inter-arrival down together, so sim
// duration stays roughly fixed while offered intents/sec grows ~rate^2.
//
// Identity gate: after each arm finishes, the collector's behavior image
// plus the allocator and controller state images are hashed; all three arms
// must agree at every rate or the bench exits nonzero. This is the
// "byte-identical to the serial reference" proof run on every CI push.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_cli.hpp"
#include "core/allocator.hpp"
#include "core/collector.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "workloads/open_arrival.hpp"

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Wall-clock drain instrumentation (bench-side: the simulation itself never
/// observes this clock, so attaching the observer cannot perturb behavior).
class TimingObserver final : public core::CohortDrainObserver {
 public:
  void on_drain_begin(std::size_t) override { begin_ = Clock::now(); }

  void on_intents_submitted(std::size_t intents) override {
    const double us =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - begin_)
                                .count()) /
        1000.0;
    for (std::size_t i = 0; i < intents; ++i) samples_us_.push_back(us);
    ++allocator_calls_;
  }

  void on_drain_end(std::size_t intents, std::size_t runs,
                    std::size_t) override {
    drain_ns_ += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             begin_)
            .count());
    intents_ += intents;
    runs_ += runs;
  }

  std::vector<double>& samples_us() { return samples_us_; }
  [[nodiscard]] double drain_ms() const { return drain_ns_ / 1e6; }
  [[nodiscard]] std::uint64_t allocator_calls() const {
    return allocator_calls_;
  }
  [[nodiscard]] std::uint64_t intents() const { return intents_; }
  [[nodiscard]] std::uint64_t runs() const { return runs_; }

 private:
  Clock::time_point begin_{};
  std::vector<double> samples_us_;
  double drain_ns_ = 0.0;
  std::uint64_t allocator_calls_ = 0;
  std::uint64_t intents_ = 0;
  std::uint64_t runs_ = 0;
};

struct ArmResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double drain_ms = 0.0;
  double run_ms = 0.0;
  std::uint64_t allocator_calls = 0;
  std::uint64_t runs = 0;
  std::uint64_t drained_intents = 0;
  std::uint64_t coalesced_saved = 0;
  std::uint64_t checksum = 0;
  double sim_seconds = 0.0;
};

ArmResult run_arm(const net::Topology& topo,
                  const std::vector<workloads::StormEvent>& events,
                  core::IntentPipeline pipeline, std::size_t shard_count,
                  std::uint64_t seed) {
  sim::Simulation sim(seed);
  net::Fabric fabric(sim, topo);
  sdn::Controller controller(sim, fabric, topo);
  core::Allocator allocator(controller);
  core::CollectorConfig ccfg;
  ccfg.pipeline = pipeline;
  ccfg.shard_count = shard_count;
  core::Collector collector(sim, allocator, ccfg);
  TimingObserver obs;
  collector.set_drain_observer(&obs);
  workloads::schedule_storm(sim, collector, events);

  const auto t0 = Clock::now();
  sim.run();
  const auto t1 = Clock::now();

  ArmResult r;
  auto& samples = obs.samples_us();
  std::sort(samples.begin(), samples.end());
  r.p50_us = percentile(samples, 0.50);
  r.p99_us = percentile(samples, 0.99);
  r.drain_ms = obs.drain_ms();
  r.run_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()) /
      1000.0;
  r.allocator_calls = obs.allocator_calls();
  r.runs = obs.runs();
  r.drained_intents = obs.intents();
  r.coalesced_saved = collector.coalesced_submissions_saved();
  r.sim_seconds = sim.now().seconds();

  sim::StateEncoder enc;
  collector.encode_behavior(enc);
  allocator.encode_state(enc);
  controller.encode_state(enc);
  r.checksum = fnv1a(enc.bytes());
  return r;
}

/// Medians out machine noise: reps identical runs (same storm, same seed),
/// report the run with median p99. Checksums agree across reps by
/// construction — determinism is what the pipeline guarantees.
ArmResult run_arm_median(const net::Topology& topo,
                         const std::vector<workloads::StormEvent>& events,
                         core::IntentPipeline pipeline,
                         std::size_t shard_count, std::uint64_t seed,
                         int reps) {
  std::vector<ArmResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(run_arm(topo, events, pipeline, shard_count, seed));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ArmResult& a, const ArmResult& b) {
              return a.p99_us < b.p99_us;
            });
  return runs[runs.size() / 2];
}

std::string arm_json(const char* name, const ArmResult& r) {
  char b[512];
  std::snprintf(b, sizeof b,
                "      \"%s\": {\"p50_us\": %.2f, \"p99_us\": %.2f, "
                "\"drain_ms\": %.3f, \"run_ms\": %.1f, "
                "\"allocator_calls\": %llu, \"runs\": %llu, "
                "\"drained_intents\": %llu, \"coalesced_saved\": %llu, "
                "\"checksum\": \"%016llx\"}",
                name, r.p50_us, r.p99_us, r.drain_ms, r.run_ms,
                static_cast<unsigned long long>(r.allocator_calls),
                static_cast<unsigned long long>(r.runs),
                static_cast<unsigned long long>(r.drained_intents),
                static_cast<unsigned long long>(r.coalesced_saved),
                static_cast<unsigned long long>(r.checksum));
  return std::string(b);
}

}  // namespace

int main(int argc, char** argv) {
  const benchcli::Args args = benchcli::parse(argc, argv);
  const std::string out_path = args.json_path("BENCH_controller.json");

  std::vector<std::size_t> rates;
  if (args.smoke) {
    rates = {1, 4, 10};
  } else {
    rates = {1, 2, 4, 7, 10};
  }
  const std::size_t base_jobs = args.smoke ? 8 : 24;
  const std::int64_t base_interarrival_ns = 40'000'000;  // 40 ms at rate 1
  const int reps = args.smoke ? 1 : 3;
  constexpr std::uint64_t kSeed = 7;

  net::FatTreeConfig tcfg;
  tcfg.k = 4;
  const net::Topology topo = net::make_fat_tree(tcfg);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"controller_scaling\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n  \"topology\": \"fat_tree_k4\",\n",
               args.smoke ? "true" : "false");

  std::printf("%-5s %8s %10s | %10s %10s | %10s %10s | %7s %5s\n", "rate",
              "intents", "int/sec", "ser p99us", "bat p99us", "ser drain",
              "bat drain", "amort", "ident");

  std::string cells_json;
  bool all_identical = true;
  double p99_serial_first = 0.0, p99_serial_last = 0.0;
  double p99_batched_first = 0.0, p99_batched_last = 0.0;
  double amortization_last = 0.0;

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::size_t rate = rates[i];
    workloads::OpenArrivalConfig wcfg;
    wcfg.jobs = base_jobs * rate;
    wcfg.mean_interarrival = util::Duration{
        std::max<std::int64_t>(1, base_interarrival_ns /
                                      static_cast<std::int64_t>(rate))};
    const auto events = workloads::generate_storm(wcfg, topo, kSeed);
    const std::size_t intents = workloads::storm_intent_count(events);

    const ArmResult serial = run_arm_median(
        topo, events, core::IntentPipeline::kCohortSerial, 1, kSeed, reps);
    const ArmResult batched1 = run_arm_median(
        topo, events, core::IntentPipeline::kCohortBatched, 1, kSeed, reps);
    const ArmResult batched_pods = run_arm_median(
        topo, events, core::IntentPipeline::kCohortBatched, 0, kSeed, reps);

    const bool identical = serial.checksum == batched1.checksum &&
                           serial.checksum == batched_pods.checksum;
    all_identical = all_identical && identical;

    const double intents_per_sec =
        serial.sim_seconds > 0.0
            ? static_cast<double>(intents) / serial.sim_seconds
            : 0.0;
    // Per-intent amortization: how many prediction+allocation passes (each
    // one routing lookup + rule-table touch on the controller) the serial
    // reference spends per pass of the batched pipeline. Deterministic —
    // it counts calls, not wall time.
    const double amortization =
        batched_pods.allocator_calls > 0
            ? static_cast<double>(serial.allocator_calls) /
                  static_cast<double>(batched_pods.allocator_calls)
            : 0.0;
    const double drain_speedup = batched_pods.drain_ms > 0.0
                                     ? serial.drain_ms / batched_pods.drain_ms
                                     : 0.0;
    if (i == 0) {
      p99_serial_first = serial.p99_us;
      p99_batched_first = batched_pods.p99_us;
    }
    p99_serial_last = serial.p99_us;
    p99_batched_last = batched_pods.p99_us;
    amortization_last = amortization;

    std::printf("%-5zu %8zu %10.0f | %10.2f %10.2f | %9.2fms %9.2fms | "
                "%6.1fx %5s\n",
                rate, intents, intents_per_sec, serial.p99_us,
                batched_pods.p99_us, serial.drain_ms, batched_pods.drain_ms,
                amortization, identical ? "yes" : "NO");
    std::fflush(stdout);

    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"rate\": %zu, \"jobs\": %zu, \"intents\": %zu, "
                  "\"intents_per_sec\": %.0f,\n",
                  rate, wcfg.jobs, intents, intents_per_sec);
    cells_json += (cells_json.empty() ? "" : ",\n") + std::string(buf);
    cells_json += arm_json("serial", serial) + ",\n";
    cells_json += arm_json("batched_1shard", batched1) + ",\n";
    cells_json += arm_json("batched_pods", batched_pods) + ",\n";
    std::snprintf(buf, sizeof buf,
                  "      \"amortization\": %.2f, \"drain_speedup\": %.2f, "
                  "\"identical\": %s}",
                  amortization, drain_speedup, identical ? "true" : "false");
    cells_json += buf;
  }

  const double serial_growth =
      p99_serial_first > 0.0 ? p99_serial_last / p99_serial_first : 0.0;
  const double batched_growth =
      p99_batched_first > 0.0 ? p99_batched_last / p99_batched_first : 0.0;
  std::fprintf(out, "  \"all_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"p99_growth_serial\": %.2f,\n", serial_growth);
  std::fprintf(out, "  \"p99_growth_batched\": %.2f,\n", batched_growth);
  std::fprintf(out, "  \"amortization_at_max_rate\": %.2f,\n",
               amortization_last);
  std::fprintf(out, "  \"cells\": [\n%s\n  ]\n}\n", cells_json.c_str());
  std::fclose(out);
  std::printf("wrote %s (all_identical=%s, batched p99 growth %.2fx, "
              "amortization %.1fx)\n",
              out_path.c_str(), all_identical ? "true" : "false",
              batched_growth, amortization_last);
  return all_identical ? 0 : 1;
}
