// Ablation A5 — fault tolerance (paper §IV: the routing graph is updated on
// link/switch failure events).
//
// Two drills on a 60 GB sort at 1:10 over-subscription:
//  (a) an inter-rack cable dies mid-shuffle and comes back a minute later —
//      completion-time impact per scheduler;
//  (b) Hadoop-level faults: straggling and failing map attempts — does
//      Pythia's prediction pipeline tolerate task churn?
#include <cstdio>
#include <vector>

#include "bench_cli.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  using util::Duration;
  const auto args = benchcli::parse(argc, argv);
  exp::ParallelRunner runner(args.threads);

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf("=== Ablation A5a: inter-rack cable failure mid-job ===\n\n");
  {
    const std::vector<exp::SchedulerKind> kinds = {
        exp::SchedulerKind::kEcmp, exp::SchedulerKind::kHedera,
        exp::SchedulerKind::kPythia};
    struct DrillResult {
      double clean_s = 0.0;
      double faulty_s = 0.0;
    };
    const auto results = runner.map<DrillResult>(
        kinds.size(), [&](std::size_t i) {
          exp::ScenarioConfig cfg;
          cfg.seed = 4;
          cfg.background.oversubscription = 10.0;
          cfg.scheduler = kinds[i];

          DrillResult r;
          r.clean_s = exp::run_completion_seconds(cfg, job);

          exp::Scenario scenario(cfg);
          const auto& paths = scenario.controller().routing().paths(
              scenario.servers()[0], scenario.servers()[9]);
          // Kill the *lightly loaded* cable (the one Pythia depends on) at
          // 10 s — mid-shuffle for every scheduler — and restore at 50 s.
          const net::LinkId victim = paths[1].links[1];
          scenario.simulation().after(Duration::seconds_i(10), [&] {
            scenario.controller().handle_link_failure(victim);
          });
          scenario.simulation().after(Duration::seconds_i(50), [&] {
            scenario.controller().handle_link_restore(victim);
          });
          r.faulty_s = scenario.run_job(job).completion_time().seconds();
          return r;
        });
    util::Table table({"scheduler", "no failure (s)", "with failure (s)",
                       "penalty"});
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      table.add_row({exp::scheduler_name(kinds[i]),
                     util::Table::num(results[i].clean_s, 1),
                     util::Table::num(results[i].faulty_s, 1),
                     util::Table::percent(
                         results[i].faulty_s / results[i].clean_s - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== Ablation A5b: Hadoop task faults under Pythia ===\n\n");
  {
    struct Profile {
      const char* name;
      double fail_p;
      double straggle_p;
    };
    const std::vector<Profile> profiles = {
        {"none", 0.0, 0.0}, {"5% failures", 0.05, 0.0},
        {"10% stragglers", 0.0, 0.10}, {"both", 0.05, 0.10}};
    struct FaultResult {
      double ecmp_s = 0.0;
      double pythia_s = 0.0;
      std::size_t map_retries = 0;
      std::size_t stragglers = 0;
    };
    const auto results = runner.map<FaultResult>(
        profiles.size(), [&](std::size_t i) {
          exp::ScenarioConfig cfg;
          cfg.seed = 4;
          cfg.background.oversubscription = 10.0;
          cfg.cluster.map_failure_probability = profiles[i].fail_p;
          cfg.cluster.straggler_probability = profiles[i].straggle_p;

          FaultResult r;
          cfg.scheduler = exp::SchedulerKind::kEcmp;
          r.ecmp_s = exp::run_completion_seconds(cfg, job);

          cfg.scheduler = exp::SchedulerKind::kPythia;
          exp::Scenario scenario(cfg);
          const auto result = scenario.run_job(job);
          r.pythia_s = result.completion_time().seconds();
          r.map_retries = result.map_retries;
          r.stragglers = result.stragglers;
          return r;
        });
    util::Table table({"fault profile", "ECMP (s)", "Pythia (s)",
                       "speedup", "map retries", "stragglers"});
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      table.add_row({profiles[i].name, util::Table::num(results[i].ecmp_s, 1),
                     util::Table::num(results[i].pythia_s, 1),
                     util::Table::percent(
                         results[i].ecmp_s / results[i].pythia_s - 1.0),
                     std::to_string(results[i].map_retries),
                     std::to_string(results[i].stragglers)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("[sweep] %s\n\n",
              exp::runner_counters_summary(runner.counters()).c_str());

  std::printf(
      "expected shape: losing the clean cable hurts Pythia most (its escape "
      "path vanishes) but jobs\nalways complete and recover on restore; task "
      "churn slows everyone while Pythia's relative edge\nsurvives — "
      "predictions are per-attempt-spill, so retries never poison the "
      "collector.\n");
  return 0;
}
