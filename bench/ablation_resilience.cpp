// Ablation A5 — fault tolerance (paper §IV: the routing graph is updated on
// link/switch failure events).
//
// Two drills on a 60 GB sort at 1:10 over-subscription:
//  (a) an inter-rack cable dies mid-shuffle and comes back a minute later —
//      completion-time impact per scheduler;
//  (b) Hadoop-level faults: straggling and failing map attempts — does
//      Pythia's prediction pipeline tolerate task churn?
#include <cstdio>

#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;
  using util::Duration;

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf("=== Ablation A5a: inter-rack cable failure mid-job ===\n\n");
  {
    util::Table table({"scheduler", "no failure (s)", "with failure (s)",
                       "penalty"});
    for (const auto kind :
         {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kHedera,
          exp::SchedulerKind::kPythia}) {
      exp::ScenarioConfig cfg;
      cfg.seed = 4;
      cfg.background.oversubscription = 10.0;
      cfg.scheduler = kind;

      const double clean = exp::run_completion_seconds(cfg, job);

      exp::Scenario scenario(cfg);
      const auto& paths = scenario.controller().routing().paths(
          scenario.servers()[0], scenario.servers()[9]);
      // Kill the *lightly loaded* cable (the one Pythia depends on) at 10 s —
      // mid-shuffle for every scheduler — and restore at 50 s.
      const net::LinkId victim = paths[1].links[1];
      scenario.simulation().after(Duration::seconds_i(10), [&] {
        scenario.controller().handle_link_failure(victim);
      });
      scenario.simulation().after(Duration::seconds_i(50), [&] {
        scenario.controller().handle_link_restore(victim);
      });
      const double faulty =
          scenario.run_job(job).completion_time().seconds();

      table.add_row({exp::scheduler_name(kind), util::Table::num(clean, 1),
                     util::Table::num(faulty, 1),
                     util::Table::percent(faulty / clean - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== Ablation A5b: Hadoop task faults under Pythia ===\n\n");
  {
    util::Table table({"fault profile", "ECMP (s)", "Pythia (s)",
                       "speedup", "map retries", "stragglers"});
    struct Profile {
      const char* name;
      double fail_p;
      double straggle_p;
    };
    for (const Profile& p : {Profile{"none", 0.0, 0.0},
                             Profile{"5% failures", 0.05, 0.0},
                             Profile{"10% stragglers", 0.0, 0.10},
                             Profile{"both", 0.05, 0.10}}) {
      exp::ScenarioConfig cfg;
      cfg.seed = 4;
      cfg.background.oversubscription = 10.0;
      cfg.cluster.map_failure_probability = p.fail_p;
      cfg.cluster.straggler_probability = p.straggle_p;

      cfg.scheduler = exp::SchedulerKind::kEcmp;
      const double ecmp = exp::run_completion_seconds(cfg, job);

      cfg.scheduler = exp::SchedulerKind::kPythia;
      exp::Scenario scenario(cfg);
      const auto result = scenario.run_job(job);
      const double pythia = result.completion_time().seconds();

      table.add_row({p.name, util::Table::num(ecmp, 1),
                     util::Table::num(pythia, 1),
                     util::Table::percent(ecmp / pythia - 1.0),
                     std::to_string(result.map_retries),
                     std::to_string(result.stragglers)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "expected shape: losing the clean cable hurts Pythia most (its escape "
      "path vanishes) but jobs\nalways complete and recover on restore; task "
      "churn slows everyone while Pythia's relative edge\nsurvives — "
      "predictions are per-attempt-spill, so retries never poison the "
      "collector.\n");
  return 0;
}
