// Ablation A4 — flow-aggregation granularity vs forwarding state.
//
// Paper §IV: wildcard TCAM entries are scarce, so "large-scale future SDN
// setups may force routing at the level of server aggregations (racks or
// PODs); Pythia can easily respond ... with an appropriate aggregation
// policy". This bench quantifies the trade: rules and flow-mod messages
// versus completion time, for server-pair and rack-pair aggregation, and
// also reports the criticality-ordering toggle (the paper's differentiator
// over FlowComb).
#include <cstdio>

#include "core/allocator.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace {

struct Arm {
  const char* name;
  pythia::core::Aggregation aggregation;
  bool criticality;
};

}  // namespace

int main() {
  using namespace pythia;

  std::printf("=== Ablation A4: aggregation granularity & criticality ===\n");
  std::printf("(60 GB sort, 1:10 over-subscription, 2-rack testbed)\n\n");

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);
  const Arm arms[] = {
      {"server-pair + criticality", core::Aggregation::kServerPair, true},
      {"server-pair, volume-only FFD", core::Aggregation::kServerPair, false},
      {"rack-pair wildcard + criticality", core::Aggregation::kRackPair,
       true},
  };

  util::Table table({"policy", "completion (s)", "rules", "flow-mods",
                     "speedup vs ECMP"});

  exp::ScenarioConfig base;
  base.seed = 2;
  base.background.oversubscription = 10.0;
  base.scheduler = exp::SchedulerKind::kEcmp;
  const double ecmp = exp::run_completion_seconds(base, job);
  table.add_row({"ECMP (reference)", util::Table::num(ecmp, 1), "0", "0",
                 "0.0%"});

  for (const Arm& arm : arms) {
    exp::ScenarioConfig cfg = base;
    cfg.scheduler = exp::SchedulerKind::kPythia;
    cfg.pythia.allocator.aggregation = arm.aggregation;
    cfg.pythia.collector.criticality_aware = arm.criticality;
    exp::Scenario scenario(cfg);
    const double secs = scenario.run_job(job).completion_time().seconds();
    table.add_row({arm.name, util::Table::num(secs, 1),
                   std::to_string(scenario.controller().rules_installed()),
                   std::to_string(scenario.controller().flow_mod_messages()),
                   util::Table::percent(ecmp / secs - 1.0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected shape: rack wildcards cut rules/flow-mods by an order of "
      "magnitude while keeping most\nof the speedup (they lose per-pair "
      "packing precision); criticality ordering matters more under\nheavy "
      "skew than in this balanced configuration.\n");
  return 0;
}
