// Ablation A1 — scheduler ladder.
//
// The paper argues (Section II + VI) that neither load-awareness alone
// (Hedera) nor prediction alone (FlowComb, which "does not leverage
// application intelligence except predicted flow volumes") reaches Pythia's
// optimization potential. This bench runs the full ladder on both paper
// workloads at 1:10 over-subscription:
//   ECMP < Hedera (reactive, load-aware) < Pythia (predictive + load-aware)
// with FlowComb-like (predictive, load-blind, slower detection) in between
// and a static oracle as the no-adaptation reference.
#include <cstdio>

#include "bench_cli.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);

  std::printf("=== Ablation A1: scheduler ladder at 1:10 ===\n\n");

  const std::vector<exp::SchedulerKind> ladder = {
      exp::SchedulerKind::kEcmp,          exp::SchedulerKind::kPacketSpray,
      exp::SchedulerKind::kHedera,        exp::SchedulerKind::kFlowCombLike,
      exp::SchedulerKind::kPythia,        exp::SchedulerKind::kStaticOracle,
  };

  for (const auto& job : {workloads::sort_job(
                              util::Bytes{60LL * 1000 * 1000 * 1000}, 20),
                          workloads::paper_nutch()}) {
    exp::ScenarioConfig base;
    base.background.oversubscription = 10.0;
    exp::RunnerCounters counters;
    const auto rows = exp::run_scheduler_ladder(base, job, ladder, {1, 2, 3},
                                                args.threads, &counters);

    const double ecmp_mean = rows.front().mean_s;
    util::Table table({"scheduler", "completion (s)", "stddev",
                       "speedup vs ECMP"});
    for (const auto& row : rows) {
      table.add_row({row.scheduler, util::Table::num(row.mean_s, 1),
                     util::Table::num(row.stddev_s, 1),
                     util::Table::percent(ecmp_mean / row.mean_s - 1.0)});
    }
    std::printf("--- %s ---\n%s[sweep] %s\n\n", job.name.c_str(),
                table.to_string().c_str(),
                exp::runner_counters_summary(counters).c_str());
  }

  std::printf(
      "expected shape: ECMP slowest; equal-striping PacketSpray ~ ECMP "
      "under *asymmetric* background\n(half of every fetch still crosses "
      "the loaded path — the uncoupled-multipath limitation);\nHedera "
      "recovers part of the gap reactively; FlowComb-like gains from "
      "prediction but mispacks\nwithout network state; Pythia ~ static "
      "oracle (which cheats with ground-truth background\nknowledge but "
      "cannot adapt).\n");
  return 0;
}
