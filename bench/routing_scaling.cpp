// Routing-engine scaling sweep: k-shortest-path table rebuild latency on
// fat-tree k=4/8/16 for a single-cable (duplex) failure and its restore,
// full recompute vs the incremental reverse-index rebuild, the cold-build
// cost across construction modes (eager serial, eager parallel on a thread
// pool, lazy on-demand), plus the per-flow allocator choose_path decision
// latency on the interned tables. Writes BENCH_routing.json (rebuild wall
// times, pairs recomputed vs reused, cold-build arms, choose_path ns, peak
// RSS). `--smoke` runs k=4 only for CI.
//
// Two victims per topology: the cable with the *median* reverse-index
// fanout (a representative physical failure) and the one with the *largest*
// (the adversarial case — on a fat tree that is a core uplink whose
// candidate sets cover a quarter of all cross-pod pairs, which bounds the
// achievable speedup by the work ratio itself). Before timing, one untimed
// fail+restore cycle checks the incremental table is byte-identical to the
// full one, pair by pair — a speedup against a wrong table is meaningless.
// Each timed cycle runs 3 reps; the median is reported. Eager cold builds
// drop to 1 rep above 4096 pairs — at k16-sparse each costs ~20 s and the
// reps were pure redundancy.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pythia;
using net::BuildMode;
using net::LinkId;
using net::NodeId;
using net::RebuildMode;
using net::RoutingGraph;
using net::Topology;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         1e6;
}

double median3(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// A cable plus its opposite direction (a physical failure takes both).
std::unordered_set<LinkId> duplex(const Topology& topo, LinkId l) {
  std::unordered_set<LinkId> banned{l};
  if (const auto peer = topo.find_link(topo.link(l).dst, topo.link(l).src)) {
    banned.insert(*peer);
  }
  return banned;
}

/// Switch-switch cables actually present in some candidate set, sorted by
/// reverse-index fanout ascending. Cables no pair routes over (common in the
/// sparse k=16 cell, whose 128 hosts cannot exercise the full core) are
/// excluded — "failing" one is a no-op for routing and measures nothing.
std::vector<LinkId> cables_by_fanout(const Topology& topo,
                                     const RoutingGraph& rg) {
  std::vector<LinkId> cables;
  for (const auto& link : topo.links()) {
    if (topo.node(link.src).kind == net::NodeKind::kSwitch &&
        topo.node(link.dst).kind == net::NodeKind::kSwitch &&
        rg.pairs_using(link.id) > 0) {
      cables.push_back(link.id);
    }
  }
  std::sort(cables.begin(), cables.end(), [&](LinkId a, LinkId b) {
    if (rg.pairs_using(a) != rg.pairs_using(b)) {
      return rg.pairs_using(a) < rg.pairs_using(b);
    }
    return a.value() < b.value();
  });
  return cables;
}

bool tables_identical(const Topology& topo, const RoutingGraph& a,
                      const RoutingGraph& b) {
  const auto hosts = topo.hosts();
  for (NodeId s : hosts) {
    for (NodeId d : hosts) {
      if (s == d) continue;
      const auto pa = a.paths(s, d);
      const auto pb = b.paths(s, d);
      if (pa.size() != pb.size()) return false;
      for (std::size_t i = 0; i < pa.size(); ++i) {
        if (pa[i].links != pb[i].links) return false;
      }
    }
  }
  return true;
}

/// Cold-build cost across the three construction modes. `eager_ms` comes
/// from the timed builds in main(); the lazy arm splits construction from
/// first-query and working-set materialization (the pairs a real workload
/// would actually touch); the parallel arm is a full eager build fanned
/// across a thread pool with slot-order interning.
struct ColdResult {
  double lazy_ctor_ms = 0.0;
  double lazy_first_query_ms = 0.0;
  /// Lazy ctor + Yen for every working-set pair: the effective cost of
  /// having routing ready for the pairs that carry flows.
  double lazy_working_set_ms = 0.0;
  std::size_t working_set_pairs = 0;
  std::uint64_t pairs_materialized = 0;
  double parallel_ms = 0.0;
  std::size_t parallel_threads = 0;
  bool identical = false;
};

/// `reference` must be a clean (no banned links) eager graph on `topo`.
ColdResult run_cold(const Topology& topo, std::size_t k_paths,
                    std::uint64_t pairs, const RoutingGraph& reference) {
  ColdResult r;
  const auto hosts = topo.hosts();
  util::Xoshiro256 rng(42);
  r.working_set_pairs = static_cast<std::size_t>(
      std::min<std::uint64_t>(256, pairs));
  std::vector<std::pair<NodeId, NodeId>> sample;
  sample.reserve(r.working_set_pairs);
  for (std::size_t i = 0; i < r.working_set_pairs; ++i) {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    sample.emplace_back(src, dst);
  }

  auto t0 = std::chrono::steady_clock::now();
  RoutingGraph lazy(topo, k_paths, BuildMode::kLazy);
  r.lazy_ctor_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  (void)lazy.paths(sample.front().first, sample.front().second);
  r.lazy_first_query_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 1; i < sample.size(); ++i) {
    (void)lazy.paths(sample[i].first, sample[i].second);
  }
  r.lazy_working_set_ms =
      r.lazy_ctor_ms + r.lazy_first_query_ms + ms_since(t0);
  r.pairs_materialized = lazy.pairs_materialized();

  // Parallel eager arm. At least 2 workers even on a single-core box so the
  // scratch/commit fan-out path is actually exercised (and visible to TSan
  // when this runs in CI smoke).
  util::ThreadPool pool(
      std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  r.parallel_threads = pool.thread_count();
  t0 = std::chrono::steady_clock::now();
  RoutingGraph parallel(topo, k_paths, BuildMode::kEager, &pool);
  r.parallel_ms = ms_since(t0);

  // Identity gate: fully materialize the lazy arm, then all three modes
  // must agree pair by pair. A fast cold build that computes a different
  // table measures nothing.
  lazy.materialize_all();
  r.identical = tables_identical(topo, reference, lazy) &&
                tables_identical(topo, reference, parallel);
  return r;
}

struct VictimResult {
  std::size_t fanout = 0;
  double fail_inc_cold_ms = 0.0;
  std::uint64_t pairs_recomputed_cold = 0;
  double fail_full_ms = 0.0;
  double fail_inc_ms = 0.0;
  double restore_full_ms = 0.0;
  double restore_inc_ms = 0.0;
  std::uint64_t pairs_recomputed_fail = 0;
  std::uint64_t pairs_recomputed_restore = 0;
  bool identical = false;

  [[nodiscard]] double fail_speedup() const {
    return fail_inc_ms > 0.0 ? fail_full_ms / fail_inc_ms : 0.0;
  }
  [[nodiscard]] double restore_speedup() const {
    return restore_inc_ms > 0.0 ? restore_full_ms / restore_inc_ms : 0.0;
  }
};

VictimResult run_victim(const Topology& topo, RoutingGraph& inc,
                        RoutingGraph& full, LinkId victim, int reps) {
  VictimResult r;
  r.fanout = inc.pairs_using(victim);
  const auto banned = duplex(topo, victim);

  // Cold first failure: the reverse index still carries the initial build's
  // touched unions, which include every unchosen Yen candidate. A
  // fail+restore cycle shrinks the recomputed pairs' stored witness runs to
  // the ban-era unions (still sound — the differential tests prove it), so
  // repeat failures of the same cable recompute fewer pairs. Both costs are
  // real: cold is the first-ever failure, warm is every one after.
  const auto cold_before = inc.counters().pairs_recomputed;
  auto t0 = std::chrono::steady_clock::now();
  inc.rebuild(topo, banned, RebuildMode::kIncremental);
  r.fail_inc_cold_ms = ms_since(t0);
  r.pairs_recomputed_cold = inc.counters().pairs_recomputed - cold_before;
  full.rebuild(topo, banned, RebuildMode::kFull);
  r.identical = tables_identical(topo, inc, full);
  inc.rebuild(topo, {}, RebuildMode::kIncremental);
  full.rebuild(topo, {}, RebuildMode::kFull);
  r.identical = r.identical && tables_identical(topo, inc, full);

  std::vector<double> fail_full, fail_inc, restore_full, restore_inc;
  for (int i = 0; i < reps; ++i) {
    t0 = std::chrono::steady_clock::now();
    full.rebuild(topo, banned, RebuildMode::kFull);
    fail_full.push_back(ms_since(t0));
    t0 = std::chrono::steady_clock::now();
    full.rebuild(topo, {}, RebuildMode::kFull);
    restore_full.push_back(ms_since(t0));

    const auto before_fail = inc.counters().pairs_recomputed;
    t0 = std::chrono::steady_clock::now();
    inc.rebuild(topo, banned, RebuildMode::kIncremental);
    fail_inc.push_back(ms_since(t0));
    const auto before_restore = inc.counters().pairs_recomputed;
    t0 = std::chrono::steady_clock::now();
    inc.rebuild(topo, {}, RebuildMode::kIncremental);
    restore_inc.push_back(ms_since(t0));
    r.pairs_recomputed_fail = before_restore - before_fail;
    r.pairs_recomputed_restore =
        inc.counters().pairs_recomputed - before_restore;
  }
  r.fail_full_ms = median3(fail_full);
  r.fail_inc_ms = median3(fail_inc);
  r.restore_full_ms = median3(restore_full);
  r.restore_inc_ms = median3(restore_inc);
  return r;
}

/// Per-flow decision latency: the allocator's drain-time scan over the
/// interned candidate set, measured over random host pairs on an idle
/// network (pure table + pool traversal, no packing feedback).
double choose_path_ns(const Topology& topo, int iters) {
  sim::Simulation sim(1);
  net::Fabric fabric(sim, topo);
  sdn::ControllerConfig cfg;
  cfg.k_paths = 4;
  sdn::Controller controller(sim, fabric, topo, cfg);
  core::Allocator alloc(controller);
  const auto hosts = topo.hosts();
  util::Xoshiro256 rng(7);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    pairs.emplace_back(src, dst);
  }

  // Untimed warm-up: the controller's routing graph is lazy, so the first
  // touch of each pair pays its Yen materialization. That cost belongs to
  // the cold-build arms above, not to the steady-state decision latency
  // measured here.
  for (const auto& [src, dst] : pairs) {
    (void)controller.routing().paths(src, dst);
  }

  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [src, dst] : pairs) {
    sink += alloc.choose_path(src, dst, util::Bytes{1'000'000}).value();
  }
  const double total_ms = ms_since(t0);
  if (sink == 0) std::fprintf(stderr, "choose_path sink unexpectedly zero\n");
  return total_ms * 1e6 / iters;
}

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

void print_victim(const std::string& label, const char* victim,
                  std::size_t hosts, std::uint64_t pairs,
                  const VictimResult& r) {
  std::printf(
      "%-20s %-7s %6zu %7llu %7zu | %10.3f %10.3f %7.1fx | %10.3f %10.3f "
      "%7.1fx\n",
      label.c_str(), victim, hosts, static_cast<unsigned long long>(pairs),
      r.fanout, r.fail_full_ms, r.fail_inc_ms, r.fail_speedup(),
      r.restore_full_ms, r.restore_inc_ms, r.restore_speedup());
  std::fflush(stdout);
}

void emit_victim(std::FILE* out, const char* name, const VictimResult& r) {
  std::fprintf(out,
               "      \"%s\": {\"fanout\": %zu,\n"
               "        \"fail_incremental_cold_ms\": %.4f, "
               "\"pairs_recomputed_cold\": %llu,\n"
               "        \"fail_full_ms\": %.4f, \"fail_incremental_ms\": "
               "%.4f, \"fail_speedup\": %.2f,\n"
               "        \"restore_full_ms\": %.4f, "
               "\"restore_incremental_ms\": %.4f, \"restore_speedup\": "
               "%.2f,\n"
               "        \"pairs_recomputed_fail\": %llu, "
               "\"pairs_recomputed_restore\": %llu, \"identical\": %s}",
               name, r.fanout, r.fail_inc_cold_ms,
               static_cast<unsigned long long>(r.pairs_recomputed_cold),
               r.fail_full_ms, r.fail_inc_ms, r.fail_speedup(),
               r.restore_full_ms, r.restore_inc_ms, r.restore_speedup(),
               static_cast<unsigned long long>(r.pairs_recomputed_fail),
               static_cast<unsigned long long>(r.pairs_recomputed_restore),
               r.identical ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_routing.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    // --json-out: shared artifact-redirect flag (see bench_cli.hpp); wins
    // over --out so CI can point every bench somewhere collision-free.
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  // k=16 at canonical density would be 1024 hosts / ~1M pairs; one host per
  // edge switch keeps the initial Yen pass tractable while preserving the
  // 320-switch core the rebuild has to reason about.
  struct Cell {
    std::size_t fat_tree_k;
    std::size_t hosts_per_edge;
  };
  const std::vector<Cell> cells = smoke
                                      ? std::vector<Cell>{{4, 0}}
                                      : std::vector<Cell>{{4, 0}, {8, 0},
                                                          {16, 1}};
  const std::size_t k_paths = 4;
  const int reps = 3;
  const int choose_iters = smoke ? 2'000 : 20'000;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"routing_scaling\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n  \"k_paths\": %zu,\n",
               smoke ? "true" : "false", k_paths);
  std::fprintf(out, "  \"reps_per_cell\": %d,\n  \"cells\": [\n", reps);

  std::printf("%-20s %-7s %6s %7s %7s | %10s %10s %8s | %10s %10s %8s\n",
              "topology", "victim", "hosts", "pairs", "fanout", "fail full",
              "fail incr", "speedup", "rest full", "rest incr", "speedup");
  bool first = true;
  bool all_identical = true;
  for (const Cell& cell : cells) {
    net::FatTreeConfig cfg;
    cfg.k = cell.fat_tree_k;
    cfg.hosts_per_edge = cell.hosts_per_edge;
    const Topology topo = net::make_fat_tree(cfg);
    const std::string label = "fat_tree_k" + std::to_string(cell.fat_tree_k) +
                              (cell.hosts_per_edge == 1 ? "_sparse" : "");
    const auto hosts = topo.hosts().size();
    const auto pairs = static_cast<std::uint64_t>(hosts) * (hosts - 1);

    // One eager rep above 4096 pairs: each k16-sparse build costs ~20 s and
    // repeating it told us nothing a single rep doesn't.
    const int build_reps = pairs > 4096 ? 1 : reps;
    std::vector<double> build;
    for (int i = 0; i < build_reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      RoutingGraph rg(topo, k_paths);
      build.push_back(ms_since(t0));
    }
    const double build_ms = median3(build);

    RoutingGraph inc(topo, k_paths);
    RoutingGraph full(topo, k_paths);
    const ColdResult cold = run_cold(topo, k_paths, pairs, full);
    const auto cables = cables_by_fanout(topo, inc);
    const VictimResult median = run_victim(
        topo, inc, full, cables[cables.size() / 2], reps);
    const VictimResult worst = run_victim(topo, inc, full, cables.back(),
                                          reps);
    const double choose_ns = choose_path_ns(topo, choose_iters);
    all_identical = all_identical && median.identical && worst.identical &&
                    cold.identical;

    const double lazy_speedup = cold.lazy_working_set_ms > 0.0
                                    ? build_ms / cold.lazy_working_set_ms
                                    : 0.0;
    const double parallel_speedup =
        cold.parallel_ms > 0.0 ? build_ms / cold.parallel_ms : 0.0;
    print_victim(label, "median", hosts, pairs, median);
    print_victim(label, "worst", hosts, pairs, worst);
    std::printf("%-20s   build %.2f ms, choose_path %.0f ns\n", label.c_str(),
                build_ms, choose_ns);
    std::printf(
        "%-20s   cold: lazy ctor %.3f ms, first query %.3f ms, "
        "%zu-pair working set %.2f ms (%.1fx), parallel %.2f ms "
        "(%zu thr, %.1fx)%s\n",
        label.c_str(), cold.lazy_ctor_ms, cold.lazy_first_query_ms,
        cold.working_set_pairs, cold.lazy_working_set_ms, lazy_speedup,
        cold.parallel_ms, cold.parallel_threads, parallel_speedup,
        cold.identical ? "" : "  TABLE MISMATCH");

    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out,
                 "    {\"topology\": \"%s\", \"hosts\": %zu, "
                 "\"pairs\": %llu,\n",
                 label.c_str(), hosts,
                 static_cast<unsigned long long>(pairs));
    std::fprintf(out, "      \"build_ms\": %.3f, \"build_reps\": %d,\n",
                 build_ms, build_reps);
    std::fprintf(
        out,
        "      \"cold\": {\"lazy_ctor_ms\": %.4f, "
        "\"lazy_first_query_ms\": %.4f,\n"
        "        \"lazy_working_set_ms\": %.3f, \"working_set_pairs\": %zu, "
        "\"pairs_materialized\": %llu,\n"
        "        \"cold_speedup_lazy\": %.1f, \"parallel_build_ms\": %.3f, "
        "\"parallel_threads\": %zu,\n"
        "        \"cold_speedup_parallel\": %.2f, \"identical\": %s},\n",
        cold.lazy_ctor_ms, cold.lazy_first_query_ms, cold.lazy_working_set_ms,
        cold.working_set_pairs,
        static_cast<unsigned long long>(cold.pairs_materialized), lazy_speedup,
        cold.parallel_ms, cold.parallel_threads, parallel_speedup,
        cold.identical ? "true" : "false");
    emit_victim(out, "median_cable", median);
    std::fprintf(out, ",\n");
    emit_victim(out, "worst_cable", worst);
    std::fprintf(out, ",\n      \"choose_path_ns\": %.1f,\n", choose_ns);
    std::fprintf(out, "      \"peak_rss_kb\": %ld}", peak_rss_kb());
  }
  std::fprintf(out, "\n  ],\n  \"all_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"peak_rss_kb\": %ld\n}\n", peak_rss_kb());
  std::fclose(out);
  std::printf("wrote %s (peak RSS %ld KiB)%s\n", out_path.c_str(),
              peak_rss_kb(),
              all_identical ? "" : " — TABLE MISMATCH, numbers invalid");
  return all_identical ? 0 : 1;
}
