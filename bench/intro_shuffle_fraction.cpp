// Introduction claim — "a recent analysis of MapReduce traces from Facebook
// revealed that 33% of the execution time of a large number of jobs is
// spent at the MapReduce [shuffle] phase".
//
// The Facebook traces are proprietary; this bench runs a synthetic trace
// with production-like shape (log-uniform input sizes, a mix of
// shuffle-heavy and aggregation jobs, Poisson arrivals) on the 2-rack
// testbed under plain ECMP, and reports the distribution of per-job shuffle
// time share — reproducing the motivation: for a large set of jobs the
// shuffle is a major (tens of percent) fraction of execution time. It then
// shows what Pythia does to exactly that fraction.
#include <cstdio>

#include "experiments/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/trace.hpp"

namespace {

/// Share of a job's makespan with at least one reducer shuffling: from the
/// first reducer launch to the last shuffle completion (the communication-
/// intensive window the paper's 33% refers to).
double shuffle_fraction(const pythia::hadoop::JobResult& r) {
  pythia::util::SimTime first_fetch = pythia::util::SimTime::max();
  for (const auto& red : r.reducers) {
    first_fetch = std::min(first_fetch, red.started);
  }
  const double shuffle_span =
      (r.shuffle_phase_end() - first_fetch).seconds();
  const double total = r.completion_time().seconds();
  return total > 0.0 ? shuffle_span / total : 0.0;
}

}  // namespace

int main() {
  using namespace pythia;

  std::printf("=== Intro claim: shuffle share of job execution time ===\n\n");

  workloads::TraceConfig trace_cfg;
  trace_cfg.jobs = 24;
  const auto trace = workloads::generate_trace(trace_cfg, 31);

  util::Table table({"scheduler", "mean shuffle share", "median", "p90",
                     "trace makespan (s)"});
  for (const auto kind :
       {exp::SchedulerKind::kEcmp, exp::SchedulerKind::kPythia}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 31;
    cfg.scheduler = kind;
    cfg.background.oversubscription = 10.0;
    exp::Scenario scenario(cfg);

    std::vector<hadoop::JobResult> results(trace.size());
    std::size_t done = 0;
    for (std::size_t j = 0; j < trace.size(); ++j) {
      scenario.simulation().at(trace[j].submit_at, [&, j] {
        scenario.engine().submit(
            trace[j].spec, [&results, &done, j](const hadoop::JobResult& r) {
              results[j] = r;
              ++done;
            });
      });
    }
    scenario.simulation().run();
    if (done != trace.size()) {
      std::fprintf(stderr, "trace incomplete: %zu/%zu\n", done, trace.size());
      return 1;
    }

    util::SampleSet shares;
    double makespan = 0.0;
    for (const auto& r : results) {
      shares.add(shuffle_fraction(r));
      makespan = std::max(makespan, r.completed.seconds());
    }
    table.add_row({exp::scheduler_name(kind),
                   util::Table::percent(shares.mean()),
                   util::Table::percent(shares.median()),
                   util::Table::percent(shares.percentile(90.0)),
                   util::Table::num(makespan, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\npaper (Facebook trace): shuffle accounts for ~33%% of execution "
      "time across a large job\npopulation — the headroom Pythia attacks. "
      "Expected shape here: an ECMP mean in the same\ntens-of-percent "
      "regime. (Pythia moves per-job completion, not necessarily the share: "
      "a faster\nshuffle shrinks both numerator and denominator.)\n");
  return 0;
}
