// Ablation A6 — prediction-timeliness sensitivity to Hadoop parameters.
//
// The paper (Section V-C) conjectures that, because Hadoop bounds the
// parallel transfers each reducer may run, the gap between a map finishing
// and its output actually being fetched — the window Pythia's prediction
// lead lives in — is "not sensitive to Hadoop configuration parameter
// setup", and announces experiments to confirm it as ongoing work. This
// bench runs those experiments: sweep mapred.reduce.parallel.copies and the
// reducer slow-start threshold, and report the prediction lead observed by
// the Fig. 5 methodology plus the resulting Pythia speedup.
#include <cstdio>
#include <vector>

#include "bench_cli.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "net/netflow.hpp"
#include "util/stats.hpp"
#include "workloads/hibench.hpp"

namespace {

struct CellResult {
  double min_lead_s = 0.0;
  double speedup = 0.0;
};

/// Runs one Pythia job with NetFlow attached; returns (min lead s, speedup).
CellResult measure(pythia::exp::ScenarioConfig cfg,
                   const pythia::hadoop::JobSpec& job) {
  using namespace pythia;
  cfg.scheduler = exp::SchedulerKind::kEcmp;
  const double ecmp = exp::run_completion_seconds(cfg, job);

  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.enable_netflow = true;
  exp::Scenario scenario(cfg);
  const double pythia_s = scenario.run_job(job).completion_time().seconds();

  util::RunningStats lead;
  for (net::NodeId server : scenario.netflow()->observed_sources()) {
    const auto& predicted =
        scenario.pythia()->collector().predicted_curve(server);
    const auto& measured = scenario.netflow()->curve(server);
    if (predicted.empty() || measured.empty()) continue;
    std::vector<net::VolumePoint> pred;
    pred.reserve(predicted.size());
    for (const auto& p : predicted) {
      pred.push_back(net::VolumePoint{p.at, p.cumulative});
    }
    for (const double q : {0.25, 0.5, 0.75}) {
      const double v = measured.back().cumulative.as_double() * q;
      const auto tp = net::curve_time_to_reach(pred, v);
      const auto tm = net::curve_time_to_reach(measured, v);
      if (tp != util::SimTime::max() && tm != util::SimTime::max()) {
        lead.add((tm - tp).seconds());
      }
    }
  }
  CellResult r;
  r.min_lead_s = lead.count() > 0 ? lead.min() : 0.0;
  r.speedup = ecmp / pythia_s - 1.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);
  exp::ParallelRunner runner(args.threads);

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf(
      "=== Ablation A6: prediction-lead sensitivity to Hadoop knobs ===\n");
  std::printf("(the experiment the paper lists as ongoing work)\n\n");

  std::printf("--- mapred.reduce.parallel.copies ---\n");
  {
    const std::vector<std::size_t> copies = {2, 5, 10, 20};
    const auto results = runner.map<CellResult>(
        copies.size(), [&](std::size_t i) {
          exp::ScenarioConfig cfg;
          cfg.seed = 8;
          cfg.background.oversubscription = 10.0;
          cfg.cluster.parallel_copies = copies[i];
          return measure(cfg, job);
        });
    util::Table table({"parallel copies", "min lead (s)", "speedup"});
    for (std::size_t i = 0; i < copies.size(); ++i) {
      table.add_row({std::to_string(copies[i]),
                     util::Table::num(results[i].min_lead_s, 1),
                     util::Table::percent(results[i].speedup)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("--- reducer slow-start threshold ---\n");
  {
    const std::vector<double> slowstarts = {0.05, 0.25, 0.5, 0.9};
    const auto results = runner.map<CellResult>(
        slowstarts.size(), [&](std::size_t i) {
          exp::ScenarioConfig cfg;
          cfg.seed = 8;
          cfg.background.oversubscription = 10.0;
          cfg.cluster.reduce_slowstart = slowstarts[i];
          return measure(cfg, job);
        });
    util::Table table({"slowstart", "min lead (s)", "speedup"});
    for (std::size_t i = 0; i < slowstarts.size(); ++i) {
      table.add_row({util::Table::num(slowstarts[i], 2),
                     util::Table::num(results[i].min_lead_s, 1),
                     util::Table::percent(results[i].speedup)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("[sweep] %s\n\n",
              exp::runner_counters_summary(runner.counters()).c_str());

  std::printf(
      "expected shape (the paper's conjecture): the prediction lead stays "
      "multi-second across the\nsweeps — it is floored by the completion-"
      "event polling gap, which no copy/slow-start setting\nremoves — and "
      "the speedup band survives every configuration.\n");
  return 0;
}
