// Tiny shared flag parser for the bench binaries.
//
//   --threads N       worker threads for sweep fan-out (0 = all hardware cores)
//   --smoke           reduced problem size for CI smoke runs
//   --out FILE        machine-readable results (JSON) destination (legacy)
//   --json-out FILE   same destination, shared across every bench; takes
//                     precedence over --out so CI jobs can redirect all
//                     artifacts without colliding on fixed in-tree names
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/crash_handler.hpp"

namespace pythia::benchcli {

struct Args {
  std::size_t threads = 0;  // 0 = one worker per hardware core
  bool smoke = false;
  std::string out;       // --out (legacy per-bench flag)
  std::string json_out;  // --json-out (shared artifact-redirect flag)

  /// The JSON destination to use: --json-out wins, then --out, then the
  /// bench's default filename.
  [[nodiscard]] std::string json_path(const std::string& fallback) const {
    if (!json_out.empty()) return json_out;
    if (!out.empty()) return out;
    return fallback;
  }
};

inline Args parse(int argc, char** argv) {
  // Long sweeps should die loudly: on a crash/SIGTERM the handler flushes
  // logs and prints the active run's (point, arm, seed) and sim position.
  exp::install_crash_handler();
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      args.out = argv[++i];
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      args.json_out = argv[++i];
    }
  }
  return args;
}

}  // namespace pythia::benchcli
