// Figure 1b — "Adversarial shuffle flow allocation to the network".
//
// The paper's example: two inter-rack paths, Path-1 at ~95% utilization and
// Path-2 nearly idle; ECMP's load-unaware hashing can land a large shuffle
// flow (159 MB, reducer-0's fetch) on the loaded path even though capacity
// is available. This bench reconstructs the situation, enumerates ECMP's
// behaviour over ephemeral ports, and contrasts the resulting transfer time
// with Pythia's load-aware placement.
#include <cstdio>

#include "core/allocator.hpp"
#include "net/background.hpp"
#include "net/ecmp.hpp"
#include "net/fabric.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace pythia;
  using util::BitsPerSec;
  using util::Bytes;

  std::printf("=== Figure 1b: adversarial ECMP flow allocation ===\n\n");

  net::TwoRackConfig topo_cfg;
  topo_cfg.host_link = BitsPerSec{1e9};          // 1 Gbps, as in Fig. 1
  topo_cfg.inter_rack_capacity = BitsPerSec{1e9};
  const net::Topology topo = net::make_two_rack(topo_cfg);
  sim::Simulation sim(1);
  net::Fabric fabric(sim, topo);
  sdn::Controller controller(sim, fabric, topo);

  const auto hosts = topo.hosts();
  const net::NodeId mapper0 = hosts[0];
  const net::NodeId mapper1 = hosts[1];
  const net::NodeId reducer0 = hosts[5];
  const net::NodeId reducer1 = hosts[6];

  // Path-1 at 95% (Fig. 1b's port buffer view), Path-2 at 7%.
  net::BackgroundSpec bg;
  bg.oversubscription = 20.0;                // 95% base fraction
  bg.path_intensity = {1.0, 0.07 / 0.95};
  net::install_background(fabric, controller.routing(), hosts[0], hosts[5],
                          bg);

  const auto& paths = controller.routing().paths(mapper0, reducer0);
  util::Table loads({"path", "background load", "available"});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const net::LinkId inter = paths[i].links[1];
    loads.add_row({"Path-" + std::to_string(i + 1),
                   util::Table::percent(fabric.link_cbr_load(inter).bps() /
                                        1e9),
                   util::format_rate(fabric.link_residual_capacity(inter))});
  }
  std::printf("%s\n", loads.to_string().c_str());

  // Flow-1: reducer-0 fetching 159 MB from mapper-0 (the elephant).
  // Flow-2: reducer-1 fetching 32 MB from mapper-1.
  const Bytes flow1_size{159'000'000};
  const Bytes flow2_size{32'000'000};

  // (a) How often does ECMP put the elephant on the 95%-loaded path?
  net::EcmpSelector ecmp(controller.routing());
  int elephant_on_hot = 0;
  constexpr int kTrials = 10'000;
  for (int i = 0; i < kTrials; ++i) {
    net::FiveTuple t{topo.address_of(mapper0), topo.address_of(reducer0),
                     net::kShufflePort,
                     static_cast<std::uint16_t>(30000 + i % 30000), 6};
    if (ecmp.select(mapper0, reducer0, t).links == paths[0].links) {
      ++elephant_on_hot;
    }
  }

  // (b) Transfer time of the 159 MB flow on each path, alone.
  auto transfer_seconds = [&](const net::Path& path, Bytes size) {
    sim::Simulation s2(1);
    net::Fabric f2(s2, topo);
    net::install_background(f2, controller.routing(), hosts[0], hosts[5], bg);
    double done = 0.0;
    net::FlowSpec spec;
    spec.src = mapper0;
    spec.dst = reducer0;
    spec.size = size;
    spec.path = path.links;
    spec.tuple = net::FiveTuple{1, 2, net::kShufflePort, 30000, 6};
    spec.cls = net::FlowClass::kShuffle;
    f2.start_flow(spec,
                  [&](net::FlowId, util::SimTime at) { done = at.seconds(); });
    s2.run();
    return done;
  };
  const double hot_time = transfer_seconds(paths[0], flow1_size);
  const double cold_time = transfer_seconds(paths[1], flow1_size);

  // (c) Pythia's allocator choice for the same two predicted flows.
  core::Allocator alloc(controller);
  alloc.add_predicted_volume(mapper0, reducer0, flow1_size);
  alloc.add_predicted_volume(mapper1, reducer1, flow2_size);
  sim.run();
  const auto* rule1 = controller.active_rule(mapper0, reducer0);
  const auto* rule2 = controller.active_rule(mapper1, reducer1);

  util::Table out({"metric", "value"});
  out.add_row({"ECMP: P(159MB flow on 95%-loaded path)",
               util::Table::percent(static_cast<double>(elephant_on_hot) /
                                    kTrials)});
  out.add_row({"159MB transfer on loaded Path-1",
               util::Table::seconds(hot_time, 2)});
  out.add_row({"159MB transfer on idle Path-2",
               util::Table::seconds(cold_time, 2)});
  out.add_row({"adversarial slowdown",
               util::Table::num(hot_time / cold_time, 1) + "x"});
  out.add_row({"Pythia: 159MB aggregate placed on",
               rule1 && rule1->path->links == paths[1].links ? "Path-2 (idle)"
                                                             : "Path-1"});
  out.add_row({"Pythia: 32MB aggregate placed on",
               rule2 && rule2->path->links[1] == paths[0].links[1]
                   ? "Path-1"
                   : "Path-2"});
  std::printf("%s", out.to_string().c_str());
  std::printf(
      "\npaper: ECMP's random hashing assigns the large flow to the 95%%-"
      "loaded path ~half the time;\nPythia, knowing size and load, never "
      "does.\n");
  return 0;
}
