// Section V-C overhead characterization.
//
// The paper reports: per-server instrumentation CPU/IO overhead of 2-5%
// (a constant monitoring factor plus a spike at each map-task finish for
// index-file analysis), insignificant memory occupancy, low control-plane
// traffic on the management network, and a rule-install budget of ~3-5 ms
// per flow — comfortably inside the >= 9 s prediction lead.
//
// This bench reproduces the table two ways:
//  * accounting from a full Pythia sort run (intents, bytes, rules,
//    flow-mods, per-job control overhead vs. data volume);
//  * host-measured microcosts of the hot control-path operations
//    (index decode+intent emission, collector ingest, allocation).
#include <chrono>
#include <cstdio>

#include "experiments/scenario.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

namespace {

/// Wall-clock cost per call of `fn` over `iters` iterations, in microseconds.
template <typename Fn>
double measure_us(std::size_t iters, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  using namespace pythia;

  std::printf("=== Section V-C: instrumentation & control overhead ===\n\n");

  // --- accounting from a full run ---
  exp::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  exp::Scenario scenario(cfg);
  const auto job = workloads::sort_job(
      util::Bytes{60LL * 1000 * 1000 * 1000}, 20);
  const auto result = scenario.run_job(job);

  const auto& pythia = *scenario.pythia();
  const auto& ctl = scenario.controller();
  const double job_seconds = result.completion_time().seconds();
  const double control_bytes =
      pythia.instrumentation().control_bytes_sent().as_double();

  util::Table acct({"quantity", "value"});
  acct.add_row({"job", job.name + " (" + util::format_bytes(job.input) + ")"});
  acct.add_row({"job completion", util::Table::seconds(job_seconds)});
  acct.add_row({"map finish (decode) events",
                std::to_string(pythia.instrumentation().decode_events())});
  acct.add_row({"intent messages",
                std::to_string(pythia.instrumentation().intents_emitted())});
  acct.add_row({"control bytes (mgmt network)",
                util::format_bytes(util::Bytes{
                    static_cast<std::int64_t>(control_bytes)})});
  acct.add_row({"control rate over job",
                util::format_rate(util::BitsPerSec{
                    control_bytes * 8.0 / job_seconds})});
  acct.add_row({"control / shuffle data volume",
                util::Table::percent(control_bytes /
                                         result.total_shuffle_bytes()
                                             .as_double(),
                                     4)});
  acct.add_row({"forwarding rules installed",
                std::to_string(ctl.rules_installed())});
  acct.add_row({"flow-mod messages", std::to_string(ctl.flow_mod_messages())});
  acct.add_row({"rule install latency (modelled)",
                util::format_duration(
                    ctl.config().rule_install_latency)});
  std::printf("%s\n", acct.to_string().c_str());

  // --- microcosts of the control path (host wall clock) ---
  // A fresh small world so the measured operations run in isolation.
  exp::ScenarioConfig micro_cfg;
  micro_cfg.scheduler = exp::SchedulerKind::kEcmp;
  exp::Scenario micro(micro_cfg);
  core::PythiaSystem psys(micro.simulation(), micro.engine(),
                          micro.controller());

  const auto servers = micro.servers();
  const double decode_us = measure_us(20'000, [&](std::size_t i) {
    hadoop::MapOutputNotice notice;
    notice.job_serial = 0;
    notice.map_index = i;
    notice.server = servers[i % servers.size()];
    notice.at = micro.simulation().now();
    notice.per_reducer_payload.assign(20, util::Bytes{3'000'000});
    psys.on_map_output_ready(notice);
  });
  micro.simulation().run();  // drain queued intents

  const double alloc_us = measure_us(20'000, [&](std::size_t i) {
    psys.allocator().add_predicted_volume(servers[i % 5],
                                          servers[5 + i % 5],
                                          util::Bytes{1'000'000});
  });

  // Extrapolate the paper's "CPU overhead" figure: decode events per second
  // at full map throughput (80 slots, ~2 s/map -> ~40 events/s) times cost.
  const double events_per_sec = 40.0;
  const double cpu_fraction = events_per_sec * decode_us / 1e6;

  util::Table micro_table({"operation", "cost/event"});
  micro_table.add_row({"index decode + intent emission (20 reducers)",
                       util::Table::num(decode_us, 2) + " us"});
  micro_table.add_row({"allocator first-fit placement",
                       util::Table::num(alloc_us, 2) + " us"});
  micro_table.add_row({"extrapolated decode CPU at 40 map-finish/s",
                       util::Table::percent(cpu_fraction, 4)});
  std::printf("%s", micro_table.to_string().c_str());

  std::printf(
      "\npaper: 2-5%% CPU/IO overhead per server (constant monitoring factor "
      "+ decode spikes), negligible\nmemory, control traffic kept off the "
      "data network; 3-5 ms/flow install budget. The dominant cost in\nthe "
      "real system is filesystem monitoring, which the simulation does not "
      "pay; the decode/emit path\nabove is the per-event spike component.\n");
  return 0;
}
