// Ablation A6 — lossy control plane (robustness tentpole).
//
// The evaluation question: what happens to Pythia's speedup when the two
// control channels it lives on — instrumentation→collector intents and
// controller→switch flow-mods — start dropping, delaying, and rejecting?
// The required shape is graceful degradation: completion time decays
// monotonically (within noise) from the full speedup at 0% faults toward
// ECMP parity at total loss, and never falls below the ECMP floor, because
// the health watchdog abandons Pythia for plain ECMP when the control plane
// is effectively dead.
//
// Four sweeps on a 60 GB sort at 1:10 over-subscription:
//  (a) intent loss 0→100%, ECMP vs Pythia, with watchdog counters;
//  (b) install faults (flow-mod loss × reject probability) with the retry
//      ladder's accounting;
//  (c) intent delay jitter (stale predictions rather than lost ones);
//  (d) per-switch flow-table capacity (evictions under pressure).
#include <cstdio>

#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace {

using namespace pythia;
using util::Duration;

struct Run {
  double seconds = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t reengagements = 0;
  std::uint64_t rules = 0;
  std::uint64_t retries = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t evictions = 0;
  std::uint64_t table_rejects = 0;
  std::uint64_t expired = 0;
};

Run run_pythia(const exp::ControlPlaneFaultProfile& profile,
               std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  exp::apply_control_plane_faults(cfg, profile);
  exp::Scenario scenario(std::move(cfg));
  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);
  Run out;
  out.seconds = scenario.run_job(job).completion_time().seconds();
  const auto& py = *scenario.pythia();
  out.dropped = py.instrumentation().channel().messages_dropped() +
                scenario.controller().flow_mod_channel().messages_dropped();
  out.fallbacks = py.watchdog().fallbacks();
  out.reengagements = py.watchdog().reengagements();
  out.rules = scenario.controller().rules_installed();
  out.retries = scenario.controller().install_retries();
  out.abandoned = scenario.controller().installs_abandoned();
  out.evictions = scenario.controller().table_evictions();
  out.table_rejects = scenario.controller().table_rejects();
  out.expired = py.collector().intents_expired();
  return out;
}

double run_ecmp(std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.scheduler = exp::SchedulerKind::kEcmp;
  cfg.background.oversubscription = 10.0;
  return exp::run_completion_seconds(
      cfg, workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20));
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 4;
  const double ecmp = run_ecmp(kSeed);
  std::printf("ECMP baseline: %.1f s (seed %llu)\n\n", ecmp,
              static_cast<unsigned long long>(kSeed));

  std::printf("=== A6a: intent loss sweep (prediction channel) ===\n\n");
  {
    util::Table table({"intent loss", "Pythia (s)", "vs ECMP", "dropped",
                       "rules", "fallbacks", "re-engaged"});
    for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      exp::ControlPlaneFaultProfile p;
      p.intent_loss = loss;
      const Run r = run_pythia(p, kSeed);
      table.add_row({util::Table::percent(loss), util::Table::num(r.seconds, 1),
                     util::Table::percent(r.seconds / ecmp - 1.0),
                     std::to_string(r.dropped), std::to_string(r.rules),
                     std::to_string(r.fallbacks),
                     std::to_string(r.reengagements)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== A6b: install faults (flow-mod loss x switch rejects) ===\n\n");
  {
    util::Table table({"flow-mod loss", "reject p", "Pythia (s)", "vs ECMP",
                       "retries", "abandoned", "fallbacks"});
    struct P {
      double loss, reject;
    };
    for (const P p : {P{0.0, 0.0}, P{0.2, 0.0}, P{0.0, 0.2}, P{0.2, 0.2},
                      P{0.5, 0.5}, P{0.9, 0.9}}) {
      exp::ControlPlaneFaultProfile profile;
      profile.flow_mod_loss = p.loss;
      profile.install_reject = p.reject;
      const Run r = run_pythia(profile, kSeed);
      table.add_row({util::Table::percent(p.loss),
                     util::Table::percent(p.reject),
                     util::Table::num(r.seconds, 1),
                     util::Table::percent(r.seconds / ecmp - 1.0),
                     std::to_string(r.retries), std::to_string(r.abandoned),
                     std::to_string(r.fallbacks)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== A6c: intent delay jitter (stale predictions) ===\n\n");
  {
    util::Table table({"jitter", "Pythia (s)", "vs ECMP", "expired",
                       "fallbacks"});
    for (const std::int64_t ms : {0LL, 100LL, 500LL, 2000LL, 10000LL}) {
      exp::ControlPlaneFaultProfile p;
      p.intent_jitter = Duration::millis(ms);
      const Run r = run_pythia(p, kSeed);
      table.add_row({util::format_duration(Duration::millis(ms)),
                     util::Table::num(r.seconds, 1),
                     util::Table::percent(r.seconds / ecmp - 1.0),
                     std::to_string(r.expired),
                     std::to_string(r.fallbacks)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== A6d: per-switch flow-table capacity ===\n\n");
  {
    util::Table table({"table size", "Pythia (s)", "vs ECMP", "evictions",
                       "refused"});
    for (const std::size_t cap : {0UL, 64UL, 16UL, 8UL, 4UL, 2UL, 1UL}) {
      exp::ControlPlaneFaultProfile p;
      p.flow_table_capacity = cap;
      const Run r = run_pythia(p, kSeed);
      table.add_row({cap == 0 ? "unbounded" : std::to_string(cap),
                     util::Table::num(r.seconds, 1),
                     util::Table::percent(r.seconds / ecmp - 1.0),
                     std::to_string(r.evictions),
                     std::to_string(r.table_rejects)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "expected shape: completion decays from the full speedup at zero "
      "faults toward ECMP parity as\neach fault axis saturates — at total "
      "intent loss the watchdog's fallback makes the run\n*identical* to "
      "ECMP, and every saturated axis lands within a couple percent of the "
      "ECMP floor.\nInstall faults cost retries and a few abandoned rules "
      "long before they cost wall-clock; tiny\nflow tables trade rule "
      "coverage for admission refusals, degrading toward ECMP as capacity\n"
      "goes to 1.\n");
  return 0;
}
