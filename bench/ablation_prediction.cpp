// Ablation A3 — how much does prediction *timeliness* buy?
//
// The paper credits Pythia's win over FlowComb partly to "more timely
// prediction" (deep index-file analysis at spill time). This bench delays
// intent delivery artificially and watches the speedup over ECMP decay:
// once intents arrive after the fetches they describe, the system degrades
// toward reactive scheduling. A second sweep varies the reducer skew to
// show the motivation effect (Section II): the more skewed the shuffle, the
// more a size-aware allocation matters — until a single hot reducer's NIC,
// which no path choice can widen, dominates. All grid points fan out across
// the ParallelRunner.
#include <cstdio>
#include <vector>

#include "bench_cli.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);
  exp::ParallelRunner runner(args.threads);

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf("=== Ablation A3a: intent delivery delay vs speedup ===\n\n");
  {
    const std::vector<std::uint64_t> seeds = {1, 2};
    const std::vector<double> delays = {0.0, 1.0, 3.0, 10.0, 30.0};
    exp::ScenarioConfig base;
    base.background.oversubscription = 10.0;

    // Canonical run list: ECMP baselines first, then delay-major Pythia runs.
    const std::size_t n_runs = seeds.size() * (1 + delays.size());
    const auto completions = runner.map<double>(n_runs, [&](std::size_t i) {
      exp::ScenarioConfig cfg = base;
      cfg.seed = seeds[i % seeds.size()];
      const std::size_t group = i / seeds.size();
      if (group == 0) {
        cfg.scheduler = exp::SchedulerKind::kEcmp;
      } else {
        cfg.scheduler = exp::SchedulerKind::kPythia;
        cfg.pythia.instrumentation.extra_delay =
            util::Duration::from_seconds(delays[group - 1]);
      }
      return exp::run_completion_seconds(cfg, job);
    });

    double ecmp_mean = 0.0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      ecmp_mean += completions[s] / static_cast<double>(seeds.size());
    }
    util::Table table({"extra intent delay", "Pythia (s)", "speedup vs ECMP"});
    for (std::size_t d = 0; d < delays.size(); ++d) {
      double mean = 0.0;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        mean += completions[(d + 1) * seeds.size() + s] /
                static_cast<double>(seeds.size());
      }
      table.add_row({util::Table::seconds(delays[d], 0),
                     util::Table::num(mean, 1),
                     util::Table::percent(ecmp_mean / mean - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== Ablation A3b: reducer skew vs speedup ===\n\n");
  {
    const std::vector<double> skews = {0.0, 0.5, 1.0, 1.5};
    struct SkewResult {
      double ecmp_s = 0.0;
      double pythia_s = 0.0;
    };
    const auto results = runner.map<SkewResult>(
        skews.size(), [&](std::size_t i) {
          const auto skew_job = workloads::sort_job(
              util::Bytes{60LL * 1000 * 1000 * 1000}, 20, skews[i]);
          exp::ScenarioConfig cfg;
          cfg.seed = 4;
          cfg.background.oversubscription = 10.0;
          SkewResult r;
          cfg.scheduler = exp::SchedulerKind::kEcmp;
          r.ecmp_s = exp::run_completion_seconds(cfg, skew_job);
          cfg.scheduler = exp::SchedulerKind::kPythia;
          r.pythia_s = exp::run_completion_seconds(cfg, skew_job);
          return r;
        });
    util::Table table({"zipf s", "ECMP (s)", "Pythia (s)", "speedup"});
    for (std::size_t i = 0; i < skews.size(); ++i) {
      table.add_row({util::Table::num(skews[i], 1),
                     util::Table::num(results[i].ecmp_s, 1),
                     util::Table::num(results[i].pythia_s, 1),
                     util::Table::percent(
                         results[i].ecmp_s / results[i].pythia_s - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("[sweep] %s\n\n",
              exp::runner_counters_summary(runner.counters()).c_str());
  std::printf(
      "expected shape: speedup is highest with timely intents and decays as "
      "delivery slips past fetch\nstart; skew shifts completion time up for "
      "both systems while Pythia retains an edge.\n");
  return 0;
}
