// Ablation A3 — how much does prediction *timeliness* buy?
//
// The paper credits Pythia's win over FlowComb partly to "more timely
// prediction" (deep index-file analysis at spill time). This bench delays
// intent delivery artificially and watches the speedup over ECMP decay:
// once intents arrive after the fetches they describe, the system degrades
// toward reactive scheduling. A second sweep varies the reducer skew to
// show the motivation effect (Section II): the more skewed the shuffle, the
// more a size-aware allocation matters — until a single hot reducer's NIC,
// which no path choice can widen, dominates.
#include <cstdio>

#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf("=== Ablation A3a: intent delivery delay vs speedup ===\n\n");
  {
    exp::ScenarioConfig base;
    base.background.oversubscription = 10.0;
    base.scheduler = exp::SchedulerKind::kEcmp;
    double ecmp_mean = 0.0;
    for (const std::uint64_t seed : {1ULL, 2ULL}) {
      exp::ScenarioConfig cfg = base;
      cfg.seed = seed;
      ecmp_mean += exp::run_completion_seconds(cfg, job) / 2.0;
    }

    util::Table table({"extra intent delay", "Pythia (s)", "speedup vs ECMP"});
    for (const double delay_s : {0.0, 1.0, 3.0, 10.0, 30.0}) {
      double mean = 0.0;
      for (const std::uint64_t seed : {1ULL, 2ULL}) {
        exp::ScenarioConfig cfg = base;
        cfg.seed = seed;
        cfg.scheduler = exp::SchedulerKind::kPythia;
        cfg.pythia.instrumentation.extra_delay =
            util::Duration::from_seconds(delay_s);
        mean += exp::run_completion_seconds(cfg, job) / 2.0;
      }
      table.add_row({util::Table::seconds(delay_s, 0),
                     util::Table::num(mean, 1),
                     util::Table::percent(ecmp_mean / mean - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== Ablation A3b: reducer skew vs speedup ===\n\n");
  {
    util::Table table({"zipf s", "ECMP (s)", "Pythia (s)", "speedup"});
    for (const double s : {0.0, 0.5, 1.0, 1.5}) {
      auto skew_job = workloads::sort_job(
          util::Bytes{60LL * 1000 * 1000 * 1000}, 20, s);
      exp::ScenarioConfig cfg;
      cfg.seed = 4;
      cfg.background.oversubscription = 10.0;
      cfg.scheduler = exp::SchedulerKind::kEcmp;
      const double ecmp = exp::run_completion_seconds(cfg, skew_job);
      cfg.scheduler = exp::SchedulerKind::kPythia;
      const double pythia = exp::run_completion_seconds(cfg, skew_job);
      table.add_row({util::Table::num(s, 1), util::Table::num(ecmp, 1),
                     util::Table::num(pythia, 1),
                     util::Table::percent(ecmp / pythia - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "expected shape: speedup is highest with timely intents and decays as "
      "delivery slips past fetch\nstart; skew shifts completion time up for "
      "both systems while Pythia retains an edge.\n");
  return 0;
}
