// Micro-benchmarks (google-benchmark) of the simulator's hot paths:
// event-queue throughput, fluid max-min recomputation at varying flow
// counts, Yen's k-shortest paths, ECMP hashing and Zipf sampling. These
// bound how large an experiment the harness can sweep.
#include <benchmark/benchmark.h>

#include "net/ecmp.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace {

using namespace pythia;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.schedule(util::SimTime{static_cast<std::int64_t>(i * 997 % 100000)},
                 [] {});
    }
    benchmark::DoNotOptimize(q.run_all());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_MaxMinRecompute(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  net::LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 5;
  cfg.spines = 2;
  const net::Topology topo = net::make_leaf_spine(cfg);
  const net::RoutingGraph routing(topo, 2);
  sim::Simulation sim(1);
  net::Fabric fabric(sim, topo);
  util::Xoshiro256 rng(7);
  const auto hosts = topo.hosts();
  for (std::size_t i = 0; i < flows; ++i) {
    const net::NodeId src = hosts[rng.below(hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const auto& paths = routing.paths(src, dst);
    net::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = util::Bytes{1'000'000'000'000LL};
    spec.path = paths[rng.below(paths.size())].links;
    spec.tuple = net::FiveTuple{static_cast<std::uint32_t>(i), 1, 2,
                                static_cast<std::uint16_t>(i), 6};
    fabric.start_flow(spec);
  }
  for (auto _ : state) {
    fabric.settle_and_recompute();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_MaxMinRecompute)->Arg(10)->Arg(100)->Arg(400);

void BM_YenKShortestPaths(benchmark::State& state) {
  const auto spines = static_cast<std::size_t>(state.range(0));
  net::LeafSpineConfig cfg;
  cfg.racks = 4;
  cfg.servers_per_rack = 4;
  cfg.spines = spines;
  const net::Topology topo = net::make_leaf_spine(cfg);
  const auto hosts = topo.hosts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::k_shortest_paths(topo, hosts.front(), hosts.back(), spines));
  }
}
BENCHMARK(BM_YenKShortestPaths)->Arg(2)->Arg(4)->Arg(8);

void BM_RoutingGraphRebuild(benchmark::State& state) {
  net::TwoRackConfig cfg;
  cfg.servers_per_rack = static_cast<std::size_t>(state.range(0));
  const net::Topology topo = net::make_two_rack(cfg);
  for (auto _ : state) {
    net::RoutingGraph routing(topo, 2);
    benchmark::DoNotOptimize(&routing);
  }
}
BENCHMARK(BM_RoutingGraphRebuild)->Arg(5)->Arg(10)->Arg(20);

void BM_EcmpHash(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint16_t port = 0;
  for (auto _ : state) {
    const net::FiveTuple t{0x0a000001, 0x0a010009, 50060, ++port, 6};
    acc += net::EcmpSelector::select_index(t, 4);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EcmpHash);

void BM_ZipfSample(benchmark::State& state) {
  util::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 1.0);
  util::Xoshiro256 rng(3);
  std::size_t acc = 0;
  for (auto _ : state) {
    acc += zipf.sample(rng);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10'000);

}  // namespace

BENCHMARK_MAIN();
