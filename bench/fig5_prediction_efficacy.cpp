// Figure 5 — "Prediction promptness/accuracy over time for traffic
// emanating from a single Hadoop tasktracker server (60 GB integer sort)".
//
// Paper methodology: NetFlow probes on every server capture actual shuffle
// traffic (port 50060) per source server; Pythia's predicted per-server
// cumulative volume is compared against the measured curve. Paper result:
// the predicted curve leads the measured one by >= ~9 s, and over-estimates
// total volume by 3-7% (protocol-overhead estimation at the application
// layer).
#include <cstdio>

#include "experiments/scenario.hpp"
#include "net/netflow.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "viz/timeline_export.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  std::printf("=== Figure 5: prediction promptness & accuracy ===\n");
  std::printf("(60 GB integer sort under Pythia, 1:10 background, NetFlow "
              "probes on the shuffle port)\n\n");

  exp::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.scheduler = exp::SchedulerKind::kPythia;
  cfg.background.oversubscription = 10.0;
  cfg.enable_netflow = true;

  exp::Scenario scenario(cfg);
  scenario.run_job(workloads::integer_sort_60g());

  util::Table table({"server", "predicted", "measured", "over-estimate",
                     "lead @25%", "lead @50%", "lead @75%"});
  util::RunningStats lead_stats;
  util::RunningStats over_stats;

  for (net::NodeId server : scenario.netflow()->observed_sources()) {
    const auto& predicted =
        scenario.pythia()->collector().predicted_curve(server);
    const auto& measured = scenario.netflow()->curve(server);
    if (predicted.empty() || measured.empty()) continue;

    std::vector<net::VolumePoint> pred;
    pred.reserve(predicted.size());
    for (const auto& p : predicted) {
      pred.push_back(net::VolumePoint{p.at, p.cumulative});
    }
    const double total_meas = measured.back().cumulative.as_double();
    const double total_pred = pred.back().cumulative.as_double();

    double leads[3] = {0, 0, 0};
    const double quantiles[3] = {0.25, 0.5, 0.75};
    for (int q = 0; q < 3; ++q) {
      const double volume = total_meas * quantiles[q];
      const auto tp = net::curve_time_to_reach(pred, volume);
      const auto tm = net::curve_time_to_reach(measured, volume);
      leads[q] = (tm - tp).seconds();
      lead_stats.add(leads[q]);
    }
    const double over = total_pred / total_meas - 1.0;
    over_stats.add(over);

    table.add_row({std::to_string(server.value()),
                   util::format_bytes(util::Bytes{
                       static_cast<std::int64_t>(total_pred)}),
                   util::format_bytes(util::Bytes{
                       static_cast<std::int64_t>(total_meas)}),
                   util::Table::percent(over),
                   util::Table::seconds(leads[0]),
                   util::Table::seconds(leads[1]),
                   util::Table::seconds(leads[2])});
  }
  std::printf("%s", table.to_string().c_str());

  // Export the paper's single-server plot (Server4) for external plotting.
  const net::NodeId server4 = scenario.servers().at(4);
  viz::export_prediction_csv(
      scenario.pythia()->collector().predicted_curve(server4),
      scenario.netflow()->curve(server4), "fig5_server4.csv");

  std::printf(
      "\npaper: prediction leads the wire by >= ~9 s (min across the trace) "
      "and over-estimates volume by 3-7%%.\nmeasured: lead min %.1f s / mean "
      "%.1f s; over-estimate %.1f%%..%.1f%% (mean %.1f%%).\n"
      "(server-4 curves written to fig5_server4.csv)\n",
      lead_stats.min(), lead_stats.mean(), over_stats.min() * 100.0,
      over_stats.max() * 100.0, over_stats.mean() * 100.0);
  return 0;
}
