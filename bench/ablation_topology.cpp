// Ablation A2 — path diversity and topology.
//
// The paper's testbed has exactly two inter-rack paths; its design (k-
// shortest paths + first-fit packing, Section IV) targets general multi-path
// fabrics. This bench sweeps (a) the number of parallel inter-rack cables in
// the 2-rack testbed shape and (b) leaf-spine fabrics with growing spine
// count, reporting ECMP vs Pythia at 1:10 with the paper's asymmetric
// background profile.
#include <cstdio>

#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace {

double run(pythia::exp::ScenarioConfig cfg, pythia::exp::SchedulerKind kind,
           const pythia::hadoop::JobSpec& job) {
  cfg.scheduler = kind;
  return pythia::exp::run_completion_seconds(cfg, job);
}

}  // namespace

int main() {
  using namespace pythia;

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf("=== Ablation A2a: parallel inter-rack cables (2-rack) ===\n\n");
  {
    util::Table table({"cables", "ECMP (s)", "Pythia (s)", "speedup"});
    for (const std::size_t cables : {2UL, 3UL, 4UL}) {
      exp::ScenarioConfig cfg;
      cfg.seed = 9;
      cfg.two_rack.inter_rack_links = cables;
      cfg.controller.k_paths = cables;
      cfg.background.oversubscription = 10.0;
      cfg.background.path_intensity = {1.0, 0.1};  // one hot path, rest cool
      const double ecmp = run(cfg, exp::SchedulerKind::kEcmp, job);
      const double pythia = run(cfg, exp::SchedulerKind::kPythia, job);
      table.add_row({std::to_string(cables), util::Table::num(ecmp, 1),
                     util::Table::num(pythia, 1),
                     util::Table::percent(ecmp / pythia - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== Ablation A2b: leaf-spine fabrics ===\n\n");
  {
    util::Table table({"spines", "ECMP (s)", "Pythia (s)", "speedup"});
    for (const std::size_t spines : {2UL, 4UL, 8UL}) {
      exp::ScenarioConfig cfg;
      cfg.seed = 9;
      cfg.topology_kind = exp::TopologyKind::kLeafSpine;
      cfg.leaf_spine.spines = spines;
      cfg.controller.k_paths = spines;
      cfg.background.oversubscription = 10.0;
      cfg.background.path_intensity = {1.0, 0.5, 0.15};
      const double ecmp = run(cfg, exp::SchedulerKind::kEcmp, job);
      const double pythia = run(cfg, exp::SchedulerKind::kPythia, job);
      table.add_row({std::to_string(spines), util::Table::num(ecmp, 1),
                     util::Table::num(pythia, 1),
                     util::Table::percent(ecmp / pythia - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "expected shape: Pythia's edge is largest when paths are few and "
      "asymmetric (one bad ECMP draw\nhurts); with many spines ECMP's law of "
      "large numbers catches up and the gap narrows.\n");
  return 0;
}
