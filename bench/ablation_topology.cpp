// Ablation A2 — path diversity and topology.
//
// The paper's testbed has exactly two inter-rack paths; its design (k-
// shortest paths + first-fit packing, Section IV) targets general multi-path
// fabrics. This bench sweeps (a) the number of parallel inter-rack cables in
// the 2-rack testbed shape and (b) leaf-spine fabrics with growing spine
// count, reporting ECMP vs Pythia at 1:10 with the paper's asymmetric
// background profile. The grid cells are independent simulations, so they
// fan out across the ParallelRunner.
#include <cstdio>
#include <vector>

#include "bench_cli.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

namespace {

struct CellResult {
  double ecmp_s = 0.0;
  double pythia_s = 0.0;
};

/// Runs both arms of one grid cell (one task: the pool parallelizes cells).
CellResult run_cell(pythia::exp::ScenarioConfig cfg,
                    const pythia::hadoop::JobSpec& job) {
  CellResult r;
  cfg.scheduler = pythia::exp::SchedulerKind::kEcmp;
  r.ecmp_s = pythia::exp::run_completion_seconds(cfg, job);
  cfg.scheduler = pythia::exp::SchedulerKind::kPythia;
  r.pythia_s = pythia::exp::run_completion_seconds(cfg, job);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);
  exp::ParallelRunner runner(args.threads);

  const auto job =
      workloads::sort_job(util::Bytes{60LL * 1000 * 1000 * 1000}, 20);

  std::printf("=== Ablation A2a: parallel inter-rack cables (2-rack) ===\n\n");
  {
    const std::vector<std::size_t> cables = {2, 3, 4};
    const auto results = runner.map<CellResult>(
        cables.size(), [&](std::size_t i) {
          exp::ScenarioConfig cfg;
          cfg.seed = 9;
          cfg.two_rack.inter_rack_links = cables[i];
          cfg.controller.k_paths = cables[i];
          cfg.background.oversubscription = 10.0;
          cfg.background.path_intensity = {1.0, 0.1};  // one hot path
          return run_cell(cfg, job);
        });
    util::Table table({"cables", "ECMP (s)", "Pythia (s)", "speedup"});
    for (std::size_t i = 0; i < cables.size(); ++i) {
      table.add_row({std::to_string(cables[i]),
                     util::Table::num(results[i].ecmp_s, 1),
                     util::Table::num(results[i].pythia_s, 1),
                     util::Table::percent(
                         results[i].ecmp_s / results[i].pythia_s - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("=== Ablation A2b: leaf-spine fabrics ===\n\n");
  {
    const std::vector<std::size_t> spines = {2, 4, 8};
    const auto results = runner.map<CellResult>(
        spines.size(), [&](std::size_t i) {
          exp::ScenarioConfig cfg;
          cfg.seed = 9;
          cfg.topology_kind = exp::TopologyKind::kLeafSpine;
          cfg.leaf_spine.spines = spines[i];
          cfg.controller.k_paths = spines[i];
          cfg.background.oversubscription = 10.0;
          cfg.background.path_intensity = {1.0, 0.5, 0.15};
          return run_cell(cfg, job);
        });
    util::Table table({"spines", "ECMP (s)", "Pythia (s)", "speedup"});
    for (std::size_t i = 0; i < spines.size(); ++i) {
      table.add_row({std::to_string(spines[i]),
                     util::Table::num(results[i].ecmp_s, 1),
                     util::Table::num(results[i].pythia_s, 1),
                     util::Table::percent(
                         results[i].ecmp_s / results[i].pythia_s - 1.0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("[sweep] %s\n\n",
              exp::runner_counters_summary(runner.counters()).c_str());
  std::printf(
      "expected shape: Pythia's edge is largest when paths are few and "
      "asymmetric (one bad ECMP draw\nhurts); with many spines ECMP's law of "
      "large numbers catches up and the gap narrows.\n");
  return 0;
}
