// Figure 4 — "Sort job completion times using Pythia resp. ECMP and
// relative speedup".
//
// Paper setup: HiBench Sort with 240 GB input on the same testbed and
// over-subscription sweep as Fig. 3. Paper result: Pythia wins at every
// ratio with improvement up to 43%, but — unlike Nutch — sort's completion
// time under Pythia does grow with the ratio (fewer, larger flows leave
// less packing opportunity).
#include <cstdio>

#include "bench_cli.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);

  std::printf("=== Figure 4: Sort (240 GB), Pythia vs ECMP ===\n\n");

  exp::SweepConfig sweep;
  sweep.seeds = {1, 2, 3};
  sweep.threads = args.threads;
  const auto job = workloads::paper_sort();
  exp::RunnerCounters counters;
  const auto rows = exp::run_oversubscription_sweep(
      sweep, job, exp::paper_oversubscription_points(), &counters);

  auto table = exp::speedup_table(rows, "ECMP", "Pythia");
  std::printf("%s", table.to_string().c_str());
  std::printf("[sweep] %s\n", exp::runner_counters_summary(counters).c_str());

  double max_speedup = 0.0;
  for (const auto& row : rows) {
    max_speedup = std::max(max_speedup, row.speedup());
  }
  std::printf(
      "\npaper: Pythia outperforms ECMP at every ratio, up to 43%%; sort's "
      "Pythia times grow with the ratio\n(unlike Nutch).\nmeasured: max "
      "speedup %.0f%%; Pythia 1:20 vs clean-network ratio %.2fx (ECMP "
      "%.2fx).\n",
      max_speedup * 100.0,
      rows.back().treatment_mean_s / rows.front().treatment_mean_s,
      rows.back().baseline_mean_s / rows.front().baseline_mean_s);
  return 0;
}
