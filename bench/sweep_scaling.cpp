// Sweep-engine scaling bench: wall-time of the Fig. 3 over-subscription
// sweep at 1, 2, and 8 worker threads, plus the determinism check that is
// the engine's core contract — the result rows and their CSV serialization
// must be byte-identical at every thread count.
//
//   ./build/bench/sweep_scaling [--smoke] [--out BENCH_sweep.json]
//
// Smoke mode shrinks the job so the three sweeps finish in seconds; the
// speedup numbers are only meaningful on a machine with that many free
// cores, so the JSON records hardware_concurrency alongside.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_cli.hpp"
#include "experiments/sweep.hpp"
#include "util/table.hpp"
#include "workloads/hibench.hpp"

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);

  std::printf("=== Sweep engine scaling: Fig. 3 sweep at 1/2/8 threads ===\n");

  exp::SweepConfig sweep;
  std::vector<exp::OversubPoint> points;
  hadoop::JobSpec job;
  if (args.smoke) {
    job = workloads::sort_job(util::Bytes{4LL * 1000 * 1000 * 1000}, 8);
    sweep.seeds = {1, 2};
    points = {{"none", 1.0}, {"1:5", 5.0}, {"1:20", 20.0}};
    std::printf("(smoke: 4 GB sort, 3 points x 2 schedulers x 2 seeds)\n\n");
  } else {
    job = workloads::paper_nutch();
    sweep.seeds = {1, 2, 3};
    points = exp::paper_oversubscription_points();
    std::printf("(full: paper Nutch, 5 points x 2 schedulers x 3 seeds)\n\n");
  }
  const std::size_t total_runs = points.size() * 2 * sweep.seeds.size();

  const std::vector<std::size_t> thread_counts = {1, 2, 8};
  std::vector<double> walls;
  std::vector<double> utilizations;
  std::string reference_csv;
  bool bit_identical = true;

  util::Table table({"threads", "wall (s)", "speedup vs 1T", "utilization",
                     "rows identical"});
  for (const std::size_t threads : thread_counts) {
    exp::SweepConfig cfg = sweep;
    cfg.threads = threads;
    exp::RunnerCounters counters;
    const auto t0 = std::chrono::steady_clock::now();
    const auto rows =
        exp::run_oversubscription_sweep(cfg, job, points, &counters);
    const double wall = wall_seconds_since(t0);
    walls.push_back(wall);
    utilizations.push_back(counters.utilization());

    const std::string csv = exp::speedup_rows_csv(rows);
    if (reference_csv.empty()) {
      reference_csv = csv;
    } else if (csv != reference_csv) {
      bit_identical = false;
    }
    table.add_row({std::to_string(threads), util::Table::num(wall, 2),
                   util::Table::num(walls.front() / wall, 2) + "x",
                   util::Table::percent(counters.utilization()),
                   csv == reference_csv ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const unsigned hw = std::thread::hardware_concurrency();
  const double speedup8 = walls.front() / walls.back();
  std::printf("hardware cores: %u; 8-thread speedup %.2fx; result rows %s "
              "across thread counts.\n",
              hw, speedup8,
              bit_identical ? "bit-identical" : "DIVERGED (bug!)");

  const std::string json_path =
      !args.json_out.empty() ? args.json_out : args.out;
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"sweep_scaling\",\n"
        << "  \"mode\": \"" << (args.smoke ? "smoke" : "full") << "\",\n"
        << "  \"runs_per_sweep\": " << total_runs << ",\n"
        << "  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
        << ",\n  \"threads\": {\n";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    \"%zu\": {\"wall_s\": %.4f, \"utilization\": %.4f}%s\n",
                    thread_counts[i], walls[i], utilizations[i],
                    i + 1 < thread_counts.size() ? "," : "");
      out << buf;
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  },\n  \"speedup_8_vs_1\": %.4f\n}\n", speedup8);
    out << buf;
    std::printf("(results written to %s)\n", json_path.c_str());
  }
  return bit_identical ? 0 : 1;
}
