// Figure 3 — "Nutch job completion times using Pythia resp. ECMP and
// relative speedup".
//
// Paper setup: HiBench Nutch indexing (5M pages, ~8 GB input) on the 2-rack
// 10-server testbed, network over-subscription emulated with UDP background
// traffic at ratios {none, 1:2, 1:5, 1:10, 1:20}. Paper result: Pythia beats
// ECMP at every ratio, with the maximum speedup (46%) at 1:20, and Pythia's
// completion time stays close to the non-oversubscribed time because the
// allocator keeps finding the lightly loaded path.
#include <cstdio>

#include "bench_cli.hpp"
#include "experiments/sweep.hpp"
#include "workloads/hibench.hpp"

int main(int argc, char** argv) {
  using namespace pythia;
  const auto args = benchcli::parse(argc, argv);

  std::printf("=== Figure 3: Nutch indexing, Pythia vs ECMP ===\n");
  std::printf("(5M pages / 8 GB input, 2 racks x 5 servers, 2 inter-rack "
              "paths, asymmetric UDP background)\n\n");

  exp::SweepConfig sweep;
  sweep.seeds = {1, 2, 3};
  sweep.threads = args.threads;
  const auto job = workloads::paper_nutch();
  exp::RunnerCounters counters;
  const auto rows = exp::run_oversubscription_sweep(
      sweep, job, exp::paper_oversubscription_points(), &counters);

  auto table = exp::speedup_table(rows, "ECMP", "Pythia");
  std::printf("%s", table.to_string().c_str());
  std::printf("[sweep] %s\n", exp::runner_counters_summary(counters).c_str());

  double max_speedup = 0.0;
  for (const auto& row : rows) max_speedup = std::max(max_speedup, row.speedup());
  const double clean = rows.front().treatment_mean_s;
  const double worst_pythia = rows.back().treatment_mean_s;
  std::printf(
      "\npaper: speedup 3%%..46%%, max at 1:20; Pythia time ~flat across "
      "ratios.\nmeasured: max speedup %.0f%%; Pythia at 1:20 within %.0f%% "
      "of its clean-network time.\n",
      max_speedup * 100.0, (worst_pythia / clean - 1.0) * 100.0);
  return 0;
}
