// Figure 1a — "Hadoop sort job sequence diagram".
//
// The paper motivates Pythia with the execution of a toy-sized sort job on a
// 1 Gbps non-blocking network: three map tasks, two reducers, with the
// shuffle phase clearly visible and reducer-0 fetching 5x more intermediate
// data than reducer-1 (the job-skew effect). This bench regenerates that
// diagram and the per-reducer table.
#include <cstdio>

#include "experiments/scenario.hpp"
#include "util/table.hpp"
#include "viz/gantt.hpp"
#include "workloads/hibench.hpp"

int main() {
  using namespace pythia;

  std::printf("=== Figure 1a: sort job sequence diagram ===\n");
  std::printf("(toy sort: 3 maps, 2 reducers, 1 Gbps non-blocking network; "
              "paper reports reducer-0 receiving 5x reducer-1)\n\n");

  exp::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.scheduler = exp::SchedulerKind::kEcmp;
  cfg.background.oversubscription = 1.0;  // non-blocking
  cfg.two_rack.host_link = util::BitsPerSec{1e9};
  cfg.two_rack.inter_rack_capacity = util::BitsPerSec{1e9};
  cfg.two_rack.servers_per_rack = 2;
  cfg.cluster.map_slots_per_server = 2;
  cfg.cluster.reduce_slots_per_server = 1;

  exp::Scenario scenario(cfg);
  const hadoop::JobResult result =
      scenario.run_job(workloads::toy_skewed_sort());

  std::printf("%s\n", viz::render_sequence_diagram(result).c_str());
  std::printf("%s\n", viz::render_reducer_summary(result).c_str());
  std::printf("%s\n", viz::render_phase_summary(result).c_str());

  const auto loads = result.reducer_load_profile();
  const double skew = loads[1] > 0.0 ? loads[0] / loads[1] : 0.0;
  const double shuffle_frac =
      (result.shuffle_phase_end() - result.map_phase_end()).seconds() /
      result.completion_time().seconds();

  util::Table check({"metric", "paper", "measured"});
  check.add_row({"reducer-0 / reducer-1 volume", "5x",
                 util::Table::num(skew, 1) + "x"});
  check.add_row({"shuffle visible as distinct phase", "yes",
                 shuffle_frac > 0.02 ? "yes" : "no"});
  std::printf("%s", check.to_string().c_str());
  return 0;
}
