// Fabric hot-path scaling sweep: wall-time per flow event on fat-tree
// k=4/8/16 at 100 → 20 000 concurrent flows, across all three rate engines
// (legacy full recompute, dirty-set incremental, group-partitioned
// hierarchical). Writes BENCH_fabric.json (recompute counts, links touched,
// wall-time per event, per-cell RSS, per-arm behavior checksums and an
// all_identical verdict CI gates on) to track the perf trajectory across
// PRs. `--smoke` runs a tiny sweep for CI.
//
// Protocol per cell: ramp N long-lived flows to steady state, then time a
// window of M additional flow arrivals grouped into shuffle waves — bursts
// of simultaneous starts, the traffic shape a MapReduce shuffle stage (and
// Pythia's predicted-transfer hot path) actually generates. Every arrival
// dirties the fabric against the N-flow backdrop; ns/event is the timed
// window divided by arrivals. Flows are never drained (teardown is
// untimed), so the window isolates per-event cost.
//
// All arms ramp with cohort coalescing on and flush once before the window:
// the ramp then costs one progressive fill instead of N increasingly
// expensive ones, which is what makes the >=20k-flow cells tractable for
// every engine. Inside the window the arms diverge by engine generation:
// kFullRecompute and kIncremental are measured eager — one recompute per
// event, their semantics before this PR — while kHierarchical keeps
// coalescing on and pays one recompute per wave cohort, which is the third
// pillar of the engine rebuild. End-of-window behavior checksums are still
// compared across all arms (coalescing is proven state-identical by the
// fabric differential suite), so the speedups never trade away the
// bit-identical contract.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "util/random.hpp"

namespace {

using namespace pythia;
using net::Fabric;
using net::FabricConfig;
using net::FlowSpec;
using net::LinkId;
using net::NodeId;
using net::RateEngine;
using net::Topology;
using util::Bytes;
using util::SimTime;

NodeId edge_of(const Topology& topo, NodeId host) {
  return topo.link(topo.out_links(host)[0]).dst;
}

std::vector<NodeId> switch_neighbors(const Topology& topo, NodeId sw,
                                     const char* prefix) {
  std::vector<NodeId> out;
  for (LinkId l : topo.out_links(sw)) {
    const auto& n = topo.node(topo.link(l).dst);
    if (n.kind == net::NodeKind::kSwitch && n.name.starts_with(prefix)) {
      out.push_back(n.id);
    }
  }
  return out;
}

/// Builds one up/down fat-tree path src→dst without running Yen: pick an
/// aggregation (and, across pods, core) switch at random and chain the
/// links. O(k) per path, so pools for thousands of flows build instantly.
std::vector<LinkId> fat_tree_path(const Topology& topo, NodeId src, NodeId dst,
                                  util::Xoshiro256& rng) {
  const NodeId e1 = edge_of(topo, src);
  const NodeId e2 = edge_of(topo, dst);
  std::vector<LinkId> path{*topo.find_link(src, e1)};
  if (e1 == e2) {
    path.push_back(*topo.find_link(e1, dst));
    return path;
  }
  const auto aggs = switch_neighbors(topo, e1, "agg-");
  const std::size_t pick = rng.below(aggs.size());
  // Same pod: some agg neighbors e2 directly.
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const NodeId agg = aggs[(pick + i) % aggs.size()];
    if (const auto down = topo.find_link(agg, e2)) {
      path.push_back(*topo.find_link(e1, agg));
      path.push_back(*down);
      path.push_back(*topo.find_link(e2, dst));
      return path;
    }
  }
  // Cross-pod: up to a core over the picked agg, down to the same-index agg
  // in dst's pod (every core sees exactly one agg per pod).
  const NodeId agg1 = aggs[pick];
  const auto cores = switch_neighbors(topo, agg1, "core-");
  const NodeId core = cores[rng.below(cores.size())];
  for (LinkId l : topo.out_links(core)) {
    const NodeId agg2 = topo.link(l).dst;
    if (agg2 == agg1) continue;
    if (const auto down = topo.find_link(agg2, e2)) {
      path.push_back(*topo.find_link(e1, agg1));
      path.push_back(*topo.find_link(agg1, core));
      path.push_back(l);
      path.push_back(*down);
      path.push_back(*topo.find_link(e2, dst));
      return path;
    }
  }
  std::fprintf(stderr, "no fat-tree path %u -> %u\n", src.value(),
               dst.value());
  std::abort();
}

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Current resident set (VmRSS) in KiB from /proc/self/status. Unlike
/// getrusage's ru_maxrss — a process-lifetime high-water mark that freezes
/// at whichever cell was largest — this is sampled per cell while the
/// fabric is live, so every cell reports its own footprint.
long current_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct CellResult {
  double wall_ns_per_event = 0.0;
  std::uint64_t events = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t links_touched = 0;
  double ramp_ms = 0.0;
  double window_ms = 0.0;
  long rss_kb = 0;
  /// FNV-1a over the fabric's behavioral state image at the end of the
  /// window (counters excluded — engines legitimately differ there). Equal
  /// checksums across arms certify the run the numbers came from really
  /// allocated identical rates.
  std::uint64_t behavior_checksum = 0;
};

/// Arrivals per wave cohort: every wave schedules this many simultaneous
/// starts, like one mapper wave fanning out to reducers.
constexpr int kWaveSize = 25;

CellResult run_cell(const Topology& topo, RateEngine engine,
                    std::size_t concurrent, int churn, std::uint64_t seed) {
  // The oracle engines predate cohort coalescing; measure them eager.
  const bool coalesce_window = engine == RateEngine::kHierarchical;
  sim::Simulation sim(seed);
  Fabric fabric(sim, topo,
                FabricConfig{.rate_engine = engine, .coalesce_cohorts = true});
  util::Xoshiro256 rng(seed);
  const auto hosts = topo.hosts();

  auto random_pair = [&] {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    return std::pair{src, dst};
  };

  const auto ramp_begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < concurrent; ++i) {
    const auto [src, dst] = random_pair();
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{1'000'000'000'000};  // outlives the measurement window
    spec.path = fat_tree_path(topo, src, dst, rng);
    fabric.start_flow(spec);
  }
  // One fill for the whole ramp cohort, paid here — not in the window.
  fabric.flush_coalesced();
  fabric.set_cohort_coalescing(coalesce_window);
  const auto ramp_end = std::chrono::steady_clock::now();

  // Measurement window: churn arrivals in waves of kWaveSize simultaneous
  // starts, waves 5 ms apart. Each wave is one event cohort; the flows are
  // sized to outlive the window so every recompute runs against the full
  // steady-state backdrop.
  for (int i = 0; i < churn; ++i) {
    const auto [src, dst] = random_pair();
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{1'000'000'000'000};
    spec.path = fat_tree_path(topo, src, dst, rng);
    const std::int64_t wave_ns = (i / kWaveSize + 1) * 5'000'000LL;
    sim.at(SimTime{wave_ns}, [&fabric, spec] { fabric.start_flow(spec); });
  }

  const auto c0 = fabric.counters();
  const std::uint64_t started0 = fabric.flows_started();
  const auto window_begin = std::chrono::steady_clock::now();
  while (fabric.flows_started() - started0 <
             static_cast<std::uint64_t>(churn) &&
         sim.queue().run_one()) {
  }
  // The final wave's cohort has not drained yet when the start-count guard
  // trips; its recompute belongs to the window (no-op for eager arms).
  fabric.flush_coalesced();
  const auto window_end = std::chrono::steady_clock::now();
  const auto c1 = fabric.counters();

  CellResult r;
  r.events = (fabric.flows_started() - started0) +
             (c1.completion_events - c0.completion_events);
  const auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(window_end -
                                                           window_begin)
          .count());
  r.wall_ns_per_event = r.events ? wall_ns / static_cast<double>(r.events) : 0;
  r.recomputes = c1.recomputes - c0.recomputes;
  r.links_touched = c1.links_touched - c0.links_touched;
  r.ramp_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                  ramp_end - ramp_begin)
                  .count() /
              1000.0;
  r.window_ms = wall_ns / 1e6;
  r.rss_kb = current_rss_kb();  // fabric still live: the cell's footprint
  fabric.flush_coalesced();     // identical stop position across arms
  sim::StateEncoder enc;
  fabric.encode_state(enc);
  r.behavior_checksum = fnv1a(enc.bytes());
  return r;
  // The N long flows are dropped untimed with the fabric.
}

/// Medians out machine noise: the cell is run `reps` times (the seed makes
/// every run identical, so event counts and counters agree) and the run
/// with the median window time is reported.
CellResult run_cell_median(const Topology& topo, RateEngine engine,
                           std::size_t concurrent, int churn,
                           std::uint64_t seed, int reps) {
  std::vector<CellResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(run_cell(topo, engine, concurrent, churn, seed));
  }
  std::sort(runs.begin(), runs.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.wall_ns_per_event < b.wall_ns_per_event;
            });
  return runs[runs.size() / 2];
}


struct Cell {
  std::size_t k;
  std::size_t flows;
  /// The >=20k cells skip the quadratic full-recompute arm (it would take
  /// minutes for numbers nobody tracks); incremental remains the oracle.
  bool run_full = true;
  int reps = 3;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fabric.json";
  std::string one;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    // --json-out: shared artifact-redirect flag (see bench_cli.hpp); wins
    // over --out so CI can point every bench somewhere collision-free.
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    // --one k:flows:engine runs a single arm once (no JSON) — the loop for
    // profiling one cell under gprof/perf without sweeping the whole grid.
    if (std::strcmp(argv[i], "--one") == 0 && i + 1 < argc) one = argv[++i];
  }
  if (!one.empty()) {
    std::size_t k = 8;
    std::size_t flows = 5000;
    char engine_c = 'h';
    std::sscanf(one.c_str(), "%zu:%zu:%c", &k, &flows, &engine_c);
    const RateEngine engine = engine_c == 'f'   ? RateEngine::kFullRecompute
                              : engine_c == 'i' ? RateEngine::kIncremental
                                                : RateEngine::kHierarchical;
    net::FatTreeConfig cfg;
    cfg.k = k;
    const Topology topo = net::make_fat_tree(cfg);
    const CellResult r = run_cell(topo, engine, flows, 200, 7);
    std::printf("k%zu flows=%zu engine=%c: %.0f ns/event (%llu events)\n", k,
                flows, engine_c, r.wall_ns_per_event,
                static_cast<unsigned long long>(r.events));
    return 0;
  }

  std::vector<Cell> cells;
  if (smoke) {
    cells = {{4, 100}, {4, 300}};
  } else {
    for (const std::size_t k : {std::size_t{4}, std::size_t{8}}) {
      for (const std::size_t n : {100u, 500u, 1000u, 2000u, 5000u}) {
        cells.push_back({k, n});
      }
    }
    // The headline scale cells: 20k and 50k concurrent flows on a
    // 1024-host k=16 fabric, hierarchical vs incremental only.
    cells.push_back({16, 20'000, /*run_full=*/false, /*reps=*/1});
    cells.push_back({16, 50'000, /*run_full=*/false, /*reps=*/1});
  }
  const int churn = smoke ? 40 : 200;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fabric_scaling\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n  \"churn_events\": %d,\n",
               smoke ? "true" : "false", churn);

  std::printf("%-14s %8s | %12s %12s %12s | %9s %9s\n", "topology", "flows",
              "full ns/ev", "incr ns/ev", "hier ns/ev", "incr/full",
              "hier/incr");
  std::string cells_json;
  bool all_identical = true;
  std::size_t prev_k = 0;
  Topology topo;
  for (const Cell& cell : cells) {
    if (cell.k != prev_k) {
      net::FatTreeConfig cfg;
      cfg.k = cell.k;
      topo = net::make_fat_tree(cfg);
      prev_k = cell.k;
    }
    const std::string label = "fat_tree_k" + std::to_string(cell.k);
    const std::size_t n = cell.flows;

    const CellResult inc = run_cell_median(topo, RateEngine::kIncremental, n,
                                           churn, 7, cell.reps);
    const CellResult hier = run_cell_median(topo, RateEngine::kHierarchical, n,
                                            churn, 7, cell.reps);
    CellResult full;
    if (cell.run_full) {
      full = run_cell_median(topo, RateEngine::kFullRecompute, n, churn, 7,
                             cell.reps);
    }
    const bool identical =
        inc.behavior_checksum == hier.behavior_checksum &&
        (!cell.run_full || full.behavior_checksum == inc.behavior_checksum);
    all_identical = all_identical && identical;

    const double speedup_inc =
        cell.run_full && inc.wall_ns_per_event > 0.0
            ? full.wall_ns_per_event / inc.wall_ns_per_event
            : 0.0;
    const double speedup_hier =
        hier.wall_ns_per_event > 0.0
            ? inc.wall_ns_per_event / hier.wall_ns_per_event
            : 0.0;
    std::printf("%-14s %8zu | %12.0f %12.0f %12.0f | %8.1fx %8.1fx%s\n",
                label.c_str(), n, full.wall_ns_per_event,
                inc.wall_ns_per_event, hier.wall_ns_per_event, speedup_inc,
                speedup_hier, identical ? "" : "  CHECKSUM MISMATCH");
    std::fflush(stdout);

    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"topology\": \"%s\", \"k\": %zu, \"flows\": %zu,\n",
                  label.c_str(), cell.k, n);
    cells_json += (cells_json.empty() ? "" : ",\n") + std::string(buf);
    auto arm_json = [](const char* name, const CellResult& r) {
      char b[512];
      std::snprintf(b, sizeof b,
                    "      \"%s\": {\"wall_ns_per_event\": %.1f, "
                    "\"events\": %llu, \"recomputes\": %llu, "
                    "\"links_touched\": %llu, \"ramp_ms\": %.2f, "
                    "\"window_ms\": %.2f, \"rss_kb\": %ld, "
                    "\"behavior_checksum\": \"%016llx\"}",
                    name, r.wall_ns_per_event,
                    static_cast<unsigned long long>(r.events),
                    static_cast<unsigned long long>(r.recomputes),
                    static_cast<unsigned long long>(r.links_touched),
                    r.ramp_ms, r.window_ms, r.rss_kb,
                    static_cast<unsigned long long>(r.behavior_checksum));
      return std::string(b);
    };
    if (cell.run_full) cells_json += arm_json("full", full) + ",\n";
    cells_json += arm_json("incremental", inc) + ",\n";
    cells_json += arm_json("hierarchical", hier) + ",\n";
    std::snprintf(buf, sizeof buf,
                  "      \"speedup\": %.2f, \"speedup_hierarchical\": %.2f,\n"
                  "      \"peak_rss_kb\": %ld, \"identical\": %s}",
                  speedup_inc, speedup_hier,
                  std::max({full.rss_kb, inc.rss_kb, hier.rss_kb}),
                  identical ? "true" : "false");
    cells_json += buf;
  }
  std::fprintf(out, "  \"all_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"cells\": [\n%s\n  ]\n}\n", cells_json.c_str());
  std::fclose(out);
  std::printf("wrote %s (all_identical=%s)\n", out_path.c_str(),
              all_identical ? "true" : "false");
  return all_identical ? 0 : 1;
}
