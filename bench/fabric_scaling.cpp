// Fabric hot-path scaling sweep: wall-time per flow event on fat-tree k=4/8
// at 100 → 5 000 concurrent flows, incremental rate engine vs the legacy
// full-recompute baseline. Writes BENCH_fabric.json (recompute counts, links
// touched, wall-time per event, peak RSS) to seed the perf trajectory across
// PRs. `--smoke` runs a tiny sweep for CI.
//
// Protocol per cell: ramp N long-lived flows to steady state, then time a
// window of M short "churn" flows riding on top — every churn start and
// completion forces a rate recompute against the N-flow backdrop, which is
// exactly the hot path a large cluster exercises. The long flows are never
// drained (teardown is untimed), so the window isolates per-event cost.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace {

using namespace pythia;
using net::Fabric;
using net::FabricConfig;
using net::FlowSpec;
using net::LinkId;
using net::NodeId;
using net::RateEngine;
using net::Topology;
using util::Bytes;
using util::SimTime;

NodeId edge_of(const Topology& topo, NodeId host) {
  return topo.link(topo.out_links(host)[0]).dst;
}

std::vector<NodeId> switch_neighbors(const Topology& topo, NodeId sw,
                                     const char* prefix) {
  std::vector<NodeId> out;
  for (LinkId l : topo.out_links(sw)) {
    const auto& n = topo.node(topo.link(l).dst);
    if (n.kind == net::NodeKind::kSwitch && n.name.starts_with(prefix)) {
      out.push_back(n.id);
    }
  }
  return out;
}

/// Builds one up/down fat-tree path src→dst without running Yen: pick an
/// aggregation (and, across pods, core) switch at random and chain the
/// links. O(k) per path, so pools for thousands of flows build instantly.
std::vector<LinkId> fat_tree_path(const Topology& topo, NodeId src, NodeId dst,
                                  util::Xoshiro256& rng) {
  const NodeId e1 = edge_of(topo, src);
  const NodeId e2 = edge_of(topo, dst);
  std::vector<LinkId> path{*topo.find_link(src, e1)};
  if (e1 == e2) {
    path.push_back(*topo.find_link(e1, dst));
    return path;
  }
  const auto aggs = switch_neighbors(topo, e1, "agg-");
  const std::size_t pick = rng.below(aggs.size());
  // Same pod: some agg neighbors e2 directly.
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const NodeId agg = aggs[(pick + i) % aggs.size()];
    if (const auto down = topo.find_link(agg, e2)) {
      path.push_back(*topo.find_link(e1, agg));
      path.push_back(*down);
      path.push_back(*topo.find_link(e2, dst));
      return path;
    }
  }
  // Cross-pod: up to a core over the picked agg, down to the same-index agg
  // in dst's pod (every core sees exactly one agg per pod).
  const NodeId agg1 = aggs[pick];
  const auto cores = switch_neighbors(topo, agg1, "core-");
  const NodeId core = cores[rng.below(cores.size())];
  for (LinkId l : topo.out_links(core)) {
    const NodeId agg2 = topo.link(l).dst;
    if (agg2 == agg1) continue;
    if (const auto down = topo.find_link(agg2, e2)) {
      path.push_back(*topo.find_link(e1, agg1));
      path.push_back(*topo.find_link(agg1, core));
      path.push_back(l);
      path.push_back(*down);
      path.push_back(*topo.find_link(e2, dst));
      return path;
    }
  }
  std::fprintf(stderr, "no fat-tree path %u -> %u\n", src.value(),
               dst.value());
  std::abort();
}

struct CellResult {
  double wall_ns_per_event = 0.0;
  std::uint64_t events = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t links_touched = 0;
  double ramp_ms = 0.0;
  double window_ms = 0.0;
};

CellResult run_cell(const Topology& topo, RateEngine engine,
                    std::size_t concurrent, int churn, std::uint64_t seed) {
  sim::Simulation sim(seed);
  Fabric fabric(sim, topo, FabricConfig{engine});
  util::Xoshiro256 rng(seed);
  const auto hosts = topo.hosts();

  auto random_pair = [&] {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    return std::pair{src, dst};
  };

  const auto ramp_begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < concurrent; ++i) {
    const auto [src, dst] = random_pair();
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{1'000'000'000'000};  // outlives the measurement window
    spec.path = fat_tree_path(topo, src, dst, rng);
    fabric.start_flow(spec);
  }
  const auto ramp_end = std::chrono::steady_clock::now();

  // Measurement window: M short flows staggered 1 ms apart; each start and
  // each completion recomputes against the full steady-state backdrop.
  int completed = 0;
  for (int i = 0; i < churn; ++i) {
    const auto [src, dst] = random_pair();
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = Bytes{static_cast<std::int64_t>(1'000'000 +
                                                rng.below(10'000'000))};
    spec.path = fat_tree_path(topo, src, dst, rng);
    sim.at(SimTime{(i + 1) * 1'000'000LL}, [&fabric, &completed, spec] {
      fabric.start_flow(spec, [&completed](net::FlowId, SimTime) {
        ++completed;
      });
    });
  }

  const auto c0 = fabric.counters();
  const std::uint64_t started0 = fabric.flows_started();
  const auto window_begin = std::chrono::steady_clock::now();
  while (completed < churn && sim.queue().run_one()) {
  }
  const auto window_end = std::chrono::steady_clock::now();
  const auto c1 = fabric.counters();

  CellResult r;
  r.events = (fabric.flows_started() - started0) +
             (c1.completion_events - c0.completion_events);
  const auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(window_end -
                                                           window_begin)
          .count());
  r.wall_ns_per_event = r.events ? wall_ns / static_cast<double>(r.events) : 0;
  r.recomputes = c1.recomputes - c0.recomputes;
  r.links_touched = c1.links_touched - c0.links_touched;
  r.ramp_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                  ramp_end - ramp_begin)
                  .count() /
              1000.0;
  r.window_ms = wall_ns / 1e6;
  return r;
  // The N long flows are dropped untimed with the fabric.
}

/// Medians out machine noise: the cell is run `reps` times (the seed makes
/// every run identical, so event counts and counters agree) and the run
/// with the median window time is reported.
CellResult run_cell_median(const Topology& topo, RateEngine engine,
                           std::size_t concurrent, int churn,
                           std::uint64_t seed, int reps) {
  std::vector<CellResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(run_cell(topo, engine, concurrent, churn, seed));
  }
  std::sort(runs.begin(), runs.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.wall_ns_per_event < b.wall_ns_per_event;
            });
  return runs[runs.size() / 2];
}

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

void emit_cell(std::FILE* out, const char* name, const CellResult& r) {
  std::fprintf(out,
               "      \"%s\": {\"wall_ns_per_event\": %.1f, \"events\": %llu, "
               "\"recomputes\": %llu, \"links_touched\": %llu, "
               "\"ramp_ms\": %.2f, \"window_ms\": %.2f}",
               name, r.wall_ns_per_event,
               static_cast<unsigned long long>(r.events),
               static_cast<unsigned long long>(r.recomputes),
               static_cast<unsigned long long>(r.links_touched), r.ramp_ms,
               r.window_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fabric.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::vector<std::size_t> ks = smoke ? std::vector<std::size_t>{4}
                                            : std::vector<std::size_t>{4, 8};
  const std::vector<std::size_t> flow_counts =
      smoke ? std::vector<std::size_t>{100, 300}
            : std::vector<std::size_t>{100, 500, 1000, 2000, 5000};
  const int churn = smoke ? 40 : 200;
  const int reps = 3;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fabric_scaling\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n  \"churn_events\": %d,\n",
               smoke ? "true" : "false", churn);
  std::fprintf(out, "  \"reps_per_cell\": %d,\n", reps);
  std::fprintf(out, "  \"cells\": [\n");

  std::printf("%-14s %8s | %14s %14s | %8s\n", "topology", "flows",
              "full ns/ev", "incr ns/ev", "speedup");
  bool first = true;
  for (const std::size_t k : ks) {
    net::FatTreeConfig cfg;
    cfg.k = k;
    const Topology topo = net::make_fat_tree(cfg);
    const std::string label = "fat_tree_k" + std::to_string(k);
    for (const std::size_t n : flow_counts) {
      const CellResult inc =
          run_cell_median(topo, RateEngine::kIncremental, n, churn, 7, reps);
      const CellResult full =
          run_cell_median(topo, RateEngine::kFullRecompute, n, churn, 7, reps);
      const double speedup =
          inc.wall_ns_per_event > 0.0
              ? full.wall_ns_per_event / inc.wall_ns_per_event
              : 0.0;
      std::printf("%-14s %8zu | %14.0f %14.0f | %7.1fx\n", label.c_str(), n,
                  full.wall_ns_per_event, inc.wall_ns_per_event, speedup);
      std::fflush(stdout);

      if (!first) std::fprintf(out, ",\n");
      first = false;
      std::fprintf(out,
                   "    {\"topology\": \"%s\", \"k\": %zu, \"flows\": %zu,\n",
                   label.c_str(), k, n);
      emit_cell(out, "full", full);
      std::fprintf(out, ",\n");
      emit_cell(out, "incremental", inc);
      std::fprintf(out, ",\n      \"speedup\": %.2f,\n", speedup);
      std::fprintf(out, "      \"peak_rss_kb\": %ld}", peak_rss_kb());
    }
  }
  std::fprintf(out, "\n  ],\n  \"peak_rss_kb\": %ld\n}\n", peak_rss_kb());
  std::fclose(out);
  std::printf("wrote %s (peak RSS %ld KiB)\n", out_path.c_str(),
              peak_rss_kb());
  return 0;
}
