#include "sdn/controller.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::sdn {

Controller::Controller(sim::Simulation& sim, net::Fabric& fabric,
                       const net::Topology& topo, ControllerConfig cfg)
    : sim_(&sim),
      fabric_(&fabric),
      topo_(&topo),
      cfg_(cfg),
      // Lazy: pairs Yen-compute on first query, so warehouse-scale
      // topologies don't pay the full cold build at startup. Behaviorally
      // identical to eager (per-pair results are pure in topology + banned
      // set); proven byte-identical by tests/net/test_routing_lazy.cpp.
      routing_(topo, cfg.k_paths, net::BuildMode::kLazy),
      ecmp_(routing_),
      snapshot_load_bps_(topo.link_count(), 0.0),
      snapshot_shuffle_bps_(topo.link_count(), 0.0),
      flow_mod_channel_(sim, "sdn.flow_mod", cfg.flow_mod_channel) {}

void Controller::refresh_snapshot_if_stale() const {
  const util::SimTime now = sim_->now();
  if (snapshot_at_.ns() >= 0 && now - snapshot_at_ < cfg_.link_stats_period) {
    return;
  }
  for (std::size_t l = 0; l < snapshot_load_bps_.size(); ++l) {
    const net::LinkId id{static_cast<std::uint32_t>(l)};
    snapshot_load_bps_[l] =
        fabric_->link_cbr_load(id).bps() + fabric_->link_elastic_rate(id).bps();
    snapshot_shuffle_bps_[l] =
        fabric_->link_class_rate(id, net::FlowClass::kShuffle).bps();
  }
  snapshot_at_ = now;
  ++stats_refreshes_;
}

util::BitsPerSec Controller::snapshot_load(net::LinkId l) const {
  refresh_snapshot_if_stale();
  return util::BitsPerSec{snapshot_load_bps_[l.value()]};
}

util::BitsPerSec Controller::snapshot_background_load(net::LinkId l) const {
  refresh_snapshot_if_stale();
  return util::BitsPerSec{std::max(
      0.0, snapshot_load_bps_[l.value()] - snapshot_shuffle_bps_[l.value()])};
}

util::BitsPerSec Controller::snapshot_available(net::LinkId l) const {
  refresh_snapshot_if_stale();
  const double cap = topo_->link(l).capacity.bps();
  return util::BitsPerSec{std::max(0.0, cap - snapshot_load_bps_[l.value()])};
}

double Controller::snapshot_utilization(net::LinkId l) const {
  refresh_snapshot_if_stale();
  const double cap = topo_->link(l).capacity.bps();
  return std::clamp(snapshot_load_bps_[l.value()] / cap, 0.0, 1.0);
}

util::BitsPerSec Controller::snapshot_path_available(
    const net::Path& path) const {
  double avail = std::numeric_limits<double>::infinity();
  for (net::LinkId l : path.links) {
    avail = std::min(avail, snapshot_available(l).bps());
  }
  return util::BitsPerSec{std::isfinite(avail) ? avail : 0.0};
}

const net::Path& Controller::resolve(net::NodeId src_host,
                                     net::NodeId dst_host,
                                     const net::FiveTuple& tuple) const {
  if (const PathRule* rule = active_rule(src_host, dst_host)) {
    return *rule->path;
  }
  if (const net::Path* rack = compose_rack_path(src_host, dst_host)) {
    return *rack;
  }
  return ecmp_.select(src_host, dst_host, tuple);
}

void Controller::install_rack_path(int src_rack, int dst_rack,
                                   net::Path chain) {
  assert(src_rack >= 0 && dst_rack >= 0 && src_rack != dst_rack);
  const std::uint64_t key = rack_key(src_rack, dst_rack);
  const util::SimTime now = sim_->now();

  for (net::LinkId l : chain.links) {
    if (failed_links_.contains(l)) return;  // stale request, see install_path
  }
  PendingRackRule pending;
  pending.src_rack = src_rack;
  pending.dst_rack = dst_rack;
  pending.chain = std::move(chain);
  pending.active_at = now + cfg_.rule_install_latency;
  // One wildcard flow-mod per switch on the chain plus the source ToR —
  // this rule covers *every* server pair between the racks.
  std::uint64_t mods = 0;
  for (net::LinkId l : pending.chain.links) {
    if (topo_->node(topo_->link(l).src).kind == net::NodeKind::kSwitch) {
      ++mods;
    }
  }
  flow_mods_ += std::max<std::uint64_t>(mods, 1);
  ++rules_installed_;
  rack_rules_[key] = std::move(pending);
  rack_path_cache_.clear();  // composed paths may change

  sim_->after(cfg_.rule_install_latency,
              [this, key] { activate_rack_rule(key); });
}

void Controller::activate_rack_rule(std::uint64_t key) {
  auto it = rack_rules_.find(key);
  if (it == rack_rules_.end()) return;
  PendingRackRule& pending = it->second;
  if (sim_->now() < pending.active_at) return;  // superseded install
  pending.active = true;
  rack_path_cache_.clear();

  if (cfg_.reroute_active_flows_on_install) {
    for (net::FlowId fid : fabric_->active_flows()) {
      const net::Flow& f = fabric_->flow(fid);
      if (f.spec.cls != net::FlowClass::kShuffle) continue;
      if (topo_->node(f.spec.src).rack != pending.src_rack ||
          topo_->node(f.spec.dst).rack != pending.dst_rack) {
        continue;
      }
      if (active_rule(f.spec.src, f.spec.dst) != nullptr) continue;
      if (const net::Path* p = compose_rack_path(f.spec.src, f.spec.dst)) {
        if (f.spec.path != p->links) fabric_->reroute_flow(fid, p->links);
      }
    }
  }
}

const net::Path* Controller::active_rack_chain(int src_rack,
                                               int dst_rack) const {
  const auto it = rack_rules_.find(rack_key(src_rack, dst_rack));
  if (it == rack_rules_.end() || !it->second.active) return nullptr;
  return &it->second.chain;
}

const net::Path* Controller::compose_rack_path(net::NodeId src_host,
                                               net::NodeId dst_host) const {
  const int src_rack = topo_->node(src_host).rack;
  const int dst_rack = topo_->node(dst_host).rack;
  if (src_rack < 0 || dst_rack < 0 || src_rack == dst_rack) return nullptr;
  const net::Path* chain = active_rack_chain(src_rack, dst_rack);
  if (chain == nullptr || chain->links.empty()) return nullptr;

  const std::uint64_t key = pair_key(src_host, dst_host);
  if (const auto cached = rack_path_cache_.find(key);
      cached != rack_path_cache_.end()) {
    return &cached->second;
  }
  // host -> ToR access link, the chain, ToR -> host access link.
  const auto& up = topo_->out_links(src_host);
  assert(up.size() == 1 && "hosts are single-homed in the builders");
  const net::NodeId dst_tor = topo_->link(chain->links.back()).dst;
  const auto down = topo_->find_link(dst_tor, dst_host);
  if (!down.has_value()) return nullptr;  // chain ends at the wrong ToR

  net::Path full;
  full.links.reserve(chain->links.size() + 2);
  full.links.push_back(up.front());
  full.links.insert(full.links.end(), chain->links.begin(),
                    chain->links.end());
  full.links.push_back(*down);
  if (!topo_->validate_path(src_host, dst_host, full.links)) return nullptr;
  auto [slot, _] = rack_path_cache_.emplace(key, std::move(full));
  return &slot->second;
}

std::uint64_t Controller::switch_hops(const net::Path& path) const {
  std::uint64_t hops = 0;
  for (net::LinkId l : path.links) {
    if (topo_->node(topo_->link(l).src).kind == net::NodeKind::kSwitch) {
      ++hops;
    }
  }
  return hops;
}

Controller::RuleMap::iterator Controller::erase_rule(RuleMap::iterator it) {
  for (net::LinkId l : it->second.rule.path->links) {
    const net::NodeId sw = topo_->link(l).src;
    if (topo_->node(sw).kind != net::NodeKind::kSwitch) continue;
    const auto occ = table_occupancy_.find(sw.value());
    if (occ != table_occupancy_.end() && occ->second > 0) --occ->second;
  }
  return rules_.erase(it);
}

std::size_t Controller::table_occupancy(net::NodeId switch_node) const {
  const auto it = table_occupancy_.find(switch_node.value());
  return it == table_occupancy_.end() ? 0 : it->second;
}

bool Controller::admit_to_tables(const net::Path& path,
                                 util::Bytes volume_hint) {
  if (cfg_.flow_table_capacity == 0) return true;
  for (net::LinkId l : path.links) {
    const net::NodeId sw = topo_->link(l).src;
    if (topo_->node(sw).kind != net::NodeKind::kSwitch) continue;
    while (table_occupancy_[sw.value()] >= cfg_.flow_table_capacity) {
      // Evict the smallest-volume rule holding an entry on this switch — but
      // only if the newcomer is strictly larger; otherwise refuse it.
      auto victim = rules_.end();
      // pythia-lint: allow(unordered-iter) min scan with a total-order key
      // tie-break; the victim is unique whatever the visit order
      for (auto it = rules_.begin(); it != rules_.end(); ++it) {
        const auto& links = it->second.rule.path->links;
        const bool occupies =
            std::any_of(links.begin(), links.end(), [&](net::LinkId rl) {
              return topo_->link(rl).src == sw;
            });
        if (!occupies) continue;
        if (victim == rules_.end() ||
            it->second.volume_hint < victim->second.volume_hint ||
            (it->second.volume_hint == victim->second.volume_hint &&
             it->first < victim->first)) {
          victim = it;
        }
      }
      if (victim == rules_.end() || victim->second.volume_hint >= volume_hint) {
        ++table_rejects_;
        return false;
      }
      ++evictions_;
      // The victim's install attempt may still be deferred in an open batch;
      // serially it was attempted at its own install time, before this
      // eviction. Flush first so the attempt (and every deferred one before
      // it, in insertion order) happens exactly as the serial arm did it —
      // erasing an unattempted rule would drop its counters and RNG draws.
      if (batch_open_) {
        const std::uint64_t vkey = victim->first;
        if (std::any_of(batch_pending_.begin(), batch_pending_.end(),
                        [vkey](const auto& p) { return p.first == vkey; })) {
          flush_install_batch();
          victim = rules_.find(vkey);
          if (victim == rules_.end()) continue;  // flushed away; rescan
        }
      }
      erase_rule(victim);
    }
  }
  return true;
}

bool Controller::install_path(net::NodeId src_host, net::NodeId dst_host,
                              net::Path path, util::Bytes volume_hint) {
  // Interning is idempotent: a path already known to the pool (the common
  // case — candidates come from the routing table) resolves to its id
  // without copying.
  return install_path_id(src_host, dst_host, routing_.intern(std::move(path)),
                         volume_hint);
}

bool Controller::install_path_id(net::NodeId src_host, net::NodeId dst_host,
                                 net::PathId path_id,
                                 util::Bytes volume_hint,
                                 std::uint64_t intent_weight) {
  const net::Path& path = routing_.path(path_id);
  assert(topo_->validate_path(src_host, dst_host, path.links));
  // Refuse rules over failed links: the requester is working from stale
  // state; traffic stays on ECMP over the rebuilt routing graph instead.
  for (net::LinkId l : path.links) {
    if (failed_links_.contains(l)) return false;
  }
  const std::uint64_t key = pair_key(src_host, dst_host);
  const util::SimTime now = sim_->now();

  // A re-install supersedes any previous rule for the pair (and releases its
  // table entries before the admission check). If the superseded rule's
  // install attempt is still deferred in an open batch, flush the batch
  // first — the serial order is "attempt old rule, then install new rule",
  // and skipping the old attempt would shift every later RNG draw.
  if (batch_open_ &&
      std::any_of(batch_pending_.begin(), batch_pending_.end(),
                  [key](const auto& p) { return p.first == key; })) {
    flush_install_batch();
  }
  if (auto existing = rules_.find(key); existing != rules_.end()) {
    erase_rule(existing);
  }
  if (!admit_to_tables(path, volume_hint)) {
    table_reject_intents_ += intent_weight;
    return false;
  }

  PendingRule pending;
  pending.rule = PathRule{src_host, dst_host, path_id, &path, now,
                          now + cfg_.rule_install_latency};
  pending.active = false;
  pending.volume_hint = volume_hint;
  pending.epoch = ++install_epoch_;
  pending.intent_weight = intent_weight;
  for (net::LinkId l : path.links) {
    const net::NodeId sw = topo_->link(l).src;
    if (topo_->node(sw).kind == net::NodeKind::kSwitch) {
      ++table_occupancy_[sw.value()];
    }
  }
  ++rules_installed_;
  const std::uint64_t epoch = pending.epoch;
  rules_[key] = std::move(pending);
  if (batch_open_) {
    batch_pending_.emplace_back(key, epoch);
  } else {
    attempt_install(key);
  }
  return true;
}

void Controller::begin_install_batch() {
  assert(!batch_open_);
  batch_open_ = true;
}

void Controller::flush_install_batch() {
  for (std::size_t i = 0; i < batch_pending_.size(); ++i) {
    const auto [key, epoch] = batch_pending_[i];
    const auto it = rules_.find(key);
    // Superseded or removed while deferred: its replacement carries its own
    // batch entry (or was installed unbatched after a flush).
    if (it == rules_.end() || it->second.epoch != epoch) continue;
    attempt_install(key);
  }
  batch_pending_.clear();
}

void Controller::commit_install_batch() {
  assert(batch_open_);
  flush_install_batch();
  batch_open_ = false;
}

void Controller::attempt_install(std::uint64_t key) {
  auto it = rules_.find(key);
  if (it == rules_.end()) return;
  PendingRule& pending = it->second;
  const std::uint64_t epoch = pending.epoch;
  const std::size_t attempt = pending.attempt;
  ++install_attempts_;
  install_attempt_intents_ += pending.intent_weight;

  if (cfg_.install_reject_probability > 0.0 &&
      sim_->rng("sdn.install").uniform01() < cfg_.install_reject_probability) {
    ++install_rejects_;
    install_reject_intents_ += pending.intent_weight;
    fail_attempt(key);
    return;
  }

  // One flow-mod per switch hop, re-sent on every attempt.
  flow_mods_ += std::max<std::uint64_t>(switch_hops(*pending.rule.path), 1);
  flow_mod_channel_.send([this, key, epoch, attempt] {
    auto cur = rules_.find(key);
    if (cur == rules_.end() || cur->second.epoch != epoch ||
        cur->second.attempt != attempt || cur->second.confirmed) {
      return;  // superseded, removed, or a duplicate delivery
    }
    cur->second.confirmed = true;
    cur->second.rule.active_at = sim_->now() + cfg_.rule_install_latency;
    sim_->after(cfg_.rule_install_latency,
                [this, key, epoch] { activate_rule(key, epoch); });
  });

  if (!flow_mod_channel_.transparent()) {
    // Lost-flow-mod detection: if the switch has not confirmed by the
    // timeout, declare the message lost and retry. (Skipped entirely for a
    // transparent channel so fault-free runs schedule no extra events.)
    sim_->after(cfg_.install_timeout, [this, key, epoch, attempt] {
      auto cur = rules_.find(key);
      if (cur == rules_.end() || cur->second.epoch != epoch ||
          cur->second.attempt != attempt || cur->second.confirmed) {
        return;
      }
      ++install_timeouts_;
      install_timeout_intents_ += cur->second.intent_weight;
      fail_attempt(key);
    });
  }
}

void Controller::fail_attempt(std::uint64_t key) {
  auto it = rules_.find(key);
  if (it == rules_.end()) return;
  PendingRule& pending = it->second;
  if (pending.attempt >= cfg_.max_install_retries) {
    ++installs_abandoned_;
    erase_rule(it);  // the aggregate stays on ECMP
    return;
  }
  ++pending.attempt;
  ++install_retries_;
  const util::Duration backoff =
      cfg_.retry_backoff * (std::int64_t{1} << (pending.attempt - 1));
  const std::uint64_t epoch = pending.epoch;
  const std::size_t attempt = pending.attempt;
  sim_->after(backoff, [this, key, epoch, attempt] {
    auto cur = rules_.find(key);
    if (cur == rules_.end() || cur->second.epoch != epoch ||
        cur->second.attempt != attempt || cur->second.confirmed) {
      return;
    }
    attempt_install(key);
  });
}

std::size_t Controller::clear_host_rules() {
  const std::size_t cleared = rules_.size();
  rules_cleared_ += cleared;
  if (cfg_.reroute_active_flows_on_install && cleared > 0) {
    // Complete the fallback: flows already steered onto rule paths go back
    // to their ECMP assignment, leaving the fabric as pure ECMP would have
    // routed it.
    for (net::FlowId fid : fabric_->active_flows()) {
      const net::Flow& f = fabric_->flow(fid);
      if (f.spec.cls != net::FlowClass::kShuffle) continue;
      const auto it = rules_.find(pair_key(f.spec.src, f.spec.dst));
      if (it == rules_.end() || !it->second.active) continue;
      if (f.spec.path != it->second.rule.path->links) continue;
      const net::Path& p = ecmp_.select(f.spec.src, f.spec.dst, f.spec.tuple);
      if (f.spec.path != p.links) fabric_->reroute_flow(fid, p.links);
    }
  }
  rules_.clear();
  table_occupancy_.clear();
  return cleared;
}

void Controller::activate_rule(std::uint64_t key, std::uint64_t epoch) {
  auto it = rules_.find(key);
  if (it == rules_.end()) return;  // removed while pending
  PendingRule& pending = it->second;
  if (pending.epoch != epoch) return;             // superseded install
  if (sim_->now() < pending.rule.active_at) return;
  pending.active = true;

  if (cfg_.reroute_active_flows_on_install) {
    // Move in-flight flows of this aggregate onto the rule's path.
    for (net::FlowId fid : fabric_->active_flows()) {
      const net::Flow& f = fabric_->flow(fid);
      if (f.spec.src == pending.rule.src_host &&
          f.spec.dst == pending.rule.dst_host &&
          f.spec.cls == net::FlowClass::kShuffle &&
          f.spec.path != pending.rule.path->links) {
        fabric_->reroute_flow(fid, pending.rule.path->links);
      }
    }
  }
  PYTHIA_LOG(kDebug, "sdn") << "rule active for pair ("
                            << pending.rule.src_host.value() << " -> "
                            << pending.rule.dst_host.value() << ")";
}

const PathRule* Controller::active_rule(net::NodeId src_host,
                                        net::NodeId dst_host) const {
  const auto it = rules_.find(pair_key(src_host, dst_host));
  if (it == rules_.end() || !it->second.active) return nullptr;
  return &it->second.rule;
}

void Controller::remove_rule(net::NodeId src_host, net::NodeId dst_host) {
  const auto it = rules_.find(pair_key(src_host, dst_host));
  if (it != rules_.end()) erase_rule(it);
}

namespace {
/// The opposite direction of a duplex cable, if present.
std::optional<net::LinkId> duplex_peer(const net::Topology& topo,
                                       net::LinkId l) {
  const auto& link = topo.link(l);
  return topo.find_link(link.dst, link.src);
}
}  // namespace

void Controller::handle_link_failure(net::LinkId l) {
  // A cable failure takes both directions down.
  std::vector<net::LinkId> down{l};
  if (const auto peer = duplex_peer(*topo_, l)) down.push_back(*peer);

  for (net::LinkId d : down) {
    if (!failed_links_.insert(d).second) continue;
    fabric_->fail_link(d);
  }
  routing_.rebuild(*topo_, failed_links_);
  ++topology_rebuilds_;

  // Purge forwarding rules (host-pair and rack wildcards) that traverse a
  // dead link; traffic falls back to ECMP over the rebuilt path set until an
  // app reinstalls.
  // pythia-lint: allow(unordered-iter) pure filter: each rule's fate depends
  // only on failed_links_, so the surviving set is order-independent
  for (auto it = rules_.begin(); it != rules_.end();) {
    const auto& path = it->second.rule.path->links;
    const bool dead = std::any_of(path.begin(), path.end(),
                                  [this](net::LinkId pl) {
                                    return failed_links_.contains(pl);
                                  });
    it = dead ? erase_rule(it) : ++it;
  }
  // pythia-lint: allow(unordered-iter) pure filter, same argument as the
  // host-pair purge above
  for (auto it = rack_rules_.begin(); it != rack_rules_.end();) {
    const auto& chain = it->second.chain.links;
    const bool dead = std::any_of(chain.begin(), chain.end(),
                                  [this](net::LinkId pl) {
                                    return failed_links_.contains(pl);
                                  });
    it = dead ? rack_rules_.erase(it) : ++it;
  }
  rack_path_cache_.clear();

  // Reroute stranded in-flight flows (their TCP connections would retransmit
  // onto the re-converged forwarding state).
  for (net::LinkId d : down) {
    for (net::FlowId fid : fabric_->flows_crossing(d)) {
      const net::Flow& f = fabric_->flow(fid);
      const auto& candidates = routing_.paths(f.spec.src, f.spec.dst);
      if (candidates.empty()) continue;  // disconnected: stays stalled
      const net::Path& p = ecmp_.select(f.spec.src, f.spec.dst, f.spec.tuple);
      fabric_->reroute_flow(fid, p.links);
    }
  }
  PYTHIA_LOG(kInfo, "sdn") << "link " << l.value()
                           << " failed; routing graph rebuilt";
}

void Controller::handle_switch_failure(net::NodeId switch_node) {
  assert(topo_->node(switch_node).kind == net::NodeKind::kSwitch);
  // Every adjacent link dies; handle_link_failure on each egress also takes
  // the ingress twin down via the duplex pairing.
  for (net::LinkId l : topo_->out_links(switch_node)) {
    handle_link_failure(l);
  }
}

void Controller::handle_switch_restore(net::NodeId switch_node) {
  assert(topo_->node(switch_node).kind == net::NodeKind::kSwitch);
  for (net::LinkId l : topo_->out_links(switch_node)) {
    handle_link_restore(l);
  }
}

void Controller::handle_link_restore(net::LinkId l) {
  std::vector<net::LinkId> up{l};
  if (const auto peer = duplex_peer(*topo_, l)) up.push_back(*peer);
  bool changed = false;
  for (net::LinkId u : up) {
    if (failed_links_.erase(u) > 0) {
      fabric_->restore_link(u);
      changed = true;
    }
  }
  if (changed) {
    routing_.rebuild(*topo_, failed_links_);
    ++topology_rebuilds_;
  }
}

void Controller::encode_state(sim::StateEncoder& enc) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(rules_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted below
  for (const auto& [key, rule] : rules_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  enc.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t key : keys) {
    const PendingRule& pr = rules_.at(key);
    enc.put_u64(key);
    // The rule's path as its link chain, not the raw pool id: interning
    // order (and therefore id values) tracks query order in the lazy
    // routing graph, while the chain is pure behavior.
    enc.put_u32(static_cast<std::uint32_t>(pr.rule.path->links.size()));
    for (net::LinkId l : pr.rule.path->links) enc.put_u32(l.value());
    enc.put_bool(pr.active);
    enc.put_bool(pr.confirmed);
    enc.put_u64(static_cast<std::uint64_t>(pr.attempt));
    enc.put_u64(pr.epoch);
    enc.put_time(pr.rule.requested_at);
    enc.put_time(pr.rule.active_at);
    enc.put_i64(pr.volume_hint.count());
    enc.put_u64(pr.intent_weight);
  }

  std::vector<std::pair<std::uint32_t, std::uint64_t>> occupancy;
  occupancy.reserve(table_occupancy_.size());
  // pythia-lint: allow(unordered-iter) pair collection only; sorted below
  for (const auto& [sw, n] : table_occupancy_) occupancy.emplace_back(sw, n);
  std::sort(occupancy.begin(), occupancy.end());
  enc.put_u32(static_cast<std::uint32_t>(occupancy.size()));
  for (const auto& [sw, n] : occupancy) {
    enc.put_u32(sw);
    enc.put_u64(n);
  }

  std::vector<std::uint64_t> rack_keys;
  rack_keys.reserve(rack_rules_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted below
  for (const auto& [key, rule] : rack_rules_) rack_keys.push_back(key);
  std::sort(rack_keys.begin(), rack_keys.end());
  enc.put_u32(static_cast<std::uint32_t>(rack_keys.size()));
  for (std::uint64_t key : rack_keys) {
    const PendingRackRule& rr = rack_rules_.at(key);
    enc.put_u64(key);
    enc.put_u32(static_cast<std::uint32_t>(rr.chain.links.size()));
    for (net::LinkId l : rr.chain.links) enc.put_u32(l.value());
    enc.put_time(rr.active_at);
    enc.put_bool(rr.active);
  }

  std::vector<std::uint32_t> failed;
  failed.reserve(failed_links_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted below
  for (net::LinkId l : failed_links_) failed.push_back(l.value());
  std::sort(failed.begin(), failed.end());
  enc.put_u32(static_cast<std::uint32_t>(failed.size()));
  for (std::uint32_t l : failed) enc.put_u32(l);

  // Sample-and-hold link-load snapshot: refreshed lazily from queries, so
  // it is genuine state (two runs that queried at different times hold
  // different images). Encoded raw — no refresh is triggered here.
  enc.put_time(snapshot_at_);
  enc.put_u64(stats_refreshes_);
  enc.put_u32(static_cast<std::uint32_t>(snapshot_load_bps_.size()));
  for (double v : snapshot_load_bps_) enc.put_f64(v);
  for (double v : snapshot_shuffle_bps_) enc.put_f64(v);

  enc.put_u64(topology_rebuilds_);
  enc.put_u64(rules_installed_);
  enc.put_u64(flow_mods_);
  enc.put_u64(install_epoch_);
  enc.put_u64(install_attempts_);
  enc.put_u64(install_rejects_);
  enc.put_u64(install_timeouts_);
  enc.put_u64(install_retries_);
  enc.put_u64(installs_abandoned_);
  enc.put_u64(evictions_);
  enc.put_u64(table_rejects_);
  enc.put_u64(rules_cleared_);
  enc.put_u64(install_attempt_intents_);
  enc.put_u64(install_reject_intents_);
  enc.put_u64(install_timeout_intents_);
  enc.put_u64(table_reject_intents_);

  // Open-batch state (empty outside a cohort drain; encoded for capture-
  // anywhere completeness).
  enc.put_bool(batch_open_);
  enc.put_u32(static_cast<std::uint32_t>(batch_pending_.size()));
  for (const auto& [key, epoch] : batch_pending_) {
    enc.put_u64(key);
    enc.put_u64(epoch);
  }

  flow_mod_channel_.encode_state(enc);
}

}  // namespace pythia::sdn
