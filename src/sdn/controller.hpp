// SDN controller substrate (the role OpenDaylight plays in the paper).
//
// Provides the services the Pythia network-scheduling plugin consumes:
//  * topology service — a RoutingGraph of k-shortest paths per host pair,
//    recomputed only on topology-change events (link failure);
//  * link-load update service — a periodically refreshed snapshot of link
//    utilization (sample-and-hold; queries between refreshes see stale data,
//    as with real controller statistics collection);
//  * forwarding-rule management — install a path for a (src-host, dst-host)
//    aggregate with a per-rule install latency (the paper budgets 3–5 ms per
//    flow installed); until a rule is active, traffic falls back to ECMP.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ecmp.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/fault_channel.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::sdn {

struct ControllerConfig {
  /// k of the k-shortest-path precomputation.
  std::size_t k_paths = 2;
  /// Latency from an install request to the rule taking effect in hardware.
  util::Duration rule_install_latency = util::Duration::millis(4);
  /// Refresh period of the link-load snapshot.
  util::Duration link_stats_period = util::Duration::seconds_i(1);
  /// When a rule activates while flows of its aggregate are in flight, move
  /// them onto the rule's path (OpenFlow rules affect subsequent packets).
  bool reroute_active_flows_on_install = true;

  // --- control-plane fault model (all off by default: installs behave as
  // the infallible function calls they were before this layer existed) ---

  /// Transit faults on the controller→switch flow-mod channel: a dropped
  /// flow-mod leaves the rule uninstalled until the install timeout detects
  /// it; delay jitter postpones activation.
  sim::FaultChannelConfig flow_mod_channel;
  /// Probability that a switch rejects an install attempt outright (table
  /// race, firmware error). The controller learns of rejects immediately and
  /// retries with backoff.
  double install_reject_probability = 0.0;
  /// Per-switch flow-table budget for host-pair rules; 0 = unbounded. A full
  /// table evicts its smallest-volume rule when the newcomer is larger,
  /// otherwise the install is refused (traffic stays on ECMP).
  std::size_t flow_table_capacity = 0;
  /// Install retry policy: additional attempts after the first, with the
  /// backoff doubling on every consecutive failure of the same rule.
  std::size_t max_install_retries = 3;
  util::Duration retry_backoff = util::Duration::millis(8);
  /// A flow-mod unconfirmed after this long is declared lost and re-sent.
  util::Duration install_timeout = util::Duration::millis(20);
};

/// A forwarding rule for a host-pair aggregate (the paper aggregates at
/// server granularity because shuffle dst ports are unknowable in advance).
/// The path is interned in the controller's routing pool: rules carry an id
/// plus a stable pointer instead of a link-vector copy, so rule bookkeeping
/// compares ids on the hot path.
struct PathRule {
  net::NodeId src_host;
  net::NodeId dst_host;
  net::PathId path_id;
  const net::Path* path = nullptr;  // pool storage, stable across rebuilds
  util::SimTime requested_at;
  util::SimTime active_at;  // requested_at + install latency
};

class Controller {
 public:
  Controller(sim::Simulation& sim, net::Fabric& fabric,
             const net::Topology& topo, ControllerConfig cfg = {});

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }
  [[nodiscard]] const net::RoutingGraph& routing() const { return routing_; }
  [[nodiscard]] const net::Topology& topology() const { return *topo_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }

  // --- link-load update service (snapshot semantics) ---

  /// Measured load (CBR + elastic) on `l` as of the last snapshot refresh.
  [[nodiscard]] util::BitsPerSec snapshot_load(net::LinkId l) const;
  /// Measured load excluding shuffle-class traffic — the paper's allocator
  /// separates the background (over-subscription) portion of link load from
  /// the application's own transfers.
  [[nodiscard]] util::BitsPerSec snapshot_background_load(net::LinkId l) const;
  /// Capacity minus snapshot load, floored at zero.
  [[nodiscard]] util::BitsPerSec snapshot_available(net::LinkId l) const;
  /// Snapshot utilization in [0, 1].
  [[nodiscard]] double snapshot_utilization(net::LinkId l) const;
  /// Minimum snapshot-available bandwidth along a path.
  [[nodiscard]] util::BitsPerSec snapshot_path_available(
      const net::Path& path) const;

  // --- forwarding ---

  /// Resolves the path a new flow between two hosts takes right now:
  /// an active rule's path if one exists, otherwise ECMP over the
  /// k-shortest-path set.
  [[nodiscard]] const net::Path& resolve(net::NodeId src_host,
                                         net::NodeId dst_host,
                                         const net::FiveTuple& tuple) const;

  /// Requests installation of `path` for the host-pair aggregate. The rule
  /// becomes active after the configured install latency; one flow-mod per
  /// switch on the path is counted toward the control-plane overhead totals.
  /// `volume_hint` (predicted aggregate bytes) drives table-full eviction:
  /// when a switch on the path has no free entry, the smallest-volume rule
  /// occupying it is evicted if the newcomer is larger. Under a faulty
  /// control plane the install may be rejected or the flow-mod lost; the
  /// controller retries with exponential backoff up to `max_install_retries`
  /// times before abandoning the rule to ECMP.
  /// Returns false when the request is refused synchronously (path over a
  /// failed link, or no admissible flow-table entry) — the caller's traffic
  /// stays on ECMP and it must not account the path as taken. A true return
  /// means the install is in flight; it can still fail asynchronously.
  bool install_path(net::NodeId src_host, net::NodeId dst_host, net::Path path,
                    util::Bytes volume_hint = util::Bytes::zero());

  /// Id-based install: the fast path for callers that already hold an
  /// interned path (allocator, Hedera, ECMP-derived ids). Identical
  /// semantics to the Path overload. `intent_weight` is the number of
  /// shuffle intents whose traffic rides on this rule (1 for unbatched
  /// callers); every install/reject/timeout outcome advances the per-intent
  /// counters by this weight so batching cannot understate the failure rate
  /// the watchdog's ECMP-fallback trigger sees.
  bool install_path_id(net::NodeId src_host, net::NodeId dst_host,
                       net::PathId path_id,
                       util::Bytes volume_hint = util::Bytes::zero(),
                       std::uint64_t intent_weight = 1);

  // --- batched rule installation (cohort pipeline fast path) ---
  //
  // Between begin_install_batch() and commit_install_batch(), every
  // install_path_id performs its synchronous work (failed-link refusal,
  // supersede, table admission, occupancy, epoch) inline but defers the
  // flow-mod send (attempt_install) to the commit, which issues all deferred
  // attempts in insertion order as one rule-table transaction. Because the
  // deferral stays within one simulation instant and preserves attempt
  // order, the RNG-draw and flow-mod sequence is identical to unbatched
  // installs — precondition: max_install_retries >= 1 (the default), so a
  // same-instant failure cannot observe the not-yet-sent state. A re-install
  // that would supersede a rule already deferred in the open batch flushes
  // the batch first, preserving the serial attempt order.

  /// Opens a batch; nestable calls are a bug (asserted).
  void begin_install_batch();
  /// Issues every deferred install attempt in order and closes the batch.
  void commit_install_batch();

  /// Interns an externally composed path (e.g. a rack chain with access
  /// links) into the routing pool so it can be passed by id.
  [[nodiscard]] net::PathId intern_path(net::Path path) {
    return routing_.intern(std::move(path));
  }
  /// Resolves an interned id to its path (stable reference).
  [[nodiscard]] const net::Path& path(net::PathId id) const {
    return routing_.path(id);
  }

  /// Active rule for a pair, if any (inactive pending rules not returned).
  [[nodiscard]] const PathRule* active_rule(net::NodeId src_host,
                                            net::NodeId dst_host) const;

  /// Removes the rule (and any pending install) for a pair.
  void remove_rule(net::NodeId src_host, net::NodeId dst_host);

  /// Drops every host-pair rule (active and pending); traffic falls back to
  /// ECMP. Used by the control-plane watchdog on degradation. Returns the
  /// number of rules removed.
  std::size_t clear_host_rules();

  /// Host-pair rule entries currently occupying `switch_node`'s flow table.
  [[nodiscard]] std::size_t table_occupancy(net::NodeId switch_node) const;

  // --- rack-granularity wildcard rules (paper §IV: forwarding-state
  // conservation — "large-scale future SDN setups may force routing at the
  // level of server aggregations, e.g. racks or PODs"; one wildcard rule per
  // switch covers every server pair between the racks) ---

  /// Installs an inter-rack chain (ToR-to-ToR link sequence) for all traffic
  /// from `src_rack` to `dst_rack`. Subject to the same install latency.
  void install_rack_path(int src_rack, int dst_rack, net::Path chain);
  /// Active chain for a rack pair, if any.
  [[nodiscard]] const net::Path* active_rack_chain(int src_rack,
                                                   int dst_rack) const;

  // --- topology-update service (paper §IV: "the routing graph is updated
  // at the event of link or switch failure") ---

  /// Handles a physical link failure: fails the duplex peer too, takes the
  /// links down in the fabric, rebuilds the routing graph without them,
  /// purges rules that traversed them, and reroutes stranded in-flight
  /// flows onto surviving paths (ECMP over the rebuilt graph).
  void handle_link_failure(net::LinkId l);
  /// Reverts a failure: restores the links and rebuilds the routing graph.
  void handle_link_restore(net::LinkId l);
  /// Whole-switch failure: every link touching the switch goes down.
  void handle_switch_failure(net::NodeId switch_node);
  /// Reverts a switch failure.
  void handle_switch_restore(net::NodeId switch_node);
  [[nodiscard]] const std::unordered_set<net::LinkId>& failed_links() const {
    return failed_links_;
  }
  [[nodiscard]] std::uint64_t topology_rebuilds() const {
    return topology_rebuilds_;
  }

  // --- overhead accounting (Section V-C table) ---
  [[nodiscard]] std::uint64_t rules_installed() const {
    return rules_installed_;
  }
  [[nodiscard]] std::uint64_t flow_mod_messages() const {
    return flow_mods_;
  }
  [[nodiscard]] std::uint64_t stats_refreshes() const {
    return stats_refreshes_;
  }

  // --- control-plane health accounting (watchdog inputs + bench output) ---
  [[nodiscard]] std::uint64_t install_attempts() const {
    return install_attempts_;
  }
  [[nodiscard]] std::uint64_t install_rejects() const {
    return install_rejects_;
  }
  [[nodiscard]] std::uint64_t install_timeouts() const {
    return install_timeouts_;
  }
  /// Attempt-level failures (rejects + lost flow-mods).
  [[nodiscard]] std::uint64_t install_failures() const {
    return install_rejects_ + install_timeouts_;
  }
  [[nodiscard]] std::uint64_t install_retries() const {
    return install_retries_;
  }
  /// Rules given up on after exhausting retries (left to ECMP).
  [[nodiscard]] std::uint64_t installs_abandoned() const {
    return installs_abandoned_;
  }
  [[nodiscard]] std::uint64_t table_evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t table_rejects() const { return table_rejects_; }

  // --- per-intent outcome accounting (batching-aware failure rates): the
  // attempt-level counters above advance once per rule operation regardless
  // of how many intents were coalesced onto the rule; these advance by the
  // rule's intent weight, so a refused batch of 30 intents weighs 30 times
  // a refused single-intent rule ---
  [[nodiscard]] std::uint64_t install_attempt_intents() const {
    return install_attempt_intents_;
  }
  [[nodiscard]] std::uint64_t install_reject_intents() const {
    return install_reject_intents_;
  }
  [[nodiscard]] std::uint64_t install_timeout_intents() const {
    return install_timeout_intents_;
  }
  /// Attempt-level failures weighted by intents (rejects + lost flow-mods).
  [[nodiscard]] std::uint64_t install_failure_intents() const {
    return install_reject_intents_ + install_timeout_intents_;
  }
  [[nodiscard]] std::uint64_t table_reject_intents() const {
    return table_reject_intents_;
  }

  [[nodiscard]] std::uint64_t rules_cleared() const { return rules_cleared_; }
  [[nodiscard]] const sim::FaultChannel& flow_mod_channel() const {
    return flow_mod_channel_;
  }

  /// Serializes the controller's logical state for snapshots: host-pair and
  /// rack rules (sorted by key) with their install/retry progress, table
  /// occupancy, failed links, the link-load snapshot, all counters, and the
  /// flow-mod fault channel's state.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  [[nodiscard]] static std::uint64_t pair_key(net::NodeId a, net::NodeId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
  void refresh_snapshot_if_stale() const;
  void activate_rule(std::uint64_t key, std::uint64_t epoch);

  // pythia-lint: allow(snapshot-skip, group) wiring and config identity,
  // re-created from the fingerprinted scenario; routing_ snapshots itself
  // (its own encode_state section) and ecmp_ is a stateless view of it.
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  const net::Topology* topo_;
  ControllerConfig cfg_;
  net::RoutingGraph routing_;
  net::EcmpSelector ecmp_;

  struct PendingRule {
    PathRule rule;
    bool active = false;
    /// Flow-mod acknowledged by the switch (activation latency running).
    bool confirmed = false;
    util::Bytes volume_hint;
    std::size_t attempt = 0;
    /// Monotone install generation; stale channel/timer callbacks carry the
    /// epoch they were issued under and bail on mismatch.
    std::uint64_t epoch = 0;
    /// Shuffle intents riding on this rule (per-intent outcome weighting).
    std::uint64_t intent_weight = 1;
  };
  using RuleMap = std::unordered_map<std::uint64_t, PendingRule>;
  RuleMap rules_;

  /// Number of switch hops on a host-pair path (= flow-mods per attempt and
  /// table entries the rule occupies).
  [[nodiscard]] std::uint64_t switch_hops(const net::Path& path) const;
  /// Frees a switch entry per hop, then erases; all rule removal funnels
  /// through here so `table_occupancy_` never drifts.
  RuleMap::iterator erase_rule(RuleMap::iterator it);
  /// Makes room on every switch along `path` (evicting smaller rules) or
  /// refuses; no-op when flow_table_capacity == 0.
  [[nodiscard]] bool admit_to_tables(const net::Path& path,
                                     util::Bytes volume_hint);
  void attempt_install(std::uint64_t key);
  /// Backoff-retries the keyed rule, or abandons it after max retries.
  void fail_attempt(std::uint64_t key);
  /// Issues deferred batch attempts in insertion order; leaves the batch
  /// open (commit closes it; a mid-batch supersede flushes through here).
  void flush_install_batch();
  std::unordered_map<std::uint32_t, std::size_t> table_occupancy_;

  struct PendingRackRule {
    int src_rack = -1;
    int dst_rack = -1;
    net::Path chain;
    util::SimTime active_at;
    bool active = false;
  };
  [[nodiscard]] static std::uint64_t rack_key(int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  void activate_rack_rule(std::uint64_t key);
  /// Composes host access links around a rack chain; cached per host pair.
  [[nodiscard]] const net::Path* compose_rack_path(net::NodeId src_host,
                                                   net::NodeId dst_host) const;
  std::unordered_map<std::uint64_t, PendingRackRule> rack_rules_;
  // pythia-lint: allow(snapshot-skip) memoization of compose_rack_path():
  // every entry is a pure function of the routing graph, so a cold cache
  // after restore recomputes byte-identical paths.
  mutable std::unordered_map<std::uint64_t, net::Path> rack_path_cache_;

  mutable std::vector<double> snapshot_load_bps_;
  mutable std::vector<double> snapshot_shuffle_bps_;
  mutable util::SimTime snapshot_at_ = util::SimTime{-1};
  mutable std::uint64_t stats_refreshes_ = 0;

  std::unordered_set<net::LinkId> failed_links_;
  std::uint64_t topology_rebuilds_ = 0;

  std::uint64_t rules_installed_ = 0;
  std::uint64_t flow_mods_ = 0;

  sim::FaultChannel flow_mod_channel_;
  std::uint64_t install_epoch_ = 0;
  std::uint64_t install_attempts_ = 0;
  std::uint64_t install_rejects_ = 0;
  std::uint64_t install_timeouts_ = 0;
  std::uint64_t install_retries_ = 0;
  std::uint64_t installs_abandoned_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t table_rejects_ = 0;
  std::uint64_t rules_cleared_ = 0;
  std::uint64_t install_attempt_intents_ = 0;
  std::uint64_t install_reject_intents_ = 0;
  std::uint64_t install_timeout_intents_ = 0;
  std::uint64_t table_reject_intents_ = 0;

  /// Open install batch: deferred (key, epoch) attempts in insertion order.
  bool batch_open_ = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch_pending_;
};

}  // namespace pythia::sdn
