// SDN controller substrate (the role OpenDaylight plays in the paper).
//
// Provides the services the Pythia network-scheduling plugin consumes:
//  * topology service — a RoutingGraph of k-shortest paths per host pair,
//    recomputed only on topology-change events (link failure);
//  * link-load update service — a periodically refreshed snapshot of link
//    utilization (sample-and-hold; queries between refreshes see stale data,
//    as with real controller statistics collection);
//  * forwarding-rule management — install a path for a (src-host, dst-host)
//    aggregate with a per-rule install latency (the paper budgets 3–5 ms per
//    flow installed); until a rule is active, traffic falls back to ECMP.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ecmp.hpp"
#include "net/fabric.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"

namespace pythia::sdn {

struct ControllerConfig {
  /// k of the k-shortest-path precomputation.
  std::size_t k_paths = 2;
  /// Latency from an install request to the rule taking effect in hardware.
  util::Duration rule_install_latency = util::Duration::millis(4);
  /// Refresh period of the link-load snapshot.
  util::Duration link_stats_period = util::Duration::seconds_i(1);
  /// When a rule activates while flows of its aggregate are in flight, move
  /// them onto the rule's path (OpenFlow rules affect subsequent packets).
  bool reroute_active_flows_on_install = true;
};

/// A forwarding rule for a host-pair aggregate (the paper aggregates at
/// server granularity because shuffle dst ports are unknowable in advance).
struct PathRule {
  net::NodeId src_host;
  net::NodeId dst_host;
  net::Path path;
  util::SimTime requested_at;
  util::SimTime active_at;  // requested_at + install latency
};

class Controller {
 public:
  Controller(sim::Simulation& sim, net::Fabric& fabric,
             const net::Topology& topo, ControllerConfig cfg = {});

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }
  [[nodiscard]] const net::RoutingGraph& routing() const { return routing_; }
  [[nodiscard]] const net::Topology& topology() const { return *topo_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }

  // --- link-load update service (snapshot semantics) ---

  /// Measured load (CBR + elastic) on `l` as of the last snapshot refresh.
  [[nodiscard]] util::BitsPerSec snapshot_load(net::LinkId l) const;
  /// Measured load excluding shuffle-class traffic — the paper's allocator
  /// separates the background (over-subscription) portion of link load from
  /// the application's own transfers.
  [[nodiscard]] util::BitsPerSec snapshot_background_load(net::LinkId l) const;
  /// Capacity minus snapshot load, floored at zero.
  [[nodiscard]] util::BitsPerSec snapshot_available(net::LinkId l) const;
  /// Snapshot utilization in [0, 1].
  [[nodiscard]] double snapshot_utilization(net::LinkId l) const;
  /// Minimum snapshot-available bandwidth along a path.
  [[nodiscard]] util::BitsPerSec snapshot_path_available(
      const net::Path& path) const;

  // --- forwarding ---

  /// Resolves the path a new flow between two hosts takes right now:
  /// an active rule's path if one exists, otherwise ECMP over the
  /// k-shortest-path set.
  [[nodiscard]] const net::Path& resolve(net::NodeId src_host,
                                         net::NodeId dst_host,
                                         const net::FiveTuple& tuple) const;

  /// Requests installation of `path` for the host-pair aggregate. The rule
  /// becomes active after the configured install latency; one flow-mod per
  /// switch on the path is counted toward the control-plane overhead totals.
  void install_path(net::NodeId src_host, net::NodeId dst_host,
                    net::Path path);

  /// Active rule for a pair, if any (inactive pending rules not returned).
  [[nodiscard]] const PathRule* active_rule(net::NodeId src_host,
                                            net::NodeId dst_host) const;

  /// Removes the rule (and any pending install) for a pair.
  void remove_rule(net::NodeId src_host, net::NodeId dst_host);

  // --- rack-granularity wildcard rules (paper §IV: forwarding-state
  // conservation — "large-scale future SDN setups may force routing at the
  // level of server aggregations, e.g. racks or PODs"; one wildcard rule per
  // switch covers every server pair between the racks) ---

  /// Installs an inter-rack chain (ToR-to-ToR link sequence) for all traffic
  /// from `src_rack` to `dst_rack`. Subject to the same install latency.
  void install_rack_path(int src_rack, int dst_rack, net::Path chain);
  /// Active chain for a rack pair, if any.
  [[nodiscard]] const net::Path* active_rack_chain(int src_rack,
                                                   int dst_rack) const;

  // --- topology-update service (paper §IV: "the routing graph is updated
  // at the event of link or switch failure") ---

  /// Handles a physical link failure: fails the duplex peer too, takes the
  /// links down in the fabric, rebuilds the routing graph without them,
  /// purges rules that traversed them, and reroutes stranded in-flight
  /// flows onto surviving paths (ECMP over the rebuilt graph).
  void handle_link_failure(net::LinkId l);
  /// Reverts a failure: restores the links and rebuilds the routing graph.
  void handle_link_restore(net::LinkId l);
  /// Whole-switch failure: every link touching the switch goes down.
  void handle_switch_failure(net::NodeId switch_node);
  /// Reverts a switch failure.
  void handle_switch_restore(net::NodeId switch_node);
  [[nodiscard]] const std::unordered_set<net::LinkId>& failed_links() const {
    return failed_links_;
  }
  [[nodiscard]] std::uint64_t topology_rebuilds() const {
    return topology_rebuilds_;
  }

  // --- overhead accounting (Section V-C table) ---
  [[nodiscard]] std::uint64_t rules_installed() const {
    return rules_installed_;
  }
  [[nodiscard]] std::uint64_t flow_mod_messages() const {
    return flow_mods_;
  }
  [[nodiscard]] std::uint64_t stats_refreshes() const {
    return stats_refreshes_;
  }

 private:
  [[nodiscard]] static std::uint64_t pair_key(net::NodeId a, net::NodeId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
  void refresh_snapshot_if_stale() const;
  void activate_rule(std::uint64_t key);

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  const net::Topology* topo_;
  ControllerConfig cfg_;
  net::RoutingGraph routing_;
  net::EcmpSelector ecmp_;

  struct PendingRule {
    PathRule rule;
    bool active = false;
  };
  std::unordered_map<std::uint64_t, PendingRule> rules_;

  struct PendingRackRule {
    int src_rack = -1;
    int dst_rack = -1;
    net::Path chain;
    util::SimTime active_at;
    bool active = false;
  };
  [[nodiscard]] static std::uint64_t rack_key(int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  void activate_rack_rule(std::uint64_t key);
  /// Composes host access links around a rack chain; cached per host pair.
  [[nodiscard]] const net::Path* compose_rack_path(net::NodeId src_host,
                                                   net::NodeId dst_host) const;
  std::unordered_map<std::uint64_t, PendingRackRule> rack_rules_;
  mutable std::unordered_map<std::uint64_t, net::Path> rack_path_cache_;

  mutable std::vector<double> snapshot_load_bps_;
  mutable std::vector<double> snapshot_shuffle_bps_;
  mutable util::SimTime snapshot_at_ = util::SimTime{-1};
  mutable std::uint64_t stats_refreshes_ = 0;

  std::unordered_set<net::LinkId> failed_links_;
  std::uint64_t topology_rebuilds_ = 0;

  std::uint64_t rules_installed_ = 0;
  std::uint64_t flow_mods_ = 0;
};

}  // namespace pythia::sdn
