#include "sdn/hedera_app.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/log.hpp"

namespace pythia::sdn {

HederaApp::HederaApp(Controller& controller, HederaConfig cfg)
    : controller_(&controller), cfg_(cfg) {
  controller_->fabric().add_observer(this);
}

// The fabric keeps a raw observer pointer; apps are expected to outlive the
// fabric in every harness (both live in the same experiment scope), so the
// destructor only exists to keep the vtable anchored here.
HederaApp::~HederaApp() = default;

void HederaApp::on_flow_started(const net::Fabric& fabric, net::FlowId flow,
                                util::SimTime /*at*/) {
  if (fabric.flow(flow).spec.cls != net::FlowClass::kShuffle) return;
  schedule_round();
}

void HederaApp::schedule_round() {
  if (round_pending_) return;
  round_pending_ = true;
  controller_->simulation().after(cfg_.poll_period, [this] {
    round_pending_ = false;
    run_round();
  });
}

bool HederaApp::is_elephant(const net::Flow& flow) const {
  if (flow.spec.path.empty()) return false;
  // Hedera classifies on *natural demand*, not achieved rate: the rate the
  // flow would reach were it limited only by its endpoints' NICs shared
  // fairly with the other flows using them. A flow starved by an in-network
  // bottleneck still has full demand.
  const auto& fabric = controller_->fabric();
  const auto& topo = controller_->topology();
  const net::LinkId first = flow.spec.path.front();
  const net::LinkId last = flow.spec.path.back();
  std::size_t sharing_first = 0;
  std::size_t sharing_last = 0;
  for (net::FlowId other : fabric.active_flows()) {
    const auto& of = fabric.flow(other);
    if (of.spec.path.empty()) continue;
    if (of.spec.path.front() == first) ++sharing_first;
    if (of.spec.path.back() == last) ++sharing_last;
  }
  const double demand =
      std::min(topo.link(first).capacity.bps() /
                   static_cast<double>(std::max<std::size_t>(sharing_first, 1)),
               topo.link(last).capacity.bps() /
                   static_cast<double>(std::max<std::size_t>(sharing_last, 1)));
  const double nic = topo.link(first).capacity.bps();
  return demand >= cfg_.elephant_fraction * nic;
}

void HederaApp::run_round() {
  auto& fabric = controller_->fabric();
  ++rounds_;

  // Collect active shuffle elephants, largest current demand first so the
  // greedy fit is deterministic.
  std::vector<net::FlowId> elephants;
  bool any_shuffle = false;
  for (net::FlowId fid : fabric.active_flows()) {
    const net::Flow& f = fabric.flow(fid);
    if (f.spec.cls != net::FlowClass::kShuffle) continue;
    any_shuffle = true;
    if (is_elephant(f)) elephants.push_back(fid);
  }
  std::sort(elephants.begin(), elephants.end(),
            [&](net::FlowId a, net::FlowId b) {
              const auto ra = fabric.flow(a).rate.bps();
              const auto rb = fabric.flow(b).rate.bps();
              if (ra != rb) return ra > rb;
              return a.value() < b.value();
            });

  for (net::FlowId fid : elephants) {
    const net::Flow& f = fabric.flow(fid);
    const auto candidates =
        controller_->routing().paths(f.spec.src, f.spec.dst);
    if (candidates.size() < 2) continue;
    // Pick the path with the most snapshot-available bandwidth, discounting
    // the elephant's own current contribution (otherwise a rehomed flow
    // saturates its new path and the next round bounces it back). Hedera has
    // no flow-size knowledge, only the load snapshot.
    net::PathId best;
    double best_avail = -1.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const net::Path& p = candidates[i];
      double avail = std::numeric_limits<double>::infinity();
      for (net::LinkId l : p.links) {
        const bool own = std::find(f.spec.path.begin(), f.spec.path.end(),
                                   l) != f.spec.path.end();
        const double load = controller_->snapshot_load(l).bps() -
                            (own ? f.rate.bps() : 0.0);
        const double cap = controller_->topology().link(l).capacity.bps();
        avail = std::min(avail, std::max(0.0, cap - load));
      }
      if (avail > best_avail) {
        best_avail = avail;
        best = candidates.id(i);
      }
    }
    if (best.valid() && controller_->path(best).links != f.spec.path) {
      controller_->install_path_id(f.spec.src, f.spec.dst, best);
      ++rerouted_;
      PYTHIA_LOG(kDebug, "hedera")
          << "rerouting elephant flow " << fid.value();
    }
  }

  // Keep polling while shuffle traffic remains in flight.
  if (any_shuffle) schedule_round();
}

}  // namespace pythia::sdn
