// Hedera-like load-aware flow scheduler (baseline).
//
// The paper argues (Section II) that replacing ECMP with a load-aware
// scheduler such as Hedera avoids some adversarial allocations but cannot
// exploit application semantics: it detects elephant flows only *after* they
// exceed a rate threshold, and it knows neither flow sizes nor criticality.
// This app reproduces that behaviour: it polls active flows every scheduling
// round, classifies flows whose current rate (or whose demand, when starved)
// exceeds a fraction of the host NIC rate as elephants, and greedily moves
// each elephant to the path with the most snapshot-available bandwidth.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "sdn/controller.hpp"

namespace pythia::sdn {

struct HederaConfig {
  /// Scheduling round period (Hedera's control loop runs every ~5 s).
  util::Duration poll_period = util::Duration::seconds_i(5);
  /// Elephant threshold as a fraction of the flow's first-hop link capacity
  /// (Hedera uses 10% of NIC rate).
  double elephant_fraction = 0.10;
};

class HederaApp final : public net::FabricObserver {
 public:
  HederaApp(Controller& controller, HederaConfig cfg = {});
  ~HederaApp() override;

  HederaApp(const HederaApp&) = delete;
  HederaApp& operator=(const HederaApp&) = delete;

  void on_flow_started(const net::Fabric& fabric, net::FlowId flow,
                       util::SimTime at) override;

  [[nodiscard]] std::uint64_t scheduling_rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t elephants_rerouted() const {
    return rerouted_;
  }

 private:
  void schedule_round();
  void run_round();
  [[nodiscard]] bool is_elephant(const net::Flow& flow) const;

  Controller* controller_;
  HederaConfig cfg_;
  bool round_pending_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t rerouted_ = 0;
};

}  // namespace pythia::sdn
