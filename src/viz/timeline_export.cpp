#include "viz/timeline_export.hpp"

#include "util/csv.hpp"

namespace pythia::viz {

void export_timeline_csv(const hadoop::JobResult& result,
                         const std::string& path) {
  util::CsvWriter csv(path, {"kind", "index", "src_server", "dst_server",
                             "start_s", "end_s", "bytes"});
  for (const auto& m : result.maps) {
    csv.write_row({"map", std::to_string(m.index),
                   std::to_string(m.server.value()), "",
                   std::to_string(m.started.seconds()),
                   std::to_string(m.finished.seconds()), ""});
  }
  for (const auto& r : result.reducers) {
    csv.write_row({"shuffle", std::to_string(r.index), "",
                   std::to_string(r.server.value()),
                   std::to_string(r.started.seconds()),
                   std::to_string(r.shuffle_done.seconds()),
                   std::to_string(r.shuffled.count())});
    csv.write_row({"reduce", std::to_string(r.index), "",
                   std::to_string(r.server.value()),
                   std::to_string(r.shuffle_done.seconds()),
                   std::to_string(r.finished.seconds()),
                   std::to_string(r.shuffled.count())});
  }
  for (const auto& f : result.fetches) {
    csv.write_row({f.remote ? "fetch-remote" : "fetch-local",
                   std::to_string(f.map_index) + ">" +
                       std::to_string(f.reduce_index),
                   std::to_string(f.src_server.value()),
                   std::to_string(f.dst_server.value()),
                   std::to_string(f.started.seconds()),
                   std::to_string(f.completed.seconds()),
                   std::to_string(f.payload.count())});
  }
}

void export_prediction_csv(
    const std::vector<core::PredictionPoint>& predicted,
    const std::vector<net::VolumePoint>& measured, const std::string& path) {
  util::CsvWriter csv(path, {"t_seconds", "series", "cumulative_bytes"});
  for (const auto& p : predicted) {
    csv.write_row({std::to_string(p.at.seconds()), "predicted",
                   std::to_string(p.cumulative.count())});
  }
  for (const auto& p : measured) {
    csv.write_row({std::to_string(p.at.seconds()), "measured",
                   std::to_string(p.cumulative.count())});
  }
}

}  // namespace pythia::viz
