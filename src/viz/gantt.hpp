// Sequence-diagram rendering of a job execution.
//
// The paper's Fig. 1a was produced by "a custom visualization tool we have
// developed" showing map / shuffle / reduce spans per task; this is the
// text-mode equivalent. Map spans render as '=', shuffle spans as '~',
// reduce spans as '#'.
#pragma once

#include <string>

#include "hadoop/job.hpp"

namespace pythia::viz {

struct GanttOptions {
  /// Character width of the time axis.
  std::size_t width = 96;
  /// Cap on map rows rendered (large jobs get the first N plus a summary).
  std::size_t max_map_rows = 24;
};

/// Renders the per-task execution timeline (the Fig. 1a view).
std::string render_sequence_diagram(const hadoop::JobResult& result,
                                    const GanttOptions& options = {});

/// Renders a per-reducer shuffle table: bytes received, skew vs. the mean,
/// shuffle and reduce durations.
std::string render_reducer_summary(const hadoop::JobResult& result);

/// Renders the phase summary: map phase, shuffle tail, reduce tail, total.
std::string render_phase_summary(const hadoop::JobResult& result);

}  // namespace pythia::viz
