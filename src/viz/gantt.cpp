#include "viz/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pythia::viz {

namespace {

/// Maps a time to a column in [0, width).
std::size_t column(util::SimTime t, util::SimTime t0, util::SimTime t1,
                   std::size_t width) {
  const double span = (t1 - t0).seconds();
  if (span <= 0.0) return 0;
  const double frac = (t - t0).seconds() / span;
  const auto col = static_cast<std::size_t>(frac * static_cast<double>(width));
  return std::min(col, width - 1);
}

void paint(std::string& row, std::size_t from, std::size_t to, char c) {
  for (std::size_t i = from; i <= to && i < row.size(); ++i) row[i] = c;
}

}  // namespace

std::string render_sequence_diagram(const hadoop::JobResult& result,
                                    const GanttOptions& options) {
  const util::SimTime t0 = result.submitted;
  const util::SimTime t1 = result.completed;
  const std::size_t w = std::max<std::size_t>(options.width, 10);

  std::ostringstream out;
  out << "job '" << result.name << "'  span "
      << (t1 - t0).seconds() << " s   legend: map '='  shuffle '~'  reduce '#'\n";

  const std::size_t map_rows =
      std::min(result.maps.size(), options.max_map_rows);
  for (std::size_t i = 0; i < map_rows; ++i) {
    const auto& m = result.maps[i];
    std::string row(w, ' ');
    paint(row, column(m.started, t0, t1, w), column(m.finished, t0, t1, w),
          '=');
    out << "map-" << std::setw(4) << std::setfill('0') << i << std::setfill(' ')
        << " |" << row << "|\n";
  }
  if (result.maps.size() > map_rows) {
    out << "  ... " << result.maps.size() - map_rows
        << " more map tasks elided ...\n";
  }

  for (const auto& r : result.reducers) {
    std::string row(w, ' ');
    paint(row, column(r.started, t0, t1, w),
          column(r.shuffle_done, t0, t1, w), '~');
    paint(row, column(r.shuffle_done, t0, t1, w),
          column(r.finished, t0, t1, w), '#');
    out << "red-" << std::setw(4) << std::setfill('0') << r.index
        << std::setfill(' ') << " |" << row << "|\n";
  }

  out << std::string(10, ' ') << "0s" << std::string(w - 6, ' ')
      << util::Table::num((t1 - t0).seconds(), 1) << "s\n";
  return out.str();
}

std::string render_reducer_summary(const hadoop::JobResult& result) {
  util::Table table({"reducer", "server", "shuffled", "vs mean", "shuffle",
                     "reduce"});
  const auto loads = result.reducer_load_profile();
  double mean = 0.0;
  for (double x : loads) mean += x;
  if (!loads.empty()) mean /= static_cast<double>(loads.size());

  for (const auto& r : result.reducers) {
    table.add_row({
        std::to_string(r.index),
        std::to_string(r.server.value()),
        util::format_bytes(r.shuffled),
        mean > 0.0 ? util::Table::num(r.shuffled.as_double() / mean, 2) + "x"
                   : "-",
        util::Table::seconds(r.shuffle_duration().seconds()),
        util::Table::seconds(r.reduce_duration().seconds()),
    });
  }
  return table.to_string();
}

std::string render_phase_summary(const hadoop::JobResult& result) {
  util::Table table({"phase", "ends at", "span"});
  const auto map_end = result.map_phase_end();
  const auto shuffle_end = result.shuffle_phase_end();
  table.add_row({"map", util::Table::seconds((map_end - result.submitted).seconds()),
                 util::Table::seconds((map_end - result.submitted).seconds())});
  table.add_row({"shuffle (tail)",
                 util::Table::seconds((shuffle_end - result.submitted).seconds()),
                 util::Table::seconds((shuffle_end - map_end).seconds())});
  table.add_row({"reduce (tail)",
                 util::Table::seconds((result.completed - result.submitted).seconds()),
                 util::Table::seconds((result.completed - shuffle_end).seconds())});
  return table.to_string();
}

}  // namespace pythia::viz
