// CSV export of job timelines and prediction/measurement curves, for
// plotting the paper's figures with external tooling.
#pragma once

#include <string>
#include <vector>

#include "core/prediction.hpp"
#include "hadoop/job.hpp"
#include "net/netflow.hpp"

namespace pythia::viz {

/// Writes one row per task span and per fetch: kind, index, server(s),
/// start/end seconds, bytes.
void export_timeline_csv(const hadoop::JobResult& result,
                         const std::string& path);

/// Writes the Fig. 5 data: two aligned cumulative curves (predicted and
/// NetFlow-measured) for one source server. Rows: t_seconds, series, bytes.
void export_prediction_csv(
    const std::vector<core::PredictionPoint>& predicted,
    const std::vector<net::VolumePoint>& measured, const std::string& path);

}  // namespace pythia::viz
