// Umbrella header for the Pythia library.
//
// Pulls in the full public API: the discrete-event core, the fluid network
// fabric and SDN substrate, the Hadoop MapReduce model, the Pythia
// prediction/allocation middleware, workload generators, visualization, and
// the experiment harness. Include individual module headers instead when
// compile time matters.
#pragma once

#include "core/allocator.hpp"        // IWYU pragma: export
#include "core/collector.hpp"        // IWYU pragma: export
#include "core/instrumentation.hpp"  // IWYU pragma: export
#include "core/prediction.hpp"       // IWYU pragma: export
#include "core/pythia_system.hpp"    // IWYU pragma: export
#include "core/skew_predictor.hpp"   // IWYU pragma: export
#include "experiments/scenario.hpp"  // IWYU pragma: export
#include "experiments/sweep.hpp"     // IWYU pragma: export
#include "hadoop/config.hpp"         // IWYU pragma: export
#include "hadoop/engine.hpp"         // IWYU pragma: export
#include "hadoop/job.hpp"            // IWYU pragma: export
#include "hadoop/partition.hpp"      // IWYU pragma: export
#include "net/background.hpp"        // IWYU pragma: export
#include "net/ecmp.hpp"              // IWYU pragma: export
#include "net/fabric.hpp"            // IWYU pragma: export
#include "net/netflow.hpp"           // IWYU pragma: export
#include "net/routing.hpp"           // IWYU pragma: export
#include "net/topology.hpp"          // IWYU pragma: export
#include "sdn/controller.hpp"        // IWYU pragma: export
#include "sdn/hedera_app.hpp"        // IWYU pragma: export
#include "sim/event_queue.hpp"       // IWYU pragma: export
#include "sim/simulation.hpp"        // IWYU pragma: export
#include "util/random.hpp"           // IWYU pragma: export
#include "util/stats.hpp"            // IWYU pragma: export
#include "util/table.hpp"            // IWYU pragma: export
#include "util/time.hpp"             // IWYU pragma: export
#include "util/units.hpp"            // IWYU pragma: export
#include "viz/gantt.hpp"             // IWYU pragma: export
#include "viz/timeline_export.hpp"   // IWYU pragma: export
#include "workloads/hibench.hpp"     // IWYU pragma: export
