#include "experiments/metrics.hpp"

#include <algorithm>

namespace pythia::exp {

ShuffleMetrics compute_shuffle_metrics(const hadoop::JobResult& result) {
  ShuffleMetrics m;

  util::SimTime first_fetch = util::SimTime::max();
  util::SimTime last_done = util::SimTime::zero();
  std::int64_t remote_bytes = 0;
  for (const auto& f : result.fetches) {
    m.queueing_seconds.add(f.queueing().seconds());
    m.transfer_seconds.add(f.transfer().seconds());
    if (f.remote && f.transfer().seconds() > 0.0) {
      m.goodput_bps.add(f.payload.as_double() * 8.0 /
                        f.transfer().seconds());
      remote_bytes += f.payload.count();
    }
    first_fetch = std::min(first_fetch, f.started);
  }

  util::SimTime first_shuffle_done = util::SimTime::max();
  for (const auto& r : result.reducers) {
    m.reducer_shuffle_done_seconds.add(
        (r.shuffle_done - result.submitted).seconds());
    first_shuffle_done = std::min(first_shuffle_done, r.shuffle_done);
    last_done = std::max(last_done, r.shuffle_done);
  }
  if (!result.reducers.empty()) {
    m.shuffle_spread_seconds = (last_done - first_shuffle_done).seconds();
  }
  m.reducer_volume_fairness =
      util::jain_fairness(result.reducer_load_profile());

  if (first_fetch != util::SimTime::max() && last_done > first_fetch) {
    m.aggregate_shuffle_goodput_bps =
        static_cast<double>(remote_bytes) * 8.0 /
        (last_done - first_fetch).seconds();
  }
  return m;
}

}  // namespace pythia::exp
