#include "experiments/checkpoint.hpp"

#include <utility>

namespace pythia::exp {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

void encode_fault_channel_config(const sim::FaultChannelConfig& cfg,
                                 sim::StateEncoder& enc) {
  enc.put_f64(cfg.drop_probability);
  enc.put_f64(cfg.duplicate_probability);
  enc.put_duration(cfg.base_delay);
  enc.put_duration(cfg.jitter);
  enc.put_u8(static_cast<std::uint8_t>(cfg.jitter_kind));
}

void encode_scenario_config(const ScenarioConfig& cfg,
                            sim::StateEncoder& enc) {
  enc.put_u64(cfg.seed);
  enc.put_u8(static_cast<std::uint8_t>(cfg.topology_kind));
  enc.put_u64(cfg.two_rack.servers_per_rack);
  enc.put_u64(cfg.two_rack.inter_rack_links);
  enc.put_f64(cfg.two_rack.host_link.bps());
  enc.put_f64(cfg.two_rack.inter_rack_capacity.bps());
  enc.put_u64(cfg.leaf_spine.racks);
  enc.put_u64(cfg.leaf_spine.servers_per_rack);
  enc.put_u64(cfg.leaf_spine.spines);
  enc.put_f64(cfg.leaf_spine.host_link.bps());
  enc.put_f64(cfg.leaf_spine.uplink.bps());

  enc.put_f64(cfg.background.oversubscription);
  enc.put_u32(static_cast<std::uint32_t>(cfg.background.path_intensity.size()));
  for (double v : cfg.background.path_intensity) enc.put_f64(v);

  const sdn::ControllerConfig& ctl = cfg.controller;
  enc.put_u64(ctl.k_paths);
  enc.put_duration(ctl.rule_install_latency);
  enc.put_duration(ctl.link_stats_period);
  enc.put_bool(ctl.reroute_active_flows_on_install);
  encode_fault_channel_config(ctl.flow_mod_channel, enc);
  enc.put_f64(ctl.install_reject_probability);
  enc.put_u64(ctl.flow_table_capacity);
  enc.put_u64(ctl.max_install_retries);
  enc.put_duration(ctl.retry_backoff);
  enc.put_duration(ctl.install_timeout);

  enc.put_duration(cfg.hedera.poll_period);
  enc.put_f64(cfg.hedera.elephant_fraction);

  const core::PythiaConfig& py = cfg.pythia;
  enc.put_duration(py.instrumentation.decode_delay);
  enc.put_duration(py.instrumentation.management_latency);
  enc.put_duration(py.instrumentation.extra_delay);
  encode_fault_channel_config(py.instrumentation.channel, enc);
  enc.put_f64(py.instrumentation.overhead.header_bytes_per_segment);
  enc.put_f64(py.instrumentation.overhead.assumed_mss);
  enc.put_f64(py.instrumentation.overhead.http_framing_bytes);
  enc.put_duration(py.collector.batch_window);
  enc.put_bool(py.collector.criticality_aware);
  enc.put_duration(py.collector.intent_ttl);
  enc.put_u8(static_cast<std::uint8_t>(py.collector.pipeline));
  enc.put_u64(py.collector.shard_count);
  enc.put_u64(py.collector.pod_queue_capacity);
  enc.put_f64(py.allocator.min_available_bps);
  enc.put_bool(py.allocator.load_aware);
  enc.put_u8(static_cast<std::uint8_t>(py.allocator.aggregation));
  enc.put_bool(py.weighted_flows);
  enc.put_f64(py.min_flow_weight);
  enc.put_f64(py.max_flow_weight);
  enc.put_bool(py.watchdog.enabled);
  enc.put_duration(py.watchdog.staleness_threshold);
  enc.put_f64(py.watchdog.install_failure_threshold);
  enc.put_u64(py.watchdog.min_install_samples);
  enc.put_duration(py.watchdog.failure_window);
  enc.put_duration(py.watchdog.recovery_grace);
  enc.put_u64(py.watchdog.max_fallbacks);
  enc.put_duration(cfg.flowcomb_extra_delay);

  const hadoop::ClusterConfig& cl = cfg.cluster;
  enc.put_u64(cl.map_slots_per_server);
  enc.put_u64(cl.reduce_slots_per_server);
  enc.put_f64(cl.reduce_slowstart);
  enc.put_u64(cl.parallel_copies);
  enc.put_f64(cl.local_copy_rate.bps());
  enc.put_duration(cl.fetch_setup);
  enc.put_duration(cl.completion_event_poll);
  enc.put_duration(cl.heartbeat_jitter);
  enc.put_f64(cl.straggler_probability);
  enc.put_f64(cl.straggler_slowdown);
  enc.put_f64(cl.map_failure_probability);
  enc.put_u64(cl.max_task_attempts);
  enc.put_bool(cl.speculative_execution);
  enc.put_f64(cl.speculative_slowdown_threshold);
  enc.put_bool(cl.multipath_spray);

  enc.put_u8(static_cast<std::uint8_t>(cfg.scheduler));
  enc.put_bool(cfg.enable_netflow);
  enc.put_u8(static_cast<std::uint8_t>(cfg.rate_engine));
  enc.put_bool(cfg.coalesce_cohorts);
}

void encode_job_spec(const hadoop::JobSpec& job, sim::StateEncoder& enc) {
  enc.put_string(job.name);
  enc.put_i64(job.input.count());
  enc.put_i64(job.block.count());
  enc.put_u64(job.num_maps_override);
  enc.put_u64(job.num_reducers);
  enc.put_f64(job.map_output_ratio);
  enc.put_u8(static_cast<std::uint8_t>(job.skew.kind));
  enc.put_f64(job.skew.zipf_s);
  enc.put_u32(static_cast<std::uint32_t>(job.skew.weights.size()));
  for (double w : job.skew.weights) enc.put_f64(w);
  enc.put_f64(job.mapper_output_jitter);
  enc.put_duration(job.map_overhead);
  enc.put_f64(job.map_rate.bps());
  enc.put_f64(job.map_duration_jitter);
  enc.put_duration(job.reduce_overhead);
  enc.put_f64(job.reduce_rate.bps());
  enc.put_f64(job.reduce_duration_jitter);
  enc.put_f64(job.output_ratio);
  enc.put_u64(job.dfs_replication);
}

/// One subsystem section, encoded into a named byte blob.
template <typename Fn>
void add_section(sim::Snapshot& snap, const char* name, Fn&& encode) {
  sim::StateEncoder enc;
  encode(enc);
  snap.add_section(name, enc.take());
}

}  // namespace

std::uint64_t scenario_fingerprint(const ScenarioConfig& cfg,
                                   const hadoop::JobSpec& job) {
  sim::StateEncoder enc;
  encode_scenario_config(cfg, enc);
  encode_job_spec(job, enc);
  return fnv1a(enc.bytes());
}

sim::Snapshot capture_snapshot(Scenario& scenario,
                               const hadoop::JobSpec& job,
                               std::string label) {
  sim::Snapshot snap;
  snap.root_seed = scenario.config().seed;
  snap.config_fingerprint = scenario_fingerprint(scenario.config(), job);
  snap.cursor_events = scenario.simulation().queue().events_fired();
  snap.cursor_time = scenario.simulation().now();
  snap.label = std::move(label);

  // Close any open rate-recompute cohort BEFORE encoding anything. A capture
  // taken mid-cohort (the bisection probe's run_to_event_count cursor) would
  // otherwise encode pre-flush rates, and the restored replay — which flushes
  // at the same point via this very call — would diverge. Flushing here is
  // deterministic on both sides: it is the next fabric action after event N
  // in both timelines. No-op when coalescing is off or nothing is pending.
  scenario.fabric().flush_coalesced();

  // Fixed section order — verification and bisection compare pairwise.
  add_section(snap, "sim.queue", [&](sim::StateEncoder& enc) {
    sim::encode_event_queue_state(scenario.simulation().queue(), enc);
  });
  add_section(snap, "sim.rng", [&](sim::StateEncoder& enc) {
    sim::encode_rng_state(scenario.simulation(), enc);
  });
  add_section(snap, "fabric", [&](sim::StateEncoder& enc) {
    scenario.fabric().encode_state(enc);
  });
  add_section(snap, "fabric.counters", [&](sim::StateEncoder& enc) {
    scenario.fabric().encode_counters(enc);
  });
  // Slot-ordered link chains (RoutingGraph::kStateVersion): the encoder
  // materializes any pair the lazy graph has not computed yet, so a lazily
  // and an eagerly built graph capture the same bytes here even though
  // their pools interned paths in different orders. Encoded before
  // routing.counters so the forced materialization it performs is already
  // reflected in the counters section (identically on capture and on the
  // restored re-capture).
  add_section(snap, "routing", [&](sim::StateEncoder& enc) {
    scenario.controller().routing().encode_state(enc);
  });
  add_section(snap, "routing.counters", [&](sim::StateEncoder& enc) {
    scenario.controller().routing().encode_counters(enc);
  });
  add_section(snap, "controller", [&](sim::StateEncoder& enc) {
    scenario.controller().encode_state(enc);
  });
  add_section(snap, "pythia", [&](sim::StateEncoder& enc) {
    enc.put_bool(scenario.pythia() != nullptr);
    if (scenario.pythia() != nullptr) scenario.pythia()->encode_state(enc);
  });
  add_section(snap, "engine", [&](sim::StateEncoder& enc) {
    scenario.engine().encode_state(enc);
  });
  return snap;
}

RestoreResult restore_snapshot(const sim::Snapshot& snap,
                               const ScenarioConfig& cfg,
                               const hadoop::JobSpec& job,
                               const ScenarioPrologue& prologue) {
  if (snap.root_seed != cfg.seed) {
    throw sim::SnapshotError("restore: seed mismatch (snapshot " +
                             std::to_string(snap.root_seed) + ", config " +
                             std::to_string(cfg.seed) + ")");
  }
  const std::uint64_t fp = scenario_fingerprint(cfg, job);
  if (snap.config_fingerprint != fp) {
    throw sim::SnapshotError(
        "restore: config fingerprint mismatch — the snapshot was captured "
        "in a different universe (snapshot " +
        std::to_string(snap.config_fingerprint) + ", config " +
        std::to_string(fp) + ")");
  }

  RestoreResult result;
  result.scenario = std::make_unique<Scenario>(cfg);
  if (prologue) prologue(*result.scenario);
  result.scenario->submit_job(job);
  // Replay the deterministic event loop to the capture's event cursor, then
  // reproduce a clock that run_until() may have parked *between* events —
  // without advance_now the replayed clock sits at the last fired event's
  // timestamp and the sim.queue section diverges (see docs/checkpoint.md).
  result.scenario->run_to_event_count(snap.cursor_events);
  if (snap.cursor_time > result.scenario->simulation().now()) {
    result.scenario->simulation().queue().advance_now(snap.cursor_time);
  }

  sim::Snapshot replayed = capture_snapshot(*result.scenario, job, snap.label);
  result.divergence = sim::Snapshot::describe_divergence(snap, replayed);
  result.verified = result.divergence.empty();
  return result;
}

}  // namespace pythia::exp
