// Derived job metrics used by benches and analyses: fetch latency
// distributions, reducer balance, shuffle efficiency.
#pragma once

#include "hadoop/job.hpp"
#include "util/stats.hpp"

namespace pythia::exp {

struct ShuffleMetrics {
  /// Queueing delay from fetch availability to copy-slot acquisition.
  util::SampleSet queueing_seconds;
  /// On-wire (or local-copy) transfer durations.
  util::SampleSet transfer_seconds;
  /// Remote fetch goodput samples (payload bytes / transfer time).
  util::SampleSet goodput_bps;
  /// Per-reducer shuffle completion instants (seconds since submit).
  util::SampleSet reducer_shuffle_done_seconds;
  /// Jain's fairness index over per-reducer shuffled volume.
  double reducer_volume_fairness = 1.0;
  /// (last - first) reducer shuffle completion: the barrier spread.
  double shuffle_spread_seconds = 0.0;
  /// Remote shuffle bytes / wall time between first fetch and shuffle end:
  /// the aggregate rate the network actually sustained.
  double aggregate_shuffle_goodput_bps = 0.0;
};

/// Computes shuffle metrics from a completed job.
[[nodiscard]] ShuffleMetrics compute_shuffle_metrics(
    const hadoop::JobResult& result);

}  // namespace pythia::exp
