// Checkpoint capture/restore for experiment scenarios.
//
// A checkpoint couples the replay cursor (seed + config fingerprint + event
// count) with the full verified state image (see sim/snapshot.hpp). Restore
// rebuilds the scenario from its config, replays the deterministic event
// loop to the cursor, re-captures, and compares byte-for-byte — so a
// successful restore is *proof* the reconstruction is identical, not hope.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "experiments/scenario.hpp"
#include "hadoop/config.hpp"
#include "sim/snapshot.hpp"

namespace pythia::exp {

/// Stable hash of everything that shapes a run: the scenario config (seed,
/// topology, background, controller/Pythia knobs, scheduler, rate engine,
/// cluster) and the job spec. Two runs with equal fingerprints and equal
/// seeds are the same universe; restore and sweep-resume refuse mismatches.
[[nodiscard]] std::uint64_t scenario_fingerprint(const ScenarioConfig& cfg,
                                                 const hadoop::JobSpec& job);

/// Captures the full state image of `scenario` at its current position.
/// `job` is the workload the run executes (part of the identity); `label`
/// is a free-form tag ("mid-shuffle") carried for diagnostics only.
[[nodiscard]] sim::Snapshot capture_snapshot(Scenario& scenario,
                                             const hadoop::JobSpec& job,
                                             std::string label = {});

struct RestoreResult {
  /// The rebuilt scenario, positioned at the snapshot's cursor with the job
  /// submitted; call run_until()/finish() to continue the run.
  std::unique_ptr<Scenario> scenario;
  /// True when the replayed image matched the snapshot byte-for-byte.
  bool verified = false;
  /// Empty when verified; otherwise the first diverging section, as
  /// reported by sim::Snapshot::describe_divergence.
  std::string divergence;
};

/// Re-applies externally scheduled events during restore. A run whose
/// capture-side set-up scheduled events outside the config (a link-failure
/// drill via simulation().after, a multi-job trace) must hand restore the
/// SAME set-up, applied at the same point: after scenario construction,
/// before job submission. The config fingerprint cannot cover closures, so
/// a mismatched prologue is not rejected up front — it is caught by the
/// byte-for-byte verification (the event-queue skeleton diverges).
using ScenarioPrologue = std::function<void(Scenario&)>;

/// Rebuilds a scenario from `cfg` + `job`, replays to `snap`'s cursor
/// (including the between-events clock position, via
/// EventQueue::advance_now), re-captures, and verifies the image against
/// `snap`. Throws sim::SnapshotError when (cfg, job) is a different
/// universe than the snapshot was captured in (seed or fingerprint
/// mismatch). A verification failure is reported, not thrown — the
/// divergence description is the bisection tool's raw material.
[[nodiscard]] RestoreResult restore_snapshot(
    const sim::Snapshot& snap, const ScenarioConfig& cfg,
    const hadoop::JobSpec& job, const ScenarioPrologue& prologue = {});

}  // namespace pythia::exp
