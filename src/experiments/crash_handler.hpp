// Fatal-signal crash reporter for bench/sweep processes.
//
// A simulation crash (SIGSEGV, SIGABRT, ...) in a multi-hour sweep is
// useless unless the process says *where* it was: which run (point, arm,
// seed), at what sim time, after how many events. The handler prints
// exactly that — from pre-registered per-thread stamps, using only
// write(2) — then flushes the log sink and re-raises the signal so the
// exit status stays honest.
//
// Stamps are plain atomics updated from the run loop (the executor stamps
// the run label at attempt start; the cooperative abort-check poll stamps
// sim progress every kAbortCheckStride events), so the handler never touches
// simulation state. Installation is idempotent; both the bench CLI and the
// guarded sweep executor install it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pythia::exp {

/// Installs handlers for fatal signals (SEGV, ABRT, BUS, FPE, ILL, TERM).
/// Idempotent — the second and later calls are no-ops.
void install_crash_handler();

/// Stamps the calling thread's "currently executing run" context shown by
/// the crash report. `label` is truncated to a fixed buffer (async-signal
/// safety: the handler only reads plain bytes).
void crash_stamp_run(std::size_t run_index, const std::string& label);

/// Stamps the calling thread's simulation progress (sim time + events
/// fired). Called from the abort-check poll, i.e. every few thousand
/// events — cheap, lock-free.
void crash_stamp_progress(std::int64_t sim_time_ns,
                          std::uint64_t events_fired);

/// Clears the calling thread's stamp (run finished or abandoned).
void crash_stamp_clear();

}  // namespace pythia::exp
