// Parallel deterministic run fan-out.
//
// ParallelRunner executes N independent simulation runs across a thread pool
// and gathers the results in canonical index order. The determinism contract:
//
//   For a fixed task function, map(n, fn) returns a bit-for-bit identical
//   vector for ANY thread count, including 1.
//
// The contract holds because (a) every task builds its entire simulation
// universe — Simulation, Fabric, RNG streams — from its index (and seeds
// derived via util::split_seed / the run's ScenarioConfig), sharing no
// mutable state with other tasks, and (b) results are written to
// pre-allocated index slots and read only after wait_idle(), so scheduling
// order never leaks into the output. Anything order- or time-dependent
// (progress, wall-clock, utilization) is reported separately via
// RunnerCounters and excluded from result payloads.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/thread_pool.hpp"

namespace pythia::sim {
class Simulation;
}

namespace pythia::exp {

/// Progress/timing counters for a runner's lifetime; surfaced through the
/// bench table/CSV output. Non-deterministic by nature (wall time), so never
/// part of result rows.
struct RunnerCounters {
  std::size_t threads = 1;
  std::uint64_t runs_completed = 0;
  double wall_seconds = 0.0;  // summed over map() calls
  double busy_seconds = 0.0;  // summed worker in-task time

  /// Fraction of worker capacity spent inside runs (1.0 = perfectly packed).
  [[nodiscard]] double utilization() const {
    const double capacity = wall_seconds * static_cast<double>(threads);
    return capacity > 0.0 ? busy_seconds / capacity : 0.0;
  }
};

/// Why a guarded run produced no value.
enum class RunFailureKind : std::uint8_t {
  kNone,       // run completed
  kException,  // task threw (crash isolation: the sweep continues)
  kTimeout,    // per-run wall-clock budget exhausted (sim::AbortedError)
};

[[nodiscard]] const char* run_failure_name(RunFailureKind kind);

/// Crash-tolerance policy for map_guarded().
struct RunGuard {
  /// Per-attempt wall-clock budget in seconds; 0 disables the timeout. The
  /// deadline is enforced cooperatively (EventQueue abort checks), so it
  /// only ever decides whether a run *dies* — never what a surviving run
  /// computes. Surviving results stay bit-identical to unguarded runs.
  double timeout_seconds = 0.0;
  /// Attempts per run (first try + retries), always on the same seed lane —
  /// a retry is an exact re-execution, so a flaky-environment failure
  /// (timeout on a loaded machine) converges to the deterministic result.
  std::size_t max_attempts = 2;
  /// Optional run describer for crash reports ("point 3 arm Pythia seed 7").
  std::function<std::string(std::size_t)> describe;
};

/// Per-attempt context handed to a guarded task. The task must call
/// bind(sim) once its simulation exists: that installs the wall-clock
/// deadline (and test-only injected faults) into the event loop and wires
/// the crash handler's progress stamps.
class RunContext {
 public:
  /// Arms the deadline/injection against `sim`; throws immediately when
  /// this (index, attempt) has an injected fault (PYTHIA_INJECT_RUN_FAULT).
  void bind(sim::Simulation& sim) const;
  [[nodiscard]] std::size_t run_index() const { return index_; }
  /// 1-based attempt number (1 = first try).
  [[nodiscard]] std::size_t attempt() const { return attempt_; }

 private:
  friend class ParallelRunner;
  std::size_t index_ = 0;
  std::size_t attempt_ = 1;
  std::uint64_t deadline_ns_ = 0;  // steady-clock deadline; 0 = none
  bool inject_fault_ = false;      // throw on bind (attempt 1 only)
  bool inject_timeout_ = false;    // abort at the first check (attempt 1 only)
};

/// Outcome of one guarded run: the value (valid when ok()), or a typed
/// failure with the attempt count and diagnostic message.
template <typename T>
struct GuardedResult {
  T value{};
  RunFailureKind failure = RunFailureKind::kNone;
  std::size_t attempts = 0;
  std::string message;

  [[nodiscard]] bool ok() const { return failure == RunFailureKind::kNone; }
};

class ParallelRunner {
 public:
  /// `threads == 0` uses one worker per hardware core.
  explicit ParallelRunner(std::size_t threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  /// Runs fn(0..n-1) across the pool; returns results in index order.
  /// Blocks until every run finishes. If any run throws, the first exception
  /// in index order is rethrown after the batch drains.
  template <typename T>
  std::vector<T> map(std::size_t n, const std::function<T(std::size_t)>& fn) {
    std::vector<T> results(n);
    std::vector<std::exception_ptr> errors(n);
    const std::uint64_t batch_t0_ns = begin_batch();
    for (std::size_t i = 0; i < n; ++i) {
      pool().submit([&, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool().wait_idle();
    end_batch(batch_t0_ns);
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
    return results;
  }

  /// Crash-tolerant fan-out: like map(), but a run that throws or exceeds
  /// the guard's wall-clock budget is retried (same index → same seed lane,
  /// so a retry is an exact deterministic re-execution) up to
  /// guard.max_attempts times, then recorded as a typed failure in its
  /// canonical slot instead of aborting the sweep. Surviving results are
  /// bit-identical to an unguarded map() for ANY thread count.
  ///
  /// Test-only fault injection: PYTHIA_INJECT_RUN_FAULT /
  /// PYTHIA_INJECT_RUN_TIMEOUT name comma-separated run indices whose
  /// FIRST attempt fails (thrown exception / immediate cooperative abort);
  /// retries succeed, exercising the recovery path end to end.
  template <typename T>
  std::vector<GuardedResult<T>> map_guarded(
      std::size_t n,
      const std::function<T(std::size_t, const RunContext&)>& fn,
      const RunGuard& guard = {}) {
    install_crash_reporting();
    std::vector<GuardedResult<T>> results(n);
    const std::uint64_t batch_t0_ns = begin_batch();
    for (std::size_t i = 0; i < n; ++i) {
      pool().submit([&, i] {
        GuardedResult<T>& slot = results[i];
        const std::size_t budget = guard.max_attempts > 0 ? guard.max_attempts
                                                          : 1;
        for (std::size_t attempt = 1; attempt <= budget; ++attempt) {
          const RunContext ctx = make_context(i, attempt, guard);
          slot.attempts = attempt;
          stamp_run(i, guard);
          try {
            slot.value = fn(i, ctx);
            slot.failure = RunFailureKind::kNone;
            slot.message.clear();
            break;
          } catch (const sim::AbortedError& e) {
            slot.failure = RunFailureKind::kTimeout;
            slot.message = describe_abort(e);
          } catch (const std::exception& e) {
            slot.failure = RunFailureKind::kException;
            slot.message = e.what();
          } catch (...) {
            slot.failure = RunFailureKind::kException;
            slot.message = "unknown exception";
          }
        }
        clear_stamp();
      });
    }
    pool().wait_idle();
    end_batch(batch_t0_ns);
    return results;
  }

  [[nodiscard]] std::size_t thread_count() const;
  /// Runs finished so far; safe to poll from another thread mid-batch.
  [[nodiscard]] std::uint64_t runs_completed() const;
  /// Lifetime counters (threads, runs, wall/busy seconds, utilization).
  [[nodiscard]] RunnerCounters counters() const;

 private:
  // Non-template guts of map_guarded (see parallel_runner.cpp).
  [[nodiscard]] static RunContext make_context(std::size_t index,
                                               std::size_t attempt,
                                               const RunGuard& guard);
  [[nodiscard]] static std::string describe_abort(const sim::AbortedError& e);
  static void install_crash_reporting();
  static void stamp_run(std::size_t index, const RunGuard& guard);
  static void clear_stamp();
  [[nodiscard]] util::ThreadPool& pool() { return *pool_; }
  // Wall-clock sampling is confined to these two and to the counters they
  // feed; timestamps never flow through map() or into result payloads.
  // The batch start time stays a per-call value (returned by begin_batch(),
  // consumed by end_batch()) so concurrent map() calls on one runner don't
  // clobber each other's timestamps.
  [[nodiscard]] std::uint64_t begin_batch() const;
  void end_batch(std::uint64_t batch_t0_ns);

  std::unique_ptr<util::ThreadPool> pool_;
  double wall_seconds_ = 0.0;
};

}  // namespace pythia::exp
