// Parallel deterministic run fan-out.
//
// ParallelRunner executes N independent simulation runs across a thread pool
// and gathers the results in canonical index order. The determinism contract:
//
//   For a fixed task function, map(n, fn) returns a bit-for-bit identical
//   vector for ANY thread count, including 1.
//
// The contract holds because (a) every task builds its entire simulation
// universe — Simulation, Fabric, RNG streams — from its index (and seeds
// derived via util::split_seed / the run's ScenarioConfig), sharing no
// mutable state with other tasks, and (b) results are written to
// pre-allocated index slots and read only after wait_idle(), so scheduling
// order never leaks into the output. Anything order- or time-dependent
// (progress, wall-clock, utilization) is reported separately via
// RunnerCounters and excluded from result payloads.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "util/thread_pool.hpp"

namespace pythia::exp {

/// Progress/timing counters for a runner's lifetime; surfaced through the
/// bench table/CSV output. Non-deterministic by nature (wall time), so never
/// part of result rows.
struct RunnerCounters {
  std::size_t threads = 1;
  std::uint64_t runs_completed = 0;
  double wall_seconds = 0.0;  // summed over map() calls
  double busy_seconds = 0.0;  // summed worker in-task time

  /// Fraction of worker capacity spent inside runs (1.0 = perfectly packed).
  [[nodiscard]] double utilization() const {
    const double capacity = wall_seconds * static_cast<double>(threads);
    return capacity > 0.0 ? busy_seconds / capacity : 0.0;
  }
};

class ParallelRunner {
 public:
  /// `threads == 0` uses one worker per hardware core.
  explicit ParallelRunner(std::size_t threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  /// Runs fn(0..n-1) across the pool; returns results in index order.
  /// Blocks until every run finishes. If any run throws, the first exception
  /// in index order is rethrown after the batch drains.
  template <typename T>
  std::vector<T> map(std::size_t n, const std::function<T(std::size_t)>& fn) {
    std::vector<T> results(n);
    std::vector<std::exception_ptr> errors(n);
    const std::uint64_t batch_t0_ns = begin_batch();
    for (std::size_t i = 0; i < n; ++i) {
      pool().submit([&, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool().wait_idle();
    end_batch(batch_t0_ns);
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
    return results;
  }

  [[nodiscard]] std::size_t thread_count() const;
  /// Runs finished so far; safe to poll from another thread mid-batch.
  [[nodiscard]] std::uint64_t runs_completed() const;
  /// Lifetime counters (threads, runs, wall/busy seconds, utilization).
  [[nodiscard]] RunnerCounters counters() const;

 private:
  [[nodiscard]] util::ThreadPool& pool() { return *pool_; }
  // Wall-clock sampling is confined to these two and to the counters they
  // feed; timestamps never flow through map() or into result payloads.
  // The batch start time stays a per-call value (returned by begin_batch(),
  // consumed by end_batch()) so concurrent map() calls on one runner don't
  // clobber each other's timestamps.
  [[nodiscard]] std::uint64_t begin_batch() const;
  void end_batch(std::uint64_t batch_t0_ns);

  std::unique_ptr<util::ThreadPool> pool_;
  double wall_seconds_ = 0.0;
};

}  // namespace pythia::exp
