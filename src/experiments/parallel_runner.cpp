#include "experiments/parallel_runner.hpp"

#include <chrono>

namespace pythia::exp {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ParallelRunner::ParallelRunner(std::size_t threads)
    : pool_(std::make_unique<util::ThreadPool>(threads)) {}

ParallelRunner::~ParallelRunner() = default;

std::size_t ParallelRunner::thread_count() const {
  return pool_->thread_count();
}

std::uint64_t ParallelRunner::runs_completed() const {
  return pool_->tasks_completed();
}

RunnerCounters ParallelRunner::counters() const {
  RunnerCounters c;
  c.threads = pool_->thread_count();
  c.runs_completed = pool_->tasks_completed();
  c.wall_seconds = wall_seconds_;
  c.busy_seconds = pool_->busy_seconds();
  return c;
}

std::uint64_t ParallelRunner::begin_batch() { return steady_ns(); }

void ParallelRunner::end_batch(std::uint64_t t0_ns) {
  wall_seconds_ += static_cast<double>(steady_ns() - t0_ns) / 1e9;
}

}  // namespace pythia::exp
