#include "experiments/parallel_runner.hpp"

#include <chrono>

namespace pythia::exp {

namespace {
// Wall-clock sampling lives in exactly one place, feeds RunnerCounters
// (wall/busy seconds) and nothing else; run results never read it, so the
// bit-identity contract of map() is untouched.
std::uint64_t steady_ns() {
  // pythia-lint: allow(wall-clock) counters-only wall time; results never
  // depend on it (see RunnerCounters doc)
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}
}  // namespace

ParallelRunner::ParallelRunner(std::size_t threads)
    : pool_(std::make_unique<util::ThreadPool>(threads)) {}

ParallelRunner::~ParallelRunner() = default;

std::size_t ParallelRunner::thread_count() const {
  return pool_->thread_count();
}

std::uint64_t ParallelRunner::runs_completed() const {
  return pool_->tasks_completed();
}

RunnerCounters ParallelRunner::counters() const {
  RunnerCounters c;
  c.threads = pool_->thread_count();
  c.runs_completed = pool_->tasks_completed();
  c.wall_seconds = wall_seconds_;
  c.busy_seconds = pool_->busy_seconds();
  return c;
}

std::uint64_t ParallelRunner::begin_batch() const { return steady_ns(); }

void ParallelRunner::end_batch(std::uint64_t batch_t0_ns) {
  wall_seconds_ += static_cast<double>(steady_ns() - batch_t0_ns) / 1e9;
}

}  // namespace pythia::exp
