#include "experiments/parallel_runner.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "experiments/crash_handler.hpp"
#include "sim/simulation.hpp"

namespace pythia::exp {

namespace {
// Wall-clock sampling lives in exactly one place, feeds RunnerCounters
// (wall/busy seconds) and nothing else; run results never read it, so the
// bit-identity contract of map() is untouched.
std::uint64_t steady_ns() {
  // pythia-lint: allow(wall-clock) counters-only wall time; results never
  // depend on it (see RunnerCounters doc)
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}
/// True when the comma-separated index list in env var `name` contains
/// `index`. Test-only hook for the crash-injected sweep CI job; unset in
/// normal operation, so the parse cost is a getenv.
bool env_index_listed(const char* name, std::size_t index) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return false;
  std::istringstream ss{std::string(raw)};
  std::string token;
  while (std::getline(ss, token, ',')) {
    try {
      if (!token.empty() && std::stoull(token) == index) return true;
    } catch (const std::exception&) {
      // Malformed token: ignore (injection is a test-only convenience).
    }
  }
  return false;
}

}  // namespace

const char* run_failure_name(RunFailureKind kind) {
  switch (kind) {
    case RunFailureKind::kNone:
      return "none";
    case RunFailureKind::kException:
      return "exception";
    case RunFailureKind::kTimeout:
      return "timeout";
  }
  return "unknown";
}

void RunContext::bind(sim::Simulation& sim) const {
  if (inject_fault_) {
    throw std::runtime_error(
        "injected run fault (PYTHIA_INJECT_RUN_FAULT) for run " +
        std::to_string(index_));
  }
  const std::uint64_t deadline = deadline_ns_;
  const bool inject_timeout = inject_timeout_;
  if (deadline == 0 && !inject_timeout) {
    // No guard armed: still stamp progress for the crash handler, riding
    // the same cooperative poll the deadline would use.
    sim.install_abort_check([&sim] {
      crash_stamp_progress(sim.now().ns(), sim.queue().events_fired());
      return false;
    });
    return;
  }
  sim.install_abort_check([&sim, deadline, inject_timeout] {
    crash_stamp_progress(sim.now().ns(), sim.queue().events_fired());
    if (inject_timeout) return true;
    if (deadline == 0) return false;
    // pythia-lint: allow(wall-clock) cooperative run deadline; only decides
    // whether a run dies, never what a surviving run computes
    const auto now_ns = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(now_ns)
                   .count()) >= deadline;
  });
}

RunContext ParallelRunner::make_context(std::size_t index,
                                        std::size_t attempt,
                                        const RunGuard& guard) {
  RunContext ctx;
  ctx.index_ = index;
  ctx.attempt_ = attempt;
  if (guard.timeout_seconds > 0.0) {
    ctx.deadline_ns_ =
        steady_ns() +
        static_cast<std::uint64_t>(guard.timeout_seconds * 1e9);
  }
  // Injected faults hit only the first attempt: the retry then succeeds,
  // exercising the recovery path end to end.
  if (attempt == 1) {
    ctx.inject_fault_ = env_index_listed("PYTHIA_INJECT_RUN_FAULT", index);
    ctx.inject_timeout_ =
        env_index_listed("PYTHIA_INJECT_RUN_TIMEOUT", index);
  }
  return ctx;
}

std::string ParallelRunner::describe_abort(const sim::AbortedError& e) {
  return "run timed out at sim t=" + std::to_string(e.at.ns()) +
         "ns after " + std::to_string(e.events_fired) + " events";
}

void ParallelRunner::install_crash_reporting() { install_crash_handler(); }

void ParallelRunner::stamp_run(std::size_t index, const RunGuard& guard) {
  crash_stamp_run(index, guard.describe ? guard.describe(index)
                                        : std::string());
}

void ParallelRunner::clear_stamp() { crash_stamp_clear(); }

ParallelRunner::ParallelRunner(std::size_t threads)
    : pool_(std::make_unique<util::ThreadPool>(threads)) {}

ParallelRunner::~ParallelRunner() = default;

std::size_t ParallelRunner::thread_count() const {
  return pool_->thread_count();
}

std::uint64_t ParallelRunner::runs_completed() const {
  return pool_->tasks_completed();
}

RunnerCounters ParallelRunner::counters() const {
  RunnerCounters c;
  c.threads = pool_->thread_count();
  c.runs_completed = pool_->tasks_completed();
  c.wall_seconds = wall_seconds_;
  c.busy_seconds = pool_->busy_seconds();
  return c;
}

std::uint64_t ParallelRunner::begin_batch() const { return steady_ns(); }

void ParallelRunner::end_batch(std::uint64_t batch_t0_ns) {
  wall_seconds_ += static_cast<double>(steady_ns() - batch_t0_ns) / 1e9;
}

}  // namespace pythia::exp
