// Parameter-sweep harness for the paper's evaluation figures: job completion
// time vs. network over-subscription ratio, baseline vs. treatment, averaged
// over seeds ("average of multiple executions" in the paper).
#pragma once

#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "hadoop/config.hpp"
#include "util/table.hpp"

namespace pythia::exp {

struct OversubPoint {
  std::string label;  // "none", "1:2", ...
  double ratio;       // 1.0, 2.0, ...
};

/// The ratios of the paper's Figures 3 and 4.
[[nodiscard]] std::vector<OversubPoint> paper_oversubscription_points();

/// Runs one scenario+job and returns completion time in seconds.
[[nodiscard]] double run_completion_seconds(const ScenarioConfig& cfg,
                                            const hadoop::JobSpec& job);

struct SpeedupRow {
  std::string label;
  double baseline_mean_s = 0.0;
  double baseline_stddev_s = 0.0;
  double treatment_mean_s = 0.0;
  double treatment_stddev_s = 0.0;

  /// Relative improvement of treatment over baseline (0.46 == 46% faster,
  /// computed as baseline/treatment - 1, the paper's "speedup").
  [[nodiscard]] double speedup() const {
    return treatment_mean_s > 0.0
               ? baseline_mean_s / treatment_mean_s - 1.0
               : 0.0;
  }
};

struct SweepConfig {
  ScenarioConfig base;                 // scheduler field is overwritten
  std::vector<std::uint64_t> seeds{1, 2, 3};
  SchedulerKind baseline = SchedulerKind::kEcmp;
  SchedulerKind treatment = SchedulerKind::kPythia;
};

/// Fig. 3 / Fig. 4 style sweep: for every over-subscription point, run the
/// job under both schedulers across all seeds.
[[nodiscard]] std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points);

/// Paper-style output table for a sweep.
[[nodiscard]] util::Table speedup_table(const std::vector<SpeedupRow>& rows,
                                        const std::string& baseline_name,
                                        const std::string& treatment_name);

/// Multi-scheduler comparison at one operating point (ablation A1).
struct LadderRow {
  std::string scheduler;
  double mean_s = 0.0;
  double stddev_s = 0.0;
};
[[nodiscard]] std::vector<LadderRow> run_scheduler_ladder(
    const ScenarioConfig& base, const hadoop::JobSpec& job,
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<std::uint64_t>& seeds);

}  // namespace pythia::exp
