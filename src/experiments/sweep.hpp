// Parameter-sweep harness for the paper's evaluation figures: job completion
// time vs. network over-subscription ratio, baseline vs. treatment, averaged
// over seeds ("average of multiple executions" in the paper).
//
// Sweeps fan their independent (point × scheduler × seed) runs out across a
// ParallelRunner; results are gathered in canonical order, so the returned
// rows — and their CSV serialization — are bit-for-bit identical for any
// thread count, including 1. See parallel_runner.hpp for the contract.
#pragma once

#include <string>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"
#include "hadoop/config.hpp"
#include "util/table.hpp"

namespace pythia::exp {

struct OversubPoint {
  std::string label;  // "none", "1:2", ...
  double ratio;       // 1.0, 2.0, ...
};

/// The ratios of the paper's Figures 3 and 4.
[[nodiscard]] std::vector<OversubPoint> paper_oversubscription_points();

/// Runs one scenario+job and returns completion time in seconds.
[[nodiscard]] double run_completion_seconds(const ScenarioConfig& cfg,
                                            const hadoop::JobSpec& job);

struct SpeedupRow {
  std::string label;
  double baseline_mean_s = 0.0;
  double baseline_stddev_s = 0.0;
  double treatment_mean_s = 0.0;
  double treatment_stddev_s = 0.0;

  /// Relative improvement of treatment over baseline (0.46 == 46% faster,
  /// computed as baseline/treatment - 1, the paper's "speedup").
  [[nodiscard]] double speedup() const {
    return treatment_mean_s > 0.0
               ? baseline_mean_s / treatment_mean_s - 1.0
               : 0.0;
  }
};

struct SweepConfig {
  ScenarioConfig base;                 // scheduler field is overwritten
  std::vector<std::uint64_t> seeds{1, 2, 3};
  SchedulerKind baseline = SchedulerKind::kEcmp;
  SchedulerKind treatment = SchedulerKind::kPythia;
  /// Worker threads for the run fan-out; 0 = one per hardware core. Results
  /// are identical for every value — this only trades wall time.
  std::size_t threads = 0;
};

/// Fig. 3 / Fig. 4 style sweep: for every over-subscription point, run the
/// job under both schedulers across all seeds. Runs execute in parallel on
/// `sweep.threads` workers; pass `counters` to receive progress/timing
/// (runs completed, wall seconds, worker utilization).
[[nodiscard]] std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points,
    RunnerCounters* counters = nullptr);

/// Same, on a caller-owned runner (reuse one pool across several sweeps).
[[nodiscard]] std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points, ParallelRunner& runner);

// --- crash-tolerant, resumable sweep (see docs/robustness.md) ---

/// Typed failure of one sweep run, reported in canonical (point, arm, seed)
/// order instead of aborting the whole sweep.
struct SweepRunFailure {
  std::size_t run_index = 0;
  std::string point_label;
  std::string arm;  // scheduler name of the failing arm
  std::uint64_t seed = 0;
  RunFailureKind kind = RunFailureKind::kNone;
  std::size_t attempts = 0;
  std::string message;
};

struct GuardedSweepConfig {
  SweepConfig sweep;
  /// Per-run timeout/retry policy (see RunGuard); default: no timeout,
  /// one retry.
  RunGuard guard;
  /// Checkpoint manifest path; empty disables persistence. A re-launched
  /// sweep pointing at the same manifest skips runs already completed ok
  /// and re-attempts failed/missing ones. The manifest is fingerprinted:
  /// changing the config, seeds, points, or job starts fresh.
  std::string manifest_path;
};

struct GuardedSweepResult {
  /// Aggregated rows over the runs that completed ok; identical to the
  /// unguarded sweep's rows whenever every run survives.
  std::vector<SpeedupRow> rows;
  /// Runs that exhausted their attempt budget, canonical order.
  std::vector<SweepRunFailure> failures;
  /// Runs served bit-exactly from the manifest instead of executed.
  std::size_t resumed_runs = 0;
};

/// Stable fingerprint of an entire sweep (base config + job + seeds +
/// points + arms); keys the resume manifest.
[[nodiscard]] std::uint64_t sweep_fingerprint(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points);

/// Crash-tolerant run of the oversubscription sweep: per-run wall-clock
/// timeout + bounded retry on the same seed lane, crash isolation (a run
/// that keeps failing becomes a typed entry in `failures`, the sweep
/// completes), and manifest-based resume. Surviving results are
/// bit-identical to run_oversubscription_sweep for any thread count.
[[nodiscard]] GuardedSweepResult run_oversubscription_sweep_guarded(
    const GuardedSweepConfig& cfg, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points,
    RunnerCounters* counters = nullptr);

/// Paper-style output table for a sweep.
[[nodiscard]] util::Table speedup_table(const std::vector<SpeedupRow>& rows,
                                        const std::string& baseline_name,
                                        const std::string& treatment_name);

/// Deterministic CSV serialization of sweep rows (shortest round-trip
/// precision). This is the byte-level artifact the determinism tests diff
/// across thread counts; timing counters are deliberately excluded.
[[nodiscard]] std::string speedup_rows_csv(const std::vector<SpeedupRow>& rows);

/// Progress/timing footer for bench table output ("N runs, X s wall on
/// T threads, U% utilization").
[[nodiscard]] std::string runner_counters_summary(const RunnerCounters& c);

/// Multi-scheduler comparison at one operating point (ablation A1).
struct LadderRow {
  std::string scheduler;
  double mean_s = 0.0;
  double stddev_s = 0.0;
};
[[nodiscard]] std::vector<LadderRow> run_scheduler_ladder(
    const ScenarioConfig& base, const hadoop::JobSpec& job,
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<std::uint64_t>& seeds, std::size_t threads = 0,
    RunnerCounters* counters = nullptr);

}  // namespace pythia::exp
