#include "experiments/scenario.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace pythia::exp {

std::string scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEcmp:
      return "ECMP";
    case SchedulerKind::kPythia:
      return "Pythia";
    case SchedulerKind::kHedera:
      return "Hedera";
    case SchedulerKind::kFlowCombLike:
      return "FlowComb-like";
    case SchedulerKind::kStaticOracle:
      return "StaticOracle";
    case SchedulerKind::kPacketSpray:
      return "PacketSpray";
  }
  return "unknown";
}

namespace {
net::Topology build_topology(const ScenarioConfig& cfg) {
  switch (cfg.topology_kind) {
    case TopologyKind::kTwoRack:
      return net::make_two_rack(cfg.two_rack);
    case TopologyKind::kLeafSpine:
      return net::make_leaf_spine(cfg.leaf_spine);
  }
  throw std::invalid_argument("unknown topology kind");
}

/// Two hosts in distinct racks (for background installation).
std::pair<net::NodeId, net::NodeId> cross_rack_pair(
    const net::Topology& topo) {
  const auto hosts = topo.hosts();
  assert(!hosts.empty());
  const int rack0 = topo.node(hosts.front()).rack;
  for (net::NodeId h : hosts) {
    if (topo.node(h).rack != rack0) return {hosts.front(), h};
  }
  return {hosts.front(), hosts.front()};  // single-rack topology
}
}  // namespace

Scenario::Scenario(ScenarioConfig cfg)
    : cfg_(std::move(cfg)), topo_(build_topology(cfg_)) {
  sim_ = std::make_unique<sim::Simulation>(cfg_.seed);
  fabric_ = std::make_unique<net::Fabric>(
      *sim_, topo_,
      net::FabricConfig{.rate_engine = cfg_.rate_engine,
                        .coalesce_cohorts = cfg_.coalesce_cohorts});
  controller_ =
      std::make_unique<sdn::Controller>(*sim_, *fabric_, topo_,
                                        cfg_.controller);
  if (cfg_.enable_netflow) {
    netflow_ = std::make_unique<net::NetFlowProbe>();
    fabric_->add_observer(netflow_.get());
  }

  const auto [rack_a, rack_b] = cross_rack_pair(topo_);
  if (rack_a != rack_b) {
    background_ = net::install_background(*fabric_, controller_->routing(),
                                          rack_a, rack_b, cfg_.background);
  }

  servers_ = topo_.hosts();
  hadoop::ClusterConfig cluster = cfg_.cluster;
  cluster.servers = servers_;
  if (cfg_.scheduler == SchedulerKind::kPacketSpray) {
    cluster.multipath_spray = true;
  }
  engine_ = std::make_unique<hadoop::MapReduceEngine>(*sim_, *fabric_,
                                                      *controller_, cluster);

  switch (cfg_.scheduler) {
    case SchedulerKind::kEcmp:
      break;  // controller resolves everything through ECMP
    case SchedulerKind::kPythia:
      pythia_ = std::make_unique<core::PythiaSystem>(*sim_, *engine_,
                                                     *controller_,
                                                     cfg_.pythia);
      break;
    case SchedulerKind::kFlowCombLike: {
      core::PythiaConfig fc = cfg_.pythia;
      fc.instrumentation.extra_delay = cfg_.flowcomb_extra_delay;
      fc.allocator.load_aware = false;
      // The ECMP-fallback watchdog is a Pythia robustness feature; the
      // FlowComb-like strawman runs without it.
      fc.watchdog.enabled = false;
      pythia_ = std::make_unique<core::PythiaSystem>(*sim_, *engine_,
                                                     *controller_, fc);
      break;
    }
    case SchedulerKind::kHedera:
      hedera_ = std::make_unique<sdn::HederaApp>(*controller_, cfg_.hedera);
      break;
    case SchedulerKind::kStaticOracle:
      install_static_oracle();
      break;
    case SchedulerKind::kPacketSpray:
      break;  // handled by the transport flag above
  }
}

Scenario::~Scenario() = default;

void apply_control_plane_faults(ScenarioConfig& cfg,
                                const ControlPlaneFaultProfile& profile) {
  auto& intent = cfg.pythia.instrumentation.channel;
  intent.drop_probability = profile.intent_loss;
  intent.jitter = profile.intent_jitter;
  intent.duplicate_probability = profile.intent_duplicate;
  cfg.controller.flow_mod_channel.drop_probability = profile.flow_mod_loss;
  cfg.controller.install_reject_probability = profile.install_reject;
  cfg.controller.flow_table_capacity = profile.flow_table_capacity;
}

void Scenario::install_static_oracle() {
  // Offline reference: with ground-truth knowledge of the background load,
  // pin every cross-rack server pair to the path with the highest residual
  // capacity. What a human operator with perfect knowledge would configure
  // statically — no prediction, no adaptation.
  for (net::NodeId src : topo_.hosts()) {
    for (net::NodeId dst : topo_.hosts()) {
      if (src == dst) continue;
      if (topo_.node(src).rack == topo_.node(dst).rack) continue;
      const auto& candidates = controller_->routing().paths(src, dst);
      const net::Path* best = nullptr;
      double best_residual = -1.0;
      for (const auto& p : candidates) {
        double residual = std::numeric_limits<double>::infinity();
        for (net::LinkId l : p.links) {
          residual =
              std::min(residual, fabric_->link_residual_capacity(l).bps());
        }
        if (residual > best_residual) {
          best_residual = residual;
          best = &p;
        }
      }
      if (best != nullptr) controller_->install_path(src, dst, *best);
    }
  }
}

hadoop::JobResult Scenario::run_job(const hadoop::JobSpec& spec) {
  submit_job(spec);
  return finish();
}

void Scenario::submit_job(const hadoop::JobSpec& spec) {
  assert(!job_submitted_ && "one outstanding job at a time");
  job_submitted_ = true;
  pending_result_.reset();
  engine_->submit(spec,
                  [this](const hadoop::JobResult& r) { pending_result_ = r; });
}

void Scenario::run_until(util::SimTime until) { sim_->run_until(until); }

void Scenario::run_to_event_count(std::uint64_t events) {
  while (sim_->queue().events_fired() < events && sim_->queue().run_one()) {
  }
}

hadoop::JobResult Scenario::finish() {
  assert(job_submitted_ && "finish() without submit_job()");
  // Run until the queue drains; the engine keeps events pending while the
  // job is live, and all periodic apps self-quiesce once traffic stops.
  sim_->run();
  if (!pending_result_.has_value()) {
    throw std::runtime_error("simulation drained before job completion");
  }
  job_submitted_ = false;
  hadoop::JobResult result = std::move(*pending_result_);
  pending_result_.reset();
  return result;
}

}  // namespace pythia::exp
