#include "experiments/trace.hpp"

#include <utility>

#include "core/pythia_system.hpp"
#include "experiments/scenario.hpp"
#include "sdn/controller.hpp"

namespace pythia::exp {

namespace {
std::string ns_str(util::SimTime t) { return std::to_string(t.ns()); }
}  // namespace

EventTraceRecorder::EventTraceRecorder(Scenario& scenario)
    : scenario_(&scenario) {
  scenario.fabric().add_observer(this);
  scenario.engine().add_observer(this);
}

std::string EventTraceRecorder::text() const {
  std::string out;
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void EventTraceRecorder::add(util::SimTime at, std::string line) {
  poll_control_plane(at);
  lines_.push_back(std::move(line));
}

void EventTraceRecorder::poll_control_plane(util::SimTime at) {
  const std::uint64_t installed = scenario_->controller().rules_installed();
  if (installed != seen_rules_installed_) {
    lines_.push_back("t=" + ns_str(at) + " rules_installed=" +
                     std::to_string(installed));
    seen_rules_installed_ = installed;
  }
  core::PythiaSystem* pythia = scenario_->pythia();
  if (pythia != nullptr) {
    const bool engaged = pythia->watchdog().engaged();
    if (engaged != seen_engaged_) {
      lines_.push_back("t=" + ns_str(at) + " watchdog " +
                       (engaged ? "reengaged" : "fallback"));
      seen_engaged_ = engaged;
    }
  }
}

void EventTraceRecorder::on_flow_started(const net::Fabric& fabric,
                                         net::FlowId flow, util::SimTime at) {
  const net::Flow& f = fabric.flow(flow);
  add(at, "t=" + ns_str(at) + " flow_start id=" +
              std::to_string(flow.value()) + " src=" +
              std::to_string(f.spec.src.value()) + " dst=" +
              std::to_string(f.spec.dst.value()) + " size=" +
              std::to_string(f.spec.size.count()));
}

void EventTraceRecorder::on_flow_completed(const net::Fabric& /*fabric*/,
                                           net::FlowId flow,
                                           util::SimTime at) {
  add(at,
      "t=" + ns_str(at) + " flow_end id=" + std::to_string(flow.value()));
}

void EventTraceRecorder::on_map_output_ready(
    const hadoop::MapOutputNotice& notice) {
  add(notice.at, "t=" + ns_str(notice.at) + " map_output job=" +
                     std::to_string(notice.job_serial) + " map=" +
                     std::to_string(notice.map_index) + " server=" +
                     std::to_string(notice.server.value()));
}

void EventTraceRecorder::on_reducer_started(std::size_t job_serial,
                                            std::size_t reduce_index,
                                            net::NodeId server,
                                            util::SimTime at) {
  add(at, "t=" + ns_str(at) + " reducer_start job=" +
              std::to_string(job_serial) + " reducer=" +
              std::to_string(reduce_index) + " server=" +
              std::to_string(server.value()));
}

void EventTraceRecorder::on_fetch_started(std::size_t job_serial,
                                          const hadoop::FetchRecord& fetch,
                                          net::FlowId flow) {
  add(fetch.started,
      "t=" + ns_str(fetch.started) + " fetch_start job=" +
          std::to_string(job_serial) + " map=" +
          std::to_string(fetch.map_index) + " reducer=" +
          std::to_string(fetch.reduce_index) + " bytes=" +
          std::to_string(fetch.payload.count()) +
          (fetch.remote ? " flow=" + std::to_string(flow.value()) : " local"));
}

void EventTraceRecorder::on_fetch_completed(std::size_t job_serial,
                                            const hadoop::FetchRecord& fetch) {
  add(fetch.completed,
      "t=" + ns_str(fetch.completed) + " fetch_end job=" +
          std::to_string(job_serial) + " map=" +
          std::to_string(fetch.map_index) + " reducer=" +
          std::to_string(fetch.reduce_index));
}

void EventTraceRecorder::on_job_completed(std::size_t job_serial,
                                          const hadoop::JobResult& result) {
  add(result.completed,
      "t=" + ns_str(result.completed) + " job_done job=" +
          std::to_string(job_serial) + " completion_ns=" +
          std::to_string(result.completion_time().ns()) + " maps=" +
          std::to_string(result.maps.size()) + " reducers=" +
          std::to_string(result.reducers.size()) + " fetches=" +
          std::to_string(result.fetches.size()));
}

}  // namespace pythia::exp
