#include "experiments/crash_handler.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <mutex>

#include <unistd.h>

#include "util/log.hpp"

namespace pythia::exp {

namespace {

constexpr std::size_t kLabelCap = 128;
constexpr std::size_t kMaxThreads = 256;

/// One thread's crash context. All fields are lock-free atomics (or bytes
/// only written before `active` flips true) so the signal handler can read
/// them without synchronization.
struct RunStamp {
  std::atomic<bool> active{false};
  std::atomic<std::size_t> run_index{0};
  std::atomic<std::int64_t> sim_time_ns{-1};
  std::atomic<std::uint64_t> events_fired{0};
  char label[kLabelCap] = {};
};

/// Global registry of per-thread stamps. Slots are claimed once per thread
/// and never freed (threads in the pool live for the process lifetime);
/// the handler scans only claimed slots.
RunStamp g_stamps[kMaxThreads];
std::atomic<std::size_t> g_stamp_count{0};

RunStamp* thread_stamp() {
  thread_local RunStamp* slot = [] {
    const std::size_t i = g_stamp_count.fetch_add(1);
    return i < kMaxThreads ? &g_stamps[i] : nullptr;
  }();
  return slot;
}

/// write(2)-only formatting helpers — the only operations that are safe
/// inside a signal handler.
void write_str(const char* s) {
  const auto ignored = write(STDERR_FILENO, s, std::strlen(s));
  (void)ignored;
}

void write_u64(std::uint64_t v) {
  char buf[21];
  char* p = buf + sizeof(buf);
  *--p = '\0';
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  write_str(p);
}

void write_i64(std::int64_t v) {
  if (v < 0) {
    write_str("-");
    write_u64(static_cast<std::uint64_t>(-v));
  } else {
    write_u64(static_cast<std::uint64_t>(v));
  }
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

void crash_report(int sig) {
  write_str("\n=== pythia crash handler: ");
  write_str(signal_name(sig));
  write_str(" ===\n");
  const std::size_t n =
      std::min(g_stamp_count.load(std::memory_order_acquire), kMaxThreads);
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    const RunStamp& s = g_stamps[i];
    if (!s.active.load(std::memory_order_acquire)) continue;
    any = true;
    write_str("  run #");
    write_u64(s.run_index.load(std::memory_order_relaxed));
    if (s.label[0] != '\0') {
      write_str(" (");
      write_str(s.label);
      write_str(")");
    }
    const std::int64_t t = s.sim_time_ns.load(std::memory_order_relaxed);
    write_str(": sim_time_ns=");
    write_i64(t);
    write_str(" events_fired=");
    write_u64(s.events_fired.load(std::memory_order_relaxed));
    write_str("\n");
  }
  if (!any) write_str("  (no run in flight)\n");
  write_str("=== end crash report ===\n");
  // Not strictly async-signal-safe, but the process is dying; losing the
  // buffered log tail is the alternative.
  util::flush_logs();
}

void on_fatal_signal(int sig) {
  crash_report(sig);
  // Restore the default disposition and re-raise so the exit status (and
  // any core dump) is what the OS would have produced without us.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_crash_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM}) {
      std::signal(sig, on_fatal_signal);
    }
  });
}

void crash_stamp_run(std::size_t run_index, const std::string& label) {
  RunStamp* s = thread_stamp();
  if (s == nullptr) return;
  s->active.store(false, std::memory_order_release);
  s->run_index.store(run_index, std::memory_order_relaxed);
  s->sim_time_ns.store(-1, std::memory_order_relaxed);
  s->events_fired.store(0, std::memory_order_relaxed);
  const std::size_t len = std::min(label.size(), kLabelCap - 1);
  std::memcpy(s->label, label.data(), len);
  s->label[len] = '\0';
  s->active.store(true, std::memory_order_release);
}

void crash_stamp_progress(std::int64_t sim_time_ns,
                          std::uint64_t events_fired) {
  RunStamp* s = thread_stamp();
  if (s == nullptr) return;
  s->sim_time_ns.store(sim_time_ns, std::memory_order_relaxed);
  s->events_fired.store(events_fired, std::memory_order_relaxed);
}

void crash_stamp_clear() {
  RunStamp* s = thread_stamp();
  if (s == nullptr) return;
  s->active.store(false, std::memory_order_release);
}

}  // namespace pythia::exp
