#include "experiments/sweep.hpp"

#include <charconv>
#include <cstdio>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace pythia::exp {

std::vector<OversubPoint> paper_oversubscription_points() {
  return {{"none", 1.0}, {"1:2", 2.0}, {"1:5", 5.0}, {"1:10", 10.0},
          {"1:20", 20.0}};
}

double run_completion_seconds(const ScenarioConfig& cfg,
                              const hadoop::JobSpec& job) {
  Scenario scenario(cfg);
  return scenario.run_job(job).completion_time().seconds();
}

namespace {

/// Shortest representation that round-trips the exact double — byte-stable
/// across runs and thread counts, locale-independent.
std::string exact_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points, ParallelRunner& runner) {
  // Canonical run order: point-major, then arm (baseline first), then seed.
  // Every run derives its whole universe from its (point, arm, seed) cell,
  // so the gathered vector is independent of worker scheduling.
  const std::size_t seeds = sweep.seeds.size();
  const std::size_t runs_per_point = 2 * seeds;
  const auto completions = runner.map<double>(
      points.size() * runs_per_point, [&](std::size_t i) {
        const std::size_t point_idx = i / runs_per_point;
        const std::size_t arm = (i % runs_per_point) / seeds;
        const std::size_t seed_idx = i % seeds;
        ScenarioConfig cfg = sweep.base;
        cfg.seed = sweep.seeds[seed_idx];
        cfg.background.oversubscription = points[point_idx].ratio;
        cfg.scheduler = arm == 0 ? sweep.baseline : sweep.treatment;
        return run_completion_seconds(cfg, job);
      });

  std::vector<SpeedupRow> rows;
  rows.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    util::RunningStats base_stats;
    util::RunningStats treat_stats;
    for (std::size_t s = 0; s < seeds; ++s) {
      base_stats.add(completions[p * runs_per_point + s]);
      treat_stats.add(completions[p * runs_per_point + seeds + s]);
    }
    SpeedupRow row;
    row.label = points[p].label;
    row.baseline_mean_s = base_stats.mean();
    row.baseline_stddev_s = base_stats.stddev();
    row.treatment_mean_s = treat_stats.mean();
    row.treatment_stddev_s = treat_stats.stddev();
    rows.push_back(row);
  }
  return rows;
}

std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points, RunnerCounters* counters) {
  ParallelRunner runner(sweep.threads);
  auto rows = run_oversubscription_sweep(sweep, job, points, runner);
  if (counters != nullptr) *counters = runner.counters();
  return rows;
}

util::Table speedup_table(const std::vector<SpeedupRow>& rows,
                          const std::string& baseline_name,
                          const std::string& treatment_name) {
  util::Table table({"oversubscription", baseline_name + " (s)",
                     treatment_name + " (s)", "speedup"});
  for (const auto& row : rows) {
    table.add_row({row.label, util::Table::num(row.baseline_mean_s, 1),
                   util::Table::num(row.treatment_mean_s, 1),
                   util::Table::percent(row.speedup())});
  }
  return table;
}

std::string speedup_rows_csv(const std::vector<SpeedupRow>& rows) {
  std::string out =
      "oversubscription,baseline_mean_s,baseline_stddev_s,"
      "treatment_mean_s,treatment_stddev_s,speedup\n";
  for (const auto& row : rows) {
    out += util::CsvWriter::escape(row.label);
    out += ',';
    out += exact_double(row.baseline_mean_s);
    out += ',';
    out += exact_double(row.baseline_stddev_s);
    out += ',';
    out += exact_double(row.treatment_mean_s);
    out += ',';
    out += exact_double(row.treatment_stddev_s);
    out += ',';
    out += exact_double(row.speedup());
    out += '\n';
  }
  return out;
}

std::string runner_counters_summary(const RunnerCounters& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu runs in %.2f s wall on %zu thread%s (worker "
                "utilization %.0f%%)",
                static_cast<unsigned long long>(c.runs_completed),
                c.wall_seconds, c.threads, c.threads == 1 ? "" : "s",
                c.utilization() * 100.0);
  return buf;
}

std::vector<LadderRow> run_scheduler_ladder(
    const ScenarioConfig& base, const hadoop::JobSpec& job,
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<std::uint64_t>& seeds, std::size_t threads,
    RunnerCounters* counters) {
  ParallelRunner runner(threads);
  const std::size_t per_sched = seeds.size();
  const auto completions = runner.map<double>(
      schedulers.size() * per_sched, [&](std::size_t i) {
        ScenarioConfig cfg = base;
        cfg.seed = seeds[i % per_sched];
        cfg.scheduler = schedulers[i / per_sched];
        return run_completion_seconds(cfg, job);
      });

  std::vector<LadderRow> rows;
  rows.reserve(schedulers.size());
  for (std::size_t k = 0; k < schedulers.size(); ++k) {
    util::RunningStats stats;
    for (std::size_t s = 0; s < per_sched; ++s) {
      stats.add(completions[k * per_sched + s]);
    }
    rows.push_back(LadderRow{scheduler_name(schedulers[k]), stats.mean(),
                             stats.stddev()});
  }
  if (counters != nullptr) *counters = runner.counters();
  return rows;
}

}  // namespace pythia::exp
