#include "experiments/sweep.hpp"

#include <charconv>
#include <cstdio>

#include "experiments/checkpoint.hpp"
#include "experiments/manifest.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace pythia::exp {

std::vector<OversubPoint> paper_oversubscription_points() {
  return {{"none", 1.0}, {"1:2", 2.0}, {"1:5", 5.0}, {"1:10", 10.0},
          {"1:20", 20.0}};
}

double run_completion_seconds(const ScenarioConfig& cfg,
                              const hadoop::JobSpec& job) {
  Scenario scenario(cfg);
  return scenario.run_job(job).completion_time().seconds();
}

namespace {

/// Shortest representation that round-trips the exact double — byte-stable
/// across runs and thread counts, locale-independent.
std::string exact_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points, ParallelRunner& runner) {
  // Canonical run order: point-major, then arm (baseline first), then seed.
  // Every run derives its whole universe from its (point, arm, seed) cell,
  // so the gathered vector is independent of worker scheduling.
  const std::size_t seeds = sweep.seeds.size();
  const std::size_t runs_per_point = 2 * seeds;
  const auto completions = runner.map<double>(
      points.size() * runs_per_point, [&](std::size_t i) {
        const std::size_t point_idx = i / runs_per_point;
        const std::size_t arm = (i % runs_per_point) / seeds;
        const std::size_t seed_idx = i % seeds;
        ScenarioConfig cfg = sweep.base;
        cfg.seed = sweep.seeds[seed_idx];
        cfg.background.oversubscription = points[point_idx].ratio;
        cfg.scheduler = arm == 0 ? sweep.baseline : sweep.treatment;
        return run_completion_seconds(cfg, job);
      });

  std::vector<SpeedupRow> rows;
  rows.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    util::RunningStats base_stats;
    util::RunningStats treat_stats;
    for (std::size_t s = 0; s < seeds; ++s) {
      base_stats.add(completions[p * runs_per_point + s]);
      treat_stats.add(completions[p * runs_per_point + seeds + s]);
    }
    SpeedupRow row;
    row.label = points[p].label;
    row.baseline_mean_s = base_stats.mean();
    row.baseline_stddev_s = base_stats.stddev();
    row.treatment_mean_s = treat_stats.mean();
    row.treatment_stddev_s = treat_stats.stddev();
    rows.push_back(row);
  }
  return rows;
}

std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points, RunnerCounters* counters) {
  ParallelRunner runner(sweep.threads);
  auto rows = run_oversubscription_sweep(sweep, job, points, runner);
  if (counters != nullptr) *counters = runner.counters();
  return rows;
}

std::uint64_t sweep_fingerprint(const SweepConfig& sweep,
                                const hadoop::JobSpec& job,
                                const std::vector<OversubPoint>& points) {
  // Mix the per-cell scenario fingerprints: every (point, arm, seed) cell's
  // full universe contributes, so any knob that could change any run's
  // result changes the fingerprint.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(points.size());
  mix(sweep.seeds.size());
  for (const OversubPoint& point : points) {
    for (std::size_t arm = 0; arm < 2; ++arm) {
      for (std::uint64_t seed : sweep.seeds) {
        ScenarioConfig cfg = sweep.base;
        cfg.seed = seed;
        cfg.background.oversubscription = point.ratio;
        cfg.scheduler = arm == 0 ? sweep.baseline : sweep.treatment;
        mix(scenario_fingerprint(cfg, job));
      }
    }
  }
  return h;
}

GuardedSweepResult run_oversubscription_sweep_guarded(
    const GuardedSweepConfig& cfg, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points, RunnerCounters* counters) {
  const SweepConfig& sweep = cfg.sweep;
  const std::size_t seeds = sweep.seeds.size();
  const std::size_t runs_per_point = 2 * seeds;
  const std::size_t total_runs = points.size() * runs_per_point;

  GuardedSweepResult result;

  SweepManifest manifest;
  std::vector<bool> cached(total_runs, false);
  if (!cfg.manifest_path.empty()) {
    result.resumed_runs = manifest.open(
        cfg.manifest_path, sweep_fingerprint(sweep, job, points), total_runs);
    for (std::size_t i = 0; i < total_runs; ++i) cached[i] = manifest.has_ok(i);
  }

  const auto cell_of = [&](std::size_t i) {
    struct Cell {
      std::size_t point_idx;
      std::size_t arm;
      std::size_t seed_idx;
    };
    return Cell{i / runs_per_point, (i % runs_per_point) / seeds, i % seeds};
  };
  const auto cell_config = [&](std::size_t i) {
    const auto cell = cell_of(i);
    ScenarioConfig run_cfg = sweep.base;
    run_cfg.seed = sweep.seeds[cell.seed_idx];
    run_cfg.background.oversubscription = points[cell.point_idx].ratio;
    run_cfg.scheduler = cell.arm == 0 ? sweep.baseline : sweep.treatment;
    return run_cfg;
  };

  RunGuard guard = cfg.guard;
  if (!guard.describe) {
    guard.describe = [&, cell_of](std::size_t i) {
      const auto cell = cell_of(i);
      return "point " + points[cell.point_idx].label + " arm " +
             scheduler_name(cell.arm == 0 ? sweep.baseline : sweep.treatment) +
             " seed " + std::to_string(sweep.seeds[cell.seed_idx]);
    };
  }

  ParallelRunner runner(sweep.threads);
  const auto outcomes = runner.map_guarded<double>(
      total_runs,
      [&](std::size_t i, const RunContext& ctx) {
        if (cached[i]) return manifest.value(i);  // bit-exact resume
        Scenario scenario(cell_config(i));
        ctx.bind(scenario.simulation());
        return scenario.run_job(job).completion_time().seconds();
      },
      guard);
  if (counters != nullptr) *counters = runner.counters();

  // Record outcomes (skip manifest-served runs — already on disk) and
  // collect typed failures in canonical index order.
  for (std::size_t i = 0; i < total_runs; ++i) {
    const GuardedResult<double>& out = outcomes[i];
    if (out.ok()) {
      if (manifest.is_open() && !cached[i]) manifest.record_ok(i, out.value);
      continue;
    }
    if (manifest.is_open()) {
      manifest.record_failure(i, run_failure_name(out.failure),
                              static_cast<std::uint32_t>(out.attempts));
    }
    const auto cell = cell_of(i);
    SweepRunFailure failure;
    failure.run_index = i;
    failure.point_label = points[cell.point_idx].label;
    failure.arm =
        scheduler_name(cell.arm == 0 ? sweep.baseline : sweep.treatment);
    failure.seed = sweep.seeds[cell.seed_idx];
    failure.kind = out.failure;
    failure.attempts = out.attempts;
    failure.message = out.message;
    result.failures.push_back(std::move(failure));
  }

  // Aggregate rows over surviving runs only; with zero failures this is
  // byte-identical to the unguarded sweep.
  result.rows.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    util::RunningStats base_stats;
    util::RunningStats treat_stats;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto& base = outcomes[p * runs_per_point + s];
      const auto& treat = outcomes[p * runs_per_point + seeds + s];
      if (base.ok()) base_stats.add(base.value);
      if (treat.ok()) treat_stats.add(treat.value);
    }
    SpeedupRow row;
    row.label = points[p].label;
    row.baseline_mean_s = base_stats.mean();
    row.baseline_stddev_s = base_stats.stddev();
    row.treatment_mean_s = treat_stats.mean();
    row.treatment_stddev_s = treat_stats.stddev();
    result.rows.push_back(row);
  }
  return result;
}

util::Table speedup_table(const std::vector<SpeedupRow>& rows,
                          const std::string& baseline_name,
                          const std::string& treatment_name) {
  util::Table table({"oversubscription", baseline_name + " (s)",
                     treatment_name + " (s)", "speedup"});
  for (const auto& row : rows) {
    table.add_row({row.label, util::Table::num(row.baseline_mean_s, 1),
                   util::Table::num(row.treatment_mean_s, 1),
                   util::Table::percent(row.speedup())});
  }
  return table;
}

std::string speedup_rows_csv(const std::vector<SpeedupRow>& rows) {
  std::string out =
      "oversubscription,baseline_mean_s,baseline_stddev_s,"
      "treatment_mean_s,treatment_stddev_s,speedup\n";
  for (const auto& row : rows) {
    out += util::CsvWriter::escape(row.label);
    out += ',';
    out += exact_double(row.baseline_mean_s);
    out += ',';
    out += exact_double(row.baseline_stddev_s);
    out += ',';
    out += exact_double(row.treatment_mean_s);
    out += ',';
    out += exact_double(row.treatment_stddev_s);
    out += ',';
    out += exact_double(row.speedup());
    out += '\n';
  }
  return out;
}

std::string runner_counters_summary(const RunnerCounters& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu runs in %.2f s wall on %zu thread%s (worker "
                "utilization %.0f%%)",
                static_cast<unsigned long long>(c.runs_completed),
                c.wall_seconds, c.threads, c.threads == 1 ? "" : "s",
                c.utilization() * 100.0);
  return buf;
}

std::vector<LadderRow> run_scheduler_ladder(
    const ScenarioConfig& base, const hadoop::JobSpec& job,
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<std::uint64_t>& seeds, std::size_t threads,
    RunnerCounters* counters) {
  ParallelRunner runner(threads);
  const std::size_t per_sched = seeds.size();
  const auto completions = runner.map<double>(
      schedulers.size() * per_sched, [&](std::size_t i) {
        ScenarioConfig cfg = base;
        cfg.seed = seeds[i % per_sched];
        cfg.scheduler = schedulers[i / per_sched];
        return run_completion_seconds(cfg, job);
      });

  std::vector<LadderRow> rows;
  rows.reserve(schedulers.size());
  for (std::size_t k = 0; k < schedulers.size(); ++k) {
    util::RunningStats stats;
    for (std::size_t s = 0; s < per_sched; ++s) {
      stats.add(completions[k * per_sched + s]);
    }
    rows.push_back(LadderRow{scheduler_name(schedulers[k]), stats.mean(),
                             stats.stddev()});
  }
  if (counters != nullptr) *counters = runner.counters();
  return rows;
}

}  // namespace pythia::exp
