#include "experiments/sweep.hpp"

#include "util/stats.hpp"

namespace pythia::exp {

std::vector<OversubPoint> paper_oversubscription_points() {
  return {{"none", 1.0}, {"1:2", 2.0}, {"1:5", 5.0}, {"1:10", 10.0},
          {"1:20", 20.0}};
}

double run_completion_seconds(const ScenarioConfig& cfg,
                              const hadoop::JobSpec& job) {
  Scenario scenario(cfg);
  return scenario.run_job(job).completion_time().seconds();
}

std::vector<SpeedupRow> run_oversubscription_sweep(
    const SweepConfig& sweep, const hadoop::JobSpec& job,
    const std::vector<OversubPoint>& points) {
  std::vector<SpeedupRow> rows;
  rows.reserve(points.size());
  for (const auto& point : points) {
    util::RunningStats base_stats;
    util::RunningStats treat_stats;
    for (std::uint64_t seed : sweep.seeds) {
      ScenarioConfig cfg = sweep.base;
      cfg.seed = seed;
      cfg.background.oversubscription = point.ratio;

      cfg.scheduler = sweep.baseline;
      base_stats.add(run_completion_seconds(cfg, job));

      cfg.scheduler = sweep.treatment;
      treat_stats.add(run_completion_seconds(cfg, job));
    }
    SpeedupRow row;
    row.label = point.label;
    row.baseline_mean_s = base_stats.mean();
    row.baseline_stddev_s = base_stats.stddev();
    row.treatment_mean_s = treat_stats.mean();
    row.treatment_stddev_s = treat_stats.stddev();
    rows.push_back(row);
  }
  return rows;
}

util::Table speedup_table(const std::vector<SpeedupRow>& rows,
                          const std::string& baseline_name,
                          const std::string& treatment_name) {
  util::Table table({"oversubscription", baseline_name + " (s)",
                     treatment_name + " (s)", "speedup"});
  for (const auto& row : rows) {
    table.add_row({row.label, util::Table::num(row.baseline_mean_s, 1),
                   util::Table::num(row.treatment_mean_s, 1),
                   util::Table::percent(row.speedup())});
  }
  return table;
}

std::vector<LadderRow> run_scheduler_ladder(
    const ScenarioConfig& base, const hadoop::JobSpec& job,
    const std::vector<SchedulerKind>& schedulers,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<LadderRow> rows;
  rows.reserve(schedulers.size());
  for (SchedulerKind kind : schedulers) {
    util::RunningStats stats;
    for (std::uint64_t seed : seeds) {
      ScenarioConfig cfg = base;
      cfg.seed = seed;
      cfg.scheduler = kind;
      stats.add(run_completion_seconds(cfg, job));
    }
    rows.push_back(LadderRow{scheduler_name(kind), stats.mean(),
                             stats.stddev()});
  }
  return rows;
}

}  // namespace pythia::exp
