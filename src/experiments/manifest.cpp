#include "experiments/manifest.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pythia::exp {

namespace {

constexpr const char* kHeaderMagic = "pythia-sweep-manifest v1";

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex_u64(const std::string& s, std::uint64_t& out) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') return false;
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

/// "key=value" token split; returns false when `token` lacks the key.
bool token_value(const std::string& token, const char* key,
                 std::string& out) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  out = token.substr(prefix.size());
  return true;
}

}  // namespace

std::size_t SweepManifest::open(const std::string& path,
                                std::uint64_t fingerprint,
                                std::size_t run_count) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  entries_.assign(run_count, std::nullopt);

  std::size_t loaded_ok = 0;
  bool valid = false;
  {
    std::ifstream in(path_);
    if (in) {
      std::string line;
      if (std::getline(in, line) && line == kHeaderMagic) {
        std::string fp_line;
        std::string runs_line;
        if (std::getline(in, fp_line) && std::getline(in, runs_line)) {
          std::uint64_t fp = 0;
          std::string fp_str;
          std::string runs_str;
          std::istringstream fp_stream(fp_line);
          std::istringstream runs_stream(runs_line);
          std::string fp_key;
          std::string runs_key;
          fp_stream >> fp_key >> fp_str;
          runs_stream >> runs_key >> runs_str;
          if (fp_key == "fingerprint" && parse_hex_u64(fp_str, fp) &&
              fp == fingerprint && runs_key == "runs" &&
              runs_str == std::to_string(run_count)) {
            valid = true;
            while (std::getline(in, line)) {
              std::istringstream ls(line);
              std::string tag;
              ls >> tag;
              if (tag != "run") continue;
              std::size_t index = run_count;
              Entry entry;
              std::string token;
              while (ls >> token) {
                std::string value;
                if (token_value(token, "index", value)) {
                  index = static_cast<std::size_t>(std::stoull(value));
                } else if (token_value(token, "status", value)) {
                  entry.ok = value == "ok";
                } else if (token_value(token, "value", value)) {
                  if (!parse_hex_u64(value, entry.value_bits)) {
                    index = run_count;  // corrupt line: ignore
                    break;
                  }
                } else if (token_value(token, "kind", value)) {
                  entry.failure_kind = value;
                } else if (token_value(token, "attempts", value)) {
                  entry.attempts =
                      static_cast<std::uint32_t>(std::stoul(value));
                }
              }
              if (index < run_count) entries_[index] = entry;
            }
            for (const auto& e : entries_) {
              if (e.has_value() && e->ok) ++loaded_ok;
            }
          }
        }
      }
    }
  }

  if (!valid) {
    // Fresh start: write the header, truncating whatever was there.
    entries_.assign(run_count, std::nullopt);
    std::ofstream out(path_, std::ios::trunc);
    out << kHeaderMagic << "\n";
    out << "fingerprint " << hex_u64(fingerprint) << "\n";
    out << "runs " << run_count << "\n";
    out.flush();
  }
  return loaded_ok;
}

bool SweepManifest::has_ok(std::size_t index) const {
  assert(index < entries_.size());
  return entries_[index].has_value() && entries_[index]->ok;
}

double SweepManifest::value(std::size_t index) const {
  assert(has_ok(index));
  return std::bit_cast<double>(entries_[index]->value_bits);
}

void SweepManifest::record_ok(std::size_t index, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(index < entries_.size());
  Entry entry;
  entry.ok = true;
  entry.value_bits = std::bit_cast<std::uint64_t>(value);
  entries_[index] = entry;
  append_line("run index=" + std::to_string(index) +
              " status=ok value=" + hex_u64(entry.value_bits));
}

void SweepManifest::record_failure(std::size_t index, const std::string& kind,
                                   std::uint32_t attempts) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(index < entries_.size());
  Entry entry;
  entry.ok = false;
  entry.failure_kind = kind;
  entry.attempts = attempts;
  entries_[index] = entry;
  append_line("run index=" + std::to_string(index) +
              " status=failed kind=" + kind +
              " attempts=" + std::to_string(attempts));
}

void SweepManifest::append_line(const std::string& line) {
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  out << line << "\n";
  out.flush();
}

}  // namespace pythia::exp
