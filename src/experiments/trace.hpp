// Deterministic event-trace recording for golden-file regression tests.
//
// EventTraceRecorder attaches to a Scenario's fabric and engine observers and
// serializes every interesting event — flow starts/completions, map outputs,
// reducer starts, fetch lifecycle, control-plane rule installs, watchdog
// fallback/re-engagement transitions — as one text line each. Times are the
// simulator's integer nanoseconds and sizes integer bytes, so the trace is
// bit-reproducible across platforms and engine refactors that preserve
// behavior produce byte-identical traces (the golden-trace test's contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hadoop/engine.hpp"
#include "net/fabric.hpp"

namespace pythia::exp {

class Scenario;

class EventTraceRecorder : public net::FabricObserver,
                           public hadoop::EngineObserver {
 public:
  /// Attaches to the scenario's fabric and engine. The recorder must outlive
  /// every run_job() call it observes.
  explicit EventTraceRecorder(Scenario& scenario);

  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }
  /// The full trace, one event per line, trailing newline included.
  [[nodiscard]] std::string text() const;

  // FabricObserver
  void on_flow_started(const net::Fabric& fabric, net::FlowId flow,
                       util::SimTime at) override;
  void on_flow_completed(const net::Fabric& fabric, net::FlowId flow,
                         util::SimTime at) override;

  // EngineObserver
  void on_map_output_ready(const hadoop::MapOutputNotice& notice) override;
  void on_reducer_started(std::size_t job_serial, std::size_t reduce_index,
                          net::NodeId server, util::SimTime at) override;
  void on_fetch_started(std::size_t job_serial,
                        const hadoop::FetchRecord& fetch,
                        net::FlowId flow) override;
  void on_fetch_completed(std::size_t job_serial,
                          const hadoop::FetchRecord& fetch) override;
  void on_job_completed(std::size_t job_serial,
                        const hadoop::JobResult& result) override;

 private:
  /// Emits rule-install deltas and watchdog transitions that happened since
  /// the previous event, stamping them with the current event's time.
  void poll_control_plane(util::SimTime at);
  void add(util::SimTime at, std::string line);

  Scenario* scenario_;
  std::vector<std::string> lines_;
  std::uint64_t seen_rules_installed_ = 0;
  bool seen_engaged_ = true;
};

}  // namespace pythia::exp
