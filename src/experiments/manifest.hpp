// Sweep checkpoint manifest: resumable progress for long parameter sweeps.
//
// An append-only text file records one line per finished run (ok with its
// result value, or failed with the failure kind). A re-launched sweep opens
// the same manifest, skips every run already recorded ok, and re-attempts
// failed/missing ones — so a crash or kill loses at most the runs that were
// in flight. The header carries the sweep's config fingerprint; a manifest
// written under a different fingerprint is discarded (a resumed sweep must
// be the same universe, or its cached values would silently be wrong).
//
// Values are stored as hex-encoded IEEE-754 bit patterns, never formatted
// decimals, so a resumed sweep's output is bit-identical to a clean one.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace pythia::exp {

class SweepManifest {
 public:
  struct Entry {
    bool ok = false;
    /// IEEE-754 bit pattern of the run's result value (valid when ok).
    std::uint64_t value_bits = 0;
    /// Failure kind name ("timeout", "exception") when !ok.
    std::string failure_kind;
    std::uint32_t attempts = 0;
  };

  SweepManifest() = default;
  SweepManifest(const SweepManifest&) = delete;
  SweepManifest& operator=(const SweepManifest&) = delete;

  /// Opens (or creates) the manifest at `path` for a sweep of `run_count`
  /// runs under `fingerprint`. An existing file with a matching header is
  /// loaded — completed runs become resumable; a mismatched or corrupt file
  /// is truncated and the sweep starts fresh. Returns the number of runs
  /// loaded as ok.
  std::size_t open(const std::string& path, std::uint64_t fingerprint,
                   std::size_t run_count);

  [[nodiscard]] bool is_open() const { return !path_.empty(); }
  [[nodiscard]] std::size_t run_count() const { return entries_.size(); }

  /// True when run `index` already completed ok in a previous launch.
  [[nodiscard]] bool has_ok(std::size_t index) const;
  /// The recorded value for an ok run (bit-exact).
  [[nodiscard]] double value(std::size_t index) const;
  /// The recorded entry, if any (ok or failed).
  [[nodiscard]] const std::optional<Entry>& entry(std::size_t index) const {
    return entries_[index];
  }

  /// Records a run completion; appends to the file and flushes immediately
  /// so a crash right after loses nothing. Thread-safe.
  void record_ok(std::size_t index, double value);
  void record_failure(std::size_t index, const std::string& kind,
                      std::uint32_t attempts);

 private:
  void append_line(const std::string& line);

  std::string path_;
  std::vector<std::optional<Entry>> entries_;
  std::mutex mu_;
};

}  // namespace pythia::exp
