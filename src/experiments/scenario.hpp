// Experiment scenario: one fully wired testbed instance.
//
// Builds the topology, fluid fabric, SDN controller, background traffic,
// MapReduce engine, and the selected flow scheduler, then runs jobs to
// completion. Every evaluation bench and integration test goes through this.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pythia_system.hpp"
#include "hadoop/engine.hpp"
#include "net/background.hpp"
#include "net/fabric.hpp"
#include "net/netflow.hpp"
#include "net/topology.hpp"
#include "sdn/controller.hpp"
#include "sdn/hedera_app.hpp"
#include "sim/simulation.hpp"

namespace pythia::exp {

enum class SchedulerKind {
  kEcmp,          // baseline: hash-based, load-unaware (paper's comparator)
  kPythia,        // full system: prediction + load-aware first-fit
  kHedera,        // reactive load-aware elephant rescheduling
  kFlowCombLike,  // prediction-driven but load-blind and slower to detect
  kStaticOracle,  // offline: pin all cross-rack pairs to the least-loaded path
  kPacketSpray,   // idealized MPTCP-style striping across all equal paths
};

[[nodiscard]] std::string scheduler_name(SchedulerKind kind);

enum class TopologyKind { kTwoRack, kLeafSpine };

struct ScenarioConfig {
  std::uint64_t seed = 1;

  TopologyKind topology_kind = TopologyKind::kTwoRack;
  net::TwoRackConfig two_rack;
  net::LeafSpineConfig leaf_spine;

  net::BackgroundSpec background;
  sdn::ControllerConfig controller;
  sdn::HederaConfig hedera;
  core::PythiaConfig pythia;
  /// Extra intent delay applied in the kFlowCombLike arm.
  util::Duration flowcomb_extra_delay = util::Duration::seconds_i(3);

  /// Slot/copy parameters; `servers` is filled from the topology.
  hadoop::ClusterConfig cluster;

  SchedulerKind scheduler = SchedulerKind::kEcmp;
  /// Attach a NetFlow probe on the shuffle port (needed for Fig. 5).
  bool enable_netflow = false;
  /// Fabric rate engine; kFullRecompute only for differential testing and
  /// baseline benchmarking (allocations are identical by construction).
  net::RateEngine rate_engine = net::RateEngine::kIncremental;
  /// Defer fabric rate recomputes to same-instant cohort boundaries (one
  /// recompute per burst of simultaneous events). Observationally identical
  /// to eager recomputes; see docs/architecture.md.
  bool coalesce_cohorts = false;
};

/// One knob set for the control-plane fault ablation: how broken are the two
/// control channels and the switch tables. All zeros (the default) leaves the
/// scenario byte-identical to a fault-free run.
struct ControlPlaneFaultProfile {
  /// Drop probability on instrumentation→collector intent messages.
  double intent_loss = 0.0;
  /// Random extra delay on intent messages (uniform in [0, jitter]).
  util::Duration intent_jitter = util::Duration::zero();
  /// Duplicate probability on intent messages.
  double intent_duplicate = 0.0;
  /// Drop probability on controller→switch flow-mods.
  double flow_mod_loss = 0.0;
  /// Probability a switch rejects an install attempt outright.
  double install_reject = 0.0;
  /// Per-switch flow-table budget for host-pair rules (0 = unbounded).
  std::size_t flow_table_capacity = 0;
};

/// Applies a fault profile to the scenario's controller + Pythia configs.
void apply_control_plane_faults(ScenarioConfig& cfg,
                                const ControlPlaneFaultProfile& profile);

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Submits the job, runs the simulation until it completes, returns the
  /// result. Can be called repeatedly for job sequences.
  hadoop::JobResult run_job(const hadoop::JobSpec& spec);

  // --- partial-run API (checkpoint capture, divergence bisection) ---

  /// Submits `spec` without running the simulation. Pair with run_until /
  /// run_to_event_count and close with finish(). One outstanding job at a
  /// time (asserted).
  void submit_job(const hadoop::JobSpec& spec);
  /// Runs events with timestamp <= `until`; the clock parks at `until`.
  void run_until(util::SimTime until);
  /// Runs until the simulation has fired `events` events in total (counted
  /// from construction, i.e. an absolute event cursor); stops early if the
  /// queue drains.
  void run_to_event_count(std::uint64_t events);
  /// True once the job submitted via submit_job has completed.
  [[nodiscard]] bool job_done() const { return pending_result_.has_value(); }
  /// Drains the queue and returns the submitted job's result.
  hadoop::JobResult finish();

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] const net::Topology& topology() const { return topo_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] sdn::Controller& controller() { return *controller_; }
  [[nodiscard]] hadoop::MapReduceEngine& engine() { return *engine_; }
  /// Null unless the scheduler is kPythia or kFlowCombLike.
  [[nodiscard]] core::PythiaSystem* pythia() { return pythia_.get(); }
  /// Null unless the scheduler is kHedera.
  [[nodiscard]] sdn::HederaApp* hedera() { return hedera_.get(); }
  /// Null unless enable_netflow.
  [[nodiscard]] net::NetFlowProbe* netflow() { return netflow_.get(); }
  [[nodiscard]] const net::BackgroundHandle& background() const {
    return background_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& servers() const {
    return servers_;
  }

 private:
  void install_static_oracle();

  /// Result slot for the partial-run API; engaged when the job completes.
  std::optional<hadoop::JobResult> pending_result_;
  bool job_submitted_ = false;

  ScenarioConfig cfg_;
  net::Topology topo_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<sdn::Controller> controller_;
  std::unique_ptr<net::NetFlowProbe> netflow_;
  net::BackgroundHandle background_;
  std::vector<net::NodeId> servers_;
  std::unique_ptr<hadoop::MapReduceEngine> engine_;
  std::unique_ptr<core::PythiaSystem> pythia_;
  std::unique_ptr<sdn::HederaApp> hedera_;
};

}  // namespace pythia::exp
