#include "net/topology.hpp"

#include <algorithm>
#include <cassert>

namespace pythia::net {

NodeId Topology::add_host(std::string name, int rack) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{id, NodeKind::kHost, std::move(name), rack});
  out_.emplace_back();
  node_group_.push_back(kCoreGroup);
  return id;
}

NodeId Topology::add_switch(std::string name, int rack) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{id, NodeKind::kSwitch, std::move(name), rack});
  out_.emplace_back();
  node_group_.push_back(kCoreGroup);
  return id;
}

void Topology::set_node_group(NodeId n, std::int32_t group) {
  assert(n.valid() && n.value() < nodes_.size());
  assert(group >= kCoreGroup);
  node_group_[n.value()] = group;
  if (group >= 0) {
    group_count_ = std::max(group_count_, static_cast<std::size_t>(group) + 1);
  }
}

std::int32_t Topology::link_group(LinkId l) const {
  const Link& link = links_[l.value()];
  const std::int32_t a = node_group_[link.src.value()];
  const std::int32_t b = node_group_[link.dst.value()];
  return a == b ? a : kCoreGroup;
}

LinkId Topology::add_link(NodeId src, NodeId dst, util::BitsPerSec capacity) {
  assert(src.valid() && src.value() < nodes_.size());
  assert(dst.valid() && dst.value() < nodes_.size());
  assert(src != dst);
  assert(capacity.bps() > 0.0);
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(Link{id, src, dst, capacity});
  out_[src.value()].push_back(id);
  return id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, util::BitsPerSec capacity) {
  const LinkId forward = add_link(a, b, capacity);
  add_link(b, a, capacity);
  return forward;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kHost) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kSwitch) out.push_back(n.id);
  }
  return out;
}

std::optional<LinkId> Topology::find_link(NodeId src, NodeId dst) const {
  for (LinkId l : out_links(src)) {
    if (links_[l.value()].dst == dst) return l;
  }
  return std::nullopt;
}

std::uint32_t Topology::address_of(NodeId n) const {
  const auto& node = nodes_[n.value()];
  const auto rack = static_cast<std::uint32_t>(node.rack < 0 ? 255 : node.rack);
  return (10u << 24) | ((rack & 0xffu) << 16) | (n.value() & 0xffffu);
}

bool Topology::validate_path(NodeId src, NodeId dst,
                             const std::vector<LinkId>& path) const {
  if (path.empty()) return src == dst;
  NodeId cursor = src;
  for (LinkId l : path) {
    if (!l.valid() || l.value() >= links_.size()) return false;
    const Link& link = links_[l.value()];
    if (link.src != cursor) return false;
    cursor = link.dst;
  }
  return cursor == dst;
}

Topology make_two_rack(const TwoRackConfig& cfg) {
  assert(cfg.servers_per_rack > 0);
  assert(cfg.inter_rack_links > 0);
  Topology topo;
  const NodeId tor0 = topo.add_switch("tor-0", 0);
  const NodeId tor1 = topo.add_switch("tor-1", 1);
  topo.set_node_group(tor0, 0);
  topo.set_node_group(tor1, 1);
  for (std::size_t r = 0; r < 2; ++r) {
    const NodeId tor = r == 0 ? tor0 : tor1;
    for (std::size_t s = 0; s < cfg.servers_per_rack; ++s) {
      const NodeId host = topo.add_host(
          "server-" + std::to_string(r * cfg.servers_per_rack + s),
          static_cast<int>(r));
      topo.set_node_group(host, static_cast<std::int32_t>(r));
      topo.add_duplex(host, tor, cfg.host_link);
    }
  }
  // Each parallel inter-rack cable gets its own pass-through "wire" switch so
  // that k-shortest-path routing enumerates the cables as distinct paths, the
  // way an OpenFlow rule selects a distinct ToR egress port.
  for (std::size_t i = 0; i < cfg.inter_rack_links; ++i) {
    const NodeId wire = topo.add_switch("wire-" + std::to_string(i));
    topo.add_duplex(tor0, wire, cfg.inter_rack_capacity);
    topo.add_duplex(wire, tor1, cfg.inter_rack_capacity);
  }
  return topo;
}

Topology make_leaf_spine(const LeafSpineConfig& cfg) {
  assert(cfg.racks > 0 && cfg.servers_per_rack > 0 && cfg.spines > 0);
  Topology topo;
  std::vector<NodeId> tors;
  tors.reserve(cfg.racks);
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    tors.push_back(topo.add_switch("tor-" + std::to_string(r),
                                   static_cast<int>(r)));
    topo.set_node_group(tors.back(), static_cast<std::int32_t>(r));
  }
  std::vector<NodeId> spines;
  spines.reserve(cfg.spines);
  for (std::size_t s = 0; s < cfg.spines; ++s) {
    spines.push_back(topo.add_switch("spine-" + std::to_string(s)));
  }
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    for (std::size_t s = 0; s < cfg.servers_per_rack; ++s) {
      const NodeId host = topo.add_host(
          "server-" + std::to_string(r * cfg.servers_per_rack + s),
          static_cast<int>(r));
      topo.set_node_group(host, static_cast<std::int32_t>(r));
      topo.add_duplex(host, tors[r], cfg.host_link);
    }
  }
  for (NodeId tor : tors) {
    for (NodeId spine : spines) {
      topo.add_duplex(tor, spine, cfg.uplink);
    }
  }
  return topo;
}

Topology make_fat_tree(const FatTreeConfig& cfg) {
  assert(cfg.k >= 2 && cfg.k % 2 == 0 && "fat-tree arity must be even");
  const std::size_t k = cfg.k;
  const std::size_t half = k / 2;
  const std::size_t hosts_per_edge =
      cfg.hosts_per_edge == 0 ? half : cfg.hosts_per_edge;
  Topology topo;

  std::vector<NodeId> cores;
  cores.reserve(half * half);
  for (std::size_t c = 0; c < half * half; ++c) {
    cores.push_back(topo.add_switch("core-" + std::to_string(c)));
  }

  std::size_t host_seq = 0;
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<NodeId> edges;
    std::vector<NodeId> aggs;
    edges.reserve(half);
    aggs.reserve(half);
    const auto pod_group = static_cast<std::int32_t>(pod);
    for (std::size_t e = 0; e < half; ++e) {
      const int rack = static_cast<int>(pod * half + e);
      edges.push_back(topo.add_switch(
          "edge-" + std::to_string(pod) + "-" + std::to_string(e), rack));
      topo.set_node_group(edges.back(), pod_group);
    }
    for (std::size_t a = 0; a < half; ++a) {
      aggs.push_back(topo.add_switch("agg-" + std::to_string(pod) + "-" +
                                     std::to_string(a)));
      topo.set_node_group(aggs.back(), pod_group);
    }
    for (std::size_t e = 0; e < half; ++e) {
      const int rack = static_cast<int>(pod * half + e);
      for (std::size_t h = 0; h < hosts_per_edge; ++h) {
        const NodeId host =
            topo.add_host("server-" + std::to_string(host_seq++), rack);
        topo.set_node_group(host, pod_group);
        topo.add_duplex(host, edges[e], cfg.host_link);
      }
      for (std::size_t a = 0; a < half; ++a) {
        topo.add_duplex(edges[e], aggs[a], cfg.edge_agg);
      }
    }
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        topo.add_duplex(aggs[a], cores[a * half + c], cfg.agg_core);
      }
    }
  }
  return topo;
}

std::vector<NodeId> hosts_under(const Topology& topo, NodeId edge_switch) {
  std::vector<NodeId> out;
  for (LinkId l : topo.out_links(edge_switch)) {
    const NodeId dst = topo.link(l).dst;
    if (topo.node(dst).kind == NodeKind::kHost) out.push_back(dst);
  }
  return out;
}

}  // namespace pythia::net
