// Identifier and flow-descriptor types shared across the network stack.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace pythia::net {

/// Strongly typed 32-bit index; Tag distinguishes id spaces at compile time.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }
  friend constexpr auto operator<=>(Id, Id) = default;

  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

 private:
  std::uint32_t v_ = kInvalid;
};

using NodeId = Id<struct NodeTag>;
using LinkId = Id<struct LinkTag>;
using FlowId = Id<struct FlowTag>;
using CbrId = Id<struct CbrTag>;

/// Index into a PathPool (net/routing.hpp); interned paths are immutable and
/// ids stay valid across routing-graph rebuilds on the same topology. A
/// topology *switch* clears the pool and silently invalidates every
/// outstanding id, so unlike the Id<> instantiations above PathId carries a
/// debug-only pool-generation stamp: PathPool::path() asserts the stamp
/// matches the pool's current generation, turning use-after-clear into a
/// deterministic abort instead of a wrong-path read. Release builds carry no
/// stamp and behave exactly like a bare 32-bit index.
class PathId {
 public:
  constexpr PathId() = default;
  constexpr explicit PathId(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }
  /// Equality and ordering use the index only; the debug stamp is metadata.
  friend constexpr bool operator==(PathId a, PathId b) { return a.v_ == b.v_; }
  friend constexpr auto operator<=>(PathId a, PathId b) {
    return a.v_ <=> b.v_;
  }

  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

#ifndef NDEBUG
  [[nodiscard]] constexpr std::uint32_t debug_generation() const {
    return gen_;
  }
  constexpr void debug_set_generation(std::uint32_t gen) { gen_ = gen; }
#endif

 private:
  std::uint32_t v_ = kInvalid;
#ifndef NDEBUG
  std::uint32_t gen_ = 0;  // PathPool generation this id was minted under
#endif
};

/// Classic 5-tuple; ECMP hashes it, Pythia cannot know dst_port in advance
/// (paper §IV) which is why it aggregates at server granularity instead.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

/// Traffic class carried by a flow; used by NetFlow filtering (the paper's
/// probes filter on the Hadoop shuffle port) and by scheduler bookkeeping.
enum class FlowClass : std::uint8_t { kShuffle, kBackground, kControl, kOther };

/// Well-known ports in the model, mirroring the Hadoop 1.x defaults.
inline constexpr std::uint16_t kShufflePort = 50060;   // tasktracker HTTP
inline constexpr std::uint16_t kCollectorPort = 9090;  // Pythia collector

}  // namespace pythia::net

template <typename Tag>
struct std::hash<pythia::net::Id<Tag>> {
  std::size_t operator()(pythia::net::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<pythia::net::PathId> {
  std::size_t operator()(pythia::net::PathId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
