#include "net/background.hpp"

#include <algorithm>
#include <cassert>

namespace pythia::net {

namespace {

/// Strips the first and last hop (host <-> ToR access links) from a
/// host-to-host path, leaving the inter-rack chain.
std::vector<LinkId> inter_rack_chain(const Path& path) {
  assert(path.links.size() >= 2);
  return {path.links.begin() + 1, path.links.end() - 1};
}

util::BitsPerSec chain_capacity(const Topology& topo,
                                const std::vector<LinkId>& chain) {
  double cap = std::numeric_limits<double>::infinity();
  for (LinkId l : chain) {
    cap = std::min(cap, topo.link(l).capacity.bps());
  }
  return util::BitsPerSec{cap};
}

}  // namespace

BackgroundHandle install_background(Fabric& fabric,
                                    const RoutingGraph& routing,
                                    NodeId host_in_rack_a,
                                    NodeId host_in_rack_b,
                                    const BackgroundSpec& spec) {
  assert(spec.oversubscription >= 1.0);
  BackgroundHandle handle;
  if (spec.oversubscription <= 1.0) return handle;
  const double base_fraction = 1.0 - 1.0 / spec.oversubscription;

  const auto intensity = [&spec](std::size_t i) {
    if (spec.path_intensity.empty()) return 1.0;
    return spec.path_intensity[std::min(i, spec.path_intensity.size() - 1)];
  };

  for (const auto& [src, dst] :
       {std::pair{host_in_rack_a, host_in_rack_b},
        std::pair{host_in_rack_b, host_in_rack_a}}) {
    const auto& paths = routing.paths(src, dst);
    assert(!paths.empty() && "background reference hosts must be connected");
    for (std::size_t i = 0; i < paths.size(); ++i) {
      auto chain = inter_rack_chain(paths[i]);
      if (chain.empty()) continue;  // same-rack reference hosts
      const auto cap = chain_capacity(fabric.topology(), chain);
      const util::BitsPerSec rate{cap.bps() * base_fraction * intensity(i)};
      if (rate.bps() <= 0.0) continue;
      handle.streams.push_back(fabric.start_cbr(chain, rate));
      handle.chains.push_back(std::move(chain));
      handle.rates.push_back(rate);
    }
  }
  return handle;
}

void remove_background(Fabric& fabric, const BackgroundHandle& handle) {
  for (CbrId id : handle.streams) {
    fabric.stop_cbr(id);
  }
}

}  // namespace pythia::net
