#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::net {

namespace {
/// A flow whose settled remainder drops below this is considered delivered;
/// sub-byte residue is floating-point noise from rate integration.
constexpr double kDoneEpsilonBytes = 0.5;
constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kNoLink = std::numeric_limits<std::uint32_t>::max();

/// Min-heap order on (eta, slot); slot breaks ties deterministically.
struct EtaLater {
  bool operator()(const auto& a, const auto& b) const {
    if (a.eta_ns != b.eta_ns) return a.eta_ns > b.eta_ns;
    return a.slot > b.slot;
  }
};
}  // namespace

Fabric::Fabric(sim::Simulation& sim, const Topology& topo, FabricConfig cfg)
    : sim_(&sim),
      topo_(&topo),
      cfg_(cfg),
      link_flows_(topo.link_count()),
      cbr_load_bps_(topo.link_count(), 0.0),
      link_up_(topo.link_count(), 1),
      elastic_rate_bps_(topo.link_count(), 0.0),
      class_rate_bps_(topo.link_count(), {0.0, 0.0, 0.0, 0.0}),
      link_dirty_(topo.link_count(), 0),
      residual_(topo.link_count(), 0.0),
      unfixed_weight_(topo.link_count(), 0.0),
      unfixed_count_(topo.link_count(), 0),
      link_share_(topo.link_count(), 0.0),
      link_in_comp_(topo.link_count(), 0),
      last_settle_(sim.now()) {}

std::uint32_t Fabric::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(flows_.size());
  flows_.emplace_back();
  callbacks_.emplace_back();
  active_pos_.push_back(kNoPos);
  flow_fixed_.push_back(0);
  flow_in_comp_.push_back(0);
  eta_stamp_.push_back(0);
  return slot;
}

void Fabric::release_slot(std::uint32_t slot) {
  // The completed Flow record stays readable until the slot is reused.
  callbacks_[slot] = nullptr;
  ++eta_stamp_[slot];
  free_slots_.push_back(slot);
}

void Fabric::insert_link_flow(LinkId l, FlowId id) {
  auto& v = link_flows_[l.value()];
  v.insert(std::upper_bound(v.begin(), v.end(), id,
                            [](FlowId a, FlowId b) {
                              return a.value() < b.value();
                            }),
           id);
}

void Fabric::remove_link_flow(LinkId l, FlowId id) {
  auto& v = link_flows_[l.value()];
  const auto it = std::lower_bound(v.begin(), v.end(), id,
                                   [](FlowId a, FlowId b) {
                                     return a.value() < b.value();
                                   });
  assert(it != v.end() && *it == id);
  v.erase(it);
}

void Fabric::mark_dirty(LinkId l) {
  if (link_dirty_[l.value()]) return;
  link_dirty_[l.value()] = 1;
  dirty_links_.push_back(l.value());
}

void Fabric::mark_all_dirty() {
  for (std::uint32_t l = 0; l < link_dirty_.size(); ++l) {
    if (!link_dirty_[l]) {
      link_dirty_[l] = 1;
      dirty_links_.push_back(l);
    }
  }
}

void Fabric::clear_dirty() {
  for (std::uint32_t l : dirty_links_) link_dirty_[l] = 0;
  dirty_links_.clear();
}

double Fabric::elastic_headroom(std::uint32_t l) const {
  if (!link_up_[l]) return 0.0;
  return std::max(
      0.0, topo_->link(LinkId{l}).capacity.bps() - cbr_load_bps_[l]);
}

FlowId Fabric::start_flow(FlowSpec spec, FlowCompleteFn on_complete) {
  assert(topo_->validate_path(spec.src, spec.dst, spec.path) &&
         "flow path must connect src to dst");
  assert(spec.size >= util::Bytes::zero());
  const std::uint32_t slot = acquire_slot();
  Flow& f = flows_[slot];
  f = Flow{};
  f.id = FlowId{slot};
  f.spec = std::move(spec);
  f.started = sim_->now();
  f.remaining_bytes = f.spec.size.as_double();
  const FlowId id = f.id;
  ++flows_started_;
  callbacks_[slot] = std::move(on_complete);

  if (f.remaining_bytes <= kDoneEpsilonBytes) {
    // Zero-byte flow: complete immediately (still async via the queue so that
    // callers never re-enter themselves synchronously). The start event fires
    // first so observers that pair start/complete state stay consistent.
    f.completed = true;
    f.completed_at = sim_->now();
    f.reported_bytes = f.spec.size.count();
    ++flows_completed_;
    bytes_delivered_ += f.spec.size;
    for (auto* obs : observers_) {
      obs->on_flow_started(*this, id, sim_->now());
    }
    sim_->after(util::Duration::zero(), [this, slot] {
      const FlowId done{slot};
      for (auto* obs : observers_) {
        obs->on_flow_completed(*this, done, sim_->now());
      }
      auto fn = std::move(callbacks_[slot]);
      callbacks_[slot] = nullptr;
      if (fn) fn(done, sim_->now());
      release_slot(slot);
    });
    return id;
  }

  assert(!f.spec.path.empty() && "a non-local flow needs a link path");
  active_pos_[slot] = static_cast<std::uint32_t>(active_.size());
  active_.push_back(id);
  for (LinkId l : f.spec.path) {
    insert_link_flow(l, id);
    mark_dirty(l);
  }
  settle_and_recompute();
  for (auto* obs : observers_) {
    obs->on_flow_started(*this, id, sim_->now());
  }
  return id;
}

void Fabric::set_flow_weight(FlowId id, double weight) {
  assert(id.value() < flows_.size());
  assert(weight > 0.0);
  Flow& f = flows_[id.value()];
  if (f.completed || f.spec.weight == weight) return;
  settle();
  f.spec.weight = weight;
  for (LinkId l : f.spec.path) mark_dirty(l);
  recompute_rates();
  schedule_next_completion();
}

void Fabric::reroute_flow(FlowId id, std::vector<LinkId> new_path) {
  assert(id.value() < flows_.size());
  Flow& f = flows_[id.value()];
  if (f.completed) return;
  assert(topo_->validate_path(f.spec.src, f.spec.dst, new_path) &&
         "reroute path must connect the flow's endpoints");
  settle();  // account bytes moved on the old path first
  for (LinkId l : f.spec.path) {
    remove_link_flow(l, id);
    mark_dirty(l);
  }
  f.spec.path = std::move(new_path);
  for (LinkId l : f.spec.path) {
    insert_link_flow(l, id);
    mark_dirty(l);
  }
  recompute_rates();
  schedule_next_completion();
}

CbrId Fabric::start_cbr(std::vector<LinkId> path, util::BitsPerSec rate) {
  assert(rate.bps() >= 0.0);
  const CbrId id{static_cast<std::uint32_t>(cbrs_.size())};
  for (LinkId l : path) {
    assert(l.value() < cbr_load_bps_.size());
    cbr_load_bps_[l.value()] += rate.bps();
    mark_dirty(l);
  }
  cbrs_.push_back(CbrStream{std::move(path), rate.bps(), true});
  settle_and_recompute();
  return id;
}

void Fabric::stop_cbr(CbrId id) {
  assert(id.value() < cbrs_.size());
  CbrStream& s = cbrs_[id.value()];
  assert(s.active && "CBR stream already stopped");
  for (LinkId l : s.path) {
    cbr_load_bps_[l.value()] -= s.rate_bps;
    if (cbr_load_bps_[l.value()] < 0.0) cbr_load_bps_[l.value()] = 0.0;
    mark_dirty(l);
  }
  s.active = false;
  settle_and_recompute();
}

util::BitsPerSec Fabric::link_cbr_load(LinkId l) const {
  return util::BitsPerSec{cbr_load_bps_[l.value()]};
}

util::BitsPerSec Fabric::link_elastic_rate(LinkId l) const {
  return util::BitsPerSec{elastic_rate_bps_[l.value()]};
}

util::BitsPerSec Fabric::link_class_rate(LinkId l, FlowClass cls) const {
  return util::BitsPerSec{
      class_rate_bps_[l.value()][static_cast<std::size_t>(cls)]};
}

double Fabric::link_utilization(LinkId l) const {
  if (!link_up_[l.value()]) return 0.0;  // a dead port serves nothing
  const double cap = topo_->link(l).capacity.bps();
  if (cap <= 0.0) return 0.0;
  const double used =
      std::min(cbr_load_bps_[l.value()], cap) + elastic_rate_bps_[l.value()];
  return std::clamp(used / cap, 0.0, 1.0);
}

util::BitsPerSec Fabric::link_residual_capacity(LinkId l) const {
  return util::BitsPerSec{elastic_headroom(l.value())};
}

void Fabric::fail_link(LinkId l) {
  assert(l.value() < link_up_.size());
  if (!link_up_[l.value()]) return;
  link_up_[l.value()] = 0;
  mark_dirty(l);
  settle_and_recompute();
}

void Fabric::restore_link(LinkId l) {
  assert(l.value() < link_up_.size());
  if (link_up_[l.value()]) return;
  link_up_[l.value()] = 1;
  mark_dirty(l);
  settle_and_recompute();
}

const Flow& Fabric::flow(FlowId id) const {
  assert(id.value() < flows_.size());
  return flows_[id.value()];
}

bool Fabric::flow_active(FlowId id) const {
  return id.value() < flows_.size() && !flows_[id.value()].completed;
}

std::vector<FlowId> Fabric::active_flows() const {
  std::vector<FlowId> out = active_;
  std::sort(out.begin(), out.end(),
            [](FlowId a, FlowId b) { return a.value() < b.value(); });
  return out;
}

void Fabric::settle() {
  const util::SimTime now = sim_->now();
  const util::Duration dt = now - last_settle_;
  if (dt <= util::Duration::zero()) {
    last_settle_ = now;
    return;
  }
  ++counters_.settles;
  const double secs = dt.seconds();
  for (FlowId id : active_) {
    Flow& f = flows_[id.value()];
    const double moved =
        std::min(f.remaining_bytes, f.rate.bytes_per_sec() * secs);
    if (moved > 0.0) f.remaining_bytes -= moved;
    // Report integer bytes with a carried fractional residue: observers see
    // floor(delivered) cumulatively and exactly spec.size once the flow is
    // done, so probe totals never drift from the delivered volume.
    const std::int64_t target =
        f.remaining_bytes <= kDoneEpsilonBytes
            ? f.spec.size.count()
            : static_cast<std::int64_t>(f.spec.size.as_double() -
                                        f.remaining_bytes);
    const std::int64_t whole = target - f.reported_bytes;
    if (whole > 0) {
      f.reported_bytes = target;
      for (auto* obs : observers_) {
        obs->on_bytes_moved(*this, id, util::Bytes{whole}, last_settle_, now);
      }
    }
  }
  last_settle_ = now;
}

void Fabric::set_rate(Flow& f, double rate_bps) {
  const util::BitsPerSec r{rate_bps};
  if (f.rate == r) return;  // eta unchanged: absolute deadline is invariant
  f.rate = r;
  push_eta(f);
}

void Fabric::push_eta(Flow& f) {
  const std::uint32_t slot = f.id.value();
  const std::uint64_t stamp = ++eta_stamp_[slot];
  if (f.rate.bps() <= 0.0) return;  // starved: re-examined on the next change
  // Ceil to the next nanosecond so the settled remainder at the event is
  // never still above the epsilon.
  const double secs = f.remaining_bytes / f.rate.bytes_per_sec();
  const auto eta_ns =
      sim_->now().ns() + static_cast<std::int64_t>(std::ceil(secs * 1e9));
  eta_heap_.push_back(EtaEntry{eta_ns, slot, stamp});
  std::push_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
  if (eta_heap_.size() > 64 && eta_heap_.size() > 8 * active_.size()) {
    compact_eta_heap();
  }
}

void Fabric::compact_eta_heap() {
  std::erase_if(eta_heap_, [this](const EtaEntry& e) {
    return e.stamp != eta_stamp_[e.slot];
  });
  std::make_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
}

void Fabric::recompute_rates() {
  ++counters_.recomputes;
  if (cfg_.rate_engine == RateEngine::kFullRecompute) {
    clear_dirty();
    fill_full();
    return;
  }
  if (dirty_links_.empty()) return;  // probe-forced accounting point
  collect_component();
  clear_dirty();
  fill_component();
}

void Fabric::collect_component() {
  // BFS over the bipartite link/flow graph from the dirty seed: any flow
  // crossing a touched link, and any link such a flow crosses, can see its
  // allocation change; everything outside the closure provably cannot.
  comp_links_.clear();
  comp_flows_.clear();
  for (std::uint32_t l : dirty_links_) {
    link_in_comp_[l] = 1;
    comp_links_.push_back(l);
  }
  for (std::size_t head = 0; head < comp_links_.size(); ++head) {
    const std::uint32_t l = comp_links_[head];
    for (FlowId fid : link_flows_[l]) {
      const std::uint32_t slot = fid.value();
      if (flow_in_comp_[slot]) continue;
      flow_in_comp_[slot] = 1;
      comp_flows_.push_back(slot);
      for (LinkId l2 : flows_[slot].spec.path) {
        if (link_in_comp_[l2.value()]) continue;
        link_in_comp_[l2.value()] = 1;
        comp_links_.push_back(l2.value());
      }
    }
  }
  std::sort(comp_links_.begin(), comp_links_.end());
  for (std::uint32_t l : comp_links_) link_in_comp_[l] = 0;
  for (std::uint32_t s : comp_flows_) flow_in_comp_[s] = 0;
  counters_.links_touched += comp_links_.size();
  counters_.flows_touched += comp_flows_.size();
  if (comp_links_.size() == link_flows_.size()) ++counters_.full_fills;
}

void Fabric::fill_component() {
  for (std::uint32_t l : comp_links_) {
    elastic_rate_bps_[l] = 0.0;
    class_rate_bps_[l].fill(0.0);
    residual_[l] = elastic_headroom(l);
    double weight = 0.0;
    std::uint32_t count = 0;
    for (FlowId fid : link_flows_[l]) {
      weight += flows_[fid.value()].spec.weight;
      ++count;
    }
    unfixed_weight_[l] = weight;
    unfixed_count_[l] = count;
    link_share_[l] = residual_[l] / std::max(weight, 1e-12);
  }
  for (std::uint32_t slot : comp_flows_) flow_fixed_[slot] = 0;

  // Weighted progressive filling: repeatedly saturate the link with the
  // smallest fair share per unit weight, freeze its flows at weight x share,
  // and subtract them everywhere. Weight 1 on every flow degenerates to the
  // classic max-min allocation. Candidate links that empty out are compacted
  // away (in order) so later rounds scan only still-contended links.
  cand_links_ = comp_links_;
  std::size_t remaining_flows = comp_flows_.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_link = kNoLink;
    std::size_t out = 0;
    for (std::size_t i = 0; i < cand_links_.size(); ++i) {
      const std::uint32_t l = cand_links_[i];
      // The integer count is the authoritative emptiness test: the weight
      // sum accumulates floating-point residue as flows freeze.
      if (unfixed_count_[l] == 0) continue;
      cand_links_[out++] = l;
      const double share = link_share_[l];  // cached, refreshed on freeze
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    cand_links_.resize(out);
    assert(best_link != kNoLink);
    if (best_share < 0.0) best_share = 0.0;

    // Freeze every unfixed flow crossing the bottleneck (ascending by id —
    // the same order the full fill visits them).
    for (FlowId fid : link_flows_[best_link]) {
      const std::uint32_t slot = fid.value();
      if (flow_fixed_[slot]) continue;
      Flow& f = flows_[slot];
      const double rate = best_share * f.spec.weight;
      set_rate(f, rate);
      flow_fixed_[slot] = 1;
      --remaining_flows;
      for (LinkId l : f.spec.path) {
        const std::uint32_t lv = l.value();
        residual_[lv] = std::max(0.0, residual_[lv] - rate);
        unfixed_weight_[lv] =
            std::max(0.0, unfixed_weight_[lv] - f.spec.weight);
        assert(unfixed_count_[lv] > 0);
        --unfixed_count_[lv];
        link_share_[lv] = residual_[lv] / std::max(unfixed_weight_[lv], 1e-12);
      }
    }
  }

  for (std::uint32_t l : comp_links_) {
    for (FlowId fid : link_flows_[l]) {
      const Flow& f = flows_[fid.value()];
      elastic_rate_bps_[l] += f.rate.bps();
      class_rate_bps_[l][static_cast<std::size_t>(f.spec.cls)] += f.rate.bps();
    }
  }
}

void Fabric::fill_full() {
  // The original O(rounds × links × flows) progressive fill, preserved as
  // the baseline. Flows are visited in ascending id order at every step so
  // the floating-point operation sequence matches fill_component() exactly
  // (the differential tests rely on bit-identical allocations).
  counters_.links_touched += link_flows_.size();
  counters_.flows_touched += active_.size();
  ++counters_.full_fills;

  sorted_active_ = active_;
  std::sort(sorted_active_.begin(), sorted_active_.end(),
            [](FlowId a, FlowId b) { return a.value() < b.value(); });

  std::fill(elastic_rate_bps_.begin(), elastic_rate_bps_.end(), 0.0);
  for (auto& per_class : class_rate_bps_) per_class.fill(0.0);
  for (std::uint32_t l = 0; l < residual_.size(); ++l) {
    residual_[l] = elastic_headroom(l);
    unfixed_weight_[l] = 0.0;
    unfixed_count_[l] = 0;
  }
  for (FlowId id : sorted_active_) {
    const Flow& f = flows_[id.value()];
    flow_fixed_[id.value()] = 0;
    for (LinkId l : f.spec.path) {
      unfixed_weight_[l.value()] += f.spec.weight;
      ++unfixed_count_[l.value()];
    }
  }

  std::size_t remaining_flows = sorted_active_.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_link = kNoLink;
    for (std::uint32_t l = 0; l < residual_.size(); ++l) {
      if (unfixed_count_[l] == 0) continue;
      const double share = residual_[l] / std::max(unfixed_weight_[l], 1e-12);
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    assert(best_link != kNoLink);
    if (best_share < 0.0) best_share = 0.0;

    for (FlowId id : sorted_active_) {
      const std::uint32_t slot = id.value();
      if (flow_fixed_[slot]) continue;
      Flow& f = flows_[slot];
      const bool crosses =
          std::any_of(f.spec.path.begin(), f.spec.path.end(),
                      [best_link](LinkId l) { return l.value() == best_link; });
      if (!crosses) continue;
      const double rate = best_share * f.spec.weight;
      set_rate(f, rate);
      flow_fixed_[slot] = 1;
      --remaining_flows;
      for (LinkId l : f.spec.path) {
        residual_[l.value()] = std::max(0.0, residual_[l.value()] - rate);
        unfixed_weight_[l.value()] =
            std::max(0.0, unfixed_weight_[l.value()] - f.spec.weight);
        assert(unfixed_count_[l.value()] > 0);
        --unfixed_count_[l.value()];
      }
    }
  }

  for (FlowId id : sorted_active_) {
    const Flow& f = flows_[id.value()];
    for (LinkId l : f.spec.path) {
      elastic_rate_bps_[l.value()] += f.rate.bps();
      class_rate_bps_[l.value()][static_cast<std::size_t>(f.spec.cls)] +=
          f.rate.bps();
    }
  }
}

void Fabric::schedule_next_completion() {
  while (!eta_heap_.empty() &&
         eta_heap_.front().stamp != eta_stamp_[eta_heap_.front().slot]) {
    std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
    eta_heap_.pop_back();
  }
  if (eta_heap_.empty()) {
    completion_event_.cancel();
    scheduled_eta_ns_ = -1;
    return;
  }
  const std::int64_t eta = eta_heap_.front().eta_ns;
  if (eta == scheduled_eta_ns_ && completion_event_.valid() &&
      !completion_event_.cancelled()) {
    return;  // already armed for this instant
  }
  completion_event_.cancel();
  scheduled_eta_ns_ = eta;
  completion_event_ =
      sim_->at(util::SimTime{eta}, [this] { on_completion_event(); });
}

void Fabric::on_completion_event() {
  scheduled_eta_ns_ = -1;
  settle();
  ++counters_.completion_events;
  const std::int64_t now_ns = sim_->now().ns();
  // Collect finished flows first: callbacks may start new flows, which
  // mutates active_ and triggers nested recomputes.
  std::vector<FlowId> done;
  while (!eta_heap_.empty()) {
    const EtaEntry top = eta_heap_.front();
    if (top.stamp != eta_stamp_[top.slot]) {
      std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
      eta_heap_.pop_back();
      continue;
    }
    if (top.eta_ns > now_ns) break;
    std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
    eta_heap_.pop_back();
    Flow& f = flows_[top.slot];
    if (f.remaining_bytes > kDoneEpsilonBytes) {
      push_eta(f);  // defensive: deadline drifted, re-arm
      continue;
    }
    done.push_back(f.id);
    const std::uint32_t pos = active_pos_[top.slot];
    assert(pos != kNoPos);
    active_[pos] = active_.back();
    active_pos_[active_.back().value()] = pos;
    active_.pop_back();
    active_pos_[top.slot] = kNoPos;
    for (LinkId l : f.spec.path) {
      remove_link_flow(l, f.id);
      mark_dirty(l);
    }
    ++eta_stamp_[top.slot];
    f.completed = true;
    f.completed_at = sim_->now();
    f.remaining_bytes = 0.0;
    f.rate = util::BitsPerSec::zero();
    ++flows_completed_;
    bytes_delivered_ += f.spec.size;
    PYTHIA_LOG(kDebug, "fabric")
        << "flow " << f.id.value() << " completed at "
        << sim_->now().seconds() << "s (" << f.spec.size.count()
        << " bytes)";
  }
  recompute_rates();
  schedule_next_completion();
  // Observer + user callbacks run after the fabric is consistent.
  for (FlowId id : done) {
    for (auto* obs : observers_) {
      obs->on_flow_completed(*this, id, sim_->now());
    }
  }
  for (FlowId id : done) {
    auto fn = std::move(callbacks_[id.value()]);
    callbacks_[id.value()] = nullptr;
    if (fn) fn(id, sim_->now());
  }
  // Slots recycle only after the whole batch has run its callbacks, so a
  // callback-started flow can never shadow a not-yet-notified sibling.
  for (FlowId id : done) release_slot(id.value());
}

void Fabric::settle_and_recompute() {
  settle();
  recompute_rates();
  schedule_next_completion();
}

void Fabric::encode_counters(sim::StateEncoder& enc) const {
  // Rate-engine observability: deterministic within one engine, but
  // kIncremental and kFullRecompute legitimately differ here even though
  // their allocations are contracted identical — which is why this lives in
  // its own snapshot section the cross-arm bisection skips.
  enc.put_u64(counters_.recomputes);
  enc.put_u64(counters_.full_fills);
  enc.put_u64(counters_.links_touched);
  enc.put_u64(counters_.flows_touched);
  enc.put_u64(counters_.completion_events);
  enc.put_u64(counters_.settles);
}

void Fabric::encode_state(sim::StateEncoder& enc) const {
  enc.put_u64(flows_started_);
  enc.put_u64(flows_completed_);
  enc.put_i64(bytes_delivered_.count());
  enc.put_time(last_settle_);
  enc.put_i64(scheduled_eta_ns_);

  const auto active = active_flows();  // ascending by id
  enc.put_u32(static_cast<std::uint32_t>(active.size()));
  for (FlowId id : active) {
    const Flow& f = flows_[id.value()];
    enc.put_u32(id.value());
    enc.put_u32(f.spec.src.value());
    enc.put_u32(f.spec.dst.value());
    enc.put_i64(f.spec.size.count());
    enc.put_u8(static_cast<std::uint8_t>(f.spec.cls));
    enc.put_f64(f.spec.weight);
    enc.put_u32(f.spec.tuple.src_ip);
    enc.put_u32(f.spec.tuple.dst_ip);
    enc.put_u32(f.spec.tuple.src_port);
    enc.put_u32(f.spec.tuple.dst_port);
    enc.put_u8(f.spec.tuple.proto);
    enc.put_u32(static_cast<std::uint32_t>(f.spec.path.size()));
    for (LinkId l : f.spec.path) enc.put_u32(l.value());
    enc.put_time(f.started);
    enc.put_f64(f.remaining_bytes);
    enc.put_f64(f.rate.bps());
    enc.put_i64(f.reported_bytes);
  }

  enc.put_u32(static_cast<std::uint32_t>(cbrs_.size()));
  for (const CbrStream& cbr : cbrs_) {
    enc.put_bool(cbr.active);
    enc.put_f64(cbr.rate_bps);
    enc.put_u32(static_cast<std::uint32_t>(cbr.path.size()));
    for (LinkId l : cbr.path) enc.put_u32(l.value());
  }

  enc.put_u32(static_cast<std::uint32_t>(topo_->link_count()));
  for (std::size_t l = 0; l < topo_->link_count(); ++l) {
    enc.put_bool(link_up_[l] != 0);
    enc.put_f64(cbr_load_bps_[l]);
    enc.put_f64(elastic_rate_bps_[l]);
    for (double cls_rate : class_rate_bps_[l]) enc.put_f64(cls_rate);
  }
}

}  // namespace pythia::net
