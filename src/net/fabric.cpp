#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/log.hpp"

namespace pythia::net {

namespace {
/// A flow whose settled remainder drops below this is considered delivered;
/// sub-byte residue is floating-point noise from rate integration.
constexpr double kDoneEpsilonBytes = 0.5;
}  // namespace

Fabric::Fabric(sim::Simulation& sim, const Topology& topo)
    : sim_(&sim),
      topo_(&topo),
      cbr_load_bps_(topo.link_count(), 0.0),
      link_up_(topo.link_count(), 1),
      elastic_rate_bps_(topo.link_count(), 0.0),
      class_rate_bps_(topo.link_count(), {0.0, 0.0, 0.0, 0.0}),
      last_settle_(sim.now()) {}

FlowId Fabric::start_flow(FlowSpec spec, FlowCompleteFn on_complete) {
  assert(topo_->validate_path(spec.src, spec.dst, spec.path) &&
         "flow path must connect src to dst");
  assert(spec.size >= util::Bytes::zero());
  const FlowId id{static_cast<std::uint32_t>(flows_.size())};
  Flow f;
  f.id = id;
  f.spec = std::move(spec);
  f.started = sim_->now();
  f.remaining_bytes = f.spec.size.as_double();
  flows_.push_back(std::move(f));
  ++flows_started_;
  if (on_complete) callbacks_[id.value()] = std::move(on_complete);

  if (flows_.back().remaining_bytes <= kDoneEpsilonBytes) {
    // Zero-byte flow: complete immediately (still async via the queue so that
    // callers never re-enter themselves synchronously).
    Flow& zf = flows_.back();
    zf.completed = true;
    zf.completed_at = sim_->now();
    ++flows_completed_;
    sim_->after(util::Duration::zero(), [this, id] {
      for (auto* obs : observers_) {
        obs->on_flow_completed(*this, id, sim_->now());
      }
      if (auto it = callbacks_.find(id.value()); it != callbacks_.end()) {
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        fn(id, sim_->now());
      }
    });
    return id;
  }

  active_.push_back(id);
  settle_and_recompute();
  for (auto* obs : observers_) {
    obs->on_flow_started(*this, id, sim_->now());
  }
  return id;
}

void Fabric::set_flow_weight(FlowId id, double weight) {
  assert(id.value() < flows_.size());
  assert(weight > 0.0);
  Flow& f = flows_[id.value()];
  if (f.completed || f.spec.weight == weight) return;
  settle();
  f.spec.weight = weight;
  recompute_rates();
  schedule_next_completion();
}

void Fabric::reroute_flow(FlowId id, std::vector<LinkId> new_path) {
  assert(id.value() < flows_.size());
  Flow& f = flows_[id.value()];
  if (f.completed) return;
  assert(topo_->validate_path(f.spec.src, f.spec.dst, new_path) &&
         "reroute path must connect the flow's endpoints");
  settle();  // account bytes moved on the old path first
  f.spec.path = std::move(new_path);
  recompute_rates();
  schedule_next_completion();
}

CbrId Fabric::start_cbr(std::vector<LinkId> path, util::BitsPerSec rate) {
  assert(rate.bps() >= 0.0);
  const CbrId id{static_cast<std::uint32_t>(cbrs_.size())};
  for (LinkId l : path) {
    assert(l.value() < cbr_load_bps_.size());
    cbr_load_bps_[l.value()] += rate.bps();
  }
  cbrs_.push_back(CbrStream{std::move(path), rate.bps(), true});
  settle_and_recompute();
  return id;
}

void Fabric::stop_cbr(CbrId id) {
  assert(id.value() < cbrs_.size());
  CbrStream& s = cbrs_[id.value()];
  assert(s.active && "CBR stream already stopped");
  for (LinkId l : s.path) {
    cbr_load_bps_[l.value()] -= s.rate_bps;
    if (cbr_load_bps_[l.value()] < 0.0) cbr_load_bps_[l.value()] = 0.0;
  }
  s.active = false;
  settle_and_recompute();
}

util::BitsPerSec Fabric::link_cbr_load(LinkId l) const {
  return util::BitsPerSec{cbr_load_bps_[l.value()]};
}

util::BitsPerSec Fabric::link_elastic_rate(LinkId l) const {
  return util::BitsPerSec{elastic_rate_bps_[l.value()]};
}

util::BitsPerSec Fabric::link_class_rate(LinkId l, FlowClass cls) const {
  return util::BitsPerSec{
      class_rate_bps_[l.value()][static_cast<std::size_t>(cls)]};
}

double Fabric::link_utilization(LinkId l) const {
  const double cap = topo_->link(l).capacity.bps();
  const double used =
      std::min(cbr_load_bps_[l.value()], cap) + elastic_rate_bps_[l.value()];
  return std::clamp(used / cap, 0.0, 1.0);
}

util::BitsPerSec Fabric::link_residual_capacity(LinkId l) const {
  if (!link_up_[l.value()]) return util::BitsPerSec::zero();
  const double cap = topo_->link(l).capacity.bps();
  return util::BitsPerSec{std::max(0.0, cap - cbr_load_bps_[l.value()])};
}

void Fabric::fail_link(LinkId l) {
  assert(l.value() < link_up_.size());
  if (!link_up_[l.value()]) return;
  link_up_[l.value()] = 0;
  settle_and_recompute();
}

void Fabric::restore_link(LinkId l) {
  assert(l.value() < link_up_.size());
  if (link_up_[l.value()]) return;
  link_up_[l.value()] = 1;
  settle_and_recompute();
}

std::vector<FlowId> Fabric::flows_crossing(LinkId l) const {
  std::vector<FlowId> out;
  for (FlowId id : active_) {
    const auto& path = flows_[id.value()].spec.path;
    if (std::find(path.begin(), path.end(), l) != path.end()) {
      out.push_back(id);
    }
  }
  return out;
}

const Flow& Fabric::flow(FlowId id) const {
  assert(id.value() < flows_.size());
  return flows_[id.value()];
}

bool Fabric::flow_active(FlowId id) const {
  return id.value() < flows_.size() && !flows_[id.value()].completed;
}

std::vector<FlowId> Fabric::active_flows() const { return active_; }

void Fabric::settle() {
  const util::SimTime now = sim_->now();
  const util::Duration dt = now - last_settle_;
  if (dt <= util::Duration::zero()) {
    last_settle_ = now;
    return;
  }
  const double secs = dt.seconds();
  for (FlowId id : active_) {
    Flow& f = flows_[id.value()];
    const double moved =
        std::min(f.remaining_bytes, f.rate.bytes_per_sec() * secs);
    if (moved > 0.0) {
      f.remaining_bytes -= moved;
      for (auto* obs : observers_) {
        obs->on_bytes_moved(*this, id,
                            util::Bytes{static_cast<std::int64_t>(moved + 0.5)},
                            last_settle_, now);
      }
    }
  }
  last_settle_ = now;
}

void Fabric::recompute_rates() {
  ++recomputes_;
  std::fill(elastic_rate_bps_.begin(), elastic_rate_bps_.end(), 0.0);
  for (auto& per_class : class_rate_bps_) per_class.fill(0.0);

  // Residual capacity per link after the non-backing-off CBR load.
  std::vector<double> residual(topo_->link_count());
  std::vector<double> unfixed_weight(topo_->link_count(), 0.0);
  std::vector<std::uint32_t> unfixed_count(topo_->link_count(), 0);
  for (std::size_t l = 0; l < residual.size(); ++l) {
    if (!link_up_[l]) {
      residual[l] = 0.0;
      continue;
    }
    residual[l] = std::max(
        0.0, topo_->link(LinkId{static_cast<std::uint32_t>(l)}).capacity.bps() -
                 cbr_load_bps_[l]);
  }
  for (FlowId id : active_) {
    const Flow& f = flows_[id.value()];
    for (LinkId l : f.spec.path) {
      unfixed_weight[l.value()] += f.spec.weight;
      ++unfixed_count[l.value()];
    }
  }

  // Weighted progressive filling: repeatedly saturate the link with the
  // smallest fair share per unit weight, freeze its flows at weight x share,
  // and subtract them everywhere. Weight 1 on every flow degenerates to the
  // classic max-min allocation.
  std::vector<char> fixed(flows_.size(), 0);
  std::size_t remaining_flows = active_.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = SIZE_MAX;
    for (std::size_t l = 0; l < residual.size(); ++l) {
      // The integer count is the authoritative emptiness test: the weight
      // sum accumulates floating-point residue as flows freeze.
      if (unfixed_count[l] == 0) continue;
      const double share = residual[l] / std::max(unfixed_weight[l], 1e-12);
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    assert(best_link != SIZE_MAX);
    if (best_share < 0.0) best_share = 0.0;

    // Freeze every unfixed flow crossing the bottleneck.
    for (FlowId id : active_) {
      Flow& f = flows_[id.value()];
      if (fixed[id.value()]) continue;
      const bool crosses =
          std::any_of(f.spec.path.begin(), f.spec.path.end(),
                      [best_link](LinkId l) { return l.value() == best_link; });
      if (!crosses) continue;
      const double rate = best_share * f.spec.weight;
      f.rate = util::BitsPerSec{rate};
      fixed[id.value()] = 1;
      --remaining_flows;
      for (LinkId l : f.spec.path) {
        residual[l.value()] = std::max(0.0, residual[l.value()] - rate);
        unfixed_weight[l.value()] =
            std::max(0.0, unfixed_weight[l.value()] - f.spec.weight);
        assert(unfixed_count[l.value()] > 0);
        --unfixed_count[l.value()];
      }
    }
  }

  for (FlowId id : active_) {
    const Flow& f = flows_[id.value()];
    for (LinkId l : f.spec.path) {
      elastic_rate_bps_[l.value()] += f.rate.bps();
      class_rate_bps_[l.value()][static_cast<std::size_t>(f.spec.cls)] +=
          f.rate.bps();
    }
  }
}

void Fabric::schedule_next_completion() {
  completion_event_.cancel();
  if (active_.empty()) return;
  double soonest_secs = std::numeric_limits<double>::infinity();
  for (FlowId id : active_) {
    const Flow& f = flows_[id.value()];
    if (f.rate.bps() <= 0.0) continue;  // starved; re-examined on next change
    soonest_secs =
        std::min(soonest_secs, f.remaining_bytes / f.rate.bytes_per_sec());
  }
  if (!std::isfinite(soonest_secs)) return;
  // Ceil to the next nanosecond so the settled remainder at the event is
  // never still above the epsilon.
  auto delay = util::Duration{
      static_cast<std::int64_t>(std::ceil(soonest_secs * 1e9))};
  if (delay < util::Duration::zero()) delay = util::Duration::zero();
  completion_event_ = sim_->after(delay, [this] { on_completion_event(); });
}

void Fabric::on_completion_event() {
  settle();
  // Collect finished flows first: callbacks may start new flows, which
  // mutates active_ and triggers nested recomputes.
  std::vector<FlowId> done;
  for (FlowId id : active_) {
    if (flows_[id.value()].remaining_bytes <= kDoneEpsilonBytes) {
      done.push_back(id);
    }
  }
  if (!done.empty()) {
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](FlowId id) {
                                   return std::find(done.begin(), done.end(),
                                                    id) != done.end();
                                 }),
                  active_.end());
    for (FlowId id : done) {
      Flow& f = flows_[id.value()];
      f.completed = true;
      f.completed_at = sim_->now();
      f.remaining_bytes = 0.0;
      f.rate = util::BitsPerSec::zero();
      ++flows_completed_;
      bytes_delivered_ += f.spec.size;
      PYTHIA_LOG(kDebug, "fabric")
          << "flow " << id.value() << " completed at "
          << sim_->now().seconds() << "s (" << f.spec.size.count()
          << " bytes)";
    }
  }
  recompute_rates();
  schedule_next_completion();
  // Observer + user callbacks run after the fabric is consistent.
  for (FlowId id : done) {
    for (auto* obs : observers_) {
      obs->on_flow_completed(*this, id, sim_->now());
    }
  }
  for (FlowId id : done) {
    if (auto it = callbacks_.find(id.value()); it != callbacks_.end()) {
      auto fn = std::move(it->second);
      callbacks_.erase(it);
      fn(id, sim_->now());
    }
  }
}

void Fabric::settle_and_recompute() {
  settle();
  recompute_rates();
  schedule_next_completion();
}

}  // namespace pythia::net
