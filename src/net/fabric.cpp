#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::net {

namespace {
/// A flow whose settled remainder drops below this is considered delivered;
/// sub-byte residue is floating-point noise from rate integration.
constexpr double kDoneEpsilonBytes = 0.5;
constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kNoLink = std::numeric_limits<std::uint32_t>::max();

/// Min-heap order on (eta, slot); slot breaks ties deterministically.
struct EtaLater {
  bool operator()(const auto& a, const auto& b) const {
    if (a.eta_ns != b.eta_ns) return a.eta_ns > b.eta_ns;
    return a.slot > b.slot;
  }
};
}  // namespace

Fabric::Fabric(sim::Simulation& sim, const Topology& topo, FabricConfig cfg)
    : sim_(&sim),
      topo_(&topo),
      cfg_(cfg),
      link_flows_(topo.link_count()),
      cbr_load_bps_(topo.link_count(), 0.0),
      link_up_(topo.link_count(), 1),
      elastic_rate_bps_(topo.link_count(), 0.0),
      class_rate_bps_(topo.link_count(), {0.0, 0.0, 0.0, 0.0}),
      link_dirty_(topo.link_count(), 0),
      residual_(topo.link_count(), 0.0),
      unfixed_weight_(topo.link_count(), 0.0),
      unfixed_count_(topo.link_count(), 0),
      link_share_(topo.link_count(), 0.0),
      link_in_comp_(topo.link_count(), 0),
      hier_(cfg.rate_engine == RateEngine::kHierarchical),
      last_settle_(sim.now()) {
  if (hier_) {
    // Locality groups from the topology, plus one shared core group (last
    // index) for links whose endpoints straddle groups or carry none.
    num_groups_ = topo.group_count() + 1;
    const auto core = static_cast<std::uint32_t>(num_groups_ - 1);
    link_group_.resize(topo.link_count());
    link_rank_.assign(topo.link_count(), 0);
    link_touched_.assign(topo.link_count(), 0);
    group_links_.assign(num_groups_, {});
    group_flows_.assign(num_groups_, {});
    group_mark_.assign(num_groups_, 0);
    for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
      const std::int32_t g = topo.link_group(LinkId{l});
      const std::uint32_t idx = g < 0 ? core : static_cast<std::uint32_t>(g);
      link_group_[l] = idx;
      group_links_[idx].push_back(l);  // ascending: l ascends
    }
  }
  if (cfg_.coalesce_cohorts) {
    cohort_token_ =
        sim.queue().add_cohort_listener([this] { flush_coalesced(); });
    cohort_listener_registered_ = true;
  }
}

Fabric::~Fabric() {
  if (cohort_listener_registered_) {
    sim_->queue().remove_cohort_listener(cohort_token_);
  }
}

std::uint32_t Fabric::SpanArena::acquire(std::uint32_t len,
                                         std::uint8_t& bucket) {
  std::uint8_t b = 0;
  while ((1u << b) < std::max(len, 1u)) ++b;
  bucket = b;
  auto& list = free_[b];
  if (!list.empty()) {
    const std::uint32_t off = list.back();
    list.pop_back();
    return off;
  }
  const auto off = static_cast<std::uint32_t>(size_);
  size_ += (1u << b);
  return off;
}

std::uint32_t Fabric::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(flows_.size());
  flows_.emplace_back();
  callbacks_.emplace_back();
  active_pos_.push_back(kNoPos);
  flow_fixed_.push_back(0);
  flow_in_comp_.push_back(0);
  eta_stamp_.push_back(0);
  arena_weight_.push_back(0.0);
  arena_rate_bps_.push_back(0.0);
  arena_eta_ns_.push_back(-1);
  arena_cls_.push_back(0);
  path_off_.push_back(kNoPos);
  path_len_.push_back(0);
  path_bucket_.push_back(0);
  groups_off_.push_back(kNoPos);
  groups_len_.push_back(0);
  groups_bucket_.push_back(0);
  flow_mark_.push_back(0);
  return slot;
}

void Fabric::release_slot(std::uint32_t slot) {
  // The completed Flow record stays readable until the slot is reused.
  callbacks_[slot] = nullptr;
  ++eta_stamp_[slot];
  if (hier_) free_path_row(slot);
  free_slots_.push_back(slot);
}

void Fabric::arena_admit(std::uint32_t slot) {
  const Flow& f = flows_[slot];
  arena_weight_[slot] = f.spec.weight;
  arena_cls_[slot] = static_cast<std::uint8_t>(f.spec.cls);
  arena_rate_bps_[slot] = f.rate.bps();
  arena_eta_ns_[slot] = -1;
  const auto len = static_cast<std::uint32_t>(f.spec.path.size());
  const std::uint32_t off = path_arena_.acquire(len, path_bucket_[slot]);
  if (path_pool_.size() < path_arena_.size()) {
    path_pool_.resize(path_arena_.size());
  }
  path_off_[slot] = off;
  path_len_[slot] = len;
  std::copy(f.spec.path.begin(), f.spec.path.end(), path_pool_.begin() + off);

  // Distinct locality groups the path touches, in first-touch order (a
  // fat-tree path sees at most src pod + core + dst pod).
  scratch_groups_.clear();
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint32_t g = link_group_[path_pool_[off + i].value()];
    if (std::find(scratch_groups_.begin(), scratch_groups_.end(), g) ==
        scratch_groups_.end()) {
      scratch_groups_.push_back(g);
    }
  }
  const auto glen = static_cast<std::uint32_t>(scratch_groups_.size());
  const std::uint32_t goff = group_arena_.acquire(glen, groups_bucket_[slot]);
  if (group_id_pool_.size() < group_arena_.size()) {
    group_id_pool_.resize(group_arena_.size());
    group_pos_pool_.resize(group_arena_.size());
  }
  groups_off_[slot] = goff;
  groups_len_[slot] = glen;
  for (std::uint32_t i = 0; i < glen; ++i) {
    const std::uint32_t g = scratch_groups_[i];
    group_id_pool_[goff + i] = g;
    group_pos_pool_[goff + i] =
        static_cast<std::uint32_t>(group_flows_[g].size());
    group_flows_[g].push_back(slot);
  }
}

void Fabric::unregister_flow_groups(std::uint32_t slot) {
  const std::uint32_t goff = groups_off_[slot];
  assert(goff != kNoPos);
  for (std::uint32_t i = 0; i < groups_len_[slot]; ++i) {
    const std::uint32_t g = group_id_pool_[goff + i];
    const std::uint32_t pos = group_pos_pool_[goff + i];
    auto& list = group_flows_[g];
    assert(pos < list.size() && list[pos] == slot);
    const std::uint32_t moved = list.back();
    list[pos] = moved;
    list.pop_back();
    if (moved != slot) {
      // Fix the moved flow's recorded position for this group (its group
      // row has at most a handful of entries).
      const std::uint32_t moff = groups_off_[moved];
      for (std::uint32_t j = 0; j < groups_len_[moved]; ++j) {
        if (group_id_pool_[moff + j] == g) {
          group_pos_pool_[moff + j] = pos;
          break;
        }
      }
    }
  }
  group_arena_.release(goff, groups_bucket_[slot]);
  groups_off_[slot] = kNoPos;
  groups_len_[slot] = 0;
}

void Fabric::free_path_row(std::uint32_t slot) {
  if (path_off_[slot] == kNoPos) return;
#ifndef NDEBUG
  // Poison the freed row: a straggler holding this slot's span reads
  // invalid link ids, not a successor flow's path.
  for (std::uint32_t i = 0; i < path_len_[slot]; ++i) {
    path_pool_[path_off_[slot] + i] = LinkId{};
  }
#endif
  path_arena_.release(path_off_[slot], path_bucket_[slot]);
  path_off_[slot] = kNoPos;
  // path_len_ deliberately survives: flow_path() distinguishes "row was
  // recycled" (len > 0, fatal in debug) from "never had one" (zero-byte
  // flow, empty span). The length resets when the slot is reused.
}

void Fabric::insert_link_flow(LinkId l, FlowId id) {
  auto& v = link_flows_[l.value()];
  v.insert(std::upper_bound(v.begin(), v.end(), id,
                            [](FlowId a, FlowId b) {
                              return a.value() < b.value();
                            }),
           id);
}

void Fabric::remove_link_flow(LinkId l, FlowId id) {
  auto& v = link_flows_[l.value()];
  const auto it = std::lower_bound(v.begin(), v.end(), id,
                                   [](FlowId a, FlowId b) {
                                     return a.value() < b.value();
                                   });
  assert(it != v.end() && *it == id);
  v.erase(it);
}

void Fabric::mark_dirty(LinkId l) {
  if (link_dirty_[l.value()]) return;
  link_dirty_[l.value()] = 1;
  dirty_links_.push_back(l.value());
}

void Fabric::mark_all_dirty() {
  for (std::uint32_t l = 0; l < link_dirty_.size(); ++l) {
    if (!link_dirty_[l]) {
      link_dirty_[l] = 1;
      dirty_links_.push_back(l);
    }
  }
}

void Fabric::clear_dirty() {
  for (std::uint32_t l : dirty_links_) link_dirty_[l] = 0;
  dirty_links_.clear();
}

double Fabric::elastic_headroom(std::uint32_t l) const {
  if (!link_up_[l]) return 0.0;
  return std::max(
      0.0, topo_->link(LinkId{l}).capacity.bps() - cbr_load_bps_[l]);
}

FlowId Fabric::start_flow(FlowSpec spec, FlowCompleteFn on_complete) {
  assert(topo_->validate_path(spec.src, spec.dst, spec.path) &&
         "flow path must connect src to dst");
  assert(spec.size >= util::Bytes::zero());
  const std::uint32_t slot = acquire_slot();
  Flow& f = flows_[slot];
  f = Flow{};
  path_len_[slot] = 0;  // slot reuse ends the stale-read detection window
  f.id = FlowId{slot};
  f.spec = std::move(spec);
  f.started = sim_->now();
  f.remaining_bytes = f.spec.size.as_double();
  const FlowId id = f.id;
  ++flows_started_;
  callbacks_[slot] = std::move(on_complete);

  if (f.remaining_bytes <= kDoneEpsilonBytes) {
    // Zero-byte flow: complete immediately (still async via the queue so that
    // callers never re-enter themselves synchronously). The start event fires
    // first so observers that pair start/complete state stay consistent.
    f.completed = true;
    f.completed_at = sim_->now();
    f.reported_bytes = f.spec.size.count();
    ++flows_completed_;
    bytes_delivered_ += f.spec.size;
    for (auto* obs : observers_) {
      obs->on_flow_started(*this, id, sim_->now());
    }
    sim_->after(util::Duration::zero(), [this, slot] {
      const FlowId done{slot};
      for (auto* obs : observers_) {
        obs->on_flow_completed(*this, done, sim_->now());
      }
      auto fn = std::move(callbacks_[slot]);
      callbacks_[slot] = nullptr;
      if (fn) fn(done, sim_->now());
      release_slot(slot);
    });
    return id;
  }

  assert(!f.spec.path.empty() && "a non-local flow needs a link path");
  active_pos_[slot] = static_cast<std::uint32_t>(active_.size());
  active_.push_back(id);
  for (LinkId l : f.spec.path) {
    insert_link_flow(l, id);
    mark_dirty(l);
  }
  if (hier_) arena_admit(slot);
  settle_and_recompute();
  for (auto* obs : observers_) {
    obs->on_flow_started(*this, id, sim_->now());
  }
  return id;
}

void Fabric::set_flow_weight(FlowId id, double weight) {
  assert(id.value() < flows_.size());
  assert(weight > 0.0);
  Flow& f = flows_[id.value()];
  if (f.completed || f.spec.weight == weight) return;
  settle();
  f.spec.weight = weight;
  if (hier_) arena_weight_[id.value()] = weight;
  for (LinkId l : f.spec.path) mark_dirty(l);
  after_mutation();
}

void Fabric::reroute_flow(FlowId id, std::vector<LinkId> new_path) {
  assert(id.value() < flows_.size());
  Flow& f = flows_[id.value()];
  if (f.completed) return;
  assert(topo_->validate_path(f.spec.src, f.spec.dst, new_path) &&
         "reroute path must connect the flow's endpoints");
  settle();  // account bytes moved on the old path first
  for (LinkId l : f.spec.path) {
    remove_link_flow(l, id);
    mark_dirty(l);
  }
  if (hier_) {
    unregister_flow_groups(id.value());
    free_path_row(id.value());
  }
  f.spec.path = std::move(new_path);
  for (LinkId l : f.spec.path) {
    insert_link_flow(l, id);
    mark_dirty(l);
  }
  if (hier_) arena_admit(id.value());
  after_mutation();
}

CbrId Fabric::start_cbr(std::vector<LinkId> path, util::BitsPerSec rate) {
  assert(rate.bps() >= 0.0);
  const CbrId id{static_cast<std::uint32_t>(cbrs_.size())};
  for (LinkId l : path) {
    assert(l.value() < cbr_load_bps_.size());
    cbr_load_bps_[l.value()] += rate.bps();
    mark_dirty(l);
  }
  cbrs_.push_back(CbrStream{std::move(path), rate.bps(), true});
  settle_and_recompute();
  return id;
}

void Fabric::stop_cbr(CbrId id) {
  assert(id.value() < cbrs_.size());
  CbrStream& s = cbrs_[id.value()];
  assert(s.active && "CBR stream already stopped");
  for (LinkId l : s.path) {
    cbr_load_bps_[l.value()] -= s.rate_bps;
    if (cbr_load_bps_[l.value()] < 0.0) cbr_load_bps_[l.value()] = 0.0;
    mark_dirty(l);
  }
  s.active = false;
  settle_and_recompute();
}

util::BitsPerSec Fabric::link_cbr_load(LinkId l) const {
  return util::BitsPerSec{cbr_load_bps_[l.value()]};
}

util::BitsPerSec Fabric::link_elastic_rate(LinkId l) const {
  maybe_flush();
  return util::BitsPerSec{elastic_rate_bps_[l.value()]};
}

util::BitsPerSec Fabric::link_class_rate(LinkId l, FlowClass cls) const {
  maybe_flush();
  return util::BitsPerSec{
      class_rate_bps_[l.value()][static_cast<std::size_t>(cls)]};
}

double Fabric::link_utilization(LinkId l) const {
  maybe_flush();
  if (!link_up_[l.value()]) return 0.0;  // a dead port serves nothing
  const double cap = topo_->link(l).capacity.bps();
  if (cap <= 0.0) return 0.0;
  const double used =
      std::min(cbr_load_bps_[l.value()], cap) + elastic_rate_bps_[l.value()];
  return std::clamp(used / cap, 0.0, 1.0);
}

util::BitsPerSec Fabric::link_residual_capacity(LinkId l) const {
  return util::BitsPerSec{elastic_headroom(l.value())};
}

void Fabric::fail_link(LinkId l) {
  assert(l.value() < link_up_.size());
  if (!link_up_[l.value()]) return;
  link_up_[l.value()] = 0;
  mark_dirty(l);
  settle_and_recompute();
}

void Fabric::restore_link(LinkId l) {
  assert(l.value() < link_up_.size());
  if (link_up_[l.value()]) return;
  link_up_[l.value()] = 1;
  mark_dirty(l);
  settle_and_recompute();
}

const Flow& Fabric::flow(FlowId id) const {
  assert(id.value() < flows_.size());
  // A mid-cohort caller must see the rate an eager fabric would have
  // computed at this instant — flush the deferred fill first.
  maybe_flush();
  return flows_[id.value()];
}

std::span<const LinkId> Fabric::flow_path(FlowId id) const {
  assert(id.value() < flows_.size());
  const std::uint32_t slot = id.value();
  if (!hier_) {
    const auto& p = flows_[slot].spec.path;
    return {p.data(), p.size()};
  }
  const std::uint32_t off = path_off_[slot];
  assert((off != kNoPos || path_len_[slot] == 0) &&
         "stale FlowId: arena path row was recycled");
  if (off == kNoPos) return {};
  return {path_pool_.data() + off, path_len_[slot]};
}

bool Fabric::flow_active(FlowId id) const {
  return id.value() < flows_.size() && !flows_[id.value()].completed;
}

std::vector<FlowId> Fabric::active_flows() const {
  std::vector<FlowId> out = active_;
  std::sort(out.begin(), out.end(),
            [](FlowId a, FlowId b) { return a.value() < b.value(); });
  return out;
}

void Fabric::settle() {
  const util::SimTime now = sim_->now();
  const util::Duration dt = now - last_settle_;
  if (dt <= util::Duration::zero()) {
    last_settle_ = now;
    return;
  }
  // Coalescing contract: a deferred recompute must flush (cohort boundary
  // or read) before simulated time advances, or flows would integrate at
  // stale rates.
  assert(!recompute_pending_ &&
         "deferred recompute leaked across a time advance");
  ++counters_.settles;
  const double secs = dt.seconds();
  for (FlowId id : active_) {
    Flow& f = flows_[id.value()];
    const double moved =
        std::min(f.remaining_bytes, f.rate.bytes_per_sec() * secs);
    if (moved > 0.0) f.remaining_bytes -= moved;
    // Report integer bytes with a carried fractional residue: observers see
    // floor(delivered) cumulatively and exactly spec.size once the flow is
    // done, so probe totals never drift from the delivered volume.
    const std::int64_t target =
        f.remaining_bytes <= kDoneEpsilonBytes
            ? f.spec.size.count()
            : static_cast<std::int64_t>(f.spec.size.as_double() -
                                        f.remaining_bytes);
    const std::int64_t whole = target - f.reported_bytes;
    if (whole > 0) {
      f.reported_bytes = target;
      for (auto* obs : observers_) {
        obs->on_bytes_moved(*this, id, util::Bytes{whole}, last_settle_, now);
      }
    }
  }
  last_settle_ = now;
}

void Fabric::set_rate(Flow& f, double rate_bps) {
  const util::BitsPerSec r{rate_bps};
  if (f.rate == r) return;  // eta unchanged: absolute deadline is invariant
  f.rate = r;
  push_eta(f);
}

void Fabric::push_eta(Flow& f) {
  const std::uint32_t slot = f.id.value();
  const std::uint64_t stamp = ++eta_stamp_[slot];
  if (f.rate.bps() <= 0.0) return;  // starved: re-examined on the next change
  // Ceil to the next nanosecond so the settled remainder at the event is
  // never still above the epsilon. Deadlines anchor at last_settle_, the
  // instant the remaining volume was settled to — identical to now() on
  // every eager path (rates change only right after a settle), and the
  // correct anchor when a coalesced flush runs after the clock moved on.
  const double secs = f.remaining_bytes / f.rate.bytes_per_sec();
  const auto eta_ns =
      last_settle_.ns() + static_cast<std::int64_t>(std::ceil(secs * 1e9));
  eta_heap_.push_back(EtaEntry{eta_ns, slot, stamp});
  std::push_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
  if (eta_heap_.size() > 64 && eta_heap_.size() > 8 * active_.size()) {
    compact_eta_heap();
  }
}

void Fabric::compact_eta_heap() {
  std::erase_if(eta_heap_, [this](const EtaEntry& e) {
    return e.stamp != eta_stamp_[e.slot];
  });
  std::make_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
}

void Fabric::recompute_rates() {
  ++counters_.recomputes;
  if (cfg_.rate_engine == RateEngine::kFullRecompute) {
    clear_dirty();
    fill_full();
    return;
  }
  if (dirty_links_.empty()) return;  // probe-forced accounting point
  if (hier_) {
    collect_component_hier();
    clear_dirty();
    fill_component_hier();
    return;
  }
  collect_component();
  clear_dirty();
  fill_component();
}

void Fabric::after_mutation() {
  if (cfg_.coalesce_cohorts) {
    ++counters_.deferred_recomputes;
    recompute_pending_ = true;
    sim_->queue().mark_cohort_activity();
    return;
  }
  recompute_rates();
  schedule_next_completion();
}

void Fabric::flush_coalesced() {
  if (!recompute_pending_) return;
  recompute_pending_ = false;
  ++counters_.cohort_flushes;
  recompute_rates();
  schedule_next_completion();
}

void Fabric::set_cohort_coalescing(bool on) {
  // Runtime toggle so a caller (the scaling bench compares engine
  // generations this way) can ramp with coalescing and then measure eager
  // semantics. Turning it off materializes any pending cohort first, so the
  // fabric is exactly the state an always-eager run would hold here.
  if (on == cfg_.coalesce_cohorts) return;
  if (!on) {
    flush_coalesced();
    cfg_.coalesce_cohorts = false;
    return;
  }
  cfg_.coalesce_cohorts = true;
  if (!cohort_listener_registered_) {
    cohort_token_ =
        sim_->queue().add_cohort_listener([this] { flush_coalesced(); });
    cohort_listener_registered_ = true;
  }
}

void Fabric::maybe_flush() const {
  // Logically const: flushing only materializes the state an eager fabric
  // would already hold at this instant.
  if (recompute_pending_) const_cast<Fabric*>(this)->flush_coalesced();
}

void Fabric::collect_component() {
  // BFS over the bipartite link/flow graph from the dirty seed: any flow
  // crossing a touched link, and any link such a flow crosses, can see its
  // allocation change; everything outside the closure provably cannot.
  comp_links_.clear();
  comp_flows_.clear();
  for (std::uint32_t l : dirty_links_) {
    link_in_comp_[l] = 1;
    comp_links_.push_back(l);
  }
  for (std::size_t head = 0; head < comp_links_.size(); ++head) {
    const std::uint32_t l = comp_links_[head];
    for (FlowId fid : link_flows_[l]) {
      const std::uint32_t slot = fid.value();
      if (flow_in_comp_[slot]) continue;
      flow_in_comp_[slot] = 1;
      comp_flows_.push_back(slot);
      for (LinkId l2 : flows_[slot].spec.path) {
        if (link_in_comp_[l2.value()]) continue;
        link_in_comp_[l2.value()] = 1;
        comp_links_.push_back(l2.value());
      }
    }
  }
  std::sort(comp_links_.begin(), comp_links_.end());
  for (std::uint32_t l : comp_links_) link_in_comp_[l] = 0;
  for (std::uint32_t s : comp_flows_) flow_in_comp_[s] = 0;
  counters_.links_touched += comp_links_.size();
  counters_.flows_touched += comp_flows_.size();
  if (comp_links_.size() == link_flows_.size()) ++counters_.full_fills;
}

void Fabric::fill_component() {
  for (std::uint32_t l : comp_links_) {
    elastic_rate_bps_[l] = 0.0;
    class_rate_bps_[l].fill(0.0);
    residual_[l] = elastic_headroom(l);
    double weight = 0.0;
    std::uint32_t count = 0;
    for (FlowId fid : link_flows_[l]) {
      weight += flows_[fid.value()].spec.weight;
      ++count;
    }
    unfixed_weight_[l] = weight;
    unfixed_count_[l] = count;
    link_share_[l] = residual_[l] / std::max(weight, 1e-12);
  }
  for (std::uint32_t slot : comp_flows_) flow_fixed_[slot] = 0;

  // Weighted progressive filling: repeatedly saturate the link with the
  // smallest fair share per unit weight, freeze its flows at weight x share,
  // and subtract them everywhere. Weight 1 on every flow degenerates to the
  // classic max-min allocation. Candidate links that empty out are compacted
  // away (in order) so later rounds scan only still-contended links.
  cand_links_ = comp_links_;
  std::size_t remaining_flows = comp_flows_.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_link = kNoLink;
    std::size_t out = 0;
    for (std::size_t i = 0; i < cand_links_.size(); ++i) {
      const std::uint32_t l = cand_links_[i];
      // The integer count is the authoritative emptiness test: the weight
      // sum accumulates floating-point residue as flows freeze.
      if (unfixed_count_[l] == 0) continue;
      cand_links_[out++] = l;
      const double share = link_share_[l];  // cached, refreshed on freeze
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    cand_links_.resize(out);
    assert(best_link != kNoLink);
    if (best_share < 0.0) best_share = 0.0;

    // Freeze every unfixed flow crossing the bottleneck (ascending by id —
    // the same order the full fill visits them).
    for (FlowId fid : link_flows_[best_link]) {
      const std::uint32_t slot = fid.value();
      if (flow_fixed_[slot]) continue;
      Flow& f = flows_[slot];
      const double rate = best_share * f.spec.weight;
      set_rate(f, rate);
      flow_fixed_[slot] = 1;
      --remaining_flows;
      for (LinkId l : f.spec.path) {
        const std::uint32_t lv = l.value();
        residual_[lv] = std::max(0.0, residual_[lv] - rate);
        unfixed_weight_[lv] =
            std::max(0.0, unfixed_weight_[lv] - f.spec.weight);
        assert(unfixed_count_[lv] > 0);
        --unfixed_count_[lv];
        link_share_[lv] = residual_[lv] / std::max(unfixed_weight_[lv], 1e-12);
      }
    }
  }

  for (std::uint32_t l : comp_links_) {
    for (FlowId fid : link_flows_[l]) {
      const Flow& f = flows_[fid.value()];
      elastic_rate_bps_[l] += f.rate.bps();
      class_rate_bps_[l][static_cast<std::size_t>(f.spec.cls)] += f.rate.bps();
    }
  }
}

void Fabric::fill_full() {
  // The original O(rounds × links × flows) progressive fill, preserved as
  // the baseline. Flows are visited in ascending id order at every step so
  // the floating-point operation sequence matches fill_component() exactly
  // (the differential tests rely on bit-identical allocations).
  counters_.links_touched += link_flows_.size();
  counters_.flows_touched += active_.size();
  ++counters_.full_fills;

  sorted_active_ = active_;
  std::sort(sorted_active_.begin(), sorted_active_.end(),
            [](FlowId a, FlowId b) { return a.value() < b.value(); });

  std::fill(elastic_rate_bps_.begin(), elastic_rate_bps_.end(), 0.0);
  for (auto& per_class : class_rate_bps_) per_class.fill(0.0);
  for (std::uint32_t l = 0; l < residual_.size(); ++l) {
    residual_[l] = elastic_headroom(l);
    unfixed_weight_[l] = 0.0;
    unfixed_count_[l] = 0;
  }
  for (FlowId id : sorted_active_) {
    const Flow& f = flows_[id.value()];
    flow_fixed_[id.value()] = 0;
    for (LinkId l : f.spec.path) {
      unfixed_weight_[l.value()] += f.spec.weight;
      ++unfixed_count_[l.value()];
    }
  }

  std::size_t remaining_flows = sorted_active_.size();
  while (remaining_flows > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_link = kNoLink;
    for (std::uint32_t l = 0; l < residual_.size(); ++l) {
      if (unfixed_count_[l] == 0) continue;
      const double share = residual_[l] / std::max(unfixed_weight_[l], 1e-12);
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    assert(best_link != kNoLink);
    if (best_share < 0.0) best_share = 0.0;

    for (FlowId id : sorted_active_) {
      const std::uint32_t slot = id.value();
      if (flow_fixed_[slot]) continue;
      Flow& f = flows_[slot];
      const bool crosses =
          std::any_of(f.spec.path.begin(), f.spec.path.end(),
                      [best_link](LinkId l) { return l.value() == best_link; });
      if (!crosses) continue;
      const double rate = best_share * f.spec.weight;
      set_rate(f, rate);
      flow_fixed_[slot] = 1;
      --remaining_flows;
      for (LinkId l : f.spec.path) {
        residual_[l.value()] = std::max(0.0, residual_[l.value()] - rate);
        unfixed_weight_[l.value()] =
            std::max(0.0, unfixed_weight_[l.value()] - f.spec.weight);
        assert(unfixed_count_[l.value()] > 0);
        --unfixed_count_[l.value()];
      }
    }
  }

  for (FlowId id : sorted_active_) {
    const Flow& f = flows_[id.value()];
    for (LinkId l : f.spec.path) {
      elastic_rate_bps_[l.value()] += f.rate.bps();
      class_rate_bps_[l.value()][static_cast<std::size_t>(f.spec.cls)] +=
          f.rate.bps();
    }
  }
}

void Fabric::collect_component_hier() {
  // Group-closure collection: seed with the dirty links' groups, then close
  // over pod coupling — every flow of a marked group drags in the other
  // groups its path touches (at most src pod + core + dst pod). The result
  // is a superset of collect_component()'s exact flow-by-flow BFS closure:
  // whole groups enter at once, so links of a closed group that no affected
  // flow crosses ride along. That is provably harmless to the fill — such
  // links either carry no flows (unfixed_count 0, skipped every round) or
  // carry flows that are themselves in the component (membership is
  // group-complete), so the floating-point operation sequence matches the
  // exact component's, which matches fill_full()'s.
  ++hier_epoch_;
  comp_groups_.clear();
  comp_links_.clear();
  comp_flows_.clear();
  for (std::uint32_t l : dirty_links_) {
    const std::uint32_t g = link_group_[l];
    if (group_mark_[g] == hier_epoch_) continue;
    group_mark_[g] = hier_epoch_;
    comp_groups_.push_back(g);
  }
  for (std::size_t head = 0; head < comp_groups_.size(); ++head) {
    const std::uint32_t g = comp_groups_[head];
    for (std::uint32_t slot : group_flows_[g]) {
      if (flow_mark_[slot] == hier_epoch_) continue;
      flow_mark_[slot] = hier_epoch_;
      comp_flows_.push_back(slot);
      const std::uint32_t goff = groups_off_[slot];
      for (std::uint32_t i = 0; i < groups_len_[slot]; ++i) {
        const std::uint32_t g2 = group_id_pool_[goff + i];
        if (group_mark_[g2] == hier_epoch_) continue;
        group_mark_[g2] = hier_epoch_;
        comp_groups_.push_back(g2);
      }
    }
  }
  for (std::uint32_t g : comp_groups_) {
    comp_links_.insert(comp_links_.end(), group_links_[g].begin(),
                       group_links_[g].end());
  }
  std::sort(comp_links_.begin(), comp_links_.end());
  counters_.links_touched += comp_links_.size();
  counters_.flows_touched += comp_flows_.size();
  if (comp_links_.size() == link_flows_.size()) ++counters_.full_fills;
}

void Fabric::fill_component_hier() {
  // fill_component() with every Flow-record read replaced by its dense
  // arena mirror (weights, classes, path rows) and the per-round bottleneck
  // search flattened into a rank-indexed share array. Links that empty out
  // are parked at +inf instead of compacted away, so the scan is a pure
  // branch-free min over contiguous doubles — the compiler vectorizes it —
  // and a second pass recovers the first rank holding the min, which is
  // exactly the link the legacy strict `share < best` scan would pick
  // (ranks follow comp_links_ order). Every share that feeds arithmetic is
  // still residual / max(weight, 1e-12), so allocations stay bit-identical.
  const std::size_t n = comp_links_.size();
  share_dense_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t l = comp_links_[r];
    link_rank_[l] = static_cast<std::uint32_t>(r);
    elastic_rate_bps_[l] = 0.0;
    class_rate_bps_[l].fill(0.0);
    residual_[l] = elastic_headroom(l);
    double weight = 0.0;
    std::uint32_t count = 0;
    for (FlowId fid : link_flows_[l]) {
      weight += arena_weight_[fid.value()];
      ++count;
    }
    unfixed_weight_[l] = weight;
    unfixed_count_[l] = count;
    share_dense_[r] = count == 0 ? std::numeric_limits<double>::infinity()
                                 : residual_[l] / std::max(weight, 1e-12);
  }
  for (std::uint32_t slot : comp_flows_) flow_fixed_[slot] = 0;

  std::size_t remaining_flows = comp_flows_.size();
  touched_links_.clear();
  while (remaining_flows > 0) {
    // Pass 1: plain min over the dense share array. min is associative and
    // commutative here (no NaNs, and shares are never negative zero, so
    // evaluation order cannot change the value) — four independent chains
    // hide the minsd latency. Pass 2: first rank at the min, which is the
    // link the legacy strict `share < best` scan would pick (ranks follow
    // comp_links_ order).
    const double* shares = share_dense_.data();
    double m0 = std::numeric_limits<double>::infinity();
    double m1 = m0;
    double m2 = m0;
    double m3 = m0;
    std::size_t r = 0;
    for (; r + 4 <= n; r += 4) {
      m0 = std::min(m0, shares[r]);
      m1 = std::min(m1, shares[r + 1]);
      m2 = std::min(m2, shares[r + 2]);
      m3 = std::min(m3, shares[r + 3]);
    }
    for (; r < n; ++r) m0 = std::min(m0, shares[r]);
    double best_share = std::min(std::min(m0, m1), std::min(m2, m3));
    std::size_t best_rank = 0;
    while (shares[best_rank] != best_share) ++best_rank;
    const std::uint32_t best_link = comp_links_[best_rank];
    assert(unfixed_count_[best_link] > 0);
    if (best_share < 0.0) best_share = 0.0;

    for (FlowId fid : link_flows_[best_link]) {
      const std::uint32_t slot = fid.value();
      if (flow_fixed_[slot]) continue;
      const double w = arena_weight_[slot];
      const double rate = best_share * w;
      set_rate_hier(slot, rate);
      flow_fixed_[slot] = 1;
      --remaining_flows;
      const std::uint32_t off = path_off_[slot];
      const std::uint32_t len = path_len_[slot];
      for (std::uint32_t i = 0; i < len; ++i) {
        const std::uint32_t lv = path_pool_[off + i].value();
        residual_[lv] = std::max(0.0, residual_[lv] - rate);
        unfixed_weight_[lv] = std::max(0.0, unfixed_weight_[lv] - w);
        assert(unfixed_count_[lv] > 0);
        --unfixed_count_[lv];
        // Share refresh is deferred below: nothing reads share_dense_ until
        // the next round's min pass, and the refreshed value is a pure
        // function of the final residual_/unfixed_weight_, so one division
        // per touched link replaces one per (flow, link) touch without
        // moving a single bit of the result.
        if (!link_touched_[lv]) {
          link_touched_[lv] = 1;
          touched_links_.push_back(lv);
        }
      }
    }

    for (std::uint32_t lv : touched_links_) {
      link_touched_[lv] = 0;
      share_dense_[link_rank_[lv]] =
          unfixed_count_[lv] == 0
              ? std::numeric_limits<double>::infinity()
              : residual_[lv] / std::max(unfixed_weight_[lv], 1e-12);
    }
    touched_links_.clear();
  }

  for (std::uint32_t l : comp_links_) {
    for (FlowId fid : link_flows_[l]) {
      const std::uint32_t slot = fid.value();
      const double r = arena_rate_bps_[slot];
      elastic_rate_bps_[l] += r;
      class_rate_bps_[l][arena_cls_[slot]] += r;
    }
  }
}

void Fabric::set_rate_hier(std::uint32_t slot, double rate_bps) {
  // The mirror always equals flows_[slot].rate, so the no-change test can
  // stay on the dense 8-byte-per-slot array — refreezing a flow at its old
  // rate (the common case) never faults in the cold Flow record.
  if (arena_rate_bps_[slot] == rate_bps) return;
  Flow& f = flows_[slot];
  f.rate = util::BitsPerSec{rate_bps};
  arena_rate_bps_[slot] = rate_bps;
  push_eta_hier(slot, f);
}

void Fabric::push_eta_hier(std::uint32_t slot, const Flow& f) {
  if (f.rate.bps() <= 0.0) {
    arena_eta_ns_[slot] = -1;  // starved: re-examined on the next change
    return;
  }
  // Same arithmetic as push_eta(); the deadline just lives in a dense
  // per-slot array instead of a lazy heap.
  const double secs = f.remaining_bytes / f.rate.bytes_per_sec();
  arena_eta_ns_[slot] =
      last_settle_.ns() + static_cast<std::int64_t>(std::ceil(secs * 1e9));
}

void Fabric::schedule_next_completion() {
  std::int64_t eta = -1;
  if (hier_) {
    // Dense min over the active set; a flat 8-byte-per-flow scan beats heap
    // maintenance once most rates change on every fill. The min alone
    // decides the event time, so no ordering state needs maintaining.
    for (FlowId id : active_) {
      const std::int64_t e = arena_eta_ns_[id.value()];
      if (e >= 0 && (eta < 0 || e < eta)) eta = e;
    }
  } else {
    while (!eta_heap_.empty() &&
           eta_heap_.front().stamp != eta_stamp_[eta_heap_.front().slot]) {
      std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
      eta_heap_.pop_back();
    }
    if (!eta_heap_.empty()) eta = eta_heap_.front().eta_ns;
  }
  if (eta < 0) {
    completion_event_.cancel();
    scheduled_eta_ns_ = -1;
    return;
  }
  if (eta == scheduled_eta_ns_ && completion_event_.valid() &&
      !completion_event_.cancelled()) {
    return;  // already armed for this instant
  }
  completion_event_.cancel();
  scheduled_eta_ns_ = eta;
  completion_event_ =
      sim_->at(util::SimTime{eta}, [this] { on_completion_event(); });
}

void Fabric::complete_flow(std::uint32_t slot) {
  Flow& f = flows_[slot];
  const std::uint32_t pos = active_pos_[slot];
  assert(pos != kNoPos);
  active_[pos] = active_.back();
  active_pos_[active_.back().value()] = pos;
  active_.pop_back();
  active_pos_[slot] = kNoPos;
  for (LinkId l : f.spec.path) {
    remove_link_flow(l, f.id);
    mark_dirty(l);
  }
  ++eta_stamp_[slot];
  if (hier_) {
    unregister_flow_groups(slot);
    arena_rate_bps_[slot] = 0.0;
    arena_eta_ns_[slot] = -1;
  }
  f.completed = true;
  f.completed_at = sim_->now();
  f.remaining_bytes = 0.0;
  f.rate = util::BitsPerSec::zero();
  ++flows_completed_;
  bytes_delivered_ += f.spec.size;
  PYTHIA_LOG(kDebug, "fabric")
      << "flow " << slot << " completed at " << sim_->now().seconds() << "s ("
      << f.spec.size.count() << " bytes)";
}

void Fabric::on_completion_event() {
  scheduled_eta_ns_ = -1;
  settle();
  ++counters_.completion_events;
  const std::int64_t now_ns = sim_->now().ns();
  // Collect finished flows first: callbacks may start new flows, which
  // mutates active_ and triggers nested recomputes.
  std::vector<FlowId> done;
  if (hier_) {
    // Scan the dense deadline array for due flows, then process in
    // (eta, slot) order — exactly the order the legacy heap pops them.
    due_slots_.clear();
    for (FlowId id : active_) {
      const std::uint32_t slot = id.value();
      const std::int64_t e = arena_eta_ns_[slot];
      if (e >= 0 && e <= now_ns) due_slots_.push_back(slot);
    }
    std::sort(due_slots_.begin(), due_slots_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                if (arena_eta_ns_[a] != arena_eta_ns_[b]) {
                  return arena_eta_ns_[a] < arena_eta_ns_[b];
                }
                return a < b;
              });
    for (std::uint32_t slot : due_slots_) {
      Flow& f = flows_[slot];
      if (f.remaining_bytes > kDoneEpsilonBytes) {
        push_eta_hier(slot, f);  // defensive: deadline drifted, re-arm
        continue;
      }
      done.push_back(f.id);
      complete_flow(slot);
    }
  } else {
    while (!eta_heap_.empty()) {
      const EtaEntry top = eta_heap_.front();
      if (top.stamp != eta_stamp_[top.slot]) {
        std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
        eta_heap_.pop_back();
        continue;
      }
      if (top.eta_ns > now_ns) break;
      std::pop_heap(eta_heap_.begin(), eta_heap_.end(), EtaLater{});
      eta_heap_.pop_back();
      Flow& f = flows_[top.slot];
      if (f.remaining_bytes > kDoneEpsilonBytes) {
        push_eta(f);  // defensive: deadline drifted, re-arm
        continue;
      }
      done.push_back(f.id);
      complete_flow(top.slot);
    }
  }
  recompute_rates();
  schedule_next_completion();
  // Observer + user callbacks run after the fabric is consistent.
  for (FlowId id : done) {
    for (auto* obs : observers_) {
      obs->on_flow_completed(*this, id, sim_->now());
    }
  }
  for (FlowId id : done) {
    auto fn = std::move(callbacks_[id.value()]);
    callbacks_[id.value()] = nullptr;
    if (fn) fn(id, sim_->now());
  }
  // Slots recycle only after the whole batch has run its callbacks, so a
  // callback-started flow can never shadow a not-yet-notified sibling.
  for (FlowId id : done) release_slot(id.value());
}

void Fabric::settle_and_recompute() {
  settle();
  after_mutation();
}

void Fabric::encode_counters(sim::StateEncoder& enc) const {
  // Rate-engine observability: deterministic within one engine, but
  // kIncremental and kFullRecompute legitimately differ here even though
  // their allocations are contracted identical — which is why this lives in
  // its own snapshot section the cross-arm bisection skips.
  enc.put_u64(counters_.recomputes);
  enc.put_u64(counters_.full_fills);
  enc.put_u64(counters_.links_touched);
  enc.put_u64(counters_.flows_touched);
  enc.put_u64(counters_.completion_events);
  enc.put_u64(counters_.settles);
  enc.put_u64(counters_.deferred_recomputes);
  enc.put_u64(counters_.cohort_flushes);
}

void Fabric::encode_state(sim::StateEncoder& enc) const {
  enc.put_u64(flows_started_);
  enc.put_u64(flows_completed_);
  enc.put_i64(bytes_delivered_.count());
  enc.put_time(last_settle_);
  enc.put_i64(scheduled_eta_ns_);

  const auto active = active_flows();  // ascending by id
  enc.put_u32(static_cast<std::uint32_t>(active.size()));
  for (FlowId id : active) {
    const Flow& f = flows_[id.value()];
    enc.put_u32(id.value());
    enc.put_u32(f.spec.src.value());
    enc.put_u32(f.spec.dst.value());
    enc.put_i64(f.spec.size.count());
    enc.put_u8(static_cast<std::uint8_t>(f.spec.cls));
    enc.put_f64(f.spec.weight);
    enc.put_u32(f.spec.tuple.src_ip);
    enc.put_u32(f.spec.tuple.dst_ip);
    enc.put_u32(f.spec.tuple.src_port);
    enc.put_u32(f.spec.tuple.dst_port);
    enc.put_u8(f.spec.tuple.proto);
    enc.put_u32(static_cast<std::uint32_t>(f.spec.path.size()));
    for (LinkId l : f.spec.path) enc.put_u32(l.value());
    enc.put_time(f.started);
    enc.put_f64(f.remaining_bytes);
    enc.put_f64(f.rate.bps());
    enc.put_i64(f.reported_bytes);
  }

  enc.put_u32(static_cast<std::uint32_t>(cbrs_.size()));
  for (const CbrStream& cbr : cbrs_) {
    enc.put_bool(cbr.active);
    enc.put_f64(cbr.rate_bps);
    enc.put_u32(static_cast<std::uint32_t>(cbr.path.size()));
    for (LinkId l : cbr.path) enc.put_u32(l.value());
  }

  enc.put_u32(static_cast<std::uint32_t>(topo_->link_count()));
  for (std::size_t l = 0; l < topo_->link_count(); ++l) {
    enc.put_bool(link_up_[l] != 0);
    enc.put_f64(cbr_load_bps_[l]);
    enc.put_f64(elastic_rate_bps_[l]);
    for (double cls_rate : class_rate_bps_[l]) enc.put_f64(cls_rate);
  }
}

}  // namespace pythia::net
