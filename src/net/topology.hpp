// Datacenter topology graph: hosts, switches, directed capacitated links.
//
// Links are directed (a duplex cable is two Link records) because shuffle
// traffic and background load are directional; the paper's Fig. 1b loads are
// per-port egress utilizations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "util/units.hpp"

namespace pythia::net {

enum class NodeKind : std::uint8_t { kHost, kSwitch };

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kHost;
  std::string name;
  /// Rack index for hosts/ToR switches; -1 for core/spine switches.
  int rack = -1;
};

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  util::BitsPerSec capacity;
};

class Topology {
 public:
  NodeId add_host(std::string name, int rack);
  NodeId add_switch(std::string name, int rack = -1);
  /// Adds a single directed link.
  LinkId add_link(NodeId src, NodeId dst, util::BitsPerSec capacity);
  /// Adds both directions; returns the forward link id.
  LinkId add_duplex(NodeId a, NodeId b, util::BitsPerSec capacity);

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id.value()]; }
  [[nodiscard]] const Link& link(LinkId id) const { return links_[id.value()]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Outgoing links of `n`, in insertion order (deterministic).
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId n) const {
    return out_[n.value()];
  }

  [[nodiscard]] std::vector<NodeId> hosts() const;
  [[nodiscard]] std::vector<NodeId> switches() const;

  /// First link src->dst if one exists.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId src, NodeId dst) const;

  /// A synthetic IPv4-style address for a node (10.rack.x.y), used in
  /// 5-tuples for ECMP hashing.
  [[nodiscard]] std::uint32_t address_of(NodeId n) const;

  // --- partition metadata (hierarchical rate engine) ---------------------
  //
  // Nodes are partitioned into locality groups: one group per fat-tree pod
  // (or leaf-spine rack / two-rack rack), with core/spine/wire switches left
  // in the shared "core" group (`kCoreGroup`). A link inherits its
  // endpoints' group when both agree and falls into the core group
  // otherwise. The hierarchical max-min engine (`RateEngine::kHierarchical`)
  // uses this partition to collect dirty components group-by-group instead
  // of flow-by-flow; topologies without assignments degrade gracefully to a
  // single core group (every refill is cluster-wide, still bit-identical).

  /// Sentinel group for nodes outside every locality group (cores/spines).
  static constexpr std::int32_t kCoreGroup = -1;

  /// Assigns `n` to locality group `group` (>= 0) or back to the core group.
  void set_node_group(NodeId n, std::int32_t group);
  /// Group of `n`; kCoreGroup when unassigned.
  [[nodiscard]] std::int32_t node_group(NodeId n) const {
    return node_group_[n.value()];
  }
  /// Number of locality groups (max assigned index + 1; 0 when none).
  [[nodiscard]] std::size_t group_count() const { return group_count_; }
  /// Group of a link: the endpoints' common group, else kCoreGroup.
  [[nodiscard]] std::int32_t link_group(LinkId l) const;

  /// True if `path` is a contiguous link chain from `src` to `dst`.
  [[nodiscard]] bool validate_path(NodeId src, NodeId dst,
                                   const std::vector<LinkId>& path) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::int32_t> node_group_;
  std::size_t group_count_ = 0;
};

/// The paper's testbed: two racks of `servers_per_rack` hosts, one ToR each,
/// and `inter_rack_links` parallel duplex links between the ToRs (each
/// materialized through its own "wire" switch so that multi-path routing sees
/// distinct node-disjoint paths, matching OpenFlow port-level forwarding).
struct TwoRackConfig {
  std::size_t servers_per_rack = 5;
  std::size_t inter_rack_links = 2;
  util::BitsPerSec host_link = util::BitsPerSec{10e9};
  util::BitsPerSec inter_rack_capacity = util::BitsPerSec{10e9};
};
Topology make_two_rack(const TwoRackConfig& cfg);

/// Leaf-spine fabric: `racks` ToRs, each host attaches to its ToR, every ToR
/// attaches to all `spines` spine switches — `spines` equal-cost inter-rack
/// paths between any two racks. Used by the topology ablation.
struct LeafSpineConfig {
  std::size_t racks = 2;
  std::size_t servers_per_rack = 5;
  std::size_t spines = 2;
  util::BitsPerSec host_link = util::BitsPerSec{10e9};
  util::BitsPerSec uplink = util::BitsPerSec{10e9};
};
Topology make_leaf_spine(const LeafSpineConfig& cfg);

/// Canonical k-ary fat-tree (Al-Fares et al.): k pods, each with k/2 edge
/// (ToR) and k/2 aggregation switches wired as a complete bipartite graph,
/// (k/2)² core switches, and aggregation switch `a` of every pod attached to
/// cores [a·k/2, (a+1)·k/2). Each edge switch serves `hosts_per_edge` hosts
/// (the canonical tree uses k/2; fewer keeps big-k sweeps tractable). Rack
/// index = pod·(k/2) + edge position, so rack-granular aggregation works
/// unchanged. `k` must be even and ≥ 2.
struct FatTreeConfig {
  std::size_t k = 4;
  std::size_t hosts_per_edge = 0;  // 0 = canonical k/2
  util::BitsPerSec host_link = util::BitsPerSec{10e9};
  util::BitsPerSec edge_agg = util::BitsPerSec{10e9};
  util::BitsPerSec agg_core = util::BitsPerSec{10e9};
};
Topology make_fat_tree(const FatTreeConfig& cfg);

/// Hosts attached to `edge` (helper for benchmarks iterating a fat-tree).
[[nodiscard]] std::vector<NodeId> hosts_under(const Topology& topo,
                                              NodeId edge_switch);

}  // namespace pythia::net
