#include "net/link_recorder.hpp"

#include <algorithm>

namespace pythia::net {

LinkRecorder::LinkRecorder(Fabric& fabric, std::vector<LinkId> links,
                           util::Duration period)
    : fabric_(&fabric), links_(std::move(links)), period_(period) {
  fabric_->add_observer(this);
}

void LinkRecorder::on_flow_started(const Fabric& /*fabric*/, FlowId /*flow*/,
                                   util::SimTime /*at*/) {
  arm();
}

void LinkRecorder::arm() {
  if (armed_) return;
  armed_ = true;
  fabric_->simulation().after(period_, [this] {
    armed_ = false;
    sample();
    // Keep sampling while traffic is live.
    if (fabric_->active_flow_count() > 0) arm();
  });
}

void LinkRecorder::sample() {
  const util::SimTime now = fabric_->simulation().now();
  for (LinkId l : links_) {
    series_[l].push_back(UtilizationPoint{
        now, fabric_->link_utilization(l), fabric_->link_elastic_rate(l),
        fabric_->link_cbr_load(l)});
  }
}

const std::vector<UtilizationPoint>& LinkRecorder::series(LinkId l) const {
  const auto it = series_.find(l);
  return it == series_.end() ? empty_ : it->second;
}

double LinkRecorder::mean_utilization(LinkId l) const {
  const auto& s = series(l);
  if (s.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : s) sum += p.utilization;
  return sum / static_cast<double>(s.size());
}

double LinkRecorder::peak_utilization(LinkId l) const {
  const auto& s = series(l);
  double peak = 0.0;
  for (const auto& p : s) peak = std::max(peak, p.utilization);
  return peak;
}

}  // namespace pythia::net
