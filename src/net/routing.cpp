#include "net/routing.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "sim/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace pythia::net {

namespace {

/// Dijkstra state entry; ordering makes the search deterministic: fewer hops
/// first, then smaller node id.
struct QueueEntry {
  std::size_t dist;
  NodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node.value() > b.node.value();
  }
};

constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// FNV-1a over a link-id sequence; collisions are resolved by full sequence
/// equality wherever this is used.
std::uint64_t link_seq_hash(const std::vector<LinkId>& links) {
  std::uint64_t h = 1469598103934665603ull;
  for (LinkId l : links) {
    h ^= l.value();
    h *= 1099511628211ull;
  }
  return h;
}

struct LinkSeqHash {
  std::size_t operator()(const std::vector<LinkId>& links) const noexcept {
    return static_cast<std::size_t>(link_seq_hash(links));
  }
};

/// Mints a PathId, stamping the pool generation in debug builds so stale
/// resolution after PathPool::clear() aborts instead of reading garbage.
PathId make_path_id(std::uint32_t idx, [[maybe_unused]] std::uint32_t gen) {
  PathId id{idx};
#ifndef NDEBUG
  id.debug_set_generation(gen);
#endif
  return id;
}

}  // namespace

std::optional<Path> shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::unordered_set<LinkId>& banned_links,
    const std::unordered_set<NodeId>& banned_nodes) {
  assert(src.valid() && dst.valid());
  if (src == dst) return Path{};
  if (banned_nodes.contains(src) || banned_nodes.contains(dst)) {
    return std::nullopt;
  }

  constexpr std::size_t kInf = SIZE_MAX;
  std::vector<std::size_t> dist(topo.node_count(), kInf);
  std::vector<LinkId> parent_link(topo.node_count());
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  dist[src.value()] = 0;
  frontier.push(QueueEntry{0, src});

  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u.value()]) continue;
    if (u == dst) break;
    for (LinkId l : topo.out_links(u)) {
      if (banned_links.contains(l)) continue;
      const Link& link = topo.link(l);
      if (banned_nodes.contains(link.dst)) continue;
      const std::size_t nd = d + 1;
      // Strict < keeps the first (smallest link id, since out_links is in
      // insertion order and we expand in id order) equal-length parent.
      if (nd < dist[link.dst.value()]) {
        dist[link.dst.value()] = nd;
        parent_link[link.dst.value()] = l;
        frontier.push(QueueEntry{nd, link.dst});
      }
    }
  }

  if (dist[dst.value()] == kInf) return std::nullopt;
  Path path;
  for (NodeId cursor = dst; cursor != src;) {
    const LinkId l = parent_link[cursor.value()];
    path.links.push_back(l);
    cursor = topo.link(l).src;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

std::vector<Path> k_shortest_paths(
    const Topology& topo, NodeId src, NodeId dst, std::size_t k,
    const std::unordered_set<LinkId>& banned_links,
    std::vector<LinkId>* touched_links) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(topo, src, dst, banned_links);
  if (!first) return result;
  if (touched_links != nullptr) {
    touched_links->insert(touched_links->end(), first->links.begin(),
                          first->links.end());
  }
  result.push_back(std::move(*first));

  // Candidate pool ordered by (hops, link-id sequence) for determinism.
  auto path_less = [](const Path& a, const Path& b) {
    if (a.hops() != b.hops()) return a.hops() < b.hops();
    return std::lexicographical_compare(
        a.links.begin(), a.links.end(), b.links.begin(), b.links.end(),
        [](LinkId x, LinkId y) { return x.value() < y.value(); });
  };
  std::vector<Path> candidates;
  // Link sequences already in result or candidates — replaces the quadratic
  // std::find scans over both containers with one hashed lookup.
  std::unordered_set<std::vector<LinkId>, LinkSeqHash> seen;
  seen.insert(result.front().links);

  // One scratch banned set shared by every spur computation instead of a
  // fresh copy of banned_links per spur; spur-specific insertions are rolled
  // back after each shortest_path call.
  std::unordered_set<LinkId> spur_banned = banned_links;
  std::vector<LinkId> spur_added;

  while (result.size() < k) {
    const Path& prev = result.back();
    // Spur from every prefix of the previous path. The banned-node set grows
    // with the prefix (root nodes except the spur node stay banned), so it
    // is built incrementally instead of from scratch per spur.
    std::unordered_set<NodeId> banned_nodes;
    NodeId spur_node = src;
    for (std::size_t i = 0; i < prev.links.size(); ++i) {
      if (i > 0) {
        banned_nodes.insert(spur_node);
        spur_node = topo.link(prev.links[i - 1]).dst;
      }
      const auto root_begin = prev.links.begin();
      const auto root_end = root_begin + static_cast<std::ptrdiff_t>(i);
      spur_added.clear();
      for (const Path& p : result) {
        if (p.links.size() > i && std::equal(root_begin, root_end,
                                             p.links.begin())) {
          if (spur_banned.insert(p.links[i]).second) {
            spur_added.push_back(p.links[i]);
          }
        }
      }

      auto spur = shortest_path(topo, spur_node, dst, spur_banned,
                                banned_nodes);
      for (LinkId l : spur_added) spur_banned.erase(l);
      if (!spur) continue;
      Path total;
      total.links.reserve(i + spur->links.size());
      total.links.insert(total.links.end(), root_begin, root_end);
      total.links.insert(total.links.end(), spur->links.begin(),
                         spur->links.end());
      if (!seen.insert(total.links).second) continue;
      if (touched_links != nullptr) {
        touched_links->insert(touched_links->end(), total.links.begin(),
                              total.links.end());
      }
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(),
                                 path_less);
    result.push_back(std::move(*best));
    candidates.erase(best);
  }
  return result;
}

PathId PathPool::intern(Path path) {
  const std::uint64_t h = link_seq_hash(path.links);
  auto& bucket = index_[h];
  for (std::uint32_t id : bucket) {
    if (paths_[id].links == path.links) return make_path_id(id, generation_);
  }
  const auto id = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(std::move(path));
  bucket.push_back(id);
  return make_path_id(id, generation_);
}

void PathPool::clear() {
  paths_.clear();
  index_.clear();
  ++generation_;
}

std::vector<Path> PathSet::materialize() const {
  std::vector<Path> out;
  out.reserve(ids_->size());
  for (PathId id : *ids_) out.push_back(pool_->path(id));
  return out;
}

RoutingGraph::RoutingGraph(const Topology& topo, std::size_t k,
                           BuildMode build, util::ThreadPool* pool)
    : k_(k), build_(build) {
  if (build_ == BuildMode::kEager && pool != nullptr) {
    // Parallel cold build: index, then fan the per-pair Yen runs across the
    // pool. materialize_all interns in canonical slot order on this thread,
    // so the result — including every PathId value — matches a serial build.
    topo_ = &topo;
    index_topology(topo);
    ++counters_.full_rebuilds;
    materialize_all(pool);
  } else {
    rebuild(topo, {}, RebuildMode::kFull);
  }
}

void RoutingGraph::rebuild(const Topology& topo,
                           const std::unordered_set<LinkId>& banned_links,
                           RebuildMode mode) {
  const bool same_topology = topo_ == &topo &&
                             node_count_ == topo.node_count() &&
                             link_count_ == topo.link_count();
  if (same_topology && banned_links == banned_) {
    // No-op delta: same topology, same banned set — in any mode the table
    // could not change. Return before copying the banned set or bumping
    // rebuild counters; only the no-op count moves (pinned by unit test).
    ++counters_.noop_rebuilds;
    return;
  }
  if (!same_topology) {
    // A different (or resized) topology invalidates every interned id.
    if (topo_ != nullptr) pool_.clear();
    topo_ = &topo;
    index_topology(topo);
  }
  if (same_topology && mode == RebuildMode::kIncremental) {
    rebuild_incremental(banned_links);
  } else {
    rebuild_full(banned_links);
  }
  banned_ = banned_links;
}

void RoutingGraph::index_topology(const Topology& topo) {
  node_count_ = topo.node_count();
  link_count_ = topo.link_count();
  hosts_ = topo.hosts();
  host_slot_.assign(node_count_, kNotHost);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    host_slot_[hosts_[i].value()] = static_cast<std::uint32_t>(i);
  }
  table_.assign(hosts_.size() * hosts_.size(), {});
  pair_links_.assign(table_.size(), {});
  link_pairs_.assign(link_count_, {});
  materialized_.assign(table_.size(), 0);
  materialized_count_ = 0;
  in_links_.assign(node_count_, {});
  for (const Link& l : topo.links()) {
    in_links_[l.dst.value()].push_back(l.id);
  }
}

void RoutingGraph::rebuild_full(const std::unordered_set<LinkId>& banned) {
  ++counters_.full_rebuilds;
  for (auto& slots : link_pairs_) slots.clear();
  for (std::size_t slot = 0; slot < table_.size(); ++slot) {
    table_[slot].clear();
    pair_links_[slot].clear();
    materialized_[slot] = 0;
  }
  materialized_count_ = 0;
  if (build_ == BuildMode::kLazy) return;  // pairs recompute on first query
  for (std::size_t slot = 0; slot < table_.size(); ++slot) {
    if (diagonal(slot)) continue;  // src == dst
    recompute_pair(slot, banned);
  }
}

// Incremental rebuild recomputes only pairs the banned-set delta can affect;
// every other pair's cached k-best set is *exactly* what a full rebuild
// would produce (the differential tests exercise this):
//
//  - Newly banned link m: a pair can only change if m was touched by its
//    last Yen run (any generated candidate, chosen or not). If no spur
//    Dijkstra result used m, every Dijkstra in the rerun returns the same
//    path (removing an edge unused by the returned path cannot change the
//    deterministic parent selection along it — dists and relative pop order
//    of the nodes on the path are preserved), so the whole run replays
//    byte-identically.
//  - Restored link l = (u → v): any candidate the rerun generates that did
//    not exist before implies an s ⇝ u → v ⇝ t walk of the same hop count,
//    so its length is ≥ lb = dist(s, u) + 1 + dist(v, t) on the new graph.
//    If the pair already has k candidates and lb exceeds the k-th's hops,
//    no new or changed candidate can displace a chosen one and the result
//    set is unchanged. (Unchosen long candidates may differ; they are also
//    irrelevant to future deltas for the same hop-bound reason.)
void RoutingGraph::rebuild_incremental(
    const std::unordered_set<LinkId>& banned) {
  ++counters_.incremental_rebuilds;
  std::vector<LinkId> added;    // newly failed links
  std::vector<LinkId> removed;  // restored links
  // pythia-lint: allow(unordered-iter) set difference; `added` is sorted
  // below before it drives any rebuild decision
  for (LinkId l : banned) {
    if (!banned_.contains(l)) added.push_back(l);
  }
  // pythia-lint: allow(unordered-iter) set difference; `removed` is sorted
  // below before it drives any rebuild decision
  for (LinkId l : banned_) {
    if (!banned.contains(l)) removed.push_back(l);
  }
  const std::size_t H = hosts_.size();
  const std::size_t total_pairs = H < 2 ? 0 : H * (H - 1);
  // An empty delta cannot reach here: rebuild() early-returns when the
  // banned set is unchanged, and set equality is exactly "no delta".
  assert(!(added.empty() && removed.empty()));
  std::sort(added.begin(), added.end());
  std::sort(removed.begin(), removed.end());

  std::vector<char> affected(table_.size(), 0);
  for (LinkId l : added) {
    for (std::uint32_t slot : link_pairs_[l.value()]) affected[slot] = 1;
  }

  if (!removed.empty()) {
    std::vector<std::uint32_t> dist_to_u;
    std::vector<std::uint32_t> dist_from_v;
    for (LinkId l : removed) {
      const Link& link = topo_->link(l);
      bfs_hops(link.src, /*reverse=*/true, banned, dist_to_u);
      bfs_hops(link.dst, /*reverse=*/false, banned, dist_from_v);
      for (std::size_t ai = 0; ai < H; ++ai) {
        const std::uint32_t du = dist_to_u[hosts_[ai].value()];
        if (du == kUnreachable) continue;
        for (std::size_t bi = 0; bi < H; ++bi) {
          if (bi == ai) continue;
          const std::size_t slot = pair_slot(
              static_cast<std::uint32_t>(ai), static_cast<std::uint32_t>(bi));
          if (affected[slot] != 0) continue;
          // Lazy: a pair with no current candidates has nothing a restored
          // link could stale-ify; it recomputes on next query anyway.
          if (build_ == BuildMode::kLazy && materialized_[slot] == 0) {
            continue;
          }
          const std::uint32_t dv = dist_from_v[hosts_[bi].value()];
          if (dv == kUnreachable) continue;
          const auto& ids = table_[slot];
          if (ids.size() < k_) {
            // Starved or partitioned pair: the restored link may add paths.
            affected[slot] = 1;
            continue;
          }
          const std::size_t lb =
              static_cast<std::size_t>(du) + 1 + static_cast<std::size_t>(dv);
          if (lb <= pool_.path(ids.back()).hops()) affected[slot] = 1;
        }
      }
    }
  }

  if (build_ == BuildMode::kLazy) {
    // Affected pairs are dropped, not recomputed — the next query (if any
    // ever comes) recomputes under the then-current banned set. Surviving
    // materialized pairs are the reuse win.
    for (std::size_t slot = 0; slot < table_.size(); ++slot) {
      if (affected[slot] != 0) invalidate_pair(slot);
    }
    counters_.pairs_reused += materialized_count_;
    return;
  }

  std::size_t recomputed = 0;
  for (std::size_t slot = 0; slot < table_.size(); ++slot) {
    if (affected[slot] == 0) continue;
    recompute_pair(slot, banned);
    ++recomputed;
  }
  counters_.pairs_reused += total_pairs - recomputed;
}

void RoutingGraph::compute_pair(std::size_t slot,
                                const std::unordered_set<LinkId>& banned,
                                PairScratch& out) const {
  const std::size_t H = hosts_.size();
  const NodeId a = hosts_[slot / H];
  const NodeId b = hosts_[slot % H];
  out.found = k_shortest_paths(*topo_, a, b, k_, banned, &out.touched);
  std::sort(out.touched.begin(), out.touched.end());
  out.touched.erase(std::unique(out.touched.begin(), out.touched.end()),
                    out.touched.end());
}

void RoutingGraph::commit_pair(std::size_t slot, PairScratch&& scratch) const {
  std::vector<PathId> ids;
  ids.reserve(scratch.found.size());
  for (Path& p : scratch.found) ids.push_back(pool_.intern(std::move(p)));
  set_pair(slot, std::move(ids), std::move(scratch.touched));
  if (materialized_[slot] == 0) {
    materialized_[slot] = 1;
    ++materialized_count_;
  }
  ++counters_.pairs_recomputed;
}

void RoutingGraph::recompute_pair(
    std::size_t slot, const std::unordered_set<LinkId>& banned) const {
  PairScratch scratch;
  compute_pair(slot, banned, scratch);
  commit_pair(slot, std::move(scratch));
}

void RoutingGraph::invalidate_pair(std::size_t slot) {
  if (materialized_[slot] == 0) return;
  // The candidate list goes; the stored touched union stays as the diff
  // witness set_pair needs when the pair is eventually recomputed (and as a
  // conservative reverse-index entry for future added-link scans).
  table_[slot].clear();
  materialized_[slot] = 0;
  --materialized_count_;
  ++counters_.pairs_invalidated;
}

void RoutingGraph::ensure_pair(std::size_t slot) const {
  if (materialized_[slot] != 0 || diagonal(slot)) return;
  recompute_pair(slot, banned_);
  ++counters_.lazy_materializations;
}

void RoutingGraph::set_pair(std::size_t slot, std::vector<PathId> ids,
                            std::vector<LinkId> touched) const {
  const std::vector<LinkId>& old_links = pair_links_[slot];
  const auto slot32 = static_cast<std::uint32_t>(slot);
  for (LinkId l : old_links) {
    if (!std::binary_search(touched.begin(), touched.end(), l)) {
      std::erase(link_pairs_[l.value()], slot32);
    }
  }
  for (LinkId l : touched) {
    if (!std::binary_search(old_links.begin(), old_links.end(), l)) {
      link_pairs_[l.value()].push_back(slot32);
    }
  }
  // Assigning in place keeps the inner vector object (and therefore any
  // outstanding PathSet view of this pair) valid.
  table_[slot] = std::move(ids);
  pair_links_[slot] = std::move(touched);
}

void RoutingGraph::bfs_hops(NodeId origin, bool reverse,
                            const std::unordered_set<LinkId>& banned,
                            std::vector<std::uint32_t>& dist) const {
  dist.assign(node_count_, kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(node_count_);
  queue.push_back(origin);
  dist[origin.value()] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const std::uint32_t d = dist[u.value()];
    const auto& links = reverse ? in_links_[u.value()] : topo_->out_links(u);
    for (LinkId l : links) {
      if (banned.contains(l)) continue;
      const Link& link = topo_->link(l);
      const NodeId next = reverse ? link.src : link.dst;
      if (dist[next.value()] != kUnreachable) continue;
      dist[next.value()] = d + 1;
      queue.push_back(next);
    }
  }
}

void RoutingGraph::materialize_all(util::ThreadPool* pool) {
  std::vector<std::uint32_t> todo;  // unmaterialized slots, canonical order
  for (std::size_t slot = 0; slot < table_.size(); ++slot) {
    if (materialized_[slot] == 0 && !diagonal(slot)) {
      todo.push_back(static_cast<std::uint32_t>(slot));
    }
  }
  if (todo.empty()) return;
  if (pool == nullptr || pool->thread_count() <= 1) {
    for (std::uint32_t slot : todo) recompute_pair(slot, banned_);
    return;
  }
  // Fan the pure per-pair Yen runs across the pool into private scratch.
  // Workers only read shared state (topology, banned set — both frozen for
  // the duration); all interning happens after wait_idle() on this thread,
  // walking `todo` in ascending slot order, so the PathId sequence is
  // byte-identical to computing the same slots serially.
  std::vector<PairScratch> scratch(todo.size());
  const std::size_t chunk =
      std::max<std::size_t>(1, todo.size() / (pool->thread_count() * 8));
  for (std::size_t begin = 0; begin < todo.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, todo.size());
    pool->submit([this, &todo, &scratch, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        compute_pair(todo[i], banned_, scratch[i]);
      }
    });
  }
  pool->wait_idle();  // happens-before: workers' scratch writes visible here
  for (std::size_t i = 0; i < todo.size(); ++i) {
    commit_pair(todo[i], std::move(scratch[i]));
  }
}

PathSet RoutingGraph::paths(NodeId src_host, NodeId dst_host) const {
  const std::uint32_t a = host_slot(src_host);
  const std::uint32_t b = host_slot(dst_host);
  assert(a != kNotHost && b != kNotHost &&
         "RoutingGraph::paths endpoints must be hosts of this topology");
  if (a == kNotHost || b == kNotHost) {
    static const std::vector<PathId> kNoIds;
    return {&kNoIds, &pool_};
  }
  const std::size_t slot = pair_slot(a, b);
  ensure_pair(slot);
  return {&table_[slot], &pool_};
}

bool RoutingGraph::is_host_pair(NodeId src_host, NodeId dst_host) const {
  return host_slot(src_host) != kNotHost && host_slot(dst_host) != kNotHost;
}

bool RoutingGraph::has_paths(NodeId src_host, NodeId dst_host) const {
  const std::uint32_t a = host_slot(src_host);
  const std::uint32_t b = host_slot(dst_host);
  if (a == kNotHost || b == kNotHost) return false;
  const std::size_t slot = pair_slot(a, b);
  ensure_pair(slot);
  return !table_[slot].empty();
}

std::size_t RoutingGraph::pairs_using(LinkId l) const {
  assert(l.valid() && l.value() < link_pairs_.size());
  return link_pairs_[l.value()].size();
}

void RoutingGraph::encode_counters(sim::StateEncoder& enc) const {
  // Rebuild-strategy observability: kIncremental/kFull and kLazy/kEager
  // produce identical tables but different work splits, so these live in
  // their own snapshot section the cross-arm bisection skips.
  enc.put_u64(counters_.full_rebuilds);
  enc.put_u64(counters_.incremental_rebuilds);
  enc.put_u64(counters_.pairs_recomputed);
  enc.put_u64(counters_.pairs_reused);
  enc.put_u64(counters_.noop_rebuilds);
  enc.put_u64(counters_.pairs_invalidated);
  enc.put_u64(counters_.lazy_materializations);
  enc.put_u64(static_cast<std::uint64_t>(materialized_count_));
}

void RoutingGraph::encode_state(sim::StateEncoder& enc) const {
  enc.put_u32(kStateVersion);
  enc.put_u64(static_cast<std::uint64_t>(k_));

  // Per-pair candidate link chains in canonical slot order — not raw pool
  // ids. Interning order tracks query order in lazy mode, so pool ids would
  // make two behaviorally identical runs encode different bytes; the chains
  // themselves are a pure function of (topology, banned set, k).
  // Unmaterialized pairs are computed right here for the same reason: the
  // forced work cannot perturb behavior, it only advances the rebuild-work
  // counters (observability section, excluded from cross-arm comparison).
  enc.put_u32(static_cast<std::uint32_t>(table_.size()));
  for (std::size_t slot = 0; slot < table_.size(); ++slot) {
    ensure_pair(slot);
    const auto& ids = table_[slot];
    enc.put_u32(static_cast<std::uint32_t>(ids.size()));
    for (PathId id : ids) {
      const Path& p = pool_.path(id);
      enc.put_u32(static_cast<std::uint32_t>(p.links.size()));
      for (LinkId l : p.links) enc.put_u32(l.value());
    }
  }

  std::vector<std::uint32_t> ban_ids;
  ban_ids.reserve(banned_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted below
  for (LinkId l : banned_) ban_ids.push_back(l.value());
  std::sort(ban_ids.begin(), ban_ids.end());
  enc.put_u32(static_cast<std::uint32_t>(ban_ids.size()));
  for (std::uint32_t l : ban_ids) enc.put_u32(l);
}

}  // namespace pythia::net
