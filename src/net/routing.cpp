#include "net/routing.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace pythia::net {

namespace {

/// Dijkstra state entry; ordering makes the search deterministic: fewer hops
/// first, then smaller node id.
struct QueueEntry {
  std::size_t dist;
  NodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node.value() > b.node.value();
  }
};

}  // namespace

std::optional<Path> shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::unordered_set<LinkId>& banned_links,
    const std::unordered_set<NodeId>& banned_nodes) {
  assert(src.valid() && dst.valid());
  if (src == dst) return Path{};
  if (banned_nodes.contains(src) || banned_nodes.contains(dst)) {
    return std::nullopt;
  }

  constexpr std::size_t kInf = SIZE_MAX;
  std::vector<std::size_t> dist(topo.node_count(), kInf);
  std::vector<LinkId> parent_link(topo.node_count());
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  dist[src.value()] = 0;
  frontier.push(QueueEntry{0, src});

  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u.value()]) continue;
    if (u == dst) break;
    for (LinkId l : topo.out_links(u)) {
      if (banned_links.contains(l)) continue;
      const Link& link = topo.link(l);
      if (banned_nodes.contains(link.dst)) continue;
      const std::size_t nd = d + 1;
      // Strict < keeps the first (smallest link id, since out_links is in
      // insertion order and we expand in id order) equal-length parent.
      if (nd < dist[link.dst.value()]) {
        dist[link.dst.value()] = nd;
        parent_link[link.dst.value()] = l;
        frontier.push(QueueEntry{nd, link.dst});
      }
    }
  }

  if (dist[dst.value()] == kInf) return std::nullopt;
  Path path;
  for (NodeId cursor = dst; cursor != src;) {
    const LinkId l = parent_link[cursor.value()];
    path.links.push_back(l);
    cursor = topo.link(l).src;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

std::vector<Path> k_shortest_paths(
    const Topology& topo, NodeId src, NodeId dst, std::size_t k,
    const std::unordered_set<LinkId>& banned_links) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = shortest_path(topo, src, dst, banned_links);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by (hops, link-id sequence) for determinism.
  auto path_less = [](const Path& a, const Path& b) {
    if (a.hops() != b.hops()) return a.hops() < b.hops();
    return std::lexicographical_compare(
        a.links.begin(), a.links.end(), b.links.begin(), b.links.end(),
        [](LinkId x, LinkId y) { return x.value() < y.value(); });
  };
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& prev = result.back();
    // Spur from every prefix of the previous path.
    for (std::size_t i = 0; i < prev.links.size(); ++i) {
      const NodeId spur_node =
          i == 0 ? src : topo.link(prev.links[i - 1]).dst;
      std::vector<LinkId> root(prev.links.begin(),
                               prev.links.begin() + static_cast<long>(i));

      std::unordered_set<LinkId> spur_banned = banned_links;
      for (const Path& p : result) {
        if (p.links.size() > i &&
            std::equal(root.begin(), root.end(), p.links.begin())) {
          spur_banned.insert(p.links[i]);
        }
      }
      // Ban root nodes (except the spur node) to keep paths loop-free.
      std::unordered_set<NodeId> banned_nodes;
      NodeId cursor = src;
      for (std::size_t j = 0; j < i; ++j) {
        banned_nodes.insert(cursor);
        cursor = topo.link(prev.links[j]).dst;
      }

      auto spur = shortest_path(topo, spur_node, dst, spur_banned,
                                banned_nodes);
      if (!spur) continue;
      Path total;
      total.links = root;
      total.links.insert(total.links.end(), spur->links.begin(),
                         spur->links.end());
      if (std::find(result.begin(), result.end(), total) != result.end()) {
        continue;
      }
      if (std::find(candidates.begin(), candidates.end(), total) !=
          candidates.end()) {
        continue;
      }
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(),
                                 path_less);
    result.push_back(std::move(*best));
    candidates.erase(best);
  }
  return result;
}

RoutingGraph::RoutingGraph(const Topology& topo, std::size_t k)
    : topo_(&topo), k_(k) {
  rebuild(topo);
}

void RoutingGraph::rebuild(const Topology& topo,
                           const std::unordered_set<LinkId>& banned_links) {
  topo_ = &topo;
  table_.clear();
  const auto hosts = topo.hosts();
  for (NodeId a : hosts) {
    for (NodeId b : hosts) {
      if (a == b) continue;
      table_[key(a, b)] = k_shortest_paths(topo, a, b, k_, banned_links);
    }
  }
}

const std::vector<Path>& RoutingGraph::paths(NodeId src_host,
                                             NodeId dst_host) const {
  const auto it = table_.find(key(src_host, dst_host));
  return it == table_.end() ? empty_ : it->second;
}

}  // namespace pythia::net
