#include "net/ecmp.hpp"

#include <cassert>

#include "util/random.hpp"

namespace pythia::net {

std::uint64_t EcmpSelector::hash_tuple(const FiveTuple& t) {
  return util::hash_u64s({t.src_ip, t.dst_ip,
                          static_cast<std::uint64_t>(t.src_port) << 16 |
                              t.dst_port,
                          t.proto});
}

std::size_t EcmpSelector::select_index(const FiveTuple& t, std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(hash_tuple(t) % n);
}

const Path& EcmpSelector::select(NodeId src_host, NodeId dst_host,
                                 const FiveTuple& t) const {
  return routing_->path(select_id(src_host, dst_host, t));
}

PathId EcmpSelector::select_id(NodeId src_host, NodeId dst_host,
                               const FiveTuple& t) const {
  const auto candidates = routing_->paths(src_host, dst_host);
  assert(!candidates.empty() && "ECMP requires a connected host pair");
  return candidates.id(select_index(t, candidates.size()));
}

}  // namespace pythia::net
