// Background (cross) traffic emulating network oversubscription.
//
// The paper simulates over-subscription ratios by injecting iperf UDP
// constant-bit-rate streams onto the inter-rack links. We reproduce that:
// for a 1:r ratio each inter-rack path carries a CBR load of
// (1 - 1/r) * capacity * intensity_i, where the per-path intensity profile
// controls asymmetry (Fig. 1b shows Path-1 at ~95% vs Path-2 at ~7%).
#pragma once

#include <vector>

#include "net/fabric.hpp"
#include "net/routing.hpp"

namespace pythia::net {

struct BackgroundSpec {
  /// r in "1:r"; 1.0 means a non-oversubscribed network (no background).
  double oversubscription = 1.0;
  /// Relative load scale per inter-rack path, in routing-graph path order;
  /// the last entry repeats for additional paths. The default skews load
  /// toward the first path (the paper's Fig. 1b shows strongly uneven port
  /// loads) while leaving the alternates partially loaded too, which
  /// calibrates end-to-end speedups into the paper's 3-46% band.
  std::vector<double> path_intensity{1.0, 0.45};
};

/// Installed background streams; kept so tests/experiments can tear down.
struct BackgroundHandle {
  std::vector<CbrId> streams;
  /// Inter-rack chain (ToR..ToR links) each stream was pinned to.
  std::vector<std::vector<LinkId>> chains;
  std::vector<util::BitsPerSec> rates;
};

/// Installs the background load between the racks of two reference hosts
/// (one per rack), in both directions. The host access links are excluded:
/// background lives on the inter-rack segment only, like the testbed.
BackgroundHandle install_background(Fabric& fabric,
                                    const RoutingGraph& routing,
                                    NodeId host_in_rack_a,
                                    NodeId host_in_rack_b,
                                    const BackgroundSpec& spec);

/// Removes previously installed background streams.
void remove_background(Fabric& fabric, const BackgroundHandle& handle);

}  // namespace pythia::net
