// Fluid (flow-level) network engine with max-min fair bandwidth sharing.
//
// Elastic (TCP) flows traverse an explicit link path and share residual link
// capacity max-min fairly — the standard fluid approximation of long-lived
// TCP on datacenter paths. CBR (UDP/iperf) streams occupy a fixed rate first
// and never back off, exactly like the background traffic the paper injects
// to emulate oversubscription. Rates are recomputed by progressive filling on
// every flow arrival/departure/CBR change; each flow's remaining volume is
// settled against simulated time before every recompute, so byte accounting
// is exact.
//
// Three rate engines share the same progressive-fill arithmetic:
//  * kFullRecompute reruns the fill over every link and flow on each change
//    (the original O(rounds × links × flows) algorithm, kept as the
//    differential-testing and benchmarking baseline);
//  * kIncremental (default) tracks the links dirtied by each change and
//    refills only the connected component of links/flows reachable from
//    them through shared links — flows in untouched components keep their
//    rates, which are bit-identical to what a full fill would recompute;
//  * kHierarchical exploits the topology's locality-group partition
//    (Topology::node_group — fat-tree pods coupled through core links):
//    the affected component is collected group-by-group over flat
//    struct-of-arrays flow mirrors instead of flow-by-flow BFS, the fill
//    reads those dense arrays (weights, classes, rates, path rows in a
//    shared arena) instead of chasing Flow records, and completion
//    deadlines live in a dense per-slot array scanned linearly rather than
//    a lazy heap. The collected component is a superset of the exact BFS
//    component (whole groups at a time), which is provably harmless: extra
//    links carry no unfixed flows and are skipped by the fill, so the
//    floating-point operation sequence — and therefore every allocated
//    rate — stays bit-identical to kFullRecompute.
//
// Orthogonally, `FabricConfig::coalesce_cohorts` batches rate recomputes:
// mutations inside one same-instant event cohort mark state dirty and defer
// the fill to the cohort boundary (an EventQueue cohort listener), so a
// burst of simultaneous arrivals pays one fill instead of one per arrival.
// Any rate read mid-cohort flushes the pending fill first, which makes the
// coalesced fabric observationally equivalent to the eager one.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::net {

class Fabric;

/// Observer of wire-level activity; NetFlow-style probes and SDN apps
/// implement the hooks they care about (defaults are no-ops).
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  /// A new elastic flow entered the fabric.
  virtual void on_flow_started(const Fabric& /*fabric*/, FlowId /*flow*/,
                               util::SimTime /*at*/) {}
  /// Bytes moved by `flow` in (from, to]; called whenever the fabric settles.
  virtual void on_bytes_moved(const Fabric& /*fabric*/, FlowId /*flow*/,
                              util::Bytes /*moved*/, util::SimTime /*from*/,
                              util::SimTime /*to*/) {}
  /// Flow fully delivered.
  virtual void on_flow_completed(const Fabric& /*fabric*/, FlowId /*flow*/,
                                 util::SimTime /*at*/) {}
};

struct FlowSpec {
  NodeId src;
  NodeId dst;
  util::Bytes size;
  std::vector<LinkId> path;
  FiveTuple tuple;
  FlowClass cls = FlowClass::kOther;
  /// Weighted max-min share (1.0 = plain TCP-fair). Values > 1 model rate
  /// boosting (e.g. more parallel connections or priority queues) for
  /// Orchestra-style proportional allocation.
  double weight = 1.0;
};

struct Flow {
  FlowId id;
  FlowSpec spec;
  util::SimTime started;
  double remaining_bytes = 0.0;  // settled remaining volume
  util::BitsPerSec rate;         // current max-min share
  bool completed = false;
  util::SimTime completed_at;
  /// Integer bytes already reported to observers; the fractional residue
  /// (spec.size - remaining - reported) is carried so cumulative observer
  /// totals equal spec.size exactly at completion.
  std::int64_t reported_bytes = 0;
};

using FlowCompleteFn = std::function<void(FlowId, util::SimTime)>;

/// Which progressive-fill driver recomputes rates on fabric changes.
enum class RateEngine {
  /// Dirty-set incremental: refill only the connected component of
  /// links/flows affected by the change (falls back to a full fill when the
  /// component spans every link). Default.
  kIncremental,
  /// Legacy full fill over all links and flows on every change. Kept as the
  /// side-by-side baseline for differential tests and the scaling bench.
  kFullRecompute,
  /// Group-partitioned component collection + struct-of-arrays fill. Uses
  /// Topology's locality groups (pods/racks vs. the shared core); on
  /// topologies without group metadata it degrades to full-component fills
  /// that are still bit-identical, just not faster.
  kHierarchical,
};

struct FabricConfig {
  RateEngine rate_engine = RateEngine::kIncremental;
  /// Defer rate recomputes to same-instant event-cohort boundaries (see
  /// file header). Orthogonal to the engine choice; allocations remain
  /// bit-identical because mid-cohort reads flush the deferred fill.
  bool coalesce_cohorts = false;
};

/// Hot-path counters for perf-trajectory tracking across PRs.
struct FabricCounters {
  std::uint64_t recomputes = 0;        // progressive fills run
  std::uint64_t full_fills = 0;        // fills that spanned every link
  std::uint64_t links_touched = 0;     // Σ links revisited per fill
  std::uint64_t flows_touched = 0;     // Σ flows revisited per fill
  std::uint64_t completion_events = 0; // completion events fired
  std::uint64_t settles = 0;           // non-empty settle intervals
  std::uint64_t deferred_recomputes = 0;  // recomputes absorbed by coalescing
  std::uint64_t cohort_flushes = 0;       // deferred fills actually run
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, const Topology& topo, FabricConfig cfg = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Starts an elastic flow; `on_complete` fires (via the event queue) when
  /// the last byte is delivered. The path must connect spec.src to spec.dst.
  /// FlowIds are recycled once a flow has completed and its callbacks have
  /// run, so ids are transient handles, not stable history keys.
  FlowId start_flow(FlowSpec spec, FlowCompleteFn on_complete = {});

  /// Moves an in-flight flow onto a new path (what a higher-priority
  /// OpenFlow rule installation does to subsequent packets of the flow).
  /// No-op if the flow already completed. The new path must connect the
  /// flow's endpoints.
  void reroute_flow(FlowId id, std::vector<LinkId> new_path);

  /// Adjusts a flow's max-min weight mid-flight; no-op once completed.
  void set_flow_weight(FlowId id, double weight);

  /// Starts a fixed-rate stream on `path` (UDP-like: holds its rate
  /// regardless of congestion; clamped by link capacity when computing the
  /// residual available to elastic flows).
  CbrId start_cbr(std::vector<LinkId> path, util::BitsPerSec rate);
  void stop_cbr(CbrId id);

  // --- failure injection ---

  /// Takes a link down: elastic flows crossing it stall at rate zero until
  /// rerouted or the link is restored; CBR load on it goes nowhere (the
  /// packets are simply lost). Idempotent.
  void fail_link(LinkId l);
  /// Brings a failed link back. Idempotent.
  void restore_link(LinkId l);
  [[nodiscard]] bool link_up(LinkId l) const { return link_up_[l.value()]; }
  /// Active elastic flows whose current path crosses `l`, ascending by id.
  /// Indexed (O(flows on link), not O(all active)); returns a copy so
  /// callers may reroute while iterating.
  [[nodiscard]] std::vector<FlowId> flows_crossing(LinkId l) const {
    return link_flows_[l.value()];
  }

  // --- introspection (the SDN link-load service reads these) ---

  /// Fixed-rate load currently placed on a link (uncapped sum).
  [[nodiscard]] util::BitsPerSec link_cbr_load(LinkId l) const;
  /// Sum of elastic flow rates currently crossing a link.
  [[nodiscard]] util::BitsPerSec link_elastic_rate(LinkId l) const;
  /// Elastic rate on a link restricted to one traffic class.
  [[nodiscard]] util::BitsPerSec link_class_rate(LinkId l, FlowClass cls) const;
  /// (cbr + elastic) / capacity, clamped to [0, 1]; 0 for failed or
  /// zero-capacity links (a dead port serves nothing).
  [[nodiscard]] double link_utilization(LinkId l) const;
  /// Capacity minus CBR load, floored at zero — what elastic traffic can get.
  [[nodiscard]] util::BitsPerSec link_residual_capacity(LinkId l) const;

  [[nodiscard]] const Flow& flow(FlowId id) const;
  /// Current path of `id` as a view. Under kHierarchical this resolves the
  /// flow's arena path row and carries a use-after-recycle guard: reading a
  /// slot whose row was freed by swap-pop recycling is a deterministic
  /// debug-build abort (and an empty span in release builds) instead of a
  /// wrong-path read — the fabric analogue of PathId's generation stamp.
  [[nodiscard]] std::span<const LinkId> flow_path(FlowId id) const;
  [[nodiscard]] bool flow_active(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const { return active_.size(); }
  /// Active flow ids in ascending id order (deterministic).
  [[nodiscard]] std::vector<FlowId> active_flows() const;

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }

  void add_observer(FabricObserver* obs) { observers_.push_back(obs); }

  // --- cumulative statistics ---
  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_completed() const {
    return flows_completed_;
  }
  [[nodiscard]] util::Bytes bytes_delivered() const { return bytes_delivered_; }
  [[nodiscard]] std::uint64_t rate_recomputations() const {
    return counters_.recomputes;
  }
  /// Hot-path perf counters (recomputes, links/flows touched, events).
  [[nodiscard]] const FabricCounters& counters() const { return counters_; }
  [[nodiscard]] RateEngine rate_engine() const { return cfg_.rate_engine; }

  /// Settles all flows to now() and recomputes max-min rates. Called
  /// automatically on arrivals/departures/CBR changes; public so that probes
  /// can force an accounting point.
  void settle_and_recompute();

  /// Runs a recompute deferred by cohort coalescing right now; no-op when
  /// eager or already clean. Snapshot capture calls this before encoding so
  /// the capture-time flush lands at the same replay position on both sides
  /// of a restore (see docs/checkpoint.md); rate accessors call it
  /// internally, so user code never needs to.
  void flush_coalesced();

  /// Toggles cohort coalescing at runtime. Turning it off flushes any
  /// pending cohort first, so the fabric lands in exactly the state an
  /// always-eager run would hold at this instant; turning it on registers
  /// the cohort listener if this fabric never had one. The scaling bench
  /// uses this to ramp every arm coalesced but measure the oracle engines
  /// under their original eager per-event semantics.
  void set_cohort_coalescing(bool on);

  /// Serializes the fabric's logical state for snapshots: counters, every
  /// active flow (sorted by id) with its exact settled remaining volume and
  /// rate bits, CBR streams, and per-link up/load/rate state. Physical
  /// scratch (slot free lists, dirty sets, ETA heap layout) is excluded —
  /// it is reconstructed by replay and never observable.
  void encode_state(sim::StateEncoder& enc) const;

  /// Rate-engine work counters, serialized as their own snapshot section:
  /// kIncremental and kFullRecompute allocate identical rates but touch
  /// different amounts of state doing it, so divergence bisection compares
  /// behavioral sections only (see Snapshot::describe_divergence).
  void encode_counters(sim::StateEncoder& enc) const;

 private:
  struct EtaEntry {
    std::int64_t eta_ns;
    std::uint32_t slot;
    std::uint64_t stamp;
  };

  /// Power-of-two size-bucketed span allocator for arena rows (flow paths,
  /// flow group lists). Freed rows go onto a per-bucket LIFO free list, so
  /// allocation order — and therefore every offset — is a deterministic
  /// function of the mutation sequence, never of the host allocator.
  class SpanArena {
   public:
    /// Offset of a row holding >= len entries; sets `bucket` for release().
    std::uint32_t acquire(std::uint32_t len, std::uint8_t& bucket);
    void release(std::uint32_t off, std::uint8_t bucket) {
      free_[bucket].push_back(off);
    }
    /// High-water span count; callers size their pools to this.
    [[nodiscard]] std::size_t size() const { return size_; }

   private:
    std::size_t size_ = 0;
    std::array<std::vector<std::uint32_t>, 32> free_;
  };

  void settle();
  void recompute_rates();
  void after_mutation();
  void schedule_next_completion();
  void on_completion_event();
  /// Completion bookkeeping shared by the heap- and arena-driven event
  /// handlers (swap-pop from active_, link/group deregistration, stats).
  void complete_flow(std::uint32_t slot);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void insert_link_flow(LinkId l, FlowId id);
  void remove_link_flow(LinkId l, FlowId id);
  void mark_dirty(LinkId l);
  void mark_all_dirty();
  void clear_dirty();
  /// Residual capacity a link offers elastic flows (shared by both fills so
  /// the arithmetic is bit-identical).
  [[nodiscard]] double elastic_headroom(std::uint32_t l) const;
  void set_rate(Flow& f, double rate_bps);
  void push_eta(Flow& f);
  void compact_eta_heap();
  /// Gathers the component of links/flows reachable from the dirty set into
  /// comp_links_/comp_flows_.
  void collect_component();
  /// Progressive fill restricted to comp_links_/comp_flows_ using the
  /// per-link flow index.
  void fill_component();
  /// Legacy progressive fill over every link and active flow.
  void fill_full();

  // --- kHierarchical internals ---
  /// Copies spec.path into the path arena and indexes the flow under every
  /// locality group its path touches.
  void arena_admit(std::uint32_t slot);
  /// Releases the group index entries (swap-pop with position fixup).
  void unregister_flow_groups(std::uint32_t slot);
  /// Frees the path row; the offset sentinel left behind turns stale
  /// flow_path() reads into deterministic debug aborts.
  void free_path_row(std::uint32_t slot);
  /// Group-closure component collection (superset of collect_component's
  /// exact BFS component; see file header for why that is harmless).
  void collect_component_hier();
  /// fill_component with all Flow-record reads replaced by arena reads;
  /// identical floating-point operation sequence.
  void fill_component_hier();
  void set_rate_hier(std::uint32_t slot, double rate_bps);
  void push_eta_hier(std::uint32_t slot, const Flow& f);
  /// Mid-cohort rate read: flush the deferred fill so coalesced mode is
  /// observationally equivalent to eager.
  void maybe_flush() const;

  // pythia-lint: allow(snapshot-skip, group) construction wiring and config
  // identity: restore builds a fresh Fabric from the fingerprinted scenario.
  sim::Simulation* sim_;
  const Topology* topo_;
  FabricConfig cfg_;

  // pythia-lint: allow(snapshot-skip, group) slot bookkeeping rebuilt by
  // restore replay: encode_state writes the live flows, and re-admitting
  // them through start_flow() recreates slots, callbacks, and link indexes.
  std::vector<Flow> flows_;                  // slot-indexed; slots recycled
  std::vector<FlowCompleteFn> callbacks_;    // parallel to flows_
  std::vector<std::uint32_t> free_slots_;    // completed slots ready for reuse
  std::vector<FlowId> active_;               // unordered; O(1) erase
  std::vector<std::uint32_t> active_pos_;    // slot -> index in active_
  std::vector<std::vector<FlowId>> link_flows_;  // per link, ascending by id

  std::vector<double> cbr_load_bps_;  // per link
  struct CbrStream {
    std::vector<LinkId> path;
    double rate_bps;
    bool active;
  };
  std::vector<CbrStream> cbrs_;
  std::vector<char> link_up_;             // per link
  std::vector<double> elastic_rate_bps_;  // per link, refreshed on recompute
  std::vector<std::array<double, 4>> class_rate_bps_;  // per link, per class

  // Dirty-link accumulator consumed by the next recompute.
  // pythia-lint: allow(snapshot-skip, group) empty at every snapshot cut:
  // cuts happen at settled instants, after the pending recompute drained.
  std::vector<std::uint32_t> dirty_links_;
  std::vector<char> link_dirty_;

  // Scratch buffers reused across fills (no per-recompute allocation).
  // pythia-lint: allow(snapshot-skip, group) fill scratch: every recompute
  // rewrites these before reading them, so restored runs never observe the
  // pre-snapshot contents.
  std::vector<double> residual_;
  std::vector<double> unfixed_weight_;
  std::vector<std::uint32_t> unfixed_count_;
  // Cached residual_/max(unfixed_weight_, eps) per link, refreshed only when
  // a freeze touches the link, so the per-round bottleneck scan compares
  // instead of dividing. Each cached value is the exact division the inline
  // expression would produce (same operands), which keeps bottleneck
  // selection bit-identical to fill_full()'s. fill_component() rebuilds the
  // cache on entry, so fill_full() need not maintain it.
  std::vector<double> link_share_;
  // kHierarchical selection scratch: comp_links_[r] has its live share at
  // share_dense_[r] (+inf once the link empties), and link_rank_ inverts the
  // mapping for freeze-time refreshes. A dense array the vectorized min scan
  // can walk without indirection or a count check; ranks follow comp_links_
  // order, so "first rank at the min" reproduces the legacy strict
  // `share < best` tie-break exactly.
  std::vector<double> share_dense_;
  std::vector<std::uint32_t> link_rank_;
  // Per-round dedup of freeze-time share refreshes: one division per touched
  // link per round instead of one per (flow, link) path step.
  std::vector<char> link_touched_;
  std::vector<std::uint32_t> touched_links_;
  std::vector<char> link_in_comp_;
  std::vector<char> flow_fixed_;        // slot-indexed
  std::vector<char> flow_in_comp_;      // slot-indexed
  std::vector<std::uint32_t> comp_links_;
  std::vector<std::uint32_t> cand_links_;
  std::vector<std::uint32_t> comp_flows_;
  std::vector<FlowId> sorted_active_;   // fill_full scratch

  // Lazy min-heap of flow completion instants; stale entries are skipped by
  // stamp comparison, so a rate change is O(log n) instead of an O(flows)
  // rescan per event. (Legacy engines only — kHierarchical keeps per-slot
  // deadlines in arena_eta_ns_ and scans active_ linearly, which is both
  // cheaper at scale and free of heap-garbage bookkeeping.)
  // pythia-lint: allow(snapshot-skip, group) lazy completion cache: restore
  // replay re-pushes an entry per re-admitted flow, and stale entries are
  // skipped by stamp anyway. scheduled_eta_ns_ IS encoded.
  std::vector<EtaEntry> eta_heap_;
  std::vector<std::uint64_t> eta_stamp_;  // slot-indexed
  std::int64_t scheduled_eta_ns_ = -1;

  // --- struct-of-arrays flow arena (kHierarchical) ---
  // Dense slot-indexed mirrors of the Flow fields the fill hot loops read;
  // Flow::spec stays authoritative for the public API. Path rows live in a
  // shared pool so a fill walks contiguous memory instead of per-flow
  // vectors.
  // pythia-lint: allow(snapshot-skip, group) struct-of-arrays mirror of
  // Flow::spec (which IS encoded): re-admitting the encoded flows through
  // start_flow() repopulates every arena row and the path pool.
  bool hier_ = false;
  std::vector<double> arena_weight_;        // slot-indexed
  std::vector<double> arena_rate_bps_;      // slot-indexed
  std::vector<std::int64_t> arena_eta_ns_;  // slot-indexed; -1 = starved
  std::vector<std::uint8_t> arena_cls_;     // slot-indexed
  std::vector<LinkId> path_pool_;
  std::vector<std::uint32_t> path_off_;     // slot-indexed; kNoPos = freed
  std::vector<std::uint32_t> path_len_;     // slot-indexed
  std::vector<std::uint8_t> path_bucket_;   // slot-indexed
  SpanArena path_arena_;

  // Locality-group index: link -> group, per-group sorted link lists, and
  // per-group active-flow membership (swap-pop, position tracked in the
  // flow's group row so removal is O(groups on path)).
  // pythia-lint: allow(snapshot-skip, group) locality-group index derived
  // from the (fingerprinted) topology at construction plus the re-admitted
  // flows; epoch marks only dedupe within one closure walk.
  std::size_t num_groups_ = 0;              // locality groups + shared core
  std::vector<std::uint32_t> link_group_;
  std::vector<std::vector<std::uint32_t>> group_links_;
  std::vector<std::vector<std::uint32_t>> group_flows_;
  std::vector<std::uint32_t> group_id_pool_;   // flow group rows
  std::vector<std::uint32_t> group_pos_pool_;  // parallel to group_id_pool_
  std::vector<std::uint32_t> groups_off_;      // slot-indexed
  std::vector<std::uint32_t> groups_len_;      // slot-indexed
  std::vector<std::uint8_t> groups_bucket_;    // slot-indexed
  SpanArena group_arena_;
  std::vector<std::uint64_t> group_mark_;      // epoch marks, group-indexed
  std::vector<std::uint64_t> flow_mark_;       // epoch marks, slot-indexed
  std::uint64_t hier_epoch_ = 0;
  std::vector<std::uint32_t> comp_groups_;     // closure scratch
  std::vector<std::uint32_t> scratch_groups_;  // per-flow dedupe scratch
  std::vector<std::uint32_t> due_slots_;       // completion scan scratch

  // --- cohort coalescing ---
  // pythia-lint: allow(snapshot-skip, group) cohort plumbing is quiescent at
  // snapshot cuts (settled instants): no recompute pending, no listener
  // registered, and the token is only meaningful inside one cohort.
  bool recompute_pending_ = false;
  std::size_t cohort_token_ = 0;
  bool cohort_listener_registered_ = false;

  // pythia-lint: allow(snapshot-skip, group) completion_event_ is
  // re-scheduled from the encoded scheduled_eta_ns_ during restore, and
  // observers re-register themselves when the owning system is rebuilt.
  // last_settle_ IS encoded.
  util::SimTime last_settle_ = util::SimTime::zero();
  sim::EventHandle completion_event_;
  std::vector<FabricObserver*> observers_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  util::Bytes bytes_delivered_;
  FabricCounters counters_;
};

}  // namespace pythia::net
