// Fluid (flow-level) network engine with max-min fair bandwidth sharing.
//
// Elastic (TCP) flows traverse an explicit link path and share residual link
// capacity max-min fairly — the standard fluid approximation of long-lived
// TCP on datacenter paths. CBR (UDP/iperf) streams occupy a fixed rate first
// and never back off, exactly like the background traffic the paper injects
// to emulate oversubscription. Rates are recomputed by progressive filling on
// every flow arrival/departure/CBR change; each flow's remaining volume is
// settled against simulated time before every recompute, so byte accounting
// is exact.
#pragma once

#include <array>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::net {

class Fabric;

/// Observer of wire-level activity; NetFlow-style probes and SDN apps
/// implement the hooks they care about (defaults are no-ops).
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  /// A new elastic flow entered the fabric.
  virtual void on_flow_started(const Fabric& /*fabric*/, FlowId /*flow*/,
                               util::SimTime /*at*/) {}
  /// Bytes moved by `flow` in (from, to]; called whenever the fabric settles.
  virtual void on_bytes_moved(const Fabric& /*fabric*/, FlowId /*flow*/,
                              util::Bytes /*moved*/, util::SimTime /*from*/,
                              util::SimTime /*to*/) {}
  /// Flow fully delivered.
  virtual void on_flow_completed(const Fabric& /*fabric*/, FlowId /*flow*/,
                                 util::SimTime /*at*/) {}
};

struct FlowSpec {
  NodeId src;
  NodeId dst;
  util::Bytes size;
  std::vector<LinkId> path;
  FiveTuple tuple;
  FlowClass cls = FlowClass::kOther;
  /// Weighted max-min share (1.0 = plain TCP-fair). Values > 1 model rate
  /// boosting (e.g. more parallel connections or priority queues) for
  /// Orchestra-style proportional allocation.
  double weight = 1.0;
};

struct Flow {
  FlowId id;
  FlowSpec spec;
  util::SimTime started;
  double remaining_bytes = 0.0;  // settled remaining volume
  util::BitsPerSec rate;         // current max-min share
  bool completed = false;
  util::SimTime completed_at;
};

using FlowCompleteFn = std::function<void(FlowId, util::SimTime)>;

class Fabric {
 public:
  Fabric(sim::Simulation& sim, const Topology& topo);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Starts an elastic flow; `on_complete` fires (via the event queue) when
  /// the last byte is delivered. The path must connect spec.src to spec.dst.
  FlowId start_flow(FlowSpec spec, FlowCompleteFn on_complete = {});

  /// Moves an in-flight flow onto a new path (what a higher-priority
  /// OpenFlow rule installation does to subsequent packets of the flow).
  /// No-op if the flow already completed. The new path must connect the
  /// flow's endpoints.
  void reroute_flow(FlowId id, std::vector<LinkId> new_path);

  /// Adjusts a flow's max-min weight mid-flight; no-op once completed.
  void set_flow_weight(FlowId id, double weight);

  /// Starts a fixed-rate stream on `path` (UDP-like: holds its rate
  /// regardless of congestion; clamped by link capacity when computing the
  /// residual available to elastic flows).
  CbrId start_cbr(std::vector<LinkId> path, util::BitsPerSec rate);
  void stop_cbr(CbrId id);

  // --- failure injection ---

  /// Takes a link down: elastic flows crossing it stall at rate zero until
  /// rerouted or the link is restored; CBR load on it goes nowhere (the
  /// packets are simply lost). Idempotent.
  void fail_link(LinkId l);
  /// Brings a failed link back. Idempotent.
  void restore_link(LinkId l);
  [[nodiscard]] bool link_up(LinkId l) const { return link_up_[l.value()]; }
  /// Active elastic flows whose current path crosses `l`.
  [[nodiscard]] std::vector<FlowId> flows_crossing(LinkId l) const;

  // --- introspection (the SDN link-load service reads these) ---

  /// Fixed-rate load currently placed on a link (uncapped sum).
  [[nodiscard]] util::BitsPerSec link_cbr_load(LinkId l) const;
  /// Sum of elastic flow rates currently crossing a link.
  [[nodiscard]] util::BitsPerSec link_elastic_rate(LinkId l) const;
  /// Elastic rate on a link restricted to one traffic class.
  [[nodiscard]] util::BitsPerSec link_class_rate(LinkId l, FlowClass cls) const;
  /// (cbr + elastic) / capacity, clamped to [0, 1].
  [[nodiscard]] double link_utilization(LinkId l) const;
  /// Capacity minus CBR load, floored at zero — what elastic traffic can get.
  [[nodiscard]] util::BitsPerSec link_residual_capacity(LinkId l) const;

  [[nodiscard]] const Flow& flow(FlowId id) const;
  [[nodiscard]] bool flow_active(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const { return active_.size(); }
  [[nodiscard]] std::vector<FlowId> active_flows() const;

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }

  void add_observer(FabricObserver* obs) { observers_.push_back(obs); }

  // --- cumulative statistics ---
  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_completed() const {
    return flows_completed_;
  }
  [[nodiscard]] util::Bytes bytes_delivered() const { return bytes_delivered_; }
  [[nodiscard]] std::uint64_t rate_recomputations() const {
    return recomputes_;
  }

  /// Settles all flows to now() and recomputes max-min rates. Called
  /// automatically on arrivals/departures/CBR changes; public so that probes
  /// can force an accounting point.
  void settle_and_recompute();

 private:
  void settle();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event();

  sim::Simulation* sim_;
  const Topology* topo_;

  std::vector<Flow> flows_;              // indexed by FlowId; completed stay
  std::vector<FlowId> active_;           // ids of in-flight flows
  std::vector<double> cbr_load_bps_;     // per link
  struct CbrStream {
    std::vector<LinkId> path;
    double rate_bps;
    bool active;
  };
  std::vector<CbrStream> cbrs_;
  std::vector<char> link_up_;             // per link
  std::vector<double> elastic_rate_bps_;  // per link, refreshed on recompute
  std::vector<std::array<double, 4>> class_rate_bps_;  // per link, per class

  util::SimTime last_settle_ = util::SimTime::zero();
  sim::EventHandle completion_event_;
  std::unordered_map<std::uint32_t, FlowCompleteFn> callbacks_;
  std::vector<FabricObserver*> observers_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  util::Bytes bytes_delivered_;
  std::uint64_t recomputes_ = 0;
};

}  // namespace pythia::net
