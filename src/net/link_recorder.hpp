// Periodic link-utilization recording.
//
// Samples selected links' load at a fixed cadence while traffic is active,
// producing the time series behind the paper's Fig. 1b port-load view and
// the hot-path/cold-path story of the evaluation. Sampling is event-driven:
// the recorder re-arms only while flows are in flight, so it never keeps a
// drained simulation alive.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"

namespace pythia::net {

struct UtilizationPoint {
  util::SimTime at;
  double utilization = 0.0;  // [0, 1]
  util::BitsPerSec elastic;
  util::BitsPerSec cbr;
};

class LinkRecorder final : public FabricObserver {
 public:
  /// Records `links` every `period`; attaches itself to the fabric.
  LinkRecorder(Fabric& fabric, std::vector<LinkId> links,
               util::Duration period = util::Duration::millis(500));

  LinkRecorder(const LinkRecorder&) = delete;
  LinkRecorder& operator=(const LinkRecorder&) = delete;

  void on_flow_started(const Fabric& fabric, FlowId flow,
                       util::SimTime at) override;

  [[nodiscard]] const std::vector<UtilizationPoint>& series(LinkId l) const;
  [[nodiscard]] const std::vector<LinkId>& links() const { return links_; }

  /// Mean utilization of a link over its recorded series.
  [[nodiscard]] double mean_utilization(LinkId l) const;
  /// Peak utilization of a link over its recorded series.
  [[nodiscard]] double peak_utilization(LinkId l) const;

 private:
  void arm();
  void sample();

  Fabric* fabric_;
  std::vector<LinkId> links_;
  util::Duration period_;
  bool armed_ = false;
  std::unordered_map<LinkId, std::vector<UtilizationPoint>> series_;
  std::vector<UtilizationPoint> empty_;
};

}  // namespace pythia::net
