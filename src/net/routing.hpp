// Multi-path routing: hop-count Dijkstra, Yen's k-shortest paths, and the
// RoutingGraph cache the controller keeps per host pair (paper §IV: computed
// at startup, recomputed only on topology-change events — off the data path).
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace pythia::net {

/// A loop-free path as a link chain; endpoints are implied by the links.
struct Path {
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const { return links.size(); }
  friend bool operator==(const Path&, const Path&) = default;
};

/// Shortest path by hop count with deterministic tie-breaking (smaller link
/// ids win). `banned_links` / `banned_nodes` support Yen's spur computation
/// and failure simulation. Returns nullopt when disconnected.
std::optional<Path> shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::unordered_set<LinkId>& banned_links = {},
    const std::unordered_set<NodeId>& banned_nodes = {});

/// Yen's algorithm: up to `k` loop-free shortest paths in nondecreasing
/// hop-count order (deterministic ordering among equal-length paths).
/// `banned_links` are excluded entirely (failed links).
std::vector<Path> k_shortest_paths(
    const Topology& topo, NodeId src, NodeId dst, std::size_t k,
    const std::unordered_set<LinkId>& banned_links = {});

/// Precomputed k-shortest paths for every host pair. The SDN topology
/// service rebuilds it when the physical topology changes (link failure).
class RoutingGraph {
 public:
  RoutingGraph(const Topology& topo, std::size_t k);

  /// Equal-candidate path set for an ordered host pair; non-empty for every
  /// connected pair. Precondition: both are hosts in this topology.
  [[nodiscard]] const std::vector<Path>& paths(NodeId src_host,
                                               NodeId dst_host) const;

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// Recomputes everything, excluding `banned_links` (failed links) from
  /// every path — the controller's topology-update service calls this on
  /// link-failure/restore events.
  void rebuild(const Topology& topo,
               const std::unordered_set<LinkId>& banned_links = {});

 private:
  [[nodiscard]] static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
  const Topology* topo_;
  std::size_t k_;
  std::unordered_map<std::uint64_t, std::vector<Path>> table_;
  std::vector<Path> empty_;
};

}  // namespace pythia::net
